// Command goldendump writes the golden statistics dump — the merged
// dump of the three determinism cells — to -o. Run it (or `make golden`)
// to refresh testdata/golden_stats.json after an intentional behavior
// change, then review the statdiff against the old file before
// committing.
package main

import (
	"flag"
	"fmt"
	"os"

	"nova/internal/golden"
)

func main() {
	out := flag.String("o", "testdata/golden_stats.json", "output file")
	flag.Parse()

	d, err := golden.BuildDump()
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldendump: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldendump: %v\n", err)
		os.Exit(1)
	}
	err = d.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldendump: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "goldendump: %d records written to %s\n", len(d.Records), *out)
}
