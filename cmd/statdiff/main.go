// Command statdiff compares two statistics dumps written by
// novasim -stats-out (or goldendump) and reports per-record deltas.
//
// Usage:
//
//	statdiff [-threshold PCT] [-strict] [-include-volatile] [-all] OLD.json NEW.json
//
// By default only changed records print, volatile records (wall-clock
// timings, racy parallel counters) are skipped, and the exit code is 0
// regardless of deltas — suitable as a warn-only CI step. With -strict
// the command exits 1 when any compared delta exceeds -threshold percent
// (records present on only one side always count as exceeding). Exit
// code 2 signals a usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"nova/internal/stats"
)

func main() {
	threshold := flag.Float64("threshold", 2, "percent change above which a delta counts as a regression")
	strict := flag.Bool("strict", false, "exit 1 when any delta exceeds -threshold")
	includeVolatile := flag.Bool("include-volatile", false, "also compare records marked volatile")
	all := flag.Bool("all", false, "print unchanged records too")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: statdiff [flags] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	oldDump, newDump := readDump(flag.Arg(0)), readDump(flag.Arg(1))
	deltas := stats.Diff(oldDump, newDump, *includeVolatile)

	changed, exceeded := 0, 0
	for _, d := range deltas {
		if d.Changed() {
			changed++
		}
		over := d.Exceeds(*threshold)
		if over {
			exceeded++
		}
		if !*all && !d.Changed() {
			continue
		}
		fmt.Println(render(d, over))
	}
	fmt.Fprintf(os.Stderr, "statdiff: %d records compared, %d changed, %d above %.3g%%\n",
		len(deltas), changed, exceeded, *threshold)
	if *strict && exceeded > 0 {
		os.Exit(1)
	}
}

func readDump(path string) *stats.Dump {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "statdiff: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	d, err := stats.ReadJSON(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "statdiff: %s: %v\n", path, err)
		os.Exit(2)
	}
	return d
}

// render formats one delta line; regressions above threshold get a
// leading "!" so they stand out in CI logs.
func render(d stats.Delta, over bool) string {
	mark := " "
	if over {
		mark = "!"
	}
	switch {
	case !d.OldOK:
		return fmt.Sprintf("%s %-60s (added)        -> %g", mark, d.Path, d.New)
	case !d.NewOK:
		return fmt.Sprintf("%s %-60s (removed)      %g ->", mark, d.Path, d.Old)
	case !d.Changed():
		return fmt.Sprintf("  %-60s unchanged      %g", d.Path, d.Old)
	default:
		pct := d.Pct()
		p := fmt.Sprintf("%+.3g%%", pct)
		if math.IsInf(pct, 0) {
			p = "from zero"
		}
		return fmt.Sprintf("%s %-60s %-14s %g -> %g", mark, d.Path, p, d.Old, d.New)
	}
}
