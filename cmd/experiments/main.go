// Command experiments regenerates every table and figure of the paper's
// evaluation section on the scaled dataset registry.
//
// Usage:
//
//	experiments -scale small|medium|full [-only fig4,tab1] [-markdown]
//
// Each experiment prints the same rows/series the paper reports, plus a
// note recalling the paper's expected shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"nova/internal/exp"
)

func main() {
	scaleFlag := flag.String("scale", "small", "dataset scale: small|medium|full")
	onlyFlag := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	markdown := flag.Bool("markdown", false, "emit GitHub markdown instead of aligned text")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}
	scale, err := exp.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	ids := exp.IDs()
	if *onlyFlag != "" {
		ids = strings.Split(*onlyFlag, ",")
		sort.Strings(ids)
	}
	fmt.Printf("NOVA reproduction experiments — scale=%s\n", scale)
	for _, id := range ids {
		runner, ok := exp.All[id]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (use -list)", id))
		}
		start := time.Now()
		table, err := runner(scale)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		if *markdown {
			table.Markdown(os.Stdout)
		} else {
			table.Render(os.Stdout)
		}
		fmt.Printf("  [%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
