// Command experiments regenerates every table and figure of the paper's
// evaluation section on the scaled dataset registry.
//
// Usage:
//
//	experiments -scale small|medium|full|large [-only fig4,tab1] [-jobs N] [-markdown]
//
// Each experiment prints the same rows/series the paper reports, plus a
// note recalling the paper's expected shape. Independent simulation cells
// fan out over -jobs worker goroutines through the harness pool; tables
// land on stdout (byte-identical at any -jobs value for the simulated
// engines), progress and timing lines on stderr. -bench FILE additionally
// re-runs each experiment sequentially and records the wall-clock
// comparison as JSON.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"nova/internal/exp"
	"nova/internal/harness"
	"nova/internal/network"
	"nova/internal/prof"
)

func main() {
	scaleFlag := flag.String("scale", "small", "dataset scale: small|medium|full|large")
	onlyFlag := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	markdown := flag.Bool("markdown", false, "emit GitHub markdown instead of aligned text")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulation cells per experiment")
	benchPath := flag.String("bench", "", "also run each experiment at -jobs 1 and write the wall-clock comparison JSON here")
	quiet := flag.Bool("quiet", false, "suppress per-cell progress lines on stderr")
	shards := flag.Int("shards", 1, "simulation worker goroutines per NOVA cell (clamped to the cell's GPN count; results are bit-identical at every setting)")
	topology := flag.String("topology", "crossbar", "inter-GPN topology for every NOVA cell: crossbar|ring|mesh|torus (fignet sweeps all regardless)")
	coalesceWindow := flag.Int64("coalesce-window", 0, "in-fabric coalescing window in cycles for every NOVA cell (0 disables; fignet sweeps on/off regardless)")
	coalesceCap := flag.Int("coalesce-cap", 0, "coalescing buffer capacity in messages (0 = default; requires -coalesce-window)")
	profFlags := prof.RegisterFlags()
	flag.Parse()
	defer profFlags.Start()()
	// Validate the fabric flags before any dataset is built: an unknown
	// topology or an inconsistent coalescing setting must fail instantly,
	// not after minutes of graph generation.
	if _, err := network.ParseTopoKind(*topology); err != nil {
		fatal(err)
	}
	if *coalesceWindow < 0 {
		fatal(fmt.Errorf("-coalesce-window %d is negative", *coalesceWindow))
	}
	if *coalesceCap < 0 {
		fatal(fmt.Errorf("-coalesce-cap %d is negative", *coalesceCap))
	}
	if *coalesceCap > 0 && *coalesceWindow == 0 {
		fatal(fmt.Errorf("-coalesce-cap %d has no effect without -coalesce-window", *coalesceCap))
	}
	exp.Shards = *shards
	exp.Topology = *topology
	exp.CoalesceWindow = *coalesceWindow
	exp.CoalesceCap = *coalesceCap

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}
	scale, err := exp.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	ids := exp.IDs()
	if *onlyFlag != "" {
		// Validate the full ID list up front — an unknown ID must fail
		// before any experiment burns time — and keep the user's order.
		ids = strings.Split(*onlyFlag, ",")
		for i, id := range ids {
			ids[i] = strings.TrimSpace(id)
			if _, ok := exp.All[ids[i]]; !ok {
				fatal(fmt.Errorf("unknown experiment %q (use -list)", ids[i]))
			}
		}
	}
	// SIGINT/SIGTERM cancel the sweep context: in-flight cells stop
	// cooperatively, undispatched cells report the cancellation, and the
	// process exits nonzero. A second signal kills the process the default
	// way, because stop() deregisters once the context is cancelled.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	context.AfterFunc(ctx, stopSignals)
	fmt.Printf("NOVA reproduction experiments — scale=%s\n", scale)
	if *benchPath != "" {
		// Pre-build the dataset registry so the timed sequential and
		// parallel sweeps pay no one-time generation cost.
		exp.Warm(scale)
	}

	type benchEntry struct {
		Jobs      int     `json:"jobs"`
		Cells     int     `json:"cells"`
		SeqMillis float64 `json:"seq_ms"`
		ParMillis float64 `json:"par_ms"`
		Speedup   float64 `json:"speedup"`
		CellsBusy float64 `json:"cells_busy_ms"`
	}
	bench := map[string]benchEntry{}

	for _, id := range ids {
		runner := exp.All[id]
		table, st, err := runOne(ctx, runner, id, scale, *jobs, !*quiet)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "experiments: %s interrupted\n", id)
				os.Exit(130)
			}
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		if *markdown {
			table.Markdown(os.Stdout)
		} else {
			table.Render(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "  [%s completed in %v, %d cells, jobs=%d]\n",
			id, st.wall.Round(time.Millisecond), st.cells, *jobs)
		if *benchPath != "" {
			_, seq, err := runOne(ctx, runner, id, scale, 1, false)
			if err != nil {
				fatal(fmt.Errorf("%s (sequential bench): %w", id, err))
			}
			speedup := 0.0
			if st.wall > 0 {
				speedup = float64(seq.wall) / float64(st.wall)
			}
			bench[id] = benchEntry{
				Jobs:      *jobs,
				Cells:     st.cells,
				SeqMillis: float64(seq.wall) / float64(time.Millisecond),
				ParMillis: float64(st.wall) / float64(time.Millisecond),
				Speedup:   speedup,
				CellsBusy: float64(st.busy) / float64(time.Millisecond),
			}
			fmt.Fprintf(os.Stderr, "  [%s bench: seq %v vs jobs=%d %v → %.2fx]\n",
				id, seq.wall.Round(time.Millisecond), *jobs, st.wall.Round(time.Millisecond), speedup)
		}
	}
	if *benchPath != "" {
		out := struct {
			Scale    string                `json:"scale"`
			Jobs     int                   `json:"jobs"`
			MaxProcs int                   `json:"gomaxprocs"`
			Figures  map[string]benchEntry `json:"figures"`
		}{scale.String(), *jobs, runtime.GOMAXPROCS(0), bench}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*benchPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wall-clock comparison written to %s\n", *benchPath)
	}
}

// sweepStats aggregates one experiment run: wall clock, cumulative busy
// time across cells (the sequential-equivalent cost), and cell count.
type sweepStats struct {
	wall  time.Duration
	busy  time.Duration
	cells int
}

func runOne(ctx context.Context, runner exp.Runner, id string, scale exp.Scale, jobs int, progress bool) (*exp.Table, sweepStats, error) {
	var st sweepStats
	pool := &harness.Pool{Workers: jobs}
	pool.OnDone = func(ev harness.Event) {
		st.busy += ev.Elapsed
		st.cells++
		if progress {
			status := ""
			if ev.Err != nil {
				status = " FAILED"
			}
			fmt.Fprintf(os.Stderr, "  [%s %d/%d] %s (%v)%s\n",
				id, ev.Done, ev.Total, ev.Name, ev.Elapsed.Round(time.Millisecond), status)
		}
	}
	start := time.Now()
	table, err := runner(ctx, scale, pool)
	st.wall = time.Since(start)
	return table, st, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
