// Command novasim runs a single workload on a single engine and prints
// the full metrics report — the quickest way to poke at the simulator.
//
// Usage:
//
//	novasim -engine nova -workload sssp -graph twitter -gpns 2 -scale small
//	novasim -engine polygraph -workload bfs -graph urand
//	novasim -engine ligra -workload pr -graph road
package main

import (
	"flag"
	"fmt"
	"os"

	"nova"
	"nova/graph"
	"nova/internal/exp"
	"nova/program"
)

func main() {
	engine := flag.String("engine", "nova", "nova|polygraph|ligra")
	workload := flag.String("workload", "bfs", "bfs|sssp|cc|pr|bc")
	graphName := flag.String("graph", "twitter", "road|twitter|friendster|host|urand")
	scaleFlag := flag.String("scale", "small", "small|medium|full")
	gpns := flag.Int("gpns", 1, "number of GPNs (nova engine)")
	mapping := flag.String("mapping", "random", "random|interleave|load-balanced|locality")
	spill := flag.String("spill", "overwrite", "overwrite|fifo")
	fabric := flag.String("fabric", "hierarchical", "hierarchical|ideal")
	prIters := flag.Int("pr-iters", 10, "PageRank iterations")
	verify := flag.Bool("verify", true, "check results against the sequential oracle")
	graphFile := flag.String("graph-file", "", "load graph from an edge-list file instead of the registry")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file (nova engine only)")
	flag.Parse()

	scale, err := exp.ParseScale(*scaleFlag)
	check(err)
	var d *exp.Dataset
	if *graphFile != "" {
		f, err := os.Open(*graphFile)
		check(err)
		loaded, err := graph.ReadEdgeList(*graphFile, f)
		f.Close()
		check(err)
		d = &exp.Dataset{Name: loaded.Name, Graph: loaded, Root: loaded.LargestOutDegreeVertex()}
	} else {
		d, err = exp.DatasetByName(scale, *graphName)
		check(err)
	}
	g := d.Graph
	var gT = d.Transpose()
	if *workload == "cc" {
		g = d.Sym()
		gT = g
	}
	fmt.Printf("graph %s: %d vertices, %d edges (avg deg %.1f)\n",
		g.Name, g.NumVertices(), g.NumEdges(), g.AvgDegree())

	switch *engine {
	case "nova":
		cfg := exp.NOVAConfig(scale, *gpns)
		cfg.Mapping = *mapping
		cfg.Spill = *spill
		cfg.Fabric = *fabric
		acc, err := nova.New(cfg)
		check(err)
		if *tracePath != "" {
			if p := singleProgram(*workload, d, *prIters); p != nil {
				f, err := os.Create(*tracePath)
				check(err)
				rep, err := acc.RunTraced(p, g, f)
				check(f.Close())
				check(err)
				fmt.Printf("trace written to %s\n", *tracePath)
				fmt.Printf("workload %s: %.3f ms simulated, %d edges traversed\n",
					*workload, rep.Stats.SimSeconds*1e3, rep.Stats.EdgesTraversed)
				return
			}
			check(fmt.Errorf("-trace supports single-phase workloads (bfs/sssp/cc/pr)"))
		}
		out, err := nova.RunWorkload(acc, *workload, g, gT, d.Root, *prIters)
		check(err)
		printOutcome(out)
		if *verify && out.Props != nil && (*workload == "bfs" || *workload == "sssp" || *workload == "cc") {
			check(nova.Verify(*workload, g, d.Root, out.Props))
			fmt.Println("verified against sequential oracle: OK")
		}
	case "polygraph":
		pg := exp.PGBaseline(scale)
		out, err := nova.RunWorkload(pg, *workload, g, gT, d.Root, *prIters)
		check(err)
		if p := singleProgram(*workload, d, *prIters); p != nil {
			rep, err := pg.Run(p, g)
			if err == nil {
				fmt.Printf("slices=%d passes=%d breakdown: proc=%.1f%% switch=%.1f%% ineff=%.1f%%\n",
					rep.SliceCount, rep.SlicePasses,
					100*rep.ProcessingSeconds/rep.Stats.SimSeconds,
					100*rep.SwitchingSeconds/rep.Stats.SimSeconds,
					100*rep.InefficiencySeconds/rep.Stats.SimSeconds)
			}
		}
		printOutcome(out)
	case "ligra":
		sw := &nova.Software{}
		rep, err := sw.RunWorkload(*workload, g, gT, d.Root, *prIters)
		check(err)
		fmt.Printf("wall time: %.3f ms, traversed %d edges, %.3f GTEPS, %d iterations\n",
			rep.Seconds*1e3, rep.EdgesTraversed, rep.GTEPS(), rep.Iterations)
	default:
		check(fmt.Errorf("unknown engine %q", *engine))
	}
}

// singleProgram rebuilds the one-phase program used for the PolyGraph
// breakdown line (bc is two-phase and reported only via the outcome).
func singleProgram(workload string, d *exp.Dataset, prIters int) program.Program {
	switch workload {
	case "bfs":
		return program.NewBFS(d.Root)
	case "sssp":
		return program.NewSSSP(d.Root)
	case "cc":
		return program.NewCC()
	case "pr":
		return program.NewPageRank(0.85, prIters)
	default:
		return nil
	}
}

func printOutcome(out *nova.Outcome) {
	fmt.Printf("workload %s: %.3f ms simulated, %d edges traversed, %d messages (%.1f%% coalesced)\n",
		out.Workload, out.Stats.SimSeconds*1e3, out.Stats.EdgesTraversed,
		out.Stats.MessagesSent,
		100*float64(out.Stats.MessagesCoalesced)/float64(max64(out.Stats.MessagesSent, 1)))
	fmt.Printf("work efficiency %.3f, effective throughput %.3f GTEPS\n",
		out.WorkEfficiency(), out.EffectiveGTEPS())
	if out.Stats.Epochs > 0 {
		fmt.Printf("BSP epochs: %d\n", out.Stats.Epochs)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "novasim:", err)
		os.Exit(1)
	}
}
