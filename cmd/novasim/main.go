// Command novasim runs workloads on the simulated engines and prints the
// full metrics report — the quickest way to poke at the simulator.
//
// Usage:
//
//	novasim -engine nova -workload sssp -graph twitter -gpns 2 -scale small
//	novasim -engine polygraph -workload bfs -graph urand
//	novasim -engine ligra -workload pr -graph road
//
// Comma-separated lists (or "all") sweep the engine×workload grid through
// the harness pool, fanning cells out over -jobs workers:
//
//	novasim -engine all -workload bfs,pr -graph twitter -jobs 4
//
// -stats-out writes the merged hierarchical statistics dump of every cell
// (format by extension: .json, .csv, .txt); see STATS.md for the record
// reference and cmd/statdiff for comparing dumps:
//
//	novasim -engine nova -workload sssp -graph urand -stats-out run.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"nova"
	"nova/graph"
	"nova/internal/exp"
	"nova/internal/harness"
	"nova/internal/network"
	"nova/internal/prof"
	"nova/internal/stats"
	"nova/program"
)

func main() {
	engine := flag.String("engine", "nova", "nova|polygraph|ligra|extmem, comma-separated list, or all")
	workload := flag.String("workload", "bfs", "bfs|sssp|cc|pr|bc|prdelta, comma-separated list, or all")
	graphName := flag.String("graph", "twitter", "road|twitter|friendster|host|urand")
	scaleFlag := flag.String("scale", "small", "small|medium|full|large")
	gpns := flag.Int("gpns", 1, "number of GPNs (nova engine)")
	shards := flag.Int("shards", 1, "simulation worker goroutines for the sharded nova kernel (clamped to -gpns; results are bit-identical at every setting)")
	mapping := flag.String("mapping", "random", "random|interleave|load-balanced|locality")
	spill := flag.String("spill", "overwrite", "overwrite|fifo")
	fabric := flag.String("fabric", "hierarchical", "hierarchical|ideal")
	topology := flag.String("topology", "crossbar", "inter-GPN topology: crossbar|ring|mesh|torus (nova engine, hierarchical fabric)")
	coalesceWindow := flag.Int64("coalesce-window", 0, "in-fabric coalescing window in cycles (0 = off; nova engine, hierarchical fabric)")
	coalesceCap := flag.Int("coalesce-cap", 0, "coalescing buffer capacity in message entries (0 = default; requires -coalesce-window)")
	prIters := flag.Int("pr-iters", 10, "PageRank iterations")
	outOfCore := flag.Bool("out-of-core", false, "enable the SSD-backed out-of-core tier (nova engine): vertex blocks outside the resident window pay a modeled page-in")
	ssdPreset := flag.String("ssd", "", "SSD timing preset for paging engines: nvme (default) or sata")
	ssdResidentPages := flag.Int("ssd-resident-pages", 0, "per-PE SSD resident window in pages (nova engine, requires -out-of-core; 0 = default)")
	extmemRAM := flag.Int64("extmem-ram", 0, "DRAM partition-cache budget in bytes for the extmem engine (0 = default 256 MiB)")
	extmemPartEdges := flag.Int64("extmem-part-edges", 0, "target edges per vertex interval for the extmem engine (0 = default 1Mi)")
	verify := flag.Bool("verify", true, "check results against the sequential oracle")
	graphFile := flag.String("graph-file", "", "load graph from a file instead of the registry (.csr = binary CSR container, else edge list)")
	partitionCache := flag.Int("partition-cache", 0, "page a partitioned .csr -graph-file through a bounded partition cache of this many resident partitions (0 = load normally)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file (nova engine only)")
	statsOut := flag.String("stats-out", "", "write the merged statistics dump to FILE (.json, .csv, or .txt by extension)")
	jobsN := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent cells in sweep mode")
	timeout := flag.Duration("timeout", 0, "per-cell wall-clock timeout (0 = unbounded); a timed-out cell reports a partial result")
	profFlags := prof.RegisterFlags()
	flag.Parse()
	defer profFlags.Start()()
	exp.Shards = *shards

	// SIGINT/SIGTERM cancel the run context: the engines stop cooperatively
	// within one poll interval and partial results are still rendered (and
	// flushed to -stats-out, marked partial). A second signal kills the
	// process the default way, because stop() deregisters on cancellation.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	context.AfterFunc(ctx, stopSignals)

	engines := splitList(*engine, []string{"nova", "polygraph", "ligra", "extmem"})
	workloads := splitList(*workload, nova.WorkloadNames)
	// Reject inconsistent fabric knobs before touching any dataset: graph
	// construction at the larger scales is the expensive part of a run,
	// and a bad flag combination should fail in milliseconds, not minutes.
	check(validateFabricFlags(engines, *fabric, *topology, *coalesceWindow, *coalesceCap))
	oc := oocFlags{outOfCore: *outOfCore, ssdPreset: *ssdPreset, ssdResidentPages: *ssdResidentPages,
		extmemRAM: *extmemRAM, extmemPartEdges: *extmemPartEdges}
	check(validateOOCFlags(engines, oc))

	scale, err := exp.ParseScale(*scaleFlag)
	check(err)
	var d *exp.Dataset
	if *graphFile != "" {
		var loaded *graph.CSR
		if strings.HasSuffix(*graphFile, ".csr") {
			// The versioned binary CSR container: checksummed, loaded in
			// constant memory (graphgen -o writes it).
			loaded, err = loadCSRFile(*graphFile, *partitionCache)
		} else {
			if *partitionCache > 0 {
				check(fmt.Errorf("-partition-cache pages the partitioned .csr container; %q is an edge list", *graphFile))
			}
			var f *os.File
			f, err = os.Open(*graphFile)
			check(err)
			loaded, err = graph.ReadEdgeList(*graphFile, f)
			f.Close()
		}
		check(err)
		d = &exp.Dataset{Name: loaded.Name, Graph: loaded, Root: loaded.LargestOutDegreeVertex()}
	} else {
		if *partitionCache > 0 {
			check(fmt.Errorf("-partition-cache applies to a partitioned -graph-file, not registry graphs"))
		}
		d, err = exp.DatasetByName(scale, *graphName)
		check(err)
	}

	// -stats-out routes through the sweep path even for a single cell, so
	// every cell's dump lands in one merged, engine.workload-prefixed file.
	if len(engines)*len(workloads) > 1 || *statsOut != "" {
		fc := fabricFlags{fabric: *fabric, topology: *topology, coalesceWindow: *coalesceWindow, coalesceCap: *coalesceCap}
		runSweep(ctx, scale, d, engines, workloads, *gpns, *mapping, *spill, fc, oc, *prIters, *jobsN, *timeout, *statsOut)
		return
	}

	g := d.Graph
	var gT *graph.CSR
	switch {
	case *workload == "cc":
		g = d.Sym()
		gT = g
	case *workload == "bc" || *engine == "ligra":
		// Only bc and the pull-direction software engine consume the
		// transpose; building it unconditionally would double the memory
		// footprint of large-tier runs.
		gT = d.Transpose()
	}
	fmt.Printf("graph %s: %d vertices, %d edges (avg deg %.1f)\n",
		g.Name, g.NumVertices(), g.NumEdges(), g.AvgDegree())

	switch *engine {
	case "nova":
		cfg := exp.NOVAConfig(scale, *gpns)
		cfg.Mapping = *mapping
		cfg.Spill = *spill
		cfg.Fabric = *fabric
		cfg.Topology = *topology
		cfg.CoalesceWindow = *coalesceWindow
		cfg.CoalesceCapacity = *coalesceCap
		oc.apply(&cfg)
		acc, err := nova.New(cfg)
		check(err)
		if *tracePath != "" {
			if p := singleProgram(*workload, d, *prIters); p != nil {
				f, err := os.Create(*tracePath)
				check(err)
				rep, err := acc.RunTraced(p, g, f)
				check(f.Close())
				check(err)
				fmt.Printf("trace written to %s\n", *tracePath)
				fmt.Printf("workload %s: %.3f ms simulated, %d edges traversed\n",
					*workload, rep.Stats.SimSeconds*1e3, rep.Stats.EdgesTraversed)
				return
			}
			check(fmt.Errorf("-trace supports single-phase workloads (bfs/sssp/cc/pr)"))
		}
		out, err := nova.RunWorkloadContext(ctx, acc, *workload, g, gT, d.Root, *prIters)
		checkPartial(out, err)
		printOutcome(out)
		if *verify && !out.Partial && out.Props != nil && (*workload == "bfs" || *workload == "sssp" || *workload == "cc") {
			check(nova.Verify(*workload, g, d.Root, out.Props))
			fmt.Println("verified against sequential oracle: OK")
		}
		exitPartial(out)
	case "polygraph":
		if *workload == nova.SpillStressWorkload {
			check(fmt.Errorf("%q is the NOVA spill-stress workload; run it with -engine nova", *workload))
		}
		pg := exp.PGBaseline(scale)
		out, err := nova.RunWorkloadContext(ctx, pg, *workload, g, gT, d.Root, *prIters)
		checkPartial(out, err)
		if p := singleProgram(*workload, d, *prIters); p != nil && !out.Partial {
			rep, err := pg.Run(p, g)
			if err == nil {
				fmt.Printf("slices=%d passes=%d breakdown: proc=%.1f%% switch=%.1f%% ineff=%.1f%%\n",
					rep.SliceCount, rep.SlicePasses,
					100*rep.ProcessingSeconds/rep.Stats.SimSeconds,
					100*rep.SwitchingSeconds/rep.Stats.SimSeconds,
					100*rep.InefficiencySeconds/rep.Stats.SimSeconds)
			}
		}
		printOutcome(out)
		exitPartial(out)
	case "extmem":
		em := oc.extmem()
		out, err := nova.RunWorkloadContext(ctx, em, *workload, g, gT, d.Root, *prIters)
		checkPartial(out, err)
		if p := singleProgram(*workload, d, *prIters); p != nil && !out.Partial {
			rep, rerr := em.Run(p, g)
			if rerr == nil {
				fmt.Printf("partitions=%d rounds=%d loads=%d paged=%d B io-stall=%.1f%% hit-rate=%.1f%%\n",
					rep.Partitions, rep.Rounds, rep.PartitionLoads, rep.BytesPaged,
					100*float64(rep.IOStallCycles)/float64(max64(int64(rep.Cycles), 1)),
					100*rep.CacheHitRate)
			}
		}
		printOutcome(out)
		if *verify && !out.Partial && out.Props != nil && (*workload == "bfs" || *workload == "sssp" || *workload == "cc") {
			check(nova.Verify(*workload, g, d.Root, out.Props))
			fmt.Println("verified against sequential oracle: OK")
		}
		exitPartial(out)
	case "ligra":
		sw := &nova.Software{}
		rep, err := sw.RunWorkloadContext(ctx, *workload, g, gT, d.Root, *prIters)
		if err != nil && (rep == nil || !rep.Partial) {
			check(err)
		}
		fmt.Printf("wall time: %.3f ms, traversed %d edges, %.3f GTEPS, %d iterations\n",
			rep.Seconds*1e3, rep.EdgesTraversed, rep.GTEPS(), rep.Iterations)
		if rep.Partial {
			fmt.Printf("PARTIAL run (%s): counts cover only the iterations before the stop\n", rep.StopReason)
			os.Exit(1)
		}
	default:
		check(fmt.Errorf("unknown engine %q", *engine))
	}
}

// singleProgram rebuilds the one-phase program used for the PolyGraph
// breakdown line (bc is two-phase and reported only via the outcome).
func singleProgram(workload string, d *exp.Dataset, prIters int) program.Program {
	switch workload {
	case "bfs":
		return program.NewBFS(d.Root)
	case "sssp":
		return program.NewSSSP(d.Root)
	case "cc":
		return program.NewCC()
	case "pr":
		return program.NewPageRank(0.85, prIters)
	case "prdelta":
		return program.NewPRDelta(0.85, 1e-7) // see nova.SpillStressWorkload on the tolerance
	default:
		return nil
	}
}

// checkPartial exits on hard errors but lets salvaged partial outcomes
// through so they can be rendered before the process reports failure.
func checkPartial(out *nova.Outcome, err error) {
	if err != nil && (out == nil || !out.Partial) {
		check(err)
	}
}

// exitPartial fails the process after a partial outcome has been printed:
// an interrupted or budget-capped run must not read as a green one.
func exitPartial(out *nova.Outcome) {
	if out.Partial {
		os.Exit(1)
	}
}

func printOutcome(out *nova.Outcome) {
	fmt.Printf("workload %s: %.3f ms simulated, %d edges traversed, %d messages (%.1f%% coalesced)\n",
		out.Workload, out.Stats.SimSeconds*1e3, out.Stats.EdgesTraversed,
		out.Stats.MessagesSent,
		100*float64(out.Stats.MessagesCoalesced)/float64(max64(out.Stats.MessagesSent, 1)))
	fmt.Printf("work efficiency %.3f, effective throughput %.3f GTEPS\n",
		out.WorkEfficiency(), out.EffectiveGTEPS())
	if out.Stats.Epochs > 0 {
		fmt.Printf("BSP epochs: %d\n", out.Stats.Epochs)
	}
	if out.Partial {
		fmt.Printf("PARTIAL run (%s): stats cover only the work before the stop\n", out.StopReason)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "novasim:", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value, expanding "all".
func splitList(v string, all []string) []string {
	if v == "all" {
		return all
	}
	parts := strings.Split(v, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// fabricFlags bundles the interconnect knobs threaded into nova cells.
type fabricFlags struct {
	fabric         string
	topology       string
	coalesceWindow int64
	coalesceCap    int
}

// oocFlags bundles the out-of-core knobs: the nova engine's SSD tier and
// the extmem baseline's partition-cache geometry.
type oocFlags struct {
	outOfCore        bool
	ssdPreset        string
	ssdResidentPages int
	extmemRAM        int64
	extmemPartEdges  int64
}

// apply stamps the nova-engine out-of-core settings into cfg.
func (oc oocFlags) apply(cfg *nova.Config) {
	cfg.OutOfCore = oc.outOfCore
	if oc.outOfCore {
		cfg.SSDPreset = oc.ssdPreset
		cfg.SSDResidentPages = oc.ssdResidentPages
	}
}

// extmem assembles the external-memory baseline from the flags.
func (oc oocFlags) extmem() *nova.ExternalMemory {
	return &nova.ExternalMemory{RAMBytes: oc.extmemRAM, PartitionEdges: oc.extmemPartEdges, SSDPreset: oc.ssdPreset}
}

// validateOOCFlags rejects out-of-core knobs that the selected engines
// would silently ignore, before any dataset is built.
func validateOOCFlags(engines []string, oc oocFlags) error {
	switch oc.ssdPreset {
	case "", "nvme", "sata":
	default:
		return fmt.Errorf("-ssd %q: the SSD presets are nvme and sata", oc.ssdPreset)
	}
	if oc.ssdResidentPages > 0 && !oc.outOfCore {
		return fmt.Errorf("-ssd-resident-pages sizes the out-of-core resident window; add -out-of-core")
	}
	if oc.ssdResidentPages < 0 {
		return fmt.Errorf("-ssd-resident-pages %d: the window is a page count and cannot be negative", oc.ssdResidentPages)
	}
	if oc.extmemRAM < 0 || oc.extmemPartEdges < 0 {
		return fmt.Errorf("-extmem-ram/-extmem-part-edges cannot be negative")
	}
	has := func(name string) bool {
		for _, e := range engines {
			if e == name {
				return true
			}
		}
		return false
	}
	if (oc.outOfCore || oc.ssdResidentPages > 0) && !has("nova") {
		return fmt.Errorf("-out-of-core applies to the nova engine only; engines %v would silently ignore it (add nova to -engine)", engines)
	}
	if (oc.extmemRAM > 0 || oc.extmemPartEdges > 0) && !has("extmem") {
		return fmt.Errorf("-extmem-ram/-extmem-part-edges apply to the extmem engine only; engines %v would silently ignore them (add extmem to -engine)", engines)
	}
	if oc.ssdPreset != "" && !oc.outOfCore && !has("extmem") {
		return fmt.Errorf("-ssd picks the paging device for -out-of-core nova or the extmem engine; neither is selected")
	}
	return nil
}

// loadCSRFile loads a binary CSR container. A partitioned container with
// -partition-cache set is paged through a bounded PartitionedCSR — the
// process never holds more than the cache's worth of partitions while
// assembling the graph — and the pager traffic is reported; the result is
// bit-identical to a flat load at every cache size.
func loadCSRFile(path string, partitionCache int) (*graph.CSR, error) {
	info, err := graph.StatCSRFile(path)
	if err != nil {
		return nil, err
	}
	if !info.Partitioned {
		if partitionCache > 0 {
			return nil, fmt.Errorf("-partition-cache needs a partitioned container; %s is flat (rebuild with graphgen -partition-edges)", path)
		}
		return graph.ReadCSRFile(path)
	}
	if partitionCache <= 0 {
		// Partitioned containers load fine through the flat reader; paging
		// is opt-in via -partition-cache.
		return graph.ReadCSRFile(path)
	}
	pc, err := graph.OpenPartitionedCSR(path, partitionCache)
	if err != nil {
		return nil, err
	}
	defer pc.Close()
	g, err := pc.Materialize()
	if err != nil {
		return nil, err
	}
	st := pc.Stats()
	fmt.Fprintf(os.Stderr, "paged %s: %d partitions through a %d-slot cache (loads=%d evictions=%d, %d B paged, mmap=%v)\n",
		path, pc.NumPartitions(), partitionCache, st.Loads, st.Evictions, st.BytesPaged, pc.Mapped())
	return g, nil
}

// validateFabricFlags rejects inconsistent -fabric/-topology/-coalesce-*
// combinations before any dataset is built. The topology and coalescing
// stage live in the nova engine's hierarchical fabric, so they are
// meaningless on the ideal fabric and on the baseline engines.
func validateFabricFlags(engines []string, fabric, topology string, window int64, capacity int) error {
	if _, err := network.ParseTopoKind(topology); err != nil {
		return err
	}
	if window < 0 {
		return fmt.Errorf("-coalesce-window %d: the window is a cycle count and cannot be negative", window)
	}
	if capacity < 0 {
		return fmt.Errorf("-coalesce-cap %d: the buffer capacity cannot be negative", capacity)
	}
	if capacity > 0 && window == 0 {
		return fmt.Errorf("-coalesce-cap %d has no effect without -coalesce-window; set a window to enable coalescing", capacity)
	}
	nonDefault := (topology != "" && topology != "crossbar") || window > 0
	if !nonDefault {
		return nil
	}
	if fabric == "ideal" {
		return fmt.Errorf("-topology/-coalesce-window configure the hierarchical fabric; the ideal fabric has no inter-GPN links (drop -fabric ideal)")
	}
	hasNova := false
	for _, e := range engines {
		if e == "nova" {
			hasNova = true
		}
	}
	if !hasNova {
		return fmt.Errorf("-topology/-coalesce-window apply to the nova engine only; engines %v would silently ignore them (add nova to -engine)", engines)
	}
	return nil
}

// buildEngine assembles one harness engine from the command-line knobs.
func buildEngine(name string, scale exp.Scale, gpns int, mapping, spill string, fc fabricFlags, oc oocFlags) (harness.Engine, error) {
	switch name {
	case "nova":
		cfg := exp.NOVAConfig(scale, gpns)
		cfg.Mapping = mapping
		cfg.Spill = spill
		cfg.Fabric = fc.fabric
		cfg.Topology = fc.topology
		cfg.CoalesceWindow = fc.coalesceWindow
		cfg.CoalesceCapacity = fc.coalesceCap
		oc.apply(&cfg)
		return exp.NovaEngineWith(cfg)
	case "polygraph":
		return exp.PGEngine(scale), nil
	case "ligra":
		return exp.LigraEngine(), nil
	case "extmem":
		return oc.extmem().Engine(), nil
	default:
		return nil, fmt.Errorf("unknown engine %q", name)
	}
}

// runSweep fans the engine×workload grid out over the harness pool and
// prints one summary line per cell, in grid order, plus the wall-clock
// cost of the sweep vs its sequential equivalent. Cancelling ctx (Ctrl-C)
// stops running cells cooperatively; their salvaged partial reports are
// rendered, flushed to -stats-out marked partial, and fail the process.
func runSweep(ctx context.Context, scale exp.Scale, d *exp.Dataset, engines, workloads []string, gpns int, mapping, spill string, fc fabricFlags, oc oocFlags, prIters, jobsN int, timeout time.Duration, statsOut string) {
	fmt.Printf("graph %s: %d vertices, %d edges (avg deg %.1f)\n",
		d.Graph.Name, d.Graph.NumVertices(), d.Graph.NumEdges(), d.Graph.AvgDegree())
	var jobs []harness.Job[*harness.Report]
	for _, en := range engines {
		eng, err := buildEngine(en, scale, gpns, mapping, spill, fc, oc)
		check(err)
		for _, w := range workloads {
			eng, w := eng, w
			g := d.Graph
			var gT *graph.CSR
			switch {
			case w == "cc":
				g = d.Sym()
				gT = g
			case w == "bc" || en == "ligra":
				gT = d.Transpose() // cached across cells by the dataset
			}
			jobs = append(jobs, harness.Job[*harness.Report]{
				Name: fmt.Sprintf("%s/%s", eng.Name(), w),
				Run: func(ctx context.Context) (*harness.Report, error) {
					return eng.RunWorkload(ctx, harness.Workload{Name: w, G: g, GT: gT, Root: d.Root, PRIters: prIters, Tier: scale.String()})
				},
			})
		}
	}
	var busy time.Duration
	pool := &harness.Pool{Workers: jobsN, JobTimeout: timeout, OnDone: func(ev harness.Event) {
		busy += ev.Elapsed
		fmt.Fprintf(os.Stderr, "  [%d/%d] %s (%v)\n", ev.Done, ev.Total, ev.Name, ev.Elapsed.Round(time.Millisecond))
	}}
	start := time.Now()
	results := harness.Map(ctx, pool, jobs)
	wall := time.Since(start)

	fmt.Printf("%-10s %-8s %12s %14s %12s %10s\n", "engine", "workload", "time(ms)", "edges", "eff-gteps", "work-eff")
	failed := 0
	for _, r := range results {
		rep := r.Value
		if r.Err != nil && (rep == nil || !rep.Partial) {
			failed++
			fmt.Printf("%-10s %s\n", r.Name, r.Err)
			continue
		}
		marker := ""
		if rep.Partial {
			// A salvaged cell still renders its stats — they cover the work
			// completed before the stop — but fails the sweep.
			failed++
			marker = fmt.Sprintf("  PARTIAL(%s)", rep.StopReason)
		}
		fmt.Printf("%-10s %-8s %12.3f %14d %12.3f %10.3f%s\n",
			rep.Engine, rep.Workload, rep.Stats.SimSeconds*1e3, rep.Stats.EdgesTraversed,
			rep.EffectiveGTEPS(), rep.WorkEfficiency(), marker)
	}
	speedup := 0.0
	if wall > 0 {
		speedup = float64(busy) / float64(wall)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells in %v wall (%v busy, jobs=%d, shards=%d, %.2fx vs sequential)\n",
		len(jobs), wall.Round(time.Millisecond), busy.Round(time.Millisecond), jobsN, exp.Shards, speedup)
	if statsOut != "" {
		check(writeStatsDump(results, d, statsOut, wall))
	}
	if failed > 0 {
		// A failed cell must fail the process, or CI reads a partial (even
		// empty) stats dump as a green run.
		fmt.Fprintf(os.Stderr, "novasim: %d of %d cells failed\n", failed, len(jobs))
		os.Exit(1)
	}
}

// writeStatsDump merges every cell's dump (prefixed engine.workload) into
// one file, choosing the sink by extension: .csv, .txt/.text, else JSON.
// Salvaged partial cells (interrupted, timed out, budget-capped) are
// included — their stats cover the work completed before the stop — and
// stamp the dump metadata partial=true so downstream tooling never
// mistakes a truncated sweep for a complete one.
func writeStatsDump(results []harness.Result[*harness.Report], d *exp.Dataset, path string, wall time.Duration) error {
	var parts []*stats.Dump
	partial := false
	for _, r := range results {
		if r.Value == nil || r.Value.Dump == nil {
			continue // failed cells and two-phase workloads ("bc") have no dump
		}
		if r.Value.Partial {
			partial = true
		}
		parts = append(parts, r.Value.Dump.Prefixed(r.Value.Engine+"."+r.Value.Workload))
	}
	meta := map[string]string{
		"graph":        d.Graph.Name,
		"shards":       fmt.Sprintf("%d", exp.Shards),
		"wall_seconds": fmt.Sprintf("%.3f", wall.Seconds()),
	}
	if partial {
		meta["partial"] = "true"
	}
	merged := stats.Merge(meta, parts...)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch {
	case strings.HasSuffix(path, ".csv"):
		err = merged.WriteCSV(f)
	case strings.HasSuffix(path, ".txt"), strings.HasSuffix(path, ".text"):
		err = merged.WriteText(f)
	default:
		err = merged.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stats: %d records from %d cells written to %s\n",
		len(merged.Records), len(parts), path)
	return nil
}
