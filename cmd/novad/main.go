// Command novad serves the simulator over HTTP: a graph registry of
// mmap-shared .csr containers, a job scheduler over the harness pool,
// and a fingerprint-keyed result cache that serves warm identical sweep
// cells without simulating. See API.md for the endpoint reference and
// DESIGN.md §17 for the architecture.
//
// Serve (the default mode):
//
//	novad -addr :8314 -graph twitter=data/twitter.csr -graph road=data/road.csr
//
// Load test — replay an engine×workload grid from N concurrent clients
// and record latency quantiles plus the cache-hit rate to a benchdiff
// record (`make serve-bench` commits it as BENCH_serve.json):
//
//	novad loadtest -clients 50 -rounds 4 -out BENCH_serve.json
//
// With -addr empty, loadtest boots an in-process server on a loopback
// listener (generating a medium uniform graph if -csr is not given), so
// the whole flow needs no prior setup.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"nova/graph"
	"nova/internal/service"
	"nova/internal/stats"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "loadtest":
			if err := loadtest(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "novad loadtest:", err)
				os.Exit(1)
			}
			return
		case "jobwait":
			if err := jobwait(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "novad jobwait:", err)
				os.Exit(1)
			}
			return
		}
	}
	if err := serve(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "novad:", err)
		os.Exit(1)
	}
}

// jobwait submits one job to a running daemon and blocks until it
// finishes, exiting nonzero on a failed (or, without -allow-partial,
// partial) run. It is the CI smoke client: submit → poll → fetch result,
// with no JSON tooling needed around it.
func jobwait(args []string) error {
	fs := flag.NewFlagSet("novad jobwait", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8314", "target daemon")
	engine := fs.String("engine", "nova", "engine the job runs on")
	workload := fs.String("workload", "bfs", "workload the job runs")
	graphName := fs.String("graph", "", "registered graph name (required)")
	timeoutMS := fs.Int64("timeout-ms", 0, "per-job timeout sent with the request (0 = server default)")
	wait := fs.Duration("wait", 5*time.Minute, "max wall clock to wait for completion")
	poll := fs.Duration("poll", 250*time.Millisecond, "status poll interval")
	allowPartial := fs.Bool("allow-partial", false, "exit 0 even if the run was salvaged partial")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphName == "" {
		return fmt.Errorf("-graph is required")
	}
	baseURL := "http://" + *addr
	httpc := &http.Client{Timeout: time.Minute}

	req := map[string]any{
		"engine":     *engine,
		"workload":   *workload,
		"graph":      *graphName,
		"timeout_ms": *timeoutMS,
	}
	body, _ := json.Marshal(req)
	resp, err := httpc.Post(baseURL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var st struct {
		ID         string `json:"id"`
		State      string `json:"state"`
		Cached     bool   `json:"cached"`
		Partial    bool   `json:"partial"`
		StopReason string `json:"stop_reason"`
		ElapsedMS  int64  `json:"elapsed_ms"`
		Error      string `json:"error"`
	}
	if err := decodeAndClose(resp, &st); err != nil {
		return err
	}
	fmt.Printf("job %s submitted (%s/%s on %s)\n", st.ID, *engine, *workload, *graphName)
	deadline := time.Now().Add(*wait)
	for st.State == "queued" || st.State == "running" {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after %v", st.ID, st.State, *wait)
		}
		time.Sleep(*poll)
		resp, err := httpc.Get(baseURL + "/jobs/" + st.ID)
		if err != nil {
			return err
		}
		if err := decodeAndClose(resp, &st); err != nil {
			return err
		}
	}
	if st.State != "done" {
		return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	resp, err = httpc.Get(baseURL + "/jobs/" + st.ID + "/result")
	if err != nil {
		return err
	}
	var res struct {
		SimSeconds     float64 `json:"sim_seconds"`
		EdgesTraversed int64   `json:"edges_traversed"`
		EffectiveGTEPS float64 `json:"effective_gteps"`
	}
	if err := decodeAndClose(resp, &res); err != nil {
		return fmt.Errorf("fetching result for %s: %w", st.ID, err)
	}
	fmt.Printf("job %s done in %d ms (cached=%v): %.3f ms simulated, %d edges, %.3f GTEPS\n",
		st.ID, st.ElapsedMS, st.Cached, res.SimSeconds*1e3, res.EdgesTraversed, res.EffectiveGTEPS)
	if st.Partial && !*allowPartial {
		return fmt.Errorf("job %s finished PARTIAL (%s)", st.ID, st.StopReason)
	}
	return nil
}

// graphFlags collects repeated -graph name=path registrations.
type graphFlags []struct{ name, path string }

func (g *graphFlags) String() string { return fmt.Sprintf("%d graphs", len(*g)) }

func (g *graphFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*g = append(*g, struct{ name, path string }{name, path})
	return nil
}

func serve(args []string) error {
	fs := flag.NewFlagSet("novad", flag.ExitOnError)
	addr := fs.String("addr", ":8314", "listen address")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	backlog := fs.Int("backlog", 64, "queued-job backlog before submissions get 503")
	timeout := fs.Duration("timeout", 0, "default per-job wall-clock budget (0 = unbounded)")
	cacheEntries := fs.Int("cache-entries", 256, "result-cache entry budget")
	var graphs graphFlags
	fs.Var(&graphs, "graph", "register name=path at boot (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := service.NewServer(service.Config{
		Workers:        *workers,
		Backlog:        *backlog,
		DefaultTimeout: *timeout,
		CacheEntries:   *cacheEntries,
	})
	defer srv.Close()
	for _, g := range graphs {
		info, err := srv.Registry().Register(g.name, g.path)
		if err != nil {
			return fmt.Errorf("registering %s: %w", g.name, err)
		}
		fmt.Printf("registered %s: |V|=%d |E|=%d hash=%s mapped=%v\n",
			info.Name, info.Vertices, info.Edges, info.ContentHash, info.Mapped)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Printf("novad listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("novad: %v, shutting down\n", s)
		_ = httpSrv.Close()
		return nil
	}
}

// cell is one grid coordinate the load test replays.
type cell struct {
	Engine   string
	Workload string
}

func loadtest(args []string) error {
	fs := flag.NewFlagSet("novad loadtest", flag.ExitOnError)
	addr := fs.String("addr", "", "target daemon (empty = boot an in-process server)")
	clients := fs.Int("clients", 50, "concurrent clients")
	rounds := fs.Int("rounds", 4, "grid replays per client (identical rounds exercise the cache)")
	graphName := fs.String("graph", "bench", "registered graph name the jobs target")
	csr := fs.String("csr", "", "graph container to serve (empty = generate a uniform graph)")
	vertices := fs.Int("vertices", 20000, "generated-graph vertex count (with empty -csr)")
	degree := fs.Float64("degree", 8, "generated-graph average degree (with empty -csr)")
	engines := fs.String("engines", "nova,polygraph,ligra", "comma-separated engine list")
	workloads := fs.String("workloads", "bfs,sssp,pr", "comma-separated workload list")
	timeoutMS := fs.Int64("timeout-ms", 120_000, "per-job timeout sent with every request")
	minHitRate := fs.Float64("min-hit-rate", 0, "fail unless the cache-hit rate reaches this fraction (CI gates warm rounds with it)")
	out := fs.String("out", "", "write the benchdiff record here (default stdout)")
	histOut := fs.String("hist-out", "", "write the latency histogram buckets as CSV (nightly artifact)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	base := *addr
	if base == "" {
		srv := service.NewServer(service.Config{Backlog: *clients * 2})
		defer srv.Close()
		path := *csr
		if path == "" {
			dir, err := os.MkdirTemp("", "novad-loadtest")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			path = filepath.Join(dir, "bench.csr")
			st := graph.NewUniformStream("bench", *vertices, *degree, 64, 42)
			if _, err := graph.BuildCSRFile(path, st, graph.BuildOptions{}); err != nil {
				return err
			}
		}
		if _, err := srv.Registry().Register(*graphName, path); err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		defer httpSrv.Close()
		base = ln.Addr().String()
	}
	baseURL := "http://" + base

	var grid []cell
	for _, e := range strings.Split(*engines, ",") {
		for _, w := range strings.Split(*workloads, ",") {
			grid = append(grid, cell{strings.TrimSpace(e), strings.TrimSpace(w)})
		}
	}
	if len(grid) == 0 {
		return fmt.Errorf("empty engine×workload grid")
	}

	// Each client owns a histogram and counters; merged after the run so
	// the hot path takes no shared locks.
	type clientStats struct {
		lat       stats.Histogram
		requests  uint64
		errors    uint64
		cacheHits uint64
		lastErr   string
	}
	perClient := make([]clientStats, *clients)
	httpc := &http.Client{Timeout: 5 * time.Minute}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(cs *clientStats) {
			defer wg.Done()
			for r := 0; r < *rounds; r++ {
				for _, cl := range grid {
					t0 := time.Now()
					hit, err := runCell(httpc, baseURL, cl, *graphName, *timeoutMS)
					cs.lat.Observe(uint64(time.Since(t0).Microseconds()))
					cs.requests++
					if err != nil {
						cs.errors++
						cs.lastErr = err.Error()
						continue
					}
					if hit {
						cs.cacheHits++
					}
				}
			}
		}(&perClient[c])
	}
	wg.Wait()
	wall := time.Since(start)

	var lat stats.Histogram
	var requests, errCount, hits uint64
	lastErr := ""
	for i := range perClient {
		lat.Merge(perClient[i].lat)
		requests += perClient[i].requests
		errCount += perClient[i].errors
		hits += perClient[i].cacheHits
		if perClient[i].lastErr != "" {
			lastErr = perClient[i].lastErr
		}
	}
	if errCount > 0 {
		fmt.Fprintf(os.Stderr, "loadtest: %d/%d requests failed (last: %s)\n", errCount, requests, lastErr)
	}

	record := map[string]any{
		"serve": map[string]any{
			"clients":          *clients,
			"rounds":           *rounds,
			"grid_cells":       len(grid),
			"requests":         requests,
			"errors":           errCount,
			"cache_hits":       hits,
			"cache_hit_rate":   ratio(hits, requests),
			"wall_ms":          float64(wall.Milliseconds()),
			"requests_per_sec": float64(requests) / wall.Seconds(),
			"latency_us": map[string]any{
				"mean": lat.Mean(),
				"p50":  lat.Quantile(0.50),
				"p90":  lat.Quantile(0.90),
				"p99":  lat.Quantile(0.99),
			},
		},
	}
	body, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(body)
	} else {
		err = os.WriteFile(*out, body, 0o644)
	}
	if err != nil {
		return err
	}
	if *histOut != "" {
		if err := writeHistCSV(*histOut, &lat); err != nil {
			return err
		}
	}
	if errCount > 0 {
		return fmt.Errorf("%d request(s) failed", errCount)
	}
	if hr := ratio(hits, requests); hr < *minHitRate {
		return fmt.Errorf("cache-hit rate %.3f below -min-hit-rate %.3f (warm rounds must hit)", hr, *minHitRate)
	}
	return nil
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// runCell submits one job and waits for its result, reporting whether the
// response was served from the cache.
func runCell(c *http.Client, baseURL string, cl cell, graphName string, timeoutMS int64) (cacheHit bool, err error) {
	req := map[string]any{
		"engine":     cl.Engine,
		"workload":   cl.Workload,
		"graph":      graphName,
		"timeout_ms": timeoutMS,
	}
	body, _ := json.Marshal(req)
	resp, err := c.Post(baseURL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	var st struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Cached bool   `json:"cached"`
		Error  string `json:"error"`
	}
	if err := decodeAndClose(resp, &st); err != nil {
		return false, err
	}
	for st.State == "queued" || st.State == "running" {
		time.Sleep(5 * time.Millisecond)
		resp, err := c.Get(baseURL + "/jobs/" + st.ID)
		if err != nil {
			return false, err
		}
		if err := decodeAndClose(resp, &st); err != nil {
			return false, err
		}
	}
	if st.State != "done" {
		return false, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	// Fetch the rendered result so every request exercises the full
	// read path, not just the status poll.
	resp, err = c.Get(baseURL + "/jobs/" + st.ID + "/result")
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("result for %s: HTTP %d", st.ID, resp.StatusCode)
	}
	return st.Cached, nil
}

func decodeAndClose(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// writeHistCSV dumps the latency histogram's populated buckets — the
// nightly workflow uploads this as its latency artifact.
func writeHistCSV(path string, h *stats.Histogram) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "bucket,hi_us,count"); err != nil {
		return err
	}
	for b := 0; b < h.NumBuckets(); b++ {
		n := h.Bucket(b)
		if n == 0 {
			continue
		}
		// Log2 bucketing: bucket 0 counts zeros, bucket b counts
		// [2^(b-1), 2^b), the last bucket is unbounded (see
		// stats.Histogram).
		hi := "inf"
		switch {
		case b == 0:
			hi = "0"
		case b < h.NumBuckets()-1:
			hi = fmt.Sprintf("%d", uint64(1)<<b-1)
		}
		if _, err := fmt.Fprintf(f, "%d,%s,%d\n", b, hi, n); err != nil {
			return err
		}
	}
	return nil
}
