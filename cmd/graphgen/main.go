// Command graphgen generates the synthetic graphs used by the
// reproduction and prints their statistics, optionally dumping the edge
// list as tab-separated "src dst weight" lines or writing the versioned
// binary CSR container.
//
// Usage:
//
//	graphgen -kind rmat -vertices 65536 -degree 16 -seed 7
//	graphgen -kind grid -rows 128 -cols 128 -drop 0.39
//	graphgen -kind uniform -vertices 100000 -degree 31 -dump
//
// With -stream and -o the graph is generated edge-by-edge and scattered
// into the container in bounded chunks, so multi-million-edge graphs
// build in constant memory (never holding the edge list or the CSR):
//
//	graphgen -kind rmat -vertices 4194304 -degree 16 -stream -o big.csr
//	graphgen -info big.csr
//	novasim -engine nova -workload prdelta -graph-file big.csr
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"nova/graph"
)

func main() {
	kind := flag.String("kind", "rmat", "rmat|uniform|grid")
	vertices := flag.Int("vertices", 65536, "vertex count (rmat, uniform)")
	degree := flag.Float64("degree", 16, "average out-degree")
	rows := flag.Int("rows", 256, "grid rows")
	cols := flag.Int("cols", 256, "grid cols")
	drop := flag.Float64("drop", 0.39, "grid edge drop probability")
	maxWeight := flag.Int("max-weight", 64, "maximum edge weight")
	seed := flag.Int64("seed", 1, "generator seed")
	dump := flag.Bool("dump", false, "write edge list to stdout")
	parts := flag.Int("parts", 0, "if >0, report partitioner statistics for this many parts")
	stream := flag.Bool("stream", false, "generate via the constant-memory streaming generators")
	out := flag.String("o", "", "write the binary CSR container to FILE")
	chunkEdges := flag.Int64("chunk-edges", 0, "scatter-buffer budget for streaming container builds (0 = default)")
	partitionEdges := flag.Int64("partition-edges", 0, "if >0, write the partitioned container layout with at most this many edges per vertex interval (pageable via novasim -partition-cache)")
	info := flag.String("info", "", "print the header of a binary CSR container and exit")
	flag.Parse()

	if *info != "" {
		fi, err := graph.StatCSRFile(*info)
		check(err)
		layout := "flat"
		if fi.Partitioned {
			layout = fmt.Sprintf("partitioned x%d", fi.NumPartitions)
		}
		fmt.Printf("%s: format v%d (%s), V=%d E=%d, rowptr %d bytes, edges %d bytes\n",
			*info, fi.Version, layout, fi.NumVertices, fi.NumEdges, fi.RowPtrBytes, fi.EdgeBytes)
		return
	}
	if *partitionEdges > 0 && *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -partition-edges shapes the container layout; add -o FILE")
		os.Exit(1)
	}

	var st graph.EdgeStream
	if *stream || *out != "" {
		switch *kind {
		case "rmat":
			st = graph.NewRMATStream("rmat", *vertices, *degree, graph.DefaultRMAT, uint32(*maxWeight), *seed)
		case "uniform":
			st = graph.NewUniformStream("uniform", *vertices, *degree, uint32(*maxWeight), *seed)
		case "grid":
			st = graph.NewGridStream("grid", *rows, *cols, *drop, uint32(*maxWeight), *seed)
		default:
			fmt.Fprintf(os.Stderr, "graphgen: unknown kind %q\n", *kind)
			os.Exit(1)
		}
	}

	// Streaming container build: the edge stream scatters straight into
	// the file in bounded chunks — the only path that never materializes
	// the graph, so it is what the large tier uses.
	if *out != "" && *stream {
		fi, err := graph.BuildCSRFile(*out, st, graph.BuildOptions{ChunkEdges: *chunkEdges, PartitionEdges: *partitionEdges})
		check(err)
		layout := ""
		if fi.Partitioned {
			layout = fmt.Sprintf(", %d partitions", fi.NumPartitions)
		}
		fmt.Fprintf(os.Stderr, "%s: V=%d E=%d written to %s (constant-memory build%s)\n",
			st.Name(), fi.NumVertices, fi.NumEdges, *out, layout)
		return
	}

	var g *graph.CSR
	switch {
	case st != nil:
		g = graph.FromStream(st)
	default:
		switch *kind {
		case "rmat":
			g = graph.GenRMATN("rmat", *vertices, *degree, graph.DefaultRMAT, uint32(*maxWeight), *seed)
		case "uniform":
			g = graph.GenUniform("uniform", *vertices, *degree, uint32(*maxWeight), *seed)
		case "grid":
			g = graph.GenGrid("grid", *rows, *cols, *drop, uint32(*maxWeight), *seed)
		default:
			fmt.Fprintf(os.Stderr, "graphgen: unknown kind %q\n", *kind)
			os.Exit(1)
		}
	}

	if *out != "" {
		if *partitionEdges > 0 {
			fi, err := graph.WritePartitionedCSRFile(*out, g, *partitionEdges)
			check(err)
			fmt.Fprintf(os.Stderr, "partitioned container written to %s (%d partitions)\n", *out, fi.NumPartitions)
		} else {
			check(graph.WriteCSRFile(*out, g))
			fmt.Fprintf(os.Stderr, "container written to %s\n", *out)
		}
	}

	fmt.Fprintf(os.Stderr, "%s: V=%d E=%d avg-deg=%.2f max-deg=%d footprint=%d bytes\n",
		g.Name, g.NumVertices(), g.NumEdges(), g.AvgDegree(), g.MaxDegree(), g.FootprintBytes())
	fmt.Fprintf(os.Stderr, "hub vertex: %d (out-degree %d)\n",
		g.LargestOutDegreeVertex(), g.OutDegree(g.LargestOutDegreeVertex()))

	if *parts > 0 {
		for _, p := range []*graph.Partition{
			graph.PartitionInterleave(g.NumVertices(), *parts),
			graph.PartitionRandom(g.NumVertices(), *parts, *seed),
			graph.PartitionLoadBalanced(g, *parts),
			graph.PartitionLocality(g, *parts),
		} {
			fmt.Fprintf(os.Stderr, "partition %-14s cut=%.3f imbalance=%.3f\n",
				p.Method, p.CutFraction(g), p.Imbalance(g))
		}
	}

	if *dump {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, e := range g.Edges() {
			fmt.Fprintf(w, "%d\t%d\t%d\n", e.Src, e.Dst, e.Weight)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}
