// Command graphgen generates the synthetic graphs used by the
// reproduction and prints their statistics, optionally dumping the edge
// list as tab-separated "src dst weight" lines.
//
// Usage:
//
//	graphgen -kind rmat -vertices 65536 -degree 16 -seed 7
//	graphgen -kind grid -rows 128 -cols 128 -drop 0.39
//	graphgen -kind uniform -vertices 100000 -degree 31 -dump
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"nova/graph"
)

func main() {
	kind := flag.String("kind", "rmat", "rmat|uniform|grid")
	vertices := flag.Int("vertices", 65536, "vertex count (rmat, uniform)")
	degree := flag.Float64("degree", 16, "average out-degree")
	rows := flag.Int("rows", 256, "grid rows")
	cols := flag.Int("cols", 256, "grid cols")
	drop := flag.Float64("drop", 0.39, "grid edge drop probability")
	maxWeight := flag.Int("max-weight", 64, "maximum edge weight")
	seed := flag.Int64("seed", 1, "generator seed")
	dump := flag.Bool("dump", false, "write edge list to stdout")
	parts := flag.Int("parts", 0, "if >0, report partitioner statistics for this many parts")
	flag.Parse()

	var g *graph.CSR
	switch *kind {
	case "rmat":
		g = graph.GenRMATN("rmat", *vertices, *degree, graph.DefaultRMAT, uint32(*maxWeight), *seed)
	case "uniform":
		g = graph.GenUniform("uniform", *vertices, *degree, uint32(*maxWeight), *seed)
	case "grid":
		g = graph.GenGrid("grid", *rows, *cols, *drop, uint32(*maxWeight), *seed)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown kind %q\n", *kind)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "%s: V=%d E=%d avg-deg=%.2f max-deg=%d footprint=%d bytes\n",
		g.Name, g.NumVertices(), g.NumEdges(), g.AvgDegree(), g.MaxDegree(), g.FootprintBytes())
	fmt.Fprintf(os.Stderr, "hub vertex: %d (out-degree %d)\n",
		g.LargestOutDegreeVertex(), g.OutDegree(g.LargestOutDegreeVertex()))

	if *parts > 0 {
		for _, p := range []*graph.Partition{
			graph.PartitionInterleave(g.NumVertices(), *parts),
			graph.PartitionRandom(g.NumVertices(), *parts, *seed),
			graph.PartitionLoadBalanced(g, *parts),
			graph.PartitionLocality(g, *parts),
		} {
			fmt.Fprintf(os.Stderr, "partition %-14s cut=%.3f imbalance=%.3f\n",
				p.Method, p.CutFraction(g), p.Imbalance(g))
		}
	}

	if *dump {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, e := range g.Edges() {
			fmt.Fprintf(w, "%d\t%d\t%d\n", e.Src, e.Dst, e.Weight)
		}
	}
}
