// Command simbench measures the event-kernel hot paths with the standard
// testing.Benchmark driver and writes the machine-readable record that
// `make bench-sim` commits as BENCH_sim.json. The record keeps the seed
// kernel's numbers (container/heap, closure events — measured on the same
// benchmarks before the rewrite) alongside the current run so regressions
// against either point are one jq expression away.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"nova/internal/sim"
)

// ticker is the pre-allocated recurring-event pattern the converted
// components use: one Handler struct, one Event, Reschedule per cycle.
type ticker struct {
	e   *sim.Engine
	ev  *sim.Event
	n   int
	max int
}

func (t *ticker) Fire() {
	t.n++
	if t.n < t.max {
		t.e.Reschedule(t.ev, t.e.Now()+1)
	}
}

// metric is one benchmark's normalized result.
type metric struct {
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
}

func normalize(r testing.BenchmarkResult, eventsPerOp int) metric {
	per := float64(eventsPerOp)
	ns := float64(r.NsPerOp()) / per
	if nsExact := float64(r.T.Nanoseconds()) / float64(r.N) / per; nsExact > 0 {
		ns = nsExact
	}
	m := metric{
		NsPerEvent:     ns,
		AllocsPerEvent: float64(r.AllocsPerOp()) / per,
		BytesPerEvent:  float64(r.AllocedBytesPerOp()) / per,
	}
	if ns > 0 {
		m.EventsPerSec = 1e9 / ns
	}
	return m
}

// record is the BENCH_sim.json schema.
type record struct {
	Kernel     string            `json:"kernel"`
	Benchmarks map[string]metric `json:"benchmarks"`
	// SeedBaseline holds the same benchmarks measured on the seed kernel
	// (container/heap priority queue, func() callbacks, no event pool).
	SeedBaseline map[string]metric `json:"seed_baseline"`
	// ThroughputSpeedupVsSeed is current event_throughput events/sec over
	// the seed kernel's (the acceptance gate is >= 2).
	ThroughputSpeedupVsSeed float64 `json:"throughput_speedup_vs_seed"`
}

// seedBaseline is the seed kernel measured on this repository at commit
// 768385a with the identical benchmark bodies (ScheduleFunc was Schedule).
func seedBaseline() map[string]metric {
	mk := func(ns, allocs, bytes float64) metric {
		return metric{NsPerEvent: ns, AllocsPerEvent: allocs, BytesPerEvent: bytes, EventsPerSec: 1e9 / ns}
	}
	return map[string]metric{
		"event_throughput":    mk(56.78, 1, 32),
		"schedule_deschedule": mk(50.08, 1, 32),
		"fan_out":             mk(6970.0/64, 1, 32),
	}
}

func benchThroughput(b *testing.B) {
	e := sim.NewEngine()
	t := &ticker{e: e, max: b.N}
	t.ev = sim.NewEvent(t)
	b.ReportAllocs()
	b.ResetTimer()
	e.ScheduleEvent(t.ev, 0)
	if err := e.RunUntilQuiet(0); err != nil {
		b.Fatal(err)
	}
}

func benchThroughputFunc(b *testing.B) {
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.ScheduleFunc(1, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.ScheduleFunc(0, tick)
	if err := e.RunUntilQuiet(0); err != nil {
		b.Fatal(err)
	}
}

func benchScheduleDeschedule(b *testing.B) {
	e := sim.NewEngine()
	h := sim.HandlerFunc(func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(1000, h)
		e.Deschedule(ev)
	}
}

func benchFanOut(b *testing.B) {
	e := sim.NewEngine()
	h := sim.HandlerFunc(func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.Schedule(sim.Ticks(j%8), h)
		}
		if err := e.RunUntilQuiet(0); err != nil {
			b.Fatal(err)
		}
	}
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output path")
	flag.Parse()

	rec := record{
		Kernel: "intrusive-4ary-pooled",
		Benchmarks: map[string]metric{
			"event_throughput":      normalize(testing.Benchmark(benchThroughput), 1),
			"event_throughput_func": normalize(testing.Benchmark(benchThroughputFunc), 1),
			"schedule_deschedule":   normalize(testing.Benchmark(benchScheduleDeschedule), 1),
			"fan_out":               normalize(testing.Benchmark(benchFanOut), 64),
		},
		SeedBaseline: seedBaseline(),
	}
	if seed := rec.SeedBaseline["event_throughput"].EventsPerSec; seed > 0 {
		rec.ThroughputSpeedupVsSeed = rec.Benchmarks["event_throughput"].EventsPerSec / seed
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	fmt.Printf("simbench: event_throughput %.2f ns/event (%.0f events/sec, %.2gx seed), %g allocs/event -> %s\n",
		rec.Benchmarks["event_throughput"].NsPerEvent,
		rec.Benchmarks["event_throughput"].EventsPerSec,
		rec.ThroughputSpeedupVsSeed,
		rec.Benchmarks["event_throughput"].AllocsPerEvent,
		*out)
}
