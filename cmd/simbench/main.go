// Command simbench measures the event-kernel hot paths with the standard
// testing.Benchmark driver and writes the machine-readable record that
// `make bench-sim` commits as BENCH_sim.json. The record keeps the seed
// kernel's numbers (container/heap, closure events — measured on the same
// benchmarks before the rewrite) alongside the current run so regressions
// against either point are one jq expression away.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"nova/internal/sim"
)

// ticker is the pre-allocated recurring-event pattern the converted
// components use: one Handler struct, one Event, Reschedule per cycle.
type ticker struct {
	e   *sim.Engine
	ev  *sim.Event
	n   int
	max int
}

func (t *ticker) Fire() {
	t.n++
	if t.n < t.max {
		t.e.Reschedule(t.ev, t.e.Now()+1)
	}
}

// metric is one benchmark's normalized result.
type metric struct {
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
}

// bestOf runs a benchmark n times and keeps the fastest result: single
// runs on shared runners jitter by 10%+, which a 2% gate (make
// bench-shard) cannot tolerate, while the minimum is stable — transient
// noise only ever makes a run slower.
func bestOf(n int, f func(*testing.B)) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	for i := 0; i < n; i++ {
		r := testing.Benchmark(f)
		if i == 0 || perOpNs(r) < perOpNs(best) {
			best = r
		}
	}
	return best
}

func perOpNs(r testing.BenchmarkResult) float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func normalize(r testing.BenchmarkResult, eventsPerOp int) metric {
	per := float64(eventsPerOp)
	ns := float64(r.NsPerOp()) / per
	if nsExact := float64(r.T.Nanoseconds()) / float64(r.N) / per; nsExact > 0 {
		ns = nsExact
	}
	m := metric{
		NsPerEvent:     ns,
		AllocsPerEvent: float64(r.AllocsPerOp()) / per,
		BytesPerEvent:  float64(r.AllocedBytesPerOp()) / per,
	}
	if ns > 0 {
		m.EventsPerSec = 1e9 / ns
	}
	return m
}

// record is the BENCH_sim.json schema.
type record struct {
	Kernel     string            `json:"kernel"`
	Benchmarks map[string]metric `json:"benchmarks"`
	// SeedBaseline holds the same benchmarks measured on the seed kernel
	// (container/heap priority queue, func() callbacks, no event pool).
	SeedBaseline map[string]metric `json:"seed_baseline"`
	// ThroughputSpeedupVsSeed is current event_throughput events/sec over
	// the seed kernel's (the acceptance gate is >= 2).
	ThroughputSpeedupVsSeed float64 `json:"throughput_speedup_vs_seed"`
}

// seedBaseline is the seed kernel measured on this repository at commit
// 768385a with the identical benchmark bodies (ScheduleFunc was Schedule).
func seedBaseline() map[string]metric {
	mk := func(ns, allocs, bytes float64) metric {
		return metric{NsPerEvent: ns, AllocsPerEvent: allocs, BytesPerEvent: bytes, EventsPerSec: 1e9 / ns}
	}
	return map[string]metric{
		"event_throughput":    mk(56.78, 1, 32),
		"schedule_deschedule": mk(50.08, 1, 32),
		"fan_out":             mk(6970.0/64, 1, 32),
	}
}

// benchCluster measures the sharded kernel: gpns engines under one
// Cluster, each engine running tickersPer self-rescheduling tickers for
// b.N firings each, with the crossbar-default lookahead of 120 ticks
// bounding each window. Every iteration therefore executes gpns*tickersPer
// events, and normalize(, gpns*tickersPer) folds that back out so
// EventsPerSec is the aggregate throughput across all shards — not the
// per-shard rate. tickersPer sets the in-window work per shard
// (tickersPer * lookahead events between barriers): 1 isolates the
// cluster wrapper against the raw kernel, clusterTickers approximates a
// loaded GPN so the multi-worker numbers amortize the barrier the way a
// real window does.
func benchCluster(gpns, workers, tickersPer int) func(*testing.B) {
	return func(b *testing.B) {
		engines := make([]*sim.Engine, gpns)
		for i := range engines {
			e := sim.NewEngine()
			engines[i] = e
			for j := 0; j < tickersPer; j++ {
				t := &ticker{e: e, max: b.N}
				t.ev = sim.NewEvent(t)
				e.ScheduleEvent(t.ev, sim.Ticks(j))
			}
		}
		cl, err := sim.NewCluster(engines, 120, workers)
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		noExchange := func() (int, error) { return 0, nil }
		b.ReportAllocs()
		b.ResetTimer()
		if err := cl.Run(0, noExchange); err != nil {
			b.Fatal(err)
		}
	}
}

func benchThroughput(b *testing.B) {
	e := sim.NewEngine()
	t := &ticker{e: e, max: b.N}
	t.ev = sim.NewEvent(t)
	b.ReportAllocs()
	b.ResetTimer()
	e.ScheduleEvent(t.ev, 0)
	if err := e.RunUntilQuiet(0); err != nil {
		b.Fatal(err)
	}
}

func benchThroughputFunc(b *testing.B) {
	e := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.ScheduleFunc(1, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.ScheduleFunc(0, tick)
	if err := e.RunUntilQuiet(0); err != nil {
		b.Fatal(err)
	}
}

func benchScheduleDeschedule(b *testing.B) {
	e := sim.NewEngine()
	h := sim.HandlerFunc(func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(1000, h)
		e.Deschedule(ev)
	}
}

func benchFanOut(b *testing.B) {
	e := sim.NewEngine()
	h := sim.HandlerFunc(func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.Schedule(sim.Ticks(j%8), h)
		}
		if err := e.RunUntilQuiet(0); err != nil {
			b.Fatal(err)
		}
	}
}

// shardRecord is the BENCH_shard.json schema. Its benchmarks map holds
// one "event_throughput" entry measured through the single-engine Cluster
// fast path, so `benchdiff -threshold 2 BENCH_sim.json BENCH_shard.json`
// pins the 1-shard cluster wrapper within 2% of the raw kernel; the
// cluster_Nshard entries and the speedup map have no baseline in
// BENCH_sim.json and are reported without gating.
type shardRecord struct {
	Kernel    string `json:"kernel"`
	Lookahead uint64 `json:"lookahead_ticks"`
	// Benchmarks: "event_throughput" (1 engine, 1 worker, cluster fast
	// path), "cluster_Nshard" (N engines, N workers), and
	// "cluster_Nshard_1worker" (N engines, sequential windows — the
	// scaling denominator). EventsPerSec aggregates across all shards.
	Benchmarks map[string]metric `json:"benchmarks"`
	// Speedup: "cluster_Nshard_speedup" = N-worker aggregate events/sec
	// over the 1-worker run of the same N-engine workload.
	Speedup map[string]float64 `json:"speedup"`
}

// clusterTickers is the per-shard concurrent-event population for the
// cluster_Nshard benchmarks — enough in-window work (64 events per tick,
// 7680 per 120-tick window) to stand in for a loaded GPN.
const clusterTickers = 64

func runShardMode(out, shardList string) {
	rec := shardRecord{
		Kernel:     "windowed-cluster",
		Lookahead:  120,
		Benchmarks: map[string]metric{},
		Speedup:    map[string]float64{},
	}
	counts, err := parseShards(shardList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	rec.Benchmarks["event_throughput"] = normalize(bestOf(3, benchCluster(1, 1, 1)), 1)
	for _, n := range counts {
		if n == 1 {
			continue // the 1-shard case is event_throughput itself
		}
		seq := normalize(bestOf(3, benchCluster(n, 1, clusterTickers)), n*clusterTickers)
		par := normalize(bestOf(3, benchCluster(n, n, clusterTickers)), n*clusterTickers)
		rec.Benchmarks[fmt.Sprintf("cluster_%dshard_1worker", n)] = seq
		rec.Benchmarks[fmt.Sprintf("cluster_%dshard", n)] = par
		if seq.EventsPerSec > 0 {
			rec.Speedup[fmt.Sprintf("cluster_%dshard_speedup", n)] = par.EventsPerSec / seq.EventsPerSec
		}
	}
	writeJSON(out, rec)
	fmt.Printf("simbench: cluster event_throughput %.2f ns/event (%.0f events/sec), %g allocs/event -> %s\n",
		rec.Benchmarks["event_throughput"].NsPerEvent,
		rec.Benchmarks["event_throughput"].EventsPerSec,
		rec.Benchmarks["event_throughput"].AllocsPerEvent,
		out)
	for _, n := range counts {
		if k := fmt.Sprintf("cluster_%dshard", n); n != 1 {
			fmt.Printf("simbench: %s %.0f events/sec aggregate (%.2fx vs 1 worker)\n",
				k, rec.Benchmarks[k].EventsPerSec, rec.Speedup[k+"_speedup"])
		}
	}
}

func parseShards(list string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -shards entry %q (want positive integers)", f)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("-shards list is empty")
	}
	return counts, nil
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output path")
	shardOut := flag.String("shard-out", "", "write the sharded-cluster record here instead of the kernel record (make bench-shard)")
	shardList := flag.String("shards", "1,2,4", "comma-separated shard counts for -shard-out mode")
	flag.Parse()

	if *shardOut != "" {
		runShardMode(*shardOut, *shardList)
		return
	}

	rec := record{
		Kernel: "intrusive-4ary-pooled",
		Benchmarks: map[string]metric{
			"event_throughput":      normalize(bestOf(3, benchThroughput), 1),
			"event_throughput_func": normalize(bestOf(3, benchThroughputFunc), 1),
			"schedule_deschedule":   normalize(bestOf(3, benchScheduleDeschedule), 1),
			"fan_out":               normalize(bestOf(3, benchFanOut), 64),
		},
		SeedBaseline: seedBaseline(),
	}
	if seed := rec.SeedBaseline["event_throughput"].EventsPerSec; seed > 0 {
		rec.ThroughputSpeedupVsSeed = rec.Benchmarks["event_throughput"].EventsPerSec / seed
	}

	writeJSON(*out, rec)
	fmt.Printf("simbench: event_throughput %.2f ns/event (%.0f events/sec, %.2gx seed), %g allocs/event -> %s\n",
		rec.Benchmarks["event_throughput"].NsPerEvent,
		rec.Benchmarks["event_throughput"].EventsPerSec,
		rec.ThroughputSpeedupVsSeed,
		rec.Benchmarks["event_throughput"].AllocsPerEvent,
		*out)
}
