// Command benchdiff compares two benchmark-record JSON files
// (BENCH_sim.json, BENCH_harness.json) and fails when the new record
// regresses past a threshold — the Go replacement for the inline python
// comparison CI used to carry.
//
// Every numeric leaf is flattened to a dotted path
// (benchmarks.event_throughput.ns_per_event) and compared against the
// same path in the old record. Leaves only one file has are reported but
// never fail the run. Paths ending in _per_sec or speedup are
// higher-is-better; everything else is lower-is-better.
//
// Usage:
//
//	benchdiff -threshold 50 old.json new.json
//	benchdiff -warn-only -assert-zero allocs_per_event old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strings"
)

func main() {
	threshold := flag.Float64("threshold", 50, "allowed regression in percent before failing")
	warnOnly := flag.Bool("warn-only", false, "report regressions but always exit 0")
	assertZero := flag.String("assert-zero", "", "comma-separated path substrings whose new value must be 0 (e.g. allocs_per_event)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		os.Exit(2)
	}
	oldLeaves, err := loadLeaves(flag.Arg(0))
	check(err)
	newLeaves, err := loadLeaves(flag.Arg(1))
	check(err)

	report := Compare(oldLeaves, newLeaves, *threshold, splitList(*assertZero))
	for _, l := range report.Lines {
		fmt.Println(l)
	}
	if len(report.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) past %.0f%% threshold\n",
			len(report.Failures), *threshold)
	}
	if len(report.ZeroFailures) > 0 {
		// -warn-only waives timing variance, never correctness: a violated
		// zero constraint (e.g. allocs_per_event) always fails.
		fmt.Fprintf(os.Stderr, "benchdiff: %d violated zero constraint(s)\n", len(report.ZeroFailures))
		os.Exit(1)
	}
	if len(report.Failures) > 0 && !*warnOnly {
		os.Exit(1)
	}
}

// Report is the outcome of one comparison.
type Report struct {
	// Lines is the human-readable per-path report, sorted by path.
	Lines []string
	// Failures lists the paths that regressed past the threshold.
	Failures []string
	// ZeroFailures lists the paths that broke an -assert-zero constraint;
	// these fail the run even under -warn-only.
	ZeroFailures []string
}

// Compare diffs two flattened records. threshold is the allowed
// regression in percent; assertZero lists path substrings whose new value
// must be exactly 0.
func Compare(oldLeaves, newLeaves map[string]float64, threshold float64, assertZero []string) *Report {
	r := &Report{}
	paths := make([]string, 0, len(newLeaves))
	for p := range newLeaves {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		nv := newLeaves[p]
		for _, sub := range assertZero {
			if sub != "" && matchPath(sub, p) && nv != 0 {
				r.ZeroFailures = append(r.ZeroFailures, p)
				r.Lines = append(r.Lines, fmt.Sprintf("FAIL %s = %v, want 0", p, nv))
			}
		}
		ov, ok := oldLeaves[p]
		if !ok {
			r.Lines = append(r.Lines, fmt.Sprintf("new  %s = %v (no baseline)", p, nv))
			continue
		}
		pct := regressionPercent(p, ov, nv)
		switch {
		case pct > threshold:
			r.Failures = append(r.Failures, p)
			r.Lines = append(r.Lines, fmt.Sprintf("FAIL %s: %v -> %v (%+.1f%% worse)", p, ov, nv, pct))
		case pct > 0:
			r.Lines = append(r.Lines, fmt.Sprintf("ok   %s: %v -> %v (%+.1f%% worse, within threshold)", p, ov, nv, pct))
		default:
			r.Lines = append(r.Lines, fmt.Sprintf("ok   %s: %v -> %v", p, ov, nv))
		}
	}
	var gone []string
	for p := range oldLeaves {
		if _, ok := newLeaves[p]; !ok {
			gone = append(gone, p)
		}
	}
	sort.Strings(gone)
	for _, p := range gone {
		r.Lines = append(r.Lines, fmt.Sprintf("gone %s (only in baseline)", p))
	}
	return r
}

// regressionPercent returns how much worse the new value is, in percent
// (≤ 0 when equal or improved). Direction depends on the path: rates and
// speedups are higher-is-better, latencies and counts lower-is-better.
func regressionPercent(path string, oldV, newV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 0
		}
		if higherIsBetter(path) {
			return -100 // something from nothing is an improvement
		}
		return 100
	}
	if higherIsBetter(path) {
		return (oldV - newV) / oldV * 100
	}
	return (newV - oldV) / oldV * 100
}

func higherIsBetter(path string) bool {
	return strings.HasSuffix(path, "_per_sec") || strings.HasSuffix(path, "speedup")
}

// matchPath matches an -assert-zero pattern against a dotted path: plain
// patterns match as substrings; patterns with * or ? match the whole path
// as a glob (dots are ordinary characters, so * crosses levels — e.g.
// "benchmarks.*allocs_per_event" pins the live benchmarks subtree without
// touching the recorded seed_baseline).
func matchPath(pat, p string) bool {
	if !strings.ContainsAny(pat, "*?[") {
		return strings.Contains(p, pat)
	}
	ok, err := path.Match(pat, p)
	return err == nil && ok
}

// loadLeaves parses a JSON file and flattens every numeric leaf to a
// dotted path.
func loadLeaves(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	Flatten("", v, out)
	return out, nil
}

// Flatten walks a decoded JSON value, recording numeric leaves under
// dotted paths (array indices become path elements).
func Flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case float64:
		out[prefix] = x
	case bool, string, nil:
		// non-numeric leaves carry no benchmark signal
	case map[string]any:
		for k, child := range x {
			Flatten(joinPath(prefix, k), child, out)
		}
	case []any:
		for i, child := range x {
			Flatten(joinPath(prefix, fmt.Sprint(i)), child, out)
		}
	}
}

func joinPath(prefix, k string) string {
	if prefix == "" {
		return k
	}
	return prefix + "." + k
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
