package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func leaves(t *testing.T, src string) map[string]float64 {
	t.Helper()
	var v any
	if err := json.Unmarshal([]byte(src), &v); err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	Flatten("", v, out)
	return out
}

func TestFlattenDottedPaths(t *testing.T) {
	got := leaves(t, `{"a":{"b":1.5,"c":[2,3]},"d":"text","e":true,"f":4}`)
	want := map[string]float64{"a.b": 1.5, "a.c.0": 2, "a.c.1": 3, "f": 4}
	if len(got) != len(want) {
		t.Fatalf("flattened %d leaves, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestCompareDirections(t *testing.T) {
	oldL := leaves(t, `{"ns_per_event":10,"events_per_sec":100,"speedup":2}`)

	// Lower-is-better regression past threshold fails.
	r := Compare(oldL, leaves(t, `{"ns_per_event":20,"events_per_sec":100,"speedup":2}`), 50, nil)
	if len(r.Failures) != 1 || r.Failures[0] != "ns_per_event" {
		t.Fatalf("failures = %v, want [ns_per_event]", r.Failures)
	}
	// Same delta within threshold passes.
	r = Compare(oldL, leaves(t, `{"ns_per_event":14,"events_per_sec":100,"speedup":2}`), 50, nil)
	if len(r.Failures) != 0 {
		t.Fatalf("within-threshold comparison failed: %v", r.Failures)
	}
	// Higher-is-better: dropping throughput fails, raising latency-style
	// interpretation must not.
	r = Compare(oldL, leaves(t, `{"ns_per_event":10,"events_per_sec":30,"speedup":2}`), 50, nil)
	if len(r.Failures) != 1 || r.Failures[0] != "events_per_sec" {
		t.Fatalf("failures = %v, want [events_per_sec]", r.Failures)
	}
	// Improvements never fail.
	r = Compare(oldL, leaves(t, `{"ns_per_event":1,"events_per_sec":900,"speedup":9}`), 50, nil)
	if len(r.Failures) != 0 {
		t.Fatalf("improvement flagged as regression: %v", r.Failures)
	}
}

func TestCompareAssertZero(t *testing.T) {
	oldL := leaves(t, `{"allocs_per_event":0}`)
	r := Compare(oldL, leaves(t, `{"allocs_per_event":3}`), 1000, []string{"allocs_per_event"})
	if len(r.ZeroFailures) == 0 {
		t.Fatal("nonzero allocs_per_event not flagged")
	}
	r = Compare(oldL, leaves(t, `{"allocs_per_event":0}`), 1000, []string{"allocs_per_event"})
	if len(r.ZeroFailures) != 0 {
		t.Fatalf("zero allocs flagged: %v", r.ZeroFailures)
	}
}

func TestAssertZeroGlobScoping(t *testing.T) {
	// A glob pattern must pin the live benchmarks subtree without flagging
	// the checked-in seed_baseline record, which legitimately allocates.
	src := `{"benchmarks":{"fan_out":{"allocs_per_event":0}},
	         "seed_baseline":{"fan_out":{"allocs_per_event":1}}}`
	r := Compare(leaves(t, src), leaves(t, src), 1000, []string{"benchmarks.*allocs_per_event"})
	if len(r.ZeroFailures) != 0 {
		t.Fatalf("seed_baseline caught by scoped glob: %v", r.ZeroFailures)
	}
	bad := `{"benchmarks":{"fan_out":{"allocs_per_event":2}},
	         "seed_baseline":{"fan_out":{"allocs_per_event":1}}}`
	r = Compare(leaves(t, src), leaves(t, bad), 1000, []string{"benchmarks.*allocs_per_event"})
	if len(r.ZeroFailures) != 1 || r.ZeroFailures[0] != "benchmarks.fan_out.allocs_per_event" {
		t.Fatalf("zero failures = %v, want [benchmarks.fan_out.allocs_per_event]", r.ZeroFailures)
	}
}

func TestCompareUnsharedPathsNeverFail(t *testing.T) {
	oldL := leaves(t, `{"gone_metric":5}`)
	newL := leaves(t, `{"fresh_metric":7}`)
	r := Compare(oldL, newL, 0, nil)
	if len(r.Failures) != 0 {
		t.Fatalf("unshared paths failed the diff: %v", r.Failures)
	}
	joined := strings.Join(r.Lines, "\n")
	for _, want := range []string{"fresh_metric", "gone_metric"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report does not mention %s:\n%s", want, joined)
		}
	}
}

func TestZeroBaseline(t *testing.T) {
	oldL := leaves(t, `{"count":0}`)
	r := Compare(oldL, leaves(t, `{"count":5}`), 50, nil)
	if len(r.Failures) != 1 {
		t.Fatalf("something-from-zero regression not flagged: %v", r.Lines)
	}
	r = Compare(oldL, leaves(t, `{"count":0}`), 50, nil)
	if len(r.Failures) != 0 {
		t.Fatalf("zero-to-zero flagged: %v", r.Failures)
	}
}
