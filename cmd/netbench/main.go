// Command netbench measures the inter-GPN fabric hot paths and records
// the machine-readable result that `make bench-net` commits as
// BENCH_net.json. The record has two halves:
//
//   - benchmarks: testing.Benchmark micro-measurements of the fabric's
//     send/route/deliver path per topology, the outbox Exchange path,
//     and the coalescing absorb path. All of them must stay
//     allocation-free in steady state (`make bench-net` gates
//     allocs_per_event at exactly 0 through cmd/benchdiff).
//   - macro: one medium SSSP cell and one medium spill-stress (delta
//     PageRank, shrunk active buffers) cell run coalescing-off and
//     coalescing-on, with the simulated-event and wall-clock speedups
//     the coalescing stage buys on the default crossbar.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"nova"
	"nova/internal/exp"
	"nova/internal/harness"
	"nova/internal/network"
	"nova/internal/sim"
	"nova/program"
)

// metric is one benchmark's normalized result (the BENCH_sim.json shape,
// so one benchdiff invocation can gate either record).
type metric struct {
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
}

// bestOf keeps the fastest of n runs: transient noise only ever makes a
// run slower, so the minimum is the stable statistic.
func bestOf(n int, f func(*testing.B)) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	for i := 0; i < n; i++ {
		r := testing.Benchmark(f)
		if i == 0 || perOpNs(r) < perOpNs(best) {
			best = r
		}
	}
	return best
}

func perOpNs(r testing.BenchmarkResult) float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func normalize(r testing.BenchmarkResult, eventsPerOp int) metric {
	per := float64(eventsPerOp)
	ns := float64(r.NsPerOp()) / per
	if nsExact := float64(r.T.Nanoseconds()) / float64(r.N) / per; nsExact > 0 {
		ns = nsExact
	}
	m := metric{
		NsPerEvent:     ns,
		AllocsPerEvent: float64(r.AllocsPerOp()) / per,
		BytesPerEvent:  float64(r.AllocedBytesPerOp()) / per,
	}
	if ns > 0 {
		m.EventsPerSec = 1e9 / ns
	}
	return m
}

// benchGPNs is the fabric size for the micro-benchmarks: 8 GPNs gives
// every routed topology multi-hop routes (2x4 mesh, 8-ring).
const benchGPNs = 8

func microFabric(kind network.TopoKind, engines []*sim.Engine, coalesce network.CoalesceConfig, vertices int) *network.Hierarchical {
	return network.NewFabric(engines, 1, network.FabricConfig{
		P2P:      network.DefaultP2PConfig(),
		Crossbar: network.DefaultCrossbarConfig(),
		Link:     network.DefaultLinkConfig(),
		Topology: kind,
		Coalesce: coalesce,
		Vertices: vertices,
	})
}

// benchSend measures one cross-GPN message through the shared-engine
// fast path: route lookup, per-hop link reservation, delivery event.
// The destination is the farthest GPN so routed topologies pay their
// full hop count. Each iteration drains the engine, so the event pool
// recycles and steady state is allocation-free.
func benchSend(kind network.TopoKind) func(*testing.B) {
	return func(b *testing.B) {
		eng := sim.NewEngine()
		f := microFabric(kind, network.SharedEngines(eng, benchGPNs), network.CoalesceConfig{}, 0)
		h := sim.HandlerFunc(func() {})
		dst := benchGPNs / 2 // diametrically opposite on the ring, interior on the mesh
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Send(0, dst, 8, h)
			if err := eng.RunUntilQuiet(0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchExchange measures the sharded path: Send parks the message in the
// source shard's outbox, Exchange recomputes the route and schedules the
// delivery on the destination shard.
func benchExchange(kind network.TopoKind) func(*testing.B) {
	return func(b *testing.B) {
		engines := make([]*sim.Engine, benchGPNs)
		for i := range engines {
			engines[i] = sim.NewEngine()
		}
		f := microFabric(kind, engines, network.CoalesceConfig{}, 0)
		h := sim.HandlerFunc(func() {})
		dst := benchGPNs / 2
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Send(0, dst, 8, h)
			if _, err := f.Exchange(); err != nil {
				b.Fatal(err)
			}
			if err := engines[dst].RunUntilQuiet(0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// nbBatch is the minimal Batch the coalescing benchmark feeds the fabric.
type nbBatch struct{ msgs []program.Message }

func (b *nbBatch) Fire()                          {}
func (b *nbBatch) Payload() []program.Message     { return b.msgs }
func (b *nbBatch) SetPayload(m []program.Message) { b.msgs = m }
func (b *nbBatch) Discard()                       {}
func minMerge(a, bb program.Prop) program.Prop {
	if bb < a {
		return bb
	}
	return a
}

// benchCoalesce measures the absorb path: the second batch of every
// iteration merges into the buffered head via the vertex index, then the
// window timer flushes the pair as one fabric message.
func benchCoalesce(b *testing.B) {
	eng := sim.NewEngine()
	f := microFabric(network.TopoCrossbar, network.SharedEngines(eng, 2), network.CoalesceConfig{Window: 8}, 8)
	f.SetMerge(minMerge)
	b1 := &nbBatch{msgs: make([]program.Message, 1, 4)}
	b2 := &nbBatch{msgs: make([]program.Message, 1, 4)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b1.msgs = b1.msgs[:1]
		b1.msgs[0] = program.Message{Dst: 1, Delta: 5}
		b2.msgs = b2.msgs[:1]
		b2.msgs[0] = program.Message{Dst: 1, Delta: 3}
		f.Send(0, 1, 8, b1)
		f.Send(0, 1, 8, b2)
		if err := eng.RunUntilQuiet(0); err != nil {
			b.Fatal(err)
		}
	}
}

// macroWindow is the coalescing window the macro cells enable — wide
// enough that merged batches amortize the added delivery latency on the
// medium tier (the probe sweep: 16 trades even, 64 wins on events,
// cycles, and wall clock).
const macroWindow = 64

// macroCell is one macro run's record.
type macroCell struct {
	WallMillis    float64 `json:"wall_ms"`
	SimMillis     float64 `json:"sim_ms"`
	Events        float64 `json:"events"`
	InterMessages float64 `json:"inter_messages"`
	Coalesced     float64 `json:"coalesced"`
}

// macroPair is the off/on comparison for one workload cell. The speedup
// fields are higher-is-better under benchdiff's path rules.
type macroPair struct {
	Off           macroCell `json:"off"`
	On            macroCell `json:"on"`
	EventsSpeedup float64   `json:"events_speedup"`
	SimSpeedup    float64   `json:"sim_speedup"`
	WallSpeedup   float64   `json:"wall_speedup"`
}

func runMacroCell(ctx context.Context, scale exp.Scale, shards int, w harness.Workload, buffers int, window int64) (macroCell, error) {
	cfg := exp.NOVAConfig(scale, 4)
	cfg.Shards = shards
	cfg.Topology = "crossbar"
	cfg.CoalesceWindow = window
	if buffers > 0 {
		cfg.ActiveBufferEntries = buffers
	}
	eng, err := exp.NovaEngineWith(cfg)
	if err != nil {
		return macroCell{}, err
	}
	start := time.Now()
	rep, err := eng.RunWorkload(ctx, w)
	if err != nil {
		return macroCell{}, err
	}
	return macroCell{
		WallMillis:    float64(time.Since(start)) / float64(time.Millisecond),
		SimMillis:     rep.Stats.SimSeconds * 1e3,
		Events:        rep.Metric(nova.MetricEventsExecuted),
		InterMessages: rep.Metric("network.inter_messages"),
		Coalesced:     rep.Metric(nova.MetricNetworkCoalesced),
	}, nil
}

func runMacroPair(ctx context.Context, scale exp.Scale, shards int, w harness.Workload, buffers int) (macroPair, error) {
	off, err := runMacroCell(ctx, scale, shards, w, buffers, 0)
	if err != nil {
		return macroPair{}, err
	}
	on, err := runMacroCell(ctx, scale, shards, w, buffers, macroWindow)
	if err != nil {
		return macroPair{}, err
	}
	p := macroPair{Off: off, On: on}
	if on.Events > 0 {
		p.EventsSpeedup = off.Events / on.Events
	}
	if on.SimMillis > 0 {
		p.SimSpeedup = off.SimMillis / on.SimMillis
	}
	if on.WallMillis > 0 {
		p.WallSpeedup = off.WallMillis / on.WallMillis
	}
	return p, nil
}

// record is the BENCH_net.json schema.
type record struct {
	Fabric      string               `json:"fabric"`
	GPNs        int                  `json:"gpns"`
	MacroScale  string               `json:"macro_scale"`
	MacroWindow int64                `json:"macro_coalesce_window"`
	Benchmarks  map[string]metric    `json:"benchmarks"`
	Macro       map[string]macroPair `json:"macro"`
}

func main() {
	out := flag.String("o", "BENCH_net.json", "output path")
	scaleFlag := flag.String("scale", "medium", "macro-cell dataset scale: small|medium|full|large")
	shards := flag.Int("shards", 4, "worker goroutines for the macro cells (results bit-identical at every setting)")
	skipMacro := flag.Bool("micro-only", false, "skip the macro cells (quick allocation gate)")
	flag.Parse()

	scale, err := exp.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}

	rec := record{
		Fabric:      "topology-fabric",
		GPNs:        benchGPNs,
		MacroScale:  scale.String(),
		MacroWindow: macroWindow,
		Benchmarks:  map[string]metric{},
		Macro:       map[string]macroPair{},
	}
	topos := map[string]network.TopoKind{
		"crossbar": network.TopoCrossbar,
		"ring":     network.TopoRing,
		"mesh":     network.TopoMesh,
		"torus":    network.TopoTorus,
	}
	for name, kind := range topos {
		rec.Benchmarks["send_"+name] = normalize(bestOf(3, benchSend(kind)), 1)
		rec.Benchmarks["exchange_"+name] = normalize(bestOf(3, benchExchange(kind)), 1)
	}
	rec.Benchmarks["coalesce_absorb"] = normalize(bestOf(3, benchCoalesce), 2)
	for name, m := range rec.Benchmarks {
		fmt.Printf("netbench: %-17s %8.2f ns/event  %g allocs/event\n", name, m.NsPerEvent, m.AllocsPerEvent)
	}

	if !*skipMacro {
		d, err := exp.DatasetByName(scale, "twitter")
		if err != nil {
			fatal(err)
		}
		ctx := context.Background()
		sssp := harness.Workload{Name: "sssp", G: d.Graph, Root: d.Root, Tier: scale.String()}
		pair, err := runMacroPair(ctx, scale, *shards, sssp, 0)
		if err != nil {
			fatal(fmt.Errorf("sssp macro: %w", err))
		}
		rec.Macro["sssp"] = pair
		// Spill-stress flavor: delta PageRank with the active buffers shrunk
		// far below the active set, so the VMU spills while the fabric
		// carries the residual traffic.
		spill := harness.Workload{Name: "prdelta", G: d.Graph, Root: d.Root, PRIters: 3, Tier: scale.String()}
		pair, err = runMacroPair(ctx, scale, *shards, spill, 8)
		if err != nil {
			fatal(fmt.Errorf("prdelta macro: %w", err))
		}
		rec.Macro["prdelta_spill"] = pair
		for name, p := range rec.Macro {
			fmt.Printf("netbench: macro %-14s events %.3gx, sim %.3gx, wall %.2fx (coalesced %.0f)\n",
				name, p.EventsSpeedup, p.SimSpeedup, p.WallSpeedup, p.On.Coalesced)
		}
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("netbench: record written to %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netbench:", err)
	os.Exit(1)
}
