package nova

import (
	"nova/internal/core"
	"nova/internal/extmem"
	"nova/internal/ligra"
	"nova/internal/polygraph"
)

// Metric name constants for the engines' metrics-bag keys (equivalently,
// the root-level record paths of their stats dumps). They are defined in
// the engine packages that produce them and re-exported here so the
// experiment layer and external callers share one set of names; see
// STATS.md for the generated reference of every statistic.
const (
	// NOVA accelerator (nova engine).
	MetricCycles             = core.MetricCycles
	MetricEventsExecuted     = core.MetricEventsExecuted
	MetricEdgeUtilization    = core.MetricEdgeUtilization
	MetricVertexUsefulFrac   = core.MetricVertexUsefulFrac
	MetricVertexWriteFrac    = core.MetricVertexWriteFrac
	MetricVertexWastefulFrac = core.MetricVertexWastefulFrac
	MetricProcessingSeconds  = core.MetricProcessingSeconds
	MetricOverheadSeconds    = core.MetricOverheadSeconds
	MetricCacheHitRate       = core.MetricCacheHitRate
	MetricOnChipBytes        = core.MetricOnChipBytes
	MetricSpills             = core.MetricSpills
	MetricPrefetchedBlocks   = core.MetricPrefetchedBlocks
	MetricPrefetchHits       = core.MetricPrefetchHits
	MetricRecoveryHitRate    = core.MetricRecoveryHitRate
	MetricDirectPushes       = core.MetricDirectPushes
	MetricSpillWrites        = core.MetricSpillWrites
	MetricStaleRetrievals    = core.MetricStaleRetrievals
	MetricMetadataBytes      = core.MetricMetadataBytes
	MetricNetworkBytes       = core.MetricNetworkBytes
	MetricNetworkInterBytes  = core.MetricNetworkInterBytes
	MetricNetworkCoalesced   = core.MetricNetworkCoalesced
	MetricNetworkBytesSaved  = core.MetricNetworkBytesSaved
	MetricNetworkAvgHops     = core.MetricNetworkAvgHops
	MetricLoadImbalance      = core.MetricLoadImbalance

	// PolyGraph baseline (polygraph engine). processing_seconds is shared
	// with NOVA — both engines report a processing-time component under
	// the same key, which is what lets Fig. 6 stack them side by side.
	MetricSwitchingSeconds    = polygraph.MetricSwitchingSeconds
	MetricInefficiencySeconds = polygraph.MetricInefficiencySeconds
	MetricSliceCount          = polygraph.MetricSliceCount
	MetricRounds              = polygraph.MetricRounds
	MetricSlicePasses         = polygraph.MetricSlicePasses
	MetricEdgeBWShare         = polygraph.MetricEdgeBWShare

	// Ligra-style software baseline (ligra engine).
	MetricIterations  = ligra.MetricIterations
	MetricWallSeconds = ligra.MetricWallSeconds

	// Out-of-core tier. partition_loads, bytes_paged and io_stall_ticks
	// are shared between the NOVA engine's SSD spill path and the
	// external-memory baseline (extmem engine), which is what lets the
	// spill/recovery figure stack them side by side; the remaining keys
	// belong to the extmem engine's DRAM partition cache.
	MetricPartitionLoads = core.MetricPartitionLoads
	MetricBytesPaged     = core.MetricBytesPaged
	MetricIOStallTicks   = core.MetricIOStallTicks
	MetricComputeCycles  = extmem.MetricComputeCycles
	MetricPartitions     = extmem.MetricPartitions
	MetricEvictions      = extmem.MetricEvictions
)
