package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func sameCSR(t *testing.T, got, want *CSR) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("V/E mismatch: got V=%d E=%d, want V=%d E=%d",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	for i := range want.RowPtr {
		if got.RowPtr[i] != want.RowPtr[i] {
			t.Fatalf("RowPtr[%d]: got %d, want %d", i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	for i := range want.Dst {
		if got.Dst[i] != want.Dst[i] || got.Weight[i] != want.Weight[i] {
			t.Fatalf("edge %d: got (%d,%d), want (%d,%d)",
				i, got.Dst[i], got.Weight[i], want.Dst[i], want.Weight[i])
		}
	}
}

func TestCSRFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(80)
		g := FromEdges("t", n, randEdges(rng, n, rng.Intn(400)))
		path := filepath.Join(dir, "g.csr")
		if err := WriteCSRFile(path, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSRFile(path)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sameCSR(t, back, g)

		info, err := StatCSRFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.NumVertices != g.NumVertices() || info.NumEdges != g.NumEdges() {
			t.Fatalf("Stat: V=%d E=%d, want V=%d E=%d",
				info.NumVertices, info.NumEdges, g.NumVertices(), g.NumEdges())
		}
	}
}

func TestBuildCSRFileMatchesFromStream(t *testing.T) {
	dir := t.TempDir()
	st := NewRMATStream("rmat", 500, 8, DefaultRMAT, 64, 11)
	want := FromStream(st)
	// Chunk budgets far below |E| exercise the multi-pass scatter; a huge
	// budget exercises the single-pass path. Both must produce the exact
	// bytes WriteCSRFile produces for the materialized graph.
	wantPath := filepath.Join(dir, "want.csr")
	if err := WriteCSRFile(wantPath, want); err != nil {
		t.Fatal(err)
	}
	wantBytes, err := os.ReadFile(wantPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int64{0, 1, 7, 64, 1 << 30} {
		path := filepath.Join(dir, "got.csr")
		info, err := BuildCSRFile(path, st, BuildOptions{ChunkEdges: chunk})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if info.NumVertices != want.NumVertices() || info.NumEdges != want.NumEdges() {
			t.Fatalf("chunk %d: info V=%d E=%d", chunk, info.NumVertices, info.NumEdges)
		}
		gotBytes, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("chunk %d: container bytes differ from WriteCSRFile", chunk)
		}
		back, err := ReadCSRFile(path)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		sameCSR(t, back, want)
	}
}

// validContainer builds one well-formed container in memory.
func validContainer(t testing.TB) []byte {
	t.Helper()
	dir := t.TempDir()
	g := GenUniform("t", 60, 4, 8, 1)
	path := filepath.Join(dir, "g.csr")
	if err := WriteCSRFile(path, g); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestReadCSRRejectsCorruption(t *testing.T) {
	good := validContainer(t)

	mutate := func(name string, f func([]byte)) {
		bad := append([]byte(nil), good...)
		f(bad)
		_, err := ReadCSR("t", bytes.NewReader(bad))
		if err == nil {
			t.Errorf("%s accepted", name)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error not typed ErrCorrupt: %v", name, err)
		}
	}
	mutate("bad magic", func(b []byte) { b[0] ^= 0xFF })
	mutate("bad version", func(b []byte) { binary.LittleEndian.PutUint16(b[4:6], 99) })
	// Header fields are covered by the header CRC, so any size or section
	// tampering must be caught even before payload validation.
	mutate("tampered vertex count", func(b []byte) { b[8] ^= 0x01 })
	mutate("tampered edge count", func(b []byte) { b[16] ^= 0x01 })
	mutate("tampered section offset", func(b []byte) { b[24] ^= 0x01 })
	mutate("tampered header crc", func(b []byte) { b[csrFileHeaderSize-1] ^= 0x01 })
	// Payload corruption is caught by section CRCs.
	mutate("flipped rowptr byte", func(b []byte) { b[csrFileHeaderSize] ^= 0x01 })
	mutate("flipped edge byte", func(b []byte) { b[len(b)-1] ^= 0x01 })

	// Truncation at every region boundary (and mid-region).
	for _, cut := range []int{0, 3, csrFileHeaderSize - 1, csrFileHeaderSize,
		csrFileHeaderSize + 5, len(good) - 1} {
		_, err := ReadCSR("t", bytes.NewReader(good[:cut]))
		if err == nil {
			t.Errorf("truncation at %d accepted", cut)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation at %d: error not typed ErrCorrupt: %v", cut, err)
		}
	}

	// A consistent-looking header whose section table disagrees with the
	// declared sizes must be rejected: shrink |E| and re-seal the CRC.
	bad := append([]byte(nil), good...)
	m := binary.LittleEndian.Uint64(bad[16:24])
	binary.LittleEndian.PutUint64(bad[16:24], m-1)
	resealHeader(bad)
	if _, err := ReadCSR("t", bytes.NewReader(bad)); err == nil {
		t.Error("inconsistent section table accepted")
	}
}

// resealHeader recomputes the header CRC after deliberate tampering, so
// tests reach the validation layers behind it.
func resealHeader(b []byte) {
	crcOff := csrFileHeaderSize - 4
	binary.LittleEndian.PutUint32(b[crcOff:], crc32Checksum(b[:crcOff]))
}

func crc32Checksum(p []byte) uint32 { return crc32.Checksum(p, crcTable) }

func TestReadCSRRejectsBadRowPtr(t *testing.T) {
	// Out-of-order row pointers with correct CRCs: corrupt the payload
	// and re-seal both the section CRC and the header CRC.
	good := validContainer(t)
	bad := append([]byte(nil), good...)
	// Swap two row pointers to break monotonicity.
	a := csrFileHeaderSize
	row1 := binary.LittleEndian.Uint64(bad[a+8:])
	row2 := binary.LittleEndian.Uint64(bad[a+16:])
	if row1 == row2 {
		row2 += 100000 // force a visible out-of-order pair
	}
	binary.LittleEndian.PutUint64(bad[a+8:], row2)
	binary.LittleEndian.PutUint64(bad[a+16:], row1)
	rowLen := binary.LittleEndian.Uint64(bad[24+8:])
	binary.LittleEndian.PutUint32(bad[24+16:], crc32Checksum(bad[a:a+int(rowLen)]))
	resealHeader(bad)
	if _, err := ReadCSR("t", bytes.NewReader(bad)); err == nil {
		t.Error("non-monotonic row pointers accepted")
	}
}

// TestReadCSRCorruptionIsTyped drives every corruption class the loader
// distinguishes — truncation mid-header and mid-section, oversized
// declared sizes and section lengths, tampered payloads behind resealed
// checksums — and requires each to come back as a typed ErrCorrupt, never
// a panic and never an untyped error.
func TestReadCSRCorruptionIsTyped(t *testing.T) {
	good := validContainer(t)
	rowLen := int(binary.LittleEndian.Uint64(good[24+8:]))
	cases := []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"empty file", func(b []byte) []byte { return nil }},
		{"truncated mid-magic", func(b []byte) []byte { return b[:2] }},
		{"truncated mid-header", func(b []byte) []byte { return b[:csrFileHeaderSize/2] }},
		{"truncated before header crc", func(b []byte) []byte { return b[:csrFileHeaderSize-4] }},
		{"header only", func(b []byte) []byte { return b[:csrFileHeaderSize] }},
		{"truncated mid-rowptr", func(b []byte) []byte { return b[:csrFileHeaderSize+rowLen/2] }},
		{"truncated at section boundary", func(b []byte) []byte { return b[:csrFileHeaderSize+rowLen] }},
		{"truncated mid-edge-record", func(b []byte) []byte { return b[:len(b)-3] }},
		{"oversized vertex count", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], csrMaxVertices+1)
			resealHeader(b)
			return b
		}},
		{"oversized edge count", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:24], csrMaxEdges+1)
			resealHeader(b)
			return b
		}},
		{"oversized rowptr section length", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24+8:], uint64(rowLen)*2)
			resealHeader(b)
			return b
		}},
		{"oversized edge section length", func(b []byte) []byte {
			edgeLen := binary.LittleEndian.Uint64(b[24+24+8:])
			binary.LittleEndian.PutUint64(b[24+24+8:], edgeLen+csrEdgeRecBytes)
			resealHeader(b)
			return b
		}},
		{"declared edges beyond file end", func(b []byte) []byte {
			// A fully consistent header (sizes, section table, CRC all
			// resealed) that promises more payload than the file holds must
			// fail as a truncated section, not hang or over-allocate.
			m := binary.LittleEndian.Uint64(b[16:24]) + 1000
			binary.LittleEndian.PutUint64(b[16:24], m)
			binary.LittleEndian.PutUint64(b[24+24+8:], m*csrEdgeRecBytes)
			resealHeader(b)
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mut(append([]byte(nil), good...))
			_, err := ReadCSR("t", bytes.NewReader(bad))
			if err == nil {
				t.Fatalf("corrupt container accepted")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error not typed ErrCorrupt: %v", err)
			}
		})
	}
}

// TestReadCSRSingleByteFlips flips one byte at every offset of a valid
// container: the header CRC covers the header, the section CRCs cover the
// payloads, so every flip must surface as a typed ErrCorrupt.
func TestReadCSRSingleByteFlips(t *testing.T) {
	good := validContainer(t)
	for off := range good {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x01
		_, err := ReadCSR("t", bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("flip at offset %d accepted", off)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at offset %d: error not typed ErrCorrupt: %v", off, err)
		}
	}
}

func TestBuildCSRFileMultiMillionEdges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-edge build in -short mode")
	}
	// The large-tier acceptance path: stream-generate a multi-million-edge
	// R-MAT graph into the container and load it back, with the scatter
	// buffer capped at 512Ki edges (4 MiB) to prove the build never holds
	// the edge list.
	dir := t.TempDir()
	st := NewRMATStream("rmat-large", 1<<17, 16, DefaultRMAT, 64, 21)
	path := filepath.Join(dir, "large.csr")
	info, err := BuildCSRFile(path, st, BuildOptions{ChunkEdges: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if info.NumEdges < 2_000_000 {
		t.Fatalf("generated %d edges, want multi-million", info.NumEdges)
	}
	g, err := ReadCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != info.NumEdges || g.NumVertices() != 1<<17 {
		t.Fatalf("loaded V=%d E=%d, want V=%d E=%d",
			g.NumVertices(), g.NumEdges(), 1<<17, info.NumEdges)
	}
	// Spot-check structural sanity: row pointers are monotonic by
	// construction of the loader; degrees must sum to |E|.
	var deg int64
	for v := 0; v < g.NumVertices(); v++ {
		deg += g.OutDegree(VertexID(v))
	}
	if deg != g.NumEdges() {
		t.Fatalf("degree sum %d != |E| %d", deg, g.NumEdges())
	}
}

func FuzzReadCSR(f *testing.F) {
	// Seed with valid containers of a few shapes plus simple mutations;
	// the fuzzer then explores header/section corruption. The loader must
	// never panic; on success the invariants the simulator relies on must
	// hold.
	add := func(g *CSR) {
		dir := f.TempDir()
		path := filepath.Join(dir, "seed.csr")
		if err := WriteCSRFile(path, g); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	add(GenUniform("a", 20, 3, 8, 1))
	add(FromEdges("b", 1, nil))
	add(FromStream(NewRMATStream("c", 64, 4, DefaultRMAT, 4, 2)))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, csrFileHeaderSize+32))
	// Corruption seeds park the fuzzer at each validation layer: truncation
	// boundaries, payload flips behind valid header CRCs, and a resealed
	// header promising more payload than the file carries.
	good := validContainer(f)
	f.Add(good[:csrFileHeaderSize/2])
	f.Add(good[:csrFileHeaderSize])
	f.Add(good[:len(good)-3])
	flipped := append([]byte(nil), good...)
	flipped[csrFileHeaderSize] ^= 0x01
	f.Add(flipped)
	oversized := append([]byte(nil), good...)
	m := binary.LittleEndian.Uint64(oversized[16:24]) + 1000
	binary.LittleEndian.PutUint64(oversized[16:24], m)
	binary.LittleEndian.PutUint64(oversized[24+24+8:], m*csrEdgeRecBytes)
	resealHeader(oversized)
	f.Add(oversized)
	// Partitioned-layout seeds park the fuzzer at the partition table and
	// per-partition slab validation layers: a valid multi-partition
	// container, one with a flipped table byte, and one truncated inside
	// the first row slab.
	part := validPartitionedContainer(f)
	f.Add(part)
	partFlip := append([]byte(nil), part...)
	partFlip[csrFileHeaderSize+8] ^= 0x01
	f.Add(partFlip)
	partTableLen := int(binary.LittleEndian.Uint64(part[24+8:]))
	f.Add(part[:csrFileHeaderSize+partTableLen+5])

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadCSR("fuzz", bytes.NewReader(data))
		if err != nil {
			return
		}
		n := g.NumVertices()
		m := g.NumEdges()
		if int64(len(g.Dst)) != m || int64(len(g.Weight)) != m || len(g.RowPtr) != n+1 {
			t.Fatalf("inconsistent arrays: V=%d E=%d |RowPtr|=%d |Dst|=%d |Weight|=%d",
				n, m, len(g.RowPtr), len(g.Dst), len(g.Weight))
		}
		prev := int64(0)
		for i, p := range g.RowPtr {
			if p < prev || p > m {
				t.Fatalf("RowPtr[%d]=%d out of order", i, p)
			}
			prev = p
		}
		for i, d := range g.Dst {
			if int(d) >= n {
				t.Fatalf("Dst[%d]=%d out of range %d", i, d, n)
			}
		}
	})
}
