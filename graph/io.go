package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("src dst [weight]"
// per line; '#' and '%' lines are comments, matching SNAP and Matrix
// Market conventions). Vertex IDs may be sparse; the graph is sized by the
// largest ID seen. Missing weights default to 1.
func ReadEdgeList(name string, r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: need at least src and dst", lineNo)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src %q", lineNo, fields[0])
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst %q", lineNo, fields[1])
		}
		w := uint64(1)
		if len(fields) >= 3 {
			w, err = strconv.ParseUint(fields[2], 10, 32)
			if err != nil || w == 0 {
				return nil, fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[2])
			}
		}
		edges = append(edges, Edge{Src: VertexID(src), Dst: VertexID(dst), Weight: uint32(w)})
		if int(src) > maxID {
			maxID = int(src)
		}
		if int(dst) > maxID {
			maxID = int(dst)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return FromEdges(name, maxID+1, edges), nil
}

// WriteEdgeList writes the graph as "src\tdst\tweight" lines.
func (g *CSR) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.NumVertices(); v++ {
		for i := g.RowPtr[v]; i < g.RowPtr[v+1]; i++ {
			if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\n", v, g.Dst[i], g.Weight[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// csrMagic identifies the binary CSR format.
const csrMagic = uint32(0x4e4f5641) // "NOVA"

// WriteBinary serializes the CSR in a compact little-endian binary format
// (magic, |V|, |E|, row pointers, destinations, weights).
func (g *CSR) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{uint64(csrMagic), uint64(g.NumVertices()), uint64(g.NumEdges())}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, p := range g.RowPtr {
		if err := binary.Write(bw, binary.LittleEndian, uint64(p)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Dst); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Weight); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a CSR written by WriteBinary.
func ReadBinary(name string, r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: binary header: %w", err)
		}
	}
	if uint32(hdr[0]) != csrMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	n, m := int(hdr[1]), int64(hdr[2])
	if n < 0 || m < 0 || m > 1<<40 || n > 1<<32 {
		return nil, fmt.Errorf("graph: implausible sizes V=%d E=%d", n, m)
	}
	g := &CSR{
		RowPtr: make([]int64, n+1),
		Dst:    make([]VertexID, m),
		Weight: make([]uint32, m),
		Name:   name,
	}
	raw := make([]uint64, n+1)
	if err := binary.Read(br, binary.LittleEndian, raw); err != nil {
		return nil, fmt.Errorf("graph: row pointers: %w", err)
	}
	prev := int64(0)
	for i, v := range raw {
		p := int64(v)
		if p < prev || p > m {
			return nil, fmt.Errorf("graph: row pointer %d out of order", i)
		}
		g.RowPtr[i] = p
		prev = p
	}
	if g.RowPtr[n] != m {
		return nil, fmt.Errorf("graph: row pointers end at %d, want %d", g.RowPtr[n], m)
	}
	if err := binary.Read(br, binary.LittleEndian, g.Dst); err != nil {
		return nil, fmt.Errorf("graph: destinations: %w", err)
	}
	for i, d := range g.Dst {
		if int(d) >= n {
			return nil, fmt.Errorf("graph: edge %d: destination %d out of range", i, d)
		}
	}
	if err := binary.Read(br, binary.LittleEndian, g.Weight); err != nil {
		return nil, fmt.Errorf("graph: weights: %w", err)
	}
	return g, nil
}
