package graph

import "testing"

// BenchmarkGenRMAT measures Kronecker generation (dataset-build cost).
func BenchmarkGenRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GenRMAT("bench", 14, 16, DefaultRMAT, 64, int64(i))
	}
}

// BenchmarkTranspose measures CSR reversal (needed for BC and pull mode).
func BenchmarkTranspose(b *testing.B) {
	g := GenRMAT("bench", 15, 16, DefaultRMAT, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Transpose()
	}
}

// BenchmarkSymmetrize measures the sort-based dedup used for CC inputs.
func BenchmarkSymmetrize(b *testing.B) {
	g := GenRMAT("bench", 14, 16, DefaultRMAT, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Symmetrize()
	}
}

// BenchmarkPartitionLocality measures the RABBIT-like clustering cost the
// paper's preprocessing-cost discussion worries about.
func BenchmarkPartitionLocality(b *testing.B) {
	g := GenRMAT("bench", 15, 16, DefaultRMAT, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PartitionLocality(g, 8)
	}
}
