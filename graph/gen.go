package graph

import (
	"fmt"
	"math/rand"
)

// Generators for the synthetic stand-ins of the paper's inputs (Table III).
// All generators are deterministic for a given seed.

// GenUniform generates an Erdős–Rényi-style uniform random digraph with the
// given average out-degree — the stand-in for the paper's Urand input.
// Weights are uniform in [1, maxWeight].
func GenUniform(name string, numVertices int, avgDegree float64, maxWeight uint32, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	m := int(float64(numVertices) * avgDegree)
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, Edge{
			Src:    VertexID(rng.Intn(numVertices)),
			Dst:    VertexID(rng.Intn(numVertices)),
			Weight: weight(rng, maxWeight),
		})
	}
	return FromEdges(name, numVertices, edges)
}

// RMATParams are the Kronecker recursion probabilities. The GAP/Graph500
// defaults (a=0.57, b=c=0.19) produce the heavy-tailed degree distribution
// of social graphs like Twitter and Friendster.
type RMATParams struct {
	A, B, C float64
}

// DefaultRMAT is the Graph500 parameterization.
var DefaultRMAT = RMATParams{A: 0.57, B: 0.19, C: 0.19}

// GenRMAT generates a Kronecker (R-MAT) graph with 2^scale vertices and
// approximately avgDegree out-edges per vertex. Vertex IDs are randomly
// permuted so that the natural ordering carries no community structure —
// matching how the paper's inputs are distributed "randomly" across PEs.
func GenRMAT(name string, scale int, avgDegree float64, p RMATParams, maxWeight uint32, seed int64) *CSR {
	if scale < 1 || scale > 30 {
		panic(fmt.Sprintf("graph: GenRMAT scale %d out of range", scale))
	}
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := int(float64(n) * avgDegree)
	perm := rng.Perm(n)
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		src, dst := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < p.A:
				// top-left quadrant: no bits set
			case r < p.A+p.B:
				dst |= 1 << bit
			case r < p.A+p.B+p.C:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		edges = append(edges, Edge{
			Src:    VertexID(perm[src]),
			Dst:    VertexID(perm[dst]),
			Weight: weight(rng, maxWeight),
		})
	}
	return FromEdges(name, n, edges)
}

// GenGrid generates a rows×cols 2D lattice with bidirectional edges between
// orthogonal neighbours, dropping each edge pair with probability dropProb
// to break the regularity — the stand-in for road networks (high diameter,
// average degree ≈ 4·(1-dropProb), like the paper's RoadUSA at ~2.4 with
// dropProb ≈ 0.39).
func GenGrid(name string, rows, cols int, dropProb float64, maxWeight uint32, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	id := func(r, c int) VertexID { return VertexID(r*cols + c) }
	edges := make([]Edge, 0, 4*n)
	addBoth := func(a, b VertexID) {
		if rng.Float64() < dropProb {
			return
		}
		w := weight(rng, maxWeight)
		edges = append(edges, Edge{Src: a, Dst: b, Weight: w}, Edge{Src: b, Dst: a, Weight: w})
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				addBoth(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				addBoth(id(r, c), id(r+1, c))
			}
		}
	}
	return FromEdges(name, n, edges)
}

// GenRMATN is GenRMAT for an arbitrary vertex count: endpoints are drawn
// by the Kronecker recursion over the next power of two and rejected when
// they land past numVertices. The heavy-tailed shape is preserved; exact
// quadrant probabilities shift slightly, which is irrelevant for the
// scaled stand-ins.
func GenRMATN(name string, numVertices int, avgDegree float64, p RMATParams, maxWeight uint32, seed int64) *CSR {
	if numVertices < 2 {
		panic(fmt.Sprintf("graph: GenRMATN needs ≥2 vertices, got %d", numVertices))
	}
	scale := 1
	for 1<<scale < numVertices {
		scale++
	}
	rng := rand.New(rand.NewSource(seed))
	m := int(float64(numVertices) * avgDegree)
	perm := rng.Perm(numVertices)
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		src, dst := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < p.A:
			case r < p.A+p.B:
				dst |= 1 << bit
			case r < p.A+p.B+p.C:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		if src >= numVertices || dst >= numVertices {
			continue
		}
		edges = append(edges, Edge{
			Src:    VertexID(perm[src]),
			Dst:    VertexID(perm[dst]),
			Weight: weight(rng, maxWeight),
		})
	}
	return FromEdges(name, numVertices, edges)
}

func weight(rng *rand.Rand, maxWeight uint32) uint32 {
	if maxWeight <= 1 {
		return 1
	}
	return 1 + uint32(rng.Intn(int(maxWeight)))
}
