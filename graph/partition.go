package graph

import (
	"container/heap"
	"math/rand"
	"sort"
)

// Partition assigns every vertex to exactly one processing element (or
// slice). Section IV of the paper: each vertex and its edge list live on a
// single PE, so no atomics and no remote memory traffic are ever needed.
type Partition struct {
	// Owner[v] is the part owning vertex v.
	Owner []int
	// Parts is the number of parts.
	Parts int
	// Method names the strategy for reports.
	Method string
}

// NumVertices returns the number of assigned vertices.
func (p *Partition) NumVertices() int { return len(p.Owner) }

// Counts returns the number of vertices per part.
func (p *Partition) Counts() []int {
	c := make([]int, p.Parts)
	for _, o := range p.Owner {
		c[o]++
	}
	return c
}

// EdgeCounts returns the number of out-edges owned by each part.
func (p *Partition) EdgeCounts(g *CSR) []int64 {
	c := make([]int64, p.Parts)
	for v := 0; v < g.NumVertices(); v++ {
		c[p.Owner[v]] += g.OutDegree(VertexID(v))
	}
	return c
}

// CutFraction returns the fraction of edges whose endpoints live on
// different parts — the traffic that must cross the interconnect.
func (p *Partition) CutFraction(g *CSR) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	var cut int64
	for v := 0; v < g.NumVertices(); v++ {
		ov := p.Owner[v]
		for _, d := range g.Neighbors(VertexID(v)) {
			if p.Owner[d] != ov {
				cut++
			}
		}
	}
	return float64(cut) / float64(g.NumEdges())
}

// Imbalance returns max(edges per part) / mean(edges per part); 1.0 is a
// perfectly load-balanced partition.
func (p *Partition) Imbalance(g *CSR) float64 {
	counts := p.EdgeCounts(g)
	var sum, max int64
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(p.Parts)
	return float64(max) / mean
}

// PartitionInterleave assigns vertex v to part v mod parts — the paper's
// zero-preprocessing default ("we interleave the vertices based on their
// vertex ids between PEs").
func PartitionInterleave(numVertices, parts int) *Partition {
	owner := make([]int, numVertices)
	for v := range owner {
		owner[v] = v % parts
	}
	return &Partition{Owner: owner, Parts: parts, Method: "interleave"}
}

// PartitionRange assigns contiguous ID ranges to parts — Gemini-style
// chunking, which is what PolyGraph's low-cost temporal slicing uses.
func PartitionRange(numVertices, parts int) *Partition {
	owner := make([]int, numVertices)
	for v := range owner {
		owner[v] = v * parts / max(numVertices, 1)
		if owner[v] >= parts {
			owner[v] = parts - 1
		}
	}
	return &Partition{Owner: owner, Parts: parts, Method: "range"}
}

// PartitionRandom assigns vertices uniformly at random (seeded) — the
// mapping used for the headline results ("We used random partitioning to
// assign vertices to different PEs").
func PartitionRandom(numVertices, parts int, seed int64) *Partition {
	rng := rand.New(rand.NewSource(seed))
	owner := make([]int, numVertices)
	for v := range owner {
		owner[v] = rng.Intn(parts)
	}
	return &Partition{Owner: owner, Parts: parts, Method: "random"}
}

type partLoad struct {
	part int
	load int64
}

type partHeap []partLoad

func (h partHeap) Len() int { return len(h) }
func (h partHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].part < h[j].part
}
func (h partHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *partHeap) Push(x any)   { *h = append(*h, x.(partLoad)) }
func (h *partHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// PartitionLoadBalanced sorts vertices by descending out-degree and greedily
// assigns each to the part with the fewest edges so far — the paper's
// load-balance-optimized placement (Section IV-B).
func PartitionLoadBalanced(g *CSR, parts int) *Partition {
	n := g.NumVertices()
	order := make([]VertexID, n)
	for v := range order {
		order[v] = VertexID(v)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.OutDegree(order[i]), g.OutDegree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	h := make(partHeap, parts)
	for i := range h {
		h[i] = partLoad{part: i}
	}
	heap.Init(&h)
	owner := make([]int, n)
	for _, v := range order {
		p := heap.Pop(&h).(partLoad)
		owner[v] = p.part
		p.load += g.OutDegree(v) + 1 // +1 so zero-degree vertices spread too
		heap.Push(&h, p)
	}
	return &Partition{Owner: owner, Parts: parts, Method: "load-balanced"}
}

// PartitionLocality clusters vertices with a lightweight BFS-based community
// blocking (a RABBIT-like just-in-time reordering) and keeps each cluster on
// one part. Clusters are capped near |V|/parts and packed onto parts to
// balance vertex counts. This is the locality-optimized placement of
// Fig. 9b: fewer cut edges, possibly worse load balance.
func PartitionLocality(g *CSR, parts int) *Partition {
	n := g.NumVertices()
	if parts <= 1 {
		return &Partition{Owner: make([]int, n), Parts: max(parts, 1), Method: "locality"}
	}
	capPerCluster := n/parts + 1
	capEdges := g.NumEdges()/int64(parts) + 1
	cluster := make([]int, n)
	for i := range cluster {
		cluster[i] = -1
	}
	var clusters [][]VertexID
	queue := make([]VertexID, 0, capPerCluster)
	for start := 0; start < n; start++ {
		if cluster[start] >= 0 {
			continue
		}
		id := len(clusters)
		members := []VertexID{VertexID(start)}
		edges := g.OutDegree(VertexID(start))
		cluster[start] = id
		queue = append(queue[:0], VertexID(start))
		for len(queue) > 0 && len(members) < capPerCluster && edges < capEdges {
			v := queue[0]
			queue = queue[1:]
			for _, d := range g.Neighbors(v) {
				if cluster[d] < 0 && len(members) < capPerCluster && edges < capEdges {
					cluster[d] = id
					members = append(members, d)
					edges += g.OutDegree(d)
					queue = append(queue, d)
				}
			}
		}
		clusters = append(clusters, members)
	}
	// Pack clusters (heaviest first) onto the least-loaded part, where
	// load is measured in edges: without edge balancing, the hub
	// community of a power-law graph lands on one PE and serializes the
	// whole machine.
	weight := make([]int64, len(clusters))
	for ci, members := range clusters {
		for _, v := range members {
			weight[ci] += g.OutDegree(v)
		}
		weight[ci] += int64(len(members)) // vertices count too
	}
	order := make([]int, len(clusters))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if weight[order[i]] != weight[order[j]] {
			return weight[order[i]] > weight[order[j]]
		}
		return order[i] < order[j]
	})
	h := make(partHeap, parts)
	for i := range h {
		h[i] = partLoad{part: i}
	}
	heap.Init(&h)
	owner := make([]int, n)
	for _, ci := range order {
		p := heap.Pop(&h).(partLoad)
		for _, v := range clusters[ci] {
			owner[v] = p.part
		}
		p.load += weight[ci]
		heap.Push(&h, p)
	}
	return &Partition{Owner: owner, Parts: parts, Method: "locality"}
}

// PartitionLocalityHierarchical is the locality mapping for a two-level
// machine: communities are kept together at the group (GPN) level — so
// most messages avoid the inter-group crossbar — while vertices interleave
// across the processing elements inside each group to preserve
// parallelism. groups×perGroup is the total part count.
func PartitionLocalityHierarchical(g *CSR, groups, perGroup int) *Partition {
	if groups <= 1 {
		p := PartitionInterleave(g.NumVertices(), max(perGroup, 1))
		p.Method = "locality"
		return p
	}
	byGroup := PartitionLocality(g, groups)
	owner := make([]int, g.NumVertices())
	next := make([]int, groups)
	for v, grp := range byGroup.Owner {
		owner[v] = grp*perGroup + next[grp]
		next[grp] = (next[grp] + 1) % perGroup
	}
	return &Partition{Owner: owner, Parts: groups * perGroup, Method: "locality"}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
