package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		if es[i].Dst != es[j].Dst {
			return es[i].Dst < es[j].Dst
		}
		return es[i].Weight < es[j].Weight
	})
}

func randEdges(rng *rand.Rand, n, m int) []Edge {
	es := make([]Edge, m)
	for i := range es {
		es[i] = Edge{
			Src:    VertexID(rng.Intn(n)),
			Dst:    VertexID(rng.Intn(n)),
			Weight: uint32(1 + rng.Intn(16)),
		}
	}
	return es
}

func TestFromEdgesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		in := randEdges(rng, n, rng.Intn(200))
		g := FromEdges("t", n, in)
		out := g.Edges()
		if int64(len(out)) != g.NumEdges() || len(out) != len(in) {
			return false
		}
		sortEdges(in)
		sortEdges(out)
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := FromEdges("t", n, randEdges(rng, n, rng.Intn(150)))
		tt := g.Transpose().Transpose()
		a, b := g.Edges(), tt.Edges()
		if len(a) != len(b) {
			return false
		}
		sortEdges(a)
		sortEdges(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeDegreeConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := FromEdges("t", 30, randEdges(rng, 30, 200))
	tr := g.Transpose()
	if g.NumEdges() != tr.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", g.NumEdges(), tr.NumEdges())
	}
	// In-degree of v in g == out-degree of v in transpose.
	indeg := make([]int64, 30)
	for _, d := range g.Dst {
		indeg[d]++
	}
	for v := 0; v < 30; v++ {
		if got := tr.OutDegree(VertexID(v)); got != indeg[v] {
			t.Fatalf("vertex %d: transpose outdeg %d, want indeg %d", v, got, indeg[v])
		}
	}
}

func TestSymmetrize(t *testing.T) {
	g := FromEdges("t", 4, []Edge{{0, 1, 5}, {1, 2, 3}, {2, 1, 3}})
	s := g.Symmetrize()
	// Expect 0<->1 and 1<->2: 4 directed edges.
	if s.NumEdges() != 4 {
		t.Fatalf("symmetrized edges = %d, want 4", s.NumEdges())
	}
	adj := map[[2]VertexID]bool{}
	for _, e := range s.Edges() {
		adj[[2]VertexID{e.Src, e.Dst}] = true
	}
	for _, want := range [][2]VertexID{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !adj[want] {
			t.Fatalf("missing edge %v", want)
		}
	}
	// Symmetry property on random graphs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		s := FromEdges("t", n, randEdges(rng, n, rng.Intn(100))).Symmetrize()
		adj := map[[2]VertexID]bool{}
		for _, e := range s.Edges() {
			adj[[2]VertexID{e.Src, e.Dst}] = true
		}
		for k := range adj {
			if !adj[[2]VertexID{k[1], k[0]}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRelabel(t *testing.T) {
	g := FromEdges("t", 3, []Edge{{0, 1, 2}, {1, 2, 7}})
	perm := []VertexID{2, 0, 1}
	r := g.Relabel(perm)
	es := r.Edges()
	sortEdges(es)
	want := []Edge{{0, 1, 7}, {2, 0, 2}}
	if len(es) != 2 || es[0] != want[0] || es[1] != want[1] {
		t.Fatalf("relabeled edges = %v, want %v", es, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad permutation did not panic")
		}
	}()
	g.Relabel([]VertexID{0, 0, 1})
}

func TestGenUniform(t *testing.T) {
	g := GenUniform("u", 1000, 8, 64, 1)
	if g.NumVertices() != 1000 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if g.NumEdges() != 8000 {
		t.Fatalf("E = %d, want 8000", g.NumEdges())
	}
	for _, w := range g.Weight {
		if w < 1 || w > 64 {
			t.Fatalf("weight %d out of [1,64]", w)
		}
	}
	// Determinism.
	g2 := GenUniform("u", 1000, 8, 64, 1)
	for i := range g.Dst {
		if g.Dst[i] != g2.Dst[i] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestGenRMATPowerLaw(t *testing.T) {
	g := GenRMAT("r", 12, 16, DefaultRMAT, 1, 7)
	if g.NumVertices() != 4096 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	// Heavy tail: max degree far above average.
	if g.MaxDegree() < int64(8*g.AvgDegree()) {
		t.Fatalf("max degree %d not heavy-tailed vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestGenGrid(t *testing.T) {
	g := GenGrid("g", 10, 10, 0, 1, 1)
	if g.NumVertices() != 100 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	// Full grid: 2*(10*9*2) = 360 directed edges.
	if g.NumEdges() != 360 {
		t.Fatalf("E = %d, want 360", g.NumEdges())
	}
	// Grid is symmetric by construction.
	adj := map[[2]VertexID]bool{}
	for _, e := range g.Edges() {
		adj[[2]VertexID{e.Src, e.Dst}] = true
	}
	for k := range adj {
		if !adj[[2]VertexID{k[1], k[0]}] {
			t.Fatalf("grid missing reverse edge of %v", k)
		}
	}
	// Drop probability thins it out.
	thin := GenGrid("g", 10, 10, 0.5, 1, 1)
	if thin.NumEdges() >= g.NumEdges() {
		t.Fatal("dropProb did not reduce edges")
	}
}

func TestPartitionsCoverEveryVertexOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := FromEdges("t", 100, randEdges(rng, 100, 500))
	parts := 8
	all := []*Partition{
		PartitionInterleave(100, parts),
		PartitionRange(100, parts),
		PartitionRandom(100, parts, 5),
		PartitionLoadBalanced(g, parts),
		PartitionLocality(g, parts),
	}
	for _, p := range all {
		if p.NumVertices() != 100 {
			t.Fatalf("%s: covers %d vertices", p.Method, p.NumVertices())
		}
		for v, o := range p.Owner {
			if o < 0 || o >= parts {
				t.Fatalf("%s: vertex %d assigned to invalid part %d", p.Method, v, o)
			}
		}
		sum := 0
		for _, c := range p.Counts() {
			sum += c
		}
		if sum != 100 {
			t.Fatalf("%s: counts sum to %d", p.Method, sum)
		}
	}
}

func TestPartitionInterleaveBalance(t *testing.T) {
	p := PartitionInterleave(1000, 8)
	for _, c := range p.Counts() {
		if c != 125 {
			t.Fatalf("interleave counts = %v", p.Counts())
		}
	}
}

func TestPartitionRangeContiguous(t *testing.T) {
	p := PartitionRange(100, 7)
	for v := 1; v < 100; v++ {
		if p.Owner[v] < p.Owner[v-1] {
			t.Fatal("range partition not monotone")
		}
	}
	if p.Owner[0] != 0 || p.Owner[99] != 6 {
		t.Fatalf("range endpoints: %d, %d", p.Owner[0], p.Owner[99])
	}
}

func TestPartitionLoadBalancedBeatsRangeOnSkew(t *testing.T) {
	// A graph where the first few vertices own almost all edges.
	var edges []Edge
	for i := 0; i < 4; i++ {
		for j := 0; j < 250; j++ {
			edges = append(edges, Edge{Src: VertexID(i), Dst: VertexID(j % 100), Weight: 1})
		}
	}
	g := FromEdges("skew", 100, edges)
	lb := PartitionLoadBalanced(g, 4)
	rg := PartitionRange(100, 4)
	if lb.Imbalance(g) >= rg.Imbalance(g) {
		t.Fatalf("load-balanced imbalance %.2f not better than range %.2f",
			lb.Imbalance(g), rg.Imbalance(g))
	}
	if lb.Imbalance(g) > 1.05 {
		t.Fatalf("load-balanced imbalance %.2f, want ~1.0", lb.Imbalance(g))
	}
}

func TestPartitionLocalityReducesCut(t *testing.T) {
	// Locality partitioning should cut far fewer edges on a grid than
	// random assignment.
	g := GenGrid("g", 32, 32, 0, 1, 1)
	loc := PartitionLocality(g, 8)
	rnd := PartitionRandom(g.NumVertices(), 8, 9)
	if loc.CutFraction(g) >= rnd.CutFraction(g) {
		t.Fatalf("locality cut %.3f not below random cut %.3f",
			loc.CutFraction(g), rnd.CutFraction(g))
	}
}

func TestCutFractionBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g := FromEdges("t", n, randEdges(rng, n, rng.Intn(200)))
		p := PartitionRandom(n, 1+rng.Intn(8), seed)
		c := p.CutFraction(g)
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	// Single part never cuts.
	g := GenUniform("u", 100, 4, 1, 2)
	if c := PartitionInterleave(100, 1).CutFraction(g); c != 0 {
		t.Fatalf("1-part cut = %v", c)
	}
}

func TestLargestOutDegreeVertex(t *testing.T) {
	g := FromEdges("t", 5, []Edge{{1, 0, 1}, {1, 2, 1}, {1, 3, 1}, {2, 0, 1}})
	if v := g.LargestOutDegreeVertex(); v != 1 {
		t.Fatalf("hub = %d, want 1", v)
	}
}

func TestFootprintBytes(t *testing.T) {
	g := FromEdges("t", 10, []Edge{{0, 1, 1}})
	if got := g.FootprintBytes(); got != 10*16+8 {
		t.Fatalf("footprint = %d", got)
	}
}

func TestGenRMATN(t *testing.T) {
	g := GenRMATN("r", 1000, 8, DefaultRMAT, 4, 9)
	if g.NumVertices() != 1000 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if g.NumEdges() != 8000 {
		t.Fatalf("E = %d", g.NumEdges())
	}
	if g.MaxDegree() < int64(4*g.AvgDegree()) {
		t.Fatalf("max degree %d not heavy-tailed", g.MaxDegree())
	}
	for _, d := range g.Dst {
		if int(d) >= 1000 {
			t.Fatalf("edge endpoint %d out of range", d)
		}
	}
}

func TestSymmetrizeDeterministicMinWeight(t *testing.T) {
	g := FromEdges("t", 3, []Edge{{0, 1, 9}, {0, 1, 2}, {1, 0, 5}})
	s := g.Symmetrize()
	if s.NumEdges() != 2 {
		t.Fatalf("E = %d, want 2", s.NumEdges())
	}
	for _, e := range s.Edges() {
		if e.Weight != 2 {
			t.Fatalf("duplicate collapse kept weight %d, want min 2", e.Weight)
		}
	}
}

func TestPartitionLocalityHierarchical(t *testing.T) {
	g := GenGrid("g", 32, 32, 0, 1, 1)
	p := PartitionLocalityHierarchical(g, 4, 8)
	if p.Parts != 32 || p.NumVertices() != g.NumVertices() {
		t.Fatalf("geometry: parts=%d verts=%d", p.Parts, p.NumVertices())
	}
	// Group-level cut must beat random's group-level cut.
	groupCut := func(part *Partition, perGroup int) float64 {
		var cut int64
		for v := 0; v < g.NumVertices(); v++ {
			gv := part.Owner[v] / perGroup
			for _, d := range g.Neighbors(VertexID(v)) {
				if part.Owner[d]/perGroup != gv {
					cut++
				}
			}
		}
		return float64(cut) / float64(g.NumEdges())
	}
	rnd := PartitionRandom(g.NumVertices(), 32, 7)
	if lc, rc := groupCut(p, 8), groupCut(rnd, 8); lc >= rc {
		t.Fatalf("hierarchical locality group cut %.3f not below random %.3f", lc, rc)
	}
	// Within a group, vertices interleave across all 8 PEs.
	used := map[int]bool{}
	for _, o := range p.Owner {
		used[o] = true
	}
	if len(used) != 32 {
		t.Fatalf("only %d of 32 PEs used", len(used))
	}
	// Single group degenerates to interleave.
	p1 := PartitionLocalityHierarchical(g, 1, 8)
	for v, o := range p1.Owner {
		if o != v%8 {
			t.Fatal("single-group hierarchical locality should interleave")
		}
	}
}
