//go:build !unix

package graph

import "os"

// mapFile on platforms without a usable mmap syscall reads the whole file
// into memory; the MappedCSR API keeps working, it just loses the
// page-cache sharing (backed=false, Mapped() reports it).
func mapFile(path string) (data []byte, unmap func([]byte) error, backed bool, err error) {
	data, err = os.ReadFile(path)
	if err != nil {
		return nil, nil, false, err
	}
	return data, func([]byte) error { return nil }, false, nil
}
