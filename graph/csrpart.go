package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Partitioned container layout (header flag bit 0) — the on-disk format of
// the out-of-core tier. A flat container checksums its two sections as
// wholes, so verifying any byte means reading everything; graphs larger
// than RAM need the opposite: load one vertex interval's rows and edges,
// verify just those bytes, and touch nothing else. The partitioned layout
// restructures the same payload for that access pattern:
//
//	header   as csrfile.go, with the partitioned flag set;
//	         section 0 = partition table, section 1 = payload
//	table    partition count u64, then per partition
//	         {vFirst u64, vCount u64, edges u64, rowOff u64, edgeOff u64,
//	          rowCRC u32, edgeCRC u32}
//	payload  per partition, contiguous and in order:
//	         rowptr slab  (vCount+1) × u64   absolute row pointers
//	         edge slab    edges × {dst u32, weight u32}
//
// Row pointers stay absolute (global edge indices) and interval boundaries
// are duplicated — partition k's last row pointer is partition k+1's first
// — so a slab decodes without any context beyond the table entry, at the
// cost of (P-1)×8 bytes. Section 0's CRC covers the table, section 1's the
// whole payload; each slab pair additionally carries its own CRC32C, which
// is what lets PartitionedCSR page in one interval and verify it in
// isolation. Every field of the table is cross-validated against the
// header and against its neighbors before it drives an allocation or a
// read offset.

const csrPartEntryBytes = 48

// csrPartition is one decoded partition-table entry.
type csrPartition struct {
	vFirst int
	vCount int
	edges  int64
	// rowOff / edgeOff are absolute file offsets of the two slabs.
	rowOff  uint64
	edgeOff uint64
	rowCRC  uint32
	edgeCRC uint32
}

func (p csrPartition) rowLen() uint64  { return uint64(p.vCount+1) * 8 }
func (p csrPartition) edgeLen() uint64 { return uint64(p.edges) * csrEdgeRecBytes }

// partitionBoundaries splits [0, len(rowPtr)-1) into contiguous vertex
// intervals of at most targetEdges edges each (always at least one vertex,
// so a hub denser than the budget still gets a partition). The returned
// slice holds P+1 boundaries with bounds[0] == 0.
func partitionBoundaries(rowPtr []int64, targetEdges int64) []int {
	n := len(rowPtr) - 1
	bounds := []int{0}
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && rowPtr[hi+1]-rowPtr[lo] <= targetEdges {
			hi++
		}
		bounds = append(bounds, hi)
		lo = hi
	}
	return bounds
}

// partitionTableBytes serializes the partition table section.
func partitionTableBytes(parts []csrPartition) []byte {
	buf := make([]byte, 8+len(parts)*csrPartEntryBytes)
	binary.LittleEndian.PutUint64(buf, uint64(len(parts)))
	p := 8
	for _, pt := range parts {
		binary.LittleEndian.PutUint64(buf[p:], uint64(pt.vFirst))
		binary.LittleEndian.PutUint64(buf[p+8:], uint64(pt.vCount))
		binary.LittleEndian.PutUint64(buf[p+16:], uint64(pt.edges))
		binary.LittleEndian.PutUint64(buf[p+24:], pt.rowOff)
		binary.LittleEndian.PutUint64(buf[p+32:], pt.edgeOff)
		binary.LittleEndian.PutUint32(buf[p+40:], pt.rowCRC)
		binary.LittleEndian.PutUint32(buf[p+44:], pt.edgeCRC)
		p += csrPartEntryBytes
	}
	return buf
}

// parsePartitionTable validates the raw table section against the header
// geometry: full coverage of [0, V) by non-empty intervals in order, edge
// counts summing to E, and slab offsets exactly tiling the payload
// section. The caller has already verified the section CRC; this guards
// against a crafted table whose CRC is self-consistent.
func parsePartitionTable(buf []byte, info CSRFileInfo, payloadOff uint64) ([]csrPartition, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("%w: partition table truncated", ErrCorrupt)
	}
	count := binary.LittleEndian.Uint64(buf)
	if count != uint64(info.NumPartitions) || len(buf) != 8+int(count)*csrPartEntryBytes {
		return nil, fmt.Errorf("%w: partition count %d inconsistent with header (%d)", ErrCorrupt, count, info.NumPartitions)
	}
	parts := make([]csrPartition, count)
	nextV, nextEdge, nextOff := uint64(0), uint64(0), payloadOff
	for i := range parts {
		p := 8 + i*csrPartEntryBytes
		pt := csrPartition{
			vFirst:  int(binary.LittleEndian.Uint64(buf[p:])),
			vCount:  int(binary.LittleEndian.Uint64(buf[p+8:])),
			edges:   int64(binary.LittleEndian.Uint64(buf[p+16:])),
			rowOff:  binary.LittleEndian.Uint64(buf[p+24:]),
			edgeOff: binary.LittleEndian.Uint64(buf[p+32:]),
			rowCRC:  binary.LittleEndian.Uint32(buf[p+40:]),
			edgeCRC: binary.LittleEndian.Uint32(buf[p+44:]),
		}
		if uint64(pt.vFirst) != nextV || pt.vCount < 1 || pt.edges < 0 ||
			uint64(pt.vFirst)+uint64(pt.vCount) > uint64(info.NumVertices) {
			return nil, fmt.Errorf("%w: partition %d interval [%d,+%d) out of order", ErrCorrupt, i, pt.vFirst, pt.vCount)
		}
		if pt.rowOff != nextOff || pt.edgeOff != pt.rowOff+pt.rowLen() {
			return nil, fmt.Errorf("%w: partition %d slab offsets inconsistent", ErrCorrupt, i)
		}
		nextV += uint64(pt.vCount)
		nextEdge += uint64(pt.edges)
		nextOff = pt.edgeOff + pt.edgeLen()
		parts[i] = pt
	}
	if nextV != uint64(info.NumVertices) || nextEdge != uint64(info.NumEdges) {
		return nil, fmt.Errorf("%w: partitions cover V=%d E=%d, header says V=%d E=%d",
			ErrCorrupt, nextV, nextEdge, info.NumVertices, info.NumEdges)
	}
	return parts, nil
}

// DefaultPartitionEdges is the partition granularity used when a
// partitioned write is requested without an explicit target: 1Mi edges
// (8 MiB of edge records) per partition.
const DefaultPartitionEdges = 1 << 20

// WritePartitionedCSRFile serializes g into the partitioned container at
// path, with at most targetEdges edges per partition (DefaultPartitionEdges
// when <= 0). The payload bytes are the same row pointers and edge records
// a flat write produces, restructured into independently checksummed
// vertex-interval slabs.
func WritePartitionedCSRFile(path string, g *CSR, targetEdges int64) (info CSRFileInfo, err error) {
	if targetEdges <= 0 {
		targetEdges = DefaultPartitionEdges
	}
	bounds := partitionBoundaries(g.RowPtr, targetEdges)
	nParts := len(bounds) - 1
	n, m := g.NumVertices(), g.NumEdges()

	f, err := os.Create(path)
	if err != nil {
		return info, err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	tableLen := uint64(8 + nParts*csrPartEntryBytes)
	payloadOff := uint64(csrFileHeaderSize) + tableLen
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.Write(make([]byte, payloadOff)); err != nil {
		return info, err
	}

	parts := make([]csrPartition, nParts)
	sw := &sectionWriter{w: bw}
	var scratch [8]byte
	for i := range parts {
		lo, hi := bounds[i], bounds[i+1]
		pt := csrPartition{
			vFirst: lo,
			vCount: hi - lo,
			edges:  g.RowPtr[hi] - g.RowPtr[lo],
			rowOff: payloadOff + sw.n,
		}
		for _, p := range g.RowPtr[lo : hi+1] {
			binary.LittleEndian.PutUint64(scratch[:], uint64(p))
			pt.rowCRC = crc32.Update(pt.rowCRC, crcTable, scratch[:])
			if err := sw.write(scratch[:]); err != nil {
				return info, err
			}
		}
		pt.edgeOff = payloadOff + sw.n
		for e := g.RowPtr[lo]; e < g.RowPtr[hi]; e++ {
			binary.LittleEndian.PutUint32(scratch[0:4], uint32(g.Dst[e]))
			binary.LittleEndian.PutUint32(scratch[4:8], g.Weight[e])
			pt.edgeCRC = crc32.Update(pt.edgeCRC, crcTable, scratch[:])
			if err := sw.write(scratch[:]); err != nil {
				return info, err
			}
		}
		parts[i] = pt
	}
	if err := bw.Flush(); err != nil {
		return info, err
	}

	table := partitionTableBytes(parts)
	if _, err := f.WriteAt(table, csrFileHeaderSize); err != nil {
		return info, err
	}
	secs := [csrFileSections]csrSection{
		{off: csrFileHeaderSize, length: tableLen, crc: crc32.Checksum(table, crcTable)},
		{off: payloadOff, length: sw.n, crc: sw.crc},
	}
	hdr := headerBytes(n, m, csrFlagPartitioned, secs)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return info, err
	}
	return CSRFileInfo{
		Version:       CSRFileVersion,
		NumVertices:   n,
		NumEdges:      m,
		RowPtrBytes:   int64(secs[1].length) - m*csrEdgeRecBytes,
		EdgeBytes:     m * csrEdgeRecBytes,
		Partitioned:   true,
		NumPartitions: nParts,
		ContentHash:   binary.LittleEndian.Uint32(hdr[csrFileHeaderSize-4:]),
	}, nil
}

// buildPartitionedCSRFile is the partitioned arm of BuildCSRFile: the row
// pointers are already counted, so partition boundaries are known up front
// and each partition's slabs stream out in order — the edge slabs through
// the same chunked scatter the flat build uses, bounded to the partition's
// vertex interval. Peak memory stays O(|V|) + O(chunk).
func buildPartitionedCSRFile(path string, st EdgeStream, rowPtr []int64, m, chunk, partEdges int64) (info CSRFileInfo, err error) {
	bounds := partitionBoundaries(rowPtr, partEdges)
	nParts := len(bounds) - 1
	n := len(rowPtr) - 1

	f, err := os.Create(path)
	if err != nil {
		return info, err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	tableLen := uint64(8 + nParts*csrPartEntryBytes)
	payloadOff := uint64(csrFileHeaderSize) + tableLen
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.Write(make([]byte, payloadOff)); err != nil {
		return info, err
	}

	parts := make([]csrPartition, nParts)
	sw := &sectionWriter{w: bw}
	sc := newEdgeScatter(chunk, m)
	var scratch [8]byte
	for i := range parts {
		lo, hi := bounds[i], bounds[i+1]
		pt := csrPartition{
			vFirst: lo,
			vCount: hi - lo,
			edges:  rowPtr[hi] - rowPtr[lo],
			rowOff: payloadOff + sw.n,
		}
		for _, p := range rowPtr[lo : hi+1] {
			binary.LittleEndian.PutUint64(scratch[:], uint64(p))
			pt.rowCRC = crc32.Update(pt.rowCRC, crcTable, scratch[:])
			if err := sw.write(scratch[:]); err != nil {
				return info, err
			}
		}
		pt.edgeOff = payloadOff + sw.n
		if err := sc.scatter(st, rowPtr, lo, hi, func(p []byte) error {
			pt.edgeCRC = crc32.Update(pt.edgeCRC, crcTable, p)
			return sw.write(p)
		}); err != nil {
			return info, err
		}
		parts[i] = pt
	}
	if err := bw.Flush(); err != nil {
		return info, err
	}

	table := partitionTableBytes(parts)
	if _, err := f.WriteAt(table, csrFileHeaderSize); err != nil {
		return info, err
	}
	secs := [csrFileSections]csrSection{
		{off: csrFileHeaderSize, length: tableLen, crc: crc32.Checksum(table, crcTable)},
		{off: payloadOff, length: sw.n, crc: sw.crc},
	}
	hdr := headerBytes(n, m, csrFlagPartitioned, secs)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return info, err
	}
	return CSRFileInfo{
		Version:       CSRFileVersion,
		NumVertices:   n,
		NumEdges:      m,
		RowPtrBytes:   int64(secs[1].length) - m*csrEdgeRecBytes,
		EdgeBytes:     m * csrEdgeRecBytes,
		Partitioned:   true,
		NumPartitions: nParts,
		ContentHash:   binary.LittleEndian.Uint32(hdr[csrFileHeaderSize-4:]),
	}, nil
}

// readPartitionedCSR is the partitioned arm of ReadCSR: it streams the
// table and every partition slab in file order, verifying the table CRC,
// each partition's row and edge CRCs, and the whole-payload CRC, while
// reassembling the flat CSR arrays. The result is byte-for-byte the graph
// a flat container of the same payload yields.
func readPartitionedCSR(name string, r io.Reader, info CSRFileInfo, secs [csrFileSections]csrSection) (*CSR, error) {
	table := make([]byte, secs[0].length)
	if _, err := io.ReadFull(r, table); err != nil {
		return nil, fmt.Errorf("%w: partition table truncated: %w", ErrCorrupt, err)
	}
	if got := crc32.Checksum(table, crcTable); got != secs[0].crc {
		return nil, fmt.Errorf("%w: partition table checksum mismatch", ErrCorrupt)
	}
	parts, err := parsePartitionTable(table, info, secs[1].off)
	if err != nil {
		return nil, err
	}

	n, m := info.NumVertices, info.NumEdges
	g := &CSR{
		RowPtr: make([]int64, n+1),
		Dst:    make([]VertexID, m),
		Weight: make([]uint32, m),
		Name:   name,
	}
	buf := make([]byte, 1<<20)
	payloadCRC := uint32(0)
	edgeBase := int64(0)
	for pi, pt := range parts {
		rowCRC := uint32(0)
		prev, idx := edgeBase, pt.vFirst
		first := true
		if err := readSection(r, buf, int64(pt.rowLen()), &rowCRC, func(p []byte) error {
			payloadCRC = crc32.Update(payloadCRC, crcTable, p)
			for len(p) >= 8 {
				v := int64(binary.LittleEndian.Uint64(p))
				// The interval's first row pointer must resume exactly
				// where the previous partition's edges ended — the
				// duplicated boundary is validated, not trusted.
				if first && v != edgeBase {
					return fmt.Errorf("%w: partition %d starts at edge %d, want %d", ErrCorrupt, pi, v, edgeBase)
				}
				first = false
				if v < prev || v > m {
					return fmt.Errorf("%w: row pointer %d out of order (%d after %d)", ErrCorrupt, idx, v, prev)
				}
				g.RowPtr[idx] = v
				prev = v
				idx++
				p = p[8:]
			}
			return nil
		}); err != nil {
			return nil, err
		}
		if rowCRC != pt.rowCRC {
			return nil, fmt.Errorf("%w: partition %d row slab checksum mismatch", ErrCorrupt, pi)
		}
		if prev != edgeBase+pt.edges {
			return nil, fmt.Errorf("%w: partition %d rows end at edge %d, table says %d", ErrCorrupt, pi, prev, edgeBase+pt.edges)
		}

		edgeCRC := uint32(0)
		ei := edgeBase
		if err := readSection(r, buf, int64(pt.edgeLen()), &edgeCRC, func(p []byte) error {
			payloadCRC = crc32.Update(payloadCRC, crcTable, p)
			for len(p) >= csrEdgeRecBytes {
				d := binary.LittleEndian.Uint32(p)
				if int64(d) >= int64(n) {
					return fmt.Errorf("%w: edge %d: destination %d out of range", ErrCorrupt, ei, d)
				}
				g.Dst[ei] = VertexID(d)
				g.Weight[ei] = binary.LittleEndian.Uint32(p[4:])
				ei++
				p = p[csrEdgeRecBytes:]
			}
			return nil
		}); err != nil {
			return nil, err
		}
		if edgeCRC != pt.edgeCRC {
			return nil, fmt.Errorf("%w: partition %d edge slab checksum mismatch", ErrCorrupt, pi)
		}
		edgeBase += pt.edges
	}
	if payloadCRC != secs[1].crc {
		return nil, fmt.Errorf("%w: payload section checksum mismatch", ErrCorrupt)
	}
	return g, nil
}

// decodePartitionedPayload validates and decodes a fully in-memory
// partitioned container image (the mmap open path). Identical checks to
// readPartitionedCSR, against slices instead of a stream.
func decodePartitionedPayload(name string, data []byte, info CSRFileInfo, secs [csrFileSections]csrSection) (*CSR, error) {
	end := secs[1].off + secs[1].length
	if uint64(len(data)) < end {
		return nil, fmt.Errorf("%w: file truncated at %d bytes, sections end at %d", ErrCorrupt, len(data), end)
	}
	table := data[secs[0].off : secs[0].off+secs[0].length]
	if got := crc32.Checksum(table, crcTable); got != secs[0].crc {
		return nil, fmt.Errorf("%w: partition table checksum mismatch", ErrCorrupt)
	}
	if got := crc32.Checksum(data[secs[1].off:end], crcTable); got != secs[1].crc {
		return nil, fmt.Errorf("%w: payload section checksum mismatch", ErrCorrupt)
	}
	parts, err := parsePartitionTable(table, info, secs[1].off)
	if err != nil {
		return nil, err
	}
	n, m := info.NumVertices, info.NumEdges
	g := &CSR{
		RowPtr: make([]int64, n+1),
		Dst:    make([]VertexID, m),
		Weight: make([]uint32, m),
		Name:   name,
	}
	edgeBase := int64(0)
	for pi, pt := range parts {
		row := data[pt.rowOff : pt.rowOff+pt.rowLen()]
		edge := data[pt.edgeOff : pt.edgeOff+pt.edgeLen()]
		if got := crc32.Checksum(row, crcTable); got != pt.rowCRC {
			return nil, fmt.Errorf("%w: partition %d row slab checksum mismatch", ErrCorrupt, pi)
		}
		if got := crc32.Checksum(edge, crcTable); got != pt.edgeCRC {
			return nil, fmt.Errorf("%w: partition %d edge slab checksum mismatch", ErrCorrupt, pi)
		}
		if err := decodePartitionSlabs(g, pt, pi, edgeBase, row, edge); err != nil {
			return nil, err
		}
		edgeBase += pt.edges
	}
	return g, nil
}

// decodePartitionSlabs decodes one partition's verified row and edge slabs
// into the flat arrays at their global positions, revalidating the row
// pointers (monotone, resuming at edgeBase, ending at edgeBase+edges) and
// edge destinations — the CRCs prove the bytes are the writer's, not that
// a crafted file is well-formed.
func decodePartitionSlabs(g *CSR, pt csrPartition, pi int, edgeBase int64, row, edge []byte) error {
	n := int64(g.NumVertices())
	m := int64(len(g.Dst))
	prev := edgeBase
	for i := 0; i <= pt.vCount; i++ {
		v := int64(binary.LittleEndian.Uint64(row[i*8:]))
		if i == 0 && v != edgeBase {
			return fmt.Errorf("%w: partition %d starts at edge %d, want %d", ErrCorrupt, pi, v, edgeBase)
		}
		if v < prev || v > m {
			return fmt.Errorf("%w: row pointer %d out of order (%d after %d)", ErrCorrupt, pt.vFirst+i, v, prev)
		}
		g.RowPtr[pt.vFirst+i] = v
		prev = v
	}
	if prev != edgeBase+pt.edges {
		return fmt.Errorf("%w: partition %d rows end at edge %d, table says %d", ErrCorrupt, pi, prev, edgeBase+pt.edges)
	}
	for i := int64(0); i < pt.edges; i++ {
		d := binary.LittleEndian.Uint32(edge[i*csrEdgeRecBytes:])
		if int64(d) >= n {
			return fmt.Errorf("%w: edge %d: destination %d out of range", ErrCorrupt, edgeBase+i, d)
		}
		g.Dst[edgeBase+i] = VertexID(d)
		g.Weight[edgeBase+i] = binary.LittleEndian.Uint32(edge[i*csrEdgeRecBytes+4:])
	}
	return nil
}
