package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrCorrupt is the sentinel wrapped by every corruption and truncation
// error the container reader reports — a damaged or tampered file is
// errors.Is(err, ErrCorrupt); I/O failures (missing path, permissions)
// are not. Readers never panic on corrupt input: every section is bounds-
// and checksum-validated before its payload drives allocation or indexing.
var ErrCorrupt = errors.New("graph: corrupt csr container")

// Versioned binary CSR container — the on-disk format of the large-graph
// scale tier. The legacy WriteBinary/ReadBinary stream (io.go) has no
// version, no checksums and no section structure; this format adds all
// three so multi-million-edge graphs can be generated once (cmd/graphgen)
// and loaded repeatedly with integrity guarantees, in constant memory
// beyond the CSR arrays themselves.
//
// Layout (all little-endian, sections contiguous and in order):
//
//	header  magic "NVC1" | version u16 | flags u16 | |V| u64 | |E| u64
//	        per section {offset u64, length u64, crc32c u32, pad u32}
//	        header crc32c u32
//	rowptr  (|V|+1) × u64
//	edges   |E| × {dst u32, weight u32}
//
// Interleaving destination and weight per edge keeps the build single-pass
// per chunk: a streaming builder scatters 8-byte records into one section
// instead of revisiting the stream once per array.

// CSRFileVersion is the current container version.
const CSRFileVersion = 1

var csrFileMagic = [4]byte{'N', 'V', 'C', '1'}

const (
	csrFileSections   = 2 // rowptr, edges (flat) or table, payload (partitioned)
	csrFileHeaderSize = 4 + 2 + 2 + 8 + 8 + csrFileSections*(8+8+4+4) + 4
	csrEdgeRecBytes   = 8
	// csrMaxVertices / csrMaxEdges bound header plausibility checks so a
	// corrupt size field cannot drive allocation.
	csrMaxVertices = 1 << 32
	csrMaxEdges    = 1 << 40
)

// Header flag bits. Readers reject unknown bits so a future layout cannot
// be misparsed as one of today's; flat containers written before the flag
// existed carry 0 and parse unchanged.
const (
	// csrFlagPartitioned marks the partitioned layout (csrpart.go):
	// section 0 is a partition table instead of the row pointers, and
	// section 1 interleaves per-partition row-pointer and edge slabs, each
	// pair carrying its own CRC32C so one vertex interval can be paged in
	// and verified without touching the rest of the file.
	csrFlagPartitioned = 1 << 0

	csrKnownFlags = csrFlagPartitioned
)

// crcTable is the Castagnoli polynomial (hardware-accelerated on amd64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CSRFileInfo describes a container without loading its payload.
type CSRFileInfo struct {
	Version     int
	NumVertices int
	NumEdges    int64
	// RowPtrBytes and EdgeBytes are the section payload sizes.
	RowPtrBytes int64
	EdgeBytes   int64
	// Partitioned reports the partitioned layout (csrpart.go): the payload
	// is split into contiguous vertex-interval partitions, each carrying
	// its own row-pointer and edge CRC32C so it can be paged in and
	// verified independently. NumPartitions is zero for flat containers.
	Partitioned   bool
	NumPartitions int
	// ContentHash is a CRC32C-derived fingerprint of the container's
	// content: the header checksum, which covers the graph dimensions and
	// both section checksums, so it changes whenever any row pointer or
	// edge record differs and is equal for byte-identical payloads. It is
	// O(1) to obtain (StatCSRFile reads only the header), which is what
	// lets a result cache key on graph content without rehashing
	// gigabytes per request.
	ContentHash uint32
}

type csrSection struct {
	off, length uint64
	crc         uint32
}

// headerBytes serializes the fixed-size header for the given sections.
func headerBytes(numVertices int, numEdges int64, flags uint16, secs [csrFileSections]csrSection) []byte {
	buf := make([]byte, csrFileHeaderSize)
	copy(buf[0:4], csrFileMagic[:])
	binary.LittleEndian.PutUint16(buf[4:6], CSRFileVersion)
	binary.LittleEndian.PutUint16(buf[6:8], flags)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(numVertices))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(numEdges))
	p := 24
	for _, s := range secs {
		binary.LittleEndian.PutUint64(buf[p:], s.off)
		binary.LittleEndian.PutUint64(buf[p+8:], s.length)
		binary.LittleEndian.PutUint32(buf[p+16:], s.crc)
		binary.LittleEndian.PutUint32(buf[p+20:], 0)
		p += 24
	}
	binary.LittleEndian.PutUint32(buf[p:], crc32.Checksum(buf[:p], crcTable))
	return buf
}

// parseHeader validates the fixed-size header and returns its fields.
func parseHeader(buf []byte) (info CSRFileInfo, secs [csrFileSections]csrSection, err error) {
	if len(buf) < csrFileHeaderSize {
		return info, secs, fmt.Errorf("%w: header truncated at %d bytes", ErrCorrupt, len(buf))
	}
	if [4]byte(buf[0:4]) != csrFileMagic {
		return info, secs, fmt.Errorf("%w: not a csr file (magic %q)", ErrCorrupt, buf[0:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:6]); v != CSRFileVersion {
		return info, secs, fmt.Errorf("%w: unsupported version %d (want %d)", ErrCorrupt, v, CSRFileVersion)
	}
	crcOff := csrFileHeaderSize - 4
	headerCRC := crc32.Checksum(buf[:crcOff], crcTable)
	if want := binary.LittleEndian.Uint32(buf[crcOff:]); headerCRC != want {
		return info, secs, fmt.Errorf("%w: header checksum mismatch (%#x != %#x)", ErrCorrupt, headerCRC, want)
	}
	flags := binary.LittleEndian.Uint16(buf[6:8])
	if flags&^uint16(csrKnownFlags) != 0 {
		return info, secs, fmt.Errorf("%w: unsupported header flags %#x", ErrCorrupt, flags)
	}
	n := binary.LittleEndian.Uint64(buf[8:16])
	m := binary.LittleEndian.Uint64(buf[16:24])
	if n == 0 || n > csrMaxVertices || m > csrMaxEdges {
		return info, secs, fmt.Errorf("%w: implausible sizes V=%d E=%d", ErrCorrupt, n, m)
	}
	p := 24
	for i := range secs {
		secs[i].off = binary.LittleEndian.Uint64(buf[p:])
		secs[i].length = binary.LittleEndian.Uint64(buf[p+8:])
		secs[i].crc = binary.LittleEndian.Uint32(buf[p+16:])
		p += 24
	}
	// Sections must sit exactly where the writer puts them: contiguous,
	// in order, directly after the header. The offsets are stored for
	// tools and forward evolution, and validated here against a crafted
	// or bit-flipped section table.
	if flags&csrFlagPartitioned != 0 {
		// Partitioned layout: section 0 is the partition table (partition
		// count + fixed-size entries), section 1 the payload. The table
		// length pins the partition count, and the payload length is fully
		// determined by V, E, and that count — each partition stores its
		// vCount+1 row pointers (interval boundaries are duplicated), so
		// the payload holds (V+P)×u64 row pointers plus E edge records.
		tl := secs[0].length
		if secs[0].off != csrFileHeaderSize || tl < 8+csrPartEntryBytes || (tl-8)%csrPartEntryBytes != 0 {
			return info, secs, fmt.Errorf("%w: partition table geometry inconsistent (len %d)", ErrCorrupt, tl)
		}
		nParts := (tl - 8) / csrPartEntryBytes
		if nParts > n {
			return info, secs, fmt.Errorf("%w: %d partitions for %d vertices", ErrCorrupt, nParts, n)
		}
		wantRow := (n + nParts) * 8
		wantPayload := wantRow + m*csrEdgeRecBytes
		if secs[1].off != secs[0].off+tl || secs[1].length != wantPayload {
			return info, secs, fmt.Errorf("%w: section table inconsistent with V=%d E=%d P=%d", ErrCorrupt, n, m, nParts)
		}
		info = CSRFileInfo{
			Version:       CSRFileVersion,
			NumVertices:   int(n),
			NumEdges:      int64(m),
			RowPtrBytes:   int64(wantRow),
			EdgeBytes:     int64(m * csrEdgeRecBytes),
			Partitioned:   true,
			NumPartitions: int(nParts),
			ContentHash:   headerCRC,
		}
		return info, secs, nil
	}
	wantRow := uint64(n+1) * 8
	wantEdge := m * csrEdgeRecBytes
	if secs[0].off != csrFileHeaderSize || secs[0].length != wantRow ||
		secs[1].off != secs[0].off+secs[0].length || secs[1].length != wantEdge {
		return info, secs, fmt.Errorf("%w: section table inconsistent with V=%d E=%d", ErrCorrupt, n, m)
	}
	info = CSRFileInfo{
		Version:     CSRFileVersion,
		NumVertices: int(n),
		NumEdges:    int64(m),
		RowPtrBytes: int64(wantRow),
		EdgeBytes:   int64(wantEdge),
		ContentHash: headerCRC,
	}
	return info, secs, nil
}

// sectionWriter accumulates a section's CRC while writing through to w.
type sectionWriter struct {
	w   *bufio.Writer
	crc uint32
	n   uint64
}

func (s *sectionWriter) write(p []byte) error {
	s.crc = crc32.Update(s.crc, crcTable, p)
	s.n += uint64(len(p))
	_, err := s.w.Write(p)
	return err
}

// WriteCSRFile serializes g into the versioned container at path.
func WriteCSRFile(path string, g *CSR) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()

	// Header slot first; rewritten with checksums once sections are done.
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.Write(make([]byte, csrFileHeaderSize)); err != nil {
		return err
	}
	var secs [csrFileSections]csrSection
	sw := &sectionWriter{w: bw}
	var scratch [8]byte
	for _, p := range g.RowPtr {
		binary.LittleEndian.PutUint64(scratch[:], uint64(p))
		if err := sw.write(scratch[:]); err != nil {
			return err
		}
	}
	secs[0] = csrSection{off: csrFileHeaderSize, length: sw.n, crc: sw.crc}

	sw = &sectionWriter{w: bw}
	for i := range g.Dst {
		binary.LittleEndian.PutUint32(scratch[0:4], uint32(g.Dst[i]))
		binary.LittleEndian.PutUint32(scratch[4:8], g.Weight[i])
		if err := sw.write(scratch[:]); err != nil {
			return err
		}
	}
	secs[1] = csrSection{off: secs[0].off + secs[0].length, length: sw.n, crc: sw.crc}
	if err := bw.Flush(); err != nil {
		return err
	}
	if _, err := f.WriteAt(headerBytes(g.NumVertices(), g.NumEdges(), 0, secs), 0); err != nil {
		return err
	}
	return nil
}

// BuildOptions tune the streaming container build.
type BuildOptions struct {
	// ChunkEdges bounds the scatter buffer: pass two replays the stream
	// once per chunk of at most this many edges (default 4Mi edges,
	// a 32 MiB buffer). Smaller values trade generator replays for
	// memory.
	ChunkEdges int64
	// PartitionEdges, when positive, emits the partitioned layout
	// (csrpart.go) instead of the flat one: contiguous vertex intervals
	// holding at most this many edges each (always at least one vertex),
	// independently checksummed so the out-of-core tier can page one in
	// without validating the whole file.
	PartitionEdges int64
}

// BuildCSRFile generates st directly into the versioned container at path
// without ever materializing the graph: pass one counts degrees into the
// row pointers (O(|V|) memory), then the edge section is scattered chunk
// by chunk — each chunk covers a contiguous source-vertex range holding at
// most opt.ChunkEdges edges, filled by replaying the stream and keeping
// only that range. Peak memory is O(|V|) + O(ChunkEdges) regardless of
// |E|.
func BuildCSRFile(path string, st EdgeStream, opt BuildOptions) (info CSRFileInfo, err error) {
	chunk := opt.ChunkEdges
	if chunk <= 0 {
		chunk = 4 << 20
	}
	n := st.NumVertices()
	rowPtr := make([]int64, n+1)
	st.Reset()
	var m int64
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		if int(e.Src) >= n || int(e.Dst) >= n {
			return info, fmt.Errorf("graph: stream edge %d->%d out of range %d", e.Src, e.Dst, n)
		}
		rowPtr[e.Src+1]++
		m++
	}
	for i := 1; i <= n; i++ {
		rowPtr[i] += rowPtr[i-1]
	}
	if opt.PartitionEdges > 0 {
		return buildPartitionedCSRFile(path, st, rowPtr, m, chunk, opt.PartitionEdges)
	}

	f, err := os.Create(path)
	if err != nil {
		return info, err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.Write(make([]byte, csrFileHeaderSize)); err != nil {
		return info, err
	}
	var secs [csrFileSections]csrSection
	sw := &sectionWriter{w: bw}
	var scratch [8]byte
	for _, p := range rowPtr {
		binary.LittleEndian.PutUint64(scratch[:], uint64(p))
		if err := sw.write(scratch[:]); err != nil {
			return info, err
		}
	}
	secs[0] = csrSection{off: csrFileHeaderSize, length: sw.n, crc: sw.crc}

	sw = &sectionWriter{w: bw}
	sc := newEdgeScatter(chunk, m)
	if err := sc.scatter(st, rowPtr, 0, n, sw.write); err != nil {
		return info, err
	}
	secs[1] = csrSection{off: secs[0].off + secs[0].length, length: sw.n, crc: sw.crc}
	if err := bw.Flush(); err != nil {
		return info, err
	}
	hdr := headerBytes(n, m, 0, secs)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return info, err
	}
	return CSRFileInfo{
		Version:     CSRFileVersion,
		NumVertices: n,
		NumEdges:    m,
		RowPtrBytes: int64(secs[0].length),
		EdgeBytes:   int64(secs[1].length),
		ContentHash: binary.LittleEndian.Uint32(hdr[csrFileHeaderSize-4:]),
	}, nil
}

// edgeScatter holds the reusable chunk buffers of the streaming edge
// scatter shared by the flat and partitioned builds.
type edgeScatter struct {
	chunk  int64
	buf    []byte
	cursor []int64
}

func newEdgeScatter(chunk, totalEdges int64) *edgeScatter {
	return &edgeScatter{chunk: chunk, buf: make([]byte, 0, min64(chunk, totalEdges)*csrEdgeRecBytes)}
}

// scatter replays st once per chunk and hands the encoded edge records of
// sources [vLo, vHi) to emit in row-pointer order. Each chunk covers a
// contiguous source range holding at most chunk edges (always at least one
// vertex, so a single hub denser than the budget still builds — with a
// proportionally larger buffer). Zero stream weights are stored as 1.
func (sc *edgeScatter) scatter(st EdgeStream, rowPtr []int64, vLo, vHi int, emit func([]byte) error) error {
	for vLo < vHi {
		cHi := vLo + 1
		for cHi < vHi && rowPtr[cHi+1]-rowPtr[vLo] <= sc.chunk {
			cHi++
		}
		base := rowPtr[vLo]
		span := rowPtr[cHi] - base
		need := span * csrEdgeRecBytes
		if int64(cap(sc.buf)) < need {
			sc.buf = make([]byte, need)
		} else {
			sc.buf = sc.buf[:need]
		}
		if cap(sc.cursor) < cHi-vLo {
			sc.cursor = make([]int64, cHi-vLo)
		} else {
			sc.cursor = sc.cursor[:cHi-vLo]
			for i := range sc.cursor {
				sc.cursor[i] = 0
			}
		}
		st.Reset()
		for {
			e, ok := st.Next()
			if !ok {
				break
			}
			if int(e.Src) < vLo || int(e.Src) >= cHi {
				continue
			}
			slot := rowPtr[e.Src] - base + sc.cursor[int(e.Src)-vLo]
			sc.cursor[int(e.Src)-vLo]++
			w := e.Weight
			if w == 0 {
				w = 1
			}
			binary.LittleEndian.PutUint32(sc.buf[slot*csrEdgeRecBytes:], uint32(e.Dst))
			binary.LittleEndian.PutUint32(sc.buf[slot*csrEdgeRecBytes+4:], w)
		}
		if err := emit(sc.buf); err != nil {
			return err
		}
		vLo = cHi
	}
	return nil
}

// ReadCSR deserializes a versioned container from r, verifying the header
// and section checksums. The payload streams through a fixed-size buffer
// straight into the CSR arrays — no extra copy of the file and no edge
// list, so peak memory is the returned graph plus O(1).
func ReadCSR(name string, r io.Reader) (*CSR, error) {
	hdr := make([]byte, csrFileHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: header short read: %w", ErrCorrupt, err)
	}
	info, secs, err := parseHeader(hdr)
	if err != nil {
		return nil, err
	}
	if info.Partitioned {
		return readPartitionedCSR(name, r, info, secs)
	}
	n, m := info.NumVertices, info.NumEdges
	g := &CSR{
		RowPtr: make([]int64, n+1),
		Dst:    make([]VertexID, m),
		Weight: make([]uint32, m),
		Name:   name,
	}
	buf := make([]byte, 1<<20)

	crc := uint32(0)
	prev, idx := int64(0), 0
	if err := readSection(r, buf, int64(secs[0].length), &crc, func(p []byte) error {
		for len(p) >= 8 {
			v := int64(binary.LittleEndian.Uint64(p))
			if v < prev || v > m {
				return fmt.Errorf("%w: row pointer %d out of order (%d after %d)", ErrCorrupt, idx, v, prev)
			}
			g.RowPtr[idx] = v
			prev = v
			idx++
			p = p[8:]
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if crc != secs[0].crc {
		return nil, fmt.Errorf("%w: row-pointer section checksum mismatch", ErrCorrupt)
	}
	if g.RowPtr[n] != m {
		return nil, fmt.Errorf("%w: row pointers end at %d, want %d", ErrCorrupt, g.RowPtr[n], m)
	}

	crc = 0
	var ei int64
	if err := readSection(r, buf, int64(secs[1].length), &crc, func(p []byte) error {
		for len(p) >= csrEdgeRecBytes {
			d := binary.LittleEndian.Uint32(p)
			if int64(d) >= int64(n) {
				return fmt.Errorf("%w: edge %d: destination %d out of range", ErrCorrupt, ei, d)
			}
			g.Dst[ei] = VertexID(d)
			g.Weight[ei] = binary.LittleEndian.Uint32(p[4:])
			ei++
			p = p[csrEdgeRecBytes:]
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if crc != secs[1].crc {
		return nil, fmt.Errorf("%w: edge section checksum mismatch", ErrCorrupt)
	}
	return g, nil
}

// readSection streams length bytes from r through buf in multiples of the
// record size, updating crc and handing each full slab to decode.
func readSection(r io.Reader, buf []byte, length int64, crc *uint32, decode func([]byte) error) error {
	for length > 0 {
		want := int64(len(buf))
		if length < want {
			want = length
		}
		slab := buf[:want]
		if _, err := io.ReadFull(r, slab); err != nil {
			return fmt.Errorf("%w: section truncated: %w", ErrCorrupt, err)
		}
		*crc = crc32.Update(*crc, crcTable, slab)
		if err := decode(slab); err != nil {
			return err
		}
		length -= want
	}
	return nil
}

// ReadCSRFile loads the versioned container at path.
func ReadCSRFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSR(path, bufio.NewReaderSize(f, 1<<20))
}

// StatCSRFile reads and validates only the header of the container at
// path — O(1) work regardless of graph size.
func StatCSRFile(path string) (CSRFileInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return CSRFileInfo{}, err
	}
	defer f.Close()
	hdr := make([]byte, csrFileHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return CSRFileInfo{}, fmt.Errorf("%w: header short read: %w", ErrCorrupt, err)
	}
	info, _, err := parseHeader(hdr)
	return info, err
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
