package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// PartitionedCSR pages a partitioned container (csrpart.go) in one vertex
// interval at a time instead of loading the whole graph: Acquire decodes
// and CRC-verifies a single partition's row and edge slabs on demand and
// pins it resident; Release unpins it; an LRU drops the least recently
// used unpinned partition once more than MaxResident are resident. On
// platforms with mmap the slabs decode straight out of the kernel mapping
// (the page cache is the read path); elsewhere they stream through
// explicit chunked ReadAt calls — never a whole-file read.
//
// This is the host-side half of the out-of-core tier: it bounds the
// process's resident graph memory, while the simulated I/O cost of the
// same access pattern lives in the engines (internal/mem's SSD tier and
// internal/extmem). Paging is invisible to simulation results by
// construction — Materialize returns a graph bit-identical to
// ReadCSRFile's at every MaxResident setting; only the PagedStats differ.
//
// The type is safe for concurrent use; loads hold the lock, trading
// parallel page-ins for simplicity (the design point is bounding memory,
// not disk throughput).
type PartitionedCSR struct {
	f     *os.File
	data  []byte // live mapping when non-nil; otherwise the ReadAt path
	unmap func([]byte) error
	info  CSRFileInfo
	parts []csrPartition
	name  string

	mu          sync.Mutex
	resident    map[int]*GraphPart
	maxResident int
	seq         uint64
	stats       PagedStats
	closed      bool
}

// PagedStats count the pager's traffic. They are host-side observability
// (run-to-run timing-dependent in concurrent use), not simulation state.
type PagedStats struct {
	// Loads counts partitions decoded from the container; Hits counts
	// Acquire calls satisfied by an already-resident partition.
	Loads uint64
	Hits  uint64
	// Evictions counts resident partitions dropped to respect MaxResident.
	Evictions uint64
	// BytesPaged totals the container bytes read and verified by Loads.
	BytesPaged uint64
}

// GraphPart is one resident partition: the vertex interval
// [VFirst, VFirst+VCount) with its row pointers and edges. RowPtr holds
// absolute (global) edge indices, so OutEdges indexes Dst/Weight after
// subtracting EdgeBase. The slices are owned by the pager and valid until
// the partition is released and evicted.
type GraphPart struct {
	VFirst   int
	VCount   int
	EdgeBase int64
	RowPtr   []int64 // VCount+1 absolute row pointers
	Dst      []VertexID
	Weight   []uint32

	pins int
	seq  uint64
}

// OutEdges returns v's destination and weight slices. v must lie inside
// the partition's interval.
func (p *GraphPart) OutEdges(v VertexID) ([]VertexID, []uint32) {
	i := int(v) - p.VFirst
	lo := p.RowPtr[i] - p.EdgeBase
	hi := p.RowPtr[i+1] - p.EdgeBase
	return p.Dst[lo:hi], p.Weight[lo:hi]
}

// OpenPartitionedCSR opens the partitioned container at path for
// on-demand paging. maxResident bounds the unpinned+pinned partitions
// kept in memory (0 means unlimited — every partition stays resident once
// touched). Flat containers are rejected: ReadCSRFile and
// OpenCSRFileMapped already serve them.
func OpenPartitionedCSR(path string, maxResident int) (pc *PartitionedCSR, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			f.Close()
		}
	}()
	hdr := make([]byte, csrFileHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("%w: header short read: %w", ErrCorrupt, err)
	}
	info, secs, err := parseHeader(hdr)
	if err != nil {
		return nil, err
	}
	if !info.Partitioned {
		return nil, fmt.Errorf("graph: %s is a flat container; paging needs the partitioned layout (graphgen -partition-edges)", path)
	}
	table := make([]byte, secs[0].length)
	if _, err := f.ReadAt(table, int64(secs[0].off)); err != nil {
		return nil, fmt.Errorf("%w: partition table truncated: %w", ErrCorrupt, err)
	}
	if got := crc32.Checksum(table, crcTable); got != secs[0].crc {
		return nil, fmt.Errorf("%w: partition table checksum mismatch", ErrCorrupt)
	}
	parts, err := parsePartitionTable(table, info, secs[1].off)
	if err != nil {
		return nil, err
	}
	pc = &PartitionedCSR{
		f:           f,
		info:        info,
		parts:       parts,
		name:        path,
		resident:    make(map[int]*GraphPart),
		maxResident: maxResident,
	}
	// Reuse the mmap machinery when it yields a real mapping; the
	// non-unix fallback reads the whole file, which is exactly what a
	// pager must not hold on to, so it is released and ReadAt takes over.
	if data, unmap, backed, merr := mapFile(path); merr == nil {
		if backed && uint64(len(data)) >= secs[1].off+secs[1].length {
			pc.data = data
			pc.unmap = unmap
		} else {
			unmap(data)
		}
	}
	return pc, nil
}

// Info describes the underlying container.
func (pc *PartitionedCSR) Info() CSRFileInfo { return pc.info }

// NumPartitions returns the partition count.
func (pc *PartitionedCSR) NumPartitions() int { return len(pc.parts) }

// Mapped reports whether partition loads decode from a live memory
// mapping rather than explicit reads.
func (pc *PartitionedCSR) Mapped() bool { return pc.data != nil }

// PartitionSpan returns partition i's vertex interval and edge count.
func (pc *PartitionedCSR) PartitionSpan(i int) (vFirst, vCount int, edges int64) {
	pt := pc.parts[i]
	return pt.vFirst, pt.vCount, pt.edges
}

// PartitionFor returns the index of the partition containing v.
func (pc *PartitionedCSR) PartitionFor(v VertexID) int {
	lo, hi := 0, len(pc.parts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(v) >= pc.parts[mid].vFirst {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Stats returns a snapshot of the pager counters.
func (pc *PartitionedCSR) Stats() PagedStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.stats
}

// ResidentPartitions returns how many partitions are currently in memory.
func (pc *PartitionedCSR) ResidentPartitions() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.resident)
}

// Acquire pins partition i resident and returns it, loading and verifying
// it from the container if needed. Every Acquire must be paired with a
// Release; pinned partitions are never evicted, so over-subscribing pins
// beyond MaxResident is allowed and simply holds more memory.
func (pc *PartitionedCSR) Acquire(i int) (*GraphPart, error) {
	if i < 0 || i >= len(pc.parts) {
		return nil, fmt.Errorf("graph: partition %d out of range [0,%d)", i, len(pc.parts))
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.closed {
		return nil, fmt.Errorf("graph: %s: pager closed", pc.name)
	}
	pc.seq++
	if p, ok := pc.resident[i]; ok {
		pc.stats.Hits++
		p.pins++
		p.seq = pc.seq
		return p, nil
	}
	p, err := pc.loadLocked(i)
	if err != nil {
		return nil, err
	}
	p.pins = 1
	p.seq = pc.seq
	pc.resident[i] = p
	pc.evictLocked()
	return p, nil
}

// Release unpins a partition returned by Acquire.
func (pc *PartitionedCSR) Release(p *GraphPart) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if p.pins > 0 {
		p.pins--
	}
}

// evictLocked drops least-recently-used unpinned partitions until the
// resident set fits MaxResident (pinned partitions cannot be dropped, so
// the set may stay over budget while pins are outstanding).
func (pc *PartitionedCSR) evictLocked() {
	for pc.maxResident > 0 && len(pc.resident) > pc.maxResident {
		victim, vseq := -1, uint64(0)
		for i, p := range pc.resident {
			if p.pins == 0 && (victim < 0 || p.seq < vseq) {
				victim, vseq = i, p.seq
			}
		}
		if victim < 0 {
			return
		}
		delete(pc.resident, victim)
		pc.stats.Evictions++
	}
}

// loadLocked decodes and verifies partition i from the container.
func (pc *PartitionedCSR) loadLocked(i int) (*GraphPart, error) {
	pt := pc.parts[i]
	edgeBase := pc.edgeBase(i)
	p := &GraphPart{
		VFirst:   pt.vFirst,
		VCount:   pt.vCount,
		EdgeBase: edgeBase,
		RowPtr:   make([]int64, pt.vCount+1),
		Dst:      make([]VertexID, pt.edges),
		Weight:   make([]uint32, pt.edges),
	}
	var row, edge []byte
	if pc.data != nil {
		row = pc.data[pt.rowOff : pt.rowOff+pt.rowLen()]
		edge = pc.data[pt.edgeOff : pt.edgeOff+pt.edgeLen()]
		if got := crc32.Checksum(row, crcTable); got != pt.rowCRC {
			return nil, fmt.Errorf("%w: partition %d row slab checksum mismatch", ErrCorrupt, i)
		}
		if got := crc32.Checksum(edge, crcTable); got != pt.edgeCRC {
			return nil, fmt.Errorf("%w: partition %d edge slab checksum mismatch", ErrCorrupt, i)
		}
	} else {
		var err error
		if row, err = pc.readSlab(pt.rowOff, pt.rowLen(), pt.rowCRC, i, "row"); err != nil {
			return nil, err
		}
		if edge, err = pc.readSlab(pt.edgeOff, pt.edgeLen(), pt.edgeCRC, i, "edge"); err != nil {
			return nil, err
		}
	}
	if err := decodePartSlabs(p, pt, i, edgeBase, int64(pc.info.NumVertices), pc.info.NumEdges, row, edge); err != nil {
		return nil, err
	}
	pc.stats.Loads++
	pc.stats.BytesPaged += pt.rowLen() + pt.edgeLen()
	return p, nil
}

// readSlab reads [off, off+length) in bounded chunks, verifying the CRC.
func (pc *PartitionedCSR) readSlab(off, length uint64, wantCRC uint32, pi int, what string) ([]byte, error) {
	slab := make([]byte, length)
	const chunk = 1 << 20
	for done := uint64(0); done < length; {
		n := min64(int64(length-done), chunk)
		if _, err := pc.f.ReadAt(slab[done:done+uint64(n)], int64(off+done)); err != nil {
			return nil, fmt.Errorf("%w: partition %d %s slab truncated: %w", ErrCorrupt, pi, what, err)
		}
		done += uint64(n)
	}
	if got := crc32.Checksum(slab, crcTable); got != wantCRC {
		return nil, fmt.Errorf("%w: partition %d %s slab checksum mismatch", ErrCorrupt, pi, what)
	}
	return slab, nil
}

// decodePartSlabs decodes verified slabs into a GraphPart with the same
// structural validation the full readers apply.
func decodePartSlabs(p *GraphPart, pt csrPartition, pi int, edgeBase, n, m int64, row, edge []byte) error {
	prev := edgeBase
	for i := 0; i <= pt.vCount; i++ {
		v := int64(binary.LittleEndian.Uint64(row[i*8:]))
		if i == 0 && v != edgeBase {
			return fmt.Errorf("%w: partition %d starts at edge %d, want %d", ErrCorrupt, pi, v, edgeBase)
		}
		if v < prev || v > m {
			return fmt.Errorf("%w: row pointer %d out of order (%d after %d)", ErrCorrupt, pt.vFirst+i, v, prev)
		}
		p.RowPtr[i] = v
		prev = v
	}
	if prev != edgeBase+pt.edges {
		return fmt.Errorf("%w: partition %d rows end at edge %d, table says %d", ErrCorrupt, pi, prev, edgeBase+pt.edges)
	}
	for i := int64(0); i < pt.edges; i++ {
		d := binary.LittleEndian.Uint32(edge[i*csrEdgeRecBytes:])
		if d >= uint32(n) {
			return fmt.Errorf("%w: edge %d: destination %d out of range", ErrCorrupt, edgeBase+i, d)
		}
		p.Dst[i] = VertexID(d)
		p.Weight[i] = binary.LittleEndian.Uint32(edge[i*csrEdgeRecBytes+4:])
	}
	return nil
}

// edgeBase returns the global index of partition i's first edge.
func (pc *PartitionedCSR) edgeBase(i int) int64 {
	var base int64
	for k := 0; k < i; k++ {
		base += pc.parts[k].edges
	}
	return base
}

// Materialize assembles the whole graph by paging every partition through
// the cache in order. The result is bit-identical to ReadCSRFile on the
// same container at every MaxResident setting — paging affects PagedStats,
// never graph content.
func (pc *PartitionedCSR) Materialize() (*CSR, error) {
	g := &CSR{
		RowPtr: make([]int64, pc.info.NumVertices+1),
		Dst:    make([]VertexID, pc.info.NumEdges),
		Weight: make([]uint32, pc.info.NumEdges),
		Name:   pc.name,
	}
	for i := range pc.parts {
		p, err := pc.Acquire(i)
		if err != nil {
			return nil, err
		}
		copy(g.RowPtr[p.VFirst:], p.RowPtr)
		copy(g.Dst[p.EdgeBase:], p.Dst)
		copy(g.Weight[p.EdgeBase:], p.Weight)
		pc.Release(p)
	}
	return g, nil
}

// Close releases the mapping and file. The caller must have released all
// acquired partitions; resident data is dropped. Close is idempotent.
func (pc *PartitionedCSR) Close() error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.closed {
		return nil
	}
	pc.closed = true
	pc.resident = nil
	var err error
	if pc.data != nil {
		err = pc.unmap(pc.data)
		pc.data = nil
	}
	if cerr := pc.f.Close(); err == nil {
		err = cerr
	}
	return err
}
