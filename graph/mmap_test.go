package graph

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenCSRFileMappedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(80)
		g := FromEdges("t", n, randEdges(rng, n, rng.Intn(400)))
		path := filepath.Join(dir, "g.csr")
		if err := WriteCSRFile(path, g); err != nil {
			t.Fatal(err)
		}
		m, err := OpenCSRFileMapped(path)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sameCSR(t, m.G, g)
		if m.Info.NumVertices != g.NumVertices() || m.Info.NumEdges != g.NumEdges() {
			t.Fatalf("info: V=%d E=%d, want V=%d E=%d",
				m.Info.NumVertices, m.Info.NumEdges, g.NumVertices(), g.NumEdges())
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
}

func TestContentHashStableAndContentSensitive(t *testing.T) {
	dir := t.TempDir()
	g := GenUniform("h", 200, 4, 8, 11)
	pa := filepath.Join(dir, "a.csr")
	pb := filepath.Join(dir, "b.csr")
	if err := WriteCSRFile(pa, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSRFile(pb, g); err != nil {
		t.Fatal(err)
	}
	ia, err := StatCSRFile(pa)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := StatCSRFile(pb)
	if err != nil {
		t.Fatal(err)
	}
	if ia.ContentHash == 0 {
		t.Fatal("ContentHash not populated")
	}
	if ia.ContentHash != ib.ContentHash {
		t.Fatalf("identical payloads hash differently: %#x vs %#x", ia.ContentHash, ib.ContentHash)
	}
	m, err := OpenCSRFileMapped(pa)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Info.ContentHash != ia.ContentHash {
		t.Fatalf("mapped open hashes %#x, Stat hashes %#x", m.Info.ContentHash, ia.ContentHash)
	}

	// A different graph must produce a different hash (the hash covers
	// the section checksums, so any payload change propagates into it).
	g2 := GenUniform("h", 200, 4, 8, 12)
	pc := filepath.Join(dir, "c.csr")
	if err := WriteCSRFile(pc, g2); err != nil {
		t.Fatal(err)
	}
	ic, err := StatCSRFile(pc)
	if err != nil {
		t.Fatal(err)
	}
	if ic.ContentHash == ia.ContentHash {
		t.Fatalf("different payloads share hash %#x", ia.ContentHash)
	}

	// BuildCSRFile reports the same hash StatCSRFile later reads back.
	st := NewUniformStream("d", 150, 3, 8, 5)
	pd := filepath.Join(dir, "d.csr")
	built, err := BuildCSRFile(pd, st, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := StatCSRFile(pd)
	if err != nil {
		t.Fatal(err)
	}
	if built.ContentHash != id.ContentHash {
		t.Fatalf("BuildCSRFile hash %#x != Stat hash %#x", built.ContentHash, id.ContentHash)
	}
}

func TestOpenCSRFileMappedRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	g := GenUniform("c", 120, 4, 8, 3)
	path := filepath.Join(dir, "g.csr")
	if err := WriteCSRFile(path, g); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in each region: header, row pointers, edges.
	for _, off := range []int{8, csrFileHeaderSize + 9, len(raw) - 3} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x10
		badPath := filepath.Join(dir, "bad.csr")
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := OpenCSRFileMapped(badPath)
		if err == nil {
			m.Close()
			t.Fatalf("flip at %d: corruption accepted", off)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: error %v not typed ErrCorrupt", off, err)
		}
	}
	// Truncation must be rejected, not fault.
	if err := os.WriteFile(filepath.Join(dir, "short.csr"), raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if m, err := OpenCSRFileMapped(filepath.Join(dir, "short.csr")); err == nil {
		m.Close()
		t.Fatal("truncated file accepted")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncation error %v not typed ErrCorrupt", err)
	}
}
