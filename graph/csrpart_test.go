package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// validPartitionedContainer builds one well-formed partitioned container
// in memory (several partitions, so the table has interior entries).
func validPartitionedContainer(t testing.TB) []byte {
	t.Helper()
	dir := t.TempDir()
	g := GenUniform("t", 60, 4, 8, 1)
	path := filepath.Join(dir, "g.csr")
	if _, err := WritePartitionedCSRFile(path, g, 40); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPartitionedCSRFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(80)
		g := FromEdges("t", n, randEdges(rng, n, rng.Intn(400)))
		path := filepath.Join(dir, "g.csr")
		target := int64(1 + rng.Intn(64))
		info, err := WritePartitionedCSRFile(path, g, target)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Partitioned || info.NumPartitions < 1 {
			t.Fatalf("trial %d: info not partitioned: %+v", trial, info)
		}
		// The generic file reader must reassemble the identical graph.
		back, err := ReadCSRFile(path)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sameCSR(t, back, g)
		// So must the mmap open path.
		m, err := OpenCSRFileMapped(path)
		if err != nil {
			t.Fatalf("trial %d: mapped: %v", trial, err)
		}
		sameCSR(t, m.G, g)
		if m.Mapped() {
			t.Fatal("partitioned container must decode to a heap copy, not a live mapping")
		}
		m.Close()
		// Stat sees the partition count without loading the payload.
		st, err := StatCSRFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Partitioned || st.NumPartitions != info.NumPartitions || st.ContentHash != info.ContentHash {
			t.Fatalf("trial %d: stat %+v, want %+v", trial, st, info)
		}
	}
}

func TestBuildPartitionedCSRFileMatchesWrite(t *testing.T) {
	dir := t.TempDir()
	st := NewRMATStream("rmat", 500, 8, DefaultRMAT, 64, 11)
	want := FromStream(st)
	wantPath := filepath.Join(dir, "want.csr")
	if _, err := WritePartitionedCSRFile(wantPath, want, 256); err != nil {
		t.Fatal(err)
	}
	wantBytes, err := os.ReadFile(wantPath)
	if err != nil {
		t.Fatal(err)
	}
	// The streaming build must emit byte-identical containers at every
	// chunk budget, exactly like the flat build.
	for _, chunk := range []int64{0, 1, 7, 64, 1 << 30} {
		path := filepath.Join(dir, "got.csr")
		info, err := BuildCSRFile(path, st, BuildOptions{ChunkEdges: chunk, PartitionEdges: 256})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if !info.Partitioned || info.NumPartitions < 2 {
			t.Fatalf("chunk %d: want a multi-partition build, got %d", chunk, info.NumPartitions)
		}
		gotBytes, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("chunk %d: container bytes differ from WritePartitionedCSRFile", chunk)
		}
	}
}

// TestPartitionedCSRPagedBitIdentity is the tentpole invariant: a paged
// open must materialize a graph bit-identical to the full reader's at
// every partition-cache size, with only the pager stats varying.
func TestPartitionedCSRPagedBitIdentity(t *testing.T) {
	dir := t.TempDir()
	g := FromStream(NewRMATStream("rmat", 300, 6, DefaultRMAT, 32, 5))
	path := filepath.Join(dir, "g.csr")
	info, err := WritePartitionedCSRFile(path, g, 128)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumPartitions < 3 {
		t.Fatalf("want >=3 partitions, got %d", info.NumPartitions)
	}
	want, err := ReadCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cache := range []int{1, 2, 3, info.NumPartitions, 0} {
		pc, err := OpenPartitionedCSR(path, cache)
		if err != nil {
			t.Fatalf("cache %d: %v", cache, err)
		}
		got, err := pc.Materialize()
		if err != nil {
			t.Fatalf("cache %d: %v", cache, err)
		}
		sameCSR(t, got, want)
		st := pc.Stats()
		if st.Loads < uint64(info.NumPartitions) || st.BytesPaged == 0 {
			t.Fatalf("cache %d: no paging recorded: %+v", cache, st)
		}
		if cache > 0 && pc.ResidentPartitions() > cache {
			t.Fatalf("cache %d: %d partitions resident", cache, pc.ResidentPartitions())
		}
		pc.Close()
	}
}

func TestPartitionedCSRLRUAndPins(t *testing.T) {
	dir := t.TempDir()
	g := FromStream(NewRMATStream("rmat", 300, 6, DefaultRMAT, 32, 5))
	path := filepath.Join(dir, "g.csr")
	info, err := WritePartitionedCSRFile(path, g, 128)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := OpenPartitionedCSR(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	p0, err := pc.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	// A pinned partition survives pressure: loading others over a cap of 1
	// must evict them, never partition 0.
	for i := 1; i < info.NumPartitions; i++ {
		p, err := pc.Acquire(i)
		if err != nil {
			t.Fatal(err)
		}
		pc.Release(p)
	}
	if _, err := pc.Acquire(0); err != nil {
		t.Fatal(err)
	}
	st := pc.Stats()
	if st.Hits == 0 {
		t.Fatalf("pinned partition reload missed the cache: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("cap 1 with %d partitions never evicted: %+v", info.NumPartitions, st)
	}
	pc.Release(p0)
	pc.Release(p0)

	// Partition lookup and per-partition adjacency agree with the graph.
	for _, v := range []VertexID{0, VertexID(g.NumVertices() / 2), VertexID(g.NumVertices() - 1)} {
		pi := pc.PartitionFor(v)
		vFirst, vCount, _ := pc.PartitionSpan(pi)
		if int(v) < vFirst || int(v) >= vFirst+vCount {
			t.Fatalf("PartitionFor(%d)=%d spans [%d,+%d)", v, pi, vFirst, vCount)
		}
		p, err := pc.Acquire(pi)
		if err != nil {
			t.Fatal(err)
		}
		dst, wgt := p.OutEdges(v)
		wantDst, wantWgt := g.Neighbors(v), g.EdgeWeights(v)
		if len(dst) != len(wantDst) {
			t.Fatalf("v%d: %d edges, want %d", v, len(dst), len(wantDst))
		}
		for i := range dst {
			if dst[i] != wantDst[i] || wgt[i] != wantWgt[i] {
				t.Fatalf("v%d edge %d: got (%d,%d) want (%d,%d)", v, i, dst[i], wgt[i], wantDst[i], wantWgt[i])
			}
		}
		pc.Release(p)
	}
}

func TestOpenPartitionedCSRRejectsFlat(t *testing.T) {
	dir := t.TempDir()
	g := GenUniform("t", 60, 4, 8, 1)
	path := filepath.Join(dir, "flat.csr")
	if err := WriteCSRFile(path, g); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPartitionedCSR(path, 2); err == nil {
		t.Fatal("flat container accepted by the pager")
	}
}

// TestPartitionedCorruptSlabCaughtOnAcquire flips a byte deep in one
// partition's edge slab: open and table validation succeed (the damage is
// behind the per-partition CRC), and only acquiring that partition fails.
func TestPartitionedCorruptSlabCaughtOnAcquire(t *testing.T) {
	good := validPartitionedContainer(t)
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0x01 // last edge record byte of the last partition
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.csr")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	pc, err := OpenPartitionedCSR(path, 0)
	if err != nil {
		t.Fatalf("open must defer payload validation to page-in: %v", err)
	}
	defer pc.Close()
	if _, err := pc.Acquire(0); err != nil {
		t.Fatalf("undamaged partition rejected: %v", err)
	}
	last := pc.NumPartitions() - 1
	if _, err := pc.Acquire(last); err == nil {
		t.Fatal("damaged partition accepted")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error not typed ErrCorrupt: %v", err)
	}
}

// TestReadCSRPartitionedCorruption extends the corruption tables to the
// partitioned layout: single-byte flips anywhere in the file (header,
// partition table, any slab) and truncation at the new region boundaries
// must all surface as typed ErrCorrupt from the full reader.
func TestReadCSRPartitionedCorruption(t *testing.T) {
	good := validPartitionedContainer(t)
	for off := range good {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x01
		_, err := ReadCSR("t", bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("flip at offset %d accepted", off)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at offset %d: error not typed ErrCorrupt: %v", off, err)
		}
	}

	tableLen := int(binary.LittleEndian.Uint64(good[24+8:]))
	for _, cut := range []int{
		csrFileHeaderSize,                           // before the partition table
		csrFileHeaderSize + 4,                       // mid partition count
		csrFileHeaderSize + 8 + csrPartEntryBytes/2, // mid table entry
		csrFileHeaderSize + tableLen,                // table/payload boundary
		csrFileHeaderSize + tableLen + 5,            // mid first row slab
		len(good) - 3,                               // mid last edge record
	} {
		_, err := ReadCSR("t", bytes.NewReader(good[:cut]))
		if err == nil {
			t.Errorf("truncation at %d accepted", cut)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation at %d: error not typed ErrCorrupt: %v", cut, err)
		}
	}

	// Crafted tables behind resealed CRCs: every cross-field consistency
	// rule must hold even when the checksums do.
	resealTable := func(b []byte) {
		tl := binary.LittleEndian.Uint64(b[24+8:])
		tab := b[csrFileHeaderSize : csrFileHeaderSize+int(tl)]
		binary.LittleEndian.PutUint32(b[24+16:], crc32Checksum(tab))
		resealHeader(b)
	}
	mutate := func(name string, f func(b []byte)) {
		bad := append([]byte(nil), good...)
		f(bad)
		resealTable(bad)
		_, err := ReadCSR("t", bytes.NewReader(bad))
		if err == nil {
			t.Errorf("%s accepted", name)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error not typed ErrCorrupt: %v", name, err)
		}
	}
	entry := csrFileHeaderSize + 8 // first table entry
	mutate("partition count mismatch", func(b []byte) {
		c := binary.LittleEndian.Uint64(b[csrFileHeaderSize:])
		binary.LittleEndian.PutUint64(b[csrFileHeaderSize:], c+1)
	})
	mutate("interval gap", func(b []byte) {
		v := binary.LittleEndian.Uint64(b[entry+8:])
		binary.LittleEndian.PutUint64(b[entry+8:], v-1)
	})
	mutate("edge count shifted", func(b []byte) {
		e := binary.LittleEndian.Uint64(b[entry+16:])
		binary.LittleEndian.PutUint64(b[entry+16:], e+1)
	})
	mutate("slab offset shifted", func(b []byte) {
		o := binary.LittleEndian.Uint64(b[entry+24:])
		binary.LittleEndian.PutUint64(b[entry+24:], o+8)
	})
	mutate("row crc zeroed", func(b []byte) {
		binary.LittleEndian.PutUint32(b[entry+40:], 0)
	})
}
