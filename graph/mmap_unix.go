//go:build unix

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only and returns the mapping, its release
// function, and backed=true. A zero-length file cannot be mapped (and is
// corrupt anyway — the header alone is larger), so it degrades to an
// empty slice with a no-op release.
func mapFile(path string) (data []byte, unmap func([]byte) error, backed bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, false, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, func([]byte) error { return nil }, false, nil
	}
	if size != int64(int(size)) {
		return nil, nil, false, fmt.Errorf("graph: %s: %d bytes exceeds address space", path, size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	return data, syscall.Munmap, true, nil
}
