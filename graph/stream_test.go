package graph

import (
	"testing"
)

// collect drains a stream from a fresh Reset.
func collect(st EdgeStream) []Edge {
	st.Reset()
	var out []Edge
	for {
		e, ok := st.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func TestStreamDeterminismAndReset(t *testing.T) {
	streams := []EdgeStream{
		NewRMATStream("rmat", 1000, 8, DefaultRMAT, 64, 42),
		NewUniformStream("urand", 1000, 8, 64, 42),
		NewGridStream("grid", 20, 30, 0.39, 64, 42),
	}
	for _, st := range streams {
		a := collect(st)
		b := collect(st) // after Reset: identical sequence
		if int64(len(a)) != st.NumEdges() {
			t.Errorf("%s: emitted %d edges, NumEdges says %d", st.Name(), len(a), st.NumEdges())
		}
		if len(a) != len(b) {
			t.Fatalf("%s: replay emitted %d edges, want %d", st.Name(), len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: replay diverges at edge %d: %v vs %v", st.Name(), i, a[i], b[i])
			}
		}
		n := st.NumVertices()
		for i, e := range a {
			if int(e.Src) >= n || int(e.Dst) >= n {
				t.Fatalf("%s: edge %d endpoint out of range: %v (n=%d)", st.Name(), i, e, n)
			}
			if e.Weight == 0 || e.Weight > 64 {
				t.Fatalf("%s: edge %d weight %d out of [1,64]", st.Name(), i, e.Weight)
			}
		}
		// Exhausted streams stay exhausted until Reset.
		if _, ok := st.Next(); ok {
			t.Errorf("%s: Next after exhaustion returned an edge", st.Name())
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	a := collect(NewRMATStream("a", 512, 8, DefaultRMAT, 64, 1))
	b := collect(NewRMATStream("b", 512, 8, DefaultRMAT, 64, 2))
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical edge sequences")
	}
}

func TestVertexMixBijective(t *testing.T) {
	for _, bits := range []int{1, 3, 10} {
		m := newVertexMix(bits, 7)
		n := 1 << bits
		seen := make([]bool, n)
		for v := 0; v < n; v++ {
			p := m.apply(uint64(v))
			if p >= uint64(n) {
				t.Fatalf("bits=%d: mix(%d)=%d escapes the domain", bits, v, p)
			}
			if seen[p] {
				t.Fatalf("bits=%d: mix is not injective at %d", bits, v)
			}
			seen[p] = true
		}
	}
}

func TestGridStreamMatchesGenGrid(t *testing.T) {
	// The grid stream draws from the rng in GenGrid's exact order, so the
	// built CSRs must be identical field for field.
	want := GenGrid("grid", 17, 23, 0.39, 64, 9)
	got := FromStream(NewGridStream("grid", 17, 23, 0.39, 64, 9))
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("V/E mismatch: got %v, want %v", got, want)
	}
	for i := range want.RowPtr {
		if got.RowPtr[i] != want.RowPtr[i] {
			t.Fatalf("RowPtr[%d]: got %d, want %d", i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	for i := range want.Dst {
		if got.Dst[i] != want.Dst[i] || got.Weight[i] != want.Weight[i] {
			t.Fatalf("edge %d: got (%d,%d), want (%d,%d)",
				i, got.Dst[i], got.Weight[i], want.Dst[i], want.Weight[i])
		}
	}
}

func TestFromStreamMatchesEdgeOrder(t *testing.T) {
	// FromStream must bucket edges exactly like FromEdges over the same
	// sequence (stable within each source vertex).
	st := NewRMATStream("rmat", 300, 6, DefaultRMAT, 16, 5)
	want := FromEdges("rmat", st.NumVertices(), collect(st))
	got := FromStream(st)
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("E: got %d, want %d", got.NumEdges(), want.NumEdges())
	}
	for i := range want.RowPtr {
		if got.RowPtr[i] != want.RowPtr[i] {
			t.Fatalf("RowPtr[%d]: got %d, want %d", i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	for i := range want.Dst {
		if got.Dst[i] != want.Dst[i] || got.Weight[i] != want.Weight[i] {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}

func TestRMATStreamHeavyTail(t *testing.T) {
	g := FromStream(NewRMATStream("rmat", 4096, 16, DefaultRMAT, 1, 3))
	if g.MaxDegree() < 4*int64(g.AvgDegree()) {
		t.Errorf("R-MAT degree distribution suspiciously flat: max %d, avg %.1f",
			g.MaxDegree(), g.AvgDegree())
	}
}
