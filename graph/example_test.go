package graph_test

import (
	"fmt"
	"strings"

	"nova/graph"
)

// ExampleFromEdges builds a CSR from an edge list and inspects it.
func ExampleFromEdges() {
	g := graph.FromEdges("triangle", 3, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 2},
		{Src: 1, Dst: 2, Weight: 3},
		{Src: 2, Dst: 0, Weight: 4},
	})
	fmt.Println(g)
	fmt.Println("neighbors of 1:", g.Neighbors(1))
	// Output:
	// triangle{V=3 E=3 deg=1.0}
	// neighbors of 1: [2]
}

// ExampleReadEdgeList parses a SNAP-style text edge list.
func ExampleReadEdgeList() {
	const data = `# a tiny graph
0 1 5
1 2
`
	g, err := graph.ReadEdgeList("tiny", strings.NewReader(data))
	if err != nil {
		panic(err)
	}
	fmt.Println(g.NumVertices(), g.NumEdges(), g.EdgeWeights(0)[0], g.EdgeWeights(1)[0])
	// Output:
	// 3 2 5 1
}

// ExamplePartitionInterleave shows the zero-preprocessing vertex mapping.
func ExamplePartitionInterleave() {
	p := graph.PartitionInterleave(6, 2)
	fmt.Println(p.Owner)
	// Output:
	// [0 1 0 1 0 1]
}
