package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"unsafe"
)

// MappedCSR is a CSR container opened through the operating system's page
// cache: the file is mapped read-only and validated in place, and the
// graph's row-pointer array aliases the mapping directly on little-endian
// hosts (the on-disk u64 records are exactly the in-memory []int64
// layout). The interleaved edge section cannot be aliased — Dst and
// Weight are separate arrays in memory — so edges are decoded once into
// private slices.
//
// The design point is a long-running service: one MappedCSR is opened per
// registered graph and the *CSR it exposes is shared read-only by every
// concurrent simulation job, so N in-flight requests cost one copy of the
// graph, not N. Nothing in the engines mutates a CSR (the type is
// documented immutable), which is what makes the sharing — and the
// aliased mapping — safe.
//
// Close unmaps the file; the caller must guarantee no simulation still
// holds the CSR (the service registry refcounts entries for exactly this
// reason). After Close, touching an aliased RowPtr faults.
type MappedCSR struct {
	// G is the shared read-only graph view.
	G *CSR
	// Info describes the container (including its ContentHash).
	Info CSRFileInfo
	// data is the mapping (or the whole-file read on platforms without
	// mmap); aliased holds whether G.RowPtr points into data, and backed
	// whether data is a live kernel mapping rather than a heap copy.
	data    []byte
	aliased bool
	backed  bool
	unmap   func([]byte) error
}

// hostIsLittleEndian reports whether native byte order matches the
// container's on-disk order, which is what permits aliasing the mapped
// row-pointer section as []int64 without a decode pass.
func hostIsLittleEndian() bool {
	var probe [2]byte
	binary.NativeEndian.PutUint16(probe[:], 1)
	return probe[0] == 1
}

// OpenCSRFileMapped opens the versioned container at path via mmap (where
// the platform supports it; otherwise a whole-file read), verifies every
// checksum exactly as ReadCSRFile does, and returns the shared graph
// view. Corruption reports wrap ErrCorrupt; the mapping is released on
// every error path.
func OpenCSRFileMapped(path string) (m *MappedCSR, err error) {
	data, unmap, backed, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			unmap(data)
		}
	}()
	if len(data) < csrFileHeaderSize {
		return nil, fmt.Errorf("%w: file shorter than header (%d bytes)", ErrCorrupt, len(data))
	}
	info, secs, err := parseHeader(data[:csrFileHeaderSize])
	if err != nil {
		return nil, err
	}
	if info.Partitioned {
		// Partitioned payloads cannot alias the mapping — the row
		// pointers are split into per-interval slabs with duplicated
		// boundaries — so the graph is decoded into private slices and
		// the mapping released immediately. The result reports
		// Mapped() == false: it is a heap copy, exactly like the
		// non-unix fallback, and operators can tell (service /graphs).
		g, derr := decodePartitionedPayload(path, data, info, secs)
		if derr != nil {
			return nil, derr
		}
		if uerr := unmap(data); uerr != nil {
			return nil, uerr
		}
		return &MappedCSR{G: g, Info: info}, nil
	}
	end := secs[1].off + secs[1].length
	if uint64(len(data)) < end {
		return nil, fmt.Errorf("%w: file truncated at %d bytes, sections end at %d", ErrCorrupt, len(data), end)
	}
	row := data[secs[0].off : secs[0].off+secs[0].length]
	edge := data[secs[1].off : secs[1].off+secs[1].length]
	if got := crc32.Checksum(row, crcTable); got != secs[0].crc {
		return nil, fmt.Errorf("%w: row-pointer section checksum mismatch", ErrCorrupt)
	}
	if got := crc32.Checksum(edge, crcTable); got != secs[1].crc {
		return nil, fmt.Errorf("%w: edge section checksum mismatch", ErrCorrupt)
	}

	n, nEdges := info.NumVertices, info.NumEdges
	g := &CSR{Name: path}
	aliased := false
	if hostIsLittleEndian() && len(row) > 0 {
		g.RowPtr = unsafe.Slice((*int64)(unsafe.Pointer(&row[0])), n+1)
		aliased = true
	} else {
		g.RowPtr = make([]int64, n+1)
		for i := range g.RowPtr {
			g.RowPtr[i] = int64(binary.LittleEndian.Uint64(row[i*8:]))
		}
	}
	// Monotonicity still needs checking — the section CRC proves the
	// bytes are the writer's, not that a crafted file is well-formed.
	prev := int64(0)
	for i, v := range g.RowPtr {
		if v < prev || v > nEdges {
			return nil, fmt.Errorf("%w: row pointer %d out of order (%d after %d)", ErrCorrupt, i, v, prev)
		}
		prev = v
	}
	if g.RowPtr[n] != nEdges {
		return nil, fmt.Errorf("%w: row pointers end at %d, want %d", ErrCorrupt, g.RowPtr[n], nEdges)
	}
	g.Dst = make([]VertexID, nEdges)
	g.Weight = make([]uint32, nEdges)
	for i := int64(0); i < nEdges; i++ {
		d := binary.LittleEndian.Uint32(edge[i*csrEdgeRecBytes:])
		if int(d) >= n {
			return nil, fmt.Errorf("%w: edge %d: destination %d out of range", ErrCorrupt, i, d)
		}
		g.Dst[i] = VertexID(d)
		g.Weight[i] = binary.LittleEndian.Uint32(edge[i*csrEdgeRecBytes+4:])
	}
	return &MappedCSR{G: g, Info: info, data: data, aliased: aliased, backed: backed, unmap: unmap}, nil
}

// Close releases the mapping. The caller must not touch G (or any slice
// derived from it) afterwards when the row pointers alias the mapping.
// Close is idempotent.
func (m *MappedCSR) Close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	if m.aliased {
		// Detach the aliased view so a use-after-Close on the Go side
		// fails as an out-of-bounds panic rather than a page fault when
		// it can (the slice header outlives the mapping either way).
		m.G.RowPtr = nil
	}
	return m.unmap(data)
}

// Mapped reports whether the container is backed by a live memory mapping
// (false on platforms without mmap support, where the file was read).
func (m *MappedCSR) Mapped() bool { return m.data != nil && m.backed }
