package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment
% another comment
0 1 5
1 2
2 0 3

3 3 1
`
	g, err := ReadEdgeList("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	// Missing weight defaults to 1.
	if w := g.EdgeWeights(1)[0]; w != 1 {
		t.Fatalf("default weight = %d", w)
	}
	for _, bad := range []string{"0", "x 1", "0 y", "0 1 z", "0 1 0"} {
		if _, err := ReadEdgeList("t", strings.NewReader(bad)); err == nil {
			t.Errorf("malformed line %q accepted", bad)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := FromEdges("t", n, randEdges(rng, n, rng.Intn(150)))
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			return false
		}
		back, err := ReadEdgeList("t", &buf)
		if err != nil {
			return false
		}
		// The read-back graph may have fewer vertices (trailing isolated
		// vertices have no edges); edges must match exactly.
		a, b := g.Edges(), back.Edges()
		if len(a) != len(b) {
			return false
		}
		sortEdges(a)
		sortEdges(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		g := FromEdges("t", n, randEdges(rng, n, rng.Intn(300)))
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			return false
		}
		back, err := ReadBinary("t", &buf)
		if err != nil {
			return false
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for i := range g.RowPtr {
			if g.RowPtr[i] != back.RowPtr[i] {
				return false
			}
		}
		for i := range g.Dst {
			if g.Dst[i] != back.Dst[i] || g.Weight[i] != back.Weight[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBinaryRejectsCorruption(t *testing.T) {
	g := GenUniform("t", 50, 4, 8, 1)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := ReadBinary("t", bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated.
	if _, err := ReadBinary("t", bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated stream accepted")
	}
	// Out-of-range destination: corrupt a Dst entry to a huge value.
	bad = append([]byte(nil), good...)
	dstOff := 24 + 8*(g.NumVertices()+1)
	for i := 0; i < 4; i++ {
		bad[dstOff+i] = 0xFF
	}
	if _, err := ReadBinary("t", bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range destination accepted")
	}
}
