// Package graph provides the graph data structures, synthetic generators
// and spatial partitioners used by the NOVA reproduction.
//
// Graphs are stored in compressed sparse row (CSR) form, the layout the
// accelerator's message generation unit streams from edge memory: for each
// vertex v, its out-edges occupy the contiguous range
// [RowPtr[v], RowPtr[v+1]) of Dst/Weight. This is also the layout
// Algorithm 1 of the paper indexes with row_ptr.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. Graph sizes in this reproduction are scaled
// to fit a workstation, so 32 bits suffice.
type VertexID uint32

// Edge is a directed, weighted edge.
type Edge struct {
	Src, Dst VertexID
	Weight   uint32
}

// CSR is an immutable directed graph in compressed sparse row form.
type CSR struct {
	// RowPtr has length NumVertices+1; vertex v's out-edges are
	// Dst[RowPtr[v]:RowPtr[v+1]].
	RowPtr []int64
	// Dst holds edge destinations, grouped by source.
	Dst []VertexID
	// Weight holds per-edge weights, parallel to Dst. Unweighted graphs
	// use weight 1 everywhere so SSSP degenerates to BFS distances.
	Weight []uint32
	// Name labels the graph in reports.
	Name string
}

// NumVertices returns |V|.
func (g *CSR) NumVertices() int { return len(g.RowPtr) - 1 }

// NumEdges returns |E| (directed edge count).
func (g *CSR) NumEdges() int64 { return g.RowPtr[len(g.RowPtr)-1] }

// OutDegree returns the out-degree of v.
func (g *CSR) OutDegree(v VertexID) int64 { return g.RowPtr[v+1] - g.RowPtr[v] }

// Neighbors returns the destination slice for v's out-edges. The slice
// aliases the graph; callers must not modify it.
func (g *CSR) Neighbors(v VertexID) []VertexID {
	return g.Dst[g.RowPtr[v]:g.RowPtr[v+1]]
}

// EdgeWeights returns the weight slice for v's out-edges, aliasing the graph.
func (g *CSR) EdgeWeights(v VertexID) []uint32 {
	return g.Weight[g.RowPtr[v]:g.RowPtr[v+1]]
}

// AvgDegree returns |E|/|V|.
func (g *CSR) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumVertices())
}

// MaxDegree returns the largest out-degree.
func (g *CSR) MaxDegree() int64 {
	var m int64
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(VertexID(v)); d > m {
			m = d
		}
	}
	return m
}

// FootprintBytes estimates the memory footprint using the paper's sizing:
// 16 B per vertex record and 8 B per edge.
func (g *CSR) FootprintBytes() int64 {
	return int64(g.NumVertices())*16 + g.NumEdges()*8
}

func (g *CSR) String() string {
	return fmt.Sprintf("%s{V=%d E=%d deg=%.1f}", g.Name, g.NumVertices(), g.NumEdges(), g.AvgDegree())
}

// FromEdges builds a CSR from an edge list. Edges may arrive in any order;
// they are bucketed by source. Duplicate edges are kept (multigraphs are
// legal inputs for the simulated accelerators). It panics if an endpoint
// is out of range — that is a generator bug, not an input condition.
func FromEdges(name string, numVertices int, edges []Edge) *CSR {
	rowPtr := make([]int64, numVertices+1)
	for _, e := range edges {
		if int(e.Src) >= numVertices || int(e.Dst) >= numVertices {
			panic(fmt.Sprintf("graph: edge %d->%d out of range %d", e.Src, e.Dst, numVertices))
		}
		rowPtr[e.Src+1]++
	}
	for i := 1; i <= numVertices; i++ {
		rowPtr[i] += rowPtr[i-1]
	}
	dst := make([]VertexID, len(edges))
	wgt := make([]uint32, len(edges))
	cursor := make([]int64, numVertices)
	for _, e := range edges {
		p := rowPtr[e.Src] + cursor[e.Src]
		cursor[e.Src]++
		dst[p] = e.Dst
		w := e.Weight
		if w == 0 {
			w = 1
		}
		wgt[p] = w
	}
	return &CSR{RowPtr: rowPtr, Dst: dst, Weight: wgt, Name: name}
}

// Edges materializes the edge list (mostly for tests and round-trips).
func (g *CSR) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		lo, hi := g.RowPtr[v], g.RowPtr[v+1]
		for i := lo; i < hi; i++ {
			out = append(out, Edge{Src: VertexID(v), Dst: g.Dst[i], Weight: g.Weight[i]})
		}
	}
	return out
}

// Transpose returns the graph with every edge reversed (used by the
// backward pass of betweenness centrality and by pull-direction edgeMap).
func (g *CSR) Transpose() *CSR {
	n := g.NumVertices()
	rowPtr := make([]int64, n+1)
	for _, d := range g.Dst {
		rowPtr[d+1]++
	}
	for i := 1; i <= n; i++ {
		rowPtr[i] += rowPtr[i-1]
	}
	dst := make([]VertexID, len(g.Dst))
	wgt := make([]uint32, len(g.Weight))
	cursor := make([]int64, n)
	for v := 0; v < n; v++ {
		for i := g.RowPtr[v]; i < g.RowPtr[v+1]; i++ {
			d := g.Dst[i]
			p := rowPtr[d] + cursor[d]
			cursor[d]++
			dst[p] = VertexID(v)
			wgt[p] = g.Weight[i]
		}
	}
	return &CSR{RowPtr: rowPtr, Dst: dst, Weight: wgt, Name: g.Name + "-T"}
}

// Symmetrize returns the graph with each edge mirrored and (src, dst)
// duplicates removed — the form connected-components runs on. When the
// input holds parallel edges with different weights, the smallest weight
// wins, deterministically.
func (g *CSR) Symmetrize() *CSR {
	edges := make([]Edge, 0, 2*g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for i := g.RowPtr[v]; i < g.RowPtr[v+1]; i++ {
			u, d, w := VertexID(v), g.Dst[i], g.Weight[i]
			edges = append(edges, Edge{Src: u, Dst: d, Weight: w}, Edge{Src: d, Dst: u, Weight: w})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		if edges[i].Dst != edges[j].Dst {
			return edges[i].Dst < edges[j].Dst
		}
		return edges[i].Weight < edges[j].Weight
	})
	out := edges[:0]
	for _, e := range edges {
		if n := len(out); n > 0 && out[n-1].Src == e.Src && out[n-1].Dst == e.Dst {
			continue
		}
		out = append(out, e)
	}
	return FromEdges(g.Name+"-sym", g.NumVertices(), out)
}

// Relabel returns a new graph where old vertex v becomes perm[v]. perm must
// be a permutation of 0..n-1; Relabel panics otherwise, since a bad
// permutation silently corrupts every downstream experiment.
func (g *CSR) Relabel(perm []VertexID) *CSR {
	n := g.NumVertices()
	if len(perm) != n {
		panic("graph: Relabel permutation length mismatch")
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int(p) >= n || seen[p] {
			panic("graph: Relabel argument is not a permutation")
		}
		seen[p] = true
	}
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < n; v++ {
		for i := g.RowPtr[v]; i < g.RowPtr[v+1]; i++ {
			edges = append(edges, Edge{Src: perm[v], Dst: perm[g.Dst[i]], Weight: g.Weight[i]})
		}
	}
	return FromEdges(g.Name, n, edges)
}

// LargestOutDegreeVertex returns the vertex with the most out-edges; used
// as the default BFS/SSSP/BC root so traversals reach most of the graph.
func (g *CSR) LargestOutDegreeVertex() VertexID {
	var best VertexID
	var bestDeg int64 = -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(VertexID(v)); d > bestDeg {
			bestDeg = d
			best = VertexID(v)
		}
	}
	return best
}
