package graph

import (
	"fmt"
	"math/rand"
)

// Streaming generators for the large-graph scale tier. The batch
// generators in gen.go materialize the whole edge list before bucketing it
// into CSR form — fine at the paper's scaled-down sizes, but a 3× memory
// blowup once graphs grow to tens of millions of edges. An EdgeStream
// emits edges one at a time in O(1) state beyond the generator parameters,
// and is resettable, so consumers can make the multiple passes a
// constant-memory CSR build needs (count degrees, then scatter) without
// ever holding []Edge.
//
// Streams are deterministic: the same parameters and seed always produce
// the same edge sequence, and Reset rewinds to the first edge.

// EdgeStream is a resettable, deterministic edge generator.
type EdgeStream interface {
	// Name labels graphs built from the stream.
	Name() string
	// NumVertices returns |V| of the generated graph.
	NumVertices() int
	// NumEdges returns the exact number of edges the stream emits
	// between Reset and exhaustion.
	NumEdges() int64
	// Next returns the next edge, or ok=false when the stream is done.
	Next() (Edge, bool)
	// Reset rewinds the stream to the first edge of the same sequence.
	Reset()
}

// FromStream builds an in-memory CSR from a stream in two passes: pass one
// counts out-degrees into the row pointers, pass two scatters destinations
// and weights directly into their final slots. Peak memory is the CSR
// itself plus O(|V|) cursors — the edge list is never materialized.
func FromStream(st EdgeStream) *CSR {
	n := st.NumVertices()
	rowPtr := make([]int64, n+1)
	st.Reset()
	var m int64
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		if int(e.Src) >= n || int(e.Dst) >= n {
			panic(fmt.Sprintf("graph: stream edge %d->%d out of range %d", e.Src, e.Dst, n))
		}
		rowPtr[e.Src+1]++
		m++
	}
	for i := 1; i <= n; i++ {
		rowPtr[i] += rowPtr[i-1]
	}
	dst := make([]VertexID, m)
	wgt := make([]uint32, m)
	cursor := make([]int64, n)
	st.Reset()
	for {
		e, ok := st.Next()
		if !ok {
			break
		}
		p := rowPtr[e.Src] + cursor[e.Src]
		cursor[e.Src]++
		dst[p] = e.Dst
		w := e.Weight
		if w == 0 {
			w = 1
		}
		wgt[p] = w
	}
	return &CSR{RowPtr: rowPtr, Dst: dst, Weight: wgt, Name: st.Name()}
}

// vertexMix is a seeded bijection over [0, 2^bits): alternating rounds of
// odd-multiplication mod 2^bits and xorshift, both invertible, scramble
// vertex IDs the way gen.go's rng.Perm does — but in O(1) state instead of
// an O(|V|) permutation table. Composed with rejection sampling it stays a
// bijection on any [0, n) ⊆ [0, 2^bits) domain.
type vertexMix struct {
	bits  int
	mask  uint64
	mult  [2]uint64
	xor   [2]uint64
	shift uint
}

func newVertexMix(bits int, seed int64) vertexMix {
	rng := rand.New(rand.NewSource(seed ^ 0x6d6978)) // "mix"
	shift := uint(bits) / 2
	if shift == 0 {
		shift = 1
	}
	return vertexMix{
		bits:  bits,
		mask:  1<<bits - 1,
		mult:  [2]uint64{rng.Uint64() | 1, rng.Uint64() | 1}, // odd ⇒ invertible mod 2^bits
		xor:   [2]uint64{rng.Uint64(), rng.Uint64()},
		shift: shift,
	}
}

func (m vertexMix) apply(v uint64) uint64 {
	for r := 0; r < 2; r++ {
		v = (v * m.mult[r]) & m.mask
		v ^= (v >> m.shift) ^ (m.xor[r] & m.mask)
	}
	return v & m.mask
}

// RMATStream streams a Kronecker (R-MAT) graph: numVertices vertices and
// exactly numEdges edges drawn by the recursive quadrant walk over the
// next power of two, with endpoints landing past numVertices rejected
// (preserving the heavy tail, like GenRMATN) and IDs scrambled by a
// seeded bijection so the natural order carries no community structure.
type RMATStream struct {
	name        string
	numVertices int
	numEdges    int64
	p           RMATParams
	maxWeight   uint32
	seed        int64
	scale       int
	mix         vertexMix

	rng     *rand.Rand
	emitted int64
}

// NewRMATStream returns a streaming R-MAT generator emitting
// numVertices·avgDegree edges. It panics on a degenerate vertex count,
// matching GenRMATN.
func NewRMATStream(name string, numVertices int, avgDegree float64, p RMATParams, maxWeight uint32, seed int64) *RMATStream {
	if numVertices < 2 {
		panic(fmt.Sprintf("graph: NewRMATStream needs ≥2 vertices, got %d", numVertices))
	}
	scale := 1
	for 1<<scale < numVertices {
		scale++
	}
	s := &RMATStream{
		name:        name,
		numVertices: numVertices,
		numEdges:    int64(float64(numVertices) * avgDegree),
		p:           p,
		maxWeight:   maxWeight,
		seed:        seed,
		scale:       scale,
		mix:         newVertexMix(scale, seed),
	}
	s.Reset()
	return s
}

// Name implements EdgeStream.
func (s *RMATStream) Name() string { return s.name }

// NumVertices implements EdgeStream.
func (s *RMATStream) NumVertices() int { return s.numVertices }

// NumEdges implements EdgeStream.
func (s *RMATStream) NumEdges() int64 { return s.numEdges }

// Reset implements EdgeStream.
func (s *RMATStream) Reset() {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.emitted = 0
}

// Next implements EdgeStream.
func (s *RMATStream) Next() (Edge, bool) {
	if s.emitted >= s.numEdges {
		return Edge{}, false
	}
	for {
		src, dst := 0, 0
		for bit := 0; bit < s.scale; bit++ {
			r := s.rng.Float64()
			switch {
			case r < s.p.A:
				// top-left quadrant: no bits set
			case r < s.p.A+s.p.B:
				dst |= 1 << bit
			case r < s.p.A+s.p.B+s.p.C:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		ss := s.mix.apply(uint64(src))
		dd := s.mix.apply(uint64(dst))
		if ss >= uint64(s.numVertices) || dd >= uint64(s.numVertices) {
			continue
		}
		s.emitted++
		return Edge{
			Src:    VertexID(ss),
			Dst:    VertexID(dd),
			Weight: weight(s.rng, s.maxWeight),
		}, true
	}
}

// UniformStream streams an Erdős–Rényi-style uniform random digraph —
// the constant-memory counterpart of GenUniform.
type UniformStream struct {
	name        string
	numVertices int
	numEdges    int64
	maxWeight   uint32
	seed        int64

	rng     *rand.Rand
	emitted int64
}

// NewUniformStream returns a streaming uniform generator emitting
// numVertices·avgDegree edges.
func NewUniformStream(name string, numVertices int, avgDegree float64, maxWeight uint32, seed int64) *UniformStream {
	if numVertices < 1 {
		panic(fmt.Sprintf("graph: NewUniformStream needs ≥1 vertex, got %d", numVertices))
	}
	s := &UniformStream{
		name:        name,
		numVertices: numVertices,
		numEdges:    int64(float64(numVertices) * avgDegree),
		maxWeight:   maxWeight,
		seed:        seed,
	}
	s.Reset()
	return s
}

// Name implements EdgeStream.
func (s *UniformStream) Name() string { return s.name }

// NumVertices implements EdgeStream.
func (s *UniformStream) NumVertices() int { return s.numVertices }

// NumEdges implements EdgeStream.
func (s *UniformStream) NumEdges() int64 { return s.numEdges }

// Reset implements EdgeStream.
func (s *UniformStream) Reset() {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.emitted = 0
}

// Next implements EdgeStream.
func (s *UniformStream) Next() (Edge, bool) {
	if s.emitted >= s.numEdges {
		return Edge{}, false
	}
	s.emitted++
	return Edge{
		Src:    VertexID(s.rng.Intn(s.numVertices)),
		Dst:    VertexID(s.rng.Intn(s.numVertices)),
		Weight: weight(s.rng, s.maxWeight),
	}, true
}

// GridStream streams the rows×cols lattice of GenGrid edge for edge: it
// draws from the rng in exactly GenGrid's order, so FromStream(GridStream)
// is identical to the materializing generator with the same parameters.
type GridStream struct {
	name       string
	rows, cols int
	dropProb   float64
	maxWeight  uint32
	seed       int64
	numEdges   int64

	rng *rand.Rand
	// Walk state: current cell, which neighbour (0 = right, 1 = down),
	// and the mirrored edge still owed from the last kept pair.
	r, c, phase int
	pending     Edge
	hasPending  bool
}

// NewGridStream returns a streaming 2D-lattice generator. Unlike the
// unconditional-count streams it must pre-walk the rng once to learn the
// exact surviving edge count, which is O(rows·cols) time but O(1) space.
func NewGridStream(name string, rows, cols int, dropProb float64, maxWeight uint32, seed int64) *GridStream {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("graph: NewGridStream needs a positive grid, got %dx%d", rows, cols))
	}
	s := &GridStream{
		name: name, rows: rows, cols: cols,
		dropProb: dropProb, maxWeight: maxWeight, seed: seed,
	}
	s.Reset()
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		s.numEdges++
	}
	s.Reset()
	return s
}

// Name implements EdgeStream.
func (s *GridStream) Name() string { return s.name }

// NumVertices implements EdgeStream.
func (s *GridStream) NumVertices() int { return s.rows * s.cols }

// NumEdges implements EdgeStream.
func (s *GridStream) NumEdges() int64 { return s.numEdges }

// Reset implements EdgeStream.
func (s *GridStream) Reset() {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.r, s.c, s.phase = 0, 0, 0
	s.hasPending = false
}

func (s *GridStream) id(r, c int) VertexID { return VertexID(r*s.cols + c) }

// Next implements EdgeStream.
func (s *GridStream) Next() (Edge, bool) {
	if s.hasPending {
		s.hasPending = false
		return s.pending, true
	}
	for s.r < s.rows {
		var a, b VertexID
		switch s.phase {
		case 0:
			s.phase = 1
			if s.c+1 >= s.cols {
				continue
			}
			a, b = s.id(s.r, s.c), s.id(s.r, s.c+1)
		default:
			s.phase = 0
			down := s.r+1 < s.rows
			// Advance the cell cursor before emitting, so the walk
			// resumes correctly after the pair is returned.
			if s.c+1 < s.cols {
				s.c++
			} else {
				s.c = 0
				s.r++
			}
			if !down {
				continue
			}
			r, c := s.r, s.c
			// The cursor already moved; recover the cell the edge
			// belongs to.
			if c == 0 {
				r, c = r-1, s.cols-1
			} else {
				c--
			}
			a, b = s.id(r, c), s.id(r+1, c)
		}
		if s.rng.Float64() < s.dropProb {
			continue
		}
		w := weight(s.rng, s.maxWeight)
		s.pending = Edge{Src: b, Dst: a, Weight: w}
		s.hasPending = true
		return Edge{Src: a, Dst: b, Weight: w}, true
	}
	return Edge{}, false
}

var (
	_ EdgeStream = (*RMATStream)(nil)
	_ EdgeStream = (*UniformStream)(nil)
	_ EdgeStream = (*GridStream)(nil)
)
