package nova

import (
	"testing"

	"nova/graph"
	"nova/internal/ligra"
	"nova/program"
)

// TestKernelDeterminismGolden pins one cell per engine to golden tick/work
// counts on fixed seeds. The values were recorded with the seed
// container/heap event kernel; the intrusive 4-ary queue and pooled events
// must reproduce them exactly, proving the queue swap preserves
// time-then-insertion-order tie-breaking.
func TestKernelDeterminismGolden(t *testing.T) {
	g := graph.GenRMATN("golden", 2048, 8, graph.DefaultRMAT, 64, 7)
	root := g.LargestOutDegreeVertex()

	t.Run("nova", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.CacheBytesPerPE = 8 << 10
		cfg.Seed = 3
		acc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := acc.Run(program.NewSSSP(root), g)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("nova: cycles=%d edges=%d msgs=%d coalesced=%d",
			rep.Cycles, rep.Stats.EdgesTraversed, rep.Stats.MessagesSent, rep.Stats.MessagesCoalesced)
		if rep.Cycles != goldenNovaCycles {
			t.Errorf("cycles = %d, golden %d", rep.Cycles, goldenNovaCycles)
		}
		if rep.Stats.EdgesTraversed != goldenNovaEdges {
			t.Errorf("edges = %d, golden %d", rep.Stats.EdgesTraversed, goldenNovaEdges)
		}
		if rep.Stats.MessagesCoalesced != goldenNovaCoalesced {
			t.Errorf("coalesced = %d, golden %d", rep.Stats.MessagesCoalesced, goldenNovaCoalesced)
		}
	})

	t.Run("polygraph", func(t *testing.T) {
		b := &PolyGraphBaseline{OnChipBytes: 2048}
		rep, err := b.Run(program.NewBFS(root), g)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("polygraph: edges=%d passes=%d coalesced=%d",
			rep.Stats.EdgesTraversed, rep.SlicePasses, rep.Stats.MessagesCoalesced)
		if rep.Stats.EdgesTraversed != goldenPGEdges {
			t.Errorf("edges = %d, golden %d", rep.Stats.EdgesTraversed, goldenPGEdges)
		}
		if rep.SlicePasses != goldenPGPasses {
			t.Errorf("passes = %d, golden %d", rep.SlicePasses, goldenPGPasses)
		}
	})

	t.Run("ligra", func(t *testing.T) {
		// One thread: the traversal counts of the atomics-based engine are
		// only schedule-independent when a single worker runs the edge map.
		e := &ligra.Engine{Threads: 1, Threshold: 20}
		dist, res := e.BFS(g, g.Transpose(), root)
		reached := int64(0)
		for _, d := range dist {
			if d >= 0 {
				reached++
			}
		}
		t.Logf("ligra: edges=%d iters=%d reached=%d", res.EdgesTraversed, res.Iterations, reached)
		if res.EdgesTraversed != goldenLigraEdges {
			t.Errorf("edges = %d, golden %d", res.EdgesTraversed, goldenLigraEdges)
		}
		if res.Iterations != goldenLigraIters {
			t.Errorf("iters = %d, golden %d", res.Iterations, goldenLigraIters)
		}
		if reached != goldenLigraReached {
			t.Errorf("reached = %d, golden %d", reached, goldenLigraReached)
		}
	})
}

// TestShardedDeterminismGolden runs the same 4-GPN SSSP cell at every
// worker count and pins the result to golden constants: the -shards knob
// only changes which goroutine executes a window, so cycles, traversed
// edges, and coalesced messages must be bit-identical at 1, 2, and 4
// workers — and at every future run. Props are verified against the
// sequential oracle at each count.
func TestShardedDeterminismGolden(t *testing.T) {
	g := graph.GenRMATN("golden", 2048, 8, graph.DefaultRMAT, 64, 7)
	root := g.LargestOutDegreeVertex()
	for _, shards := range []int{1, 2, 4} {
		cfg := DefaultConfig()
		cfg.GPNs = 4
		cfg.PEsPerGPN = 2
		cfg.CacheBytesPerPE = 8 << 10
		cfg.Seed = 3
		cfg.Shards = shards
		acc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := acc.Run(program.NewSSSP(root), g)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		t.Logf("shards=%d: cycles=%d edges=%d coalesced=%d windows=%d",
			shards, rep.Cycles, rep.Stats.EdgesTraversed, rep.Stats.MessagesCoalesced, rep.Windows)
		if rep.Shards != shards {
			t.Errorf("shards=%d: report says %d", shards, rep.Shards)
		}
		if rep.Cycles != goldenShardCycles {
			t.Errorf("shards=%d: cycles = %d, golden %d", shards, rep.Cycles, goldenShardCycles)
		}
		if rep.Stats.EdgesTraversed != goldenShardEdges {
			t.Errorf("shards=%d: edges = %d, golden %d", shards, rep.Stats.EdgesTraversed, goldenShardEdges)
		}
		if rep.Stats.MessagesCoalesced != goldenShardCoalesced {
			t.Errorf("shards=%d: coalesced = %d, golden %d", shards, rep.Stats.MessagesCoalesced, goldenShardCoalesced)
		}
		if err := Verify("sssp", g, root, rep.Props); err != nil {
			t.Errorf("shards=%d: %v", shards, err)
		}
	}
}

// Golden values recorded with the seed kernel (container/heap, closure
// callbacks) — see TestKernelDeterminismGolden.
const (
	goldenNovaCycles    = uint64(21110)
	goldenNovaEdges     = int64(27129)
	goldenNovaCoalesced = int64(10260)
	goldenPGEdges       = int64(19194)
	goldenPGPasses      = 11
	goldenLigraEdges    = int64(4124)
	goldenLigraIters    = 5
	goldenLigraReached  = int64(1330)
)

// Golden values for the 4-GPN sharded cell of TestShardedDeterminismGolden,
// recorded at -shards 1 when the windowed cluster landed; every worker
// count must reproduce them exactly.
const (
	goldenShardCycles    = uint64(17894)
	goldenShardEdges     = int64(27274)
	goldenShardCoalesced = int64(10799)
)
