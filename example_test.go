package nova_test

import (
	"fmt"

	"nova"
	"nova/graph"
	"nova/program"
)

// Example runs breadth-first search on a small deterministic graph with a
// single-GPN NOVA system and verifies the result.
func Example() {
	// A diamond: 0 → {1,2} → 3.
	g := graph.FromEdges("diamond", 4, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 0, Dst: 2, Weight: 1},
		{Src: 1, Dst: 3, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1},
	})
	acc, err := nova.New(nova.DefaultConfig())
	if err != nil {
		panic(err)
	}
	rep, err := acc.Run(program.NewBFS(0), g)
	if err != nil {
		panic(err)
	}
	fmt.Println("distances:", rep.Props[0], rep.Props[1], rep.Props[2], rep.Props[3])
	fmt.Println("verified:", nova.Verify("bfs", g, 0, rep.Props) == nil)
	// Output:
	// distances: 0 1 1 2
	// verified: true
}

// ExampleRunWorkload shows the uniform workload harness running SSSP on
// both accelerator engines and comparing their work efficiency.
func ExampleRunWorkload() {
	g := graph.GenRMAT("demo", 10, 8, graph.DefaultRMAT, 16, 7)
	root := g.LargestOutDegreeVertex()

	acc, _ := nova.New(nova.DefaultConfig())
	pg := &nova.PolyGraphBaseline{ForceSlices: 4}

	a, _ := nova.RunWorkload(acc, "sssp", g, nil, root, 0)
	b, _ := nova.RunWorkload(pg, "sssp", g, nil, root, 0)

	fmt.Println("same answers:", equalProps(a.Props, b.Props))
	fmt.Println("nova work efficiency higher:", a.WorkEfficiency() > b.WorkEfficiency())
	// Output:
	// same answers: true
	// nova work efficiency higher: true
}

func equalProps(a, b []program.Prop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ExampleSoftware runs the Ligra-style software baseline on the host.
func ExampleSoftware() {
	g := graph.FromEdges("chain", 3, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
	})
	sw := &nova.Software{Threads: 1}
	rep, err := sw.RunWorkload("bfs", g, g.Transpose(), 0, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("distances:", rep.Dists)
	// Output:
	// distances: [0 1 2]
}
