package nova

import (
	"context"
	"fmt"

	"nova/graph"
	"nova/internal/ref"
	"nova/internal/sim"
	"nova/program"
)

// WorkloadNames lists the paper's five evaluation workloads in Fig. 4
// order. BFS, CC and SSSP run asynchronously; PR and BC run bulk-
// synchronously (Section V).
var WorkloadNames = []string{"bfs", "sssp", "cc", "pr", "bc"}

// SpillStressWorkload is the sixth, non-paper workload: asynchronous
// delta PageRank keeps a large fraction of vertices simultaneously
// active, so on the large scale tier it drives the VMU's spill/recovery
// machinery far harder than the traversal workloads do. It runs on the
// nova and extmem engines — the software baseline has no generic
// asynchronous executor, and PolyGraph's temporal slicing degenerates
// when every vertex stays active (both reject it with an explanatory
// error).
const SpillStressWorkload = "prdelta"

// Outcome is the engine-agnostic result of running one workload through a
// program.Runner, with the sequential-work denominator attached so both
// throughput metrics of the paper are computable.
type Outcome struct {
	Workload string
	Stats    program.RunStats
	// SequentialEdges is the edges a sequential implementation traverses
	// (Beamer's work-efficiency numerator).
	SequentialEdges int64
	// Props holds the final properties (nil for BC, which returns Scores).
	Props []program.Prop
	// Scores holds BC dependency values.
	Scores []float64
	// Partial marks a salvaged outcome from a run that stopped early;
	// StopReason classifies why ("cancelled", "deadline", "budget",
	// "stalled"). Only RunWorkloadContext produces partial outcomes.
	Partial    bool
	StopReason string
}

// WorkEfficiency returns sequential edges / traversed edges.
func (o *Outcome) WorkEfficiency() float64 {
	return o.Stats.WorkEfficiency(o.SequentialEdges)
}

// EffectiveGTEPS returns useful giga-edges per second — the metric the
// paper's figures plot (TEPS × work efficiency).
func (o *Outcome) EffectiveGTEPS() float64 {
	return o.Stats.EffectiveGTEPS(o.SequentialEdges)
}

// workloadProgram builds the single-phase program for a workload name.
// "bc" is two-phase and handled separately via program.RunBC.
func workloadProgram(name string, root graph.VertexID, prIters int) (program.Program, error) {
	if prIters <= 0 {
		prIters = 10
	}
	switch name {
	case "bfs":
		return program.NewBFS(root), nil
	case "sssp":
		return program.NewSSSP(root), nil
	case "cc":
		return program.NewCC(), nil
	case "pr":
		return program.NewPageRank(0.85, prIters), nil
	case SpillStressWorkload:
		// The residual tolerance is absolute mass, which bounds the run in
		// both directions: it must sit well below the initial per-vertex
		// residual (1-d)/|V| — 1.9e-6 at the large tier's twitter — or the
		// computation converges before it starts, while total activations
		// are capped by total-mass/tolerance, so every 10× of extra slack
		// buys ~10× more simulated work. 1e-7 stays below the initial
		// residual of every registry graph at every tier (2.9e-7 at
		// full-scale urand, the largest) and keeps the large-tier run
		// inside the simulator's event budget.
		return program.NewPRDelta(0.85, 1e-7), nil
	default:
		return nil, fmt.Errorf("nova: unknown workload %q", name)
	}
}

// RunWorkload executes the named workload on any engine implementing
// program.Runner. The transpose gT is needed only for "bc"; "cc" expects a
// symmetric graph. prIters configures PageRank (≤0 means 10).
func RunWorkload(r program.Runner, name string, g, gT *graph.CSR, root graph.VertexID, prIters int) (*Outcome, error) {
	return RunWorkloadContext(context.Background(), r, name, g, gT, root, prIters)
}

// RunWorkloadContext is RunWorkload with cooperative cancellation. When
// the runner is context-aware (it implements RunProgramContext, as the
// NOVA accelerator and PolyGraph baseline do), a cancelled ctx stops the
// simulation within one poll interval and the partial outcome comes back
// alongside the error, with Partial and StopReason set.
func RunWorkloadContext(ctx context.Context, r program.Runner, name string, g, gT *graph.CSR, root graph.VertexID, prIters int) (*Outcome, error) {
	if prIters <= 0 {
		prIters = 10
	}
	if cr, ok := r.(interface {
		RunProgramContext(ctx context.Context, p program.Program, g *graph.CSR) ([]program.Prop, program.RunStats, error)
	}); ok {
		r = ctxRunner{ctx, cr}
	}
	o := &Outcome{
		Workload:        name,
		SequentialEdges: ref.SequentialEdges(g, root, name, prIters),
	}
	if name == "bc" {
		if gT == nil {
			gT = g.Transpose()
		}
		scores, stats, err := program.RunBC(r, g, gT, root)
		o.Scores = scores
		o.Stats = stats
		return salvageOutcome(o, err)
	}
	p, err := workloadProgram(name, root, prIters)
	if err != nil {
		return nil, err
	}
	props, stats, err := r.RunProgram(p, g)
	o.Props = props
	o.Stats = stats
	return salvageOutcome(o, err)
}

// salvageOutcome classifies a run error: cooperative stops keep the
// partial outcome (Partial set) alongside the error, anything else
// discards it.
func salvageOutcome(o *Outcome, err error) (*Outcome, error) {
	if err == nil {
		return o, nil
	}
	reason := sim.ReasonFor(err)
	if reason == "" {
		return nil, err
	}
	o.Partial = true
	o.StopReason = string(reason)
	return o, err
}
