package nova

import (
	"context"
	"errors"
	"testing"
	"time"

	"nova/graph"
	"nova/internal/harness"
	"nova/internal/sim"
	"nova/program"
)

// cancelTestGraph is big enough that a full PageRank run takes visibly
// longer than the timeouts below, so a cell that returns quickly did so
// because cancellation worked, not because it finished.
func cancelTestGraph() *graph.CSR {
	return graph.GenRMAT("cancel", 13, 16, graph.DefaultRMAT, 8, 5)
}

// TestRunContextCancelledReturnsPartial pins the core salvage contract:
// running under an already-cancelled context stops the simulation at its
// first poll and returns the partial report alongside context.Canceled.
func TestRunContextCancelledReturnsPartial(t *testing.T) {
	acc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := acc.RunContext(ctx, program.NewPageRank(0.85, 50), cancelTestGraph())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled run returned no partial report")
	}
	if !rep.Partial || rep.StopReason != string(sim.StopCancelled) {
		t.Fatalf("partial=%v reason=%q, want partial with %q", rep.Partial, rep.StopReason, sim.StopCancelled)
	}
}

// TestEngineDeadlineStopsWithinPollInterval is the acceptance gate for
// cooperative timeouts: a nova cell with a short deadline must stop
// within the pool's abandon grace (one poll interval for the engine)
// and return a salvaged partial report with the "deadline" stop reason,
// instead of running to completion or being abandoned.
func TestEngineDeadlineStopsWithinPollInterval(t *testing.T) {
	acc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := acc.Engine()
	w := harness.Workload{Name: "pr", G: cancelTestGraph(), PRIters: 200}

	start := time.Now()
	results := harness.Map(context.Background(), &harness.Pool{Workers: 1}, []harness.Job[*harness.Report]{{
		Name:    "deadline-cell",
		Timeout: 50 * time.Millisecond,
		Run: func(ctx context.Context) (*harness.Report, error) {
			return eng.RunWorkload(ctx, w)
		},
	}})
	elapsed := time.Since(start)

	r := results[0]
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", r.Err)
	}
	if r.Value == nil {
		t.Fatal("timed-out cell was abandoned instead of returning its partial report")
	}
	if !r.Value.Partial || r.Value.StopReason != "deadline" {
		t.Fatalf("partial=%v reason=%q, want partial with \"deadline\"", r.Value.Partial, r.Value.StopReason)
	}
	// Timeout (50ms) + one poll interval + scheduling slack. The pool's
	// default abandon grace is 1s, so finishing well inside it proves the
	// engine stopped cooperatively rather than being abandoned.
	if elapsed > 900*time.Millisecond {
		t.Fatalf("cell took %v to observe its deadline", elapsed)
	}
}

// TestWorkloadContextBudgetPartial pins the third stop reason end to end:
// an event budget too small for the workload must surface as a partial
// outcome classified "budget".
func TestWorkloadContextBudgetPartial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxEvents = 64
	acc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunWorkloadContext(context.Background(), acc, "bfs", cancelTestGraph(), nil, 0, 0)
	if !errors.Is(err, sim.ErrMaxEvents) {
		t.Fatalf("err = %v, want sim.ErrMaxEvents", err)
	}
	if out == nil || !out.Partial || out.StopReason != string(sim.StopBudget) {
		t.Fatalf("outcome %+v, want partial with %q", out, sim.StopBudget)
	}
}

// TestSoftwareRunWorkloadContextCancel covers the ligra backend's
// cooperative stop: cancellation between edgeMap iterations returns the
// partial report with the iterations completed so far.
func TestSoftwareRunWorkloadContextCancel(t *testing.T) {
	g := cancelTestGraph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := (&Software{Threads: 1}).RunWorkloadContext(ctx, "pr", g, g.Transpose(), 0, 50)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || !rep.Partial || rep.StopReason != string(sim.StopCancelled) {
		t.Fatalf("report %+v, want partial with %q", rep, sim.StopCancelled)
	}
	if rep.Iterations >= 50 {
		t.Fatalf("cancelled run completed all %d iterations", rep.Iterations)
	}
}

// TestPolyGraphRunContextCancel covers the polygraph backend's
// cooperative stop between rounds and slice activations.
func TestPolyGraphRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := (&PolyGraphBaseline{}).RunContext(ctx, program.NewPageRank(0.85, 50), cancelTestGraph())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || !rep.Partial || rep.StopReason != string(sim.StopCancelled) {
		t.Fatalf("report %+v, want partial with %q", rep, sim.StopCancelled)
	}
}
