package nova

import (
	"context"

	"testing"

	"nova/graph"
	"nova/internal/harness"
)

// TestTierThreadsThroughEngines verifies the scale-tier label travels
// Workload → Report unchanged on every adapter, and that a large-tier
// style configuration (shrunken active buffers) actually drives the spill
// path — the report-level view of the internal/core spill-coverage tests.
func TestTierThreadsThroughEngines(t *testing.T) {
	g := graph.FromStream(graph.NewRMATStream("tier", 2048, 8, graph.DefaultRMAT, 16, 4))
	root := g.LargestOutDegreeVertex()

	cfg := DefaultConfig()
	cfg.CacheBytesPerPE = 1 << 10
	cfg.ActiveBufferEntries = 16 // the large-tier sizing
	acc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engines := []harness.Engine{
		acc.Engine(),
		(&PolyGraphBaseline{OnChipBytes: 4096}).Engine(),
		(&Software{Threads: 1}).Engine(),
	}
	for _, e := range engines {
		rep, err := e.RunWorkload(context.Background(), harness.Workload{Name: "bfs", G: g, Root: root, Tier: "large"})
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if rep.Tier != "large" {
			t.Errorf("%s: report tier %q, want %q", e.Name(), rep.Tier, "large")
		}
	}

	// On the shrunken buffers the NOVA run must have spilled and recovered.
	rep, err := acc.Engine().RunWorkload(context.Background(), harness.Workload{Name: "sssp", G: g, Root: root, Tier: "large"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metric("spills") == 0 {
		t.Error("large-tier buffers never overflowed: spills = 0")
	}
	if rep.Metric("recovery_hit_rate") <= 0 {
		t.Errorf("recovery_hit_rate = %v, want > 0", rep.Metric("recovery_hit_rate"))
	}
}

// TestSpillStressWorkload runs the prdelta spill-stress workload through
// the public RunWorkload path on the NOVA engine.
func TestSpillStressWorkload(t *testing.T) {
	g := graph.FromStream(graph.NewUniformStream("stress", 1024, 8, 8, 9))
	cfg := DefaultConfig()
	cfg.ActiveBufferEntries = 16
	acc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunWorkload(acc, SpillStressWorkload, g, nil, g.LargestOutDegreeVertex(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.EdgesTraversed == 0 {
		t.Fatal("prdelta traversed no edges")
	}
	if out.SequentialEdges != g.NumEdges() {
		t.Fatalf("prdelta sequential-edge anchor = %d, want |E| = %d",
			out.SequentialEdges, g.NumEdges())
	}
}
