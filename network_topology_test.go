package nova

import (
	"fmt"
	"testing"

	"nova/graph"
	"nova/program"
)

// topoGolden pins one 4-GPN SSSP cell per inter-GPN topology (and one
// coalescing-enabled crossbar cell) to golden cycle/work counts. Recorded
// at -shards 1 when the topology fabric landed; every worker count must
// reproduce them exactly, like TestShardedDeterminismGolden does for the
// default crossbar.
var topoGoldens = []struct {
	topology  string
	window    int64
	cycles    uint64
	edges     int64
	coalesced uint64 // network-level (fabric) coalesced batches
}{
	{"crossbar", 0, goldenShardCycles, int64(27274), 0},
	{"ring", 0, goldenRingCycles, goldenRingEdges, 0},
	{"mesh", 0, goldenMeshCycles, goldenMeshEdges, 0},
	{"torus", 0, goldenTorusCycles, goldenTorusEdges, 0},
	{"crossbar", 16, goldenCoalCycles, goldenCoalEdges, goldenCoalBatches},
}

// Golden values for TestTopologyShardDeterminismGolden, recorded at
// -shards 1 when the pluggable-topology fabric landed.
const (
	goldenRingCycles = uint64(17353)
	goldenRingEdges  = int64(26748)
	goldenMeshCycles = uint64(17716)
	goldenMeshEdges  = int64(26728)
	// A 4-GPN torus is a 2×2 grid whose wrap links coincide with the mesh
	// links, so its goldens equal the mesh's by construction.
	goldenTorusCycles = uint64(17716)
	goldenTorusEdges  = int64(26728)
	goldenCoalCycles  = uint64(20723)
	goldenCoalEdges   = int64(27673)
	goldenCoalBatches = uint64(1441)
)

func topoCellConfig(topology string, window int64, shards int) Config {
	cfg := DefaultConfig()
	cfg.GPNs = 4
	cfg.PEsPerGPN = 2
	cfg.CacheBytesPerPE = 8 << 10
	cfg.Seed = 3
	cfg.Shards = shards
	cfg.Topology = topology
	cfg.CoalesceWindow = window
	return cfg
}

// TestTopologyShardDeterminismGolden is TestShardedDeterminismGolden
// extended over the inter-GPN topology × coalescing grid: each cell must
// be bit-identical at 1, 2 and 4 workers and match its pinned golden.
func TestTopologyShardDeterminismGolden(t *testing.T) {
	g := graph.GenRMATN("golden", 2048, 8, graph.DefaultRMAT, 64, 7)
	root := g.LargestOutDegreeVertex()
	for _, gold := range topoGoldens {
		name := gold.topology
		if gold.window > 0 {
			name = fmt.Sprintf("%s-coalesce%d", gold.topology, gold.window)
		}
		t.Run(name, func(t *testing.T) {
			for _, shards := range []int{1, 2, 4} {
				acc, err := New(topoCellConfig(gold.topology, gold.window, shards))
				if err != nil {
					t.Fatal(err)
				}
				rep, err := acc.Run(program.NewSSSP(root), g)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				t.Logf("shards=%d: cycles=%d edges=%d netcoalesced=%d avghops=%.3f",
					shards, rep.Cycles, rep.Stats.EdgesTraversed,
					rep.NetworkMessagesCoalesced, rep.NetworkAvgHops)
				if rep.Cycles != gold.cycles {
					t.Errorf("shards=%d: cycles = %d, golden %d", shards, rep.Cycles, gold.cycles)
				}
				if rep.Stats.EdgesTraversed != gold.edges {
					t.Errorf("shards=%d: edges = %d, golden %d", shards, rep.Stats.EdgesTraversed, gold.edges)
				}
				if rep.NetworkMessagesCoalesced != gold.coalesced {
					t.Errorf("shards=%d: fabric coalesced = %d, golden %d",
						shards, rep.NetworkMessagesCoalesced, gold.coalesced)
				}
				if err := Verify("sssp", g, root, rep.Props); err != nil {
					t.Errorf("shards=%d: %v", shards, err)
				}
			}
		})
	}
}

// TestCoalescingBitIdentical is the correctness property of the in-fabric
// coalescing stage: for the exactly-mergeable monotone workloads (BFS,
// SSSP, CC — min-reduce, so merging in-flight deltas commutes with
// delivery), enabling coalescing must leave every verified vertex value
// bit-identical on every topology, while actually coalescing traffic.
func TestCoalescingBitIdentical(t *testing.T) {
	g := graph.GenRMATN("coal", 2048, 8, graph.DefaultRMAT, 64, 11)
	root := g.LargestOutDegreeVertex()
	progs := map[string]func() program.Program{
		"bfs":  func() program.Program { return program.NewBFS(root) },
		"sssp": func() program.Program { return program.NewSSSP(root) },
		"cc":   func() program.Program { return program.NewCC() },
	}
	for _, topology := range []string{"crossbar", "ring", "mesh", "torus"} {
		for wname, mk := range progs {
			t.Run(topology+"/"+wname, func(t *testing.T) {
				run := func(window int64) *Report {
					acc, err := New(topoCellConfig(topology, window, 2))
					if err != nil {
						t.Fatal(err)
					}
					rep, err := acc.Run(mk(), g)
					if err != nil {
						t.Fatal(err)
					}
					return rep
				}
				off := run(0)
				on := run(16)
				if on.NetworkMessagesCoalesced == 0 {
					t.Error("coalescing enabled but no batches coalesced")
				}
				if off.NetworkMessagesCoalesced != 0 {
					t.Errorf("coalescing disabled but %d batches coalesced", off.NetworkMessagesCoalesced)
				}
				if on.NetworkInterBytes >= off.NetworkInterBytes {
					t.Errorf("coalescing did not reduce inter-GPN bytes: on=%d off=%d",
						on.NetworkInterBytes, off.NetworkInterBytes)
				}
				for v := range off.Props {
					if off.Props[v] != on.Props[v] {
						t.Fatalf("vertex %d: off=%d on=%d", v, off.Props[v], on.Props[v])
					}
				}
				if err := Verify(wname, g, root, on.Props); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestCoalescingConservation asserts the fabric's message-conservation
// invariant end to end: every batch the MGUs offer is either sent or
// coalesced, so messages + messages_coalesced is an exact function of the
// cell — identical at every worker count. (The absolute count differs per
// topology and window: asynchronous traversal order, and therefore the
// offered load itself, depends on delivery timing. The strict
// cross-topology form of the invariant under a fixed offered load is
// asserted by the network package's TestConservationInvariant.)
func TestCoalescingConservation(t *testing.T) {
	g := graph.GenRMATN("conserve", 2048, 8, graph.DefaultRMAT, 64, 7)
	root := g.LargestOutDegreeVertex()
	for _, topology := range []string{"crossbar", "ring", "mesh", "torus"} {
		for _, window := range []int64{0, 16} {
			var baseline int64 = -1
			for _, shards := range []int{1, 2, 4} {
				acc, err := New(topoCellConfig(topology, window, shards))
				if err != nil {
					t.Fatal(err)
				}
				rep, err := acc.Run(program.NewSSSP(root), g)
				if err != nil {
					t.Fatalf("%s/w%d/shards=%d: %v", topology, window, shards, err)
				}
				bag := rep.Dump.Bag()
				total := int64(bag["network.messages"]) + int64(bag["network.messages_coalesced"])
				if window == 0 && bag["network.messages_coalesced"] != 0 {
					t.Errorf("%s/w0: coalesced %v batches with coalescing off", topology, bag["network.messages_coalesced"])
				}
				if baseline < 0 {
					baseline = total
					t.Logf("%s/w%d: batches offered: %d", topology, window, baseline)
				}
				if total != baseline {
					t.Errorf("%s/w%d/shards=%d: messages+coalesced = %d, want %d",
						topology, window, shards, total, baseline)
				}
			}
		}
	}
}
