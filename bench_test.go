// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates the corresponding
// rows/series on the scaled dataset registry (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate a single figure with full output:
//
//	go run ./cmd/experiments -only fig4 -scale medium
package nova_test

import (
	"context"
	"io"
	"os"
	"strconv"
	"testing"

	"nova/internal/exp"
	"nova/internal/harness"
)

// benchScale escalates with -bench time budget via NOVA_BENCH_SCALE.
func benchScale(b *testing.B) exp.Scale {
	b.Helper()
	if v := os.Getenv("NOVA_BENCH_SCALE"); v != "" {
		s, err := exp.ParseScale(v)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	return exp.Small
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	scale := benchScale(b)
	runner, ok := exp.All[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	// Warm the dataset cache outside the timed region.
	exp.Datasets(scale)
	// NOVA_BENCH_JOBS sets the harness worker count (default sequential,
	// so timings stay comparable with earlier baselines).
	pool := &harness.Pool{Workers: 1}
	if v := os.Getenv("NOVA_BENCH_JOBS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			b.Fatal(err)
		}
		pool.Workers = n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := runner(context.Background(), scale, pool)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s: produced no rows", id)
		}
		if i == 0 && testing.Verbose() {
			table.Render(os.Stdout)
		} else if i == 0 {
			table.Render(io.Discard)
		}
	}
}

// BenchmarkFig1_ThroughputVsGraphSize regenerates Figure 1: NOVA vs
// PolyGraph BFS throughput as the graph grows (PolyGraph decays with slice
// count; NOVA stays flat; they cross).
func BenchmarkFig1_ThroughputVsGraphSize(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig2_SliceSwitchingOverhead regenerates Figure 2: the
// processing/switching/inefficiency breakdown of temporal partitioning as
// slices grow.
func BenchmarkFig2_SliceSwitchingOverhead(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig4_VsStateOfTheArt regenerates Figure 4: the five workloads
// on the five graphs across NOVA, PolyGraph and Ligra, iso-bandwidth.
func BenchmarkFig4_VsStateOfTheArt(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5_Coalescing regenerates Figure 5: the share of messages
// coalesced before propagation on each engine.
func BenchmarkFig5_Coalescing(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6_TimeBreakdown regenerates Figure 6: execution-time
// attribution (NOVA overfetch vs PolyGraph slice switching).
func BenchmarkFig6_TimeBreakdown(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7_StrongScaling regenerates Figure 7: fixed graph,
// 1→8 GPNs, BFS and BC.
func BenchmarkFig7_StrongScaling(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8_WeakScaling regenerates Figure 8: RMAT doubling with the
// GPN count, BFS.
func BenchmarkFig8_WeakScaling(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9a_CacheSensitivity regenerates Figure 9a: per-PE cache
// sweep.
func BenchmarkFig9a_CacheSensitivity(b *testing.B) { runExperiment(b, "fig9a") }

// BenchmarkFig9b_MappingSensitivity regenerates Figure 9b: random vs
// load-balanced vs locality vertex placement.
func BenchmarkFig9b_MappingSensitivity(b *testing.B) { runExperiment(b, "fig9b") }

// BenchmarkFig9c_FabricSensitivity regenerates Figure 9c: hierarchical
// fabric vs ideal point-to-point.
func BenchmarkFig9c_FabricSensitivity(b *testing.B) { runExperiment(b, "fig9c") }

// BenchmarkFig10_BandwidthBreakdown regenerates Figure 10: vertex-memory
// useful/write/wasteful split across tracker sizes.
func BenchmarkFig10_BandwidthBreakdown(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkTable1_SpillPolicies regenerates Table I: overwrite-in-vertex-
// set vs off-chip FIFO spilling, measured.
func BenchmarkTable1_SpillPolicies(b *testing.B) { runExperiment(b, "tab1") }

// BenchmarkTable2_SystemSpec prints Table II: the configured system.
func BenchmarkTable2_SystemSpec(b *testing.B) { runExperiment(b, "tab2") }

// BenchmarkTable3_Datasets regenerates Table III: the dataset registry
// with slice counts.
func BenchmarkTable3_Datasets(b *testing.B) { runExperiment(b, "tab3") }

// BenchmarkTable4_TerascaleResources regenerates Table IV: WDC12 resource
// requirements for NOVA, PolyGraph and Dalorex.
func BenchmarkTable4_TerascaleResources(b *testing.B) { runExperiment(b, "tab4") }

// BenchmarkTable5_FPGAResources regenerates Table V: the FPGA composition
// of one GPN and the Alveo U280 capacity.
func BenchmarkTable5_FPGAResources(b *testing.B) { runExperiment(b, "tab5") }
