// Ablation benchmarks: isolate the design choices behind NOVA's headline
// results, beyond the paper's own figures. Each reports the simulated
// execution time (sim-us) and the design-relevant counter as benchmark
// metrics.
package nova_test

import (
	"strconv"
	"testing"

	"nova"
	"nova/graph"
	"nova/internal/exp"
	"nova/program"
)

func ablationGraph(b *testing.B) (*graph.CSR, graph.VertexID) {
	b.Helper()
	d, err := exp.DatasetByName(exp.Small, "twitter")
	if err != nil {
		b.Fatal(err)
	}
	return d.Graph, d.Root
}

func runAblation(b *testing.B, cfg nova.Config, p func(root graph.VertexID) program.Program) *nova.Report {
	b.Helper()
	g, root := ablationGraph(b)
	var rep *nova.Report
	for i := 0; i < b.N; i++ {
		acc, err := nova.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err = acc.Run(p(root), g)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Stats.SimSeconds*1e6, "sim-us")
	return rep
}

// BenchmarkAblationSpillOverwrite vs ...SpillFIFO: Table I's trade-off as
// an end-to-end ablation (identical machine, different VMU policy).
func BenchmarkAblationSpillOverwrite(b *testing.B) {
	cfg := exp.NOVAConfig(exp.Small, 1)
	cfg.Spill = "overwrite"
	rep := runAblation(b, cfg, func(r graph.VertexID) program.Program { return program.NewSSSP(r) })
	b.ReportMetric(float64(rep.SpillWrites), "spill-writes")
}

func BenchmarkAblationSpillFIFO(b *testing.B) {
	cfg := exp.NOVAConfig(exp.Small, 1)
	cfg.Spill = "fifo"
	rep := runAblation(b, cfg, func(r graph.VertexID) program.Program { return program.NewSSSP(r) })
	b.ReportMetric(float64(rep.SpillWrites), "spill-writes")
	b.ReportMetric(float64(rep.StaleRetrievals), "stale")
}

// BenchmarkAblationAsyncBFS vs ...SyncBFS: the same workload under both
// execution models NOVA supports (Section III-A).
func BenchmarkAblationAsyncBFS(b *testing.B) {
	rep := runAblation(b, exp.NOVAConfig(exp.Small, 1),
		func(r graph.VertexID) program.Program { return program.NewBFS(r) })
	b.ReportMetric(float64(rep.Stats.EdgesTraversed), "edges")
}

func BenchmarkAblationSyncBFS(b *testing.B) {
	rep := runAblation(b, exp.NOVAConfig(exp.Small, 1),
		func(r graph.VertexID) program.Program { return program.Synchronous(program.NewBFS(r)) })
	b.ReportMetric(float64(rep.Stats.EdgesTraversed), "edges")
	b.ReportMetric(float64(rep.Stats.Epochs), "epochs")
}

// BenchmarkAblationBufferDepth sweeps the active-buffer size around the
// paper's 80-entry choice ("bigger than 80 entries has diminishing
// returns").
func BenchmarkAblationBufferDepth(b *testing.B) {
	for _, entries := range []int{16, 40, 80, 160, 320} {
		b.Run(benchName("entries", entries), func(b *testing.B) {
			cfg := exp.NOVAConfig(exp.Small, 1)
			cfg.ActiveBufferEntries = entries
			runAblation(b, cfg, func(r graph.VertexID) program.Program { return program.NewBFS(r) })
		})
	}
}

// BenchmarkAblationSuperblockDim sweeps the tracker granularity
// (Section VI-C2's 32/64/128/256 plus extremes).
func BenchmarkAblationSuperblockDim(b *testing.B) {
	for _, dim := range []int{8, 32, 128, 512} {
		b.Run(benchName("dim", dim), func(b *testing.B) {
			cfg := exp.NOVAConfig(exp.Small, 1)
			cfg.SuperblockDim = dim
			rep := runAblation(b, cfg, func(r graph.VertexID) program.Program { return program.NewBFS(r) })
			b.ReportMetric(100*rep.VertexWastefulFrac, "waste-pct")
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + strconv.Itoa(v)
}

// BenchmarkAblationPRDeltaVsBSP contrasts asynchronous delta-accumulative
// PageRank with the BSP PageRank the paper chose (Section V: PR-delta is
// too sensitive to traversal order). Compare edges and sim-us across the
// two to see why.
func BenchmarkAblationPRDeltaVsBSP(b *testing.B) {
	b.Run("pr-delta-async", func(b *testing.B) {
		rep := runAblation(b, exp.NOVAConfig(exp.Small, 1),
			func(r graph.VertexID) program.Program { return program.NewPRDelta(0.85, 1e-5) })
		b.ReportMetric(float64(rep.Stats.EdgesTraversed), "edges")
	})
	b.Run("pr-bsp-10iter", func(b *testing.B) {
		rep := runAblation(b, exp.NOVAConfig(exp.Small, 1),
			func(r graph.VertexID) program.Program { return program.NewPageRank(0.85, 10) })
		b.ReportMetric(float64(rep.Stats.EdgesTraversed), "edges")
	})
}
