# Build/test/bench entry points. `make bench` records the perf
# trajectory of the harness sweep (sequential vs parallel wall clock per
# figure) into BENCH_harness.json; `make bench-sim` records the event
# kernel's ns/event, allocs/event, and events/sec into BENCH_sim.json.

GO ?= go

BENCH_OUT   ?= BENCH_harness.json
BENCH_JOBS  ?= 4
BENCH_SCALE ?= small
BENCH_FIGS  ?= fig1,fig2,fig4,fig10

BENCH_SIM_OUT ?= BENCH_sim.json

# bench-check compares a fresh event-kernel record against the checked-in
# one. Timing drift warns (runners vary); allocations gate.
BENCH_CHECK_OUT       ?= /tmp/BENCH_sim.fresh.json
BENCH_CHECK_THRESHOLD ?= 50

BENCH_NET_OUT ?= BENCH_net.json
# bench-net-check compares a fresh fabric record against the checked-in
# one: timing drift warns, allocations and the coalescing macro speedups
# gate. The fresh record runs -micro-only so the gate stays quick; the
# committed record (and the nightly artifact) carry the macro cells.
BENCH_NET_CHECK_OUT ?= /tmp/BENCH_net.fresh.json

BENCH_SHARD_OUT    ?= BENCH_shard.json
BENCH_SHARD_COUNTS ?= 1,2,4
# bench-shard gates the 1-shard cluster fast path within 2% of a kernel
# record measured back-to-back on the same machine (timing vs the
# committed BENCH_sim.json would gate runner noise, not code).
BENCH_SHARD_BASE ?= /tmp/BENCH_sim.shardbase.json

BENCH_SERVE_OUT ?= BENCH_serve.json
# serve-bench load-tests the novad serving path in-process: 50 clients
# replaying the default grid. Latency drifts with the runner (warn-only)
# but serve.errors must stay exactly 0.
BENCH_SERVE_CLIENTS ?= 50
BENCH_SERVE_ROUNDS  ?= 4
BENCH_SERVE_CHECK_OUT ?= /tmp/BENCH_serve.fresh.json

# Worker-goroutine count for the spill-stress run (the nightly shard job
# overrides this; results are bit-identical at every setting).
SPILL_SHARDS ?= 4

# Wall-clock bound for the spill-stress cell: generous for the nightly
# runner, but a hung run now dies with a PARTIAL(deadline) report and a
# flushed stats dump instead of eating the job's 120-minute budget.
SPILL_TIMEOUT ?= 90m

# Out-of-core stress knobs: a streamed partitioned container whose
# partition count is ~8x the pager's resident cap (OOC_CACHE), processed
# with the nova SSD tier on and the extmem baseline under a DRAM budget
# ~1/4 of the edge data, so both paging paths run under real pressure.
OOC_VERTICES   ?= 500000
OOC_DEGREE     ?= 16
OOC_PART_EDGES ?= 1000000
OOC_CACHE      ?= 1
OOC_CSR        ?= /tmp/ooc_stress.csr
OOC_STATS_OUT  ?= ooc_stress_stats.json
OOC_TIMEOUT    ?= 90m

.PHONY: all build vet test race bench bench-sim bench-check bench-shard \
	bench-net bench-net-check serve-bench serve-bench-check golden \
	fmt-check stats-md staticcheck spill-stress outofcore-stress \
	clean-bench chaos

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench: build
	$(GO) run ./cmd/experiments -scale $(BENCH_SCALE) -only $(BENCH_FIGS) \
		-jobs $(BENCH_JOBS) -bench $(BENCH_OUT) -quiet > /dev/null
	@cat $(BENCH_OUT)

bench-sim: build
	$(GO) run ./cmd/simbench -o $(BENCH_SIM_OUT)
	@cat $(BENCH_SIM_OUT)

bench-check: build
	$(GO) run ./cmd/simbench -o $(BENCH_CHECK_OUT)
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_CHECK_THRESHOLD) -warn-only \
		-assert-zero 'benchmarks.*allocs_per_event' BENCH_sim.json $(BENCH_CHECK_OUT)

# Record the inter-GPN fabric benchmarks (per-topology send/exchange
# micro-paths plus the coalescing off/on macro cells) into BENCH_net.json,
# then assert the fabric hot paths stayed allocation-free.
bench-net: build
	$(GO) run ./cmd/netbench -o $(BENCH_NET_OUT)
	$(GO) run ./cmd/benchdiff -warn-only \
		-assert-zero 'benchmarks.*allocs_per_event' $(BENCH_NET_OUT) $(BENCH_NET_OUT)

bench-net-check: build
	$(GO) run ./cmd/netbench -micro-only -o $(BENCH_NET_CHECK_OUT)
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_CHECK_THRESHOLD) -warn-only \
		-assert-zero 'benchmarks.*allocs_per_event' $(BENCH_NET_OUT) $(BENCH_NET_CHECK_OUT)

# Record the novad serving-path load test (latency quantiles, cache-hit
# rate, throughput) into BENCH_serve.json; a single failed request fails
# the target through the loadtest's own exit code.
serve-bench: build
	$(GO) run ./cmd/novad loadtest -clients $(BENCH_SERVE_CLIENTS) \
		-rounds $(BENCH_SERVE_ROUNDS) -out $(BENCH_SERVE_OUT)
	@cat $(BENCH_SERVE_OUT)

# serve-bench-check compares a fresh load-test record against the
# checked-in one: latency/throughput drift warns, request errors gate.
serve-bench-check: build
	$(GO) run ./cmd/novad loadtest -clients $(BENCH_SERVE_CLIENTS) \
		-rounds $(BENCH_SERVE_ROUNDS) -out $(BENCH_SERVE_CHECK_OUT)
	$(GO) run ./cmd/benchdiff -warn-only -assert-zero 'serve.errors' \
		$(BENCH_SERVE_OUT) $(BENCH_SERVE_CHECK_OUT)

# Measure the sharded cluster kernel (aggregate events/sec across shards)
# into BENCH_shard.json, then gate: the single-engine cluster fast path
# must stay within 2% of the raw kernel measured in the same run, and the
# cluster benchmarks must stay allocation-free.
bench-shard: build
	$(GO) run ./cmd/simbench -o $(BENCH_SHARD_BASE)
	$(GO) run ./cmd/simbench -shard-out $(BENCH_SHARD_OUT) -shards $(BENCH_SHARD_COUNTS)
	$(GO) run ./cmd/benchdiff -threshold 2 \
		-assert-zero 'benchmarks.*allocs_per_event' $(BENCH_SHARD_BASE) $(BENCH_SHARD_OUT)

# Run the spill-stress workload (delta PageRank on the large tier, active
# buffers shrunk far below the active set) at 4 GPNs and dump its stats;
# SPILL_SHARDS sets the worker-goroutine count (wall-clock lands in the
# dump's metadata, so the nightly artifact carries the scaling signal).
spill-stress: build
	$(GO) run ./cmd/novasim -engine nova -workload prdelta -graph twitter \
		-scale large -gpns 4 -shards $(SPILL_SHARDS) \
		-timeout $(SPILL_TIMEOUT) \
		-stats-out spill_stress_stats.json

# Out-of-core stress (DESIGN.md §18): stream-build a partitioned
# container, page it through a partition cache far smaller than the
# partition count, and run the spill-heavy prdelta cell on both paging
# engines — nova with the SSD tier on, extmem under a tight DRAM budget.
# The stats dump carries partition_loads / bytes_paged / io_stall_ticks
# for both engines (the nightly job gates paged-vs-flat determinism on
# it and uploads it as an artifact).
outofcore-stress: build
	$(GO) run ./cmd/graphgen -kind uniform -vertices $(OOC_VERTICES) \
		-degree $(OOC_DEGREE) -seed 7 -stream \
		-partition-edges $(OOC_PART_EDGES) -o $(OOC_CSR)
	$(GO) run ./cmd/novasim -engine nova,extmem -workload prdelta \
		-graph-file $(OOC_CSR) -partition-cache $(OOC_CACHE) -scale large \
		-out-of-core -ssd-resident-pages 64 \
		-extmem-ram 16777216 -extmem-part-edges $(OOC_PART_EDGES) \
		-timeout $(OOC_TIMEOUT) -stats-out $(OOC_STATS_OUT)

# Drop the fresh /tmp bench records the *-check targets write, so a
# failed gate doesn't leave stale records behind to confuse the next
# comparison (CI runs this with `if: always()`).
clean-bench:
	rm -f $(BENCH_CHECK_OUT) $(BENCH_NET_CHECK_OUT) $(BENCH_SERVE_CHECK_OUT) \
		$(BENCH_SHARD_BASE)

# Randomized fault-injection sweep (DESIGN.md §15): 100+ injected faults
# per run, seed logged for replay via CHAOS_SEED.
chaos:
	$(GO) test -race -run 'TestChaos' -v -timeout 20m ./internal/chaos

# staticcheck is optional locally (not vendored); CI installs it.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not installed; go install honnef.co/go/tools/cmd/staticcheck@latest"; exit 1; }
	staticcheck ./...

# Refresh the golden statistics dump after an intentional behavior
# change. Review `statdiff` output against the old file before committing.
golden:
	$(GO) run ./cmd/goldendump -o testdata/golden_stats.json

# Regenerate the STATS.md metrics reference from live dumps.
stats-md:
	$(GO) generate ./internal/stats

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
