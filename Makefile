# Build/test/bench entry points. `make bench` records the perf
# trajectory of the harness sweep (sequential vs parallel wall clock per
# figure) into BENCH_harness.json; `make bench-sim` records the event
# kernel's ns/event, allocs/event, and events/sec into BENCH_sim.json.

GO ?= go

BENCH_OUT   ?= BENCH_harness.json
BENCH_JOBS  ?= 4
BENCH_SCALE ?= small
BENCH_FIGS  ?= fig1,fig2,fig4,fig10

BENCH_SIM_OUT ?= BENCH_sim.json

# bench-check compares a fresh event-kernel record against the checked-in
# one. Timing drift warns (runners vary); allocations gate.
BENCH_CHECK_OUT       ?= /tmp/BENCH_sim.fresh.json
BENCH_CHECK_THRESHOLD ?= 50

.PHONY: all build vet test race bench bench-sim bench-check golden \
	fmt-check stats-md staticcheck spill-stress

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench: build
	$(GO) run ./cmd/experiments -scale $(BENCH_SCALE) -only $(BENCH_FIGS) \
		-jobs $(BENCH_JOBS) -bench $(BENCH_OUT) -quiet > /dev/null
	@cat $(BENCH_OUT)

bench-sim: build
	$(GO) run ./cmd/simbench -o $(BENCH_SIM_OUT)
	@cat $(BENCH_SIM_OUT)

bench-check: build
	$(GO) run ./cmd/simbench -o $(BENCH_CHECK_OUT)
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_CHECK_THRESHOLD) -warn-only \
		-assert-zero 'benchmarks.*allocs_per_event' BENCH_sim.json $(BENCH_CHECK_OUT)

# Run the spill-stress workload (delta PageRank on the large tier, active
# buffers shrunk far below the active set) and dump its stats.
spill-stress: build
	$(GO) run ./cmd/novasim -engine nova -workload prdelta -graph twitter \
		-scale large -stats-out spill_stress_stats.json

# staticcheck is optional locally (not vendored); CI installs it.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not installed; go install honnef.co/go/tools/cmd/staticcheck@latest"; exit 1; }
	staticcheck ./...

# Refresh the golden statistics dump after an intentional behavior
# change. Review `statdiff` output against the old file before committing.
golden:
	$(GO) run ./cmd/goldendump -o testdata/golden_stats.json

# Regenerate the STATS.md metrics reference from live dumps.
stats-md:
	$(GO) generate ./internal/stats

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
