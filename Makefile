# Build/test/bench entry points. `make bench` records the perf
# trajectory of the harness sweep (sequential vs parallel wall clock per
# figure) into BENCH_harness.json; `make bench-sim` records the event
# kernel's ns/event, allocs/event, and events/sec into BENCH_sim.json.

GO ?= go

BENCH_OUT   ?= BENCH_harness.json
BENCH_JOBS  ?= 4
BENCH_SCALE ?= small
BENCH_FIGS  ?= fig1,fig2,fig4,fig10

BENCH_SIM_OUT ?= BENCH_sim.json

.PHONY: all build vet test race bench bench-sim golden fmt-check stats-md

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench: build
	$(GO) run ./cmd/experiments -scale $(BENCH_SCALE) -only $(BENCH_FIGS) \
		-jobs $(BENCH_JOBS) -bench $(BENCH_OUT) -quiet > /dev/null
	@cat $(BENCH_OUT)

bench-sim: build
	$(GO) run ./cmd/simbench -o $(BENCH_SIM_OUT)
	@cat $(BENCH_SIM_OUT)

# Refresh the golden statistics dump after an intentional behavior
# change. Review `statdiff` output against the old file before committing.
golden:
	$(GO) run ./cmd/goldendump -o testdata/golden_stats.json

# Regenerate the STATS.md metrics reference from live dumps.
stats-md:
	$(GO) generate ./internal/stats

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
