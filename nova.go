// Package nova is the public API of the NOVA reproduction: a simulated
// graph-processing accelerator with a decoupled vertex management
// architecture (HPCA 2025), its temporal-partitioning baseline
// (PolyGraph), and a Ligra-style software baseline, all runnable on the
// same vertex-centric programs.
//
// Quick start:
//
//	g := graph.GenRMAT("social", 16, 16, graph.DefaultRMAT, 1, 42)
//	acc, _ := nova.New(nova.DefaultConfig())
//	rep, _ := acc.Run(program.NewBFS(g.LargestOutDegreeVertex()), g)
//	fmt.Printf("%.2f GTEPS\n", rep.GTEPS(g))
package nova

import (
	"context"
	"fmt"
	"io"
	"time"

	"nova/graph"
	"nova/internal/core"
	"nova/internal/harness"
	"nova/internal/mem"
	"nova/internal/network"
	"nova/internal/ref"
	"nova/internal/sim"
	"nova/internal/stats"
	"nova/internal/trace"
	"nova/program"
)

// Config selects the NOVA system organization. The zero value is not
// valid; start from DefaultConfig.
type Config struct {
	// GPNs is the number of graph processing nodes (Table II: 8 PEs,
	// one HBM2 stack and four DDR4 channels each).
	GPNs int
	// PEsPerGPN overrides the per-GPN processing element count.
	PEsPerGPN int
	// CacheBytesPerPE sizes the MPU vertex cache (default 64 KiB).
	CacheBytesPerPE int
	// SuperblockDim sets the tracker granularity (default 128 blocks).
	SuperblockDim int
	// ActiveBufferEntries sizes the VMU FIFO (default 80).
	ActiveBufferEntries int
	// Spill selects the vertex spilling mechanism: "overwrite" (NOVA's
	// design) or "fifo" (the Table I strawman).
	Spill string
	// Fabric selects the interconnect: "hierarchical" (Table II) or
	// "ideal" (infinite-bandwidth point-to-point, Fig. 9c).
	Fabric string
	// Topology selects the inter-GPN topology of the hierarchical fabric:
	// "crossbar" (default, Table II), "ring", "mesh", or "torus".
	Topology string
	// CoalesceWindow enables the fabric's in-flight message coalescing
	// stage: cross-GPN batches wait up to this many core cycles for
	// further same-destination traffic to merge with (0 disables).
	CoalesceWindow int64
	// CoalesceCapacity bounds buffered message entries per destination PE
	// while a coalescing window is open (0 = network default, 64).
	CoalesceCapacity int
	// OutOfCore enables the SSD-backed third memory tier (DESIGN.md §18):
	// vertex blocks whose SSD page falls outside each PE's resident
	// window pay a modeled page-in before the HBM2 access.
	OutOfCore bool
	// SSDPreset picks the out-of-core device timing: "nvme" (default) or
	// "sata". Ignored unless OutOfCore is set.
	SSDPreset string
	// SSDResidentPages sizes each PE's DRAM-resident window in SSD pages
	// (0 = core default, 1024). Ignored unless OutOfCore is set.
	SSDResidentPages int
	// Mapping selects spatial vertex placement: "random" (default),
	// "interleave", "load-balanced", or "locality" (Fig. 9b).
	Mapping string
	// Seed drives the random vertex mapping.
	Seed int64
	// MaxEvents bounds simulation length (0 = default budget).
	MaxEvents uint64
	// StallTimeout arms the wall-clock stall watchdog (0 = the core
	// default, 30s; negative disables it). Excluded from the engine
	// fingerprint: it cannot affect results, only when a stuck run aborts.
	StallTimeout time.Duration
	// Shards is the number of worker goroutines driving the per-GPN
	// engine shards (0 or 1 = sequential). Clamped to GPNs; results are
	// bit-identical at every setting.
	Shards int
	// Observer, when non-nil, is attached as the run's cooperative-stop
	// interrupt instead of a private one, so an external scheduler (the
	// novad service) can sample liveness beats while the simulation
	// executes and trip it from outside the context path. Excluded from
	// the engine fingerprint, like StallTimeout: observation cannot
	// affect results, so two runs differing only in Observer are
	// cache-equivalent.
	Observer *sim.Interrupt
}

// DefaultConfig returns a single-GPN Table II system with random vertex
// mapping.
func DefaultConfig() Config {
	return Config{
		GPNs:                1,
		PEsPerGPN:           8,
		CacheBytesPerPE:     64 << 10,
		SuperblockDim:       128,
		ActiveBufferEntries: 80,
		Spill:               "overwrite",
		Fabric:              "hierarchical",
		Mapping:             "random",
		Seed:                1,
	}
}

func (c Config) coreConfig() (core.Config, error) {
	cc := core.DefaultConfig(c.GPNs)
	if c.PEsPerGPN > 0 {
		cc.PEsPerGPN = c.PEsPerGPN
	}
	if c.CacheBytesPerPE > 0 {
		cc.CacheBytesPerPE = c.CacheBytesPerPE
	}
	if c.SuperblockDim > 0 {
		cc.SuperblockDim = c.SuperblockDim
	}
	if c.ActiveBufferEntries > 0 {
		cc.ActiveBufferEntries = c.ActiveBufferEntries
		if cc.PrefetchBatch > cc.ActiveBufferEntries {
			cc.PrefetchBatch = cc.ActiveBufferEntries
		}
	}
	cc.MaxEvents = c.MaxEvents
	cc.StallTimeout = c.StallTimeout
	cc.Shards = c.Shards
	cc.Observer = c.Observer
	switch c.Spill {
	case "", "overwrite":
		cc.Spill = core.SpillOverwrite
	case "fifo":
		cc.Spill = core.SpillFIFO
	default:
		return cc, fmt.Errorf("nova: unknown spill policy %q", c.Spill)
	}
	switch c.Fabric {
	case "", "hierarchical":
		cc.Fabric = core.FabricHierarchical
	case "ideal":
		cc.Fabric = core.FabricIdeal
	default:
		return cc, fmt.Errorf("nova: unknown fabric %q", c.Fabric)
	}
	topo, err := network.ParseTopoKind(c.Topology)
	if err != nil {
		return cc, fmt.Errorf("nova: %w", err)
	}
	cc.Topology = topo
	if c.CoalesceWindow < 0 {
		return cc, fmt.Errorf("nova: CoalesceWindow = %d", c.CoalesceWindow)
	}
	cc.CoalesceWindow = sim.Ticks(c.CoalesceWindow)
	cc.CoalesceCapacity = c.CoalesceCapacity
	if c.OutOfCore {
		cc.OutOfCore = true
		switch c.SSDPreset {
		case "", "nvme":
			cc.SSD = mem.NVMeSSDConfig("ssd")
		case "sata":
			cc.SSD = mem.SATASSDConfig("ssd")
		default:
			return cc, fmt.Errorf("nova: unknown SSD preset %q", c.SSDPreset)
		}
		if c.SSDResidentPages > 0 {
			cc.SSDResidentPages = c.SSDResidentPages
		}
	} else if c.SSDPreset != "" || c.SSDResidentPages != 0 {
		return cc, fmt.Errorf("nova: SSD options set without OutOfCore")
	}
	return cc, nil
}

func (c Config) partition(g *graph.CSR, gpns, pesPerGPN int) (*graph.Partition, error) {
	parts := gpns * pesPerGPN
	switch c.Mapping {
	case "", "random":
		return graph.PartitionRandom(g.NumVertices(), parts, c.Seed), nil
	case "interleave":
		return graph.PartitionInterleave(g.NumVertices(), parts), nil
	case "load-balanced":
		return graph.PartitionLoadBalanced(g, parts), nil
	case "locality":
		// Keep communities on one GPN (saving crossbar traffic) while
		// spreading them over its PEs for parallelism.
		return graph.PartitionLocalityHierarchical(g, gpns, pesPerGPN), nil
	default:
		return nil, fmt.Errorf("nova: unknown mapping %q", c.Mapping)
	}
}

// Accelerator runs programs on the simulated NOVA machine. It implements
// program.Runner.
type Accelerator struct {
	cfg Config
}

// New validates the configuration and returns an Accelerator.
func New(cfg Config) (*Accelerator, error) {
	cc, err := cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	if _, err := cfg.partition(graph.FromEdges("probe", 1, nil), cc.GPNs, cc.PEsPerGPN); err != nil {
		return nil, err
	}
	return &Accelerator{cfg: cfg}, nil
}

// Report is the outcome of one accelerator run.
type Report struct {
	// Props holds the final vertex properties.
	Props []program.Prop
	// Stats is the engine-agnostic summary.
	Stats program.RunStats
	// Cycles is the simulated cycle count at 2 GHz.
	Cycles uint64

	// EdgeUtilization is the achieved fraction of edge-memory bandwidth.
	EdgeUtilization float64
	// Vertex-memory bandwidth fractions (Fig. 10 bars).
	VertexUsefulFrac   float64
	VertexWriteFrac    float64
	VertexWastefulFrac float64
	// Time attribution (Fig. 6): overfetch overhead vs processing.
	ProcessingSeconds float64
	OverheadSeconds   float64
	// CacheHitRate of the MPU vertex caches.
	CacheHitRate float64
	// OnChipBytes is the modeled on-chip storage.
	OnChipBytes int64
	// Spills, DirectPushes, SpillWrites, StaleRetrievals and
	// MetadataBytes instrument the Table I spilling trade-offs.
	Spills          uint64
	DirectPushes    uint64
	SpillWrites     uint64
	StaleRetrievals uint64
	MetadataBytes   uint64
	// NetworkBytes and NetworkInterBytes count fabric traffic;
	// NetworkMessagesCoalesced and NetworkBytesSaved instrument the
	// fabric's in-flight coalescing stage, and NetworkAvgHops is the mean
	// inter-GPN links traversed per cross-GPN message.
	NetworkBytes             uint64
	NetworkInterBytes        uint64
	NetworkMessagesCoalesced uint64
	NetworkBytesSaved        uint64
	NetworkAvgHops           float64
	// LoadImbalance is max(per-PE propagations)/mean (1.0 = balanced).
	LoadImbalance float64
	// Out-of-core tier traffic (all zero unless Config.OutOfCore):
	// partition page-in events, their page-rounded volume, and the SSD
	// latency they exposed, in cycles.
	PartitionLoads uint64
	BytesPaged     uint64
	IOStallCycles  uint64
	// Shards is the worker-goroutine count the run executed with;
	// Windows counts conservative synchronization windows, and the two
	// wall-clock fields split host time between in-window execution and
	// barrier synchronization (all zero-window for 1-GPN systems).
	Shards             int
	Windows            uint64
	WindowWallSeconds  float64
	BarrierWallSeconds float64
	// Partial marks a salvaged report: the run stopped early (cancelled,
	// deadline, budget, or watchdog stall) and the stats cover only the
	// work completed before the stop. StopReason names the cause
	// ("cancelled", "deadline", "budget", "stalled").
	Partial    bool
	StopReason string
	// Dump is the full hierarchical statistics dump (per-PE, per-channel,
	// per-link detail); the flat fields above are its root-level records.
	Dump *stats.Dump
}

// GTEPS returns effective throughput: sequential-work edges per second in
// billions (the paper's headline metric), computed against the graph's
// total edge count as a neutral denominator.
func (r *Report) GTEPS(g *graph.CSR) float64 {
	if r.Stats.SimSeconds <= 0 {
		return 0
	}
	return float64(g.NumEdges()) / r.Stats.SimSeconds / 1e9
}

// Run executes p on g and returns a detailed report.
func (a *Accelerator) Run(p program.Program, g *graph.CSR) (*Report, error) {
	return a.RunContext(context.Background(), p, g)
}

// RunContext is Run under a context. Cancellation is observed
// cooperatively (each engine shard polls every few thousand events, the
// cluster at every window barrier), so the simulation stops within one
// poll interval. On a cooperative stop — cancellation, deadline, event
// budget, or watchdog stall — RunContext salvages the statistics so far
// and returns BOTH a Report marked Partial (with its StopReason) and the
// error.
func (a *Accelerator) RunContext(ctx context.Context, p program.Program, g *graph.CSR) (*Report, error) {
	cc, err := a.cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	part, err := a.cfg.partition(g, cc.GPNs, cc.PEsPerGPN)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(cc, g, part)
	if err != nil {
		return nil, err
	}
	res, err := sys.Run(ctx, p)
	if res == nil {
		return nil, err
	}
	return reportFromCore(res), err
}

func avgHops(res *core.Result) float64 {
	if res.Net.InterMessages == 0 {
		return 0
	}
	return float64(res.Net.HopsSum) / float64(res.Net.InterMessages)
}

func reportFromCore(res *core.Result) *Report {
	u, w, waste := res.VertexBWFractions()
	return &Report{
		Props:                    res.Props,
		Stats:                    res.Stats,
		Cycles:                   uint64(res.Ticks),
		EdgeUtilization:          res.EdgeUtilization,
		VertexUsefulFrac:         u,
		VertexWriteFrac:          w,
		VertexWastefulFrac:       waste,
		ProcessingSeconds:        res.ProcessingSeconds,
		OverheadSeconds:          res.OverheadSeconds,
		CacheHitRate:             res.CacheHitRate,
		OnChipBytes:              res.OnChipBytes,
		Spills:                   res.VMU.Spills,
		DirectPushes:             res.VMU.DirectPushes,
		SpillWrites:              res.VMU.SpillWrites,
		StaleRetrievals:          res.VMU.StaleRetrievals,
		MetadataBytes:            res.VMU.MetadataBytes,
		NetworkBytes:             res.Net.Bytes,
		NetworkInterBytes:        res.Net.InterBytes,
		NetworkMessagesCoalesced: res.Net.Coalesced,
		NetworkBytesSaved:        res.Net.BytesSaved,
		NetworkAvgHops:           avgHops(res),
		LoadImbalance:            res.LoadImbalance(),
		PartitionLoads:           res.PartitionLoads,
		BytesPaged:               res.BytesPaged,
		IOStallCycles:            uint64(res.IOStallTicks),
		Shards:                   res.Shards,
		Windows:                  res.Windows,
		WindowWallSeconds:        res.WindowWallSeconds,
		BarrierWallSeconds:       res.BarrierWallSeconds,
		Partial:                  res.Partial,
		StopReason:               string(res.StopReason),
		Dump:                     res.Dump,
	}
}

// RunTraced executes p on g while recording simulator activity (MGU
// propagation spans, VMU prefetch batches, drains, BSP barriers) and
// writes a Chrome trace-event JSON file (chrome://tracing, Perfetto) to w.
func (a *Accelerator) RunTraced(p program.Program, g *graph.CSR, w io.Writer) (*Report, error) {
	cc, err := a.cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	part, err := a.cfg.partition(g, cc.GPNs, cc.PEsPerGPN)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(cc, g, part)
	if err != nil {
		return nil, err
	}
	tr := trace.New(cc.ClockHz)
	sys.SetTracer(tr)
	res, err := sys.Run(context.Background(), p)
	if err != nil {
		return nil, err
	}
	if err := tr.WriteJSON(w); err != nil {
		return nil, fmt.Errorf("nova: writing trace: %w", err)
	}
	return reportFromCore(res), nil
}

// RunProgram implements program.Runner.
func (a *Accelerator) RunProgram(p program.Program, g *graph.CSR) ([]program.Prop, program.RunStats, error) {
	rep, err := a.Run(p, g)
	if err != nil {
		return nil, program.RunStats{}, err
	}
	return rep.Props, rep.Stats, nil
}

// RunProgramContext is RunProgram under a context; on a cooperative stop
// the error carries the stop cause and the partial props/stats are
// returned alongside it.
func (a *Accelerator) RunProgramContext(ctx context.Context, p program.Program, g *graph.CSR) ([]program.Prop, program.RunStats, error) {
	rep, err := a.RunContext(ctx, p, g)
	if rep == nil {
		return nil, program.RunStats{}, err
	}
	return rep.Props, rep.Stats, err
}

var _ program.Runner = (*Accelerator)(nil)

// ctxRunner binds a context to a context-aware program runner so the
// two-phase workloads (program.RunBC takes a plain program.Runner) stay
// cancellable between and within phases.
type ctxRunner struct {
	ctx   context.Context
	inner interface {
		RunProgramContext(ctx context.Context, p program.Program, g *graph.CSR) ([]program.Prop, program.RunStats, error)
	}
}

func (r ctxRunner) RunProgram(p program.Program, g *graph.CSR) ([]program.Prop, program.RunStats, error) {
	return r.inner.RunProgramContext(r.ctx, p, g)
}

// Engine returns the harness view of the accelerator. Each RunWorkload
// call builds a private core.System, so the engine is safe for concurrent
// use by harness.Pool workers.
//
// The metrics bag is derived from the run's stats dump (Report.Dump), so
// its keys are the dump's record paths: the root-level legacy keys
// (cycles, edge_utilization, vertex_useful_frac, vertex_write_frac,
// vertex_wasteful_frac, processing_seconds, overhead_seconds,
// cache_hit_rate, onchip_bytes, spills, direct_pushes, spill_writes,
// stale_retrievals, metadata_bytes, network_bytes, network_inter_bytes,
// load_imbalance — see the Metric* constants) plus hierarchical detail
// (gpn0.pe3.vmu.spills, network.gpn0.p2p_utilization, …). The two-phase
// "bc" workload reports Stats only.
func (a *Accelerator) Engine() harness.Engine { return novaEngine{a} }

type novaEngine struct{ acc *Accelerator }

func (e novaEngine) Name() string { return "nova" }

func (e novaEngine) Fingerprint() string {
	c := e.acc.cfg
	fp := fmt.Sprintf("nova{gpns=%d pes=%d cache=%d sbdim=%d abuf=%d spill=%s fabric=%s topo=%s coalesce=%d/%d mapping=%s seed=%d}",
		c.GPNs, c.PEsPerGPN, c.CacheBytesPerPE, c.SuperblockDim, c.ActiveBufferEntries,
		orDefault(c.Spill, "overwrite"), orDefault(c.Fabric, "hierarchical"),
		orDefault(c.Topology, "crossbar"), c.CoalesceWindow, c.CoalesceCapacity,
		orDefault(c.Mapping, "random"), c.Seed)
	if c.OutOfCore {
		// Appended only when the tier is on, so every pre-existing
		// in-core fingerprint (and its cache entries) stays unchanged.
		fp += fmt.Sprintf("+ooc{ssd=%s resident=%d}", orDefault(c.SSDPreset, "nvme"), c.SSDResidentPages)
	}
	return fp
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func (e novaEngine) RunWorkload(ctx context.Context, w harness.Workload) (*harness.Report, error) {
	prIters := w.PRIters
	if prIters <= 0 {
		prIters = 10
	}
	acc := e.acc
	if w.MaxEvents > 0 {
		cfg := acc.cfg
		cfg.MaxEvents = w.MaxEvents
		acc = &Accelerator{cfg: cfg}
	}
	out := &harness.Report{
		Engine:          e.Name(),
		Fingerprint:     e.Fingerprint(),
		Workload:        w.Name,
		Tier:            w.Tier,
		SequentialEdges: ref.SequentialEdges(w.G, w.Root, w.Name, prIters),
	}
	if w.Name == "bc" {
		gT := w.GT
		if gT == nil {
			gT = w.G.Transpose()
		}
		scores, stats, err := program.RunBC(ctxRunner{ctx, acc}, w.G, gT, w.Root)
		if err != nil {
			reason := sim.ReasonFor(err)
			if reason == "" {
				return nil, err
			}
			out.Scores, out.Stats = scores, stats
			out.Partial, out.StopReason = true, string(reason)
			return out, err
		}
		out.Scores, out.Stats = scores, stats
		return out, nil
	}
	p, err := workloadProgram(w.Name, w.Root, prIters)
	if err != nil {
		return nil, err
	}
	rep, err := acc.RunContext(ctx, p, w.G)
	if rep == nil {
		return nil, err
	}
	out.Props, out.Stats = rep.Props, rep.Stats
	out.Dump = rep.Dump
	out.Metrics = rep.Dump.Bag()
	out.Shards = rep.Shards
	out.WindowWallSeconds = rep.WindowWallSeconds
	out.BarrierWallSeconds = rep.BarrierWallSeconds
	out.Partial = rep.Partial
	out.StopReason = rep.StopReason
	return out, err
}

var _ harness.Engine = novaEngine{}

// SequentialEdges exposes the work-efficiency denominator for a workload
// on a graph (Beamer's metric; see Section II-A).
func SequentialEdges(g *graph.CSR, root graph.VertexID, workload string, prIters int) int64 {
	return ref.SequentialEdges(g, root, workload, prIters)
}

// Verify checks accelerator output against the sequential oracles. It
// returns nil when the distances (BFS/SSSP) or labels (CC) match exactly.
func Verify(workload string, g *graph.CSR, root graph.VertexID, props []program.Prop) error {
	var want []int64
	switch workload {
	case "bfs":
		want = ref.BFS(g, root)
	case "sssp":
		want = ref.SSSP(g, root)
	case "cc":
		want = ref.CC(g)
	default:
		return fmt.Errorf("nova: Verify does not support workload %q", workload)
	}
	if len(props) != len(want) {
		return fmt.Errorf("nova: Verify: got %d properties, want %d", len(props), len(want))
	}
	for v := range want {
		got := int64(props[v])
		if props[v] == program.Inf {
			got = -1
		}
		if got != want[v] {
			return fmt.Errorf("nova: vertex %d: got %d, want %d", v, got, want[v])
		}
	}
	return nil
}
