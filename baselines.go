package nova

import (
	"fmt"

	"nova/graph"
	"nova/internal/ligra"
	"nova/internal/polygraph"
	"nova/program"
)

// PolyGraphBaseline runs programs on the temporal-partitioning baseline
// accelerator model. It implements program.Runner.
type PolyGraphBaseline struct {
	// OnChipBytes is the scratchpad capacity (default 32 MiB; scaled
	// experiments shrink it to keep Table III slice counts).
	OnChipBytes int64
	// MemBandwidth is unified off-chip bandwidth in bytes/second
	// (default 332.8 GB/s, the iso-bandwidth setting).
	MemBandwidth float64
	// ForceSlices overrides the computed slice count when positive.
	ForceSlices int
}

// PolyGraphReport extends the engine-agnostic stats with the temporal-
// partitioning breakdown of Figs. 2 and 6.
type PolyGraphReport struct {
	Props               []program.Prop
	Stats               program.RunStats
	ProcessingSeconds   float64
	SwitchingSeconds    float64
	InefficiencySeconds float64
	SliceCount          int
	Rounds              int
	SlicePasses         int
	EdgeBandwidthShare  float64
}

// GTEPS returns effective throughput against the graph's edge count.
func (r *PolyGraphReport) GTEPS(g *graph.CSR) float64 {
	if r.Stats.SimSeconds <= 0 {
		return 0
	}
	return float64(g.NumEdges()) / r.Stats.SimSeconds / 1e9
}

func (b *PolyGraphBaseline) config() polygraph.Config {
	cfg := polygraph.DefaultConfig()
	if b.OnChipBytes > 0 {
		cfg.OnChipBytes = b.OnChipBytes
	}
	if b.MemBandwidth > 0 {
		cfg.MemBandwidth = b.MemBandwidth
	}
	cfg.ForceSlices = b.ForceSlices
	return cfg
}

// Run executes p on g under the PolyGraph model.
func (b *PolyGraphBaseline) Run(p program.Program, g *graph.CSR) (*PolyGraphReport, error) {
	res, err := polygraph.Run(b.config(), g, p)
	if err != nil {
		return nil, err
	}
	return &PolyGraphReport{
		Props:               res.Props,
		Stats:               res.Stats,
		ProcessingSeconds:   res.ProcessingSeconds,
		SwitchingSeconds:    res.SwitchingSeconds,
		InefficiencySeconds: res.InefficiencySeconds,
		SliceCount:          res.SliceCount,
		Rounds:              res.Rounds,
		SlicePasses:         res.SlicePasses,
		EdgeBandwidthShare:  res.EdgeBandwidthShare,
	}, nil
}

// RunProgram implements program.Runner.
func (b *PolyGraphBaseline) RunProgram(p program.Program, g *graph.CSR) ([]program.Prop, program.RunStats, error) {
	rep, err := b.Run(p, g)
	if err != nil {
		return nil, program.RunStats{}, err
	}
	return rep.Props, rep.Stats, nil
}

var _ program.Runner = (*PolyGraphBaseline)(nil)

// Software runs the Ligra-style shared-memory framework on the host and
// reports wall-clock performance — the paper's software reference point.
type Software struct {
	// Threads bounds worker goroutines (0 = all cores).
	Threads int
}

// SoftwareReport is the outcome of one software run.
type SoftwareReport struct {
	// Seconds is wall-clock time; EdgesTraversed counts update attempts.
	Seconds        float64
	EdgesTraversed int64
	Iterations     int
	// Dists/Labels/Scores hold workload-specific outputs (one non-nil).
	Dists  []int64
	Ranks  []float64
	Scores []float64
}

// GTEPS returns traversed giga-edges per second.
func (r *SoftwareReport) GTEPS() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.EdgesTraversed) / r.Seconds / 1e9
}

func (s *Software) engine() *ligra.Engine {
	e := ligra.NewEngine()
	if s.Threads > 0 {
		e.Threads = s.Threads
	}
	return e
}

// RunWorkload executes one of the five paper workloads by name ("bfs",
// "sssp", "cc", "pr", "bc"). gT (the transpose) is required for bfs, pr
// and bc; prIters configures PageRank.
func (s *Software) RunWorkload(name string, g, gT *graph.CSR, root graph.VertexID, prIters int) (*SoftwareReport, error) {
	e := s.engine()
	switch name {
	case "bfs":
		d, r := e.BFS(g, gT, root)
		return &SoftwareReport{Seconds: r.Seconds, EdgesTraversed: r.EdgesTraversed, Iterations: r.Iterations, Dists: d}, nil
	case "sssp":
		d, r := e.SSSP(g, nil, root)
		return &SoftwareReport{Seconds: r.Seconds, EdgesTraversed: r.EdgesTraversed, Iterations: r.Iterations, Dists: d}, nil
	case "cc":
		d, r := e.CC(g)
		return &SoftwareReport{Seconds: r.Seconds, EdgesTraversed: r.EdgesTraversed, Iterations: r.Iterations, Dists: d}, nil
	case "pr":
		if prIters <= 0 {
			prIters = 10
		}
		ranks, r := e.PR(g, gT, 0.85, prIters)
		return &SoftwareReport{Seconds: r.Seconds, EdgesTraversed: r.EdgesTraversed, Iterations: r.Iterations, Ranks: ranks}, nil
	case "bc":
		sc, r := e.BC(g, gT, root)
		return &SoftwareReport{Seconds: r.Seconds, EdgesTraversed: r.EdgesTraversed, Iterations: r.Iterations, Scores: sc}, nil
	default:
		return nil, fmt.Errorf("nova: unknown workload %q", name)
	}
}
