package nova

import (
	"context"
	"fmt"

	"nova/graph"
	"nova/internal/harness"
	"nova/internal/ligra"
	"nova/internal/polygraph"
	"nova/internal/ref"
	"nova/internal/sim"
	"nova/internal/stats"
	"nova/program"
)

// PolyGraphBaseline runs programs on the temporal-partitioning baseline
// accelerator model. It implements program.Runner.
type PolyGraphBaseline struct {
	// OnChipBytes is the scratchpad capacity (default 32 MiB; scaled
	// experiments shrink it to keep Table III slice counts).
	OnChipBytes int64
	// MemBandwidth is unified off-chip bandwidth in bytes/second
	// (default 332.8 GB/s, the iso-bandwidth setting).
	MemBandwidth float64
	// ForceSlices overrides the computed slice count when positive.
	ForceSlices int
}

// PolyGraphReport extends the engine-agnostic stats with the temporal-
// partitioning breakdown of Figs. 2 and 6.
type PolyGraphReport struct {
	Props               []program.Prop
	Stats               program.RunStats
	ProcessingSeconds   float64
	SwitchingSeconds    float64
	InefficiencySeconds float64
	SliceCount          int
	Rounds              int
	SlicePasses         int
	EdgeBandwidthShare  float64
	// Dump is the full hierarchical statistics dump (per-slice schedule,
	// traffic split); the flat fields above are its root-level records.
	Dump *stats.Dump
	// Partial marks a salvaged report from a run that stopped early;
	// StopReason classifies why ("cancelled", "deadline", "budget").
	Partial    bool
	StopReason string
}

// GTEPS returns effective throughput against the graph's edge count.
func (r *PolyGraphReport) GTEPS(g *graph.CSR) float64 {
	if r.Stats.SimSeconds <= 0 {
		return 0
	}
	return float64(g.NumEdges()) / r.Stats.SimSeconds / 1e9
}

func (b *PolyGraphBaseline) config() polygraph.Config {
	cfg := polygraph.DefaultConfig()
	if b.OnChipBytes > 0 {
		cfg.OnChipBytes = b.OnChipBytes
	}
	if b.MemBandwidth > 0 {
		cfg.MemBandwidth = b.MemBandwidth
	}
	cfg.ForceSlices = b.ForceSlices
	return cfg
}

// Run executes p on g under the PolyGraph model.
func (b *PolyGraphBaseline) Run(p program.Program, g *graph.CSR) (*PolyGraphReport, error) {
	return b.RunContext(context.Background(), p, g)
}

// RunContext executes p on g, polling ctx cooperatively between rounds
// and slice activations. On a cooperative stop (cancellation, deadline,
// round-budget exhaustion) it returns BOTH a partial report (Partial set,
// with its StopReason) and the error.
func (b *PolyGraphBaseline) RunContext(ctx context.Context, p program.Program, g *graph.CSR) (*PolyGraphReport, error) {
	res, err := polygraph.Run(ctx, b.config(), g, p)
	if res == nil {
		return nil, err
	}
	return &PolyGraphReport{
		Props:               res.Props,
		Stats:               res.Stats,
		ProcessingSeconds:   res.ProcessingSeconds,
		SwitchingSeconds:    res.SwitchingSeconds,
		InefficiencySeconds: res.InefficiencySeconds,
		SliceCount:          res.SliceCount,
		Rounds:              res.Rounds,
		SlicePasses:         res.SlicePasses,
		EdgeBandwidthShare:  res.EdgeBandwidthShare,
		Dump:                res.Dump,
		Partial:             res.Partial,
		StopReason:          string(res.StopReason),
	}, err
}

// RunProgram implements program.Runner.
func (b *PolyGraphBaseline) RunProgram(p program.Program, g *graph.CSR) ([]program.Prop, program.RunStats, error) {
	rep, err := b.Run(p, g)
	if err != nil {
		return nil, program.RunStats{}, err
	}
	return rep.Props, rep.Stats, nil
}

// RunProgramContext is RunProgram with cooperative cancellation; on a
// cooperative stop the partial props and stats come back alongside the
// error so multi-phase drivers can salvage what completed.
func (b *PolyGraphBaseline) RunProgramContext(ctx context.Context, p program.Program, g *graph.CSR) ([]program.Prop, program.RunStats, error) {
	rep, err := b.RunContext(ctx, p, g)
	if rep == nil {
		return nil, program.RunStats{}, err
	}
	return rep.Props, rep.Stats, err
}

var _ program.Runner = (*PolyGraphBaseline)(nil)

// Engine returns the harness view of the PolyGraph baseline. Each
// RunWorkload call owns a private simulation, so the engine is safe for
// concurrent use by harness.Pool workers.
//
// The metrics bag is derived from the run's stats dump (the
// PolyGraphReport.Dump tree): root-level legacy keys processing_seconds,
// switching_seconds, inefficiency_seconds, slice_count, rounds,
// slice_passes, edge_bw_share plus traffic counters and per-slice detail
// (slice0.passes, …). The two-phase "bc" workload reports Stats only.
func (b *PolyGraphBaseline) Engine() harness.Engine { return pgEngine{b} }

type pgEngine struct{ b *PolyGraphBaseline }

func (e pgEngine) Name() string { return "polygraph" }

func (e pgEngine) Fingerprint() string {
	cfg := e.b.config()
	return fmt.Sprintf("polygraph{onchip=%d bw=%.1f forceslices=%d}",
		cfg.OnChipBytes, cfg.MemBandwidth, cfg.ForceSlices)
}

func (e pgEngine) RunWorkload(ctx context.Context, w harness.Workload) (*harness.Report, error) {
	if w.Name == SpillStressWorkload {
		// PolyGraph can execute the program, but an always-active delta
		// workload defeats temporal slicing — every slice pass touches
		// every vertex — so runs take hours at scales NOVA finishes in
		// minutes. The workload exists to stress NOVA's VMU; keep it there.
		return nil, fmt.Errorf("nova: %q is the NOVA spill-stress workload; run it on the nova engine", w.Name)
	}
	prIters := w.PRIters
	if prIters <= 0 {
		prIters = 10
	}
	out := &harness.Report{
		Engine:          e.Name(),
		Fingerprint:     e.Fingerprint(),
		Workload:        w.Name,
		Tier:            w.Tier,
		SequentialEdges: ref.SequentialEdges(w.G, w.Root, w.Name, prIters),
	}
	if w.Name == "bc" {
		gT := w.GT
		if gT == nil {
			gT = w.G.Transpose()
		}
		scores, stats, err := program.RunBC(ctxRunner{ctx, e.b}, w.G, gT, w.Root)
		if err != nil {
			reason := sim.ReasonFor(err)
			if reason == "" {
				return nil, err
			}
			out.Scores, out.Stats = scores, stats
			out.Partial, out.StopReason = true, string(reason)
			return out, err
		}
		out.Scores, out.Stats = scores, stats
		return out, nil
	}
	p, err := workloadProgram(w.Name, w.Root, prIters)
	if err != nil {
		return nil, err
	}
	rep, err := e.b.RunContext(ctx, p, w.G)
	if rep == nil {
		return nil, err
	}
	out.Props, out.Stats = rep.Props, rep.Stats
	out.Dump = rep.Dump
	out.Metrics = rep.Dump.Bag()
	out.Partial, out.StopReason = rep.Partial, rep.StopReason
	return out, err
}

var _ harness.Engine = pgEngine{}

// Software runs the Ligra-style shared-memory framework on the host and
// reports wall-clock performance — the paper's software reference point.
type Software struct {
	// Threads bounds worker goroutines (0 = all cores).
	Threads int
}

// SoftwareReport is the outcome of one software run.
type SoftwareReport struct {
	// Seconds is wall-clock time; EdgesTraversed counts update attempts.
	Seconds        float64
	EdgesTraversed int64
	Iterations     int
	// Dists/Labels/Scores hold workload-specific outputs (one non-nil).
	Dists  []int64
	Ranks  []float64
	Scores []float64
	// Dump is the statistics dump (wall-clock and traversal counts are
	// marked volatile, so dump diffs skip them by default).
	Dump *stats.Dump
	// Partial marks a salvaged report: the kernel stopped between edgeMap
	// iterations because its context was cancelled. StopReason classifies
	// why ("cancelled", "deadline").
	Partial    bool
	StopReason string
}

// GTEPS returns traversed giga-edges per second.
func (r *SoftwareReport) GTEPS() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.EdgesTraversed) / r.Seconds / 1e9
}

func (s *Software) engine() *ligra.Engine {
	e := ligra.NewEngine()
	if s.Threads > 0 {
		e.Threads = s.Threads
	}
	return e
}

// RunWorkload executes one of the five paper workloads by name ("bfs",
// "sssp", "cc", "pr", "bc"). gT (the transpose) is required for bfs, pr
// and bc; prIters configures PageRank.
func (s *Software) RunWorkload(name string, g, gT *graph.CSR, root graph.VertexID, prIters int) (*SoftwareReport, error) {
	return s.RunWorkloadContext(context.Background(), name, g, gT, root, prIters)
}

// RunWorkloadContext is RunWorkload with cooperative cancellation: the
// kernel checks ctx between edgeMap iterations and, when cancelled,
// returns the partial report (Partial set) alongside the context error.
func (s *Software) RunWorkloadContext(ctx context.Context, name string, g, gT *graph.CSR, root graph.VertexID, prIters int) (*SoftwareReport, error) {
	e := s.engine()
	intr := sim.NewInterrupt()
	e.Interrupt = intr
	stop := sim.WatchContext(ctx, intr)
	defer stop()
	var rep *SoftwareReport
	var res ligra.Result
	switch name {
	case "bfs":
		d, r := e.BFS(g, gT, root)
		rep, res = &SoftwareReport{Dists: d}, r
	case "sssp":
		d, r := e.SSSP(g, nil, root)
		rep, res = &SoftwareReport{Dists: d}, r
	case "cc":
		d, r := e.CC(g)
		rep, res = &SoftwareReport{Dists: d}, r
	case "pr":
		if prIters <= 0 {
			prIters = 10
		}
		ranks, r := e.PR(g, gT, 0.85, prIters)
		rep, res = &SoftwareReport{Ranks: ranks}, r
	case "bc":
		sc, r := e.BC(g, gT, root)
		rep, res = &SoftwareReport{Scores: sc}, r
	case SpillStressWorkload:
		// The software baseline implements the five paper workloads as
		// dedicated kernels; there is no generic asynchronous executor to
		// run delta PageRank on.
		return nil, fmt.Errorf("nova: %q is the NOVA spill-stress workload; run it on the nova engine", name)
	default:
		return nil, fmt.Errorf("nova: unknown workload %q", name)
	}
	rep.Seconds, rep.EdgesTraversed, rep.Iterations = res.Seconds, res.EdgesTraversed, res.Iterations
	rep.Dump = e.StatsDump(res, map[string]string{
		"engine":   "ligra",
		"workload": name,
		"graph":    g.Name,
	})
	if err := intr.Err(); err != nil {
		rep.Partial = true
		rep.StopReason = string(sim.ReasonFor(err))
		return rep, err
	}
	return rep, nil
}

// Engine returns the harness view of the software framework. Stats report
// wall-clock seconds (the software reference point measures real time, so
// unlike the simulated engines its timings vary run to run and tighten
// when cells share cores).
//
// The metrics bag is derived from the run's stats dump: legacy keys
// iterations and wall_seconds plus edges_traversed, the push/pull
// direction profile and frontier-size distribution. Distance outputs
// (bfs/sssp/cc) convert to Props with -1 mapping to program.Inf;
// PageRank ranks and BC scores land in Scores.
func (s *Software) Engine() harness.Engine { return ligraEngine{s} }

type ligraEngine struct{ s *Software }

func (e ligraEngine) Name() string { return "ligra" }

func (e ligraEngine) Fingerprint() string {
	return fmt.Sprintf("ligra{threads=%d}", e.s.Threads)
}

func (e ligraEngine) RunWorkload(ctx context.Context, w harness.Workload) (*harness.Report, error) {
	prIters := w.PRIters
	if prIters <= 0 {
		prIters = 10
	}
	gT := w.GT
	if gT == nil {
		gT = w.G.Transpose()
	}
	rep, err := e.s.RunWorkloadContext(ctx, w.Name, w.G, gT, w.Root, prIters)
	if rep == nil {
		return nil, err
	}
	out := &harness.Report{
		Engine:          e.Name(),
		Fingerprint:     e.Fingerprint(),
		Workload:        w.Name,
		Tier:            w.Tier,
		SequentialEdges: ref.SequentialEdges(w.G, w.Root, w.Name, prIters),
		Stats: program.RunStats{
			SimSeconds:     rep.Seconds,
			EdgesTraversed: rep.EdgesTraversed,
		},
		Metrics: rep.Dump.Bag(),
		Dump:    rep.Dump,
	}
	if rep.Dists != nil {
		out.Props = make([]program.Prop, len(rep.Dists))
		for i, d := range rep.Dists {
			if d < 0 {
				out.Props[i] = program.Inf
			} else {
				out.Props[i] = program.Prop(d)
			}
		}
	}
	switch {
	case rep.Ranks != nil:
		out.Scores = rep.Ranks
	case rep.Scores != nil:
		out.Scores = rep.Scores
	}
	out.Partial, out.StopReason = rep.Partial, rep.StopReason
	return out, err
}

var _ harness.Engine = ligraEngine{}
