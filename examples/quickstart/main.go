// Quickstart: build a graph, run BFS on a simulated single-GPN NOVA
// accelerator, verify the result, and print throughput.
package main

import (
	"fmt"
	"log"

	"nova"
	"nova/graph"
	"nova/program"
)

func main() {
	// A Twitter-like power-law graph: 2^14 vertices, average degree 16.
	g := graph.GenRMAT("social", 14, 16, graph.DefaultRMAT, 1, 42)
	root := g.LargestOutDegreeVertex()
	fmt.Printf("graph: %v, BFS root %d\n", g, root)

	// A single graph processing node with Table II's organization:
	// 8 PEs, one HBM2 vertex channel each, four shared DDR4 edge
	// channels, the superblock tracker and an 80-entry active buffer.
	acc, err := nova.New(nova.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	rep, err := acc.Run(program.NewBFS(root), g)
	if err != nil {
		log.Fatal(err)
	}
	if err := nova.Verify("bfs", g, root, rep.Props); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %.3f ms (%d cycles at 2 GHz)\n",
		rep.Stats.SimSeconds*1e3, rep.Cycles)
	fmt.Printf("throughput: %.2f GTEPS, edge-memory utilization %.0f%%\n",
		rep.GTEPS(g), 100*rep.EdgeUtilization)
	fmt.Printf("messages: %d sent, %.0f%% coalesced before propagation\n",
		rep.Stats.MessagesSent,
		100*float64(rep.Stats.MessagesCoalesced)/float64(rep.Stats.MessagesSent))
	fmt.Println("BFS result verified against the sequential oracle")
}
