// Scaleout demonstrates the paper's Section IV claim: because each vertex
// lives on exactly one PE and GPNs never touch each other's memory, NOVA
// scales by adding GPNs — strong scaling on a fixed graph, and weak
// scaling where the graph doubles with the machine.
package main

import (
	"fmt"
	"log"

	"nova"
	"nova/graph"
)

func main() {
	fmt.Println("strong scaling: fixed graph, growing machine (BFS)")
	g := graph.GenRMAT("fixed", 15, 16, graph.DefaultRMAT, 1, 3)
	root := g.LargestOutDegreeVertex()
	fmt.Printf("graph: %v\n", g)
	var base float64
	for _, gpns := range []int{1, 2, 4, 8} {
		secs := runBFS(g, root, gpns)
		if gpns == 1 {
			base = secs
		}
		fmt.Printf("  %d GPNs (%2d PEs): %8.3f ms  speedup %.2fx (ideal %d.00x)\n",
			gpns, gpns*8, secs*1e3, base/secs, gpns)
	}

	fmt.Println("\nweak scaling: graph doubles with the machine (BFS, RMAT series)")
	for i, gpns := range []int{1, 2, 4, 8} {
		scale := 13 + i
		wg := graph.GenRMAT(fmt.Sprintf("rmat%d", scale), scale, 16, graph.DefaultRMAT, 1, int64(scale))
		secs := runBFS(wg, wg.LargestOutDegreeVertex(), gpns)
		if i == 0 {
			base = secs
		}
		fmt.Printf("  %d GPNs on %8d edges: %8.3f ms  (vs 1-GPN baseline %.2fx; ideal 1.00x)\n",
			gpns, wg.NumEdges(), secs*1e3, secs/base)
	}
	fmt.Println("\nideal weak scaling keeps time constant; the paper reports no degradation")
}

func runBFS(g *graph.CSR, root graph.VertexID, gpns int) float64 {
	cfg := nova.DefaultConfig()
	cfg.GPNs = gpns
	cfg.CacheBytesPerPE = 1 << 10
	acc, err := nova.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	out, err := nova.RunWorkload(acc, "bfs", g, nil, root, 0)
	if err != nil {
		log.Fatal(err)
	}
	return out.Stats.SimSeconds
}
