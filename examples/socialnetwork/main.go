// Socialnetwork compares the three engines of the paper's Fig. 4 — the
// NOVA accelerator, the PolyGraph temporal-partitioning baseline, and the
// Ligra-style software framework — on a Twitter-like power-law graph,
// running BFS (asynchronous) and PageRank (bulk-synchronous).
//
// This is the paper's motivating scenario: the graph's 4 B-per-vertex
// working set no longer fits PolyGraph's scratchpad, so PolyGraph slices
// it temporally while NOVA spills active vertices to DRAM instead.
package main

import (
	"fmt"
	"log"

	"nova"
	"nova/graph"
)

func main() {
	g := graph.GenRMATN("twitter-like", 40_000, 35, graph.DefaultRMAT, 64, 12)
	gT := g.Transpose()
	root := g.LargestOutDegreeVertex()
	fmt.Printf("graph: %v\n\n", g)

	acc, err := nova.New(novaCfg())
	if err != nil {
		log.Fatal(err)
	}
	// Iso-bandwidth baseline: 332.8 GB/s unified, scratchpad sized so
	// this graph needs ~5 temporal slices, as in the paper's Table III.
	pg := &nova.PolyGraphBaseline{OnChipBytes: 4 * 40_000 / 5}
	sw := &nova.Software{}

	fmt.Printf("%-10s %-6s %14s %14s %12s\n", "engine", "wkld", "time(ms)", "work-eff", "eff-GTEPS")
	for _, w := range []string{"bfs", "pr"} {
		novaOut, err := nova.RunWorkload(acc, w, g, gT, root, 10)
		if err != nil {
			log.Fatal(err)
		}
		pgOut, err := nova.RunWorkload(pg, w, g, gT, root, 10)
		if err != nil {
			log.Fatal(err)
		}
		swRep, err := sw.RunWorkload(w, g, gT, root, 10)
		if err != nil {
			log.Fatal(err)
		}
		row(novaOut, "nova", w)
		row(pgOut, "polygraph", w)
		fmt.Printf("%-10s %-6s %14.3f %14s %12s\n", "ligra", w, swRep.Seconds*1e3, "-", fmt.Sprintf("%.3f*", swRep.GTEPS()))
		fmt.Printf("  -> NOVA vs PolyGraph speedup: %.2fx\n\n",
			pgOut.Stats.SimSeconds/novaOut.Stats.SimSeconds)
	}
	fmt.Println("* ligra reports wall-clock raw GTEPS on this host, not simulated time")
}

func row(out *nova.Outcome, engine, w string) {
	fmt.Printf("%-10s %-6s %14.3f %14.3f %12.3f\n",
		engine, w, out.Stats.SimSeconds*1e3, out.WorkEfficiency(), out.EffectiveGTEPS())
}

func novaCfg() nova.Config {
	cfg := nova.DefaultConfig()
	// Scale the MPU cache with the scaled graph so it stays far smaller
	// than the vertex set, as in the paper.
	cfg.CacheBytesPerPE = 2 << 10
	return cfg
}
