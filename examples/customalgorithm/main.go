// Customalgorithm shows how to express a new workload in NOVA's
// reduce/propagate programming model and run it unchanged on the
// simulated accelerator, the PolyGraph baseline and the functional
// executor.
//
// The algorithm is single-source widest path (maximum-bottleneck path):
// the "width" of a path is its minimum edge weight, and each vertex wants
// the widest path from the source. It is monotone under max-of-min, so it
// runs asynchronously exactly like SSSP runs under min-of-plus.
package main

import (
	"fmt"
	"log"

	"nova"
	"nova/graph"
	"nova/program"
)

// widest implements program.Program.
type widest struct {
	root graph.VertexID
}

func (widest) Name() string       { return "widest-path" }
func (widest) Mode() program.Mode { return program.Async }

// InitProp: the source has infinite width; everyone else none.
func (w widest) InitProp(v graph.VertexID, g *graph.CSR) program.Prop {
	if v == w.root {
		return program.Prop(^uint64(0)) // +inf width
	}
	return 0
}

func (w widest) InitActive(g *graph.CSR) []graph.VertexID {
	return []graph.VertexID{w.root}
}

// Reduce keeps the widest offer.
func (widest) Reduce(_ graph.VertexID, cur, delta program.Prop) program.Prop {
	if delta > cur {
		return delta
	}
	return cur
}

// Propagate narrows the path width by the edge's weight.
func (widest) Propagate(prop program.Prop, weight uint32, _ int64) (program.Prop, bool) {
	if prop == 0 {
		return 0, false
	}
	wp := program.Prop(weight)
	if wp < prop {
		return wp, true
	}
	return prop, true
}

func main() {
	g := graph.GenRMATN("net", 20_000, 16, graph.DefaultRMAT, 100, 5)
	root := g.LargestOutDegreeVertex()
	prog := widest{root}

	// Reference semantics from the functional executor.
	want, _ := program.Exec(prog, g)

	// The same program on the simulated NOVA accelerator...
	cfg := nova.DefaultConfig()
	cfg.CacheBytesPerPE = 1 << 10
	acc, err := nova.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := acc.Run(prog, g)
	if err != nil {
		log.Fatal(err)
	}
	mismatches := 0
	for v := range want {
		if rep.Props[v] != want[v] {
			mismatches++
		}
	}
	fmt.Printf("NOVA:      %.3f ms simulated, %d edges traversed, %d mismatches vs executor\n",
		rep.Stats.SimSeconds*1e3, rep.Stats.EdgesTraversed, mismatches)

	// ...and on the PolyGraph baseline.
	pg := &nova.PolyGraphBaseline{ForceSlices: 4}
	pgRep, err := pg.Run(prog, g)
	if err != nil {
		log.Fatal(err)
	}
	for v := range want {
		if pgRep.Props[v] != want[v] {
			log.Fatalf("polygraph disagrees at vertex %d", v)
		}
	}
	fmt.Printf("PolyGraph: %.3f ms simulated, %d edges traversed, slices=%d\n",
		pgRep.Stats.SimSeconds*1e3, pgRep.Stats.EdgesTraversed, pgRep.SliceCount)

	// Widest path from the hub to a few sample vertices.
	fmt.Println("\nsample widest-path widths from the hub:")
	shown := 0
	for v := 0; v < g.NumVertices() && shown < 5; v++ {
		if want[v] > 0 && graph.VertexID(v) != root && want[v] != program.Prop(^uint64(0)) {
			fmt.Printf("  vertex %6d: width %d\n", v, want[v])
			shown++
		}
	}
	if mismatches == 0 {
		fmt.Println("\ncustom program verified: accelerator == functional executor")
	}
}
