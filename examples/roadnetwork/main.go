// Roadnetwork runs weighted shortest paths on a high-diameter road-like
// grid and shows the vertex management unit's behaviour on sparse
// frontiers: active vertices are spread thinly across memory, so the
// tracker's superblock-granularity recovery reads many inactive blocks —
// the wasteful-bandwidth effect of the paper's Fig. 10 — and the tracker
// size (superblock dimension) trades on-chip capacity against that waste.
package main

import (
	"fmt"
	"log"

	"nova"
	"nova/graph"
	"nova/program"
)

func main() {
	// RoadUSA stand-in: a 2D grid with 39% of edges removed gives the
	// high diameter and ~2.4 average degree of road networks.
	g := graph.GenGrid("road", 180, 140, 0.39, 64, 11)
	root := g.LargestOutDegreeVertex()
	fmt.Printf("graph: %v (high diameter, sparse frontiers)\n\n", g)

	fmt.Printf("%-8s %10s %10s %10s %10s %10s\n",
		"sb-dim", "tracker", "time(ms)", "useful", "write", "wasteful")
	for _, dim := range []int{32, 64, 128, 256} {
		cfg := nova.DefaultConfig()
		cfg.CacheBytesPerPE = 1 << 10
		cfg.SuperblockDim = dim
		acc, err := nova.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := acc.Run(program.NewSSSP(root), g)
		if err != nil {
			log.Fatal(err)
		}
		if err := nova.Verify("sssp", g, root, rep.Props); err != nil {
			log.Fatal(err)
		}
		// Tracker capacity per Eq. 1/2 for one PE's share.
		fmt.Printf("%-8d %9db %10.3f %9.1f%% %9.1f%% %9.1f%%\n",
			dim, rep.OnChipBytes,
			rep.Stats.SimSeconds*1e3,
			100*rep.VertexUsefulFrac, 100*rep.VertexWriteFrac, 100*rep.VertexWastefulFrac)
	}
	fmt.Println("\nSSSP distances verified against Dijkstra at every tracker size.")
	fmt.Println("Larger superblocks shrink the tracker but cannot pinpoint sparse")
	fmt.Println("active vertices, so recovery reads more inactive blocks (wasteful).")
}
