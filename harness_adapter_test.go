package nova_test

import (
	"context"

	"strings"
	"testing"

	"nova"
	"nova/internal/harness"
	"nova/program"
)

// TestVerifyShortPropsReturnsError is the regression test for the
// Verify length guard: a short (or long) props slice must produce an
// error, not an index-out-of-range panic.
func TestVerifyShortPropsReturnsError(t *testing.T) {
	g := testGraph()
	root := g.LargestOutDegreeVertex()
	short := make([]program.Prop, g.NumVertices()/2)
	if err := nova.Verify("bfs", g, root, short); err == nil {
		t.Fatal("short props slice accepted")
	} else if !strings.Contains(err.Error(), "properties") {
		t.Fatalf("unexpected error: %v", err)
	}
	long := make([]program.Prop, g.NumVertices()+1)
	if err := nova.Verify("bfs", g, root, long); err == nil {
		t.Fatal("long props slice accepted")
	}
	if err := nova.Verify("bfs", g, root, nil); err == nil {
		t.Fatal("nil props slice accepted")
	}
}

// TestEngineAdapters runs one workload through each harness adapter and
// checks names, fingerprints, stats, and the backend metrics bags.
func TestEngineAdapters(t *testing.T) {
	g := testGraph()
	root := g.LargestOutDegreeVertex()
	w := harness.Workload{Name: "bfs", G: g, Root: root}

	acc, err := nova.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	pg := &nova.PolyGraphBaseline{OnChipBytes: 1 << 12}
	sw := &nova.Software{Threads: 2}
	em := &nova.ExternalMemory{RAMBytes: 4 << 10, PartitionEdges: 64}

	engines := []harness.Engine{acc.Engine(), pg.Engine(), sw.Engine(), em.Engine()}
	names := []string{"nova", "polygraph", "ligra", "extmem"}
	metricKeys := []string{"cache_hit_rate", "slice_count", "iterations", "partition_loads"}
	for i, eng := range engines {
		if eng.Name() != names[i] {
			t.Fatalf("engine %d name = %q, want %q", i, eng.Name(), names[i])
		}
		if fp := eng.Fingerprint(); !strings.HasPrefix(fp, names[i]+"{") {
			t.Fatalf("%s fingerprint %q lacks the engine prefix", names[i], fp)
		}
		rep, err := eng.RunWorkload(context.Background(), w)
		if err != nil {
			t.Fatalf("%s: %v", names[i], err)
		}
		if rep.Engine != names[i] || rep.Workload != "bfs" {
			t.Fatalf("%s report mislabeled: %+v", names[i], rep)
		}
		if rep.Stats.SimSeconds <= 0 || rep.Stats.EdgesTraversed <= 0 {
			t.Fatalf("%s: empty stats %+v", names[i], rep.Stats)
		}
		if rep.SequentialEdges <= 0 {
			t.Fatalf("%s: no work-efficiency denominator", names[i])
		}
		if rep.EffectiveGTEPS() <= 0 {
			t.Fatalf("%s: no throughput", names[i])
		}
		if _, ok := rep.Metrics[metricKeys[i]]; !ok {
			t.Fatalf("%s: metrics bag missing %q: %v", names[i], metricKeys[i], rep.Metrics)
		}
		// All three backends compute correct BFS distances; the ligra
		// adapter converts -1 sentinels to program.Inf on the way.
		if err := nova.Verify("bfs", g, root, rep.Props); err != nil {
			t.Fatalf("%s: %v", names[i], err)
		}
	}
}

// TestEngineAdapterMatchesDirectRun pins the adapter to the native API:
// same config, same workload, same simulated time and traversal counts.
func TestEngineAdapterMatchesDirectRun(t *testing.T) {
	g := testGraph()
	root := g.LargestOutDegreeVertex()
	acc, err := nova.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := acc.Run(program.NewBFS(root), g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acc.Engine().RunWorkload(context.Background(), harness.Workload{Name: "bfs", G: g, Root: root})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats != direct.Stats {
		t.Fatalf("adapter stats %+v != direct stats %+v", rep.Stats, direct.Stats)
	}
	if rep.Metric("cycles") != float64(direct.Cycles) {
		t.Fatalf("adapter cycles %v != direct %d", rep.Metric("cycles"), direct.Cycles)
	}
}

// TestEngineAdapterBC exercises the two-phase workload path, which
// reports stats without a backend metrics bag.
func TestEngineAdapterBC(t *testing.T) {
	g := testGraph()
	root := g.LargestOutDegreeVertex()
	acc, err := nova.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acc.Engine().RunWorkload(context.Background(), harness.Workload{Name: "bc", G: g, Root: root})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scores == nil || rep.Stats.SimSeconds <= 0 {
		t.Fatalf("bc adapter run incomplete: %+v", rep)
	}
	if _, err := acc.Engine().RunWorkload(context.Background(), harness.Workload{Name: "nope", G: g, Root: root}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
