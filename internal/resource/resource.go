// Package resource implements the paper's analytic models: the tracker
// capacity equations (Eq. 1 and Eq. 2 in Section III-D), the terascale
// resource-scaling comparison of Table IV (Section VI-E), and the FPGA
// resource composition of Table V (Section VI-F).
//
// These are arithmetic models in the paper as well — no simulation is
// involved — so this package reproduces the computations directly and the
// experiment harness prints paper-vs-computed rows.
package resource

import "math"

// KiB/MiB/GiB/TiB in bytes.
const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
	TiB = int64(1) << 40
)

// TrackerBits implements Equations 1 and 2:
//
//	num_superblocks = vertex_mem_capacity / (superblock_dim × block_size)
//	cap_bits       = (log2(superblock_dim) + 1) × num_superblocks
func TrackerBits(vertexMemBytes int64, superblockDim, blockBytes int) int64 {
	sbBytes := int64(superblockDim) * int64(blockBytes)
	numSB := (vertexMemBytes + sbBytes - 1) / sbBytes
	bits := int64(math.Log2(float64(superblockDim))) + 1
	return bits * numSB
}

// VertexBitVectorBits returns the naive per-vertex bit-vector capacity the
// paper compares against (~440 MiB for WDC12).
func VertexBitVectorBits(numVertices int64) int64 { return numVertices }

// BlockBitVectorBits returns the per-block bit-vector capacity
// (~220 MiB for WDC12 with 32 B blocks and 16 B vertices).
func BlockBitVectorBits(vertexMemBytes int64, blockBytes int) int64 {
	return (vertexMemBytes + int64(blockBytes) - 1) / int64(blockBytes)
}

// GraphSpec sizes a target graph for the scaling model.
type GraphSpec struct {
	Name        string
	Vertices    int64
	Edges       int64
	VertexBytes int64
	EdgeBytes   int64
}

// WDC12 is the paper's terascale target: 3.5 B pages, 128 B hyperlinks
// (53 GiB of vertices, 959 GiB of edges at 16 B + 8 B records).
func WDC12() GraphSpec {
	return GraphSpec{
		Name:        "WDC12",
		Vertices:    3_500_000_000,
		Edges:       128_000_000_000,
		VertexBytes: 16,
		EdgeBytes:   8,
	}
}

// VertexCapacity returns the vertex-set footprint in bytes.
func (g GraphSpec) VertexCapacity() int64 { return g.Vertices * g.VertexBytes }

// EdgeCapacity returns the edge-array footprint in bytes.
func (g GraphSpec) EdgeCapacity() int64 { return g.Edges * g.EdgeBytes }

// Requirement is one row of Table IV.
type Requirement struct {
	Accelerator string
	HBMStacks   int64
	HBMBytes    int64
	DDRChannels int64
	DDRBytes    int64
	SRAMBytes   int64
	Cores       int64
	Slices      int64
}

// NOVARequirement sizes a NOVA deployment for the graph: HBM stacks for
// the vertex set (4 GiB per stack, one GPN per stack), four 32 GiB DDR4
// channels per GPN for edges, 8 cores and 1.5 MiB of SRAM per GPN, and a
// single temporal slice — NOVA never slices.
func NOVARequirement(g GraphSpec) Requirement {
	const (
		stackBytes      = 4 * GiB
		ddrChanPerGPN   = 4
		ddrChanBytes    = 32 * GiB
		coresPerGPN     = 8
		sramPerGPNBytes = 3 * MiB / 2 // 512 KiB cache + 1 MiB VMU
	)
	stacks := ceilDiv(g.VertexCapacity(), stackBytes)
	// GPNs must also provide enough DDR capacity for the edges.
	gpnsForEdges := ceilDiv(g.EdgeCapacity(), ddrChanPerGPN*ddrChanBytes)
	gpns := stacks
	if gpnsForEdges > gpns {
		gpns = gpnsForEdges
	}
	return Requirement{
		Accelerator: "NOVA",
		HBMStacks:   gpns,
		HBMBytes:    gpns * stackBytes,
		DDRChannels: gpns * ddrChanPerGPN,
		DDRBytes:    gpns * ddrChanPerGPN * ddrChanBytes,
		SRAMBytes:   gpns * sramPerGPNBytes,
		Cores:       gpns * coresPerGPN,
		Slices:      1,
	}
}

// PolyGraphRequirement sizes a sliced PolyGraph deployment: the whole
// graph (vertices and edges) lives in HBM (8 GiB stacks, 16 cores and
// 32 MiB of scratchpad per stack-node), and the vertex set is temporally
// sliced against the per-node scratchpad.
func PolyGraphRequirement(g GraphSpec) Requirement {
	const (
		stackBytes   = 8 * GiB
		coresPerNode = 16
		sramPerNode  = 32 * MiB
	)
	total := g.VertexCapacity() + g.EdgeCapacity()
	nodes := ceilDiv(total, stackBytes)
	// Slices: 4 B of on-chip state per vertex against the aggregate
	// scratchpad (each node slices its local share identically).
	slices := ceilDiv(4*g.Vertices/nodes, sramPerNode)
	if slices < 1 {
		slices = 1
	}
	return Requirement{
		Accelerator: "PolyGraph",
		HBMStacks:   nodes,
		HBMBytes:    nodes * stackBytes,
		SRAMBytes:   nodes * sramPerNode,
		Cores:       nodes * coresPerNode,
		Slices:      slices,
	}
}

// PolyGraphNonSlicedRequirement sizes the non-sliced PolyGraph variant:
// on-chip memory must hold the full 16 B vertex working set.
func PolyGraphNonSlicedRequirement(g GraphSpec) Requirement {
	const (
		stackBytes   = 8 * GiB
		coresPerNode = 16
	)
	nodes := ceilDiv(g.VertexCapacity()+g.EdgeCapacity(), stackBytes)
	return Requirement{
		Accelerator: "PolyGraph non-sliced",
		HBMStacks:   nodes,
		HBMBytes:    nodes * stackBytes,
		SRAMBytes:   g.VertexCapacity(), // the whole vertex set on-chip
		Cores:       nodes * coresPerNode,
		Slices:      1,
	}
}

// DalorexRequirement sizes Dalorex: everything on-chip, one core per
// 4 MiB SRAM tile.
func DalorexRequirement(g GraphSpec) Requirement {
	const tileBytes = 4 * MiB
	total := g.VertexCapacity() + g.EdgeCapacity()
	cores := ceilDiv(total, tileBytes)
	return Requirement{
		Accelerator: "Dalorex",
		SRAMBytes:   total,
		Cores:       cores,
		Slices:      1,
	}
}

// TableIV returns all four rows for a graph.
func TableIV(g GraphSpec) []Requirement {
	return []Requirement{
		NOVARequirement(g),
		PolyGraphRequirement(g),
		PolyGraphNonSlicedRequirement(g),
		DalorexRequirement(g),
	}
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// --- Table V: FPGA composition -------------------------------------------

// FPGAUnit is the post-synthesis cost of one unit (8 instances, i.e. one
// GPN's worth, as reported in Table V).
type FPGAUnit struct {
	Name    string
	LUT     int64
	FF      int64
	BRAM    int64
	URAM    int64
	PowerMW int64
}

// GPNUnits returns Table V's component rows for one GPN (8 PEs) at 1 GHz.
func GPNUnits() []FPGAUnit {
	return []FPGAUnit{
		{Name: "8 MPU", LUT: 6032, FF: 7472, BRAM: 16, URAM: 24, PowerMW: 1120},
		{Name: "8 VMU", LUT: 5160, FF: 5560, BRAM: 64, URAM: 64, PowerMW: 1396},
		{Name: "8 MGU", LUT: 1640, FF: 4840, BRAM: 16, URAM: 8, PowerMW: 752},
		{Name: "NoC", LUT: 3, FF: 145, BRAM: 0, URAM: 0, PowerMW: 6},
	}
}

// GPNTotal sums the component rows.
func GPNTotal() FPGAUnit {
	t := FPGAUnit{Name: "1 GPN total"}
	for _, u := range GPNUnits() {
		t.LUT += u.LUT
		t.FF += u.FF
		t.BRAM += u.BRAM
		t.URAM += u.URAM
		t.PowerMW += u.PowerMW
	}
	return t
}

// FPGADevice is a target part's resource capacity.
type FPGADevice struct {
	Name string
	LUT  int64
	FF   int64
	BRAM int64
	URAM int64
}

// AlveoU280 is the Xilinx Alveo U280 used for the prototype (it pairs
// DDR4 and HBM2, which NOVA's memory system requires).
func AlveoU280() FPGADevice {
	return FPGADevice{Name: "Alveo U280", LUT: 1_304_000, FF: 2_607_000, BRAM: 2016, URAM: 960}
}

// MaxGPNs returns how many GPNs fit on the device and which resource
// binds first.
func MaxGPNs(dev FPGADevice) (int64, string) {
	g := GPNTotal()
	limit := int64(math.MaxInt64)
	binding := ""
	check := func(capacity, need int64, name string) {
		if need == 0 {
			return
		}
		if fit := capacity / need; fit < limit {
			limit = fit
			binding = name
		}
	}
	check(dev.LUT, g.LUT, "LUT")
	check(dev.FF, g.FF, "FF")
	check(dev.BRAM, g.BRAM, "BRAM")
	check(dev.URAM, g.URAM, "URAM")
	return limit, binding
}

// Utilization returns per-resource utilization fractions for n GPNs.
func Utilization(dev FPGADevice, gpns int64) (lut, ff, bram, uram float64) {
	g := GPNTotal()
	return float64(g.LUT*gpns) / float64(dev.LUT),
		float64(g.FF*gpns) / float64(dev.FF),
		float64(g.BRAM*gpns) / float64(dev.BRAM),
		float64(g.URAM*gpns) / float64(dev.URAM)
}
