package resource

import (
	"testing"
	"testing/quick"
)

func TestTrackerBitsWDC12Example(t *testing.T) {
	// Section III-D's worked example: WDC12 vertex set is 57.6 GiB
	// (3.6 B vertices × 16 B), HBM atom 32 B, superblock_dim 128.
	vertices := int64(3_600_000_000)
	vertexMem := vertices * 16

	// Naive bit vector: 1 bit per vertex ≈ 440 MiB of on-chip storage.
	bv := VertexBitVectorBits(vertices) / 8
	if bv < 420*MiB || bv > 460*MiB {
		t.Fatalf("vertex bit vector = %d MiB, want ≈ 440 MiB", bv/MiB)
	}
	// Block granularity halves it to ≈ 220 MiB.
	bb := BlockBitVectorBits(vertexMem, 32) / 8
	if bb < 200*MiB || bb > 240*MiB {
		t.Fatalf("block bit vector = %d MiB, want ≈ 220 MiB", bb/MiB)
	}
	// Superblock counters: ≈ 16 MiB, about 27× smaller than the vertex
	// bit vector.
	tr := TrackerBits(vertexMem, 128, 32) / 8
	if tr < 12*MiB || tr > 20*MiB {
		t.Fatalf("tracker = %d MiB, want ≈ 16 MiB", tr/MiB)
	}
	if ratio := float64(bv) / float64(tr); ratio < 25 || ratio > 32 {
		t.Fatalf("tracker only %.1f× smaller than bit vector, paper reports 27×", ratio)
	}
}

func TestTrackerBitsMonotone(t *testing.T) {
	// Property: growing the superblock dimension never increases the
	// tracker capacity.
	f := func(seed int64) bool {
		mem := int64(1<<20) + (seed&0xFFFF)*4096
		if mem < 0 {
			mem = 1 << 20
		}
		prev := int64(1) << 62
		for _, dim := range []int{32, 64, 128, 256} {
			bits := TrackerBits(mem, dim, 32)
			if bits > prev {
				return false
			}
			prev = bits
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerSensitivitySizes(t *testing.T) {
	// Section VI-C2: for the evaluation system, superblock dims
	// 32/64/128/256 need ≈ 3 MiB / 1.75 MiB / 1 MiB / 576 KiB per GPN.
	// One GPN owns one HBM2 stack: 4 GiB of vertex memory.
	vertexMem := 4 * GiB
	cases := []struct {
		dim    int
		wantLo int64
		wantHi int64
	}{
		{32, 2 * MiB, 4 * MiB},
		{64, MiB + MiB/2, 2 * MiB},
		{128, MiB - MiB/8, MiB + MiB/8},
		{256, 500 * KiB, 640 * KiB},
	}
	for _, c := range cases {
		got := TrackerBits(vertexMem, c.dim, 32) / 8
		if got < c.wantLo || got > c.wantHi {
			t.Errorf("dim %d: tracker = %d KiB, want in [%d, %d] KiB",
				c.dim, got/KiB, c.wantLo/KiB, c.wantHi/KiB)
		}
	}
}

func TestTableIVNOVARow(t *testing.T) {
	// The NOVA row of Table IV derives directly: 53 GiB of vertices on
	// 4 GiB stacks → 14 stacks/GPNs, 56 DDR channels (1 TiB), 112 cores,
	// 21 MiB SRAM, 1 slice.
	r := NOVARequirement(WDC12())
	if r.HBMStacks != 14 {
		t.Errorf("HBM stacks = %d, want 14", r.HBMStacks)
	}
	if r.DDRChannels != 56 {
		t.Errorf("DDR channels = %d, want 56", r.DDRChannels)
	}
	if r.Cores != 112 {
		t.Errorf("cores = %d, want 112", r.Cores)
	}
	if r.SRAMBytes != 21*MiB {
		t.Errorf("SRAM = %d MiB, want 21 MiB", r.SRAMBytes/MiB)
	}
	if r.Slices != 1 {
		t.Errorf("slices = %d, want 1", r.Slices)
	}
	if r.DDRBytes != TiB+TiB/2*0 && r.DDRBytes != 56*32*GiB {
		t.Errorf("DDR capacity = %d GiB", r.DDRBytes/GiB)
	}
}

func TestTableIVShape(t *testing.T) {
	// The comparison's shape: PolyGraph needs ~100× NOVA's SRAM and
	// many more HBM stacks; the non-sliced variant needs the whole
	// vertex set on-chip; Dalorex needs ~1 TiB of SRAM and vastly more
	// cores.
	g := WDC12()
	nova := NOVARequirement(g)
	pg := PolyGraphRequirement(g)
	pgNS := PolyGraphNonSlicedRequirement(g)
	dal := DalorexRequirement(g)

	if pg.SRAMBytes < 100*nova.SRAMBytes {
		t.Errorf("PolyGraph SRAM %d MiB not ≫ NOVA %d MiB", pg.SRAMBytes/MiB, nova.SRAMBytes/MiB)
	}
	if pg.HBMStacks < 8*nova.HBMStacks {
		t.Errorf("PolyGraph stacks %d not ≫ NOVA %d", pg.HBMStacks, nova.HBMStacks)
	}
	if pg.Slices < 2 {
		t.Errorf("PolyGraph slices = %d, want sliced execution", pg.Slices)
	}
	if pgNS.SRAMBytes != g.VertexCapacity() {
		t.Errorf("non-sliced SRAM = %d GiB, want full vertex set %d GiB",
			pgNS.SRAMBytes/GiB, g.VertexCapacity()/GiB)
	}
	if dal.SRAMBytes < 900*GiB {
		t.Errorf("Dalorex SRAM = %d GiB, want ≈ 1 TiB", dal.SRAMBytes/GiB)
	}
	if dal.Cores < 100_000 {
		t.Errorf("Dalorex cores = %d, want hundreds of thousands", dal.Cores)
	}
	if rows := TableIV(g); len(rows) != 4 {
		t.Fatalf("TableIV rows = %d", len(rows))
	}
}

func TestGPNTotalMatchesTableV(t *testing.T) {
	tot := GPNTotal()
	// The power column of Table V sums exactly: 1120+1396+752+6 = 3274.
	if tot.PowerMW != 3274 {
		t.Errorf("GPN power = %d mW, want 3274", tot.PowerMW)
	}
	if tot.LUT != 6032+5160+1640+3 {
		t.Errorf("GPN LUT = %d", tot.LUT)
	}
	if tot.FF != 7472+5560+4840+145 {
		t.Errorf("GPN FF = %d", tot.FF)
	}
	if tot.BRAM != 96 || tot.URAM != 96 {
		t.Errorf("GPN BRAM/URAM = %d/%d", tot.BRAM, tot.URAM)
	}
}

func TestMaxGPNsOnU280(t *testing.T) {
	n, binding := MaxGPNs(AlveoU280())
	// URAM binds first; ≥10 GPNs fit (the paper quotes 14 with a more
	// aggressive URAM→BRAM remapping; see EXPERIMENTS.md).
	if binding != "URAM" {
		t.Errorf("binding resource = %s, want URAM", binding)
	}
	if n < 10 || n > 14 {
		t.Errorf("max GPNs = %d, want in [10, 14]", n)
	}
	lut, ff, bram, uram := Utilization(AlveoU280(), 1)
	for name, u := range map[string]float64{"lut": lut, "ff": ff, "bram": bram, "uram": uram} {
		if u <= 0 || u > 0.15 {
			t.Errorf("single-GPN %s utilization %v out of (0, 0.15]", name, u)
		}
	}
}
