package core

import (
	"nova/graph"
	"nova/internal/mem"
	"nova/internal/sim"
	"nova/internal/stats"
)

// bitset is a dense bit vector used for per-block tracker state.
type bitset struct{ words []uint64 }

func newBitset(n int) bitset { return bitset{words: make([]uint64, (n+63)/64)} }

func (b bitset) get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) set(i int)      { b.words[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)    { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// VMU is the vertex management unit (Section III-D): it mediates active
// vertices between the MPU (producer) and the MGU (consumer), creating the
// illusion of an active buffer as large as the off-chip vertex memory.
//
// On-chip state: one counter per superblock of the PE's vertex memory, a
// FIFO active buffer holding prefetched blocks, and (for bookkeeping that
// hardware derives from the vertex records themselves) per-block tracked /
// in-buffer bits.
type VMU struct {
	pe *PE

	// Tracker module (overwrite policy).
	counters     []int32
	tracked      bitset
	inBuffer     bitset
	trackedTotal int
	scanOff      []int32 // per-superblock scan position, in blocks
	sbCursor     int     // round-robin scan start over superblocks

	// Active buffer: FIFO of block addresses (overwrite policy) or
	// vertex IDs (FIFO policy).
	buffer     []uint64
	bufferHead int

	inflightPrefetch int
	// batchHits counts recovered-active blocks within the current prefetch
	// batch; observed into stats.BatchHits when the batch completes.
	batchHits uint64

	// Off-chip FIFO (SpillFIFO policy): functional queue of vertex IDs.
	fifo     []graph.VertexID
	fifoHead int

	// Completion-handler pools for the two recovery read paths, so the
	// prefetch/refill pipelines never allocate per request.
	freePrefetch *prefetchTask
	freeFIFO     *fifoTask

	// Out-of-core tier (DESIGN.md §18): pageTags is the PE's direct-mapped
	// resident window over SSD pages of its vertex region (-1 = empty).
	// A recovery read whose page misses the window pays a page-in through
	// the GPN's SSD before its vertex-channel access issues; a tag marks
	// the page resident-or-inflight, so concurrent misses to one page ride
	// the outstanding page-in (an MSHR, in hardware terms). nil when the
	// tier is disabled.
	pageTags   []int64
	freePageIn *pageInTask

	stats VMUStats
	// occupancy samples the buffer fill level at each push (linear
	// buckets); a plain array increment on the activation path.
	occupancy stats.Histogram
}

// prefetchTask completes one tracker-directed block read.
type prefetchTask struct {
	u    *VMU
	bi   int
	addr uint64
	next *prefetchTask
}

func (t *prefetchTask) Fire() {
	u, bi, addr := t.u, t.bi, t.addr
	t.next = u.freePrefetch
	u.freePrefetch = t
	u.inflightPrefetch--
	if u.tracked.get(bi) {
		u.untrack(bi)
		u.stats.PrefetchHits++
		u.batchHits++
		u.pushBuffer(addr)
	}
	// Re-pump on every batch completion: even an all-miss batch
	// must immediately trigger the next superblock scan, or the
	// recovery pipeline stalls.
	if u.inflightPrefetch == 0 {
		u.stats.BatchHits.Sample(float64(u.batchHits))
		u.batchHits = 0
		u.pe.pumpMGU()
	}
}

func (u *VMU) newPrefetchTask(bi int, addr uint64) *prefetchTask {
	t := u.freePrefetch
	if t == nil {
		t = &prefetchTask{u: u}
	} else {
		u.freePrefetch = t.next
	}
	t.bi = bi
	t.addr = addr
	return t
}

// fifoTask completes one off-chip FIFO entry read.
type fifoTask struct {
	u    *VMU
	v    graph.VertexID
	next *fifoTask
}

func (t *fifoTask) Fire() {
	u, v := t.u, t.v
	t.next = u.freeFIFO
	u.freeFIFO = t
	u.inflightPrefetch--
	u.pushBuffer(uint64(v))
	u.pe.pumpMGU()
}

func (u *VMU) newFIFOTask(v graph.VertexID) *fifoTask {
	t := u.freeFIFO
	if t == nil {
		t = &fifoTask{u: u}
	} else {
		u.freeFIFO = t.next
	}
	t.v = v
	return t
}

// pageInTask resumes one recovery read whose page arrived from the SSD.
type pageInTask struct {
	u    *VMU
	bi   int
	addr uint64
	next *pageInTask
}

func (t *pageInTask) Fire() {
	u, bi, addr := t.u, t.bi, t.addr
	t.next = u.freePageIn
	u.freePageIn = t
	u.issueVertexRead(bi, addr)
}

func (u *VMU) newPageInTask(bi int, addr uint64) *pageInTask {
	t := u.freePageIn
	if t == nil {
		t = &pageInTask{u: u}
	} else {
		u.freePageIn = t.next
	}
	t.bi = bi
	t.addr = addr
	return t
}

// VMUStats instruments the trade-offs of Table I.
type VMUStats struct {
	// DirectPushes counts FIFO-policy activations that fit in the
	// on-chip buffer without spilling. The overwrite policy routes every
	// activation through the tracker (Listing 1), so it never pushes
	// directly.
	DirectPushes uint64
	// Spills counts activations that overflowed to off-chip memory.
	Spills uint64
	// SpillWrites counts extra off-chip writes caused by spilling
	// (always 0 for the overwrite policy; 1 per spill for the FIFO).
	SpillWrites uint64
	// PrefetchedBlocks counts blocks read back during recovery.
	PrefetchedBlocks uint64
	// PrefetchHits counts recovered blocks that held active vertices.
	PrefetchHits uint64
	// StaleRetrievals counts FIFO entries that were already propagated
	// when popped (duplicate work the overwrite policy avoids).
	StaleRetrievals uint64
	// BatchHits samples, per completed prefetch batch, how many of its
	// blocks actually held active vertices — the recovery-precision
	// distribution of the superblock tracker (overwrite policy only;
	// PrefetchHits / PrefetchedBlocks gives the same ratio in aggregate,
	// this shows its spread).
	BatchHits stats.Distribution
	// FIFOMaxDepth is the high-water mark of the off-chip FIFO.
	FIFOMaxDepth int
	// MetadataBytes is the explicit per-entry metadata the policy needs
	// off-chip (vertex addresses for the FIFO policy).
	MetadataBytes uint64
	// PageIns counts SSD partition page-ins triggered by recovery reads
	// that missed the resident window (out-of-core tier only), and
	// BytesPaged the page-rounded volume they moved. IOStallTicks sums
	// the full page-in delay those reads paid ahead of their
	// vertex-channel access.
	PageIns      uint64
	BytesPaged   uint64
	IOStallTicks sim.Ticks
}

func newVMU(pe *PE) *VMU {
	numBlocks := pe.numBlocks()
	dim := pe.sys.cfg.SuperblockDim
	numSB := (numBlocks + dim - 1) / dim
	if numSB == 0 {
		numSB = 1
	}
	u := &VMU{
		pe:        pe,
		counters:  make([]int32, numSB),
		tracked:   newBitset(numBlocks),
		inBuffer:  newBitset(numBlocks),
		scanOff:   make([]int32, numSB),
		buffer:    make([]uint64, 0, pe.sys.cfg.ActiveBufferEntries),
		occupancy: stats.Histogram{Width: 4},
	}
	if pe.sys.cfg.OutOfCore {
		u.pageTags = make([]int64, pe.sys.cfg.SSDResidentPages)
		for i := range u.pageTags {
			u.pageTags[i] = -1
		}
	}
	return u
}

func (u *VMU) bufferLen() int  { return len(u.buffer) - u.bufferHead }
func (u *VMU) bufferFree() int { return u.pe.sys.cfg.ActiveBufferEntries - u.bufferLen() }

func (u *VMU) pushBuffer(block uint64) {
	u.buffer = append(u.buffer, block)
	u.occupancy.Observe(uint64(u.bufferLen()))
	if u.pe.sys.cfg.Spill == SpillOverwrite {
		u.inBuffer.set(u.pe.blockIndex(block))
	}
}

func (u *VMU) popBuffer() (uint64, bool) {
	if u.bufferLen() == 0 {
		return 0, false
	}
	b := u.buffer[u.bufferHead]
	u.bufferHead++
	if u.bufferHead > 256 && u.bufferHead*2 >= len(u.buffer) {
		u.buffer = append(u.buffer[:0], u.buffer[u.bufferHead:]...)
		u.bufferHead = 0
	}
	if u.pe.sys.cfg.Spill == SpillOverwrite {
		u.inBuffer.clear(u.pe.blockIndex(b))
	}
	return b, true
}

// onActivate handles a vertex transitioning inactive→active. The MPU calls
// it right after a reduction; the BSP barrier calls it when injecting the
// next epoch's active set.
func (u *VMU) onActivate(v graph.VertexID) {
	if u.pe.sys.cfg.Spill == SpillFIFO {
		if u.bufferFree() > 0 {
			u.pushBuffer(uint64(v))
			u.stats.DirectPushes++
		} else {
			// Append to the off-chip FIFO: one extra write of the
			// entry (vertex address + property).
			u.fifo = append(u.fifo, v)
			u.stats.Spills++
			u.stats.SpillWrites++
			u.stats.MetadataBytes += 8
			if d := len(u.fifo) - u.fifoHead; d > u.stats.FIFOMaxDepth {
				u.stats.FIFOMaxDepth = d
			}
			u.pe.vchan.Access(mem.Request{
				Addr:  u.pe.fifoSpillAddr(),
				Bytes: 16,
				Kind:  mem.WriteAccess,
			})
		}
		return
	}
	// Overwrite policy (Listing 1): the activation lives in the vertex
	// record itself (active_now bit) and the tracker counter for its
	// superblock is bumped immediately — the on-chip metadata update of
	// track_as_active. If the block is already queued in the buffer or
	// already tracked, the update rides along, coalescing across the
	// whole recovery window. The vertex value itself spills with its
	// cache block's write-back; the prefetcher recovers it later. That
	// recovery delay is deliberate — it is what widens NOVA's
	// update-coalescing window beyond any on-chip structure.
	block := u.pe.vertexBlockAddr(v)
	bi := u.pe.blockIndex(block)
	if u.inBuffer.get(bi) || u.tracked.get(bi) {
		return
	}
	u.stats.Spills++
	u.track(bi)
}

func (u *VMU) track(bi int) {
	if u.tracked.get(bi) {
		return
	}
	u.tracked.set(bi)
	u.trackedTotal++
	u.counters[bi/u.pe.sys.cfg.SuperblockDim]++
}

func (u *VMU) untrack(bi int) {
	if !u.tracked.get(bi) {
		return
	}
	u.tracked.clear(bi)
	u.trackedTotal--
	u.counters[bi/u.pe.sys.cfg.SuperblockDim]--
}

// onEvict implements Listing 1's on_evict: when the cache evicts a block
// containing a spilled active vertex, the tracker records its superblock.
func (u *VMU) onEvict(blockAddr uint64, dirty bool) {
	if dirty {
		u.pe.vchan.Access(mem.Request{Addr: blockAddr, Bytes: u.pe.sys.cfg.BlockBytes, Kind: mem.WriteAccess})
	}
	if u.pe.sys.cfg.Spill != SpillOverwrite {
		return
	}
	bi := u.pe.blockIndex(blockAddr)
	if u.inBuffer.get(bi) || u.tracked.get(bi) {
		return
	}
	if u.pe.blockHasActive(blockAddr) {
		u.track(bi)
	}
}

// maybePrefetch implements Listing 1's prefetch: when at least one batch of
// buffer entries is free and active blocks are spilled, read PrefetchBatch
// blocks from the next superblock with a nonzero counter. Blocks that turn
// out inactive are wasted bandwidth (Fig. 10).
func (u *VMU) maybePrefetch() {
	cfg := u.pe.sys.cfg
	if cfg.Spill == SpillFIFO {
		u.fifoRefill()
		return
	}
	for u.inflightPrefetch == 0 &&
		u.bufferFree()-u.inflightPrefetch >= cfg.PrefetchBatch &&
		u.trackedTotal > 0 {
		sb := u.nextSuperblock()
		if sb < 0 {
			return
		}
		u.pe.sys.tracer.Instant("vmu", "prefetch-batch", u.pe.id, u.pe.eng.Now())
		start := u.scanOff[sb]
		dim := int32(cfg.SuperblockDim)
		numBlocks := int32(u.pe.numBlocks())
		for k := int32(0); k < int32(cfg.PrefetchBatch); k++ {
			bi := int32(sb)*dim + (start+k)%dim
			if bi >= numBlocks {
				continue
			}
			u.issueBlockRead(int(bi))
		}
		u.scanOff[sb] = (start + int32(cfg.PrefetchBatch)) % dim
	}
}

func (u *VMU) nextSuperblock() int {
	n := len(u.counters)
	for i := 0; i < n; i++ {
		sb := (u.sbCursor + i) % n
		if u.counters[sb] > 0 {
			u.sbCursor = sb
			return sb
		}
	}
	return -1
}

func (u *VMU) issueBlockRead(bi int) {
	cfg := u.pe.sys.cfg
	addr := uint64(bi) * uint64(cfg.BlockBytes)
	u.inflightPrefetch++
	u.stats.PrefetchedBlocks++
	if d := u.pe.ssd; d != nil {
		// Out-of-core tier: the block's SSD page must be resident (or
		// already inbound) before the vertex channel can service the
		// read. A miss pays the full page-in — this is where NOVA's
		// spill/recovery path meets realistic storage latency.
		pageBytes := uint64(d.Config().PageBytes)
		page := addr / pageBytes
		slot := page % uint64(len(u.pageTags))
		if u.pageTags[slot] != int64(page) {
			u.pageTags[slot] = int64(page)
			u.stats.PageIns++
			u.stats.BytesPaged += pageBytes
			now := u.pe.eng.Now()
			complete := d.PageIn(page*pageBytes, int(pageBytes), u.newPageInTask(bi, addr))
			u.stats.IOStallTicks += complete - now
			return
		}
	}
	u.issueVertexRead(bi, addr)
}

// issueVertexRead performs the vertex-channel half of a recovery read,
// once the block is (or has become) DRAM-resident.
func (u *VMU) issueVertexRead(bi int, addr uint64) {
	cfg := u.pe.sys.cfg
	kind := mem.WastefulRead
	if u.tracked.get(bi) {
		kind = mem.UsefulRead
	}
	u.pe.vchan.Access(mem.Request{
		Addr:  addr,
		Bytes: cfg.BlockBytes,
		Kind:  kind,
		Done:  u.newPrefetchTask(bi, addr),
	})
}

// fifoRefill pops spilled FIFO entries back into the on-chip buffer.
func (u *VMU) fifoRefill() {
	cfg := u.pe.sys.cfg
	for u.bufferFree()-u.inflightPrefetch >= cfg.PrefetchBatch && u.fifoHead < len(u.fifo) && u.inflightPrefetch == 0 {
		n := cfg.PrefetchBatch
		if avail := len(u.fifo) - u.fifoHead; avail < n {
			n = avail
		}
		for i := 0; i < n; i++ {
			v := u.fifo[u.fifoHead]
			u.fifoHead++
			u.inflightPrefetch++
			u.pe.vchan.Access(mem.Request{
				Addr:  u.pe.fifoSpillAddr(),
				Bytes: 16,
				Kind:  mem.UsefulRead,
				Done:  u.newFIFOTask(v),
			})
		}
		if u.fifoHead == len(u.fifo) {
			u.fifo = u.fifo[:0]
			u.fifoHead = 0
		}
	}
}

// pendingWork reports whether the VMU still holds or tracks activations.
func (u *VMU) pendingWork() bool {
	return u.bufferLen() > 0 || u.trackedTotal > 0 ||
		u.inflightPrefetch > 0 || u.fifoHead < len(u.fifo)
}
