package core

import (
	"math"
	"testing"

	"nova/program"
)

// spillConfig shrinks the active buffers far below the working set so the
// VMU's spill/recovery machinery carries the run — the regime the large
// scale tier operates in, compressed to test size.
func spillConfig(policy SpillPolicy) Config {
	cfg := testConfig()
	cfg.Spill = policy
	cfg.ActiveBufferEntries = 8
	cfg.PrefetchBatch = 4
	return cfg
}

func TestOverwriteSpillCoverage(t *testing.T) {
	g := randGraph(7, 600, 4800)
	res := runOn(t, spillConfig(SpillOverwrite), g, program.NewSSSP(g.LargestOutDegreeVertex()))
	v := res.VMU
	if v.Spills == 0 {
		t.Fatal("no spills: buffer never overflowed, spill path untested")
	}
	if v.PrefetchedBlocks == 0 || v.PrefetchHits == 0 {
		t.Fatalf("recovery never ran: prefetched=%d hits=%d", v.PrefetchedBlocks, v.PrefetchHits)
	}
	if v.PrefetchHits > v.PrefetchedBlocks {
		t.Fatalf("more hits (%d) than prefetched blocks (%d)", v.PrefetchHits, v.PrefetchedBlocks)
	}
	if v.SpillWrites != 0 {
		t.Fatalf("overwrite policy issued %d spill writes, want 0 (Table I)", v.SpillWrites)
	}

	// Recovery-hit distribution: one sample per completed prefetch batch,
	// each bounded by the batch size, summing to the aggregate hit count.
	d := v.BatchHits
	if d.N() == 0 {
		t.Fatal("no recovery batches observed")
	}
	if d.Max() > float64(spillConfig(SpillOverwrite).PrefetchBatch) {
		t.Fatalf("batch recovered %.0f blocks, more than the batch size", d.Max())
	}
	if got := d.Mean() * float64(d.N()); math.Abs(got-float64(v.PrefetchHits)) > 0.5 {
		t.Fatalf("batch-hit samples sum to %.1f, want %d (= prefetch hits)", got, v.PrefetchHits)
	}

	// The derived tracker-precision metric must land in (0, 1] and show up
	// in the dump the harness exports.
	bag := res.Dump.Bag()
	rate, ok := bag[MetricRecoveryHitRate]
	if !ok {
		t.Fatalf("%s missing from stats dump", MetricRecoveryHitRate)
	}
	want := float64(v.PrefetchHits) / float64(v.PrefetchedBlocks)
	if rate <= 0 || rate > 1 || math.Abs(rate-want) > 1e-12 {
		t.Fatalf("recovery_hit_rate = %v, want %v", rate, want)
	}
}

func TestFIFOSpillCoverage(t *testing.T) {
	g := randGraph(7, 600, 4800)
	res := runOn(t, spillConfig(SpillFIFO), g, program.NewSSSP(g.LargestOutDegreeVertex()))
	v := res.VMU
	if v.Spills == 0 {
		t.Fatal("no spills: buffer never overflowed, spill path untested")
	}
	if v.SpillWrites != v.Spills {
		t.Fatalf("FIFO policy: %d spill writes for %d spills, want 1:1 (Table I)", v.SpillWrites, v.Spills)
	}
	if v.DirectPushes == 0 {
		t.Fatal("no direct pushes: buffer was never usable")
	}
	if v.FIFOMaxDepth == 0 {
		t.Fatal("FIFO high-water mark is zero despite spills")
	}
	if v.MetadataBytes == 0 {
		t.Fatal("FIFO policy recorded no off-chip metadata")
	}
	if v.BatchHits.N() != 0 {
		t.Fatalf("FIFO policy sampled %d recovery batches, want 0 (tracker is overwrite-only)", v.BatchHits.N())
	}
}

func TestSpillCoverageAcrossPrograms(t *testing.T) {
	// Every workload the spill-stress tier runs — including the delta
	// PageRank used as the large-tier stress program — must drive the
	// recovery path under a tiny buffer, not just SSSP.
	g := randGraph(13, 500, 4000)
	programs := []program.Program{
		program.NewBFS(g.LargestOutDegreeVertex()),
		program.NewPRDelta(0.85, 1e-7),
	}
	for _, p := range programs {
		res := runOn(t, spillConfig(SpillOverwrite), g, p)
		if res.VMU.Spills == 0 || res.VMU.PrefetchHits == 0 {
			t.Errorf("%s: spills=%d hits=%d — spill/recovery not exercised",
				p.Name(), res.VMU.Spills, res.VMU.PrefetchHits)
		}
	}
}
