package core

import (
	"testing"

	"nova/internal/mem"
	"nova/internal/ref"
	"nova/program"
)

// oocConfig shrinks the SSD resident window so a small test graph still
// spills past it and pays page-in events.
func oocConfig() Config {
	cfg := testConfig()
	cfg.OutOfCore = true
	cfg.SSD = mem.SSDConfig{Name: "ssd", PageBytes: 256, BytesPerCycle: 0.5, FixedLatency: 500, QueueDepth: 4}
	cfg.SSDResidentPages = 2
	return cfg
}

func TestOutOfCoreBFSCorrectAndCounted(t *testing.T) {
	g := randGraph(7, 120, 700)
	root := g.LargestOutDegreeVertex()
	res := runOn(t, oocConfig(), g, program.NewBFS(root))
	want := ref.BFS(g, root)
	got := distsOf(res.Props)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: got %d want %d", v, got[v], want[v])
		}
	}
	if res.PartitionLoads == 0 || res.BytesPaged == 0 {
		t.Fatalf("out-of-core run paged nothing: loads=%d bytes=%d", res.PartitionLoads, res.BytesPaged)
	}
	if res.IOStallTicks == 0 {
		t.Fatal("page-ins exposed no latency")
	}
	bag := res.Dump.Bag()
	if bag[MetricPartitionLoads] != float64(res.PartitionLoads) {
		t.Fatalf("dump %s = %v, result %d", MetricPartitionLoads, bag[MetricPartitionLoads], res.PartitionLoads)
	}
	if bag[MetricBytesPaged] != float64(res.BytesPaged) || bag[MetricIOStallTicks] != float64(res.IOStallTicks) {
		t.Fatalf("dump disagrees with result: %v vs %+v", bag, res)
	}

	// The same run without the SSD tier must be no slower and page nothing.
	base := runOn(t, testConfig(), g, program.NewBFS(root))
	if base.PartitionLoads != 0 || base.Dump.Bag()[MetricPartitionLoads] != 0 {
		t.Fatalf("in-core run recorded page-ins: %d", base.PartitionLoads)
	}
	if res.Ticks < base.Ticks {
		t.Fatalf("paged run finished earlier than in-core: %d < %d", res.Ticks, base.Ticks)
	}
}

func TestOutOfCoreDeterministic(t *testing.T) {
	g := randGraph(21, 100, 600)
	root := g.LargestOutDegreeVertex()
	a := runOn(t, oocConfig(), g, program.NewSSSP(root))
	b := runOn(t, oocConfig(), g, program.NewSSSP(root))
	if a.Ticks != b.Ticks || a.PartitionLoads != b.PartitionLoads ||
		a.BytesPaged != b.BytesPaged || a.IOStallTicks != b.IOStallTicks {
		t.Fatalf("out-of-core runs diverged: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.Ticks, a.PartitionLoads, a.BytesPaged, a.IOStallTicks,
			b.Ticks, b.PartitionLoads, b.BytesPaged, b.IOStallTicks)
	}
}

func TestOutOfCoreConfigValidation(t *testing.T) {
	cfg := oocConfig()
	cfg.SSDResidentPages = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero resident window accepted")
	}
	cfg = oocConfig()
	cfg.SSD.QueueDepth = 0
	if err := cfg.Validate(); err == nil {
		t.Error("invalid SSD config accepted")
	}
}
