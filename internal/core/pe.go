package core

import (
	"nova/graph"
	"nova/internal/mem"
	"nova/internal/network"
	"nova/internal/sim"
	"nova/internal/stats"
	"nova/program"
)

// PE is one processing element: a message-driven processor owning a
// contiguous slice of the vertex set (in local "slots"), its own HBM2
// vertex channel and cache (MPU), a vertex management unit (VMU), and a
// message generation unit (MGU) streaming edges from the GPN's shared
// DDR4 channels.
type PE struct {
	sys *System
	// sh is the owning shard; eng its event loop. All of this PE's
	// scheduling goes through eng, so the PE runs entirely on its
	// shard's goroutine.
	sh  *shardState
	eng *sim.Engine
	id  int // global PE index
	gpn int

	// Vertex placement: localVerts[slot] = global vertex ID.
	localVerts []graph.VertexID

	// Edge storage: the out-edges of local vertices, concatenated in
	// slot order. localRowPtr is indexed by slot.
	localRowPtr []int64
	edgeDst     []graph.VertexID
	edgeWgt     []uint32
	edgeBase    uint64 // byte offset of this PE's region in GPN edge space

	vchan *mem.Channel
	cache *mem.Cache
	vmu   *VMU
	// ssd is the GPN's shared out-of-core device (nil unless
	// cfg.OutOfCore): vertex blocks whose SSD page is outside the
	// resident window pay a page-in before the HBM2 access.
	ssd *mem.SSD

	// MPU state.
	inbox       []program.Message
	inboxHead   int
	pendingFill map[uint64][]program.Message // block addr -> waiting messages
	redSlot     sim.Ticks
	redUsed     int

	// MGU state.
	mguInflight int
	sendBuckets [][]program.Message
	fifoTick    uint64
	// edgesOut counts propagations this PE generated (load accounting).
	edgesOut int64
	// Shard-local slices of the machine-wide work counters: written only
	// by this PE's shard, summed into the System totals at collect time.
	edgesTraversed int64
	messagesSent   int64
	coalesced      int64
	// inboxDepth samples the MPU backlog at each delivery; batchVerts and
	// batchEdges profile propagation batches. Plain array/field updates.
	inboxDepth stats.Histogram
	batchVerts stats.Distribution
	batchEdges stats.Distribution

	// Pre-allocated event-handler pools: one free list per recurring
	// schedule in the MPU/MGU pipelines, so steady-state simulation never
	// allocates a closure per message, fill, fetch, or delivery.
	freeReduce  *reduceTask
	freeFill    *fillTask
	freeProp    *propTask
	freeDeliver *deliverTask
	// vertsScratch collects a block's active vertices in pumpMGU.
	vertsScratch []graph.VertexID
}

// reduceTask fires one message's reduce at its FU slot.
type reduceTask struct {
	pe   *PE
	msg  program.Message
	next *reduceTask
}

func (t *reduceTask) Fire() {
	pe, msg := t.pe, t.msg
	// Release before reducing: finishReduce can schedule further reduces
	// and reuse this task immediately.
	t.next = pe.freeReduce
	pe.freeReduce = t
	pe.finishReduce(msg)
}

// scheduleReduce books msg's reduction on the next free FU slot.
func (pe *PE) scheduleReduce(msg program.Message) {
	t := pe.freeReduce
	if t == nil {
		t = &reduceTask{pe: pe}
	} else {
		pe.freeReduce = t.next
	}
	t.msg = msg
	pe.eng.ScheduleAt(pe.nextReduceSlot(), t)
}

// fillTask fires when a vertex block returns from HBM.
type fillTask struct {
	pe    *PE
	block uint64
	next  *fillTask
}

func (t *fillTask) Fire() {
	pe, block := t.pe, t.block
	t.next = pe.freeFill
	pe.freeFill = t
	pe.fillDone(block)
}

func (pe *PE) newFillTask(block uint64) *fillTask {
	t := pe.freeFill
	if t == nil {
		t = &fillTask{pe: pe}
	} else {
		pe.freeFill = t.next
	}
	t.block = block
	return t
}

// propTask tracks one in-flight propagation batch: its Fire counts edge-
// fetch completions, and the embedded gen handler fires the message-
// generation stage. Both stages reuse the same pre-allocated object and
// its verts backing array across launches.
type propTask struct {
	pe         *PE
	verts      []graph.VertexID
	totalEdges int64
	launchTick sim.Ticks
	pending    int
	started    bool
	gen        genStage
	next       *propTask
}

// genStage is scheduled via a pointer into its owning propTask, so the
// Handler conversion never allocates.
type genStage struct{ t *propTask }

func (g *genStage) Fire() { g.t.pe.generateMessages(g.t) }

// Fire counts one completed edge-fetch chunk; the last one launches
// message generation at PropagateFU rate.
func (t *propTask) Fire() {
	t.pending--
	if t.pending == 0 && t.started {
		t.scheduleGen()
	}
}

func (t *propTask) scheduleGen() {
	cfg := &t.pe.sys.cfg
	dur := sim.Ticks((t.totalEdges + int64(cfg.PropagateFUs) - 1) / int64(cfg.PropagateFUs))
	if dur == 0 {
		dur = 1
	}
	t.pe.eng.Schedule(dur, &t.gen)
}

func (pe *PE) newPropTask(verts []graph.VertexID, totalEdges int64) *propTask {
	t := pe.freeProp
	if t == nil {
		t = &propTask{pe: pe}
		t.gen.t = t
	} else {
		pe.freeProp = t.next
	}
	t.verts = append(t.verts[:0], verts...)
	t.totalEdges = totalEdges
	t.launchTick = pe.eng.Now()
	t.pending = 0
	t.started = false
	return t
}

func (pe *PE) releasePropTask(t *propTask) {
	t.next = pe.freeProp
	pe.freeProp = t
}

// deliverTask hands one message batch to its destination PE at arrival
// time. The batch buffer stays with the task and is reused for the owning
// PE's next send to any destination.
type deliverTask struct {
	owner  *PE
	target *PE
	msgs   []program.Message
	next   *deliverTask
}

func (t *deliverTask) Fire() {
	t.target.deliver(t.msgs)
	if t.owner.sh != t.target.sh {
		// Fired on the destination's shard: the owner's free list is
		// not ours to touch from this goroutine. Park the task on the
		// destination shard's spent list; the window barrier returns it
		// to the owner's pool.
		sh := t.target.sh
		t.target = nil
		sh.spentDeliver = append(sh.spentDeliver, t)
		return
	}
	t.target = nil
	o := t.owner
	t.next = o.freeDeliver
	o.freeDeliver = t
}

// Payload, SetPayload and Discard implement network.Batch: the fabric's
// coalescing stage rewrites a waiting task's messages when a later batch
// to the same destination merges into it, and discards the absorbed task.
// Discard runs on the owner's shard (Send is called from the sender's
// goroutine) before the task was ever scheduled, so the free-list push is
// safe.
func (t *deliverTask) Payload() []program.Message     { return t.msgs }
func (t *deliverTask) SetPayload(m []program.Message) { t.msgs = m }
func (t *deliverTask) Discard() {
	t.target = nil
	o := t.owner
	t.next = o.freeDeliver
	o.freeDeliver = t
}

var _ network.Batch = (*deliverTask)(nil)

func (pe *PE) newDeliverTask(target *PE, batch []program.Message) *deliverTask {
	t := pe.freeDeliver
	if t == nil {
		t = &deliverTask{owner: pe}
	} else {
		pe.freeDeliver = t.next
	}
	t.target = target
	t.msgs = append(t.msgs[:0], batch...)
	return t
}

func (pe *PE) numBlocks() int {
	cfg := &pe.sys.cfg
	bytes := len(pe.localVerts) * cfg.VertexBytes
	n := (bytes + cfg.BlockBytes - 1) / cfg.BlockBytes
	if n == 0 {
		n = 1
	}
	return n
}

// vaddr returns the PE-local byte address of a vertex record.
func (pe *PE) vaddr(v graph.VertexID) uint64 {
	return uint64(pe.sys.slot[v]) * uint64(pe.sys.cfg.VertexBytes)
}

func (pe *PE) blockAddrOf(addr uint64) uint64 {
	bb := uint64(pe.sys.cfg.BlockBytes)
	return addr / bb * bb
}

func (pe *PE) vertexBlockAddr(v graph.VertexID) uint64 {
	return pe.blockAddrOf(pe.vaddr(v))
}

func (pe *PE) blockIndex(blockAddr uint64) int {
	return int(blockAddr / uint64(pe.sys.cfg.BlockBytes))
}

// blockSlots returns the slot range [lo, hi) covered by a block.
func (pe *PE) blockSlots(blockAddr uint64) (int, int) {
	cfg := &pe.sys.cfg
	perBlock := cfg.BlockBytes / cfg.VertexBytes
	lo := int(blockAddr) / cfg.VertexBytes
	hi := lo + perBlock
	if hi > len(pe.localVerts) {
		hi = len(pe.localVerts)
	}
	return lo, hi
}

// blockHasActive reports whether any vertex in the block is flagged active
// and not already queued in the active buffer.
func (pe *PE) blockHasActive(blockAddr uint64) bool {
	lo, hi := pe.blockSlots(blockAddr)
	for s := lo; s < hi; s++ {
		if pe.sys.activeFlag[pe.localVerts[s]] {
			return true
		}
	}
	return false
}

// fifoSpillAddr returns a rotating off-chip address for FIFO-policy spill
// traffic (a dedicated region past the vertex set).
func (pe *PE) fifoSpillAddr() uint64 {
	base := uint64(pe.numBlocks()) * uint64(pe.sys.cfg.BlockBytes)
	pe.fifoTick++
	return base + (pe.fifoTick*16)%(1<<20)
}

// --- Message processing unit -------------------------------------------

// deliver appends incoming messages and pumps the MPU.
func (pe *PE) deliver(msgs []program.Message) {
	pe.inbox = append(pe.inbox, msgs...)
	pe.inboxDepth.Observe(uint64(len(pe.inbox) - pe.inboxHead))
	pe.pumpMPU()
}

// nextReduceSlot allocates the next cycle with a free reduce FU.
func (pe *PE) nextReduceSlot() sim.Ticks {
	now := pe.eng.Now() + 1
	if pe.redSlot < now {
		pe.redSlot = now
		pe.redUsed = 0
	}
	if pe.redUsed >= pe.sys.cfg.ReduceFUs {
		pe.redSlot++
		pe.redUsed = 0
	}
	pe.redUsed++
	return pe.redSlot
}

// pumpMPU processes inbox messages: cache hits reduce after an FU slot;
// misses allocate an MSHR (merging secondary misses to the same block) and
// reduce when the vertex block returns from HBM.
func (pe *PE) pumpMPU() {
	cfg := &pe.sys.cfg
	for pe.inboxHead < len(pe.inbox) {
		msg := pe.inbox[pe.inboxHead]
		addr := pe.vaddr(msg.Dst)
		block := pe.blockAddrOf(addr)
		if pe.cache.Access(addr) {
			pe.inboxHead++
			pe.scheduleReduce(msg)
			continue
		}
		if waiters, ok := pe.pendingFill[block]; ok {
			pe.inboxHead++
			pe.pendingFill[block] = append(waiters, msg)
			continue
		}
		if len(pe.pendingFill) >= cfg.MSHRs {
			break // back-pressure: retry when an MSHR frees
		}
		pe.inboxHead++
		pe.pendingFill[block] = []program.Message{msg}
		pe.vchan.Access(mem.Request{
			Addr:  block,
			Bytes: cfg.BlockBytes,
			Kind:  mem.UsefulRead,
			Done:  pe.newFillTask(block),
		})
	}
	if pe.inboxHead == len(pe.inbox) {
		pe.inbox = pe.inbox[:0]
		pe.inboxHead = 0
	} else if pe.inboxHead > 4096 && pe.inboxHead*2 >= len(pe.inbox) {
		pe.inbox = append(pe.inbox[:0:0], pe.inbox[pe.inboxHead:]...)
		pe.inboxHead = 0
	}
}

func (pe *PE) fillDone(block uint64) {
	pe.cache.Fill(block) // eviction hook: write-back + tracker update
	waiters := pe.pendingFill[block]
	delete(pe.pendingFill, block)
	for _, msg := range waiters {
		pe.scheduleReduce(msg)
	}
	pe.pumpMPU() // an MSHR freed
}

// markDirty records the vertex write. If the block slipped out of the
// cache while the reduce was in flight, charge a direct write-through.
func (pe *PE) markDirty(addr uint64) {
	if pe.cache.Contains(addr) {
		pe.cache.MarkDirty(addr)
		return
	}
	pe.vchan.Access(mem.Request{
		Addr:  pe.blockAddrOf(addr),
		Bytes: pe.sys.cfg.BlockBytes,
		Kind:  mem.WriteAccess,
	})
}

// finishReduce applies the reduce function — the blue block of
// Algorithm 1 — and hands new activations to the VMU.
func (pe *PE) finishReduce(msg program.Message) {
	sys := pe.sys
	v := msg.Dst
	addr := pe.vaddr(v)
	if sys.bsp != nil {
		// BSP: accumulate into next_prop; activation happens at the
		// barrier via Apply.
		if !sys.touched[v] {
			sys.touched[v] = true
			sys.accum[v] = sys.bsp.AccumInit()
			pe.sh.touchedList = append(pe.sh.touchedList, v)
		} else {
			pe.coalesced++
		}
		sys.accum[v] = sys.prog.Reduce(v, sys.accum[v], msg.Delta)
		pe.markDirty(addr)
	} else {
		old := sys.props[v]
		next := sys.prog.Reduce(v, old, msg.Delta)
		changed := next != old
		if sys.activeFlag[v] {
			if changed && sys.cfg.Spill == SpillFIFO {
				// Table I: the off-chip FIFO cannot coalesce — every
				// further update appends a duplicate entry, later
				// popped as a stale retrieval.
				pe.vmu.onActivate(v)
			} else {
				pe.coalesced++
			}
		}
		if changed {
			sys.props[v] = next
			pe.markDirty(addr)
			if !sys.activeFlag[v] {
				sys.activate(v)
				pe.pumpMGU()
			}
		}
	}
	pe.pumpMPU()
}

// --- Message generation unit --------------------------------------------

// pumpMGU pulls active blocks from the VMU, streams their edges from edge
// memory, and generates messages — the red block of Algorithm 1.
func (pe *PE) pumpMGU() {
	cfg := &pe.sys.cfg
	pe.vmu.maybePrefetch()
	for pe.mguInflight < cfg.MGUPipelineDepth {
		entry, ok := pe.vmu.popBuffer()
		if !ok {
			return
		}
		verts := pe.vertsScratch[:0]
		if cfg.Spill == SpillFIFO {
			v := graph.VertexID(entry)
			if !pe.sys.activeFlag[v] {
				pe.vmu.stats.StaleRetrievals++
				pe.vmu.maybePrefetch()
				continue
			}
			verts = append(verts, v)
		} else {
			lo, hi := pe.blockSlots(entry)
			for s := lo; s < hi; s++ {
				gv := pe.localVerts[s]
				if pe.sys.activeFlag[gv] {
					verts = append(verts, gv)
				}
			}
			if len(verts) == 0 {
				pe.vertsScratch = verts
				pe.vmu.maybePrefetch()
				continue
			}
		}
		pe.vertsScratch = verts
		for _, v := range verts {
			pe.sys.deactivate(v)
		}
		pe.launchPropagation(verts)
		pe.vmu.maybePrefetch()
	}
}

// launchPropagation fetches the edges of the given active vertices and,
// when the stream arrives, generates their messages at PropagateFU rate.
// The in-flight batch state lives in a pooled propTask, so a steady MGU
// pipeline schedules without allocating.
func (pe *PE) launchPropagation(verts []graph.VertexID) {
	sys := pe.sys
	cfg := &sys.cfg
	var totalEdges int64
	for _, v := range verts {
		slot := int(sys.slot[v])
		totalEdges += pe.localRowPtr[slot+1] - pe.localRowPtr[slot]
	}
	if totalEdges == 0 {
		return
	}
	pe.batchVerts.Sample(float64(len(verts)))
	pe.batchEdges.Sample(float64(totalEdges))
	pe.mguInflight++
	t := pe.newPropTask(verts, totalEdges)
	// Merge the edge ranges of adjacent slots (vertices of one block are
	// consecutive, so their edge arrays are contiguous): one burst per
	// run instead of one access per vertex. Spans collapse to address
	// ranges on the fly — the chunk loop below is the only consumer.
	var spanLo, spanHi int64 = 0, -1
	flush := func() {
		if spanHi <= spanLo {
			return
		}
		start := pe.edgeBase + uint64(spanLo)*uint64(cfg.EdgeBytes)
		end := pe.edgeBase + uint64(spanHi)*uint64(cfg.EdgeBytes)
		for start < end {
			pageEnd := (start/edgePageBytes + 1) * edgePageBytes
			if pageEnd > end {
				pageEnd = end
			}
			ch := sys.edgeChans[pe.gpn][(start/edgePageBytes)%uint64(cfg.EdgeChannelsPerGPN)]
			t.pending++
			ch.Access(mem.Request{
				Addr:  start,
				Bytes: int(pageEnd - start),
				Kind:  mem.UsefulRead,
				Done:  t,
			})
			start = pageEnd
		}
	}
	for _, v := range verts {
		slot := int(sys.slot[v])
		lo := pe.localRowPtr[slot]
		hi := pe.localRowPtr[slot+1]
		if lo == hi {
			continue
		}
		if spanHi == lo {
			spanHi = hi
			continue
		}
		flush()
		spanLo, spanHi = lo, hi
	}
	flush()
	t.started = true
	if t.pending == 0 {
		// All chunks completed synchronously (cannot happen — channel
		// completions are always future events) — keep safe anyway.
		t.scheduleGen()
	}
}

// edgePageBytes is the interleave granularity across edge channels.
const edgePageBytes = 4096

// generateMessages applies the propagate function to every edge of the
// batch, grouping messages by destination PE so each burst is one fabric
// transfer, then frees the MGU pipeline slot. It runs from the propTask's
// genStage event, PropagateFU-rate ticks after the edge stream arrived.
func (pe *PE) generateMessages(t *propTask) {
	sys := pe.sys
	cfg := &sys.cfg
	for _, v := range t.verts {
		prop := sys.props[v]
		if sys.selfUpd != nil {
			// Delta-accumulative programs fold pending state into
			// the vertex at propagation time (and the fold is a
			// vertex write).
			sys.props[v], prop = sys.selfUpd.OnPropagate(v, sys.props[v])
			pe.markDirty(pe.vaddr(v))
		}
		if sys.prep != nil {
			prop = sys.prep.PrepareProp(v, prop)
		}
		slot := int(sys.slot[v])
		lo, hi := pe.localRowPtr[slot], pe.localRowPtr[slot+1]
		outDeg := hi - lo
		for i := lo; i < hi; i++ {
			delta, ok := sys.prog.Propagate(prop, pe.edgeWgt[i], outDeg)
			if !ok {
				continue
			}
			pe.edgesTraversed++
			pe.messagesSent++
			pe.edgesOut++
			dst := pe.edgeDst[i]
			owner := sys.part.Owner[dst]
			pe.sendBuckets[owner] = append(pe.sendBuckets[owner], program.Message{Dst: dst, Delta: delta})
		}
	}
	for owner := range pe.sendBuckets {
		batch := pe.sendBuckets[owner]
		if len(batch) == 0 {
			continue
		}
		dt := pe.newDeliverTask(sys.pes[owner], batch)
		pe.sendBuckets[owner] = batch[:0]
		if owner == pe.id {
			pe.eng.Schedule(1, dt)
		} else {
			sys.fabric.Send(pe.id, owner, len(batch)*cfg.MessageBytes, dt)
		}
	}
	sys.tracer.Span("mgu", "propagate", pe.id, t.launchTick, pe.eng.Now())
	pe.mguInflight--
	pe.releasePropTask(t)
	pe.pumpMGU()
}
