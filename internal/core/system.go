package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"nova/graph"
	"nova/internal/mem"
	"nova/internal/network"
	"nova/internal/sim"
	"nova/internal/stats"
	"nova/internal/trace"
	"nova/program"
)

// System is one assembled NOVA machine bound to a graph and a spatial
// partition. A System runs exactly one program; build a fresh one per run
// (construction is cheap relative to simulation).
//
// The machine is sharded by GPN: each GPN's PEs, VMUs, and memory
// channels run on their own sim.Engine, coordinated by a sim.Cluster
// under conservative time windows whose lookahead is the fabric's
// cross-GPN latency. cfg.Shards picks how many goroutines execute the
// shards; the decomposition itself is fixed, so results are
// bit-identical at every shard count, and a 1-GPN system degenerates to
// the classic single-event-loop sequential simulator.
type System struct {
	cfg Config
	// engines[gpn] is the event loop of GPN gpn's shard.
	engines []*sim.Engine
	cluster *sim.Cluster
	// workers is the effective worker-goroutine count (Shards clamped).
	workers int
	g       *graph.CSR
	part    *graph.Partition
	fabric  network.Fabric
	pes     []*PE
	shards  []shardState
	// slot maps a global vertex to its local slot on its owner PE.
	slot []int32
	// edgeChans[gpn] are the DDR4 channels shared by that GPN's PEs.
	edgeChans [][]*mem.Channel
	// ssds[gpn] is the GPN's out-of-core paging device (nil slice unless
	// cfg.OutOfCore). One device per GPN keeps the model shard-local.
	ssds []*mem.SSD

	// Functional state. The big per-vertex slices are shared across
	// shards but every index is written only by its owner PE's shard —
	// disjoint-index access, no locks.
	props      []program.Prop
	accum      []program.Prop
	touched    []bool
	activeFlag []bool

	prog    program.Program
	bsp     program.BSPProgram
	sched   program.ScheduledProgram
	prep    program.PropPreparer
	selfUpd program.SelfUpdating

	// Work totals, summed from the per-PE counters in collectResult (the
	// stats tree registers these fields, so they must be filled before
	// the dump).
	edgesTraversed int64
	messagesSent   int64
	coalesced      int64
	drains         int64
	epochs         int
	ran            bool

	// stats is the machine's statistics tree, built at assembly time;
	// result backs the root-level dump-time formulas once Run completes.
	stats  *stats.Group
	result *Result

	// tracer is optional; a nil tracer records nothing. Tracing requires
	// a single worker (the trace buffer is not sharded).
	tracer *trace.Tracer
}

// shardState is the per-GPN slice of the System's mutable coordination
// state. Every field is written only by the owning shard's goroutine
// during a window, or by the coordinator between windows.
type shardState struct {
	s   *System
	gpn int
	eng *sim.Engine
	pes []*PE

	// activeCount tracks this shard's active vertices (async engines).
	activeCount int64
	// touchedList collects vertices touched this epoch (BSP engines),
	// in first-touch order within the shard.
	touchedList []graph.VertexID
	// nextActive collects the next epoch's activations for this shard's
	// vertices (BSP; filled by the coordinator at the barrier).
	nextActive []graph.VertexID
	// spentDeliver parks cross-shard deliverTasks fired on this shard;
	// the window barrier returns them to their owners' pools.
	spentDeliver []*deliverTask

	// Pre-allocated kickoff/barrier events: inject activates a batch of
	// vertices at the start of a run or epoch, noopEv advances simulated
	// time to a barrier boundary. Reusing one event per purpose keeps
	// the BSP epoch loop allocation-free.
	inject   injectTask
	injectEv *sim.Event
	noopEv   *sim.Event
}

// injectTask activates its vertex batch and pumps the shard's MGUs — the
// run and epoch kickoff handler. Batches are pre-split by owner shard, so
// every activation is shard-local.
type injectTask struct {
	sh    *shardState
	verts []graph.VertexID
}

func (t *injectTask) Fire() {
	for _, v := range t.verts {
		t.sh.s.activate(v)
	}
	t.verts = t.verts[:0]
	for _, pe := range t.sh.pes {
		pe.pumpMGU()
	}
}

// noopFire is a no-op Handler for pure time-advance events.
type noopFire struct{}

func (noopFire) Fire() {}

// SetTracer attaches an activity tracer. Call before Run. Tracing is only
// supported with Shards ≤ 1.
func (s *System) SetTracer(t *trace.Tracer) { s.tracer = t }

// ErrDeadlock reports that the simulation stopped making progress while
// active vertices remained — a violation of the design's deadlock-freedom
// property, so always a model bug.
var ErrDeadlock = errors.New("core: no progress with active vertices remaining")

// NewSystem assembles a NOVA machine for the given graph. part must have
// exactly cfg.TotalPEs() parts; pass nil to use random vertex assignment
// (the paper's default).
func NewSystem(cfg Config, g *graph.CSR, part *graph.Partition) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, errors.New("core: graph has no vertices")
	}
	if part == nil {
		part = graph.PartitionRandom(g.NumVertices(), cfg.TotalPEs(), 1)
	}
	if part.Parts != cfg.TotalPEs() {
		return nil, fmt.Errorf("core: partition has %d parts, system has %d PEs", part.Parts, cfg.TotalPEs())
	}
	if part.NumVertices() != g.NumVertices() {
		return nil, fmt.Errorf("core: partition covers %d vertices, graph has %d", part.NumVertices(), g.NumVertices())
	}
	engines := make([]*sim.Engine, cfg.GPNs)
	for i := range engines {
		engines[i] = sim.NewEngine()
	}
	s := &System{
		cfg:        cfg,
		engines:    engines,
		g:          g,
		part:       part,
		shards:     make([]shardState, cfg.GPNs),
		slot:       make([]int32, g.NumVertices()),
		props:      make([]program.Prop, g.NumVertices()),
		activeFlag: make([]bool, g.NumVertices()),
	}
	for gpn := range s.shards {
		sh := &s.shards[gpn]
		sh.s = s
		sh.gpn = gpn
		sh.eng = engines[gpn]
		sh.inject.sh = sh
		sh.injectEv = sim.NewEvent(&sh.inject)
		sh.noopEv = sim.NewEvent(noopFire{})
	}
	switch cfg.Fabric {
	case FabricIdeal:
		s.fabric = network.NewIdeal(engines, cfg.PEsPerGPN, cfg.P2P.Latency)
	default:
		s.fabric = network.NewFabric(engines, cfg.PEsPerGPN, network.FabricConfig{
			P2P:      cfg.P2P,
			Crossbar: cfg.Crossbar,
			Link:     cfg.Link,
			Topology: cfg.Topology,
			Coalesce: network.CoalesceConfig{Window: cfg.CoalesceWindow, Capacity: cfg.CoalesceCapacity},
			Vertices: g.NumVertices(),
		})
	}
	s.edgeChans = make([][]*mem.Channel, cfg.GPNs)
	for gpn := range s.edgeChans {
		chans := make([]*mem.Channel, cfg.EdgeChannelsPerGPN)
		for i := range chans {
			c := cfg.EdgeChannel
			c.Name = fmt.Sprintf("ddr4-g%d-c%d", gpn, i)
			chans[i] = mem.NewChannel(engines[gpn], c)
		}
		s.edgeChans[gpn] = chans
	}
	if cfg.OutOfCore {
		s.ssds = make([]*mem.SSD, cfg.GPNs)
		for gpn := range s.ssds {
			c := cfg.SSD
			c.Name = fmt.Sprintf("ssd-g%d", gpn)
			s.ssds[gpn] = mem.NewSSD(engines[gpn], c)
		}
	}

	total := cfg.TotalPEs()
	s.pes = make([]*PE, total)
	for id := 0; id < total; id++ {
		gpn := id / cfg.PEsPerGPN
		vc := cfg.VertexChannel
		vc.Name = fmt.Sprintf("hbm2-pe%d", id)
		pe := &PE{
			sys:         s,
			sh:          &s.shards[gpn],
			eng:         engines[gpn],
			id:          id,
			gpn:         gpn,
			vchan:       mem.NewChannel(engines[gpn], vc),
			cache:       mem.NewCache(cfg.CacheBytesPerPE, cfg.BlockBytes),
			pendingFill: make(map[uint64][]program.Message),
			sendBuckets: make([][]program.Message, total),
		}
		if s.ssds != nil {
			pe.ssd = s.ssds[gpn]
		}
		s.pes[id] = pe
		s.shards[gpn].pes = append(s.shards[gpn].pes, pe)
	}
	// Place vertices: slot order is ascending global ID within each PE.
	for v := 0; v < g.NumVertices(); v++ {
		pe := s.pes[part.Owner[v]]
		s.slot[v] = int32(len(pe.localVerts))
		pe.localVerts = append(pe.localVerts, graph.VertexID(v))
	}
	// Build per-PE edge regions and wire VMUs + cache hooks.
	gpnEdgeBytes := make([]uint64, cfg.GPNs)
	for _, pe := range s.pes {
		pe.localRowPtr = make([]int64, len(pe.localVerts)+1)
		var m int64
		for i, v := range pe.localVerts {
			deg := g.OutDegree(v)
			pe.localRowPtr[i] = m
			m += deg
		}
		pe.localRowPtr[len(pe.localVerts)] = m
		pe.edgeDst = make([]graph.VertexID, m)
		pe.edgeWgt = make([]uint32, m)
		var c int64
		for _, v := range pe.localVerts {
			lo, hi := g.RowPtr[v], g.RowPtr[v+1]
			copy(pe.edgeDst[c:], g.Dst[lo:hi])
			copy(pe.edgeWgt[c:], g.Weight[lo:hi])
			c += hi - lo
		}
		pe.edgeBase = gpnEdgeBytes[pe.gpn]
		gpnEdgeBytes[pe.gpn] += uint64(m) * uint64(cfg.EdgeBytes)
		pe.vmu = newVMU(pe)
		vmu := pe.vmu
		pe.cache.OnEvict = vmu.onEvict
	}
	lookahead := s.fabric.Lookahead()
	if cfg.GPNs > 1 && lookahead == 0 {
		return nil, errors.New("core: fabric declares zero lookahead; cannot shard a multi-GPN system")
	}
	if lookahead == 0 {
		lookahead = 1 // single shard: the window bound is never exercised
	}
	workers := cfg.Shards
	if workers <= 0 {
		workers = 1
	}
	cluster, err := sim.NewCluster(engines, lookahead, workers)
	if err != nil {
		return nil, err
	}
	s.cluster = cluster
	s.workers = cluster.Workers()
	s.buildStatsTree()
	return s, nil
}

// Engine exposes the first shard's simulation engine (mainly for tests of
// single-GPN systems).
func (s *System) Engine() *sim.Engine { return s.engines[0] }

// now returns the machine time: the maximum across shard engines.
func (s *System) now() sim.Ticks { return s.cluster.Now() }

// executed returns total events executed across shards.
func (s *System) executed() uint64 { return s.cluster.Executed() }

func (s *System) totalActive() int64 {
	var n int64
	for i := range s.shards {
		n += s.shards[i].activeCount
	}
	return n
}

func (s *System) activate(v graph.VertexID) {
	if s.activeFlag[v] {
		return
	}
	s.activeFlag[v] = true
	pe := s.pes[s.part.Owner[v]]
	pe.sh.activeCount++
	pe.vmu.onActivate(v)
}

func (s *System) deactivate(v graph.VertexID) {
	if !s.activeFlag[v] {
		return
	}
	s.activeFlag[v] = false
	s.pes[s.part.Owner[v]].sh.activeCount--
}

func (s *System) inboxesEmpty() bool {
	for _, pe := range s.pes {
		if pe.inboxHead < len(pe.inbox) || len(pe.pendingFill) > 0 {
			return false
		}
	}
	return true
}

// exchange is the cluster's barrier callback: deliver buffered cross-GPN
// fabric messages, then return spent cross-shard delivery tasks to their
// owners' pools. Runs single-threaded between windows.
func (s *System) exchange() (int, error) {
	n, err := s.fabric.Exchange()
	for i := range s.shards {
		sh := &s.shards[i]
		for j, t := range sh.spentDeliver {
			o := t.owner
			t.next = o.freeDeliver
			o.freeDeliver = t
			sh.spentDeliver[j] = nil
		}
		sh.spentDeliver = sh.spentDeliver[:0]
	}
	return n, err
}

// clusterRun advances the machine until global quiescence (all shards
// idle and no buffered cross-GPN messages) or the event budget expires.
func (s *System) clusterRun(budget uint64) error {
	return s.cluster.Run(budget, s.exchange)
}

// drainCaches flushes every PE cache so active vertices parked on-chip are
// written back and tracked — the quiescence-boundary drain that preserves
// the "every active vertex is in buffer ∨ cache ∨ tracker" invariant.
func (s *System) drainCaches() {
	for _, pe := range s.pes {
		pe.cache.FlushAll()
	}
	for _, pe := range s.pes {
		pe.vmu.maybePrefetch()
		pe.pumpMGU()
	}
}

// runToQuiescence runs the event loop, draining cached activations
// whenever the machine stalls with work remaining.
func (s *System) runToQuiescence(budget uint64) error {
	for {
		if err := s.clusterRun(budget); err != nil {
			return err
		}
		if s.totalActive() == 0 && s.inboxesEmpty() {
			return nil
		}
		before := s.executed()
		s.drains++
		s.tracer.Instant("system", "drain", -1, s.now())
		s.tracer.Counter("active-vertices", s.now(), float64(s.totalActive()))
		s.drainCaches()
		if err := s.clusterRun(budget); err != nil {
			return err
		}
		if s.executed() == before && (s.totalActive() > 0 || !s.inboxesEmpty()) {
			return ErrDeadlock
		}
		if s.totalActive() == 0 && s.inboxesEmpty() {
			return nil
		}
	}
}

// Run executes the program to completion and returns the result. A System
// can run only once.
//
// ctx cancellation is observed cooperatively: each shard polls an
// interrupt every cfg.PollEvents executed events and the cluster checks it
// at every window barrier, so the run stops within one poll interval. A
// wall-clock watchdog (cfg.StallTimeout) additionally trips the interrupt
// when no progress happens at all. On any cooperative stop — cancellation,
// deadline, event-budget exhaustion, or watchdog trip — Run salvages the
// statistics accumulated so far and returns BOTH a Result marked Partial
// (with its StopReason) and the error.
func (s *System) Run(ctx context.Context, p program.Program) (*Result, error) {
	if s.ran {
		return nil, errors.New("core: System.Run called twice; build a fresh System per run")
	}
	s.ran = true
	if s.tracer != nil && s.workers > 1 {
		return nil, errors.New("core: tracing requires Shards = 1 (the trace buffer is not sharded)")
	}
	defer s.cluster.Close()

	intr := s.cfg.Observer
	if intr == nil {
		intr = sim.NewInterrupt()
	}
	s.cluster.SetInterrupt(intr, s.cfg.PollEvents)
	if ctx == nil {
		ctx = context.Background()
	}
	stopWatch := sim.WatchContext(ctx, intr)
	defer stopWatch()
	stall := s.cfg.StallTimeout
	if stall == 0 {
		stall = DefaultStallTimeout
	}
	stopDog := sim.StartWatchdog(intr, stall)
	defer stopDog()

	s.prog = p
	if bp, ok := p.(program.BSPProgram); ok && p.Mode() == program.BSP {
		s.bsp = bp
	} else if p.Mode() == program.BSP {
		return nil, fmt.Errorf("core: %s declares BSP mode but is not a BSPProgram", p.Name())
	}
	s.sched, _ = p.(program.ScheduledProgram)
	s.prep, _ = p.(program.PropPreparer)
	s.selfUpd, _ = p.(program.SelfUpdating)
	if hf, ok := s.fabric.(*network.Hierarchical); ok {
		if m, ok := p.(program.DeltaMerger); ok {
			hf.SetMerge(m.MergeDelta)
		}
	}

	for v := range s.props {
		s.props[v] = p.InitProp(graph.VertexID(v), s.g)
	}
	budget := s.cfg.MaxEvents
	if budget == 0 {
		budget = 4_000_000_000
	}

	var err error
	if s.bsp != nil {
		err = s.runBSP(budget)
	} else {
		err = s.runAsync(budget)
	}
	reason := sim.ReasonFor(err)
	if err != nil && reason == "" {
		// Non-cooperative failure (deadlock, model bug): nothing to salvage.
		return nil, err
	}
	if errors.Is(err, sim.ErrStalled) {
		err = fmt.Errorf("%w\n%s", err, s.stallSnapshot())
	}
	s.fabric.Finalize()
	// Collect first: the dump's root formulas read s.result.
	s.result = s.collectResult()
	s.result.Partial = reason != ""
	s.result.StopReason = reason
	s.result.Dump = s.stats.Dump(map[string]string{
		"engine":  "nova",
		"program": p.Name(),
		"graph":   s.g.Name,
		"shards":  strconv.Itoa(s.workers),
	})
	return s.result, err
}

// stallSnapshot renders the watchdog's diagnostic: machine time, executed
// events, remaining work, and each shard's position. Built single-threaded
// after the cluster stops, so it reads shard state race-free.
func (s *System) stallSnapshot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stall snapshot: tick=%d executed=%d active=%d drains=%d epochs=%d",
		s.now(), s.executed(), s.totalActive(), s.drains, s.epochs)
	for i, e := range s.engines {
		b.WriteString("\n  ")
		fmt.Fprintf(&b, "shard %d: now=%d executed=%d pending=%d", i, e.Now(), e.Executed(), e.Pending())
		if head, ok := e.NextWhen(); ok {
			fmt.Fprintf(&b, " head=%d", head)
		} else {
			b.WriteString(" head=<empty>")
		}
	}
	return b.String()
}

// scheduleInjects splits a vertex batch by owner shard and schedules each
// shard's inject kickoff at zero delay.
func (s *System) scheduleInjects(verts []graph.VertexID) {
	for _, v := range verts {
		sh := s.pes[s.part.Owner[v]].sh
		sh.inject.verts = append(sh.inject.verts, v)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		if len(sh.inject.verts) > 0 {
			sh.eng.ScheduleEvent(sh.injectEv, 0)
		}
	}
}

func (s *System) runAsync(budget uint64) error {
	s.scheduleInjects(s.prog.InitActive(s.g))
	return s.runToQuiescence(budget)
}

func (s *System) runBSP(budget uint64) error {
	s.accum = make([]program.Prop, s.g.NumVertices())
	s.touched = make([]bool, s.g.NumVertices())

	inSet := make([]bool, s.g.NumVertices())
	totalNext := 0
	add := func(v graph.VertexID) {
		if !inSet[v] {
			inSet[v] = true
			sh := s.pes[s.part.Owner[v]].sh
			sh.nextActive = append(sh.nextActive, v)
			totalNext++
		}
	}
	for _, v := range s.prog.InitActive(s.g) {
		add(v)
	}
	if s.sched != nil {
		for _, v := range s.sched.EpochActive(0, s.g) {
			add(v)
		}
	}

	for epoch := 0; totalNext > 0; epoch++ {
		if m := s.bsp.MaxEpochs(); m > 0 && epoch >= m {
			break
		}
		s.epochs++
		// Inject the epoch's active set through the VMU and run the
		// propagate→reduce pipeline to quiescence. The sets are already
		// split by shard.
		for i := range s.shards {
			sh := &s.shards[i]
			if len(sh.nextActive) == 0 {
				continue
			}
			sh.inject.verts = append(sh.inject.verts[:0], sh.nextActive...)
			for _, v := range sh.nextActive {
				inSet[v] = false
			}
			sh.nextActive = sh.nextActive[:0]
			sh.eng.ScheduleEvent(sh.injectEv, 0)
		}
		totalNext = 0
		if err := s.runToQuiescence(budget); err != nil {
			return err
		}
		touchedTotal := 0
		for i := range s.shards {
			touchedTotal += len(s.shards[i].touchedList)
		}
		s.tracer.Instant("bsp", "barrier", -1, s.now())
		s.tracer.Counter("touched-vertices", s.now(), float64(touchedTotal))
		// Barrier: the apply sweep reads and rewrites every touched
		// vertex record (bulk, sequential per PE).
		touchedPerPE := make([]int64, len(s.pes))
		for i := range s.shards {
			for _, v := range s.shards[i].touchedList {
				touchedPerPE[s.part.Owner[v]]++
			}
		}
		barrierEnd := s.now()
		for i, pe := range s.pes {
			bytes := touchedPerPE[i] * int64(s.cfg.VertexBytes)
			if bytes == 0 {
				continue
			}
			t := pe.vchan.BulkTransfer(bytes, mem.UsefulRead)
			if t2 := pe.vchan.BulkTransfer(bytes, mem.WriteAccess); t2 > t {
				t = t2
			}
			if t > barrierEnd {
				barrierEnd = t
			}
		}
		// Apply in shard order, first-touch order within each shard —
		// the fixed merge order that keeps the sweep deterministic.
		for i := range s.shards {
			sh := &s.shards[i]
			for _, v := range sh.touchedList {
				newProp, activateNext := s.bsp.Apply(v, s.props[v], s.accum[v], s.g)
				s.props[v] = newProp
				s.touched[v] = false
				if activateNext {
					add(v)
				}
			}
			sh.touchedList = sh.touchedList[:0]
		}
		if s.sched != nil {
			for _, v := range s.sched.EpochActive(epoch+1, s.g) {
				add(v)
			}
		}
		// Advance every shard's simulated time to the end of the apply
		// sweep, then to the common barrier boundary.
		for i := range s.shards {
			s.shards[i].eng.ScheduleEvent(s.shards[i].noopEv, 0)
		}
		if err := s.clusterRun(budget); err != nil {
			return err
		}
		scheduled := false
		for i := range s.shards {
			sh := &s.shards[i]
			if barrierEnd > sh.eng.Now() {
				sh.eng.ScheduleEventAt(sh.noopEv, barrierEnd)
				scheduled = true
			}
		}
		if scheduled {
			if err := s.clusterRun(budget); err != nil {
				return err
			}
		}
	}
	return nil
}
