package core

import (
	"errors"
	"fmt"

	"nova/graph"
	"nova/internal/mem"
	"nova/internal/network"
	"nova/internal/sim"
	"nova/internal/stats"
	"nova/internal/trace"
	"nova/program"
)

// System is one assembled NOVA machine bound to a graph and a spatial
// partition. A System runs exactly one program; build a fresh one per run
// (construction is cheap relative to simulation).
type System struct {
	cfg    Config
	eng    *sim.Engine
	g      *graph.CSR
	part   *graph.Partition
	fabric network.Fabric
	pes    []*PE
	// slot maps a global vertex to its local slot on its owner PE.
	slot []int32
	// edgeChans[gpn] are the DDR4 channels shared by that GPN's PEs.
	edgeChans [][]*mem.Channel

	// Functional state.
	props       []program.Prop
	accum       []program.Prop
	touched     []bool
	touchedList []graph.VertexID
	activeFlag  []bool
	activeCount int64

	prog    program.Program
	bsp     program.BSPProgram
	sched   program.ScheduledProgram
	prep    program.PropPreparer
	selfUpd program.SelfUpdating

	edgesTraversed int64
	messagesSent   int64
	coalesced      int64
	drains         int64
	epochs         int
	ran            bool

	// stats is the machine's statistics tree, built at assembly time;
	// result backs the root-level dump-time formulas once Run completes.
	stats  *stats.Group
	result *Result

	// tracer is optional; a nil tracer records nothing.
	tracer *trace.Tracer

	// Pre-allocated kickoff/barrier events: inject activates a batch of
	// vertices at tick 0 of a run or epoch, noopEv advances simulated time
	// to a barrier boundary. Reusing one event per purpose keeps the BSP
	// epoch loop allocation-free.
	inject   injectTask
	injectEv *sim.Event
	noopEv   *sim.Event
}

// injectTask activates its vertex batch and pumps every MGU — the run and
// epoch kickoff handler.
type injectTask struct {
	s     *System
	verts []graph.VertexID
}

func (t *injectTask) Fire() {
	s := t.s
	for _, v := range t.verts {
		s.activate(v)
	}
	t.verts = t.verts[:0]
	for _, pe := range s.pes {
		pe.pumpMGU()
	}
}

// noopFire is a no-op Handler for pure time-advance events.
type noopFire struct{}

func (noopFire) Fire() {}

// SetTracer attaches an activity tracer. Call before Run.
func (s *System) SetTracer(t *trace.Tracer) { s.tracer = t }

// ErrDeadlock reports that the simulation stopped making progress while
// active vertices remained — a violation of the design's deadlock-freedom
// property, so always a model bug.
var ErrDeadlock = errors.New("core: no progress with active vertices remaining")

// NewSystem assembles a NOVA machine for the given graph. part must have
// exactly cfg.TotalPEs() parts; pass nil to use random vertex assignment
// (the paper's default).
func NewSystem(cfg Config, g *graph.CSR, part *graph.Partition) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.NumVertices() == 0 {
		return nil, errors.New("core: graph has no vertices")
	}
	if part == nil {
		part = graph.PartitionRandom(g.NumVertices(), cfg.TotalPEs(), 1)
	}
	if part.Parts != cfg.TotalPEs() {
		return nil, fmt.Errorf("core: partition has %d parts, system has %d PEs", part.Parts, cfg.TotalPEs())
	}
	if part.NumVertices() != g.NumVertices() {
		return nil, fmt.Errorf("core: partition covers %d vertices, graph has %d", part.NumVertices(), g.NumVertices())
	}
	eng := sim.NewEngine()
	s := &System{
		cfg:        cfg,
		eng:        eng,
		g:          g,
		part:       part,
		slot:       make([]int32, g.NumVertices()),
		props:      make([]program.Prop, g.NumVertices()),
		activeFlag: make([]bool, g.NumVertices()),
	}
	switch cfg.Fabric {
	case FabricIdeal:
		s.fabric = network.NewIdeal(eng, cfg.P2P.Latency)
	default:
		s.fabric = network.NewHierarchical(eng, cfg.GPNs, cfg.PEsPerGPN, cfg.P2P, cfg.Crossbar)
	}
	s.edgeChans = make([][]*mem.Channel, cfg.GPNs)
	for gpn := range s.edgeChans {
		chans := make([]*mem.Channel, cfg.EdgeChannelsPerGPN)
		for i := range chans {
			c := cfg.EdgeChannel
			c.Name = fmt.Sprintf("ddr4-g%d-c%d", gpn, i)
			chans[i] = mem.NewChannel(eng, c)
		}
		s.edgeChans[gpn] = chans
	}

	total := cfg.TotalPEs()
	s.pes = make([]*PE, total)
	for id := 0; id < total; id++ {
		vc := cfg.VertexChannel
		vc.Name = fmt.Sprintf("hbm2-pe%d", id)
		pe := &PE{
			sys:         s,
			id:          id,
			gpn:         id / cfg.PEsPerGPN,
			vchan:       mem.NewChannel(eng, vc),
			cache:       mem.NewCache(cfg.CacheBytesPerPE, cfg.BlockBytes),
			pendingFill: make(map[uint64][]program.Message),
			sendBuckets: make([][]program.Message, total),
		}
		s.pes[id] = pe
	}
	// Place vertices: slot order is ascending global ID within each PE.
	for v := 0; v < g.NumVertices(); v++ {
		pe := s.pes[part.Owner[v]]
		s.slot[v] = int32(len(pe.localVerts))
		pe.localVerts = append(pe.localVerts, graph.VertexID(v))
	}
	// Build per-PE edge regions and wire VMUs + cache hooks.
	gpnEdgeBytes := make([]uint64, cfg.GPNs)
	for _, pe := range s.pes {
		pe.localRowPtr = make([]int64, len(pe.localVerts)+1)
		var m int64
		for i, v := range pe.localVerts {
			deg := g.OutDegree(v)
			pe.localRowPtr[i] = m
			m += deg
		}
		pe.localRowPtr[len(pe.localVerts)] = m
		pe.edgeDst = make([]graph.VertexID, m)
		pe.edgeWgt = make([]uint32, m)
		var c int64
		for _, v := range pe.localVerts {
			lo, hi := g.RowPtr[v], g.RowPtr[v+1]
			copy(pe.edgeDst[c:], g.Dst[lo:hi])
			copy(pe.edgeWgt[c:], g.Weight[lo:hi])
			c += hi - lo
		}
		pe.edgeBase = gpnEdgeBytes[pe.gpn]
		gpnEdgeBytes[pe.gpn] += uint64(m) * uint64(cfg.EdgeBytes)
		pe.vmu = newVMU(pe)
		vmu := pe.vmu
		pe.cache.OnEvict = vmu.onEvict
	}
	s.inject.s = s
	s.injectEv = sim.NewEvent(&s.inject)
	s.noopEv = sim.NewEvent(noopFire{})
	s.buildStatsTree()
	return s, nil
}

// Engine exposes the simulation engine (mainly for tests).
func (s *System) Engine() *sim.Engine { return s.eng }

func (s *System) activate(v graph.VertexID) {
	if s.activeFlag[v] {
		return
	}
	s.activeFlag[v] = true
	s.activeCount++
	s.pes[s.part.Owner[v]].vmu.onActivate(v)
}

func (s *System) deactivate(v graph.VertexID) {
	if !s.activeFlag[v] {
		return
	}
	s.activeFlag[v] = false
	s.activeCount--
}

func (s *System) inboxesEmpty() bool {
	for _, pe := range s.pes {
		if pe.inboxHead < len(pe.inbox) || len(pe.pendingFill) > 0 {
			return false
		}
	}
	return true
}

// drainCaches flushes every PE cache so active vertices parked on-chip are
// written back and tracked — the quiescence-boundary drain that preserves
// the "every active vertex is in buffer ∨ cache ∨ tracker" invariant.
func (s *System) drainCaches() {
	for _, pe := range s.pes {
		pe.cache.FlushAll()
	}
	for _, pe := range s.pes {
		pe.vmu.maybePrefetch()
		pe.pumpMGU()
	}
}

// runToQuiescence runs the event loop, draining cached activations
// whenever the machine stalls with work remaining.
func (s *System) runToQuiescence(budget uint64) error {
	for {
		if err := s.eng.RunUntilQuiet(budget); err != nil {
			return err
		}
		if s.activeCount == 0 && s.inboxesEmpty() {
			return nil
		}
		before := s.eng.Executed()
		s.drains++
		s.tracer.Instant("system", "drain", -1, s.eng.Now())
		s.tracer.Counter("active-vertices", s.eng.Now(), float64(s.activeCount))
		s.drainCaches()
		if err := s.eng.RunUntilQuiet(budget); err != nil {
			return err
		}
		if s.eng.Executed() == before && (s.activeCount > 0 || !s.inboxesEmpty()) {
			return ErrDeadlock
		}
		if s.activeCount == 0 && s.inboxesEmpty() {
			return nil
		}
	}
}

// Run executes the program to completion and returns the result. A System
// can run only once.
func (s *System) Run(p program.Program) (*Result, error) {
	if s.ran {
		return nil, errors.New("core: System.Run called twice; build a fresh System per run")
	}
	s.ran = true
	s.prog = p
	if bp, ok := p.(program.BSPProgram); ok && p.Mode() == program.BSP {
		s.bsp = bp
	} else if p.Mode() == program.BSP {
		return nil, fmt.Errorf("core: %s declares BSP mode but is not a BSPProgram", p.Name())
	}
	s.sched, _ = p.(program.ScheduledProgram)
	s.prep, _ = p.(program.PropPreparer)
	s.selfUpd, _ = p.(program.SelfUpdating)

	for v := range s.props {
		s.props[v] = p.InitProp(graph.VertexID(v), s.g)
	}
	budget := s.cfg.MaxEvents
	if budget == 0 {
		budget = 4_000_000_000
	}

	var err error
	if s.bsp != nil {
		err = s.runBSP(budget)
	} else {
		err = s.runAsync(budget)
	}
	if err != nil {
		return nil, err
	}
	// Collect first: the dump's root formulas read s.result.
	s.result = s.collectResult()
	s.result.Dump = s.stats.Dump(map[string]string{
		"engine":  "nova",
		"program": p.Name(),
		"graph":   s.g.Name,
	})
	return s.result, nil
}

func (s *System) runAsync(budget uint64) error {
	s.inject.verts = append(s.inject.verts[:0], s.prog.InitActive(s.g)...)
	s.eng.ScheduleEvent(s.injectEv, 0)
	return s.runToQuiescence(budget)
}

func (s *System) runBSP(budget uint64) error {
	s.accum = make([]program.Prop, s.g.NumVertices())
	s.touched = make([]bool, s.g.NumVertices())

	inSet := make([]bool, s.g.NumVertices())
	var active []graph.VertexID
	add := func(v graph.VertexID) {
		if !inSet[v] {
			inSet[v] = true
			active = append(active, v)
		}
	}
	for _, v := range s.prog.InitActive(s.g) {
		add(v)
	}
	if s.sched != nil {
		for _, v := range s.sched.EpochActive(0, s.g) {
			add(v)
		}
	}

	for epoch := 0; len(active) > 0; epoch++ {
		if m := s.bsp.MaxEpochs(); m > 0 && epoch >= m {
			break
		}
		s.epochs++
		// Inject the epoch's active set through the VMU and run the
		// propagate→reduce pipeline to quiescence.
		s.inject.verts = append(s.inject.verts[:0], active...)
		for _, v := range active {
			inSet[v] = false
		}
		active = active[:0]
		s.eng.ScheduleEvent(s.injectEv, 0)
		if err := s.runToQuiescence(budget); err != nil {
			return err
		}
		s.tracer.Instant("bsp", "barrier", -1, s.eng.Now())
		s.tracer.Counter("touched-vertices", s.eng.Now(), float64(len(s.touchedList)))
		// Barrier: the apply sweep reads and rewrites every touched
		// vertex record (bulk, sequential per PE).
		touchedPerPE := make([]int64, len(s.pes))
		for _, v := range s.touchedList {
			touchedPerPE[s.part.Owner[v]]++
		}
		barrierEnd := s.eng.Now()
		for i, pe := range s.pes {
			bytes := touchedPerPE[i] * int64(s.cfg.VertexBytes)
			if bytes == 0 {
				continue
			}
			t := pe.vchan.BulkTransfer(bytes, mem.UsefulRead)
			if t2 := pe.vchan.BulkTransfer(bytes, mem.WriteAccess); t2 > t {
				t = t2
			}
			if t > barrierEnd {
				barrierEnd = t
			}
		}
		for _, v := range s.touchedList {
			newProp, activateNext := s.bsp.Apply(v, s.props[v], s.accum[v], s.g)
			s.props[v] = newProp
			s.touched[v] = false
			if activateNext {
				add(v)
			}
		}
		s.touchedList = s.touchedList[:0]
		if s.sched != nil {
			for _, v := range s.sched.EpochActive(epoch+1, s.g) {
				add(v)
			}
		}
		// Advance simulated time to the end of the apply sweep.
		s.eng.ScheduleEvent(s.noopEv, 0)
		if err := s.eng.Run(0, budget); err != nil {
			return err
		}
		if barrierEnd > s.eng.Now() {
			s.eng.ScheduleEventAt(s.noopEv, barrierEnd)
			if err := s.eng.Run(0, budget); err != nil {
				return err
			}
		}
	}
	return nil
}
