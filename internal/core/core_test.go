package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nova/graph"
	"nova/internal/ref"
	"nova/program"
)

// testConfig returns a small 2-GPN × 2-PE system for fast tests.
func testConfig() Config {
	cfg := DefaultConfig(2)
	cfg.PEsPerGPN = 2
	cfg.CacheBytesPerPE = 4 << 10
	cfg.SuperblockDim = 16
	cfg.ActiveBufferEntries = 16
	cfg.PrefetchBatch = 4
	return cfg
}

func runOn(t *testing.T, cfg Config, g *graph.CSR, p program.Program) *Result {
	t.Helper()
	sys, err := NewSystem(cfg, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(context.Background(), p)
	if err != nil {
		t.Fatalf("run %s on %s: %v", p.Name(), g.Name, err)
	}
	return res
}

func randGraph(seed int64, n, m int) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    graph.VertexID(rng.Intn(n)),
			Dst:    graph.VertexID(rng.Intn(n)),
			Weight: uint32(1 + rng.Intn(8)),
		}
	}
	return graph.FromEdges("rand", n, edges)
}

func distsOf(props []program.Prop) []int64 {
	out := make([]int64, len(props))
	for i, p := range props {
		if p == program.Inf {
			out[i] = ref.Unreached
		} else {
			out[i] = int64(p)
		}
	}
	return out
}

func TestNOVABFSMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 120, 700)
		root := g.LargestOutDegreeVertex()
		res := runOn(t, testConfig(), g, program.NewBFS(root))
		want := ref.BFS(g, root)
		got := distsOf(res.Props)
		for v := range want {
			if got[v] != want[v] {
				t.Logf("seed %d vertex %d: got %d want %d", seed, v, got[v], want[v])
				return false
			}
		}
		return res.Ticks > 0 && res.Stats.EdgesTraversed > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestNOVASSSPMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 100, 600)
		root := g.LargestOutDegreeVertex()
		res := runOn(t, testConfig(), g, program.NewSSSP(root))
		want := ref.SSSP(g, root)
		got := distsOf(res.Props)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestNOVACCMatchesOracle(t *testing.T) {
	g := randGraph(11, 150, 400).Symmetrize()
	res := runOn(t, testConfig(), g, program.NewCC())
	want := ref.CC(g)
	for v := range want {
		if int64(res.Props[v]) != want[v] {
			t.Fatalf("vertex %d: label %d, want %d", v, res.Props[v], want[v])
		}
	}
}

func TestNOVAPageRankMatchesOracle(t *testing.T) {
	g := graph.GenRMAT("r", 8, 8, graph.DefaultRMAT, 1, 5)
	res := runOn(t, testConfig(), g, program.NewPageRank(0.85, 5))
	want := ref.PageRank(g, 0.85, 5)
	for v := range want {
		if math.Abs(res.Props[v].Float()-want[v]) > 1e-9 {
			t.Fatalf("vertex %d: rank %v, want %v", v, res.Props[v].Float(), want[v])
		}
	}
	if res.Stats.Epochs != 5 {
		t.Fatalf("epochs = %d, want 5", res.Stats.Epochs)
	}
}

type sysRunner struct {
	t   *testing.T
	cfg Config
}

func (r sysRunner) RunProgram(p program.Program, g *graph.CSR) ([]program.Prop, program.RunStats, error) {
	sys, err := NewSystem(r.cfg, g, nil)
	if err != nil {
		return nil, program.RunStats{}, err
	}
	res, err := sys.Run(context.Background(), p)
	if err != nil {
		return nil, program.RunStats{}, err
	}
	return res.Props, res.Stats, nil
}

func TestNOVABCMatchesBrandes(t *testing.T) {
	g := randGraph(5, 80, 300)
	gT := g.Transpose()
	root := g.LargestOutDegreeVertex()
	scores, stats, err := program.RunBC(sysRunner{t, testConfig()}, g, gT, root)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.BC(g, root)
	for v := range want {
		tol := 1e-3 * (1 + math.Abs(want[v]))
		if math.Abs(scores[v]-want[v]) > tol {
			t.Fatalf("vertex %d: δ %v, want %v", v, scores[v], want[v])
		}
	}
	if stats.SimSeconds <= 0 {
		t.Fatal("BC reported no simulated time")
	}
}

func TestNOVAFIFOSpillPolicyCorrect(t *testing.T) {
	cfg := testConfig()
	cfg.Spill = SpillFIFO
	cfg.ActiveBufferEntries = 8
	cfg.PrefetchBatch = 4
	g := randGraph(23, 120, 700)
	root := g.LargestOutDegreeVertex()
	res := runOn(t, cfg, g, program.NewSSSP(root))
	want := ref.SSSP(g, root)
	got := distsOf(res.Props)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("FIFO policy wrong at %d: %d want %d", v, got[v], want[v])
		}
	}
	if res.VMU.SpillWrites == 0 {
		t.Fatal("FIFO policy recorded no spill writes on an overflowing run")
	}
	if res.VMU.SpillWrites != res.VMU.Spills {
		t.Fatalf("FIFO: %d spill writes for %d spills, want 1 per spill", res.VMU.SpillWrites, res.VMU.Spills)
	}
}

func TestOverwritePolicyNoExtraWrites(t *testing.T) {
	cfg := testConfig()
	cfg.ActiveBufferEntries = 8
	cfg.PrefetchBatch = 4
	g := randGraph(23, 200, 1200)
	res := runOn(t, cfg, g, program.NewCC().(program.Program))
	if res.VMU.Spills == 0 {
		t.Fatal("expected spills with an 8-entry buffer and all-active CC")
	}
	if res.VMU.SpillWrites != 0 {
		t.Fatalf("overwrite policy charged %d extra spill writes, want 0 (Table I)", res.VMU.SpillWrites)
	}
	if res.VMU.MetadataBytes != 0 {
		t.Fatalf("overwrite policy claims %d metadata bytes, want 0", res.VMU.MetadataBytes)
	}
}

func TestTrackerInvariants(t *testing.T) {
	// After any run: counters are zero and consistent (everything was
	// recovered), and counter[sb] always equals tracked bits. Check at
	// the end — no active work may remain.
	g := randGraph(31, 300, 2000)
	sys, err := NewSystem(testConfig(), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(context.Background(), program.NewBFS(g.LargestOutDegreeVertex())); err != nil {
		t.Fatal(err)
	}
	if n := sys.totalActive(); n != 0 {
		t.Fatalf("activeCount = %d after completion", n)
	}
	for _, pe := range sys.pes {
		u := pe.vmu
		if u.trackedTotal != 0 {
			t.Fatalf("PE %d: trackedTotal = %d at quiescence", pe.id, u.trackedTotal)
		}
		for sb, c := range u.counters {
			if c != 0 {
				t.Fatalf("PE %d: counter[%d] = %d at quiescence", pe.id, sb, c)
			}
		}
		if u.bufferLen() != 0 {
			t.Fatalf("PE %d: %d buffer entries left", pe.id, u.bufferLen())
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (*Result, int64) {
		g := randGraph(7, 150, 900)
		sys, err := NewSystem(testConfig(), g, graph.PartitionRandom(g.NumVertices(), 4, 3))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(context.Background(), program.NewSSSP(g.LargestOutDegreeVertex()))
		if err != nil {
			t.Fatal(err)
		}
		return res, int64(sys.executed())
	}
	a, ea := run()
	b, eb := run()
	if a.Ticks != b.Ticks || ea != eb ||
		a.Stats.EdgesTraversed != b.Stats.EdgesTraversed ||
		a.Stats.MessagesCoalesced != b.Stats.MessagesCoalesced {
		t.Fatalf("nondeterministic: ticks %d/%d events %d/%d edges %d/%d",
			a.Ticks, b.Ticks, ea, eb, a.Stats.EdgesTraversed, b.Stats.EdgesTraversed)
	}
}

func TestResultAccountingSane(t *testing.T) {
	g := graph.GenRMAT("r", 9, 10, graph.DefaultRMAT, 64, 2)
	res := runOn(t, testConfig(), g, program.NewSSSP(g.LargestOutDegreeVertex()))
	if res.Stats.SimSeconds <= 0 {
		t.Fatal("no simulated time")
	}
	u, w, waste := res.VertexBWFractions()
	for _, f := range []float64{u, w, waste} {
		if f < 0 || f > 1 {
			t.Fatalf("bandwidth fraction %v out of [0,1] (u=%v w=%v waste=%v)", f, u, w, waste)
		}
	}
	if u+w+waste > 1.0001 {
		t.Fatalf("bandwidth fractions sum to %v > 1", u+w+waste)
	}
	if res.EdgeUtilization < 0 || res.EdgeUtilization > 1.0001 {
		t.Fatalf("edge utilization %v out of range", res.EdgeUtilization)
	}
	if res.ProcessingSeconds+res.OverheadSeconds > res.Stats.SimSeconds*1.0001 {
		t.Fatal("time breakdown exceeds total")
	}
	seq := ref.SequentialEdges(g, g.LargestOutDegreeVertex(), "sssp", 0)
	we := res.Stats.WorkEfficiency(seq)
	if we <= 0 || we > 1.0001 {
		t.Fatalf("work efficiency %v out of (0,1]", we)
	}
	if res.OnChipBytes <= 0 {
		t.Fatal("on-chip bytes not computed")
	}
}

func TestIdealFabricFasterOrEqual(t *testing.T) {
	g := graph.GenRMAT("r", 10, 12, graph.DefaultRMAT, 1, 4)
	root := g.LargestOutDegreeVertex()
	cfgH := testConfig()
	cfgI := testConfig()
	cfgI.Fabric = FabricIdeal
	h := runOn(t, cfgH, g, program.NewBFS(root))
	i := runOn(t, cfgI, g, program.NewBFS(root))
	if i.Ticks > h.Ticks {
		t.Fatalf("ideal fabric slower than hierarchical: %d vs %d", i.Ticks, h.Ticks)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig(1)
	bad.PrefetchBatch = 1000
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized prefetch batch validated")
	}
	bad = DefaultConfig(0)
	if err := bad.Validate(); err == nil {
		t.Fatal("0 GPNs validated")
	}
}

func TestTrackerCapacityEquation(t *testing.T) {
	// Paper example: WDC12-scale per-PE memory with superblock_dim=128,
	// block 32 B: tracker must be ~27× smaller than a per-vertex bit
	// vector. Check Eq. 1/2 directly on a smaller instance.
	cfg := DefaultConfig(1)
	verts := 1 << 20
	bits := cfg.TrackerBitsPerPE(verts)
	// num_superblocks = V*16 / (128*32) = V/256; bits = 8 per superblock.
	wantSB := int64(verts) * 16 / (128 * 32)
	if bits != wantSB*8 {
		t.Fatalf("tracker bits = %d, want %d", bits, wantSB*8)
	}
	bitVector := int64(verts) // 1 bit per vertex
	if ratio := float64(bitVector) / float64(bits); ratio < 30 {
		t.Fatalf("tracker only %.1fx smaller than bit vector", ratio)
	}
}

func TestRunTwiceFails(t *testing.T) {
	g := randGraph(1, 20, 40)
	sys, err := NewSystem(testConfig(), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(context.Background(), program.NewBFS(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(context.Background(), program.NewBFS(0)); err == nil {
		t.Fatal("second Run did not fail")
	}
}

func TestPartitionMismatchRejected(t *testing.T) {
	g := randGraph(1, 20, 40)
	if _, err := NewSystem(testConfig(), g, graph.PartitionInterleave(20, 3)); err == nil {
		t.Fatal("partition/PE mismatch accepted")
	}
	if _, err := NewSystem(testConfig(), g, graph.PartitionInterleave(10, 4)); err == nil {
		t.Fatal("partition vertex-count mismatch accepted")
	}
}

func TestTinyBufferStillCorrect(t *testing.T) {
	// Stress the spill/recover path: a 2-entry active buffer forces
	// nearly every activation through the tracker.
	cfg := testConfig()
	cfg.ActiveBufferEntries = 2
	cfg.PrefetchBatch = 2
	g := randGraph(17, 100, 600)
	root := g.LargestOutDegreeVertex()
	res := runOn(t, cfg, g, program.NewBFS(root))
	want := ref.BFS(g, root)
	got := distsOf(res.Props)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("tiny buffer wrong at %d", v)
		}
	}
	if res.VMU.Spills == 0 {
		t.Fatal("tiny buffer produced no spills")
	}
	if res.VertexWastefulBytes == 0 {
		t.Fatal("recovery produced no wasteful reads — tracker never searched")
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g := graph.FromEdges("one", 1, nil)
	res := runOn(t, testConfig(), g, program.NewBFS(0))
	if res.Props[0] != 0 {
		t.Fatalf("root prop = %d", res.Props[0])
	}
}
