package core

import (
	"context"
	"testing"

	"nova/graph"
	"nova/internal/ref"
	"nova/internal/sim"
	"nova/program"
)

// TestMidRunTrackerInvariants schedules a recurring checker INSIDE the
// simulation that verifies, at many points during execution:
//
//  1. every superblock counter equals the number of tracked bits in it;
//  2. every active (flagged) vertex is reachable: its block is in the
//     active buffer, tracked in memory, in flight in a prefetch, or its
//     PE has pending recovery work — the paper's deadlock-freedom
//     condition;
//  3. counters never go negative.
func TestMidRunTrackerInvariants(t *testing.T) {
	g := randGraph(99, 400, 3000)
	cfg := testConfig()
	cfg.ActiveBufferEntries = 8
	cfg.PrefetchBatch = 4
	sys, err := NewSystem(cfg, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	checks := 0
	var check func()
	check = func() {
		checks++
		for _, pe := range sys.pes {
			u := pe.vmu
			// (1) counter consistency.
			perSB := make([]int32, len(u.counters))
			total := 0
			for bi := 0; bi < pe.numBlocks(); bi++ {
				if u.tracked.get(bi) {
					perSB[bi/cfg.SuperblockDim]++
					total++
				}
			}
			for sb, c := range u.counters {
				if c != perSB[sb] {
					t.Fatalf("PE %d superblock %d: counter %d != tracked bits %d",
						pe.id, sb, c, perSB[sb])
				}
				if c < 0 {
					t.Fatalf("PE %d superblock %d: negative counter", pe.id, sb)
				}
			}
			if total != u.trackedTotal {
				t.Fatalf("PE %d: trackedTotal %d != bits %d", pe.id, u.trackedTotal, total)
			}
		}
		// (2) every flagged vertex is recoverable.
		for v := 0; v < g.NumVertices(); v++ {
			if !sys.activeFlag[v] {
				continue
			}
			pe := sys.pes[sys.part.Owner[v]]
			u := pe.vmu
			bi := pe.blockIndex(pe.vertexBlockAddr(graph.VertexID(v)))
			if !u.inBuffer.get(bi) && !u.tracked.get(bi) && u.inflightPrefetch == 0 &&
				!pe.cache.Contains(pe.vertexBlockAddr(graph.VertexID(v))) {
				t.Fatalf("active vertex %d unreachable: not buffered, tracked, cached or in flight", v)
			}
		}
		pending := 0
		for _, e := range sys.engines {
			pending += e.Pending()
		}
		if pending > 0 { // this checker already popped; any event counts
			sys.Engine().ScheduleFunc(sim.Ticks(500), check)
		}
	}
	sys.Engine().ScheduleFunc(100, check)
	if _, err := sys.Run(context.Background(), program.NewSSSP(g.LargestOutDegreeVertex())); err != nil {
		t.Fatal(err)
	}
	if checks < 10 {
		t.Fatalf("checker ran only %d times; the run was too short to exercise invariants", checks)
	}
}

// TestBSPEpochBarrierAdvancesTime verifies the apply sweep costs time:
// a PR run must spend strictly more cycles than epochs alone demand and
// produce monotone simulated time across epochs.
func TestBSPEpochBarrierAdvancesTime(t *testing.T) {
	g := randGraph(4, 200, 1200)
	res := runOn(t, testConfig(), g, program.NewPageRank(0.85, 4))
	if res.Stats.Epochs != 4 {
		t.Fatalf("epochs = %d", res.Stats.Epochs)
	}
	if res.Ticks < 4 {
		t.Fatal("BSP run took no time")
	}
	// Written bytes must include the apply sweeps (read+write per
	// touched vertex per epoch).
	if res.VertexWrittenBytes == 0 {
		t.Fatal("apply sweeps recorded no vertex writes")
	}
}

// TestFIFOStaleRetrievals forces duplicate FIFO entries and checks the
// Table I "no coalescing in the off-chip buffer" cost is measured.
func TestFIFOStaleRetrievals(t *testing.T) {
	cfg := testConfig()
	cfg.Spill = SpillFIFO
	cfg.ActiveBufferEntries = 4
	cfg.PrefetchBatch = 2
	// CC activates every vertex repeatedly: plenty of duplicates.
	g := randGraph(41, 300, 1800).Symmetrize()
	sys, err := NewSystem(cfg, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(context.Background(), program.NewCC())
	if err != nil {
		t.Fatal(err)
	}
	if res.VMU.StaleRetrievals == 0 {
		t.Fatal("FIFO policy produced no stale retrievals on CC")
	}
	if res.VMU.MetadataBytes == 0 {
		t.Fatal("FIFO policy tracked no metadata bytes")
	}
}

// TestMSHRMergesSecondaryMisses: many messages to one hub vertex must not
// issue one memory read each.
func TestMSHRMergesSecondaryMisses(t *testing.T) {
	// Star: 500 spokes all pointing at vertex 0.
	edges := make([]graph.Edge, 0, 1000)
	for i := 1; i <= 500; i++ {
		edges = append(edges, graph.Edge{Src: 501, Dst: graph.VertexID(i), Weight: 1})
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: 0, Weight: uint32(i)})
	}
	g := graph.FromEdges("star", 502, edges)
	cfg := testConfig()
	sys, err := NewSystem(cfg, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(context.Background(), program.NewSSSP(501))
	if err != nil {
		t.Fatal(err)
	}
	hubOwner := sys.pes[sys.part.Owner[0]]
	reads := hubOwner.vchan.Stats().Reads
	// 500 messages target vertex 0; without MSHR merging the hub PE
	// would issue ≥500 reads. With merging it needs far fewer.
	if reads > 400 {
		t.Fatalf("hub PE issued %d vertex reads for ~500 hub messages: secondary misses not merging", reads)
	}
	_ = res
}

// TestOnChipBytesMatchesEquation cross-checks Result.OnChipBytes against
// Eq. 1/2 applied to the largest PE.
func TestOnChipBytesMatchesEquation(t *testing.T) {
	g := randGraph(8, 500, 2000)
	cfg := testConfig()
	sys, err := NewSystem(cfg, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(context.Background(), program.NewBFS(g.LargestOutDegreeVertex()))
	if err != nil {
		t.Fatal(err)
	}
	maxVerts := 0
	for _, pe := range sys.pes {
		if len(pe.localVerts) > maxVerts {
			maxVerts = len(pe.localVerts)
		}
	}
	want := cfg.OnChipBytes(maxVerts)
	if res.OnChipBytes != want {
		t.Fatalf("OnChipBytes = %d, want %d", res.OnChipBytes, want)
	}
}

// TestMultiGPNUsesCrossbar checks inter-GPN traffic is actually routed
// over the crossbar (InterBytes > 0) under random mapping.
func TestMultiGPNUsesCrossbar(t *testing.T) {
	g := randGraph(21, 400, 2400)
	res := runOn(t, testConfig(), g, program.NewBFS(g.LargestOutDegreeVertex()))
	if res.Net.InterBytes == 0 {
		t.Fatal("2-GPN system produced no inter-GPN traffic")
	}
	if res.Net.LocalBytes == 0 {
		t.Fatal("no intra-GPN traffic")
	}
	if res.Net.Bytes != res.Net.LocalBytes+res.Net.InterBytes {
		t.Fatalf("traffic accounting inconsistent: %+v", res.Net)
	}
}

// TestBSPRunMatchesFunctionalExecutorStats: the BSP engine must traverse
// exactly the same number of edges as the functional executor, since both
// implement the same epoch semantics.
func TestBSPRunMatchesFunctionalExecutorStats(t *testing.T) {
	g := randGraph(33, 250, 1500)
	p := program.NewPageRank(0.85, 3)
	_, want := program.Exec(p, g)
	res := runOn(t, testConfig(), g, p)
	if res.Stats.EdgesTraversed != want.EdgesTraversed {
		t.Fatalf("BSP engine traversed %d edges, functional executor %d",
			res.Stats.EdgesTraversed, want.EdgesTraversed)
	}
	if res.Stats.Epochs != want.Epochs {
		t.Fatalf("epochs %d vs %d", res.Stats.Epochs, want.Epochs)
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	g := graph.FromEdges("empty", 0, nil)
	if _, err := NewSystem(testConfig(), g, nil); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestEventBudgetExhaustion(t *testing.T) {
	cfg := testConfig()
	cfg.MaxEvents = 100 // far too small for any real run
	g := randGraph(3, 200, 1200)
	sys, err := NewSystem(cfg, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(context.Background(), program.NewBFS(g.LargestOutDegreeVertex())); err == nil {
		t.Fatal("tiny event budget did not abort the run")
	}
}

func TestBSPWithFIFOSpill(t *testing.T) {
	// The FIFO spill policy must also work under BSP epochs.
	cfg := testConfig()
	cfg.Spill = SpillFIFO
	cfg.ActiveBufferEntries = 4
	cfg.PrefetchBatch = 2
	g := graph.GenRMAT("r", 8, 8, graph.DefaultRMAT, 1, 4)
	sys, err := NewSystem(cfg, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(context.Background(), program.NewPageRank(0.85, 3))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.PageRank(g, 0.85, 3)
	for v := range want {
		if diff := res.Props[v].Float() - want[v]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("vertex %d: %v want %v", v, res.Props[v].Float(), want[v])
		}
	}
}

func TestIdealFabricMultiGPNBC(t *testing.T) {
	cfg := testConfig()
	cfg.Fabric = FabricIdeal
	g := randGraph(13, 150, 600)
	gT := g.Transpose()
	root := g.LargestOutDegreeVertex()
	scores, _, err := program.RunBC(sysRunner{nil, cfg}, g, gT, root)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.BC(g, root)
	for v := range want {
		tol := 1e-3 * (1 + want[v])
		d := scores[v] - want[v]
		if d > tol || d < -tol {
			t.Fatalf("BC at %d: %v want %v", v, scores[v], want[v])
		}
	}
}

func TestLoadImbalanceAccounting(t *testing.T) {
	g := graph.GenRMAT("r", 9, 10, graph.DefaultRMAT, 1, 6)
	root := g.LargestOutDegreeVertex()
	// Load-balanced mapping must beat a range mapping on a power-law
	// graph (the hub's edges concentrate on one PE under ranges).
	run := func(p *graph.Partition) *Result {
		sys, err := NewSystem(testConfig(), g, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(context.Background(), program.NewBFS(root))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lb := run(graph.PartitionLoadBalanced(g, 4))
	rg := run(graph.PartitionRange(g.NumVertices(), 4))
	if lb.LoadImbalance() < 1 || rg.LoadImbalance() < 1 {
		t.Fatalf("imbalance below 1: %v / %v", lb.LoadImbalance(), rg.LoadImbalance())
	}
	if lb.LoadImbalance() >= rg.LoadImbalance() {
		t.Fatalf("load-balanced imbalance %.2f not below range %.2f",
			lb.LoadImbalance(), rg.LoadImbalance())
	}
	var total int64
	for _, e := range lb.PEEdges {
		total += e
	}
	if total != lb.Stats.EdgesTraversed {
		t.Fatalf("per-PE edges sum %d != total %d", total, lb.Stats.EdgesTraversed)
	}
}

func TestSynchronousWrapperOnNOVA(t *testing.T) {
	// The BSP form of an async program must produce identical results on
	// the simulated machine (Section III-A: NOVA runs both models).
	g := randGraph(55, 200, 1200)
	root := g.LargestOutDegreeVertex()
	async := runOn(t, testConfig(), g, program.NewSSSP(root))
	sync := runOn(t, testConfig(), g, program.Synchronous(program.NewSSSP(root)))
	for v := range async.Props {
		if async.Props[v] != sync.Props[v] {
			t.Fatalf("async/sync disagree at vertex %d", v)
		}
	}
	if sync.Stats.Epochs == 0 {
		t.Fatal("synchronous run recorded no epochs")
	}
	if async.Stats.Epochs != 0 {
		t.Fatal("asynchronous run recorded epochs")
	}
}

func TestPRDeltaOnNOVA(t *testing.T) {
	// PR-delta is order-sensitive (the paper's stated reason for running
	// PR in BSP mode), so the accelerator's ranks match the functional
	// executor's only approximately — but both must approximate the same
	// fixpoint.
	edges := make([]graph.Edge, 0, 2000)
	for i := 0; i < 200; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % 200), Weight: 1})
	}
	rng := int64(17)
	for i := 0; i < 800; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		a := int((rng>>33)%200+200) % 200
		rng = rng*6364136223846793005 + 1442695040888963407
		b := int((rng>>33)%200+200) % 200
		edges = append(edges, graph.Edge{Src: graph.VertexID(a), Dst: graph.VertexID(b), Weight: 1})
	}
	g := graph.FromEdges("strong", 200, edges)
	p := program.NewPRDelta(0.85, 1e-7)
	want, _ := program.Exec(p, g)
	res := runOn(t, testConfig(), g, program.NewPRDelta(0.85, 1e-7))
	for v := range want {
		a := program.PRDeltaRank(res.Props[v])
		b := program.PRDeltaRank(want[v])
		if d := a - b; d > 1e-4+0.02*b || d < -(1e-4+0.02*b) {
			t.Fatalf("vertex %d: NOVA %v, executor %v", v, a, b)
		}
	}
	if res.Stats.MessagesCoalesced == 0 {
		t.Fatal("pr-delta on NOVA coalesced nothing — the recovery window is the whole point")
	}
}
