package core

import (
	"fmt"

	"nova/internal/stats"
)

// Metric names for the root-level statistics the NOVA engine exports to
// the harness metrics bag. They double as stable dump paths: the stats
// tree registers each one at the root, so Dump.Bag() reproduces the
// legacy flat bag while the hierarchical detail grows underneath.
const (
	MetricCycles             = "cycles"
	MetricEventsExecuted     = "events_executed"
	MetricEdgeUtilization    = "edge_utilization"
	MetricVertexUsefulFrac   = "vertex_useful_frac"
	MetricVertexWriteFrac    = "vertex_write_frac"
	MetricVertexWastefulFrac = "vertex_wasteful_frac"
	MetricProcessingSeconds  = "processing_seconds"
	MetricOverheadSeconds    = "overhead_seconds"
	MetricCacheHitRate       = "cache_hit_rate"
	MetricOnChipBytes        = "onchip_bytes"
	MetricSpills             = "spills"
	MetricDirectPushes       = "direct_pushes"
	MetricSpillWrites        = "spill_writes"
	MetricStaleRetrievals    = "stale_retrievals"
	MetricPrefetchedBlocks   = "prefetched_blocks"
	MetricPrefetchHits       = "prefetch_hits"
	MetricRecoveryHitRate    = "recovery_hit_rate"
	MetricMetadataBytes      = "metadata_bytes"
	MetricNetworkBytes       = "network_bytes"
	MetricNetworkInterBytes  = "network_inter_bytes"
	MetricNetworkCoalesced   = "network_messages_coalesced"
	MetricNetworkBytesSaved  = "network_bytes_saved"
	MetricNetworkAvgHops     = "network_avg_hops"
	MetricLoadImbalance      = "load_imbalance"
	MetricPartitionLoads     = "partition_loads"
	MetricBytesPaged         = "bytes_paged"
	MetricIOStallTicks       = "io_stall_ticks"
)

// buildStatsTree registers the whole machine in a stats tree at assembly
// time. Root-level stats carry the legacy metrics-bag names; component
// detail nests as gpn<g>.pe<p>.{mpu,vchan,vmu,mgu} and network.*. All
// derived values are formulas over s.result, which Run populates before
// dumping, so the tree is read-only instrumentation: nothing on the hot
// path changes.
func (s *System) buildStatsTree() {
	root := stats.NewRoot()
	s.stats = root
	res := func(f func(r *Result) float64) func() float64 {
		return func() float64 {
			if s.result == nil {
				return 0
			}
			return f(s.result)
		}
	}

	root.Formula(res(func(r *Result) float64 { return float64(r.Ticks) }),
		MetricCycles, stats.Cycles, "simulated cycles to completion")
	root.Formula(func() float64 { return float64(s.cluster.Executed()) },
		MetricEventsExecuted, stats.Count, "simulator events executed across all shards (fabric efficiency signal)")
	root.Formula(res(func(r *Result) float64 { return r.EdgeUtilization }),
		MetricEdgeUtilization, stats.Ratio, "achieved fraction of aggregate edge-memory bandwidth (Fig. 4)")
	root.Formula(res(func(r *Result) float64 { u, _, _ := r.VertexBWFractions(); return u }),
		MetricVertexUsefulFrac, stats.Ratio, "useful-read share of peak vertex-memory bandwidth (Fig. 10)")
	root.Formula(res(func(r *Result) float64 { _, w, _ := r.VertexBWFractions(); return w }),
		MetricVertexWriteFrac, stats.Ratio, "write share of peak vertex-memory bandwidth (Fig. 10)")
	root.Formula(res(func(r *Result) float64 { _, _, w := r.VertexBWFractions(); return w }),
		MetricVertexWastefulFrac, stats.Ratio, "wasteful-read share of peak vertex-memory bandwidth (Fig. 10)")
	root.Formula(res(func(r *Result) float64 { return r.ProcessingSeconds }),
		MetricProcessingSeconds, stats.Seconds, "execution time minus overfetch overhead (Fig. 6)")
	root.Formula(res(func(r *Result) float64 { return r.OverheadSeconds }),
		MetricOverheadSeconds, stats.Seconds, "time attributed to reading inactive vertices during recovery (Fig. 6)")
	root.Formula(res(func(r *Result) float64 { return r.CacheHitRate }),
		MetricCacheHitRate, stats.Ratio, "aggregate MPU vertex-cache hit rate")
	root.Formula(res(func(r *Result) float64 { return float64(r.OnChipBytes) }),
		MetricOnChipBytes, stats.Bytes, "modeled on-chip storage (caches + tracker + active buffers)")
	root.Formula(res(func(r *Result) float64 { return float64(r.VMU.Spills) }),
		MetricSpills, stats.Count, "activations that overflowed to off-chip memory (Table I)")
	root.Formula(res(func(r *Result) float64 { return float64(r.VMU.DirectPushes) }),
		MetricDirectPushes, stats.Count, "FIFO-policy activations that fit on-chip without spilling (Table I)")
	root.Formula(res(func(r *Result) float64 { return float64(r.VMU.SpillWrites) }),
		MetricSpillWrites, stats.Count, "extra off-chip writes caused by spilling (Table I)")
	root.Formula(res(func(r *Result) float64 { return float64(r.VMU.StaleRetrievals) }),
		MetricStaleRetrievals, stats.Count, "FIFO entries already propagated when popped (Table I)")
	root.Formula(res(func(r *Result) float64 { return float64(r.VMU.PrefetchedBlocks) }),
		MetricPrefetchedBlocks, stats.Count, "vertex blocks read back during active-vertex recovery")
	root.Formula(res(func(r *Result) float64 { return float64(r.VMU.PrefetchHits) }),
		MetricPrefetchHits, stats.Count, "recovered blocks that held active vertices")
	root.Formula(res(func(r *Result) float64 {
		if r.VMU.PrefetchedBlocks == 0 {
			return 0
		}
		return float64(r.VMU.PrefetchHits) / float64(r.VMU.PrefetchedBlocks)
	}), MetricRecoveryHitRate, stats.Ratio, "fraction of recovery reads that held active vertices (tracker precision)")
	root.Formula(res(func(r *Result) float64 { return float64(r.VMU.MetadataBytes) }),
		MetricMetadataBytes, stats.Bytes, "explicit off-chip metadata the spill policy needs (Table I)")
	root.Formula(res(func(r *Result) float64 { return float64(r.Net.Bytes) }),
		MetricNetworkBytes, stats.Bytes, "total fabric payload moved")
	root.Formula(res(func(r *Result) float64 { return float64(r.Net.InterBytes) }),
		MetricNetworkInterBytes, stats.Bytes, "fabric payload that crossed the GPN-level crossbar")
	root.Formula(res(func(r *Result) float64 { return float64(r.Net.Coalesced) }),
		MetricNetworkCoalesced, stats.Count, "cross-GPN message batches absorbed by the fabric's coalescing stage")
	root.Formula(res(func(r *Result) float64 { return float64(r.Net.BytesSaved) }),
		MetricNetworkBytesSaved, stats.Bytes, "payload bytes the coalescing stage kept off the inter-GPN links")
	root.Formula(res(func(r *Result) float64 {
		if r.Net.InterMessages == 0 {
			return 0
		}
		return float64(r.Net.HopsSum) / float64(r.Net.InterMessages)
	}), MetricNetworkAvgHops, stats.Ratio, "mean inter-GPN links traversed per cross-GPN message")
	root.Formula(res(func(r *Result) float64 { return r.LoadImbalance() }),
		MetricLoadImbalance, stats.Ratio, "max per-PE propagations over mean; 1.0 is balanced (Fig. 9b)")
	root.Formula(res(func(r *Result) float64 { return float64(r.PartitionLoads) }),
		MetricPartitionLoads, stats.Count, "out-of-core partition page-in events (0 when the graph is DRAM-resident)")
	root.Formula(res(func(r *Result) float64 { return float64(r.BytesPaged) }),
		MetricBytesPaged, stats.Bytes, "page-rounded bytes read from the SSD tier")
	root.Formula(res(func(r *Result) float64 { return float64(r.IOStallTicks) }),
		MetricIOStallTicks, stats.Cycles, "SSD page-in latency exposed to the VMUs (sum over page-in events)")

	root.Int64(&s.edgesTraversed, "edges_traversed", stats.Count, "edges whose propagate produced or suppressed a message")
	root.Int64(&s.messagesSent, "messages_sent", stats.Count, "messages generated by the MGUs")
	root.Int64(&s.coalesced, "messages_coalesced", stats.Count, "updates absorbed by an already-active vertex (coalescing window)")
	root.Int64(&s.drains, "drains", stats.Count, "quiescence-boundary cache drains")
	root.Int(&s.epochs, "epochs", stats.Count, "BSP epochs executed (0 for asynchronous programs)")

	for gpn, chans := range s.edgeChans {
		gg := root.Group(fmt.Sprintf("gpn%d", gpn))
		for i, ch := range chans {
			ch.RegisterStats(gg.Group(fmt.Sprintf("edge%d", i)))
		}
		if s.ssds != nil {
			s.ssds[gpn].RegisterStats(gg.Group("ssd"))
		}
	}
	for _, pe := range s.pes {
		pg := root.Group(fmt.Sprintf("gpn%d", pe.gpn)).Group(fmt.Sprintf("pe%d", pe.id%s.cfg.PEsPerGPN))
		mpu := pg.Group("mpu")
		pe.cache.RegisterStats(mpu.Group("cache"))
		mpu.Histogram(&pe.inboxDepth, "inbox_depth", stats.Entries, "inbox backlog seen by each arriving message batch (log2 buckets)")
		pe.vchan.RegisterStats(pg.Group("vchan"))
		u := pe.vmu
		vg := pg.Group("vmu")
		vg.Uint64(&u.stats.DirectPushes, "direct_pushes", stats.Count, "activations pushed straight into the on-chip buffer (FIFO policy)")
		vg.Uint64(&u.stats.Spills, "spills", stats.Count, "activations that overflowed to off-chip memory")
		vg.Uint64(&u.stats.SpillWrites, "spill_writes", stats.Count, "extra off-chip writes caused by spilling")
		vg.Uint64(&u.stats.PrefetchedBlocks, "prefetched_blocks", stats.Count, "vertex blocks read back during active-vertex recovery")
		vg.Uint64(&u.stats.PrefetchHits, "prefetch_hits", stats.Count, "recovered blocks that held active vertices")
		vg.Uint64(&u.stats.StaleRetrievals, "stale_retrievals", stats.Count, "FIFO entries already propagated when popped")
		vg.Distribution(&u.stats.BatchHits, "batch_hits", stats.Count, "active blocks recovered per completed prefetch batch (tracker precision)")
		vg.Int(&u.stats.FIFOMaxDepth, "fifo_max_depth", stats.Entries, "high-water mark of the off-chip FIFO")
		vg.Uint64(&u.stats.MetadataBytes, "metadata_bytes", stats.Bytes, "explicit off-chip metadata written by the spill policy")
		if s.cfg.OutOfCore {
			vg.Uint64(&u.stats.PageIns, "page_ins", stats.Count, "vertex-block reads that missed the SSD resident window")
			vg.Uint64(&u.stats.BytesPaged, "bytes_paged", stats.Bytes, "page-rounded bytes this VMU paged in")
			vg.Formula(func() float64 { return float64(u.stats.IOStallTicks) },
				"io_stall_cycles", stats.Cycles, "SSD page-in latency exposed by this VMU's reads")
		}
		vg.Histogram(&u.occupancy, "buffer_occupancy", stats.Entries, "active-buffer fill level at each push (linear buckets of 4)")
		mg := pg.Group("mgu")
		mg.Int64(&pe.edgesOut, "edges_out", stats.Count, "propagations generated by this PE (load-balance signal)")
		mg.Distribution(&pe.batchVerts, "batch_vertices", stats.Count, "active vertices per propagation batch")
		mg.Distribution(&pe.batchEdges, "batch_edges", stats.Count, "edges streamed per propagation batch")
	}
	s.fabric.RegisterStats(root.Group("network"))
}
