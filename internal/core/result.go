package core

import (
	"nova/internal/network"
	"nova/internal/sim"
	"nova/internal/stats"
	"nova/program"
)

// Result reports one NOVA execution: final vertex properties, the timing
// and work statistics the evaluation figures need, and the memory-system
// breakdowns of Figs. 6 and 10.
type Result struct {
	// Props is the final property vector.
	Props []program.Prop
	// Stats is the engine-agnostic summary (time, traversals, coalescing).
	Stats program.RunStats
	// Ticks is the simulated cycle count.
	Ticks sim.Ticks

	// Vertex-memory traffic across all PEs (bytes).
	VertexUsefulBytes   uint64
	VertexWastefulBytes uint64
	VertexWrittenBytes  uint64
	// VertexPeakBytes is peak vertex-memory capacity over the run
	// (ticks × aggregate bandwidth), the denominator of Fig. 10.
	VertexPeakBytes float64

	// Edge-memory traffic and utilization (Fig. 4's 80–85% claim).
	EdgeBytes       uint64
	EdgePeakBytes   float64
	EdgeUtilization float64

	// Execution-time attribution (Fig. 6): overfetch time is the share
	// of vertex bandwidth spent reading inactive vertices during active-
	// vertex recovery.
	ProcessingSeconds float64
	OverheadSeconds   float64

	// CacheHitRate aggregates the per-PE MPU caches.
	CacheHitRate float64

	// Net is fabric traffic.
	Net network.Stats

	// VMU aggregates vertex-management statistics across PEs (Table I).
	VMU VMUStats

	// Out-of-core tier traffic (zero unless cfg.OutOfCore): partition
	// page-in events issued by the VMUs, their page-rounded volume, and
	// the SSD latency they exposed (DESIGN.md §18).
	PartitionLoads uint64
	BytesPaged     uint64
	IOStallTicks   sim.Ticks

	// OnChipBytes is the modeled on-chip storage (caches + tracker +
	// active buffers).
	OnChipBytes int64

	// Shards is the worker-goroutine count the run executed with;
	// Windows counts conservative time windows (0 for a single-engine
	// run), and the wall-clock split attributes host time to in-window
	// execution vs. barrier synchronization.
	Shards             int
	Windows            uint64
	WindowWallSeconds  float64
	BarrierWallSeconds float64

	// PEEdges counts propagations per PE — the load-balance signal the
	// spatial-mapping comparison of Fig. 9b turns on.
	PEEdges []int64

	// Partial marks a salvaged result: the run stopped early (cancelled,
	// deadline, budget, or watchdog stall) and the stats cover only the
	// work completed before the stop. StopReason classifies the cause.
	Partial    bool
	StopReason sim.StopReason

	// Dump is the full hierarchical statistics dump for the run.
	Dump *stats.Dump
}

// LoadImbalance returns max(per-PE propagations)/mean; 1.0 is perfectly
// balanced.
func (r *Result) LoadImbalance() float64 {
	var sum, max int64
	for _, e := range r.PEEdges {
		sum += e
		if e > max {
			max = e
		}
	}
	if sum == 0 || len(r.PEEdges) == 0 {
		return 1
	}
	return float64(max) * float64(len(r.PEEdges)) / float64(sum)
}

func (s *System) collectResult() *Result {
	cfg := &s.cfg
	ticks := s.now()
	secs := cfg.clock().Seconds(ticks)
	// Fold the per-PE shard-local counters into the System totals the
	// stats tree registered (this runs before the dump).
	s.edgesTraversed, s.messagesSent, s.coalesced = 0, 0, 0
	for _, pe := range s.pes {
		s.edgesTraversed += pe.edgesTraversed
		s.messagesSent += pe.messagesSent
		s.coalesced += pe.coalesced
	}
	r := &Result{
		Props: s.props,
		Ticks: ticks,
		Stats: program.RunStats{
			SimSeconds:        secs,
			EdgesTraversed:    s.edgesTraversed,
			MessagesSent:      s.messagesSent,
			MessagesCoalesced: s.coalesced,
			Epochs:            s.epochs,
		},
		Net:                s.fabric.Stats(),
		Shards:             s.workers,
		Windows:            s.cluster.Windows(),
		WindowWallSeconds:  s.cluster.WindowSeconds(),
		BarrierWallSeconds: s.cluster.BarrierSeconds(),
	}
	var hits, accesses uint64
	maxVertsPerPE := 0
	r.PEEdges = make([]int64, len(s.pes))
	for _, pe := range s.pes {
		r.PEEdges[pe.id] = pe.edgesOut
		st := pe.vchan.Stats()
		r.VertexUsefulBytes += st.UsefulBytes
		r.VertexWastefulBytes += st.WastefulBytes
		r.VertexWrittenBytes += st.WrittenBytes
		cs := pe.cache.Stats()
		hits += cs.Hits
		accesses += cs.Hits + cs.Misses
		v := pe.vmu.stats
		r.VMU.DirectPushes += v.DirectPushes
		r.VMU.Spills += v.Spills
		r.VMU.SpillWrites += v.SpillWrites
		r.VMU.PrefetchedBlocks += v.PrefetchedBlocks
		r.VMU.PrefetchHits += v.PrefetchHits
		r.VMU.StaleRetrievals += v.StaleRetrievals
		r.VMU.BatchHits.Merge(v.BatchHits)
		r.VMU.MetadataBytes += v.MetadataBytes
		r.VMU.PageIns += v.PageIns
		r.VMU.BytesPaged += v.BytesPaged
		r.VMU.IOStallTicks += v.IOStallTicks
		if v.FIFOMaxDepth > r.VMU.FIFOMaxDepth {
			r.VMU.FIFOMaxDepth = v.FIFOMaxDepth
		}
		if n := len(pe.localVerts); n > maxVertsPerPE {
			maxVertsPerPE = n
		}
	}
	if accesses > 0 {
		r.CacheHitRate = float64(hits) / float64(accesses)
	}
	r.PartitionLoads = r.VMU.PageIns
	r.BytesPaged = r.VMU.BytesPaged
	r.IOStallTicks = r.VMU.IOStallTicks
	vertexAggBW := cfg.VertexChannel.BytesPerCycle * float64(cfg.TotalPEs())
	r.VertexPeakBytes = float64(ticks) * vertexAggBW
	for _, chans := range s.edgeChans {
		for _, ch := range chans {
			r.EdgeBytes += ch.Stats().TotalBytes()
		}
	}
	edgeAggBW := cfg.EdgeChannel.BytesPerCycle * float64(cfg.EdgeChannelsPerGPN*cfg.GPNs)
	r.EdgePeakBytes = float64(ticks) * edgeAggBW
	if r.EdgePeakBytes > 0 {
		r.EdgeUtilization = float64(r.EdgeBytes) / r.EdgePeakBytes
	}
	// Fig. 6 attribution: time to stream the wasted vertex reads at
	// aggregate vertex bandwidth is overhead; the rest is processing.
	if vertexAggBW > 0 && cfg.ClockHz > 0 {
		r.OverheadSeconds = float64(r.VertexWastefulBytes) / vertexAggBW / cfg.ClockHz
	}
	if r.OverheadSeconds > secs {
		r.OverheadSeconds = secs
	}
	r.ProcessingSeconds = secs - r.OverheadSeconds
	r.OnChipBytes = cfg.OnChipBytes(maxVertsPerPE)
	return r
}

// VertexBWFractions returns the Fig. 10 bars: useful-read, write, and
// wasteful-read traffic as fractions of the vertex memory's peak bandwidth.
func (r *Result) VertexBWFractions() (useful, written, wasteful float64) {
	if r.VertexPeakBytes <= 0 {
		return 0, 0, 0
	}
	return float64(r.VertexUsefulBytes) / r.VertexPeakBytes,
		float64(r.VertexWrittenBytes) / r.VertexPeakBytes,
		float64(r.VertexWastefulBytes) / r.VertexPeakBytes
}
