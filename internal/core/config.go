// Package core implements the NOVA accelerator microarchitecture of
// Section III: graph processing nodes (GPNs) built from processing
// elements (PEs), each PE containing a message processing unit (MPU), a
// vertex management unit (VMU) and a message generation unit (MGU), backed
// by per-PE HBM2 vertex channels and per-GPN DDR4 edge channels, connected
// by a point-to-point intra-GPN fabric and an inter-GPN crossbar.
package core

import (
	"fmt"
	"math"
	"time"

	"nova/internal/mem"
	"nova/internal/network"
	"nova/internal/sim"
)

// DefaultStallTimeout is the watchdog interval used when
// Config.StallTimeout is zero: long enough that no healthy cell at any
// supported scale trips it, short enough to catch a livelocked run well
// before a CI job timeout does.
const DefaultStallTimeout = 30 * time.Second

// SpillPolicy selects how the VMU handles active vertices that do not fit
// in the on-chip active buffer (Table I).
type SpillPolicy int

const (
	// SpillOverwrite is NOVA's design: the spilled vertex simply
	// overwrites its row in the off-chip vertex set (no extra write) and
	// the tracker records its block at superblock granularity.
	SpillOverwrite SpillPolicy = iota
	// SpillFIFO is the strawman alternative: spilled activations are
	// appended to an off-chip FIFO with explicit vertex addresses. Spills
	// cost an extra write, entries are never coalesced, and stale
	// duplicates cause redundant propagation.
	SpillFIFO
)

func (s SpillPolicy) String() string {
	if s == SpillFIFO {
		return "fifo"
	}
	return "overwrite"
}

// FabricKind selects the interconnect model (Fig. 9c).
type FabricKind int

const (
	// FabricHierarchical is Table II's fabric: intra-GPN point-to-point
	// links plus an inter-GPN crossbar.
	FabricHierarchical FabricKind = iota
	// FabricIdeal is a latency-only, infinite-bandwidth network.
	FabricIdeal
)

// Config describes one NOVA system. DefaultConfig gives Table II values.
type Config struct {
	// GPNs is the number of graph processing nodes.
	GPNs int
	// PEsPerGPN is the number of processing elements per GPN.
	PEsPerGPN int
	// ClockHz is the core frequency.
	ClockHz float64
	// VertexBytes is the size of a vertex record
	// (cur_prop, next_prop, active flags).
	VertexBytes int
	// BlockBytes is the vertex-memory atom (HBM2: 32 B); it is both the
	// cache line size and the tracker's block granularity.
	BlockBytes int
	// CacheBytesPerPE is the MPU's direct-mapped vertex cache capacity.
	CacheBytesPerPE int
	// SuperblockDim is the number of blocks grouped per tracker counter.
	SuperblockDim int
	// ActiveBufferEntries is the VMU FIFO depth (one block per entry).
	ActiveBufferEntries int
	// PrefetchBatch is how many blocks one prefetch reads from a
	// superblock; prefetching triggers when at least this many entries
	// are free.
	PrefetchBatch int
	// ReduceFUs is reductions per cycle per PE (Table II: 16 per GPN).
	ReduceFUs int
	// PropagateFUs is propagations per cycle per PE (48 per GPN).
	PropagateFUs int
	// MSHRs bounds outstanding vertex-memory reads per PE — the
	// vertex-level parallelism that hides DRAM latency.
	MSHRs int
	// MGUPipelineDepth bounds concurrently in-flight active-block
	// propagations per PE.
	MGUPipelineDepth int
	// MessageBytes is the network message size ⟨u, δ⟩.
	MessageBytes int
	// EdgeBytes is the stored size of one edge.
	EdgeBytes int
	// VertexChannel and EdgeChannel time the off-chip memories; one
	// vertex channel per PE, EdgeChannelsPerGPN edge channels per GPN.
	VertexChannel      mem.ChannelConfig
	EdgeChannel        mem.ChannelConfig
	EdgeChannelsPerGPN int
	// Fabric selects the interconnect model; P2P and Crossbar configure
	// the hierarchical fabric.
	Fabric   FabricKind
	P2P      network.P2PConfig
	Crossbar network.CrossbarConfig
	// Topology selects the inter-GPN topology of the hierarchical fabric
	// (crossbar, ring, mesh, torus); Link times the channels of the
	// non-crossbar topologies (zero value = network.DefaultLinkConfig).
	Topology network.TopoKind
	Link     network.LinkConfig
	// CoalesceWindow arms the fabric's in-flight coalescing stage: a
	// cross-GPN message batch waits up to this many ticks for further
	// same-destination batches to merge with before traversing the
	// topology (0 disables). CoalesceCapacity bounds the buffered
	// message entries per destination PE (0 = the network default).
	CoalesceWindow   sim.Ticks
	CoalesceCapacity int
	// Spill selects the VMU spilling mechanism.
	Spill SpillPolicy
	// OutOfCore arms the SSD-backed third memory tier (DESIGN.md §18):
	// each PE's off-chip vertex region beyond a resident window of
	// SSDResidentPages SSD pages lives on the GPN's SSD, and a VMU
	// recovery read that misses the window pays a page-in through the
	// device's latency/bandwidth/queue-depth model before its vertex-
	// channel access issues.
	OutOfCore bool
	// SSD times the per-GPN device (zero Name selects the NVMe preset).
	SSD mem.SSDConfig
	// SSDResidentPages is the per-PE resident-window capacity in SSD
	// pages, direct-mapped for determinism.
	SSDResidentPages int
	// MaxEvents aborts runaway simulations (0 = default budget).
	MaxEvents uint64
	// StallTimeout arms the wall-clock watchdog: if no event executes and
	// no barrier advances for this long, the run aborts with a stall
	// diagnostic. 0 selects DefaultStallTimeout; negative disables the
	// watchdog.
	StallTimeout time.Duration
	// PollEvents is the cancellation-poll stride per engine shard
	// (0 = sim.DefaultPollEvents). Polling never changes results, only
	// how quickly a cancellation or watchdog trip is observed.
	PollEvents uint64
	// Shards is the number of worker goroutines executing the per-GPN
	// engine shards (0 means 1, i.e. fully sequential). Clamped to GPNs;
	// results are bit-identical at every setting.
	Shards int
	// Observer, when non-nil, is the cooperative-stop interrupt Run
	// attaches instead of building a private one. An external scheduler
	// supplies it to sample liveness beats (sim.Interrupt.Beats) while
	// the run executes — the progress signal a serving layer streams to
	// clients — and to Trip the run from outside the context path. Like
	// StallTimeout it is excluded from every fingerprint: observation
	// cannot change simulation results, only when a run stops.
	Observer *sim.Interrupt
}

// DefaultConfig returns the Table II system: 8 PEs at 2 GHz per GPN, one
// HBM2 channel per PE for vertices, four DDR4 channels per GPN for edges,
// 64 KiB cache per PE, superblock dimension 128 and an 80-entry active
// buffer.
func DefaultConfig(gpns int) Config {
	return Config{
		GPNs:                gpns,
		PEsPerGPN:           8,
		ClockHz:             2e9,
		VertexBytes:         16,
		BlockBytes:          32,
		CacheBytesPerPE:     64 << 10,
		SuperblockDim:       128,
		ActiveBufferEntries: 80,
		PrefetchBatch:       16,
		ReduceFUs:           2,
		PropagateFUs:        6,
		MSHRs:               128,
		MGUPipelineDepth:    8,
		MessageBytes:        8,
		EdgeBytes:           8,
		VertexChannel:       mem.HBM2ChannelConfig("hbm2"),
		EdgeChannel:         mem.DDR4ChannelConfig("ddr4"),
		EdgeChannelsPerGPN:  4,
		Fabric:              FabricHierarchical,
		P2P:                 network.DefaultP2PConfig(),
		Crossbar:            network.DefaultCrossbarConfig(),
		Spill:               SpillOverwrite,
		SSD:                 mem.NVMeSSDConfig("ssd"),
		SSDResidentPages:    1024,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.GPNs <= 0:
		return fmt.Errorf("core: GPNs = %d", c.GPNs)
	case c.PEsPerGPN <= 0:
		return fmt.Errorf("core: PEsPerGPN = %d", c.PEsPerGPN)
	case c.ClockHz <= 0:
		return fmt.Errorf("core: ClockHz = %v", c.ClockHz)
	case c.VertexBytes <= 0 || c.BlockBytes%c.VertexBytes != 0:
		return fmt.Errorf("core: BlockBytes %d not a multiple of VertexBytes %d", c.BlockBytes, c.VertexBytes)
	case c.CacheBytesPerPE < c.BlockBytes || c.CacheBytesPerPE%c.BlockBytes != 0:
		return fmt.Errorf("core: cache %d B incompatible with block %d B", c.CacheBytesPerPE, c.BlockBytes)
	case c.SuperblockDim <= 0:
		return fmt.Errorf("core: SuperblockDim = %d", c.SuperblockDim)
	case c.ActiveBufferEntries <= 0 || c.PrefetchBatch <= 0 || c.PrefetchBatch > c.ActiveBufferEntries:
		return fmt.Errorf("core: buffer %d / batch %d invalid", c.ActiveBufferEntries, c.PrefetchBatch)
	case c.ReduceFUs <= 0 || c.PropagateFUs <= 0 || c.MSHRs <= 0 || c.MGUPipelineDepth <= 0:
		return fmt.Errorf("core: functional unit counts must be positive")
	case c.MessageBytes <= 0 || c.EdgeBytes <= 0:
		return fmt.Errorf("core: MessageBytes/EdgeBytes must be positive")
	case c.EdgeChannelsPerGPN <= 0:
		return fmt.Errorf("core: EdgeChannelsPerGPN = %d", c.EdgeChannelsPerGPN)
	case c.Shards < 0:
		return fmt.Errorf("core: Shards = %d", c.Shards)
	case !c.Topology.Valid():
		return fmt.Errorf("core: unknown topology kind %d", int(c.Topology))
	case c.Fabric == FabricIdeal && c.Topology != network.TopoCrossbar:
		return fmt.Errorf("core: topology %s requires the hierarchical fabric (the ideal fabric has no inter-GPN links)", c.Topology)
	case c.CoalesceWindow < 0:
		return fmt.Errorf("core: CoalesceWindow = %d", c.CoalesceWindow)
	case c.CoalesceCapacity < 0:
		return fmt.Errorf("core: CoalesceCapacity = %d", c.CoalesceCapacity)
	case c.CoalesceCapacity > 0 && c.CoalesceWindow == 0:
		return fmt.Errorf("core: CoalesceCapacity = %d but CoalesceWindow = 0 (coalescing disabled; set a window)", c.CoalesceCapacity)
	case c.Fabric == FabricIdeal && c.CoalesceWindow > 0:
		return fmt.Errorf("core: in-fabric coalescing requires the hierarchical fabric")
	}
	if err := c.VertexChannel.Validate(); err != nil {
		return err
	}
	if c.OutOfCore {
		if c.SSDResidentPages <= 0 {
			return fmt.Errorf("core: OutOfCore with SSDResidentPages = %d", c.SSDResidentPages)
		}
		if err := c.SSD.Validate(); err != nil {
			return err
		}
	}
	return c.EdgeChannel.Validate()
}

// TotalPEs returns GPNs × PEsPerGPN.
func (c Config) TotalPEs() int { return c.GPNs * c.PEsPerGPN }

// TrackerBitsPerPE implements Equation 1 for a PE owning the given number
// of vertices: cap_bits = (log2(superblock_dim)+1) × num_superblocks.
func (c Config) TrackerBitsPerPE(vertices int) int64 {
	vertexMemBytes := int64(vertices) * int64(c.VertexBytes)
	sbBytes := int64(c.SuperblockDim) * int64(c.BlockBytes)
	numSB := (vertexMemBytes + sbBytes - 1) / sbBytes
	bitsPerCounter := int64(math.Log2(float64(c.SuperblockDim))) + 1
	return bitsPerCounter * numSB
}

// OnChipBytes returns the total on-chip memory of the system: caches plus
// tracker metadata plus active buffers (one block per entry), the quantity
// Fig. 4's iso-comparison reports (1.5 MiB per GPN at Table II scale).
func (c Config) OnChipBytes(verticesPerPE int) int64 {
	perPE := int64(c.CacheBytesPerPE) +
		c.TrackerBitsPerPE(verticesPerPE)/8 +
		int64(c.ActiveBufferEntries)*int64(c.BlockBytes)
	return perPE * int64(c.TotalPEs())
}

// clock returns the sim clock for this configuration.
func (c Config) clock() sim.Clock { return sim.Clock{HZ: c.ClockHz} }
