package sim

import (
	"errors"
	"strings"
	"testing"
)

func TestNewClusterRejectsBadLookahead(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	if _, err := NewCluster(engines, 0, 1); err == nil {
		t.Fatal("zero lookahead accepted; want construction error")
	}
	// A negative latency cast into Ticks wraps to a huge value; the
	// constructor must treat it as invalid, not as a 2^63-tick window.
	negLatency := int64(-5)
	neg := Ticks(negLatency)
	if _, err := NewCluster(engines, neg, 1); err == nil {
		t.Fatal("negative-cast lookahead accepted; want construction error")
	}
	if _, err := NewCluster(nil, 10, 1); err == nil {
		t.Fatal("empty engine set accepted; want construction error")
	}
	if _, err := NewCluster([]*Engine{NewEngine(), nil}, 10, 1); err == nil {
		t.Fatal("nil engine accepted; want construction error")
	}
}

func TestNewClusterClampsWorkers(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	for want, workers := range map[int]int{1: 0, 2: 8} {
		c, err := NewCluster(engines, 10, workers)
		if err != nil {
			t.Fatal(err)
		}
		if c.Workers() != want {
			t.Errorf("workers=%d clamped to %d, want %d", workers, c.Workers(), want)
		}
	}
}

// mailbox is a minimal cross-shard exchange: messages buffered at send
// time, delivered at barriers in ascending source order, rejecting any
// delivery that would land in the destination's past.
type mailbox struct {
	engines []*Engine
	// pending[src] holds (when, dst) pairs buffered during the window.
	pending [][]mbMsg
	fired   []int
}

type mbMsg struct {
	when Ticks
	dst  int
}

func newMailbox(engines []*Engine) *mailbox {
	return &mailbox{engines: engines, pending: make([][]mbMsg, len(engines)), fired: make([]int, len(engines))}
}

func (m *mailbox) send(src int, msg mbMsg) { m.pending[src] = append(m.pending[src], msg) }

func (m *mailbox) exchange() (int, error) {
	n := 0
	for src := range m.pending {
		for _, msg := range m.pending[src] {
			e := m.engines[msg.dst]
			if msg.when < e.Now() {
				return n, errors.New("mailbox: delivery in destination past")
			}
			dst := msg.dst
			e.ScheduleFuncAt(msg.when, func() { m.fired[dst]++ })
			n++
		}
		m.pending[src] = m.pending[src][:0]
	}
	return n, nil
}

// TestBarrierTickEvent schedules a cross-shard message landing exactly on
// the first tick after the window [0, lookahead-1] — the barrier tick. It
// must fire exactly once, at its own tick, in the following window.
func TestBarrierTickEvent(t *testing.T) {
	const lookahead = Ticks(10)
	engines := []*Engine{NewEngine(), NewEngine()}
	mb := newMailbox(engines)
	var firedAt Ticks
	engines[0].ScheduleFuncAt(0, func() {
		// Send from tick 0 with exactly the minimum latency: arrival at
		// tick 10 is the first tick outside the current window.
		mb.send(0, mbMsg{when: lookahead, dst: 1})
	})
	c, err := NewCluster(engines, lookahead, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	count := 0
	exchange := func() (int, error) {
		n, err := mb.exchange()
		if n > 0 {
			// Wrap the mailbox's handler effect: record the delivery tick.
			count += n
		}
		return n, err
	}
	if err := c.Run(0, exchange); err != nil {
		t.Fatal(err)
	}
	firedAt = engines[1].Now()
	if mb.fired[1] != 1 {
		t.Fatalf("barrier-tick event fired %d times, want exactly 1", mb.fired[1])
	}
	if firedAt != lookahead {
		t.Errorf("barrier-tick event fired at %d, want %d", firedAt, lookahead)
	}
	if count != 1 {
		t.Errorf("exchange delivered %d messages, want 1", count)
	}
}

// TestExchangePastDeliveryError drives a message whose arrival tick is
// behind the destination shard — the exchange must surface an error, and
// the cluster must return it rather than silently reordering time.
func TestExchangePastDeliveryError(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	mb := newMailbox(engines)
	// Both shards have work through tick 50, so the destination's clock is
	// far past the bogus arrival tick when the barrier delivers it.
	for i, e := range engines {
		i := i
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < 50 {
				engines[i].ScheduleFunc(1, tick)
			}
		}
		e.ScheduleFunc(0, tick)
	}
	engines[0].ScheduleFuncAt(3, func() {
		mb.send(0, mbMsg{when: 1, dst: 1}) // arrival before the window even closes
	})
	c, err := NewCluster(engines, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run(0, mb.exchange)
	if err == nil {
		t.Fatal("past-tick delivery ran to completion; want an error from the exchange")
	}
	if !strings.Contains(err.Error(), "past") {
		t.Errorf("error = %v, want the mailbox's past-delivery error", err)
	}
}

// clusterPingPong builds a w-worker cluster where every shard mails its
// right neighbor each window, and returns the per-shard fired counts and
// executed totals after quiescence.
func clusterPingPong(t *testing.T, shards, workers, rounds int) ([]int, []uint64, Ticks) {
	t.Helper()
	const lookahead = Ticks(7)
	engines := make([]*Engine, shards)
	for i := range engines {
		engines[i] = NewEngine()
	}
	mb := newMailbox(engines)
	for i := range engines {
		i := i
		n := 0
		var tick func()
		tick = func() {
			n++
			mb.send(i, mbMsg{when: engines[i].Now() + lookahead, dst: (i + 1) % shards})
			if n < rounds {
				engines[i].ScheduleFunc(3, tick)
			}
		}
		engines[i].ScheduleFuncAt(Ticks(i), tick)
	}
	c, err := NewCluster(engines, lookahead, workers)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Run(0, mb.exchange); err != nil {
		t.Fatal(err)
	}
	executed := make([]uint64, shards)
	for i, e := range engines {
		executed[i] = e.Executed()
	}
	return mb.fired, executed, c.Now()
}

// TestClusterDeterministicAcrossWorkers runs the same cross-shard
// workload at 1, 2, and 4 workers: per-shard delivery counts, executed
// totals, and the final clock must be bit-identical, since the worker
// count only changes which goroutine runs a window, never its contents.
func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	baseFired, baseExec, baseNow := clusterPingPong(t, 4, 1, 25)
	for _, workers := range []int{2, 4} {
		fired, exec, now := clusterPingPong(t, 4, workers, 25)
		for i := range fired {
			if fired[i] != baseFired[i] {
				t.Errorf("workers=%d shard %d fired %d, want %d", workers, i, fired[i], baseFired[i])
			}
			if exec[i] != baseExec[i] {
				t.Errorf("workers=%d shard %d executed %d, want %d", workers, i, exec[i], baseExec[i])
			}
		}
		if now != baseNow {
			t.Errorf("workers=%d final now %d, want %d", workers, now, baseNow)
		}
	}
}

// TestClusterBudget exhausts a multi-shard cluster's shared event budget
// and expects ErrMaxEvents, matching the single-engine kernel's contract.
func TestClusterBudget(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	for _, e := range engines {
		e := e
		var tick func()
		tick = func() { e.ScheduleFunc(1, tick) } // runs forever
		e.ScheduleFuncAt(0, tick)
	}
	c, err := NewCluster(engines, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run(100, func() (int, error) { return 0, nil })
	if !errors.Is(err, ErrMaxEvents) {
		t.Fatalf("err = %v, want ErrMaxEvents", err)
	}
	if got := c.Executed(); got < 100 {
		t.Errorf("executed %d events before stopping, want >= budget 100", got)
	}
}
