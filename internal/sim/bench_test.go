package sim

import "testing"

// BenchmarkEventThroughput measures raw event-loop rate — the figure that
// bounds how large a graph the cycle-level model can simulate per second.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(1, tick)
		}
	}
	b.ResetTimer()
	e.Schedule(0, tick)
	if err := e.RunUntilQuiet(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScheduleDeschedule measures timer churn (MGU/prefetch usage).
func BenchmarkScheduleDeschedule(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(1000, func() {})
		e.Deschedule(ev)
	}
}

// BenchmarkFanOut measures bursty same-tick scheduling (message delivery).
func BenchmarkFanOut(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.Schedule(Ticks(j%8), func() {})
		}
		if err := e.RunUntilQuiet(0); err != nil {
			b.Fatal(err)
		}
	}
}
