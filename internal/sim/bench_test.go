package sim

import "testing"

// ticker is the pre-allocated recurring-event pattern every converted
// component uses: one Handler struct, one Event, Reschedule per cycle.
type ticker struct {
	e   *Engine
	ev  *Event
	n   int
	max int
}

func (t *ticker) Fire() {
	t.n++
	if t.n < t.max {
		t.e.Reschedule(t.ev, t.e.Now()+1)
	}
}

// BenchmarkEventThroughput measures raw event-loop rate — the figure that
// bounds how large a graph the cycle-level model can simulate per second.
// The pooled-reschedule pattern must be allocation-free.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	t := &ticker{e: e, max: b.N}
	t.ev = NewEvent(t)
	b.ReportAllocs()
	b.ResetTimer()
	e.ScheduleEvent(t.ev, 0)
	if err := e.RunUntilQuiet(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventThroughputFunc is the same loop through the ScheduleFunc
// compat shim with pooled one-shot events — the path unconverted or ad-hoc
// callers take.
func BenchmarkEventThroughputFunc(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.ScheduleFunc(1, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.ScheduleFunc(0, tick)
	if err := e.RunUntilQuiet(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScheduleDeschedule measures timer churn (MGU/prefetch usage).
func BenchmarkScheduleDeschedule(b *testing.B) {
	e := NewEngine()
	h := HandlerFunc(func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(1000, h)
		e.Deschedule(ev)
	}
}

// BenchmarkReschedulePending measures moving an armed timer, the cheapest
// state-machine operation (deadline extension).
func BenchmarkReschedulePending(b *testing.B) {
	e := NewEngine()
	ev := NewEvent(HandlerFunc(func() {}))
	e.ScheduleEvent(ev, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reschedule(ev, 1000+Ticks(i&1))
	}
}

// BenchmarkFanOut measures bursty same-tick scheduling (message delivery).
func BenchmarkFanOut(b *testing.B) {
	e := NewEngine()
	h := HandlerFunc(func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.Schedule(Ticks(j%8), h)
		}
		if err := e.RunUntilQuiet(0); err != nil {
			b.Fatal(err)
		}
	}
}
