// Package sim provides a deterministic discrete-event simulation kernel.
//
// It plays the role gem5's event queue plays in the paper's methodology:
// hardware components schedule callbacks at future ticks (1 tick = 1 clock
// cycle at the system frequency) and the engine executes them in time order.
// Ties are broken by insertion order, which makes every simulation fully
// deterministic for a given seed and schedule sequence.
//
// The kernel is built to be allocation-free on its hot path:
//
//   - The pending queue is an intrusive 4-ary min-heap over *Event — no
//     container/heap, no `any` boxing, sift loops written out so the
//     comparison inlines.
//   - Callbacks are a one-method Handler interface instead of func(), so a
//     component can implement Fire on a long-lived state-machine struct and
//     reuse one pre-allocated Event (NewEvent + Reschedule) forever.
//   - One-shot Schedule/ScheduleAt calls draw their Event from a free list
//     on the Engine and return it there after firing, so steady-state
//     scheduling does not touch the garbage collector at all.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Ticks is a point in simulated time, measured in clock cycles.
type Ticks uint64

// MaxTicks is the largest representable simulation time.
const MaxTicks = Ticks(math.MaxUint64)

// Handler is a scheduled callback target. Components implement Fire on a
// long-lived struct so one pre-allocated Event can drive a whole state
// machine without per-cycle closure allocations.
type Handler interface {
	Fire()
}

// HandlerFunc adapts an ordinary func() to Handler. func values are
// pointer-shaped, so the interface conversion itself does not allocate;
// only closures that capture variables do.
type HandlerFunc func()

// Fire implements Handler.
func (f HandlerFunc) Fire() { f() }

const (
	// eventPooled marks events owned by the engine's free list; they are
	// recycled after firing.
	eventPooled uint8 = 1 << iota
	// eventFree marks a pooled event currently sitting in the free list.
	// Scheduling one is always a use-after-recycle bug.
	eventFree
)

// Event is a scheduled callback. Component-owned events come from NewEvent
// and may be scheduled, descheduled, and rescheduled indefinitely; events
// returned by the engine's one-shot Schedule calls belong to the engine's
// pool and must not be retained after they fire.
type Event struct {
	h    Handler
	when Ticks
	seq  uint64
	// next links the engine free list (pooled events only).
	next *Event
	// index within the heap, -1 when not scheduled.
	index int32
	flags uint8
}

// NewEvent returns an unscheduled, component-owned event bound to h.
// Reusing one event per state machine keeps scheduling allocation-free.
func NewEvent(h Handler) *Event {
	if h == nil {
		panic("sim: NewEvent with nil handler")
	}
	return &Event{h: h, index: -1}
}

// When returns the tick at which the event is scheduled to fire.
func (e *Event) When() Ticks { return e.when }

// Scheduled reports whether the event is currently in the queue.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 }

// Engine is the simulation event loop. It is not safe for concurrent use;
// all components of one simulated system share a single Engine and run on
// one goroutine, exactly like SimObjects share gem5's event queue.
type Engine struct {
	now      Ticks
	seq      uint64
	heap     []*Event
	free     *Event
	executed uint64
	// stopErr, when set, aborts Run.
	stopErr error
	// intr, when attached, is polled every pollEvery executed events so
	// external cancellation (context, watchdog, signal) can stop the loop
	// without the hot path paying for an atomic load per event.
	intr      *Interrupt
	pollEvery uint64
	sincePoll uint64
}

// initialQueueCap pre-sizes the queue so steady-state simulations never pay
// for heap-slice growth.
const initialQueueCap = 1024

// NewEngine returns an empty engine at tick zero.
func NewEngine() *Engine {
	return &Engine{heap: make([]*Event, 0, initialQueueCap)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Ticks { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) }

// NextWhen returns the tick of the earliest pending event and whether one
// exists. Clusters use it to compute the next conservative time window
// without popping the queue.
func (e *Engine) NextWhen() (Ticks, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].when, true
}

// Reset returns the engine to tick zero with an empty queue, keeping the
// queue capacity and the event pool so harness jobs can reuse one engine
// across sweep cells without reallocating.
func (e *Engine) Reset() {
	for i, ev := range e.heap {
		ev.index = -1
		if ev.flags&eventPooled != 0 {
			e.release(ev)
		}
		e.heap[i] = nil
	}
	e.heap = e.heap[:0]
	e.now = 0
	e.seq = 0
	e.executed = 0
	e.stopErr = nil
	e.sincePoll = 0
}

// SetInterrupt attaches a cooperative-stop interrupt polled once per
// pollEvery executed events (0 selects DefaultPollEvents). Each poll
// pulses the interrupt (feeding any watchdog) and, if it has tripped,
// aborts Run with the trip cause. A nil interrupt detaches. Polling never
// mutates simulation state, so attaching one cannot change results.
func (e *Engine) SetInterrupt(i *Interrupt, pollEvery uint64) {
	if pollEvery == 0 {
		pollEvery = DefaultPollEvents
	}
	e.intr = i
	e.pollEvery = pollEvery
	e.sincePoll = 0
}

// --- event pool ---------------------------------------------------------

func (e *Engine) acquire() *Event {
	ev := e.free
	if ev == nil {
		return &Event{index: -1, flags: eventPooled}
	}
	e.free = ev.next
	ev.next = nil
	ev.flags = eventPooled
	return ev
}

func (e *Engine) release(ev *Event) {
	ev.h = nil
	ev.flags = eventPooled | eventFree
	ev.next = e.free
	e.free = ev
}

// --- scheduling ---------------------------------------------------------

// Schedule enqueues a one-shot firing of h delay ticks from now. The
// returned event comes from the engine's pool: it may be descheduled while
// pending, but must not be retained after it fires — use NewEvent for
// events that are reused.
func (e *Engine) Schedule(delay Ticks, h Handler) *Event {
	return e.ScheduleAt(e.now+delay, h)
}

// ScheduleAt is Schedule at an absolute tick. Scheduling in the past
// panics: it is always a component bug.
func (e *Engine) ScheduleAt(when Ticks, h Handler) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", when, e.now))
	}
	if h == nil {
		panic("sim: schedule nil handler")
	}
	ev := e.acquire()
	ev.h = h
	e.push(ev, when)
	return ev
}

// ScheduleFunc is the func() compatibility shim over Schedule.
func (e *Engine) ScheduleFunc(delay Ticks, fn func()) *Event {
	if fn == nil {
		panic("sim: schedule nil callback")
	}
	return e.ScheduleAt(e.now+delay, HandlerFunc(fn))
}

// ScheduleFuncAt is the func() compatibility shim over ScheduleAt.
func (e *Engine) ScheduleFuncAt(when Ticks, fn func()) *Event {
	if fn == nil {
		panic("sim: schedule nil callback")
	}
	return e.ScheduleAt(when, HandlerFunc(fn))
}

// ScheduleEvent enqueues a component-owned event delay ticks from now.
func (e *Engine) ScheduleEvent(ev *Event, delay Ticks) {
	e.ScheduleEventAt(ev, e.now+delay)
}

// ScheduleEventAt enqueues a component-owned event at an absolute tick.
// The event must not already be scheduled (use Reschedule to move one).
func (e *Engine) ScheduleEventAt(ev *Event, when Ticks) {
	if when < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", when, e.now))
	}
	if ev.index >= 0 {
		panic("sim: ScheduleEventAt on an already-scheduled event")
	}
	if ev.flags&eventFree != 0 {
		panic("sim: schedule of a recycled pooled event")
	}
	if ev.h == nil {
		panic("sim: schedule event with nil handler")
	}
	e.push(ev, when)
}

// Deschedule removes a pending event. Descheduling an unscheduled event is
// a no-op so callers can cancel idempotently.
func (e *Engine) Deschedule(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	e.removeAt(int(ev.index))
	// A canceled one-shot goes straight back to the pool; reviving it
	// afterwards is a use-after-recycle bug the eventFree guard catches.
	if ev.flags&eventPooled != 0 {
		e.release(ev)
	}
}

// Reschedule moves a pending event (or revives a fired one) to a new
// absolute time. A still-pending event keeps its insertion rank; a revived
// one is ranked as a fresh insertion, exactly like the pre-pool kernel.
func (e *Engine) Reschedule(ev *Event, when Ticks) {
	if when < e.now {
		panic(fmt.Sprintf("sim: reschedule at %d before now %d", when, e.now))
	}
	if ev.flags&eventFree != 0 {
		panic("sim: reschedule of a recycled pooled event")
	}
	if ev.index >= 0 {
		ev.when = when
		e.fix(int(ev.index))
		return
	}
	e.push(ev, when)
}

// --- intrusive 4-ary min-heap -------------------------------------------
//
// A 4-ary layout halves tree depth versus binary, trading slightly wider
// sibling scans (which hit one cache line) for fewer cache-missing levels —
// the standard event-queue trade. Ordering is (when, seq): seq is unique,
// so the comparator is a total order and pop order is independent of heap
// shape, which is what keeps the queue swap determinism-preserving.

func eventLess(a, b *Event) bool {
	return a.when < b.when || (a.when == b.when && a.seq < b.seq)
}

func (e *Engine) push(ev *Event, when Ticks) {
	ev.when = when
	ev.seq = e.seq
	e.seq++
	e.heap = append(e.heap, ev)
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) popMin() *Event {
	h := e.heap
	min := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.heap = h[:n]
	min.index = -1
	if n > 0 {
		h[0] = last
		last.index = 0
		e.siftDown(0)
	}
	return min
}

func (e *Engine) removeAt(i int) {
	h := e.heap
	n := len(h) - 1
	ev := h[i]
	last := h[n]
	h[n] = nil
	e.heap = h[:n]
	ev.index = -1
	if i == n {
		return
	}
	h[i] = last
	last.index = int32(i)
	e.fix(i)
}

func (e *Engine) fix(i int) {
	ev := e.heap[i]
	e.siftDown(i)
	if e.heap[i] == ev {
		e.siftUp(i)
	}
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	ev := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = int32(i)
		i = p
	}
	h[i] = ev
	ev.index = int32(i)
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ev := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], h[m]) {
				m = j
			}
		}
		if !eventLess(h[m], ev) {
			break
		}
		h[i] = h[m]
		h[i].index = int32(i)
		i = m
	}
	h[i] = ev
	ev.index = int32(i)
}

// --- run loop -----------------------------------------------------------

// Stop aborts a Run in progress after the current event returns. The error
// is reported by Run; a nil err stops cleanly.
func (e *Engine) Stop(err error) {
	if err == nil {
		err = errStopped
	}
	e.stopErr = err
}

var errStopped = errors.New("sim: stopped")

// ErrMaxEvents is reported by Run when the event budget is exhausted.
var ErrMaxEvents = errors.New("sim: event budget exhausted")

// Run executes events until the queue is empty (global quiescence), the
// horizon is passed, the event budget is exhausted, or Stop is called.
// horizon and maxEvents of 0 mean unlimited. It returns the reason the run
// ended: nil for quiescence or horizon, ErrMaxEvents for budget exhaustion,
// or the Stop error.
func (e *Engine) Run(horizon Ticks, maxEvents uint64) error {
	if horizon == 0 {
		horizon = MaxTicks
	}
	for len(e.heap) > 0 {
		next := e.heap[0]
		if next.when > horizon {
			e.now = horizon
			return nil
		}
		e.popMin()
		e.now = next.when
		next.h.Fire()
		// Pooled one-shots recycle unless the handler re-armed them.
		if next.flags&eventPooled != 0 && next.index < 0 {
			e.release(next)
		}
		e.executed++
		if e.stopErr != nil {
			err := e.stopErr
			e.stopErr = nil
			if errors.Is(err, errStopped) {
				return nil
			}
			return err
		}
		if maxEvents > 0 && e.executed >= maxEvents {
			return ErrMaxEvents
		}
		if e.intr != nil {
			e.sincePoll++
			if e.sincePoll >= e.pollEvery {
				e.sincePoll = 0
				e.intr.Pulse()
				if err := e.intr.Err(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// RunUntilQuiet is Run with no horizon and the given event budget.
func (e *Engine) RunUntilQuiet(maxEvents uint64) error {
	return e.Run(0, maxEvents)
}

// Clock converts between ticks and wall-clock seconds at a fixed frequency.
type Clock struct {
	// HZ is the component frequency in cycles per second.
	HZ float64
}

// Seconds converts a tick count to seconds.
func (c Clock) Seconds(t Ticks) float64 { return float64(t) / c.HZ }

// TicksFor returns the number of whole ticks needed to transfer the given
// number of bytes at bytesPerSec, rounding up and never returning zero for
// a nonzero transfer. Integral rates (every preset in the repo) take an
// exact 128-bit ceil((bytes*HZ)/bps) path, so multi-terabyte transfers do
// not lose ticks to float64 rounding; fractional rates fall back to the
// float path.
func (c Clock) TicksFor(bytes int, bytesPerSec float64) Ticks {
	if bytes <= 0 {
		return 0
	}
	hz := uint64(c.HZ)
	bps := uint64(bytesPerSec)
	if bps > 0 && float64(hz) == c.HZ && float64(bps) == bytesPerSec {
		hi, lo := bits.Mul64(uint64(bytes), hz)
		lo, carry := bits.Add64(lo, bps-1, 0)
		hi += carry
		if hi >= bps {
			return MaxTicks
		}
		t, _ := bits.Div64(hi, lo, bps)
		if t == 0 {
			t = 1
		}
		return Ticks(t)
	}
	t := Ticks(math.Ceil(float64(bytes) / bytesPerSec * c.HZ))
	if t == 0 {
		t = 1
	}
	return t
}
