// Package sim provides a deterministic discrete-event simulation kernel.
//
// It plays the role gem5's event queue plays in the paper's methodology:
// hardware components schedule callbacks at future ticks (1 tick = 1 clock
// cycle at the system frequency) and the engine executes them in time order.
// Ties are broken by insertion order, which makes every simulation fully
// deterministic for a given seed and schedule sequence.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Ticks is a point in simulated time, measured in clock cycles.
type Ticks uint64

// MaxTicks is the largest representable simulation time.
const MaxTicks = Ticks(math.MaxUint64)

// Event is a scheduled callback. The zero value is inert.
type Event struct {
	when Ticks
	seq  uint64
	fn   func()
	// index within the heap, -1 when not scheduled.
	index int
}

// When returns the tick at which the event is scheduled to fire.
func (e *Event) When() Ticks { return e.when }

// Scheduled reports whether the event is currently in the queue.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is the simulation event loop. It is not safe for concurrent use;
// all components of one simulated system share a single Engine and run on
// one goroutine, exactly like SimObjects share gem5's event queue.
type Engine struct {
	now      Ticks
	seq      uint64
	events   eventHeap
	executed uint64
	// stopErr, when set, aborts Run.
	stopErr error
}

// NewEngine returns an empty engine at tick zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Ticks { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule enqueues fn to run delay ticks from now and returns the event,
// which may be used to Deschedule or Reschedule it.
func (e *Engine) Schedule(delay Ticks, fn func()) *Event {
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt enqueues fn at an absolute tick. Scheduling in the past panics:
// it is always a component bug.
func (e *Engine) ScheduleAt(when Ticks, fn func()) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", when, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil callback")
	}
	ev := &Event{when: when, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Deschedule removes a pending event. Descheduling an unscheduled event is a
// no-op so callers can cancel idempotently.
func (e *Engine) Deschedule(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.events, ev.index)
}

// Reschedule moves a pending event (or revives a fired one) to a new
// absolute time.
func (e *Engine) Reschedule(ev *Event, when Ticks) {
	if when < e.now {
		panic(fmt.Sprintf("sim: reschedule at %d before now %d", when, e.now))
	}
	if ev.index >= 0 {
		ev.when = when
		heap.Fix(&e.events, ev.index)
		return
	}
	ev.when = when
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
}

// Stop aborts a Run in progress after the current event returns. The error
// is reported by Run; a nil err stops cleanly.
func (e *Engine) Stop(err error) {
	if err == nil {
		err = errStopped
	}
	e.stopErr = err
}

var errStopped = errors.New("sim: stopped")

// ErrMaxEvents is reported by Run when the event budget is exhausted.
var ErrMaxEvents = errors.New("sim: event budget exhausted")

// Run executes events until the queue is empty (global quiescence), the
// horizon is passed, the event budget is exhausted, or Stop is called.
// horizon and maxEvents of 0 mean unlimited. It returns the reason the run
// ended: nil for quiescence or horizon, ErrMaxEvents for budget exhaustion,
// or the Stop error.
func (e *Engine) Run(horizon Ticks, maxEvents uint64) error {
	if horizon == 0 {
		horizon = MaxTicks
	}
	for len(e.events) > 0 {
		next := e.events[0]
		if next.when > horizon {
			e.now = horizon
			return nil
		}
		heap.Pop(&e.events)
		e.now = next.when
		next.fn()
		e.executed++
		if e.stopErr != nil {
			err := e.stopErr
			e.stopErr = nil
			if errors.Is(err, errStopped) {
				return nil
			}
			return err
		}
		if maxEvents > 0 && e.executed >= maxEvents {
			return ErrMaxEvents
		}
	}
	return nil
}

// RunUntilQuiet is Run with no horizon and the given event budget.
func (e *Engine) RunUntilQuiet(maxEvents uint64) error {
	return e.Run(0, maxEvents)
}

// Clock converts between ticks and wall-clock seconds at a fixed frequency.
type Clock struct {
	// HZ is the component frequency in cycles per second.
	HZ float64
}

// Seconds converts a tick count to seconds.
func (c Clock) Seconds(t Ticks) float64 { return float64(t) / c.HZ }

// TicksFor returns the number of whole ticks needed to transfer the given
// number of bytes at bytesPerSec, rounding up and never returning zero for a
// nonzero transfer.
func (c Clock) TicksFor(bytes int, bytesPerSec float64) Ticks {
	if bytes <= 0 {
		return 0
	}
	t := Ticks(math.Ceil(float64(bytes) / bytesPerSec * c.HZ))
	if t == 0 {
		t = 1
	}
	return t
}
