package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestInterruptFirstTripWins(t *testing.T) {
	i := NewInterrupt()
	if i.Err() != nil {
		t.Fatal("fresh interrupt reports an error")
	}
	e1 := errors.New("one")
	e2 := errors.New("two")
	i.Trip(nil) // ignored
	if i.Err() != nil {
		t.Fatal("nil trip took effect")
	}
	i.Trip(e1)
	i.Trip(e2)
	if got := i.Err(); !errors.Is(got, e1) {
		t.Fatalf("Err() = %v, want first trip %v", got, e1)
	}
}

func TestReasonFor(t *testing.T) {
	cases := []struct {
		err  error
		want StopReason
	}{
		{nil, ""},
		{context.Canceled, StopCancelled},
		{context.DeadlineExceeded, StopDeadline},
		{ErrMaxEvents, StopBudget},
		{ErrStalled, StopStalled},
		{errors.New("unrelated"), ""},
	}
	for _, c := range cases {
		if got := ReasonFor(c.err); got != c.want {
			t.Errorf("ReasonFor(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestEnginePollStopsRun(t *testing.T) {
	e := NewEngine()
	intr := NewInterrupt()
	e.SetInterrupt(intr, 4)
	count := 0
	var step func()
	step = func() {
		count++
		if count == 10 {
			intr.Trip(context.Canceled)
		}
		e.ScheduleFunc(1, step)
	}
	e.ScheduleFunc(0, step)
	err := e.Run(0, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	// Trip at event 10 must be observed at the next poll boundary
	// (a multiple of the stride), not hundreds of events later.
	if count < 10 || count > 12 {
		t.Fatalf("ran %d events; want stop within one poll stride of the trip", count)
	}
}

func TestEnginePollDoesNotChangeResults(t *testing.T) {
	run := func(attach bool) (Ticks, uint64) {
		e := NewEngine()
		if attach {
			e.SetInterrupt(NewInterrupt(), 1)
		}
		n := 0
		var step func()
		step = func() {
			n++
			if n < 1000 {
				e.ScheduleFunc(3, step)
			}
		}
		e.ScheduleFunc(0, step)
		if err := e.Run(0, 0); err != nil {
			t.Fatal(err)
		}
		return e.Now(), e.Executed()
	}
	plainNow, plainN := run(false)
	pollNow, pollN := run(true)
	if plainNow != pollNow || plainN != pollN {
		t.Fatalf("poll perturbed the run: (%d,%d) vs (%d,%d)", plainNow, plainN, pollNow, pollN)
	}
}

func TestWatchContextImmediateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	intr := NewInterrupt()
	stop := WatchContext(ctx, intr)
	defer stop()
	// Pre-cancelled contexts must trip synchronously: the first poll
	// observes the cancellation deterministically.
	if err := intr.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("immediate cancel not tripped synchronously: %v", err)
	}
}

func TestWatchContextAsyncCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	intr := NewInterrupt()
	stop := WatchContext(ctx, intr)
	defer stop()
	if intr.Err() != nil {
		t.Fatal("tripped before cancellation")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for intr.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := intr.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel not observed: %v", err)
	}
}

func TestWatchContextBackground(t *testing.T) {
	// Background has no Done channel; the watcher must be a no-op.
	stop := WatchContext(context.Background(), NewInterrupt())
	stop()
	stop() // idempotent
}

func TestWatchdogTripsOnSilence(t *testing.T) {
	intr := NewInterrupt()
	stop := StartWatchdog(intr, 10*time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for intr.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := intr.Err(); !errors.Is(err, ErrStalled) {
		t.Fatalf("silent interrupt did not trip watchdog: %v", err)
	}
	if ReasonFor(intr.Err()) != StopStalled {
		t.Fatalf("watchdog error classifies as %q", ReasonFor(intr.Err()))
	}
}

func TestWatchdogSparedByPulses(t *testing.T) {
	intr := NewInterrupt()
	stop := StartWatchdog(intr, 50*time.Millisecond)
	defer stop()
	for end := time.Now().Add(300 * time.Millisecond); time.Now().Before(end); {
		intr.Pulse()
		time.Sleep(5 * time.Millisecond)
	}
	if err := intr.Err(); err != nil {
		t.Fatalf("watchdog tripped despite steady pulses: %v", err)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	stop := StartWatchdog(NewInterrupt(), 0)
	stop()
}

func TestClusterBarrierObservesInterrupt(t *testing.T) {
	// Two engines, tiny event counts — well under any poll stride — so
	// only the barrier check can observe the trip.
	engines := []*Engine{NewEngine(), NewEngine()}
	c, err := NewCluster(engines, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	intr := NewInterrupt()
	c.SetInterrupt(intr, 0)
	rounds := 0
	exchange := func() (int, error) {
		rounds++
		if rounds == 3 {
			intr.Trip(context.Canceled)
		}
		if rounds < 100 {
			for _, e := range engines {
				e.ScheduleFunc(5, func() {})
			}
			return len(engines), nil
		}
		return 0, nil
	}
	err = c.Run(0, exchange)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cluster Run = %v (rounds=%d), want context.Canceled", err, rounds)
	}
	if rounds > 4 {
		t.Fatalf("interrupt observed only after %d rounds", rounds)
	}
}
