// Conservative time-window parallel simulation over multiple engines.
//
// A Cluster runs one Engine per shard (in NOVA, one shard per GPN). The
// shards free-run in lockstep windows [W, W+λ-1], where W is the minimum
// pending-event tick across all shards and λ is the cluster's lookahead:
// the minimum latency any cross-shard interaction can have. As long as
// every cross-shard message is buffered at send time and delivered at a
// window barrier — never directly into another shard's queue — no event
// scheduled inside a window can affect another shard within that same
// window, so the shards may execute concurrently without violating
// causality. This is classic null-message-free conservative PDES with a
// global window barrier in place of per-link null messages.
//
// Determinism rule: everything that happens between windows (the exchange
// callback) runs single-threaded on the coordinating goroutine and must
// process shards in a fixed order (ascending shard index). Within a
// window, shards only touch their own state. Under those two rules the
// sequence of events each engine executes is a pure function of the
// initial state — independent of the worker count — so results are
// bit-identical at every -shards setting.
package sim

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ExchangeFunc delivers the cross-shard messages buffered during the
// window that just closed, scheduling them on their destination engines.
// It runs on the coordinating goroutine with all shards stopped, and must
// iterate source shards in a fixed order (the determinism rule). It
// returns the number of messages delivered; the cluster terminates when
// all queues are empty and an exchange delivers nothing.
type ExchangeFunc func() (int, error)

// Cluster coordinates a set of engines under conservative time windows.
type Cluster struct {
	engines   []*Engine
	lookahead Ticks
	workers   int

	// budgets[i] is the Executed() count at which engine i must stop in
	// the current window; 0 means unlimited. Written by the coordinator
	// before the window signal, read by workers after it (the channel
	// send is the happens-before edge).
	budgets []uint64
	// errs[i] is engine i's result for the current window. Workers own
	// disjoint index sets, so no two goroutines write the same slot.
	errs []error

	// intr, when attached, is checked at every window barrier (and the
	// top of the single-engine fast path) in addition to the per-engine
	// event-stride polls, so short runs that never reach the poll stride
	// still observe cancellation promptly.
	intr *Interrupt

	startOnce sync.Once
	closeOnce sync.Once
	work      []chan Ticks
	done      chan struct{}

	windows     uint64
	windowSecs  float64
	barrierSecs float64
}

// NewCluster builds a cluster over the given engines. lookahead is the
// minimum cross-shard latency in ticks and must be positive: a zero (or
// negative-cast) lookahead would make the windows empty and the
// synchronization unsound, so it is rejected at construction. workers is
// the number of goroutines that execute windows; it is clamped to
// [1, len(engines)].
func NewCluster(engines []*Engine, lookahead Ticks, workers int) (*Cluster, error) {
	if len(engines) == 0 {
		return nil, errors.New("sim: cluster needs at least one engine")
	}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("sim: cluster engine %d is nil", i)
		}
	}
	// The upper bound catches negative values cast into Ticks (uint64):
	// no real latency is anywhere near half the tick range.
	if lookahead == 0 || lookahead > MaxTicks/2 {
		return nil, fmt.Errorf("sim: cluster lookahead %d out of range; need a positive cross-shard latency", lookahead)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(engines) {
		workers = len(engines)
	}
	return &Cluster{
		engines:   engines,
		lookahead: lookahead,
		workers:   workers,
		budgets:   make([]uint64, len(engines)),
		errs:      make([]error, len(engines)),
	}, nil
}

// SetInterrupt attaches a cooperative-stop interrupt to the cluster and
// every engine in it (each polling once per pollEvery executed events;
// 0 selects DefaultPollEvents). The cluster additionally pulses and checks
// the interrupt at every window barrier, which doubles as the liveness
// heartbeat for stall watchdogs.
func (c *Cluster) SetInterrupt(i *Interrupt, pollEvery uint64) {
	c.intr = i
	for _, e := range c.engines {
		e.SetInterrupt(i, pollEvery)
	}
}

// checkInterrupt pulses the attached interrupt and returns its trip cause,
// if any. Called once per barrier/iteration on the coordinator goroutine.
func (c *Cluster) checkInterrupt() error {
	if c.intr == nil {
		return nil
	}
	c.intr.Pulse()
	return c.intr.Err()
}

// Lookahead returns the cluster's conservative lookahead in ticks.
func (c *Cluster) Lookahead() Ticks { return c.lookahead }

// Workers returns the effective worker-goroutine count.
func (c *Cluster) Workers() int { return c.workers }

// Windows returns the number of time windows executed so far.
func (c *Cluster) Windows() uint64 { return c.windows }

// WindowSeconds returns wall-clock time spent inside windows (shards
// executing events, possibly in parallel).
func (c *Cluster) WindowSeconds() float64 { return c.windowSecs }

// BarrierSeconds returns wall-clock time spent at window barriers
// (computing the next window and exchanging cross-shard messages).
func (c *Cluster) BarrierSeconds() float64 { return c.barrierSecs }

// Executed returns the total events executed across all engines.
func (c *Cluster) Executed() uint64 {
	var n uint64
	for _, e := range c.engines {
		n += e.Executed()
	}
	return n
}

// Now returns the maximum current time across all engines.
func (c *Cluster) Now() Ticks {
	var t Ticks
	for _, e := range c.engines {
		if n := e.Now(); n > t {
			t = n
		}
	}
	return t
}

// Run executes windows until every engine is quiescent and an exchange
// delivers nothing, the total event budget is exhausted (ErrMaxEvents),
// or a shard or the exchange reports an error. budget 0 means unlimited.
//
// The single-engine case bypasses the window machinery entirely: the one
// engine free-runs to quiescence between exchanges, which is exactly the
// pre-cluster sequential kernel path (same events, same order, same
// allocation-free loop).
func (c *Cluster) Run(budget uint64, exchange ExchangeFunc) error {
	if len(c.engines) == 1 {
		e := c.engines[0]
		for {
			if err := c.checkInterrupt(); err != nil {
				return err
			}
			if err := e.Run(0, budget); err != nil {
				return err
			}
			n, err := exchange()
			if err != nil {
				return err
			}
			if n == 0 && e.Pending() == 0 {
				return nil
			}
		}
	}
	for {
		if err := c.checkInterrupt(); err != nil {
			return err
		}
		w, ok := c.nextWindow()
		if !ok {
			// All queues empty: one final exchange may still inject
			// buffered messages; if it does not, we are quiescent.
			t0 := time.Now()
			n, err := exchange()
			c.barrierSecs += time.Since(t0).Seconds()
			if err != nil {
				return err
			}
			if n == 0 {
				return nil
			}
			continue
		}
		if budget > 0 {
			total := c.Executed()
			if total >= budget {
				return ErrMaxEvents
			}
			rem := budget - total
			for i, e := range c.engines {
				c.budgets[i] = e.Executed() + rem
			}
		} else {
			for i := range c.budgets {
				c.budgets[i] = 0
			}
		}
		horizon := w + c.lookahead - 1
		if horizon < w { // overflow
			horizon = MaxTicks
		}
		t0 := time.Now()
		c.runWindow(horizon)
		c.windowSecs += time.Since(t0).Seconds()
		c.windows++
		// First error by shard index, so failure reporting is as
		// deterministic as success.
		for _, err := range c.errs {
			if err != nil {
				return err
			}
		}
		t1 := time.Now()
		_, err := exchange()
		c.barrierSecs += time.Since(t1).Seconds()
		if err != nil {
			return err
		}
	}
}

// nextWindow returns the earliest pending tick across all engines.
func (c *Cluster) nextWindow() (Ticks, bool) {
	var w Ticks
	ok := false
	for _, e := range c.engines {
		if t, has := e.NextWhen(); has && (!ok || t < w) {
			w, ok = t, true
		}
	}
	return w, ok
}

// runWindow executes one window on all engines. With one worker it stays
// on the calling goroutine; otherwise persistent workers each own a
// static subset of engines (engine i belongs to worker i % workers).
func (c *Cluster) runWindow(horizon Ticks) {
	if c.workers <= 1 {
		for i, e := range c.engines {
			c.errs[i] = e.Run(horizon, c.budgets[i])
		}
		return
	}
	c.startWorkers()
	for _, ch := range c.work {
		ch <- horizon
	}
	for range c.work {
		<-c.done
	}
}

func (c *Cluster) startWorkers() {
	c.startOnce.Do(func() {
		c.work = make([]chan Ticks, c.workers)
		c.done = make(chan struct{}, c.workers)
		for wi := 0; wi < c.workers; wi++ {
			ch := make(chan Ticks)
			c.work[wi] = ch
			go func(wi int, ch chan Ticks) {
				for horizon := range ch {
					for i := wi; i < len(c.engines); i += c.workers {
						c.errs[i] = c.engines[i].Run(horizon, c.budgets[i])
					}
					c.done <- struct{}{}
				}
			}(wi, ch)
		}
	})
}

// Close shuts down the worker goroutines. Safe to call multiple times and
// on clusters that never started workers.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		for _, ch := range c.work {
			close(ch)
		}
	})
}
