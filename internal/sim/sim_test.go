package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 3) })
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-tick events fired out of insertion order: %v", got)
	}
}

func TestEventsFireInNondecreasingTime(t *testing.T) {
	// Property: for random schedules (including events scheduled from
	// within events), observed firing times never decrease.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var last Ticks
		ok := true
		var spawn func()
		n := 0
		spawn = func() {
			if last > e.Now() {
				ok = false
			}
			last = e.Now()
			if n < 500 {
				n++
				e.Schedule(Ticks(rng.Intn(50)), spawn)
				if rng.Intn(3) == 0 {
					e.Schedule(Ticks(rng.Intn(50)), spawn)
					n++
				}
			}
		}
		for i := 0; i < 5; i++ {
			e.Schedule(Ticks(rng.Intn(100)), spawn)
		}
		if err := e.RunUntilQuiet(0); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeschedule(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Deschedule(ev)
	e.Deschedule(ev) // idempotent
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("descheduled event fired")
	}
	if ev.Scheduled() {
		t.Fatal("event still reports scheduled")
	}
}

func TestReschedule(t *testing.T) {
	e := NewEngine()
	var at Ticks
	ev := e.Schedule(10, func() { at = e.Now() })
	e.Reschedule(ev, 25)
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if at != 25 {
		t.Fatalf("fired at %d, want 25", at)
	}
	// Revive the fired event.
	e.Reschedule(ev, 40)
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if at != 40 {
		t.Fatalf("revived event fired at %d, want 40", at)
	}
}

func TestHorizon(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(100, func() { fired = true })
	if err := e.Run(50, 0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %d, want horizon 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestMaxEvents(t *testing.T) {
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() { n++; e.Schedule(1, tick) }
	e.Schedule(0, tick)
	err := e.RunUntilQuiet(1000)
	if !errors.Is(err, ErrMaxEvents) {
		t.Fatalf("err = %v, want ErrMaxEvents", err)
	}
	if n != 1000 {
		t.Fatalf("executed %d, want 1000", n)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	stopErr := errors.New("boom")
	ran := 0
	e.Schedule(1, func() { ran++; e.Stop(stopErr) })
	e.Schedule(2, func() { ran++ })
	if err := e.RunUntilQuiet(0); !errors.Is(err, stopErr) {
		t.Fatalf("err = %v, want %v", err, stopErr)
	}
	if ran != 1 {
		t.Fatalf("ran %d events after stop, want 1", ran)
	}
	// Clean stop returns nil.
	e2 := NewEngine()
	e2.Schedule(1, func() { e2.Stop(nil) })
	if err := e2.RunUntilQuiet(0); err != nil {
		t.Fatalf("clean stop returned %v", err)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
}

func TestClock(t *testing.T) {
	c := Clock{HZ: 2e9}
	if s := c.Seconds(2e9); s != 1.0 {
		t.Fatalf("Seconds(2e9) = %v, want 1", s)
	}
	// 32 bytes at 32 GB/s at 2 GHz = 2 cycles.
	if ticks := c.TicksFor(32, 32e9); ticks != 2 {
		t.Fatalf("TicksFor = %d, want 2", ticks)
	}
	if ticks := c.TicksFor(0, 32e9); ticks != 0 {
		t.Fatalf("TicksFor(0) = %d, want 0", ticks)
	}
	if ticks := c.TicksFor(1, 1e18); ticks != 1 {
		t.Fatalf("tiny transfer must take at least 1 tick, got %d", ticks)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		rng := rand.New(rand.NewSource(42))
		var got []int
		var spawn func(id int)
		n := 0
		spawn = func(id int) {
			got = append(got, id)
			if n < 2000 {
				n++
				e.Schedule(Ticks(rng.Intn(10)), func() { spawn(n) })
			}
		}
		e.Schedule(0, func() { spawn(-1) })
		if err := e.RunUntilQuiet(0); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
