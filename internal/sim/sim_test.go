package sim

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.ScheduleFunc(10, func() { got = append(got, 2) })
	e.ScheduleFunc(5, func() { got = append(got, 1) })
	e.ScheduleFunc(20, func() { got = append(got, 3) })
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.ScheduleFunc(7, func() { got = append(got, i) })
	}
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-tick events fired out of insertion order: %v", got)
	}
}

func TestEventsFireInNondecreasingTime(t *testing.T) {
	// Property: for random schedules (including events scheduled from
	// within events), observed firing times never decrease.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var last Ticks
		ok := true
		var spawn func()
		n := 0
		spawn = func() {
			if last > e.Now() {
				ok = false
			}
			last = e.Now()
			if n < 500 {
				n++
				e.ScheduleFunc(Ticks(rng.Intn(50)), spawn)
				if rng.Intn(3) == 0 {
					e.ScheduleFunc(Ticks(rng.Intn(50)), spawn)
					n++
				}
			}
		}
		for i := 0; i < 5; i++ {
			e.ScheduleFunc(Ticks(rng.Intn(100)), spawn)
		}
		if err := e.RunUntilQuiet(0); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeschedule(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.ScheduleFunc(10, func() { fired = true })
	e.Deschedule(ev)
	e.Deschedule(ev) // idempotent
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("descheduled event fired")
	}
	if ev.Scheduled() {
		t.Fatal("event still reports scheduled")
	}
}

// counter is a reusable Handler for pre-allocated event tests.
type counter struct {
	e  *Engine
	at []Ticks
}

func (c *counter) Fire() { c.at = append(c.at, c.e.Now()) }

func TestRescheduleComponentEvent(t *testing.T) {
	e := NewEngine()
	c := &counter{e: e}
	ev := NewEvent(c)
	e.ScheduleEvent(ev, 10)
	e.Reschedule(ev, 25) // move while pending
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if len(c.at) != 1 || c.at[0] != 25 {
		t.Fatalf("fired at %v, want [25]", c.at)
	}
	// Revive the fired event — the pre-allocated reuse pattern.
	e.Reschedule(ev, 40)
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if len(c.at) != 2 || c.at[1] != 40 {
		t.Fatalf("revived event fired at %v, want [25 40]", c.at)
	}
}

func TestPooledEventRecycled(t *testing.T) {
	e := NewEngine()
	ev := e.ScheduleFunc(1, func() {})
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// The fired one-shot went back to the pool: the next Schedule must
	// reuse the same Event without allocating.
	ev2 := e.ScheduleFunc(1, func() {})
	if ev != ev2 {
		t.Fatal("pooled event was not reused by the next Schedule")
	}
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
}

func TestRescheduleRecycledPanics(t *testing.T) {
	e := NewEngine()
	ev := e.ScheduleFunc(1, func() {})
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("rescheduling a recycled pooled event did not panic")
		}
	}()
	e.Reschedule(ev, 10)
}

func TestReset(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.ScheduleFunc(1, func() { fired++ })
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	ev := NewEvent(HandlerFunc(func() { fired++ }))
	e.ScheduleEvent(ev, 100)
	e.ScheduleFunc(50, func() { fired++ })
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Executed() != 0 {
		t.Fatalf("Reset left now=%d pending=%d executed=%d", e.Now(), e.Pending(), e.Executed())
	}
	if ev.Scheduled() {
		t.Fatal("component event still scheduled after Reset")
	}
	// The engine is fully reusable: the component event can be re-armed.
	e.ScheduleEvent(ev, 5)
	e.ScheduleFunc(3, func() { fired++ })
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if fired != 3 || e.Now() != 5 {
		t.Fatalf("after Reset: fired=%d now=%d, want 3 at 5", fired, e.Now())
	}
}

func TestHorizon(t *testing.T) {
	e := NewEngine()
	fired := false
	e.ScheduleFunc(100, func() { fired = true })
	if err := e.Run(50, 0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %d, want horizon 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestMaxEvents(t *testing.T) {
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() { n++; e.ScheduleFunc(1, tick) }
	e.ScheduleFunc(0, tick)
	err := e.RunUntilQuiet(1000)
	if !errors.Is(err, ErrMaxEvents) {
		t.Fatalf("err = %v, want ErrMaxEvents", err)
	}
	if n != 1000 {
		t.Fatalf("executed %d, want 1000", n)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	stopErr := errors.New("boom")
	ran := 0
	e.ScheduleFunc(1, func() { ran++; e.Stop(stopErr) })
	e.ScheduleFunc(2, func() { ran++ })
	if err := e.RunUntilQuiet(0); !errors.Is(err, stopErr) {
		t.Fatalf("err = %v, want %v", err, stopErr)
	}
	if ran != 1 {
		t.Fatalf("ran %d events after stop, want 1", ran)
	}
	// Clean stop returns nil.
	e2 := NewEngine()
	e2.ScheduleFunc(1, func() { e2.Stop(nil) })
	if err := e2.RunUntilQuiet(0); err != nil {
		t.Fatalf("clean stop returned %v", err)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.ScheduleFunc(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.ScheduleFuncAt(5, func() {})
	})
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleScheduleEventPanics(t *testing.T) {
	e := NewEngine()
	ev := NewEvent(HandlerFunc(func() {}))
	e.ScheduleEvent(ev, 10)
	defer func() {
		if recover() == nil {
			t.Error("double ScheduleEvent did not panic")
		}
	}()
	e.ScheduleEvent(ev, 20)
}

func TestClock(t *testing.T) {
	c := Clock{HZ: 2e9}
	if s := c.Seconds(2e9); s != 1.0 {
		t.Fatalf("Seconds(2e9) = %v, want 1", s)
	}
	// 32 bytes at 32 GB/s at 2 GHz = 2 cycles.
	if ticks := c.TicksFor(32, 32e9); ticks != 2 {
		t.Fatalf("TicksFor = %d, want 2", ticks)
	}
	if ticks := c.TicksFor(0, 32e9); ticks != 0 {
		t.Fatalf("TicksFor(0) = %d, want 0", ticks)
	}
	if ticks := c.TicksFor(1, 1e18); ticks != 1 {
		t.Fatalf("tiny transfer must take at least 1 tick, got %d", ticks)
	}
}

func TestTicksForIntegerExact(t *testing.T) {
	c := Clock{HZ: 2e9}
	// Exact division boundary: no off-by-one from rounding up.
	if ticks := c.TicksFor(64, 32e9); ticks != 4 {
		t.Fatalf("TicksFor(64) = %d, want exactly 4", ticks)
	}
	// One byte over the boundary rounds up by exactly one tick.
	if ticks := c.TicksFor(65, 32e9); ticks != 5 {
		t.Fatalf("TicksFor(65) = %d, want 5", ticks)
	}
	// Large transfers: 1 TiB at 32 GB/s and 2 GHz is exactly
	// 2^40 * 2e9 / 32e9 = 68719476736 ticks. float64 has only 52
	// mantissa bits, so the product 2^40 * 2e9 ≈ 2.2e21 is no longer
	// exactly representable and the float path can drift; the integer
	// path must not.
	want := Ticks(1 << 40 * 2 / 32)
	if ticks := c.TicksFor(1<<40, 32e9); ticks != want {
		t.Fatalf("TicksFor(1 TiB) = %d, want %d", ticks, want)
	}
	// Huge transfer whose bytes*HZ product overflows uint64: the 128-bit
	// path must still be exact. 2^60 bytes * 2e9 Hz / 32e9 B/s = 2^60/16.
	want = Ticks(1 << 56)
	if ticks := c.TicksFor(1<<60, 32e9); ticks != want {
		t.Fatalf("TicksFor(2^60) = %d, want %d", ticks, want)
	}
	// Fractional bandwidth falls back to the float path and still rounds
	// up and never returns zero.
	cf := Clock{HZ: 2e9}
	if ticks := cf.TicksFor(1, 0.5); ticks != 4e9 {
		t.Fatalf("TicksFor at 0.5 B/s = %d, want 4e9", ticks)
	}
	// Agreement between paths on a spread of small values.
	for bytes := 1; bytes < 300; bytes += 7 {
		got := c.TicksFor(bytes, 9.6e9)
		wantF := Ticks(math.Ceil(float64(bytes) / 9.6e9 * 2e9))
		if wantF == 0 {
			wantF = 1
		}
		if got != wantF {
			t.Fatalf("TicksFor(%d) = %d, float says %d", bytes, got, wantF)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		rng := rand.New(rand.NewSource(42))
		var got []int
		var spawn func(id int)
		n := 0
		spawn = func(id int) {
			got = append(got, id)
			if n < 2000 {
				n++
				e.ScheduleFunc(Ticks(rng.Intn(10)), func() { spawn(n) })
			}
		}
		e.ScheduleFunc(0, func() { spawn(-1) })
		if err := e.RunUntilQuiet(0); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestHeapStress cross-checks the intrusive 4-ary heap against a reference
// sort under random schedule/deschedule/reschedule churn.
func TestHeapStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := NewEngine()
	type rec struct {
		when Ticks
		seq  int
	}
	var fired []rec
	seq := 0
	var live []*Event
	for i := 0; i < 5000; i++ {
		switch op := rng.Intn(10); {
		case op < 6 || len(live) == 0:
			s := seq
			seq++
			when := Ticks(rng.Intn(1000))
			var ev *Event
			ev = e.ScheduleFunc(when, func() { fired = append(fired, rec{e.Now(), s}) })
			live = append(live, ev)
		case op < 8:
			k := rng.Intn(len(live))
			e.Deschedule(live[k])
			live = append(live[:k], live[k+1:]...)
		default:
			k := rng.Intn(len(live))
			if live[k].Scheduled() {
				e.Reschedule(live[k], Ticks(rng.Intn(1000)))
			}
		}
	}
	if err := e.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i].when < fired[i-1].when {
			t.Fatalf("time went backwards at %d: %v -> %v", i, fired[i-1], fired[i])
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain", e.Pending())
	}
}
