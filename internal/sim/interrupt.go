package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrStalled reports a watchdog trip: wall-clock time elapsed with no
// simulation progress (no events executed, no tick advance).
var ErrStalled = errors.New("sim: stalled")

// DefaultPollEvents is the default cancellation-poll stride: the kernel
// checks the interrupt once per this many executed events. At ~10ns/event
// the default costs one atomic load every ~80µs of simulated work, keeping
// the hot loop unperturbed while bounding cancellation latency.
const DefaultPollEvents = 8192

// StopReason classifies why a run stopped early. The empty string means
// the run completed normally (or failed for a non-cooperative reason).
type StopReason string

const (
	StopCancelled StopReason = "cancelled"
	StopDeadline  StopReason = "deadline"
	StopBudget    StopReason = "budget"
	StopStalled   StopReason = "stalled"
)

// ReasonFor maps an error returned by a run to its StopReason. Errors that
// are not a cooperative stop (deadlock, config errors, ...) map to "".
func ReasonFor(err error) StopReason {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.Canceled):
		return StopCancelled
	case errors.Is(err, context.DeadlineExceeded):
		return StopDeadline
	case errors.Is(err, ErrMaxEvents):
		return StopBudget
	case errors.Is(err, ErrStalled):
		return StopStalled
	}
	return ""
}

// Interrupt is the cooperative stop channel between a running simulation
// and the outside world (context watchers, watchdogs, signal handlers).
// The simulation side calls Pulse/Err on its poll stride; any other
// goroutine may Trip it. The first Trip wins; later ones are ignored.
//
// All state is atomic: tripping never blocks the simulation, and polling
// is a single pointer load on the fast path, so attaching an Interrupt
// cannot perturb simulation results — only when the run stops.
type Interrupt struct {
	err   atomic.Pointer[error]
	beats atomic.Uint64
}

// NewInterrupt returns an untripped Interrupt.
func NewInterrupt() *Interrupt { return &Interrupt{} }

// Trip requests a stop with the given cause. Only the first call takes
// effect. A nil err is ignored.
func (i *Interrupt) Trip(err error) {
	if err == nil {
		return
	}
	i.err.CompareAndSwap(nil, &err)
}

// Err returns the trip cause, or nil if the Interrupt has not tripped.
func (i *Interrupt) Err() error {
	if p := i.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Pulse records a liveness heartbeat. The simulation calls it on every
// poll; watchdogs compare Beats across a wall-clock interval to detect
// stalls.
func (i *Interrupt) Pulse() { i.beats.Add(1) }

// Beats returns the number of Pulses observed so far.
func (i *Interrupt) Beats() uint64 { return i.beats.Load() }

// WatchContext trips the Interrupt when ctx is cancelled, translating the
// context's error (Canceled or DeadlineExceeded) into the trip cause. It
// returns a stop function that must be called to release the watcher; stop
// is idempotent. An already-cancelled context trips synchronously, so an
// immediate cancellation is observed deterministically by the very first
// poll.
func WatchContext(ctx context.Context, i *Interrupt) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	if err := ctx.Err(); err != nil {
		i.Trip(err)
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			i.Trip(ctx.Err())
		case <-done:
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// StartWatchdog trips the Interrupt with ErrStalled when no Pulse arrives
// across a full interval — i.e. the simulation executed no events and
// advanced no barrier for that long. It returns a stop function that must
// be called to release the watchdog; stop is idempotent. A non-positive
// interval disables the watchdog entirely.
func StartWatchdog(i *Interrupt, interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		last := i.Beats()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				now := i.Beats()
				if now == last {
					i.Trip(fmt.Errorf("%w: no simulation progress for %v (watchdog)", ErrStalled, interval))
					return
				}
				last = now
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
