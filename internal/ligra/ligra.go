// Package ligra is a runnable Ligra-style shared-memory graph processing
// framework (Shun & Blelloch, PPoPP 2013), the software baseline of the
// paper's Fig. 4. It provides the edgeMap/vertexMap abstraction with
// Ligra's signature direction optimization — sparse frontiers push along
// out-edges, dense frontiers pull along in-edges — parallelized across
// goroutines with atomic update operators.
//
// Unlike the accelerator models, this engine is measured in wall-clock
// time: it is the "8-core x86 running Ligra" data point.
package ligra

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nova/graph"
	"nova/internal/sim"
	"nova/internal/stats"
)

// Metric names for the root-level statistics the software engine exports
// to the harness metrics bag; they are also the stable dump paths of the
// engine's stats tree.
const (
	MetricIterations  = "iterations"
	MetricWallSeconds = "wall_seconds"
)

// Frontier is a set of active vertices, in sparse (list) or dense (bitmap)
// representation.
type Frontier struct {
	n      int
	sparse []graph.VertexID
	dense  []uint32 // 0/1 per vertex
	isDen  bool
	count  int
}

// NewSparseFrontier builds a sparse frontier over n vertices.
func NewSparseFrontier(n int, verts []graph.VertexID) *Frontier {
	return &Frontier{n: n, sparse: verts, count: len(verts)}
}

// NewDenseFrontier builds a dense frontier from a bitmap.
func NewDenseFrontier(bits []uint32) *Frontier {
	count := 0
	for _, b := range bits {
		if b != 0 {
			count++
		}
	}
	return &Frontier{n: len(bits), dense: bits, isDen: true, count: count}
}

// Len returns the number of active vertices.
func (f *Frontier) Len() int { return f.count }

// IsEmpty reports an empty frontier.
func (f *Frontier) IsEmpty() bool { return f.count == 0 }

// Vertices returns the active set as a slice (materializing if dense).
func (f *Frontier) Vertices() []graph.VertexID {
	if !f.isDen {
		return f.sparse
	}
	out := make([]graph.VertexID, 0, f.count)
	for v, b := range f.dense {
		if b != 0 {
			out = append(out, graph.VertexID(v))
		}
	}
	return out
}

// EdgeFuncs is the operator triple of Ligra's EDGEMAP.
type EdgeFuncs struct {
	// Update attempts s→d along an edge of weight w and returns true if
	// d newly joins the output frontier. It must be safe under
	// concurrent invocation (use atomics).
	Update func(s, d graph.VertexID, w uint32) bool
	// Cond gates destinations; nil means always true.
	Cond func(d graph.VertexID) bool
}

// Engine runs edgeMap/vertexMap with a fixed worker count.
type Engine struct {
	Threads int
	// Threshold is Ligra's |frontier|+outEdges(frontier) > |E|/Threshold
	// switch to dense; 20 is the canonical value.
	Threshold int64
	// EdgesTraversed counts update attempts across the run.
	EdgesTraversed int64

	// Interrupt, when non-nil, is polled between edgeMap iterations: a
	// tripped interrupt makes the kernel return early with whatever
	// distances/ranks it has computed so far (a partial result). Kernels
	// pulse it each iteration so a stall watchdog sees progress.
	Interrupt *sim.Interrupt

	// dedupSeen/dedupGen implement generation-stamped duplicate removal
	// for sparse frontiers: one word per vertex, no clearing between
	// iterations. Like EdgesTraversed, this makes an Engine single-run
	// state — build one per run.
	dedupSeen []uint32
	dedupGen  uint32

	// Direction-optimization profile: push vs pull iteration counts and
	// frontier sizes at each EdgeMap (StatsDump reports them).
	sparseIters uint64
	denseIters  uint64
	frontierLen stats.Distribution
}

// NewEngine returns an engine using all available cores.
func NewEngine() *Engine {
	return &Engine{Threads: runtime.GOMAXPROCS(0), Threshold: 20}
}

// stopped reports whether the engine's interrupt has tripped, pulsing it
// first so iteration boundaries count as progress beats for the watchdog.
func (e *Engine) stopped() bool {
	if e.Interrupt == nil {
		return false
	}
	e.Interrupt.Pulse()
	return e.Interrupt.Err() != nil
}

func (e *Engine) parallelFor(n int, body func(lo, hi int)) {
	threads := e.Threads
	if threads < 1 {
		threads = 1
	}
	if n < 1024 || threads == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// EdgeMap applies fns along the frontier's out-edges, choosing push
// (sparse) or pull (dense, over gT's in-edges) by Ligra's density
// heuristic, and returns the next frontier.
func (e *Engine) EdgeMap(g, gT *graph.CSR, f *Frontier, fns EdgeFuncs) *Frontier {
	var frontierEdges int64
	for _, v := range f.Vertices() {
		frontierEdges += g.OutDegree(v)
	}
	e.frontierLen.Sample(float64(f.Len()))
	if gT != nil && e.Threshold > 0 && int64(f.Len())+frontierEdges > g.NumEdges()/e.Threshold {
		e.denseIters++
		return e.edgeMapDense(g, gT, f, fns)
	}
	e.sparseIters++
	return e.edgeMapSparse(g, f, fns)
}

func (e *Engine) edgeMapSparse(g *graph.CSR, f *Frontier, fns EdgeFuncs) *Frontier {
	verts := f.Vertices()
	next := make([][]graph.VertexID, e.Threads)
	var traversed int64
	var wg sync.WaitGroup
	threads := e.Threads
	if threads < 1 {
		threads = 1
	}
	chunk := (len(verts) + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > len(verts) {
			hi = len(verts)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			var local []graph.VertexID
			var cnt int64
			for _, s := range verts[lo:hi] {
				elo, ehi := g.RowPtr[s], g.RowPtr[s+1]
				for i := elo; i < ehi; i++ {
					d := g.Dst[i]
					if fns.Cond != nil && !fns.Cond(d) {
						continue
					}
					cnt++
					if fns.Update(s, d, g.Weight[i]) {
						local = append(local, d)
					}
				}
			}
			next[t] = local
			atomic.AddInt64(&traversed, cnt)
		}(t, lo, hi)
	}
	wg.Wait()
	e.EdgesTraversed += traversed
	var out []graph.VertexID
	for _, l := range next {
		out = append(out, l...)
	}
	return NewSparseFrontier(g.NumVertices(), out)
}

func (e *Engine) edgeMapDense(g, gT *graph.CSR, f *Frontier, fns EdgeFuncs) *Frontier {
	n := g.NumVertices()
	inF := make([]uint32, n)
	for _, v := range f.Vertices() {
		inF[v] = 1
	}
	out := make([]uint32, n)
	var traversed int64
	e.parallelFor(n, func(lo, hi int) {
		var cnt int64
		for d := lo; d < hi; d++ {
			dv := graph.VertexID(d)
			if fns.Cond != nil && !fns.Cond(dv) {
				continue
			}
			elo, ehi := gT.RowPtr[d], gT.RowPtr[d+1]
			for i := elo; i < ehi; i++ {
				s := gT.Dst[i]
				if inF[s] == 0 {
					continue
				}
				cnt++
				if fns.Update(s, dv, gT.Weight[i]) {
					atomic.StoreUint32(&out[d], 1)
				}
			}
		}
		atomic.AddInt64(&traversed, cnt)
	})
	e.EdgesTraversed += traversed
	return NewDenseFrontier(out)
}

// VertexMap applies fn to every frontier vertex, keeping those for which
// it returns true.
func (e *Engine) VertexMap(f *Frontier, fn func(v graph.VertexID) bool) *Frontier {
	verts := f.Vertices()
	keep := make([]graph.VertexID, 0, len(verts))
	for _, v := range verts {
		if fn(v) {
			keep = append(keep, v)
		}
	}
	return NewSparseFrontier(f.n, keep)
}

// Result reports wall-clock performance of a software run.
type Result struct {
	Seconds        float64
	EdgesTraversed int64
	Iterations     int
}

// GTEPS returns traversed giga-edges per second.
func (r Result) GTEPS() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.EdgesTraversed) / r.Seconds / 1e9
}

// StatsDump renders a finished run's statistics as a dump. Wall-clock time
// is always volatile (host timing); with more than one worker thread the
// traversal counts and direction profile are volatile too, because atomic
// update races make them scheduling-dependent.
func (e *Engine) StatsDump(r Result, meta map[string]string) *stats.Dump {
	root := stats.NewRoot()
	seconds, iters, edges := r.Seconds, r.Iterations, r.EdgesTraversed
	root.Formula(func() float64 { return seconds },
		MetricWallSeconds, stats.Seconds, "host wall-clock time of the run").Volatile()
	root.Formula(func() float64 { return float64(iters) },
		MetricIterations, stats.Count, "edgeMap iterations until the frontier emptied")
	racy := []*stats.Stat{
		root.Formula(func() float64 { return float64(edges) },
			"edges_traversed", stats.Count, "edge update attempts across the run"),
		root.Uint64(&e.sparseIters, "sparse_iterations", stats.Count, "edgeMap iterations that pushed along out-edges"),
		root.Uint64(&e.denseIters, "dense_iterations", stats.Count, "edgeMap iterations that pulled along in-edges"),
		root.Distribution(&e.frontierLen, "frontier_len", stats.Entries, "active-frontier size at each edgeMap"),
	}
	if e.Threads > 1 {
		for _, s := range racy {
			s.Volatile()
		}
	}
	return root.Dump(meta)
}

// writeMinInt64 atomically lowers target to val; reports whether the write
// crossed from ≥ old to the new minimum (i.e. we won the race).
func writeMinInt64(addr *int64, val int64) bool {
	for {
		old := atomic.LoadInt64(addr)
		if val >= old {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, old, val) {
			return true
		}
	}
}

const inf = int64(1) << 62

// BFS runs direction-optimized breadth-first search and returns hop
// distances (-1 when unreached).
func (e *Engine) BFS(g, gT *graph.CSR, root graph.VertexID) ([]int64, Result) {
	start := time.Now()
	e.EdgesTraversed = 0
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0
	f := NewSparseFrontier(n, []graph.VertexID{root})
	level := int64(0)
	iters := 0
	for !f.IsEmpty() && !e.stopped() {
		level++
		iters++
		lv := level
		f = e.EdgeMap(g, gT, f, EdgeFuncs{
			Update: func(s, d graph.VertexID, w uint32) bool {
				return atomic.CompareAndSwapInt64(&dist[d], inf, lv)
			},
			Cond: func(d graph.VertexID) bool { return atomic.LoadInt64(&dist[d]) == inf },
		})
	}
	for i := range dist {
		if dist[i] == inf {
			dist[i] = -1
		}
	}
	return dist, Result{Seconds: time.Since(start).Seconds(), EdgesTraversed: e.EdgesTraversed, Iterations: iters}
}

// SSSP runs frontier-based Bellman-Ford and returns weighted distances.
func (e *Engine) SSSP(g, gT *graph.CSR, root graph.VertexID) ([]int64, Result) {
	start := time.Now()
	e.EdgesTraversed = 0
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0
	f := NewSparseFrontier(n, []graph.VertexID{root})
	iters := 0
	for !f.IsEmpty() && iters < 2*n && !e.stopped() {
		iters++
		f = e.EdgeMap(g, nil, f, EdgeFuncs{ // push-only: pull breaks min-relaxation monotonicity bookkeeping
			Update: func(s, d graph.VertexID, w uint32) bool {
				nd := atomic.LoadInt64(&dist[s]) + int64(w)
				return writeMinInt64(&dist[d], nd)
			},
		})
		f = e.dedup(f)
	}
	for i := range dist {
		if dist[i] == inf {
			dist[i] = -1
		}
	}
	return dist, Result{Seconds: time.Since(start).Seconds(), EdgesTraversed: e.EdgesTraversed, Iterations: iters}
}

// dedup removes duplicate vertices from a sparse frontier in place,
// keeping first occurrences in order. The stamp array replaces the old
// per-iteration map: after the first frontier it allocates nothing.
func (e *Engine) dedup(f *Frontier) *Frontier {
	if f.isDen {
		return f
	}
	if len(e.dedupSeen) < f.n {
		e.dedupSeen = make([]uint32, f.n)
		e.dedupGen = 0
	}
	if e.dedupGen == ^uint32(0) {
		clear(e.dedupSeen)
		e.dedupGen = 0
	}
	e.dedupGen++
	gen := e.dedupGen
	out := f.sparse[:0]
	for _, v := range f.sparse {
		if e.dedupSeen[v] != gen {
			e.dedupSeen[v] = gen
			out = append(out, v)
		}
	}
	return NewSparseFrontier(f.n, out)
}

// CC runs label propagation over a symmetric graph and returns component
// labels (minimum vertex ID per component).
func (e *Engine) CC(g *graph.CSR) ([]int64, Result) {
	start := time.Now()
	e.EdgesTraversed = 0
	n := g.NumVertices()
	label := make([]int64, n)
	init := make([]graph.VertexID, n)
	for i := range label {
		label[i] = int64(i)
		init[i] = graph.VertexID(i)
	}
	f := NewSparseFrontier(n, init)
	iters := 0
	for !f.IsEmpty() && iters < n && !e.stopped() {
		iters++
		f = e.EdgeMap(g, g, f, EdgeFuncs{
			Update: func(s, d graph.VertexID, w uint32) bool {
				return writeMinInt64(&label[d], atomic.LoadInt64(&label[s]))
			},
		})
		f = e.dedup(f)
	}
	return label, Result{Seconds: time.Since(start).Seconds(), EdgesTraversed: e.EdgesTraversed, Iterations: iters}
}

// PR runs pull-based PageRank with the same message-driven semantics as the
// accelerator engines (vertices with no in-contributions keep their rank).
func (e *Engine) PR(g, gT *graph.CSR, damping float64, iters int) ([]float64, Result) {
	start := time.Now()
	n := g.NumVertices()
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	next := make([]float64, n)
	var traversed int64
	done := 0
	for it := 0; it < iters && !e.stopped(); it++ {
		done++
		e.parallelFor(n, func(lo, hi int) {
			var cnt int64
			for d := lo; d < hi; d++ {
				sum := 0.0
				got := false
				elo, ehi := gT.RowPtr[d], gT.RowPtr[d+1]
				for i := elo; i < ehi; i++ {
					s := gT.Dst[i]
					deg := g.OutDegree(s)
					if deg == 0 {
						continue
					}
					sum += rank[s] / float64(deg)
					got = true
					cnt++
				}
				if got {
					next[d] = (1-damping)/float64(n) + damping*sum
				} else {
					next[d] = rank[d]
				}
			}
			atomic.AddInt64(&traversed, cnt)
		})
		rank, next = next, rank
	}
	// done, not iters: an interrupted run reports the iterations that
	// actually executed, so partial reports are honest about coverage.
	return rank, Result{Seconds: time.Since(start).Seconds(), EdgesTraversed: traversed, Iterations: done}
}

// BC runs Brandes-style betweenness (forward σ pass + backward δ pass)
// with level-synchronous frontiers.
func (e *Engine) BC(g, gT *graph.CSR, root graph.VertexID) ([]float64, Result) {
	start := time.Now()
	e.EdgesTraversed = 0
	n := g.NumVertices()
	dist := make([]int64, n)
	sigma := make([]float64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0
	sigma[root] = 1
	var levels [][]graph.VertexID
	f := NewSparseFrontier(n, []graph.VertexID{root})
	level := int64(0)
	var traversed int64
	for !f.IsEmpty() && !e.stopped() {
		levels = append(levels, f.Vertices())
		level++
		lv := level
		// Sequentialized σ accumulation per level keeps determinism;
		// parallel push for discovery.
		var nextVerts []graph.VertexID
		for _, s := range f.Vertices() {
			elo, ehi := g.RowPtr[s], g.RowPtr[s+1]
			for i := elo; i < ehi; i++ {
				d := g.Dst[i]
				traversed++
				if dist[d] == inf {
					dist[d] = lv
					nextVerts = append(nextVerts, d)
				}
				if dist[d] == lv {
					sigma[d] += sigma[s]
				}
			}
		}
		f = NewSparseFrontier(n, nextVerts)
	}
	delta := make([]float64, n)
	for l := len(levels) - 1; l >= 1 && !e.stopped(); l-- {
		for _, w := range levels[l] {
			elo, ehi := gT.RowPtr[w], gT.RowPtr[w+1]
			for i := elo; i < ehi; i++ {
				v := gT.Dst[i]
				traversed++
				if dist[v] == dist[w]-1 && sigma[w] > 0 {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
		}
	}
	delta[root] = 0
	return delta, Result{Seconds: time.Since(start).Seconds(), EdgesTraversed: traversed, Iterations: len(levels)}
}
