package ligra

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nova/graph"
	"nova/internal/ref"
)

func randGraph(seed int64, n, m int) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    graph.VertexID(rng.Intn(n)),
			Dst:    graph.VertexID(rng.Intn(n)),
			Weight: uint32(1 + rng.Intn(8)),
		}
	}
	return graph.FromEdges("rand", n, edges)
}

func TestLigraBFSMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 300, 2000)
		gT := g.Transpose()
		root := g.LargestOutDegreeVertex()
		got, res := NewEngine().BFS(g, gT, root)
		want := ref.BFS(g, root)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return res.Seconds > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLigraBFSDensePath(t *testing.T) {
	// A dense frontier (everything reachable in one hop) must force the
	// pull path and still be correct.
	n := 2000
	edges := make([]graph.Edge, 0, 2*n)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: graph.VertexID(i), Weight: 1})
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % n), Weight: 1})
	}
	g := graph.FromEdges("star+", n, edges)
	gT := g.Transpose()
	got, _ := NewEngine().BFS(g, gT, 0)
	want := ref.BFS(g, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: %d want %d", v, got[v], want[v])
		}
	}
}

func TestLigraSSSPMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 250, 1500)
		root := g.LargestOutDegreeVertex()
		got, _ := NewEngine().SSSP(g, nil, root)
		want := ref.SSSP(g, root)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLigraCCMatchesOracle(t *testing.T) {
	g := randGraph(4, 400, 1200).Symmetrize()
	got, _ := NewEngine().CC(g)
	want := ref.CC(g)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: label %d want %d", v, got[v], want[v])
		}
	}
}

func TestLigraPRMatchesOracle(t *testing.T) {
	g := graph.GenRMAT("r", 10, 8, graph.DefaultRMAT, 1, 5)
	gT := g.Transpose()
	got, res := NewEngine().PR(g, gT, 0.85, 8)
	want := ref.PageRank(g, 0.85, 8)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-10 {
			t.Fatalf("vertex %d: rank %v want %v", v, got[v], want[v])
		}
	}
	if res.Iterations != 8 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestLigraBCMatchesBrandes(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 120, 500)
		gT := g.Transpose()
		root := g.LargestOutDegreeVertex()
		got, _ := NewEngine().BC(g, gT, root)
		want := ref.BC(g, root)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleThreadMatchesParallel(t *testing.T) {
	g := randGraph(77, 500, 4000)
	gT := g.Transpose()
	root := g.LargestOutDegreeVertex()
	e1 := NewEngine()
	e1.Threads = 1
	d1, _ := e1.BFS(g, gT, root)
	e8 := NewEngine()
	e8.Threads = 8
	d8, _ := e8.BFS(g, gT, root)
	for v := range d1 {
		if d1[v] != d8[v] {
			t.Fatalf("thread-count-dependent result at %d", v)
		}
	}
}

func TestFrontierRepresentations(t *testing.T) {
	sp := NewSparseFrontier(10, []graph.VertexID{1, 5, 7})
	if sp.Len() != 3 || sp.IsEmpty() {
		t.Fatalf("sparse frontier len %d", sp.Len())
	}
	bits := make([]uint32, 10)
	bits[2], bits[4] = 1, 1
	dn := NewDenseFrontier(bits)
	if dn.Len() != 2 {
		t.Fatalf("dense frontier len %d", dn.Len())
	}
	vs := dn.Vertices()
	if len(vs) != 2 || vs[0] != 2 || vs[1] != 4 {
		t.Fatalf("dense Vertices = %v", vs)
	}
}

func TestGTEPS(t *testing.T) {
	r := Result{Seconds: 0.5, EdgesTraversed: 1e9}
	if g := r.GTEPS(); g != 2.0 {
		t.Fatalf("GTEPS = %v", g)
	}
	if (Result{}).GTEPS() != 0 {
		t.Fatal("zero result GTEPS")
	}
}
