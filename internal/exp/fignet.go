package exp

import (
	"context"
	"fmt"
	"strings"

	"nova"
	"nova/internal/harness"
)

// fignetWindow is the coalescing window (in inter-GPN fabric cycles) the
// "on" cells of the sweep use — the same window the determinism goldens
// and chaos grid pin.
const fignetWindow = 16

// FigNet is this repo's own network figure (no counterpart in the
// paper's evaluation): a sweep of the inter-GPN topology × the in-fabric
// coalescing stage × the GPN count on the message-heaviest cell (SSSP on
// the twitter stand-in). Each row compares a coalescing-off and a
// coalescing-on run of one (topology, gpns) point and reads the fabric's
// per-link counters for the hottest channel.
func FigNet(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error) {
	d, err := DatasetByName(s, "twitter")
	if err != nil {
		return nil, err
	}
	gpnsList := []int{4, 8}
	if s == Small {
		gpnsList = []int{2, 4}
	}
	topologies := []string{"crossbar", "ring", "mesh", "torus"}
	windows := []int64{0, fignetWindow}
	t := &Table{
		ID: "fignet",
		Title: fmt.Sprintf("Inter-GPN fabric sweep (SSSP on twitter): topology × coalescing (window=%d) × GPNs",
			fignetWindow),
		Header: []string{"topology", "gpns", "time-off(ms)", "time-on(ms)", "on/off",
			"coalesced", "bytes-saved", "avg-hops", "max-link-util"},
	}
	var jobs []harness.Job[*harness.Report]
	for _, topo := range topologies {
		for _, gpns := range gpnsList {
			for _, w := range windows {
				topo, gpns, w := topo, gpns, w
				jobs = append(jobs, harness.Job[*harness.Report]{
					Name: fmt.Sprintf("fignet/%s/gpns=%d/window=%d", topo, gpns, w),
					Run: func(ctx context.Context) (*harness.Report, error) {
						cfg := NOVAConfig(s, gpns)
						cfg.Topology = topo
						cfg.CoalesceWindow = w
						cfg.CoalesceCapacity = 0
						eng, err := NovaEngineWith(cfg)
						if err != nil {
							return nil, err
						}
						return eng.RunWorkload(ctx, cell(s, d, "sssp", 0))
					},
				})
			}
		}
	}
	reports, err := runReports(ctx, pool, jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, topo := range topologies {
		for _, gpns := range gpnsList {
			off, on := reports[i], reports[i+1]
			i += 2
			offered := on.Metric(nova.MetricNetworkCoalesced) + on.Metric("network.inter_messages")
			coalFrac := 0.0
			if offered > 0 {
				coalFrac = on.Metric(nova.MetricNetworkCoalesced) / offered
			}
			t.AddRow(topo, fmt.Sprint(gpns),
				f3(off.Stats.SimSeconds*1e3), f3(on.Stats.SimSeconds*1e3),
				f2(on.Stats.SimSeconds/off.Stats.SimSeconds),
				pct(coalFrac), fmtBytes(int64(on.Metric(nova.MetricNetworkBytesSaved))),
				f2(on.Metric(nova.MetricNetworkAvgHops)), pct(maxLinkUtil(on)))
		}
	}
	t.Note("coalesced = share of offered inter-GPN batches absorbed into a buffered same-destination batch")
	t.Note("on/off < 1.00 means the coalescing window pays for its added delivery latency on this fabric shape")
	t.Note("max-link-util is the busiest directed channel (or crossbar port) from the per-link counters")
	return t, nil
}

// maxLinkUtil scans the report's metrics bag for the fabric's per-link
// utilization counters — routed topologies expose
// network.links.<name>.utilization, the crossbar exposes per-GPN
// xbar_{out,in}_utilization ports — and returns the hottest one.
func maxLinkUtil(r *harness.Report) float64 {
	m := 0.0
	for k, v := range r.Metrics {
		routed := strings.HasPrefix(k, "network.links.") && strings.HasSuffix(k, ".utilization")
		xbar := strings.HasSuffix(k, ".xbar_out_utilization") || strings.HasSuffix(k, ".xbar_in_utilization")
		if (routed || xbar) && v > m {
			m = v
		}
	}
	return m
}
