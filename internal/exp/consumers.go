package exp

import "nova"

// MetricConsumers maps metrics-bag keys (root-level stats-dump paths) to
// the figures and tables of the evaluation that read them. It exists so
// the generated STATS.md can show where each statistic feeds the paper's
// results, and so renaming a key without updating its consumers is a
// visible diff in one place.
var MetricConsumers = map[string][]string{
	nova.MetricSliceCount:          {"Fig. 1"},
	nova.MetricProcessingSeconds:   {"Fig. 2", "Fig. 6"},
	nova.MetricSwitchingSeconds:    {"Fig. 2", "Fig. 6"},
	nova.MetricInefficiencySeconds: {"Fig. 2", "Fig. 6"},
	nova.MetricOverheadSeconds:     {"Fig. 6"},
	nova.MetricCacheHitRate:        {"Fig. 9a"},
	nova.MetricVertexUsefulFrac:    {"Fig. 10"},
	nova.MetricVertexWriteFrac:     {"Fig. 10"},
	nova.MetricVertexWastefulFrac:  {"Fig. 10"},
	nova.MetricNetworkCoalesced:    {"Fig. net"},
	nova.MetricNetworkBytesSaved:   {"Fig. net"},
	nova.MetricNetworkAvgHops:      {"Fig. net"},
	nova.MetricPartitionLoads:      {"Fig. ooc"},
	nova.MetricBytesPaged:          {"Fig. ooc"},
	nova.MetricIOStallTicks:        {"Fig. ooc"},
	nova.MetricSpills:              {"Table I"},
	nova.MetricSpillWrites:         {"Table I"},
	nova.MetricStaleRetrievals:     {"Table I"},
	nova.MetricMetadataBytes:       {"Table I"},
}
