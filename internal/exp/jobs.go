package exp

import (
	"context"

	"nova"
	"nova/internal/harness"
)

// This file holds the job constructors shared by every figure/table
// runner: they replace the build-accelerator/run/collect boilerplate that
// used to repeat in each loop body, and adapt the three engines to the
// harness layer at experiment scale.

// NovaEngine returns the scaled NOVA engine (Table II organization,
// cache shrunk with the graphs) as a harness.Engine.
func NovaEngine(s Scale, gpns int) (harness.Engine, error) {
	acc, err := nova.New(NOVAConfig(s, gpns))
	if err != nil {
		return nil, err
	}
	return acc.Engine(), nil
}

// NovaEngineWith wraps an explicit configuration (cache sweeps, mapping
// and fabric sensitivity) as a harness.Engine.
func NovaEngineWith(cfg nova.Config) (harness.Engine, error) {
	acc, err := nova.New(cfg)
	if err != nil {
		return nil, err
	}
	return acc.Engine(), nil
}

// PGEngine returns the scaled iso-bandwidth PolyGraph baseline as a
// harness.Engine.
func PGEngine(s Scale) harness.Engine { return PGBaseline(s).Engine() }

// PGEngineSlices forces the PolyGraph slice count (Fig. 2 sweep).
func PGEngineSlices(s Scale, slices int) harness.Engine {
	pg := PGBaseline(s)
	pg.ForceSlices = slices
	return pg.Engine()
}

// LigraEngine returns the software reference engine.
func LigraEngine() harness.Engine { return (&nova.Software{}).Engine() }

// ExtmemEngine returns the external-memory baseline (PartitionedVC-style
// interval-at-a-time processing) with an explicit DRAM partition-cache
// budget and interval edge target; zero values keep the engine defaults.
func ExtmemEngine(ramBytes, partEdges int64) harness.Engine {
	return (&nova.ExternalMemory{RAMBytes: ramBytes, PartitionEdges: partEdges}).Engine()
}

// cell builds the harness.Workload for one (dataset, workload) grid cell,
// picking the right graph orientation and stamping the scale tier so
// reports from different tiers are never compared against each other.
func cell(s Scale, d *Dataset, w string, prIters int) harness.Workload {
	g, gT := workloadGraph(d, w)
	return harness.Workload{Name: w, G: g, GT: gT, Root: d.Root, PRIters: prIters, Tier: s.String()}
}

// novaPG runs one cell on a fresh scaled NOVA engine and on the PolyGraph
// baseline — the comparison nearly every figure is built from.
func novaPG(ctx context.Context, s Scale, w harness.Workload) (novaRep, pgRep *harness.Report, err error) {
	ne, err := NovaEngine(s, 1)
	if err != nil {
		return nil, nil, err
	}
	if novaRep, err = ne.RunWorkload(ctx, w); err != nil {
		return nil, nil, err
	}
	if pgRep, err = PGEngine(s).RunWorkload(ctx, w); err != nil {
		return nil, nil, err
	}
	return novaRep, pgRep, nil
}

// rowJob is a pool job producing one finished table row.
type rowJob = harness.Job[[]string]

// runRows fans the row jobs out over the pool and collects rows in
// submission order, so tables are byte-identical at any worker count.
func runRows(ctx context.Context, p *harness.Pool, jobs []rowJob) ([][]string, error) {
	return harness.Values(harness.Map(ctx, p, jobs))
}

// runReports fans report-producing jobs out over the pool; figures whose
// rows normalize against a baseline cell collect all reports first.
func runReports(ctx context.Context, p *harness.Pool, jobs []harness.Job[*harness.Report]) ([]*harness.Report, error) {
	return harness.Values(harness.Map(ctx, p, jobs))
}
