package exp

import (
	"context"
	"fmt"
	"sort"

	"nova"
	"nova/internal/harness"
	"nova/internal/resource"
)

// Tab1 reproduces Table I: the spilling-method trade-offs, measured by
// running the same workload under both VMU policies.
func Tab1(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error) {
	d, err := DatasetByName(s, "twitter")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "tab1",
		Title: "Active-vertex spilling trade-offs (SSSP on twitter, 8-entry active buffer)",
		Header: []string{"policy", "spills", "extra-writes/spill", "stale-retrievals",
			"metadata-bytes", "time(ms)"},
	}
	var jobs []rowJob
	for _, policy := range []string{"overwrite", "fifo"} {
		policy := policy
		jobs = append(jobs, rowJob{
			Name: fmt.Sprintf("tab1/%s", policy),
			Run: func(ctx context.Context) ([]string, error) {
				cfg := NOVAConfig(s, 1)
				cfg.Spill = policy
				cfg.ActiveBufferEntries = 8
				eng, err := NovaEngineWith(cfg)
				if err != nil {
					return nil, err
				}
				rep, err := eng.RunWorkload(ctx, cell(s, d, "sssp", 0))
				if err != nil {
					return nil, err
				}
				perSpill := 0.0
				if rep.Metric(nova.MetricSpills) > 0 {
					perSpill = rep.Metric(nova.MetricSpillWrites) / rep.Metric(nova.MetricSpills)
				}
				return []string{policy, fmt.Sprint(int64(rep.Metric(nova.MetricSpills))), f2(perSpill),
					fmt.Sprint(int64(rep.Metric(nova.MetricStaleRetrievals))),
					fmt.Sprint(int64(rep.Metric(nova.MetricMetadataBytes))),
					f3(rep.Stats.SimSeconds * 1e3)}, nil
			},
		})
	}
	rows, err := runRows(ctx, pool, jobs)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Note("paper: overwriting in the vertex set needs 1 write per spill, no metadata, no duplicate entries")
	return t, nil
}

// Tab2 prints the Table II system specification as configured.
func Tab2(_ context.Context, s Scale, _ *harness.Pool) (*Table, error) {
	cfg := NOVAConfig(s, 1)
	t := &Table{
		ID:     "tab2",
		Title:  "System specification per GPN (scaled experiment configuration)",
		Header: []string{"parameter", "paper", "this run"},
	}
	t.AddRow("PEs per GPN @2GHz", "8", fmt.Sprint(cfg.PEsPerGPN))
	t.AddRow("MPU cache per PE", "64 KiB", fmt.Sprintf("%d B (scaled with graphs)", cfg.CacheBytesPerPE))
	t.AddRow("tracker superblock dim", "128", fmt.Sprint(cfg.SuperblockDim))
	t.AddRow("active buffer entries", "80", fmt.Sprint(cfg.ActiveBufferEntries))
	t.AddRow("vertex memory", "HBM2 stack, 256 GB/s, 32 B atoms", "same timing model")
	t.AddRow("edge memory", "4x DDR4, 76.8 GB/s", "same timing model")
	t.AddRow("functional units", "16 reduce + 48 propagate", "2 + 6 per PE")
	t.AddRow("PE-PE network", "8x8 P2P, 1.2 GB/s/link", "same")
	t.AddRow("inter-GPN network", "crossbar, 60 GB/s/port", "same")
	return t, nil
}

// Tab3 reproduces Table III: the dataset registry with the slice counts
// each graph needs under the (scaled) PolyGraph scratchpad.
func Tab3(_ context.Context, s Scale, _ *harness.Pool) (*Table, error) {
	t := &Table{
		ID:     "tab3",
		Title:  fmt.Sprintf("Graph workloads (scale=%s); slice counts must match the paper", s),
		Header: []string{"graph", "vertices", "edges", "avg-deg", "footprint", "slices", "paper-slices"},
	}
	pgCap := s.PolyGraphOnChip()
	for _, d := range Datasets(s) {
		slices := int((4*int64(d.Graph.NumVertices()) + pgCap - 1) / pgCap)
		t.AddRow(d.Name,
			fmt.Sprint(d.Graph.NumVertices()), fmt.Sprint(d.Graph.NumEdges()),
			f2(d.Graph.AvgDegree()), fmtBytes(d.Graph.FootprintBytes()),
			fmt.Sprint(slices), fmt.Sprint(d.PaperSlices))
	}
	t.Note("generators: road=2D grid (high diameter), twitter/friendster/host=RMAT, urand=uniform; degrees follow Table III")
	return t, nil
}

// Tab4 reproduces Table IV: resources to support WDC12.
func Tab4(context.Context, Scale, *harness.Pool) (*Table, error) {
	t := &Table{
		ID:     "tab4",
		Title:  "Requirements to support WDC12 (3.5B vertices, 128B edges)",
		Header: []string{"accelerator", "hbm", "ddr", "sram", "cores", "slices"},
	}
	for _, r := range resource.TableIV(resource.WDC12()) {
		hbm := "-"
		if r.HBMStacks > 0 {
			hbm = fmt.Sprintf("%d stacks (%s)", r.HBMStacks, fmtBytes(r.HBMBytes))
		}
		ddr := "-"
		if r.DDRChannels > 0 {
			ddr = fmt.Sprintf("%d ch (%s)", r.DDRChannels, fmtBytes(r.DDRBytes))
		}
		t.AddRow(r.Accelerator, hbm, ddr, fmtBytes(r.SRAMBytes),
			fmt.Sprint(r.Cores), fmt.Sprint(r.Slices))
	}
	t.Note("paper row for NOVA: 14 stacks / 56 ch (1 TiB) / 21 MiB / 112 cores / 1 slice — reproduced exactly")
	t.Note("PolyGraph and Dalorex rows are parameterized estimates; see EXPERIMENTS.md for assumptions")
	return t, nil
}

// Tab5 reproduces Table V: FPGA resource composition for one GPN and the
// multi-GPN capacity of an Alveo U280.
func Tab5(context.Context, Scale, *harness.Pool) (*Table, error) {
	t := &Table{
		ID:     "tab5",
		Title:  "FPGA implementation, 1 GPN at 1 GHz (post-synthesis costs from the paper)",
		Header: []string{"unit", "LUT", "FF", "BRAM", "URAM", "power(mW)"},
	}
	units := resource.GPNUnits()
	units = append(units, resource.GPNTotal())
	for _, u := range units {
		t.AddRow(u.Name, fmt.Sprint(u.LUT), fmt.Sprint(u.FF),
			fmt.Sprint(u.BRAM), fmt.Sprint(u.URAM), fmt.Sprint(u.PowerMW))
	}
	dev := resource.AlveoU280()
	n, binding := resource.MaxGPNs(dev)
	lut, ff, bram, uram := resource.Utilization(dev, 1)
	t.Note("single-GPN utilization on %s: LUT %s, FF %s, BRAM %s, URAM %s",
		dev.Name, pct(lut), pct(ff), pct(bram), pct(uram))
	t.Note("%d GPNs fit (%s-bound); the paper quotes 14 with URAM->BRAM remapping", n, binding)
	return t, nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= resource.TiB:
		return fmt.Sprintf("%.2f TiB", float64(b)/float64(resource.TiB))
	case b >= resource.GiB:
		return fmt.Sprintf("%.2f GiB", float64(b)/float64(resource.GiB))
	case b >= resource.MiB:
		return fmt.Sprintf("%.2f MiB", float64(b)/float64(resource.MiB))
	case b >= resource.KiB:
		return fmt.Sprintf("%.2f KiB", float64(b)/float64(resource.KiB))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// Runner executes one experiment at a scale, fanning its independent
// cells out over the harness pool (nil pool = sequential). Row order is
// deterministic regardless of the worker count.
type Runner func(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error)

// All maps experiment IDs to runners, covering every table and figure in
// the paper's evaluation.
var All = map[string]Runner{
	"fig1":   Fig1,
	"fig2":   Fig2,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9a":  Fig9a,
	"fig9b":  Fig9b,
	"fig9c":  Fig9c,
	"fig10":  Fig10,
	"fignet": FigNet,
	"figooc": FigOOC,
	"tab1":   Tab1,
	"tab2":   Tab2,
	"tab3":   Tab3,
	"tab4":   Tab4,
	"tab5":   Tab5,
}

// IDs returns all experiment IDs in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(All))
	for id := range All {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
