package exp

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"

	"nova/internal/harness"
)

func TestParseScale(t *testing.T) {
	for _, s := range []string{"small", "medium", "full", "large"} {
		sc, err := ParseScale(s)
		if err != nil {
			t.Fatal(err)
		}
		if sc.String() != s {
			t.Fatalf("round trip %q -> %q", s, sc.String())
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets(Small)
	if len(ds) != 5 {
		t.Fatalf("datasets = %d, want 5", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name] = true
		if d.Graph.NumVertices() == 0 || d.Graph.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", d.Name)
		}
		if d.Graph.OutDegree(d.Root) == 0 {
			t.Fatalf("%s: root has no out-edges", d.Name)
		}
	}
	for _, want := range []string{"road", "twitter", "friendster", "host", "urand"} {
		if !names[want] {
			t.Fatalf("missing dataset %q", want)
		}
	}
	// Registry caches: same pointer on second call.
	if &Datasets(Small)[0].Graph.Dst[0] != &ds[0].Graph.Dst[0] {
		t.Fatal("registry rebuilt graphs instead of caching")
	}
	if _, err := DatasetByName(Small, "nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestSliceCountsMatchTableIII(t *testing.T) {
	// The calibration invariant: at every scale, ceil(4V/cap) equals the
	// paper's Table III slice counts.
	scales := []Scale{Small, Medium, Full}
	if testing.Short() {
		scales = scales[:1]
	}
	for _, s := range scales {
		cap := s.PolyGraphOnChip()
		for _, d := range Datasets(s) {
			got := int((4*int64(d.Graph.NumVertices()) + cap - 1) / cap)
			if got != d.PaperSlices {
				t.Errorf("scale %s, %s: slices = %d, want %d (V=%d, cap=%d)",
					s, d.Name, got, d.PaperSlices, d.Graph.NumVertices(), cap)
			}
		}
	}
}

func TestDatasetDegreesFollowPaper(t *testing.T) {
	want := map[string]float64{"road": 2.44, "twitter": 35, "friendster": 27, "host": 20, "urand": 31}
	for _, d := range Datasets(Small) {
		got := d.Graph.AvgDegree()
		w := want[d.Name]
		if got < 0.8*w || got > 1.2*w {
			t.Errorf("%s: avg degree %.2f, want ≈ %.2f", d.Name, got, w)
		}
	}
}

func TestLargeTierConfig(t *testing.T) {
	// The large tier must shrink the active buffers far below the Table II
	// default so spill/recovery dominates; the other tiers must not.
	if got := Large.ActiveBufferEntries(); got >= Full.ActiveBufferEntries() {
		t.Fatalf("large-tier buffer %d not smaller than full-tier %d",
			got, Full.ActiveBufferEntries())
	}
	cfg := NOVAConfig(Large, 1)
	if cfg.ActiveBufferEntries != Large.ActiveBufferEntries() {
		t.Fatalf("NOVAConfig(Large) buffer = %d, want %d",
			cfg.ActiveBufferEntries, Large.ActiveBufferEntries())
	}
	for _, s := range []Scale{Small, Medium, Full} {
		if NOVAConfig(s, 1).ActiveBufferEntries != 80 {
			t.Fatalf("scale %s: buffer = %d, want Table II default 80",
				s, NOVAConfig(s, 1).ActiveBufferEntries)
		}
	}
	if Large.divisor() >= Medium.divisor() || Large.divisor() < Full.divisor() {
		t.Fatalf("large divisor %d not between full (%d) and medium (%d)",
			Large.divisor(), Full.divisor(), Medium.divisor())
	}
}

func TestWeakScalingGraphDoubles(t *testing.T) {
	g1 := WeakScalingGraph(Small, 1)
	g2 := WeakScalingGraph(Small, 2)
	g8 := WeakScalingGraph(Small, 8)
	if g2.NumVertices() != 2*g1.NumVertices() {
		t.Fatalf("2-GPN graph not 2x: %d vs %d", g2.NumVertices(), g1.NumVertices())
	}
	if g8.NumVertices() != 8*g1.NumVertices() {
		t.Fatalf("8-GPN graph not 8x: %d vs %d", g8.NumVertices(), g1.NumVertices())
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Note("hello %d", 7)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a", "bb", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in %q", want, out)
		}
	}
	buf.Reset()
	tb.Markdown(&buf)
	if !strings.Contains(buf.String(), "| a | bb |") {
		t.Fatalf("markdown missing header: %q", buf.String())
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9a", "fig9b", "fig9c", "fig10", "fignet", "figooc", "tab1", "tab2", "tab3", "tab4", "tab5"}
	if len(All) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(All), len(want))
	}
	for _, id := range want {
		if All[id] == nil {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("IDs() returned %d", len(ids))
	}
}

// TestStaticExperiments runs the cheap (analytic) experiments fully.
func TestStaticExperiments(t *testing.T) {
	for _, id := range []string{"tab2", "tab3", "tab4", "tab5"} {
		tb, err := All[id](context.Background(), Small, nil)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: no rows", id)
		}
	}
}

// TestTab3SliceColumnConsistent verifies the rendered slice column agrees
// with the paper column in the output itself.
func TestTab3SliceColumnConsistent(t *testing.T) {
	tb, err := Tab3(context.Background(), Small, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		got, err1 := strconv.Atoi(row[5])
		want, err2 := strconv.Atoi(row[6])
		if err1 != nil || err2 != nil || got != want {
			t.Fatalf("row %v: slice mismatch", row)
		}
	}
}

// TestQuickSimulatedExperiments smoke-runs the cheapest simulation-backed
// experiments end-to-end at small scale, through a concurrent pool.
func TestQuickSimulatedExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiments skipped in -short mode")
	}
	pool := &harness.Pool{Workers: 4}
	for _, id := range []string{"fig2", "fig8", "tab1"} {
		tb, err := All[id](context.Background(), Small, pool)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: no rows", id)
		}
	}
}

// TestFigOOCPagesOnEveryCell runs the out-of-core figure end-to-end at
// small scale and checks that every row records paging work for both
// engines — the acceptance gate for the SSD tier's instrumentation.
func TestFigOOCPagesOnEveryCell(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiments skipped in -short mode")
	}
	tb, err := FigOOC(context.Background(), Small, &harness.Pool{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Fatalf("got %d rows, want 9 (3 workloads x 3 sizes)", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		novaLoads, err1 := strconv.Atoi(row[4])
		emLoads, err2 := strconv.Atoi(row[7])
		if err1 != nil || err2 != nil || novaLoads <= 0 || emLoads <= 0 {
			t.Errorf("row %v: both engines must page (nova=%d extmem=%d)", row, novaLoads, emLoads)
		}
	}
}

// render flattens a table so worker-count determinism is comparable
// byte-for-byte.
func render(t *Table) string {
	var buf bytes.Buffer
	t.Render(&buf)
	return buf.String()
}

// TestPoolDeterminism is the acceptance check for the harness refactor:
// a figure rendered through a 1-worker pool and a 4-worker pool must be
// byte-identical (the simulated engines are deterministic; result order
// is fixed by submission order, not completion order).
func TestPoolDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiments skipped in -short mode")
	}
	for _, id := range []string{"fig2", "fig8"} {
		seq, err := All[id](context.Background(), Small, &harness.Pool{Workers: 1})
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		par, err := All[id](context.Background(), Small, &harness.Pool{Workers: 4})
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if render(seq) != render(par) {
			t.Errorf("%s: jobs=1 and jobs=4 tables differ:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s",
				id, render(seq), render(par))
		}
	}
}
