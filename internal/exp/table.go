// Package exp is the experiment harness: it defines the scaled dataset
// registry standing in for Table III and one runner per figure/table of
// the paper's evaluation, each emitting the same rows or series the paper
// reports.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artifact.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends an explanatory footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Markdown writes the table as GitHub-flavored markdown (for
// EXPERIMENTS.md).
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "\n### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
