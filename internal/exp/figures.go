package exp

import (
	"fmt"

	"nova"
	"nova/graph"
	"nova/program"
)

// workloadGraph picks the right graph orientation for a workload.
func workloadGraph(d *Dataset, w string) (*graph.CSR, *graph.CSR) {
	switch w {
	case "cc":
		sym := d.Sym()
		return sym, sym
	case "bc":
		return d.Graph, d.Transpose()
	default:
		return d.Graph, nil
	}
}

func novaRunner(s Scale, gpns int) (*nova.Accelerator, error) {
	return nova.New(NOVAConfig(s, gpns))
}

// Fig1 reproduces Figure 1: throughput (GTEPS) of NOVA vs PolyGraph on
// BFS as graph size grows, with iso on-chip/bandwidth provisioning. The
// paper's claim: PolyGraph wins small, loses big, because slice switching
// overheads grow with graph size.
func Fig1(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig1",
		Title:  "BFS throughput vs graph size (GTEPS), NOVA vs PolyGraph, iso-bandwidth",
		Header: []string{"vertices", "edges", "pg-slices", "nova-gteps", "pg-gteps", "nova/pg"},
	}
	base := 24000 / s.divisor()
	for _, mult := range []int{1, 2, 4, 8, 16} {
		n := base * mult
		g := graph.GenUniform(fmt.Sprintf("urand-%d", n), n, 16, 64, int64(100+mult))
		root := g.LargestOutDegreeVertex()
		acc, err := novaRunner(s, 1)
		if err != nil {
			return nil, err
		}
		novaOut, err := nova.RunWorkload(acc, "bfs", g, nil, root, 0)
		if err != nil {
			return nil, err
		}
		pg := PGBaseline(s)
		pgOut, err := nova.RunWorkload(pg, "bfs", g, nil, root, 0)
		if err != nil {
			return nil, err
		}
		pgRep, err := pg.Run(program.NewBFS(root), g)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprint(n), fmt.Sprint(g.NumEdges()), fmt.Sprint(pgRep.SliceCount),
			f3(novaOut.EffectiveGTEPS()), f3(pgOut.EffectiveGTEPS()),
			f2(pgOut.Stats.SimSeconds/novaOut.Stats.SimSeconds),
		)
	}
	t.Note("paper shape: PolyGraph throughput decays as slices grow; NOVA stays flat")
	return t, nil
}

// Fig2 reproduces Figure 2: the execution-time breakdown of temporal
// partitioning (processing / switching / inefficiency) as the slice count
// grows, BFS on the twitter stand-in.
func Fig2(s Scale) (*Table, error) {
	d, err := DatasetByName(s, "twitter")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig2",
		Title:  "Temporal-partitioning overhead vs #slices (BFS on twitter)",
		Header: []string{"slices", "processing", "switching", "inefficiency"},
	}
	for _, slices := range []int{1, 2, 4, 8, 16, 32, 64} {
		pg := PGBaseline(s)
		pg.ForceSlices = slices
		rep, err := pg.Run(program.NewBFS(d.Root), d.Graph)
		if err != nil {
			return nil, err
		}
		tot := rep.Stats.SimSeconds
		t.AddRow(fmt.Sprint(slices), pct(rep.ProcessingSeconds/tot),
			pct(rep.SwitchingSeconds/tot), pct(rep.InefficiencySeconds/tot))
	}
	t.Note("paper shape: overheads ≈20%% below 3 slices, inefficiency >75%% at several hundred slices")
	return t, nil
}

// Fig4 reproduces Figure 4: NOVA vs PolyGraph vs Ligra across the five
// workloads and five graphs, iso-bandwidth.
func Fig4(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig4",
		Title:  "NOVA vs PolyGraph (iso-bandwidth 332.8 GB/s) vs Ligra, effective GTEPS",
		Header: []string{"graph", "workload", "nova", "polygraph", "ligra(wall)", "nova/pg speedup"},
	}
	sw := &nova.Software{}
	for _, d := range Datasets(s) {
		for _, w := range nova.WorkloadNames {
			g, gT := workloadGraph(d, w)
			acc, err := novaRunner(s, 1)
			if err != nil {
				return nil, err
			}
			novaOut, err := nova.RunWorkload(acc, w, g, gT, d.Root, 10)
			if err != nil {
				return nil, fmt.Errorf("nova %s/%s: %w", d.Name, w, err)
			}
			pgOut, err := nova.RunWorkload(PGBaseline(s), w, g, gT, d.Root, 10)
			if err != nil {
				return nil, fmt.Errorf("pg %s/%s: %w", d.Name, w, err)
			}
			swT := gT
			if swT == nil {
				swT = d.Transpose()
			}
			swRep, err := sw.RunWorkload(w, g, swT, d.Root, 10)
			if err != nil {
				return nil, fmt.Errorf("ligra %s/%s: %w", d.Name, w, err)
			}
			t.AddRow(d.Name, w,
				f3(novaOut.EffectiveGTEPS()), f3(pgOut.EffectiveGTEPS()),
				f3(float64(novaOut.SequentialEdges)/swRep.Seconds/1e9),
				f2(pgOut.Stats.SimSeconds/novaOut.Stats.SimSeconds))
		}
	}
	t.Note("paper shape: PolyGraph ~1.3x on twitter-BFS; NOVA wins on friendster/host/urand, up to 2.35x (urand SSSP)")
	return t, nil
}

// Fig5 reproduces Figure 5: the share of messages coalesced before
// propagation, NOVA vs PolyGraph, BFS.
func Fig5(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig5",
		Title:  "Messages coalesced (BFS): NOVA's DRAM-wide window vs PolyGraph's on-chip window",
		Header: []string{"graph", "nova-coalesced", "pg-coalesced", "ratio"},
	}
	for _, d := range Datasets(s) {
		acc, err := novaRunner(s, 1)
		if err != nil {
			return nil, err
		}
		novaOut, err := nova.RunWorkload(acc, "bfs", d.Graph, nil, d.Root, 0)
		if err != nil {
			return nil, err
		}
		pgOut, err := nova.RunWorkload(PGBaseline(s), "bfs", d.Graph, nil, d.Root, 0)
		if err != nil {
			return nil, err
		}
		nc := frac(novaOut.Stats.MessagesCoalesced, novaOut.Stats.MessagesSent)
		pc := frac(pgOut.Stats.MessagesCoalesced, pgOut.Stats.MessagesSent)
		ratio := 0.0
		if pc > 0 {
			ratio = nc / pc
		}
		t.AddRow(d.Name, pct(nc), pct(pc), f2(ratio))
	}
	t.Note("paper shape: NOVA coalesces up to ~3x more messages than PolyGraph")
	return t, nil
}

func frac(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Fig6 reproduces Figure 6: execution-time breakdowns — NOVA's overfetch
// overhead vs PolyGraph's slice-switching overhead.
func Fig6(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "Execution time breakdown: NOVA (processing/overfetch) vs PolyGraph (processing/switch+ineff)",
		Header: []string{"graph", "workload", "nova-proc", "nova-overhead", "pg-proc", "pg-overhead", "nova/pg"},
	}
	for _, d := range Datasets(s) {
		for _, w := range []string{"bfs", "pr"} {
			var p program.Program
			if w == "bfs" {
				p = program.NewBFS(d.Root)
			} else {
				p = program.NewPageRank(0.85, 10)
			}
			acc, err := novaRunner(s, 1)
			if err != nil {
				return nil, err
			}
			nr, err := acc.Run(p, d.Graph)
			if err != nil {
				return nil, err
			}
			pg := PGBaseline(s)
			pr, err := pg.Run(p, d.Graph)
			if err != nil {
				return nil, err
			}
			ntot := nr.Stats.SimSeconds
			ptot := pr.Stats.SimSeconds
			t.AddRow(d.Name, w,
				pct(nr.ProcessingSeconds/ntot), pct(nr.OverheadSeconds/ntot),
				pct(pr.ProcessingSeconds/ptot), pct((pr.SwitchingSeconds+pr.InefficiencySeconds)/ptot),
				f2(ptot/ntot))
		}
	}
	t.Note("paper shape: PG's raw processing is faster (on-chip vertices) but overhead negates it on large graphs")
	return t, nil
}

// Fig7 reproduces Figure 7: strong scaling of NOVA — fixed graph, 1/2/4/8
// GPNs — for BFS (data-driven) and BC (topology-driven).
func Fig7(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "Strong scaling: speedup over 1 GPN for BFS and BC",
		Header: []string{"graph", "workload", "1", "2", "4", "8", "8-gpn efficiency"},
	}
	for _, name := range []string{"twitter", "urand"} {
		d, err := DatasetByName(s, name)
		if err != nil {
			return nil, err
		}
		for _, w := range []string{"bfs", "bc"} {
			g, gT := workloadGraph(d, w)
			var base float64
			row := []string{d.Name, w}
			var last float64
			for _, gpns := range []int{1, 2, 4, 8} {
				acc, err := novaRunner(s, gpns)
				if err != nil {
					return nil, err
				}
				out, err := nova.RunWorkload(acc, w, g, gT, d.Root, 0)
				if err != nil {
					return nil, err
				}
				if gpns == 1 {
					base = out.Stats.SimSeconds
				}
				speedup := base / out.Stats.SimSeconds
				last = speedup
				row = append(row, f2(speedup))
			}
			row = append(row, pct(last/8))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Note("paper shape: near-perfect scaling; worst case 19%% off ideal; urand can exceed ideal via work efficiency")
	return t, nil
}

// Fig8 reproduces Figure 8: weak scaling — the graph doubles with the GPN
// count (RMAT series); ideal is constant execution time.
func Fig8(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "Weak scaling (BFS on RMAT series): time normalized to 1 GPN (1.0 = ideal)",
		Header: []string{"gpns", "graph", "edges", "time-vs-1gpn", "gteps"},
	}
	var base float64
	for _, gpns := range []int{1, 2, 4, 8} {
		g := WeakScalingGraph(s, gpns)
		root := g.LargestOutDegreeVertex()
		acc, err := novaRunner(s, gpns)
		if err != nil {
			return nil, err
		}
		out, err := nova.RunWorkload(acc, "bfs", g, nil, root, 0)
		if err != nil {
			return nil, err
		}
		if gpns == 1 {
			base = out.Stats.SimSeconds
		}
		t.AddRow(fmt.Sprint(gpns), g.Name, fmt.Sprint(g.NumEdges()),
			f2(out.Stats.SimSeconds/base), f3(out.EffectiveGTEPS()))
	}
	t.Note("paper shape: no degradation as GPNs and problem size grow together")
	return t, nil
}

// Fig9a reproduces Figure 9a: sensitivity to per-PE cache size (the paper
// sweeps 64 KiB → 4 MiB and finds <2% change on large graphs).
func Fig9a(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig9a",
		Title:  "Cache-size sensitivity: time normalized to smallest cache",
		Header: []string{"graph", "workload", "1x", "4x", "16x", "64x", "hit-rate@1x"},
	}
	baseCache := s.CacheBytesPerPE()
	for _, name := range []string{"road", "twitter"} {
		d, err := DatasetByName(s, name)
		if err != nil {
			return nil, err
		}
		for _, w := range []string{"bfs", "pr"} {
			row := []string{d.Name, w}
			var base float64
			var hitRate float64
			for _, mult := range []int{1, 4, 16, 64} {
				cfg := NOVAConfig(s, 1)
				cfg.CacheBytesPerPE = baseCache * mult
				acc, err := nova.New(cfg)
				if err != nil {
					return nil, err
				}
				var p program.Program
				if w == "bfs" {
					p = program.NewBFS(d.Root)
				} else {
					p = program.NewPageRank(0.85, 10)
				}
				rep, err := acc.Run(p, d.Graph)
				if err != nil {
					return nil, err
				}
				if mult == 1 {
					base = rep.Stats.SimSeconds
					hitRate = rep.CacheHitRate
				}
				row = append(row, f2(rep.Stats.SimSeconds/base))
			}
			row = append(row, pct(hitRate))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Note("paper shape: <2%% improvement from growing the cache 64x on large graphs; only road benefits")
	return t, nil
}

// Fig9b reproduces Figure 9b: sensitivity to the spatial vertex mapping
// (load-balanced / locality / random) on a multi-GPN system.
func Fig9b(s Scale) (*Table, error) {
	gpns := 8
	if s == Small {
		gpns = 2
	}
	t := &Table{
		ID:     "fig9b",
		Title:  fmt.Sprintf("Vertex-mapping sensitivity (%d GPNs): time normalized to random", gpns),
		Header: []string{"graph", "workload", "random", "load-balanced", "locality"},
	}
	for _, name := range []string{"twitter", "road"} {
		d, err := DatasetByName(s, name)
		if err != nil {
			return nil, err
		}
		for _, w := range []string{"bfs", "pr"} {
			row := []string{d.Name, w}
			var base float64
			for _, mapping := range []string{"random", "load-balanced", "locality"} {
				cfg := NOVAConfig(s, gpns)
				cfg.Mapping = mapping
				acc, err := nova.New(cfg)
				if err != nil {
					return nil, err
				}
				var p program.Program
				if w == "bfs" {
					p = program.NewBFS(d.Root)
				} else {
					p = program.NewPageRank(0.85, 10)
				}
				rep, err := acc.Run(p, d.Graph)
				if err != nil {
					return nil, err
				}
				if mapping == "random" {
					base = rep.Stats.SimSeconds
				}
				row = append(row, f2(rep.Stats.SimSeconds/base))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Note("paper shape: locality-optimized at most ~20%% better; random needs no preprocessing")
	return t, nil
}

// Fig9c reproduces Figure 9c: fabric sensitivity — the hierarchical
// fabric vs an ideal infinite-bandwidth point-to-point network.
func Fig9c(s Scale) (*Table, error) {
	gpns := 8
	if s == Small {
		gpns = 2
	}
	t := &Table{
		ID:     "fig9c",
		Title:  fmt.Sprintf("Fabric sensitivity (%d GPNs): hierarchical time / ideal-P2P time", gpns),
		Header: []string{"graph", "workload", "hierarchical/ideal"},
	}
	for _, name := range []string{"twitter", "urand"} {
		d, err := DatasetByName(s, name)
		if err != nil {
			return nil, err
		}
		for _, w := range []string{"bfs", "pr"} {
			var times [2]float64
			for i, fabric := range []string{"hierarchical", "ideal"} {
				cfg := NOVAConfig(s, gpns)
				cfg.Fabric = fabric
				acc, err := nova.New(cfg)
				if err != nil {
					return nil, err
				}
				var p program.Program
				if w == "bfs" {
					p = program.NewBFS(d.Root)
				} else {
					p = program.NewPageRank(0.85, 10)
				}
				rep, err := acc.Run(p, d.Graph)
				if err != nil {
					return nil, err
				}
				times[i] = rep.Stats.SimSeconds
			}
			t.AddRow(d.Name, w, f2(times[0]/times[1]))
		}
	}
	t.Note("paper shape: the crossbar-based fabric performs like the ideal network (no communication bottleneck)")
	return t, nil
}

// Fig10 reproduces Figure 10: the vertex-memory bandwidth breakdown
// (useful reads / writes / wasteful recovery reads) across tracker sizes.
func Fig10(s Scale) (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  "Vertex-memory bandwidth split vs superblock dimension (fraction of peak)",
		Header: []string{"graph", "workload", "sb-dim", "useful", "write", "wasteful"},
	}
	for _, name := range []string{"road", "twitter"} {
		d, err := DatasetByName(s, name)
		if err != nil {
			return nil, err
		}
		for _, w := range []string{"bfs", "pr"} {
			for _, dim := range []int{32, 64, 128, 256} {
				cfg := NOVAConfig(s, 1)
				cfg.SuperblockDim = dim
				acc, err := nova.New(cfg)
				if err != nil {
					return nil, err
				}
				var p program.Program
				if w == "bfs" {
					p = program.NewBFS(d.Root)
				} else {
					p = program.NewPageRank(0.85, 10)
				}
				rep, err := acc.Run(p, d.Graph)
				if err != nil {
					return nil, err
				}
				t.AddRow(d.Name, w, fmt.Sprint(dim),
					pct(rep.VertexUsefulFrac), pct(rep.VertexWriteFrac), pct(rep.VertexWastefulFrac))
			}
		}
	}
	t.Note("paper shape: road/BFS wastes the most bandwidth (sparse frontier); dense PR wastes little; distribution insensitive to tracker size")
	return t, nil
}
