package exp

import (
	"context"
	"fmt"

	"nova"
	"nova/graph"
	"nova/internal/harness"
)

// workloadGraph picks the right graph orientation for a workload.
func workloadGraph(d *Dataset, w string) (*graph.CSR, *graph.CSR) {
	switch w {
	case "cc":
		sym := d.Sym()
		return sym, sym
	case "bc":
		return d.Graph, d.Transpose()
	default:
		return d.Graph, nil
	}
}

// Fig1 reproduces Figure 1: throughput (GTEPS) of NOVA vs PolyGraph on
// BFS as graph size grows, with iso on-chip/bandwidth provisioning. The
// paper's claim: PolyGraph wins small, loses big, because slice switching
// overheads grow with graph size.
func Fig1(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error) {
	t := &Table{
		ID:     "fig1",
		Title:  "BFS throughput vs graph size (GTEPS), NOVA vs PolyGraph, iso-bandwidth",
		Header: []string{"vertices", "edges", "pg-slices", "nova-gteps", "pg-gteps", "nova/pg"},
	}
	base := 24000 / s.divisor()
	var jobs []rowJob
	for _, mult := range []int{1, 2, 4, 8, 16} {
		mult := mult
		jobs = append(jobs, rowJob{
			Name: fmt.Sprintf("fig1/x%d", mult),
			Run: func(ctx context.Context) ([]string, error) {
				n := base * mult
				g := graph.GenUniform(fmt.Sprintf("urand-%d", n), n, 16, 64, int64(100+mult))
				w := harness.Workload{Name: "bfs", G: g, Root: g.LargestOutDegreeVertex()}
				novaRep, pgRep, err := novaPG(ctx, s, w)
				if err != nil {
					return nil, err
				}
				return []string{
					fmt.Sprint(n), fmt.Sprint(g.NumEdges()), fmt.Sprint(int(pgRep.Metric(nova.MetricSliceCount))),
					f3(novaRep.EffectiveGTEPS()), f3(pgRep.EffectiveGTEPS()),
					f2(pgRep.Stats.SimSeconds / novaRep.Stats.SimSeconds),
				}, nil
			},
		})
	}
	rows, err := runRows(ctx, pool, jobs)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Note("paper shape: PolyGraph throughput decays as slices grow; NOVA stays flat")
	return t, nil
}

// Fig2 reproduces Figure 2: the execution-time breakdown of temporal
// partitioning (processing / switching / inefficiency) as the slice count
// grows, BFS on the twitter stand-in.
func Fig2(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error) {
	d, err := DatasetByName(s, "twitter")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig2",
		Title:  "Temporal-partitioning overhead vs #slices (BFS on twitter)",
		Header: []string{"slices", "processing", "switching", "inefficiency"},
	}
	var jobs []rowJob
	for _, slices := range []int{1, 2, 4, 8, 16, 32, 64} {
		slices := slices
		jobs = append(jobs, rowJob{
			Name: fmt.Sprintf("fig2/slices=%d", slices),
			Run: func(ctx context.Context) ([]string, error) {
				rep, err := PGEngineSlices(s, slices).RunWorkload(ctx, cell(s, d, "bfs", 0))
				if err != nil {
					return nil, err
				}
				tot := rep.Stats.SimSeconds
				return []string{fmt.Sprint(slices), pct(rep.Metric(nova.MetricProcessingSeconds) / tot),
					pct(rep.Metric(nova.MetricSwitchingSeconds) / tot), pct(rep.Metric(nova.MetricInefficiencySeconds) / tot)}, nil
			},
		})
	}
	rows, err := runRows(ctx, pool, jobs)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Note("paper shape: overheads ≈20%% below 3 slices, inefficiency >75%% at several hundred slices")
	return t, nil
}

// Fig4 reproduces Figure 4: NOVA vs PolyGraph vs Ligra across the five
// workloads and five graphs, iso-bandwidth.
func Fig4(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error) {
	t := &Table{
		ID:     "fig4",
		Title:  "NOVA vs PolyGraph (iso-bandwidth 332.8 GB/s) vs Ligra, effective GTEPS",
		Header: []string{"graph", "workload", "nova", "polygraph", "ligra(wall)", "nova/pg speedup"},
	}
	var jobs []rowJob
	for _, d := range Datasets(s) {
		for _, w := range nova.WorkloadNames {
			d, w := d, w
			jobs = append(jobs, rowJob{
				Name: fmt.Sprintf("fig4/%s/%s", d.Name, w),
				Run: func(ctx context.Context) ([]string, error) {
					wl := cell(s, d, w, 10)
					novaRep, pgRep, err := novaPG(ctx, s, wl)
					if err != nil {
						return nil, fmt.Errorf("%s/%s: %w", d.Name, w, err)
					}
					if wl.GT == nil {
						wl.GT = d.Transpose() // cached; spares ligra a rebuild
					}
					swRep, err := LigraEngine().RunWorkload(ctx, wl)
					if err != nil {
						return nil, fmt.Errorf("ligra %s/%s: %w", d.Name, w, err)
					}
					return []string{d.Name, w,
						f3(novaRep.EffectiveGTEPS()), f3(pgRep.EffectiveGTEPS()),
						f3(swRep.EffectiveGTEPS()),
						f2(pgRep.Stats.SimSeconds / novaRep.Stats.SimSeconds)}, nil
				},
			})
		}
	}
	rows, err := runRows(ctx, pool, jobs)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Note("paper shape: PolyGraph ~1.3x on twitter-BFS; NOVA wins on friendster/host/urand, up to 2.35x (urand SSSP)")
	return t, nil
}

// Fig5 reproduces Figure 5: the share of messages coalesced before
// propagation, NOVA vs PolyGraph, BFS.
func Fig5(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error) {
	t := &Table{
		ID:     "fig5",
		Title:  "Messages coalesced (BFS): NOVA's DRAM-wide window vs PolyGraph's on-chip window",
		Header: []string{"graph", "nova-coalesced", "pg-coalesced", "ratio"},
	}
	var jobs []rowJob
	for _, d := range Datasets(s) {
		d := d
		jobs = append(jobs, rowJob{
			Name: fmt.Sprintf("fig5/%s", d.Name),
			Run: func(ctx context.Context) ([]string, error) {
				novaRep, pgRep, err := novaPG(ctx, s, cell(s, d, "bfs", 0))
				if err != nil {
					return nil, err
				}
				nc := frac(novaRep.Stats.MessagesCoalesced, novaRep.Stats.MessagesSent)
				pc := frac(pgRep.Stats.MessagesCoalesced, pgRep.Stats.MessagesSent)
				ratio := 0.0
				if pc > 0 {
					ratio = nc / pc
				}
				return []string{d.Name, pct(nc), pct(pc), f2(ratio)}, nil
			},
		})
	}
	rows, err := runRows(ctx, pool, jobs)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Note("paper shape: NOVA coalesces up to ~3x more messages than PolyGraph")
	return t, nil
}

func frac(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Fig6 reproduces Figure 6: execution-time breakdowns — NOVA's overfetch
// overhead vs PolyGraph's slice-switching overhead.
func Fig6(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "Execution time breakdown: NOVA (processing/overfetch) vs PolyGraph (processing/switch+ineff)",
		Header: []string{"graph", "workload", "nova-proc", "nova-overhead", "pg-proc", "pg-overhead", "nova/pg"},
	}
	var jobs []rowJob
	for _, d := range Datasets(s) {
		for _, w := range []string{"bfs", "pr"} {
			d, w := d, w
			jobs = append(jobs, rowJob{
				Name: fmt.Sprintf("fig6/%s/%s", d.Name, w),
				Run: func(ctx context.Context) ([]string, error) {
					novaRep, pgRep, err := novaPG(ctx, s, cell(s, d, w, 10))
					if err != nil {
						return nil, err
					}
					ntot := novaRep.Stats.SimSeconds
					ptot := pgRep.Stats.SimSeconds
					return []string{d.Name, w,
						pct(novaRep.Metric(nova.MetricProcessingSeconds) / ntot), pct(novaRep.Metric(nova.MetricOverheadSeconds) / ntot),
						pct(pgRep.Metric(nova.MetricProcessingSeconds) / ptot),
						pct((pgRep.Metric(nova.MetricSwitchingSeconds) + pgRep.Metric(nova.MetricInefficiencySeconds)) / ptot),
						f2(ptot / ntot)}, nil
				},
			})
		}
	}
	rows, err := runRows(ctx, pool, jobs)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Note("paper shape: PG's raw processing is faster (on-chip vertices) but overhead negates it on large graphs")
	return t, nil
}

// Fig7 reproduces Figure 7: strong scaling of NOVA — fixed graph, 1/2/4/8
// GPNs — for BFS (data-driven) and BC (topology-driven). Every
// (graph, workload, gpns) cell is an independent job; rows normalize to
// the 1-GPN cell after the sweep completes.
func Fig7(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "Strong scaling: speedup over 1 GPN for BFS and BC",
		Header: []string{"graph", "workload", "1", "2", "4", "8", "8-gpn efficiency"},
	}
	names := []string{"twitter", "urand"}
	workloads := []string{"bfs", "bc"}
	gpnsList := []int{1, 2, 4, 8}
	var jobs []harness.Job[*harness.Report]
	var rowMeta [][2]string
	for _, name := range names {
		d, err := DatasetByName(s, name)
		if err != nil {
			return nil, err
		}
		for _, w := range workloads {
			rowMeta = append(rowMeta, [2]string{d.Name, w})
			for _, gpns := range gpnsList {
				d, w, gpns := d, w, gpns
				jobs = append(jobs, harness.Job[*harness.Report]{
					Name: fmt.Sprintf("fig7/%s/%s/gpns=%d", d.Name, w, gpns),
					Run: func(ctx context.Context) (*harness.Report, error) {
						eng, err := NovaEngine(s, gpns)
						if err != nil {
							return nil, err
						}
						return eng.RunWorkload(ctx, cell(s, d, w, 0))
					},
				})
			}
		}
	}
	reports, err := runReports(ctx, pool, jobs)
	if err != nil {
		return nil, err
	}
	for r, meta := range rowMeta {
		row := []string{meta[0], meta[1]}
		base := reports[r*len(gpnsList)].Stats.SimSeconds
		var last float64
		for i := range gpnsList {
			speedup := base / reports[r*len(gpnsList)+i].Stats.SimSeconds
			last = speedup
			row = append(row, f2(speedup))
		}
		row = append(row, pct(last/8))
		t.Rows = append(t.Rows, row)
	}
	t.Note("paper shape: near-perfect scaling; worst case 19%% off ideal; urand can exceed ideal via work efficiency")
	return t, nil
}

// Fig8 reproduces Figure 8: weak scaling — the graph doubles with the GPN
// count (RMAT series); ideal is constant execution time. Cells run
// concurrently; rows normalize to the 1-GPN cell afterwards.
func Fig8(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "Weak scaling (BFS on RMAT series): time normalized to 1 GPN (1.0 = ideal)",
		Header: []string{"gpns", "graph", "edges", "time-vs-1gpn", "gteps"},
	}
	gpnsList := []int{1, 2, 4, 8}
	graphs := make([]*graph.CSR, len(gpnsList))
	var jobs []harness.Job[*harness.Report]
	for i, gpns := range gpnsList {
		graphs[i] = WeakScalingGraph(s, gpns)
		g, gpns := graphs[i], gpns
		jobs = append(jobs, harness.Job[*harness.Report]{
			Name: fmt.Sprintf("fig8/gpns=%d", gpns),
			Run: func(ctx context.Context) (*harness.Report, error) {
				eng, err := NovaEngine(s, gpns)
				if err != nil {
					return nil, err
				}
				return eng.RunWorkload(ctx, harness.Workload{Name: "bfs", G: g, Root: g.LargestOutDegreeVertex()})
			},
		})
	}
	reports, err := runReports(ctx, pool, jobs)
	if err != nil {
		return nil, err
	}
	base := reports[0].Stats.SimSeconds
	for i, gpns := range gpnsList {
		t.AddRow(fmt.Sprint(gpns), graphs[i].Name, fmt.Sprint(graphs[i].NumEdges()),
			f2(reports[i].Stats.SimSeconds/base), f3(reports[i].EffectiveGTEPS()))
	}
	t.Note("paper shape: no degradation as GPNs and problem size grow together")
	return t, nil
}

// Fig9a reproduces Figure 9a: sensitivity to per-PE cache size (the paper
// sweeps 64 KiB → 4 MiB and finds <2% change on large graphs).
func Fig9a(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error) {
	t := &Table{
		ID:     "fig9a",
		Title:  "Cache-size sensitivity: time normalized to smallest cache",
		Header: []string{"graph", "workload", "1x", "4x", "16x", "64x", "hit-rate@1x"},
	}
	baseCache := s.CacheBytesPerPE()
	mults := []int{1, 4, 16, 64}
	var jobs []harness.Job[*harness.Report]
	var rowMeta [][2]string
	for _, name := range []string{"road", "twitter"} {
		d, err := DatasetByName(s, name)
		if err != nil {
			return nil, err
		}
		for _, w := range []string{"bfs", "pr"} {
			rowMeta = append(rowMeta, [2]string{d.Name, w})
			for _, mult := range mults {
				d, w, mult := d, w, mult
				jobs = append(jobs, harness.Job[*harness.Report]{
					Name: fmt.Sprintf("fig9a/%s/%s/x%d", d.Name, w, mult),
					Run: func(ctx context.Context) (*harness.Report, error) {
						cfg := NOVAConfig(s, 1)
						cfg.CacheBytesPerPE = baseCache * mult
						eng, err := NovaEngineWith(cfg)
						if err != nil {
							return nil, err
						}
						return eng.RunWorkload(ctx, cell(s, d, w, 10))
					},
				})
			}
		}
	}
	reports, err := runReports(ctx, pool, jobs)
	if err != nil {
		return nil, err
	}
	for r, meta := range rowMeta {
		row := []string{meta[0], meta[1]}
		base := reports[r*len(mults)]
		for i := range mults {
			row = append(row, f2(reports[r*len(mults)+i].Stats.SimSeconds/base.Stats.SimSeconds))
		}
		row = append(row, pct(base.Metric(nova.MetricCacheHitRate)))
		t.Rows = append(t.Rows, row)
	}
	t.Note("paper shape: <2%% improvement from growing the cache 64x on large graphs; only road benefits")
	return t, nil
}

// Fig9b reproduces Figure 9b: sensitivity to the spatial vertex mapping
// (load-balanced / locality / random) on a multi-GPN system.
func Fig9b(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error) {
	gpns := 8
	if s == Small {
		gpns = 2
	}
	t := &Table{
		ID:     "fig9b",
		Title:  fmt.Sprintf("Vertex-mapping sensitivity (%d GPNs): time normalized to random", gpns),
		Header: []string{"graph", "workload", "random", "load-balanced", "locality"},
	}
	mappings := []string{"random", "load-balanced", "locality"}
	var jobs []harness.Job[*harness.Report]
	var rowMeta [][2]string
	for _, name := range []string{"twitter", "road"} {
		d, err := DatasetByName(s, name)
		if err != nil {
			return nil, err
		}
		for _, w := range []string{"bfs", "pr"} {
			rowMeta = append(rowMeta, [2]string{d.Name, w})
			for _, mapping := range mappings {
				d, w, mapping := d, w, mapping
				jobs = append(jobs, harness.Job[*harness.Report]{
					Name: fmt.Sprintf("fig9b/%s/%s/%s", d.Name, w, mapping),
					Run: func(ctx context.Context) (*harness.Report, error) {
						cfg := NOVAConfig(s, gpns)
						cfg.Mapping = mapping
						eng, err := NovaEngineWith(cfg)
						if err != nil {
							return nil, err
						}
						return eng.RunWorkload(ctx, cell(s, d, w, 10))
					},
				})
			}
		}
	}
	reports, err := runReports(ctx, pool, jobs)
	if err != nil {
		return nil, err
	}
	for r, meta := range rowMeta {
		row := []string{meta[0], meta[1]}
		base := reports[r*len(mappings)].Stats.SimSeconds
		for i := range mappings {
			row = append(row, f2(reports[r*len(mappings)+i].Stats.SimSeconds/base))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Note("paper shape: locality-optimized at most ~20%% better; random needs no preprocessing")
	return t, nil
}

// Fig9c reproduces Figure 9c: fabric sensitivity — the hierarchical
// fabric vs an ideal infinite-bandwidth point-to-point network.
func Fig9c(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error) {
	gpns := 8
	if s == Small {
		gpns = 2
	}
	t := &Table{
		ID:     "fig9c",
		Title:  fmt.Sprintf("Fabric sensitivity (%d GPNs): hierarchical time / ideal-P2P time", gpns),
		Header: []string{"graph", "workload", "hierarchical/ideal"},
	}
	var jobs []rowJob
	for _, name := range []string{"twitter", "urand"} {
		d, err := DatasetByName(s, name)
		if err != nil {
			return nil, err
		}
		for _, w := range []string{"bfs", "pr"} {
			d, w := d, w
			jobs = append(jobs, rowJob{
				Name: fmt.Sprintf("fig9c/%s/%s", d.Name, w),
				Run: func(ctx context.Context) ([]string, error) {
					var times [2]float64
					for i, fabric := range []string{"hierarchical", "ideal"} {
						cfg := NOVAConfig(s, gpns)
						cfg.Fabric = fabric
						if fabric == "ideal" {
							// The ideal fabric has no inter-GPN links, so a
							// globally-selected topology or coalescing window
							// cannot apply to this side of the comparison.
							cfg.Topology = "crossbar"
							cfg.CoalesceWindow = 0
							cfg.CoalesceCapacity = 0
						}
						eng, err := NovaEngineWith(cfg)
						if err != nil {
							return nil, err
						}
						rep, err := eng.RunWorkload(ctx, cell(s, d, w, 10))
						if err != nil {
							return nil, err
						}
						times[i] = rep.Stats.SimSeconds
					}
					return []string{d.Name, w, f2(times[0] / times[1])}, nil
				},
			})
		}
	}
	rows, err := runRows(ctx, pool, jobs)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Note("paper shape: the crossbar-based fabric performs like the ideal network (no communication bottleneck)")
	return t, nil
}

// Fig10 reproduces Figure 10: the vertex-memory bandwidth breakdown
// (useful reads / writes / wasteful recovery reads) across tracker sizes.
func Fig10(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  "Vertex-memory bandwidth split vs superblock dimension (fraction of peak)",
		Header: []string{"graph", "workload", "sb-dim", "useful", "write", "wasteful"},
	}
	var jobs []rowJob
	for _, name := range []string{"road", "twitter"} {
		d, err := DatasetByName(s, name)
		if err != nil {
			return nil, err
		}
		for _, w := range []string{"bfs", "pr"} {
			for _, dim := range []int{32, 64, 128, 256} {
				d, w, dim := d, w, dim
				jobs = append(jobs, rowJob{
					Name: fmt.Sprintf("fig10/%s/%s/dim=%d", d.Name, w, dim),
					Run: func(ctx context.Context) ([]string, error) {
						cfg := NOVAConfig(s, 1)
						cfg.SuperblockDim = dim
						eng, err := NovaEngineWith(cfg)
						if err != nil {
							return nil, err
						}
						rep, err := eng.RunWorkload(ctx, cell(s, d, w, 10))
						if err != nil {
							return nil, err
						}
						return []string{d.Name, w, fmt.Sprint(dim),
							pct(rep.Metric(nova.MetricVertexUsefulFrac)), pct(rep.Metric(nova.MetricVertexWriteFrac)),
							pct(rep.Metric(nova.MetricVertexWastefulFrac))}, nil
					},
				})
			}
		}
	}
	rows, err := runRows(ctx, pool, jobs)
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Note("paper shape: road/BFS wastes the most bandwidth (sparse frontier); dense PR wastes little; distribution insensitive to tracker size")
	return t, nil
}
