package exp

import (
	"context"
	"fmt"

	"nova"
	"nova/graph"
	"nova/internal/harness"
)

// oocResidentPages is the per-PE SSD resident window the figure's NOVA
// cells use — deliberately far below the vertex-set footprint at every
// graph size, so the VMU spill path pays page-ins throughout the run.
const oocResidentPages = 64

// FigOOC is this repo's out-of-core figure (no counterpart in the paper's
// evaluation): NOVA's SSD-backed spill/recovery tier against the
// external-memory baseline (PartitionedVC-style interval-at-a-time
// processing) across graph sizes, on the asynchronous workloads both
// engines support. Each row compares one (workload, size) point: total
// modeled time, the share of it exposed as I/O stall, and the paging
// traffic (partition_loads / bytes_paged) each approach generated.
func FigOOC(ctx context.Context, s Scale, pool *harness.Pool) (*Table, error) {
	d := s.divisor()
	sizes := []int{64000 / d, 128000 / d, 256000 / d}
	workloads := []string{"bfs", "sssp", "prdelta"}
	t := &Table{
		ID:    "figooc",
		Title: "Out-of-core tier: NOVA SSD spill/recovery vs. external-memory partitioning (uniform graphs, NVMe presets)",
		Header: []string{"workload", "vertices", "nova-time(ms)", "nova-io-stall", "nova-loads",
			"extmem-time(ms)", "extmem-io-stall", "extmem-loads", "extmem-hit-rate", "extmem/nova"},
	}
	var jobs []harness.Job[*harness.Report]
	for _, w := range workloads {
		for i, n := range sizes {
			w, n, i := w, n, i
			g := graph.GenUniform(fmt.Sprintf("ooc-urand-%d", n), n, 16, 64, int64(40+i))
			ds := &Dataset{Name: g.Name, Graph: g, Root: g.LargestOutDegreeVertex()}
			jobs = append(jobs, harness.Job[*harness.Report]{
				Name: fmt.Sprintf("figooc/nova/%s/%d", w, n),
				Run: func(ctx context.Context) (*harness.Report, error) {
					cfg := NOVAConfig(s, 1)
					cfg.OutOfCore = true
					cfg.SSDResidentPages = oocResidentPages
					eng, err := NovaEngineWith(cfg)
					if err != nil {
						return nil, err
					}
					return eng.RunWorkload(ctx, cell(s, ds, w, 0))
				},
			})
			jobs = append(jobs, harness.Job[*harness.Report]{
				Name: fmt.Sprintf("figooc/extmem/%s/%d", w, n),
				Run: func(ctx context.Context) (*harness.Report, error) {
					// DRAM budget of an eighth of the graph footprint, split
					// into sixteen intervals: enough pressure that reuse
					// beyond the cache pays SSD loads, like the NOVA cell.
					eng := ExtmemEngine(g.FootprintBytes()/8, g.NumEdges()/16+1)
					return eng.RunWorkload(ctx, cell(s, ds, w, 0))
				},
			})
		}
	}
	reports, err := runReports(ctx, pool, jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, w := range workloads {
		for _, n := range sizes {
			nv, em := reports[i], reports[i+1]
			i += 2
			ratio := 0.0
			if nv.Stats.SimSeconds > 0 {
				ratio = em.Stats.SimSeconds / nv.Stats.SimSeconds
			}
			t.AddRow(w, fmt.Sprint(n),
				f3(nv.Stats.SimSeconds*1e3), pct(stallShare(nv)),
				fmt.Sprint(int64(nv.Metric(nova.MetricPartitionLoads))),
				f3(em.Stats.SimSeconds*1e3), pct(stallShare(em)),
				fmt.Sprint(int64(em.Metric(nova.MetricPartitionLoads))),
				pct(em.Metric(nova.MetricCacheHitRate)),
				f2(ratio))
		}
	}
	t.Note("both engines page through the NVMe preset (4 KiB pages, ~3.2 GB/s, 10 us, QD16); loads are partition page-in events")
	t.Note("io-stall = io_stall_ticks/cycles: the paging latency the engine failed to hide behind compute")
	t.Note("extmem/nova > 1.00 means interval-at-a-time external-memory processing loses to NOVA's in-situ spill/recovery at this size")
	return t, nil
}

// stallShare returns the exposed-I/O share of a report's modeled cycles.
func stallShare(r *harness.Report) float64 {
	cycles := r.Metric(nova.MetricCycles)
	if cycles == 0 {
		return 0
	}
	return r.Metric(nova.MetricIOStallTicks) / cycles
}
