package exp

import (
	"fmt"
	"sync"

	"nova"
	"nova/graph"
)

// Scale shrinks the dataset registry so experiments fit any time budget:
// Full is the DESIGN.md registry (slice counts match the paper's
// Table III exactly), Medium divides vertex counts by 4, Small by 16.
// Large is the spill-stress tier: divisor-2 graphs built through the
// constant-memory streaming generators, paired with a NOVA configuration
// whose active buffers are an order of magnitude under the active-set
// sizes, so the VMU spill/recovery and superblock-tracker paths dominate.
type Scale int

const (
	// Small is the test/bench scale (seconds).
	Small Scale = iota
	// Medium is a minutes-scale sweep.
	Medium
	// Full is the complete scaled registry (tens of minutes).
	Full
	// Large is the spill-stress tier (streaming-built graphs, shrunken
	// active buffers).
	Large
)

// ParseScale maps flag values to scales.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "full":
		return Full, nil
	case "large":
		return Large, nil
	default:
		return Small, fmt.Errorf("exp: unknown scale %q (small|medium|full|large)", s)
	}
}

func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return "full"
	}
}

// divisor returns the vertex-count divisor.
func (s Scale) divisor() int {
	switch s {
	case Small:
		return 16
	case Medium:
		return 4
	case Large:
		return 2
	default:
		return 1
	}
}

// PolyGraphOnChip returns the scaled scratchpad capacity calibrated so
// that ceil(4·V/cap) reproduces Table III's slice counts (3/5/8/13/16)
// for the five datasets at every scale.
func (s Scale) PolyGraphOnChip() int64 { return 129200 / int64(s.divisor()) }

// CacheBytesPerPE returns the scaled MPU cache so the cache:vertex-set
// ratio stays far below 1, as in the paper.
func (s Scale) CacheBytesPerPE() int {
	switch s {
	case Small:
		return 512
	case Medium:
		return 1 << 10
	default: // Full and Large share the cache sizing.
		return 2 << 10
	}
}

// ActiveBufferEntries returns the per-PE VMU active-buffer size for the
// tier: the Table II default except on the Large tier, where the buffer
// shrinks far below the active-set sizes so every workload overflows it
// and the spill/recovery machinery carries the run.
func (s Scale) ActiveBufferEntries() int {
	if s == Large {
		return 16
	}
	return 80
}

// Dataset is one Table III stand-in.
type Dataset struct {
	Name  string
	Graph *graph.CSR
	// Root is the traversal source (highest out-degree vertex).
	Root graph.VertexID
	// PaperSlices is the Table III slice count this dataset must
	// reproduce under the scaled PolyGraph capacity.
	PaperSlices int

	symOnce sync.Once
	sym     *graph.CSR
	trOnce  sync.Once
	tr      *graph.CSR
}

// Sym returns the symmetrized graph (built lazily, cached).
func (d *Dataset) Sym() *graph.CSR {
	d.symOnce.Do(func() { d.sym = d.Graph.Symmetrize() })
	return d.sym
}

// Transpose returns the transposed graph (built lazily, cached).
func (d *Dataset) Transpose() *graph.CSR {
	d.trOnce.Do(func() { d.tr = d.Graph.Transpose() })
	return d.tr
}

var (
	dsMu    sync.Mutex
	dsCache = map[string][]*Dataset{}
)

// Datasets returns the five Table III stand-ins at the given scale:
// road (high-diameter grid), twitter/friendster/host (RMAT power-law with
// the paper's average degrees) and urand (uniform random).
//
// The Large tier builds its registry through the streaming generators
// (graph.FromStream) — the constant-memory path large graphs are expected
// to take — so the registry doubles as a continuous exercise of that
// machinery. Its slice counts follow the calibration equation rather than
// Table III (road rounds down to 2 at divisor 2).
func Datasets(s Scale) []*Dataset {
	dsMu.Lock()
	defer dsMu.Unlock()
	if ds, ok := dsCache[s.String()]; ok {
		return ds
	}
	d := s.divisor()
	sq := 1
	for sq*sq < d {
		sq *= 2
	}
	var build []*Dataset
	if s == Large {
		build = []*Dataset{
			{Name: "road", PaperSlices: 2,
				Graph: graph.FromStream(graph.NewGridStream("road", 340/sq, 272/sq, 0.39, 64, 11))},
			{Name: "twitter", PaperSlices: 5,
				Graph: graph.FromStream(graph.NewRMATStream("twitter", 160000/d, 35, graph.DefaultRMAT, 64, 12))},
			{Name: "friendster", PaperSlices: 8,
				Graph: graph.FromStream(graph.NewRMATStream("friendster", 252000/d, 27, graph.DefaultRMAT, 64, 13))},
			{Name: "host", PaperSlices: 13,
				Graph: graph.FromStream(graph.NewRMATStream("host", 388000/d, 20, graph.DefaultRMAT, 64, 14))},
			{Name: "urand", PaperSlices: 16,
				Graph: graph.FromStream(graph.NewUniformStream("urand", 516000/d, 31, 64, 15))},
		}
	} else {
		build = []*Dataset{
			{Name: "road", PaperSlices: 3,
				Graph: graph.GenGrid("road", 340/sq, 272/sq, 0.39, 64, 11)},
			{Name: "twitter", PaperSlices: 5,
				Graph: graph.GenRMATN("twitter", 160000/d, 35, graph.DefaultRMAT, 64, 12)},
			{Name: "friendster", PaperSlices: 8,
				Graph: graph.GenRMATN("friendster", 252000/d, 27, graph.DefaultRMAT, 64, 13)},
			{Name: "host", PaperSlices: 13,
				Graph: graph.GenRMATN("host", 388000/d, 20, graph.DefaultRMAT, 64, 14)},
			{Name: "urand", PaperSlices: 16,
				Graph: graph.GenUniform("urand", 516000/d, 31, 64, 15)},
		}
	}
	for _, ds := range build {
		ds.Root = ds.Graph.LargestOutDegreeVertex()
	}
	dsCache[s.String()] = build
	return build
}

// Warm pre-builds the dataset registry — base graphs plus their
// symmetrized and transposed variants — so timed sweeps (make bench)
// exclude one-time generation cost.
func Warm(s Scale) {
	for _, d := range Datasets(s) {
		d.Sym()
		d.Transpose()
	}
}

// DatasetByName returns one registry entry.
func DatasetByName(s Scale, name string) (*Dataset, error) {
	for _, d := range Datasets(s) {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("exp: unknown dataset %q", name)
}

// WeakScalingGraph returns the RMAT graph for a weak-scaling point: the
// problem size doubles with the GPN count (the paper's RMAT21–24 series).
func WeakScalingGraph(s Scale, gpns int) *graph.CSR {
	base := 14 // RMAT14 at full scale for 1 GPN
	switch s {
	case Small:
		base = 10
	case Medium:
		base = 12
	case Large:
		base = 13
	}
	sc := base
	for g := 1; g < gpns; g *= 2 {
		sc++
	}
	return graph.GenRMAT(fmt.Sprintf("rmat%d", sc), sc, 16, graph.DefaultRMAT, 64, int64(20+sc))
}

// Shards is the simulation worker-goroutine count NOVAConfig stamps into
// every generated configuration — the CLIs' -shards flag. Results are
// bit-identical at every setting, so it is not part of any fingerprint.
var Shards = 1

// Topology, CoalesceWindow and CoalesceCap mirror the CLIs' fabric flags:
// NOVAConfig stamps them into every generated configuration, so a whole
// experiment run can be replayed on a different inter-GPN fabric. Unlike
// Shards they change simulated timing, and they reach the engine
// fingerprint through nova.Config. fignet sweeps the topology grid
// explicitly and is unaffected by these defaults.
var (
	Topology       = "crossbar"
	CoalesceWindow int64
	CoalesceCap    int
)

// NOVAConfig returns the scaled NOVA system for the experiments: Table II
// organization with the cache shrunk in proportion to the scaled graphs,
// and — on the Large tier — the active buffers shrunk far below the
// active-set sizes so spill/recovery dominates.
func NOVAConfig(s Scale, gpns int) nova.Config {
	cfg := nova.DefaultConfig()
	cfg.GPNs = gpns
	cfg.CacheBytesPerPE = s.CacheBytesPerPE()
	cfg.ActiveBufferEntries = s.ActiveBufferEntries()
	cfg.Shards = Shards
	cfg.Topology = Topology
	cfg.CoalesceWindow = CoalesceWindow
	cfg.CoalesceCapacity = CoalesceCap
	return cfg
}

// PGBaseline returns the scaled PolyGraph baseline (iso-bandwidth:
// 332.8 GB/s, matching one NOVA GPN's aggregate).
func PGBaseline(s Scale) *nova.PolyGraphBaseline {
	return &nova.PolyGraphBaseline{OnChipBytes: s.PolyGraphOnChip()}
}
