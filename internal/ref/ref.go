// Package ref provides independent sequential oracle implementations of
// the paper's five workloads. They are used to (a) verify that every
// simulated engine computes correct results and (b) supply the
// sequential-edge counts that anchor Beamer's work-efficiency metric
// (Section II-A of the paper).
package ref

import (
	"container/heap"

	"nova/graph"
)

// Unreached marks vertices a traversal never visited.
const Unreached = int64(-1)

// BFS returns hop distances from root (Unreached where unreachable).
func BFS(g *graph.CSR, root graph.VertexID) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[root] = 0
	queue := []graph.VertexID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, d := range g.Neighbors(v) {
			if dist[d] == Unreached {
				dist[d] = dist[v] + 1
				queue = append(queue, d)
			}
		}
	}
	return dist
}

type pqItem struct {
	v    graph.VertexID
	dist int64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; x := old[len(old)-1]; *q = old[:len(old)-1]; return x }

// SSSP returns weighted shortest-path distances from root via Dijkstra.
func SSSP(g *graph.CSR, root graph.VertexID) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[root] = 0
	q := pq{{root, 0}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > dist[it.v] {
			continue
		}
		lo, hi := g.RowPtr[it.v], g.RowPtr[it.v+1]
		for i := lo; i < hi; i++ {
			d := g.Dst[i]
			nd := it.dist + int64(g.Weight[i])
			if dist[d] == Unreached || nd < dist[d] {
				dist[d] = nd
				heap.Push(&q, pqItem{d, nd})
			}
		}
	}
	return dist
}

// CC returns per-vertex component labels where each label is the smallest
// vertex ID in the component — exactly the fixed point of min-label
// propagation, so engine output can be compared directly. The input must
// be symmetric for the labels to identify undirected components.
func CC(g *graph.CSR) []int64 {
	n := g.NumVertices()
	label := make([]int64, n)
	for i := range label {
		label[i] = Unreached
	}
	for start := 0; start < n; start++ {
		if label[start] != Unreached {
			continue
		}
		// BFS the component; the smallest ID reached labels it. With
		// min-label semantics on a symmetric graph, the component's
		// minimum is what propagation converges to.
		comp := []graph.VertexID{graph.VertexID(start)}
		label[start] = int64(start)
		minID := int64(start)
		for qi := 0; qi < len(comp); qi++ {
			v := comp[qi]
			for _, d := range g.Neighbors(v) {
				if label[d] == Unreached {
					label[d] = int64(start)
					comp = append(comp, d)
					if int64(d) < minID {
						minID = int64(d)
					}
				}
			}
		}
		for _, v := range comp {
			label[v] = minID
		}
	}
	return label
}

// PageRank mirrors the BSP engine semantics exactly: each iteration, every
// vertex with out-degree > 0 contributes rank/outdeg along its out-edges;
// vertices that receive at least one contribution update to
// (1-damping)/N + damping·Σ, and vertices receiving none keep their rank.
// (Dangling-vertex mass is dropped, as in the simulated engines.)
func PageRank(g *graph.CSR, damping float64, iters int) []float64 {
	n := g.NumVertices()
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	contrib := make([]float64, n)
	got := make([]bool, n)
	for it := 0; it < iters; it++ {
		for i := range contrib {
			contrib[i] = 0
			got[i] = false
		}
		for v := 0; v < n; v++ {
			deg := g.OutDegree(graph.VertexID(v))
			if deg == 0 {
				continue
			}
			share := rank[v] / float64(deg)
			for _, d := range g.Neighbors(graph.VertexID(v)) {
				contrib[d] += share
				got[d] = true
			}
		}
		for v := 0; v < n; v++ {
			if got[v] {
				rank[v] = (1-damping)/float64(n) + damping*contrib[v]
			}
		}
	}
	return rank
}

// BC returns single-source betweenness dependencies δ(v) computed with
// Brandes' algorithm (unweighted). The root's own score is 0.
func BC(g *graph.CSR, root graph.VertexID) []float64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[root] = 0
	sigma[root] = 1
	order := []graph.VertexID{root}
	for qi := 0; qi < len(order); qi++ {
		v := order[qi]
		for _, d := range g.Neighbors(v) {
			if dist[d] == Unreached {
				dist[d] = dist[v] + 1
				order = append(order, d)
			}
			if dist[d] == dist[v]+1 {
				sigma[d] += sigma[v]
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		for _, d := range g.Neighbors(w) {
			if dist[d] == dist[w]+1 && sigma[d] > 0 {
				delta[w] += sigma[w] / sigma[d] * (1 + delta[d])
			}
		}
	}
	delta[root] = 0
	return delta
}

// SequentialEdges returns the work a sequential implementation performs on
// workload name — the numerator of Beamer's work-efficiency metric.
func SequentialEdges(g *graph.CSR, root graph.VertexID, name string, prIters int) int64 {
	switch name {
	case "bfs", "sssp":
		dist := BFS(g, root)
		var edges int64
		for v := 0; v < g.NumVertices(); v++ {
			if dist[v] != Unreached {
				edges += g.OutDegree(graph.VertexID(v))
			}
		}
		return edges
	case "cc":
		return g.NumEdges()
	case "pr":
		return g.NumEdges() * int64(prIters)
	case "prdelta":
		// Delta PageRank's work depends on the convergence trajectory; a
		// sequential implementation must stream every edge at least once,
		// so one full pass anchors the efficiency metric conservatively.
		return g.NumEdges()
	case "bc", "bc-forward", "bc-backward":
		dist := BFS(g, root)
		var edges int64
		for v := 0; v < g.NumVertices(); v++ {
			if dist[v] != Unreached {
				edges += g.OutDegree(graph.VertexID(v))
			}
		}
		if name == "bc" {
			return 2 * edges
		}
		return edges
	default:
		return g.NumEdges()
	}
}
