package ref

import (
	"math"
	"testing"

	"nova/graph"
)

// diamond: 0->1, 0->2, 1->3, 2->3, 3->4
func diamond() *graph.CSR {
	return graph.FromEdges("diamond", 5, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 0, Dst: 2, Weight: 4},
		{Src: 1, Dst: 3, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1},
		{Src: 3, Dst: 4, Weight: 2},
	})
}

func TestBFS(t *testing.T) {
	d := BFS(diamond(), 0)
	want := []int64{0, 1, 1, 2, 3}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("BFS = %v, want %v", d, want)
		}
	}
	// Unreachable vertices.
	g := graph.FromEdges("two", 3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	d = BFS(g, 0)
	if d[2] != Unreached {
		t.Fatalf("vertex 2 should be unreached, got %d", d[2])
	}
}

func TestSSSP(t *testing.T) {
	d := SSSP(diamond(), 0)
	// 0->1->3 costs 2, 0->2->3 costs 5: best to 3 is 2, to 4 is 4.
	want := []int64{0, 1, 4, 2, 4}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("SSSP = %v, want %v", d, want)
		}
	}
}

func TestSSSPAgreesWithBFSOnUnitWeights(t *testing.T) {
	g := graph.GenRMAT("r", 10, 8, graph.DefaultRMAT, 1, 3)
	root := g.LargestOutDegreeVertex()
	bfs := BFS(g, root)
	sssp := SSSP(g, root)
	for v := range bfs {
		if bfs[v] != sssp[v] {
			t.Fatalf("vertex %d: bfs %d != sssp %d with unit weights", v, bfs[v], sssp[v])
		}
	}
}

func TestCC(t *testing.T) {
	// Components {0,1,2} and {3,4}; 5 isolated.
	g := graph.FromEdges("cc", 6, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 0, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1}, {Src: 2, Dst: 1, Weight: 1},
		{Src: 3, Dst: 4, Weight: 1}, {Src: 4, Dst: 3, Weight: 1},
	})
	l := CC(g)
	want := []int64{0, 0, 0, 3, 3, 5}
	for i := range want {
		if l[i] != want[i] {
			t.Fatalf("CC = %v, want %v", l, want)
		}
	}
}

func TestCCMinLabelSemantics(t *testing.T) {
	// A chain where the smallest ID is in the middle: 5-2-7 plus 2-0.
	g := graph.FromEdges("chain", 8, []graph.Edge{
		{Src: 5, Dst: 2, Weight: 1}, {Src: 2, Dst: 5, Weight: 1},
		{Src: 2, Dst: 7, Weight: 1}, {Src: 7, Dst: 2, Weight: 1},
		{Src: 2, Dst: 0, Weight: 1}, {Src: 0, Dst: 2, Weight: 1},
	}).Symmetrize()
	l := CC(g)
	for _, v := range []int{0, 2, 5, 7} {
		if l[v] != 0 {
			t.Fatalf("label[%d] = %d, want 0 (component minimum)", v, l[v])
		}
	}
}

func TestPageRankWellFormed(t *testing.T) {
	g := graph.GenRMAT("r", 10, 8, graph.DefaultRMAT, 1, 3)
	n := g.NumVertices()
	r := PageRank(g, 0.85, 10)
	indeg := make([]int64, n)
	for _, d := range g.Dst {
		indeg[d]++
	}
	maxIn, maxV := int64(-1), 0
	for v := 0; v < n; v++ {
		if r[v] <= 0 || math.IsNaN(r[v]) || math.IsInf(r[v], 0) || r[v] > 1 {
			t.Fatalf("rank[%d] = %v out of (0,1]", v, r[v])
		}
		if indeg[v] > maxIn {
			maxIn, maxV = indeg[v], v
		}
	}
	// The biggest hub must outrank any vertex with no in-edges (message-
	// driven semantics: such vertices keep their initial 1/N forever).
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			if r[maxV] <= r[v] {
				t.Fatalf("hub rank %v not above sourceless rank %v", r[maxV], r[v])
			}
			if r[v] != 1.0/float64(n) {
				t.Fatalf("sourceless vertex changed rank: %v", r[v])
			}
			break
		}
	}
}

func TestPageRankStar(t *testing.T) {
	// Star: 1,2,3 -> 0. After one iteration, rank(0) = 0.15/4 + 0.85*3/4.
	g := graph.FromEdges("star", 4, []graph.Edge{
		{Src: 1, Dst: 0, Weight: 1}, {Src: 2, Dst: 0, Weight: 1}, {Src: 3, Dst: 0, Weight: 1},
	})
	r := PageRank(g, 0.85, 1)
	want := 0.15/4 + 0.85*(3.0/4.0)
	if math.Abs(r[0]-want) > 1e-12 {
		t.Fatalf("rank[0] = %v, want %v", r[0], want)
	}
	// Spokes receive nothing: rank unchanged.
	if r[1] != 0.25 {
		t.Fatalf("rank[1] = %v, want 0.25 (no in-edges, keeps initial)", r[1])
	}
}

func TestBCDiamond(t *testing.T) {
	// Unweighted diamond: two shortest paths 0->3 (via 1 and 2).
	g := graph.FromEdges("d", 5, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 0, Dst: 2, Weight: 1},
		{Src: 1, Dst: 3, Weight: 1}, {Src: 2, Dst: 3, Weight: 1},
		{Src: 3, Dst: 4, Weight: 1},
	})
	d := BC(g, 0)
	// δ(3) = 1 (only 4 depends on it), δ(1) = δ(2) = σ/σ·(1+δ(3))/2 = 1,
	// since σ(1)=σ(2)=1, σ(3)=2: δ(1) = 1/2·(1+1) = 1.
	want := []float64{0, 1, 1, 1, 0}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Fatalf("BC = %v, want %v", d, want)
		}
	}
}

func TestBCPathSum(t *testing.T) {
	// On a simple path 0->1->2->3, δ(1)=2, δ(2)=1.
	g := graph.FromEdges("p", 4, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}, {Src: 2, Dst: 3, Weight: 1},
	})
	d := BC(g, 0)
	want := []float64{0, 2, 1, 0}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Fatalf("BC = %v, want %v", d, want)
		}
	}
}

func TestSequentialEdges(t *testing.T) {
	g := diamond()
	if got := SequentialEdges(g, 0, "bfs", 0); got != 5 {
		t.Fatalf("bfs sequential edges = %d, want 5", got)
	}
	if got := SequentialEdges(g, 0, "cc", 0); got != 5 {
		t.Fatalf("cc sequential edges = %d, want 5", got)
	}
	if got := SequentialEdges(g, 0, "pr", 10); got != 50 {
		t.Fatalf("pr sequential edges = %d, want 50", got)
	}
	if got := SequentialEdges(g, 0, "bc", 0); got != 10 {
		t.Fatalf("bc sequential edges = %d, want 10", got)
	}
	// From a leaf, only its own out-edges count.
	if got := SequentialEdges(g, 4, "bfs", 0); got != 0 {
		t.Fatalf("bfs from sink = %d, want 0", got)
	}
}
