package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Span("a", "b", 0, 0, 10)
	tr.Instant("a", "b", 0, 5)
	tr.Counter("c", 5, 1)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != `{"traceEvents":[]}` {
		t.Fatalf("nil tracer JSON = %q", buf.String())
	}
}

func TestTracerRecordsAndSerializes(t *testing.T) {
	tr := New(2e9)
	tr.Span("mgu", "propagate", 3, 2000, 4000) // 1us..2us
	tr.Instant("vmu", "prefetch-batch", 1, 2000)
	tr.Counter("active", 2000, 42)
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 3 {
		t.Fatalf("parsed %d events", len(parsed.TraceEvents))
	}
	span := parsed.TraceEvents[0]
	if span.Ph != "X" || span.TS != 1.0 || span.Dur != 1.0 || span.TID != 3 {
		t.Fatalf("span = %+v", span)
	}
}

func TestTracerCap(t *testing.T) {
	tr := New(1e9)
	tr.SetCap(5)
	for i := 0; i < 10; i++ {
		tr.Instant("x", "y", 0, 1)
	}
	if tr.Len() != 5 {
		t.Fatalf("len = %d, want capped at 5", tr.Len())
	}
	if tr.Dropped() != 5 {
		t.Fatalf("dropped = %d, want 5", tr.Dropped())
	}
}

func TestSpanClampsReversedRange(t *testing.T) {
	tr := New(1e9)
	tr.Span("a", "b", 0, 100, 50)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.TraceEvents[0].Dur != 0 {
		t.Fatal("reversed span not clamped")
	}
}
