// Package trace records simulator activity as Chrome trace-event JSON
// (chrome://tracing / Perfetto), giving the same pipeline visibility
// gem5's trace flags provide: MGU propagation spans, VMU prefetch
// batches, BSP barriers and occupancy counters, per PE.
//
// Produce a trace with `novasim -trace FILE` (nova engine only) or
// programmatically via Accelerator.RunTraced. Tracing complements the
// aggregate view of internal/stats: stats answer "how much, in total",
// a trace answers "when, and overlapping what".
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"nova/internal/sim"
)

// Event is one trace record in the Chrome trace-event format.
type Event struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"` // "X" complete, "i" instant, "C" counter
	TS   float64 `json:"ts"` // microseconds
	Dur  float64 `json:"dur,omitempty"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	Args any     `json:"args,omitempty"`
}

// Tracer collects events. A nil *Tracer is valid and records nothing, so
// call sites need no guards. Events beyond the cap are dropped (and
// counted) to bound memory on long runs.
type Tracer struct {
	clock   sim.Clock
	events  []Event
	cap     int
	dropped uint64
}

// DefaultCap bounds the recorded event count.
const DefaultCap = 1 << 20

// New returns a tracer converting ticks at the given clock frequency.
func New(clockHz float64) *Tracer {
	return &Tracer{clock: sim.Clock{HZ: clockHz}, cap: DefaultCap}
}

// SetCap overrides the event cap (useful in tests).
func (t *Tracer) SetCap(n int) {
	if t != nil && n > 0 {
		t.cap = n
	}
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped returns how many events the cap discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

func (t *Tracer) us(tick sim.Ticks) float64 { return t.clock.Seconds(tick) * 1e6 }

func (t *Tracer) add(e Event) {
	if len(t.events) >= t.cap {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Span records a complete event covering [start, end] on lane tid.
func (t *Tracer) Span(cat, name string, tid int, start, end sim.Ticks) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.add(Event{Name: name, Cat: cat, Ph: "X", TS: t.us(start), Dur: t.us(end - start), PID: 0, TID: tid})
}

// Instant records a point event.
func (t *Tracer) Instant(cat, name string, tid int, at sim.Ticks) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Ph: "i", TS: t.us(at), PID: 0, TID: tid})
}

// Counter records a named counter sample (rendered as a strip chart).
func (t *Tracer) Counter(name string, at sim.Ticks, value float64) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: "counter", Ph: "C", TS: t.us(at), PID: 0, TID: 0,
		Args: map[string]float64{"value": value}})
}

// WriteJSON emits the Chrome trace file.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	payload := struct {
		TraceEvents []Event `json:"traceEvents"`
		Meta        any     `json:"otherData,omitempty"`
	}{
		TraceEvents: t.events,
		Meta: map[string]string{
			"generator": "nova simulator",
			"dropped":   fmt.Sprint(t.dropped),
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(payload)
}
