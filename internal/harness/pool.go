package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Job is one independent unit of work in a sweep: typically a single
// simulation cell, or one table row built from a few engine runs. The Run
// function must be self-contained — jobs may execute concurrently and in
// any order.
type Job[T any] struct {
	// Name labels the job in progress events and error messages.
	Name string
	// Timeout bounds this job's execution (0 = the pool default; the
	// pool default 0 = unbounded).
	Timeout time.Duration
	// Run produces the job's value. ctx is cancelled when the sweep is
	// cancelled or the job times out; long-running jobs should check it
	// between phases when they can.
	Run func(ctx context.Context) (T, error)
	// OnStart, when non-nil, is invoked on the worker immediately before
	// Run — the queued→running lifecycle transition. Job trackers (the
	// novad service) use it to timestamp dispatch; it must return
	// quickly, since it runs on the job's critical path.
	OnStart func()
}

// Result pairs a job's value with its error and wall-clock cost. Results
// are returned in submission order regardless of completion order.
type Result[T any] struct {
	// Name echoes the job name.
	Name string
	// Value is the job's output (zero on error).
	Value T
	// Err is non-nil when the job failed, panicked, timed out, or was
	// cancelled before it could run.
	Err error
	// Elapsed is the job's wall-clock duration (0 for jobs never started).
	Elapsed time.Duration
}

// Event describes one completed job for progress reporting.
type Event struct {
	// Index is the job's submission index; Done of Total jobs have
	// completed (including this one).
	Index, Done, Total int
	// Name and Err echo the job outcome; Elapsed is its wall clock.
	Name    string
	Err     error
	Elapsed time.Duration
}

// Pool fans independent jobs out over worker goroutines. The zero value
// is a sequential pool sized by GOMAXPROCS; a Pool is stateless between
// Map calls and may be reused.
type Pool struct {
	// Workers bounds concurrent jobs (≤0 = GOMAXPROCS).
	Workers int
	// JobTimeout is the default per-job timeout (0 = unbounded).
	JobTimeout time.Duration
	// AbandonGrace is how long a timed-out or cancelled job is given to
	// observe its context and return (typically with a salvaged partial
	// result) before the worker abandons it and fabricates the error
	// itself (0 = DefaultAbandonGrace; negative = abandon immediately).
	// The simulation engines poll their context cooperatively, so a
	// healthy job returns well within the default grace; only a job stuck
	// outside the simulator (or ignoring ctx) is ever abandoned.
	AbandonGrace time.Duration
	// OnDone, when non-nil, is called serially as each job completes —
	// the hook for progress lines.
	OnDone func(Event)
}

// DefaultAbandonGrace bounds how long runJob waits for a cancelled job to
// wind down before abandoning its goroutine. Cooperative engines stop
// within one poll interval (microseconds to milliseconds), so one second
// is already generous.
const DefaultAbandonGrace = time.Second

func (p *Pool) workers(jobs int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs every job and returns one result per job, in submission order.
// A nil pool behaves like the zero Pool. Cancellation of ctx stops
// dispatching new jobs; already-running jobs observe the cancellation
// through their job context (the engines poll it cooperatively) and
// report their own — possibly partial — results, while undispatched jobs
// report ctx.Err(). A panicking job fails its own cell only.
func Map[T any](ctx context.Context, p *Pool, jobs []Job[T]) []Result[T] {
	if p == nil {
		p = &Pool{}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result[T], len(jobs))
	if len(jobs) == 0 {
		return results
	}
	indices := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes OnDone and the done counter
	done := 0
	for w := 0; w < p.workers(len(jobs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				timeout := jobs[i].Timeout
				if timeout == 0 {
					timeout = p.JobTimeout
				}
				results[i] = runJob(ctx, jobs[i], timeout, p.AbandonGrace)
				mu.Lock()
				done++
				if p.OnDone != nil {
					p.OnDone(Event{Index: i, Done: done, Total: len(jobs),
						Name: results[i].Name, Err: results[i].Err, Elapsed: results[i].Elapsed})
				}
				mu.Unlock()
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case indices <- i:
		case <-ctx.Done():
			// Mark everything not yet dispatched as cancelled.
			for j := i; j < len(jobs); j++ {
				select {
				case indices <- j:
					// A worker freed up between checks; let it run (it
					// will observe the cancelled ctx itself).
				default:
					results[j] = Result[T]{Name: jobs[j].Name,
						Err: fmt.Errorf("harness: job %q: %w", jobs[j].Name, ctx.Err())}
				}
			}
			break dispatch
		}
	}
	close(indices)
	wg.Wait()
	return results
}

// runJob executes one job with panic capture and an optional timeout. The
// discrete-event engines poll their context cooperatively, so a timed-out
// or cancelled job normally observes jctx within one poll interval and
// returns its own result — typically a salvaged partial report alongside
// the context error. Only when the job also blows through the abandon
// grace (it is stuck outside the simulator, or ignores ctx entirely) does
// the worker give up on it and fabricate the error; the leaked goroutine
// then exits as soon as the job function eventually returns, since the
// result channel is buffered.
func runJob[T any](ctx context.Context, job Job[T], timeout, grace time.Duration) Result[T] {
	if err := ctx.Err(); err != nil {
		return Result[T]{Name: job.Name, Err: fmt.Errorf("harness: job %q: %w", job.Name, err)}
	}
	jctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if job.OnStart != nil {
		job.OnStart()
	}
	start := time.Now()
	ch := make(chan Result[T], 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				// Keep %w for error payloads so typed injected faults
				// (chaos) stay matchable through the capture.
				if perr, ok := r.(error); ok {
					ch <- Result[T]{Name: job.Name,
						Err: fmt.Errorf("harness: job %q panicked: %w\n%s", job.Name, perr, debug.Stack())}
					return
				}
				ch <- Result[T]{Name: job.Name,
					Err: fmt.Errorf("harness: job %q panicked: %v\n%s", job.Name, r, debug.Stack())}
			}
		}()
		v, err := job.Run(jctx)
		if err != nil {
			err = fmt.Errorf("harness: job %q: %w", job.Name, err)
		}
		ch <- Result[T]{Name: job.Name, Value: v, Err: err}
	}()
	if timeout > 0 {
		select {
		case r := <-ch:
			r.Elapsed = time.Since(start)
			return r
		case <-jctx.Done():
			if grace == 0 {
				grace = DefaultAbandonGrace
			}
			if grace > 0 {
				timer := time.NewTimer(grace)
				defer timer.Stop()
				select {
				case r := <-ch:
					// The job wound down cooperatively; keep its own
					// (possibly partial) result.
					r.Elapsed = time.Since(start)
					return r
				case <-timer.C:
				}
			}
			cause := jctx.Err()
			err := fmt.Errorf("harness: job %q: %w", job.Name, cause)
			if errors.Is(cause, context.DeadlineExceeded) {
				err = fmt.Errorf("harness: job %q timed out after %v: %w", job.Name, timeout, cause)
			}
			return Result[T]{Name: job.Name, Elapsed: time.Since(start), Err: err}
		}
	}
	r := <-ch
	r.Elapsed = time.Since(start)
	return r
}

// FirstErr returns the first error across results, in submission order.
func FirstErr[T any](results []Result[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Values unwraps results into their values, returning the first error
// encountered (in submission order) if any job failed.
func Values[T any](results []Result[T]) ([]T, error) {
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	vals := make([]T, len(results))
	for i, r := range results {
		vals[i] = r.Value
	}
	return vals, nil
}
