package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrQueueFull is wrapped into a Result when a Submit finds the queue's
// backlog at capacity — the backpressure signal a serving layer maps to
// "try again later" (HTTP 503) instead of letting memory grow unbounded
// under overload.
var ErrQueueFull = errors.New("harness: queue backlog full")

// ErrQueueClosed is wrapped into a Result when a job is submitted after
// Close.
var ErrQueueClosed = errors.New("harness: queue closed")

// Queue is the daemon-shaped counterpart of Map: a long-lived intake that
// accepts jobs one at a time and runs them on a fixed worker set, with
// the same per-job timeout, cooperative-cancellation, abandon-grace, and
// panic-capture semantics (both paths share runJob). Map serves the batch
// world — a sweep known up front, results in submission order; Queue
// serves the service world — jobs arrive independently, each caller waits
// on its own result channel, and a bounded backlog provides backpressure.
//
// A Queue is safe for concurrent Submit calls.
type Queue[T any] struct {
	pool *Pool
	subs chan queued[T]
	wg   sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	submitted int
	done      int
}

type queued[T any] struct {
	ctx   context.Context
	job   Job[T]
	index int
	out   chan Result[T]
}

// NewQueue starts the worker goroutines and returns the running queue.
// Workers and per-job defaults come from p (nil = the zero Pool:
// GOMAXPROCS workers, unbounded jobs); backlog bounds queued-but-not-
// running jobs (≤0 = workers, the minimum useful depth). The pool's
// OnDone hook fires serially as jobs complete, with Done counting
// completions and Total the submissions observed so far.
func NewQueue[T any](p *Pool, backlog int) *Queue[T] {
	if p == nil {
		p = &Pool{}
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if backlog <= 0 {
		backlog = workers
	}
	q := &Queue[T]{pool: p, subs: make(chan queued[T], backlog)}
	for w := 0; w < workers; w++ {
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			for s := range q.subs {
				timeout := s.job.Timeout
				if timeout == 0 {
					timeout = p.JobTimeout
				}
				r := runJob(s.ctx, s.job, timeout, p.AbandonGrace)
				q.mu.Lock()
				q.done++
				if p.OnDone != nil {
					p.OnDone(Event{Index: s.index, Done: q.done, Total: q.submitted,
						Name: r.Name, Err: r.Err, Elapsed: r.Elapsed})
				}
				q.mu.Unlock()
				s.out <- r
			}
		}()
	}
	return q
}

// Submit enqueues one job and returns a 1-buffered channel that will
// receive exactly one Result — immediately with a typed error when the
// queue is closed or its backlog is full, otherwise when the job
// completes. ctx governs the job exactly as in Map: cancelled while
// queued, the job reports ctx.Err() without running; cancelled while
// running, the engines stop cooperatively and report their own (possibly
// partial) result.
func (q *Queue[T]) Submit(ctx context.Context, job Job[T]) <-chan Result[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan Result[T], 1)
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		out <- Result[T]{Name: job.Name, Err: fmt.Errorf("harness: job %q: %w", job.Name, ErrQueueClosed)}
		return out
	}
	index := q.submitted
	select {
	case q.subs <- queued[T]{ctx: ctx, job: job, index: index, out: out}:
		q.submitted++
		q.mu.Unlock()
	default:
		q.mu.Unlock()
		out <- Result[T]{Name: job.Name, Err: fmt.Errorf("harness: job %q: %w", job.Name, ErrQueueFull)}
	}
	return out
}

// Close stops intake and waits for every accepted job to finish. Jobs
// already queued still run (cancel their contexts first for a fast
// shutdown); later Submits fail with ErrQueueClosed. Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	close(q.subs)
	q.mu.Unlock()
	q.wg.Wait()
}
