package harness_test

import (
	"context"
	"fmt"

	"nova/internal/harness"
)

// A sweep is a batch of independent jobs fanned out over the pool; Map
// blocks until every job finishes and returns results in submission
// order regardless of which worker ran what.
func ExampleMap() {
	pool := &harness.Pool{Workers: 4}
	jobs := make([]harness.Job[int], 5)
	for i := range jobs {
		i := i
		jobs[i] = harness.Job[int]{
			Name: fmt.Sprintf("cell-%d", i),
			Run:  func(ctx context.Context) (int, error) { return i * i, nil },
		}
	}
	results := harness.Map(context.Background(), pool, jobs)
	for _, r := range results {
		fmt.Print(r.Value, " ")
	}
	fmt.Println()
	// Output: 0 1 4 9 16
}

// A Queue serves one-at-a-time submissions (the novad daemon's intake
// path): each Submit returns immediately with a channel that delivers the
// job's result, and a full backlog rejects new work with ErrQueueFull
// instead of queueing without bound.
func ExampleQueue() {
	q := harness.NewQueue[string](&harness.Pool{Workers: 2}, 8)
	defer q.Close()

	ch := q.Submit(context.Background(), harness.Job[string]{
		Name: "greet",
		Run:  func(ctx context.Context) (string, error) { return "hello", nil },
	})
	r := <-ch
	fmt.Println(r.Value, r.Err)
	// Output: hello <nil>
}
