// Package harness unifies the three execution engines (NOVA, PolyGraph,
// Ligra) behind one Engine interface and fans independent simulation jobs
// out over a worker pool. Every figure and table of the evaluation is a
// grid of independent cells; the harness is the substrate that runs those
// cells concurrently while keeping result order deterministic.
//
// The package deliberately depends only on graph, program and stats so
// the nova root package can implement adapters without an import cycle.
package harness

import (
	"context"

	"nova/graph"
	"nova/internal/stats"
	"nova/program"
)

// Workload names one cell of the evaluation grid: a named workload on a
// graph with its traversal root. GT (the transpose) is needed only for
// "bc"; "cc" expects a symmetrized graph in G.
type Workload struct {
	// Name is one of "bfs", "sssp", "cc", "pr", "bc", or the nova-only
	// spill-stress workload "prdelta".
	Name string
	// G is the graph to process (symmetrized for "cc").
	G *graph.CSR
	// GT is the transpose (required by "bc"; engines fall back to
	// computing it when nil).
	GT *graph.CSR
	// Root is the traversal source for bfs/sssp/bc.
	Root graph.VertexID
	// PRIters configures PageRank (≤0 means 10).
	PRIters int
	// Tier labels the scale tier the cell belongs to ("small", "medium",
	// "full", "large"; empty when the caller doesn't run tiered sweeps).
	// It is carried verbatim into the Report so artifacts from different
	// tiers never get compared against each other.
	Tier string
	// MaxEvents overrides the engine's event budget for this cell (0 =
	// the engine default). Only simulated backends with an event budget
	// honor it; the chaos harness uses it to force budget exhaustion.
	MaxEvents uint64
}

// Engine is the unified view of an execution backend. Implementations
// must be safe for concurrent RunWorkload calls: each call owns a private
// simulation instance.
type Engine interface {
	// Name identifies the backend ("nova", "polygraph", "ligra").
	Name() string
	// Fingerprint is a stable, human-readable rendering of the engine's
	// configuration, so two reports are comparable iff fingerprints match.
	Fingerprint() string
	// RunWorkload executes one cell and returns the unified report. ctx
	// cancellation must stop the underlying simulation cooperatively
	// (within one poll interval); on a cooperative stop implementations
	// return BOTH a partial report (Partial set, with its StopReason) and
	// the error, so sweeps can render partial cells.
	RunWorkload(ctx context.Context, w Workload) (*Report, error)
}

// Report is the engine-agnostic outcome of one run. Backend-specific
// detail (slice counts, cache hit rates, spill counters, …) travels in
// the Metrics bag so the experiment layer never needs the native report
// types.
type Report struct {
	// Engine and Fingerprint identify the backend and its configuration.
	Engine      string
	Fingerprint string
	// Workload is the cell's workload name.
	Workload string
	// Tier echoes Workload.Tier — the scale tier the cell ran at.
	Tier string
	// Stats is the engine-agnostic summary common to all backends.
	Stats program.RunStats
	// SequentialEdges is the work-efficiency denominator (Beamer's
	// metric): edges a sequential implementation traverses.
	SequentialEdges int64
	// Props holds final vertex properties (nil for "bc").
	Props []program.Prop
	// Scores holds BC dependency values (nil otherwise).
	Scores []float64
	// Metrics is the backend-specific metrics bag. Keys used by the
	// built-in adapters are documented next to each adapter. Adapters
	// derive the bag from Dump (Dump.Bag()), so root-level dump paths and
	// bag keys coincide; the bag survives as the flat compatibility view.
	Metrics map[string]float64
	// Dump is the full hierarchical statistics dump, when the backend
	// provides one (nil for two-phase workloads such as "bc").
	Dump *stats.Dump
	// Shards is the worker-goroutine count the backend simulated with
	// (0 for backends without a sharded kernel), and the two wall-clock
	// fields split host time between in-window execution and barrier
	// synchronization for sharded runs.
	Shards             int
	WindowWallSeconds  float64
	BarrierWallSeconds float64
	// Partial marks a salvaged report: the run stopped early and the
	// stats cover only the work completed before the stop. StopReason
	// classifies why ("cancelled", "deadline", "budget", "stalled").
	Partial    bool
	StopReason string
}

// Metric returns a metrics-bag entry, or 0 when absent.
func (r *Report) Metric(key string) float64 {
	if r == nil || r.Metrics == nil {
		return 0
	}
	return r.Metrics[key]
}

// WorkEfficiency returns sequential edges / traversed edges.
func (r *Report) WorkEfficiency() float64 {
	return r.Stats.WorkEfficiency(r.SequentialEdges)
}

// EffectiveGTEPS returns useful giga-edges per second — the throughput
// metric the paper's figures plot.
func (r *Report) EffectiveGTEPS() float64 {
	return r.Stats.EffectiveGTEPS(r.SequentialEdges)
}
