package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func intJob(name string, f func(ctx context.Context) (int, error)) Job[int] {
	return Job[int]{Name: name, Run: f}
}

func TestMapDeterministicOrdering(t *testing.T) {
	// Jobs finish in reverse submission order (earlier jobs sleep
	// longer); results must still come back in submission order.
	const n = 16
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = intJob(fmt.Sprint(i), func(context.Context) (int, error) {
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return i * i, nil
		})
	}
	results := Map(context.Background(), &Pool{Workers: 8}, jobs)
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Value != i*i {
			t.Fatalf("result %d = %d, want %d", i, r.Value, i*i)
		}
		if r.Name != fmt.Sprint(i) {
			t.Fatalf("result %d name = %q", i, r.Name)
		}
		if r.Elapsed <= 0 {
			t.Fatalf("result %d has no elapsed time", i)
		}
	}
}

func TestMapPanicIsolation(t *testing.T) {
	jobs := []Job[int]{
		intJob("ok-before", func(context.Context) (int, error) { return 1, nil }),
		intJob("boom", func(context.Context) (int, error) { panic("kaboom") }),
		intJob("ok-after", func(context.Context) (int, error) { return 3, nil }),
	}
	results := Map(context.Background(), &Pool{Workers: 2}, jobs)
	if results[0].Err != nil || results[0].Value != 1 {
		t.Fatalf("job 0: %+v", results[0])
	}
	if results[2].Err != nil || results[2].Value != 3 {
		t.Fatalf("job 2 must survive a sibling panic: %+v", results[2])
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "kaboom") {
		t.Fatalf("panic not captured as error: %v", results[1].Err)
	}
	if !strings.Contains(results[1].Err.Error(), "pool_test.go") {
		t.Fatalf("panic error should carry a stack trace: %v", results[1].Err)
	}
}

func TestMapCancellationMidSweep(t *testing.T) {
	// One worker; the first job cancels the sweep. The remaining jobs
	// must report ctx.Err() without running.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	jobs := []Job[int]{
		intJob("canceller", func(context.Context) (int, error) {
			ran.Add(1)
			cancel()
			return 1, nil
		}),
	}
	for i := 0; i < 8; i++ {
		jobs = append(jobs, intJob(fmt.Sprintf("later-%d", i), func(ctx context.Context) (int, error) {
			if ctx.Err() == nil {
				ran.Add(1) // only counts if it truly ran uncancelled
			}
			return 0, ctx.Err()
		}))
	}
	results := Map(ctx, &Pool{Workers: 1}, jobs)
	if results[0].Err != nil {
		t.Fatalf("first job should complete: %v", results[0].Err)
	}
	cancelled := 0
	for _, r := range results[1:] {
		if r.Err != nil && errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled != len(jobs)-1 {
		t.Fatalf("cancelled %d of %d follow-up jobs", cancelled, len(jobs)-1)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d jobs ran work after cancellation, want only the first", got-1)
	}
}

func TestMapPerJobTimeout(t *testing.T) {
	// The slow job ignores ctx entirely, so the worker must abandon it;
	// negative grace abandons immediately to keep the test fast.
	block := make(chan struct{})
	defer close(block)
	jobs := []Job[int]{
		{Name: "slow", Timeout: 10 * time.Millisecond, Run: func(context.Context) (int, error) {
			<-block
			return 0, nil
		}},
		intJob("fast", func(context.Context) (int, error) { return 42, nil }),
	}
	start := time.Now()
	results := Map(context.Background(), &Pool{Workers: 1, AbandonGrace: -1}, jobs)
	if results[0].Err == nil || !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("slow job should time out: %v", results[0].Err)
	}
	// The timed-out job must release its worker so the next job runs.
	if results[1].Err != nil || results[1].Value != 42 {
		t.Fatalf("fast job after timeout: %+v", results[1])
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout did not release the worker (took %v)", elapsed)
	}
}

func TestMapPoolDefaultTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	p := &Pool{Workers: 1, JobTimeout: 10 * time.Millisecond, AbandonGrace: -1}
	results := Map(context.Background(), p, []Job[int]{
		intJob("hung", func(context.Context) (int, error) { <-block; return 0, nil }),
	})
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("pool default timeout not applied: %v", results[0].Err)
	}
}

func TestMapTimeoutKeepsCooperativeResult(t *testing.T) {
	// A job that observes ctx and returns within the grace keeps its own
	// partial value and error instead of the fabricated timeout error.
	sentinel := errors.New("stopped cooperatively")
	jobs := []Job[int]{
		{Name: "coop", Timeout: 10 * time.Millisecond, Run: func(ctx context.Context) (int, error) {
			<-ctx.Done()
			return 99, sentinel
		}},
	}
	results := Map(context.Background(), &Pool{Workers: 1}, jobs)
	if !errors.Is(results[0].Err, sentinel) {
		t.Fatalf("cooperative result replaced: %v", results[0].Err)
	}
	if results[0].Value != 99 {
		t.Fatalf("partial value discarded: %d", results[0].Value)
	}
}

func TestMapTimedOutJobDoesNotLeakGoroutine(t *testing.T) {
	// Regression for the documented leak: before ctx threading, a
	// timed-out simulation kept running until quiescence. Now the job
	// observes its context, so its goroutine must exit promptly.
	before := runtime.NumGoroutine()
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = Job[int]{Name: fmt.Sprint(i), Timeout: 5 * time.Millisecond,
			Run: func(ctx context.Context) (int, error) {
				<-ctx.Done() // a cooperative engine stops within one poll
				return 0, ctx.Err()
			}}
	}
	results := Map(context.Background(), &Pool{Workers: 4}, jobs)
	for i, r := range results {
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after timed-out jobs", before, runtime.NumGoroutine())
}

func TestMapProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	p := &Pool{Workers: 4, OnDone: func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}}
	const n = 10
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = intJob(fmt.Sprint(i), func(context.Context) (int, error) { return i, nil })
	}
	if err := FirstErr(Map(context.Background(), p, jobs)); err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Fatalf("got %d events, want %d", len(events), n)
	}
	seen := map[int]bool{}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != n {
			t.Fatalf("event %d: Done=%d Total=%d", i, ev.Done, ev.Total)
		}
		if seen[ev.Index] {
			t.Fatalf("index %d reported twice", ev.Index)
		}
		seen[ev.Index] = true
	}
}

func TestMapNilPoolAndEmptyJobs(t *testing.T) {
	if got := Map[int](context.Background(), nil, nil); len(got) != 0 {
		t.Fatalf("empty job list returned %d results", len(got))
	}
	results := Map(nil, nil, []Job[int]{
		intJob("one", func(context.Context) (int, error) { return 7, nil }),
	})
	if results[0].Err != nil || results[0].Value != 7 {
		t.Fatalf("nil pool/ctx run: %+v", results[0])
	}
}

func TestValues(t *testing.T) {
	good := []Result[int]{{Value: 1}, {Value: 2}}
	vals, err := Values(good)
	if err != nil || len(vals) != 2 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("Values(good) = %v, %v", vals, err)
	}
	bad := []Result[int]{{Value: 1}, {Err: errors.New("x")}}
	if _, err := Values(bad); err == nil {
		t.Fatal("Values must surface job errors")
	}
}

func TestMapConcurrencyBound(t *testing.T) {
	var cur, peak atomic.Int32
	const workers = 3
	jobs := make([]Job[int], 12)
	for i := range jobs {
		jobs[i] = intJob(fmt.Sprint(i), func(context.Context) (int, error) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			cur.Add(-1)
			return 0, nil
		})
	}
	if err := FirstErr(Map(context.Background(), &Pool{Workers: workers}, jobs)); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, worker bound is %d", p, workers)
	}
}
