package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueRunsSubmittedJobs(t *testing.T) {
	q := NewQueue[int](&Pool{Workers: 4}, 64)
	defer q.Close()
	const n = 50
	chans := make([]<-chan Result[int], n)
	for i := 0; i < n; i++ {
		i := i
		chans[i] = q.Submit(context.Background(), Job[int]{
			Name: "job",
			Run:  func(ctx context.Context) (int, error) { return i * i, nil },
		})
	}
	for i, ch := range chans {
		r := <-ch
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Value != i*i {
			t.Fatalf("job %d: got %d, want %d", i, r.Value, i*i)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	block := make(chan struct{})
	q := NewQueue[int](&Pool{Workers: 1}, 1)
	// LIFO: unblock the running job before Close waits on it.
	defer q.Close()
	defer close(block)
	// One running (worker busy) + one queued fills the queue; the third
	// submit must be rejected with the typed backpressure error.
	running := make(chan struct{})
	first := q.Submit(context.Background(), Job[int]{Name: "running", Run: func(ctx context.Context) (int, error) {
		close(running)
		<-block
		return 0, nil
	}})
	<-running
	second := q.Submit(context.Background(), Job[int]{Name: "queued", Run: func(ctx context.Context) (int, error) { return 0, nil }})
	r := <-q.Submit(context.Background(), Job[int]{Name: "rejected", Run: func(ctx context.Context) (int, error) { return 0, nil }})
	if !errors.Is(r.Err, ErrQueueFull) {
		t.Fatalf("overflow submit: got %v, want ErrQueueFull", r.Err)
	}
	_ = first
	_ = second
}

func TestQueueCancelWhileQueued(t *testing.T) {
	block := make(chan struct{})
	q := NewQueue[int](&Pool{Workers: 1}, 4)
	defer q.Close()
	running := make(chan struct{})
	q.Submit(context.Background(), Job[int]{Name: "running", Run: func(ctx context.Context) (int, error) {
		close(running)
		<-block
		return 0, nil
	}})
	<-running
	ctx, cancel := context.WithCancel(context.Background())
	queuedCh := q.Submit(ctx, Job[int]{Name: "victim", Run: func(ctx context.Context) (int, error) {
		t.Error("cancelled-while-queued job ran")
		return 0, nil
	}})
	cancel()
	close(block)
	r := <-queuedCh
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", r.Err)
	}
}

func TestQueueClosedRejects(t *testing.T) {
	q := NewQueue[int](&Pool{Workers: 1}, 1)
	q.Close()
	r := <-q.Submit(context.Background(), Job[int]{Name: "late", Run: func(ctx context.Context) (int, error) { return 1, nil }})
	if !errors.Is(r.Err, ErrQueueClosed) {
		t.Fatalf("got %v, want ErrQueueClosed", r.Err)
	}
	q.Close() // idempotent
}

func TestQueueOnStartAndOnDone(t *testing.T) {
	var started atomic.Int32
	var mu sync.Mutex
	doneEvents := 0
	q := NewQueue[int](&Pool{Workers: 2, OnDone: func(ev Event) {
		mu.Lock()
		doneEvents++
		mu.Unlock()
	}}, 16)
	defer q.Close()
	var chans []<-chan Result[int]
	for i := 0; i < 8; i++ {
		chans = append(chans, q.Submit(context.Background(), Job[int]{
			Name:    "j",
			OnStart: func() { started.Add(1) },
			Run:     func(ctx context.Context) (int, error) { return 1, nil },
		}))
	}
	for _, ch := range chans {
		<-ch
	}
	if got := started.Load(); got != 8 {
		t.Fatalf("OnStart fired %d times, want 8", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if doneEvents != 8 {
		t.Fatalf("OnDone fired %d times, want 8", doneEvents)
	}
}

func TestQueueTimeoutSalvage(t *testing.T) {
	q := NewQueue[string](&Pool{Workers: 1, AbandonGrace: 5 * time.Second}, 4)
	defer q.Close()
	r := <-q.Submit(context.Background(), Job[string]{
		Name:    "slow",
		Timeout: 30 * time.Millisecond,
		Run: func(ctx context.Context) (string, error) {
			<-ctx.Done() // cooperative engine: observe and salvage
			return "partial", ctx.Err()
		},
	})
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", r.Err)
	}
	if r.Value != "partial" {
		t.Fatalf("salvaged value %q, want %q", r.Value, "partial")
	}
}
