// Package prof wires the conventional -cpuprofile/-memprofile flags into
// the command-line tools, so hot paths in the simulation kernel can be
// inspected with `go tool pprof` against a real workload instead of a
// micro-benchmark.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profiling flag values for one command.
type Flags struct {
	cpu *string
	mem *string
}

// RegisterFlags binds -cpuprofile and -memprofile on the default FlagSet.
// Call before flag.Parse.
func RegisterFlags() *Flags {
	return &Flags{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write a heap profile to this file at exit"),
	}
}

// Start begins CPU profiling if requested and returns a stop function that
// ends the CPU profile and writes the heap profile. Defer it right after
// flag.Parse; it is a no-op when neither flag is set.
func (f *Flags) Start() func() {
	var cpuFile *os.File
	if *f.cpu != "" {
		var err error
		cpuFile, err = os.Create(*f.cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
	}
	memPath := *f.mem
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			file, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.Lookup("allocs").WriteTo(file, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			file.Close()
		}
	}
}
