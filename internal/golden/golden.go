// Package golden builds the deterministic statistics dump that the
// golden regression test, cmd/goldendump, and the CI statdiff step all
// share. It runs the same three cells TestKernelDeterminismGolden pins
// (nova/sssp, polygraph/bfs, ligra/bfs on the 2048-vertex golden RMAT
// graph) and merges their dumps under engine prefixes. The metadata
// carries no timestamps, so two dumps from the same build compare equal
// record for record.
package golden

import (
	"nova"
	"nova/graph"
	"nova/internal/ligra"
	"nova/internal/stats"
	"nova/program"
)

// BuildDump runs the three determinism cells and returns the merged
// dump. Volatile records (ligra wall-clock) are still present; consumers
// that want reproducibility compare only non-volatile records, which is
// what stats.Diff does by default.
func BuildDump() (*stats.Dump, error) {
	g := graph.GenRMATN("golden", 2048, 8, graph.DefaultRMAT, 64, 7)
	root := g.LargestOutDegreeVertex()

	cfg := nova.DefaultConfig()
	cfg.CacheBytesPerPE = 8 << 10
	cfg.Seed = 3
	acc, err := nova.New(cfg)
	if err != nil {
		return nil, err
	}
	novaRep, err := acc.Run(program.NewSSSP(root), g)
	if err != nil {
		return nil, err
	}

	pg := &nova.PolyGraphBaseline{OnChipBytes: 2048}
	pgRep, err := pg.Run(program.NewBFS(root), g)
	if err != nil {
		return nil, err
	}

	// Single thread keeps the atomics-based engine's traversal counts
	// schedule-independent (matching the determinism test cell).
	lg := &ligra.Engine{Threads: 1, Threshold: 20}
	_, res := lg.BFS(g, g.Transpose(), root)
	ligraDump := lg.StatsDump(res, map[string]string{
		"engine":   "ligra",
		"workload": "bfs",
		"graph":    g.Name,
	})

	return stats.Merge(map[string]string{
		"graph": g.Name,
		"cells": "nova/sssp polygraph/bfs ligra/bfs",
	},
		novaRep.Dump.Prefixed("nova"),
		pgRep.Dump.Prefixed("polygraph"),
		ligraDump.Prefixed("ligra"),
	), nil
}
