// Package chaos is the fault-injection harness of the robustness test
// suite: it wraps any harness.Engine and injects one failure mode per
// run — a panic, a wall-clock stall, event-budget exhaustion, context
// cancellation, or a corrupted on-disk graph container.
//
// The point of the package is the contract it lets tests state: every
// injected fault must surface as a typed, matchable error on its own
// sweep cell (errors.Is against the sentinel for that fault), sibling
// cells must complete untouched, no fault may panic the sweep itself
// (the pool isolates injected panics), and cells without an injected
// fault must stay bit-identical to an unfaulted run.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"nova/graph"
	"nova/internal/harness"
	"nova/internal/sim"
)

// Fault selects the failure mode an Engine injects.
type Fault int

const (
	// None passes the workload through untouched.
	None Fault = iota
	// Panic panics inside RunWorkload with ErrInjectedPanic, exercising
	// the pool's panic isolation and typed-capture path.
	Panic
	// Stall runs a private simulation whose handler blocks without
	// advancing simulated time, so the wall-clock watchdog must trip with
	// sim.ErrStalled.
	Stall
	// Budget caps the cell's event budget far below what the workload
	// needs, forcing a sim.ErrMaxEvents partial report. Only engines that
	// honor Workload.MaxEvents (the NOVA adapter) exhaust it.
	Budget
	// Cancel cancels the cell's context (immediately, or after
	// CancelAfter), forcing a context.Canceled partial report.
	Cancel
	// Corrupt writes the workload graph to a container file, flips one
	// seed-derived bit, and requires the loader to reject it with a typed
	// graph.ErrCorrupt.
	Corrupt
)

// String names the fault for fingerprints and test logs.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	case Budget:
		return "budget"
	case Cancel:
		return "cancel"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// ErrInjectedPanic is the payload of the Panic fault; the pool's panic
// capture must keep it matchable through errors.Is.
var ErrInjectedPanic = errors.New("chaos: injected panic")

// ErrCorruptionUndetected reports the one failure the Corrupt fault can
// itself produce: the loader accepted a container with a flipped bit.
var ErrCorruptionUndetected = errors.New("chaos: corrupted container loaded without error")

// DefaultBudget is the Budget fault's event cap — far below any real
// workload, but enough for the simulation to produce nonzero stats.
const DefaultBudget = 64

// DefaultStallInterval is the Stall fault's watchdog interval.
const DefaultStallInterval = 25 * time.Millisecond

// Engine wraps an inner harness.Engine and injects Fault on every
// RunWorkload call. The zero Fault (None) passes through, so a chaos
// grid can mix faulted and unfaulted cells freely.
type Engine struct {
	// Inner is the wrapped backend.
	Inner harness.Engine
	// Fault selects the injected failure mode.
	Fault Fault
	// Budget overrides the Budget fault's event cap (0 = DefaultBudget).
	Budget uint64
	// CancelAfter delays the Cancel fault (0 = cancel before the run).
	CancelAfter time.Duration
	// StallInterval overrides the Stall fault's watchdog interval
	// (0 = DefaultStallInterval).
	StallInterval time.Duration
	// Dir is where the Corrupt fault writes its container
	// (empty = os.TempDir()).
	Dir string
	// Seed derives which bit the Corrupt fault flips, so a failing chaos
	// round reproduces from its logged seed.
	Seed int64
}

// Name returns the inner engine's name.
func (e *Engine) Name() string { return e.Inner.Name() }

// Fingerprint appends the injected fault to the inner fingerprint, so a
// faulted cell's report is never comparable to a clean one.
func (e *Engine) Fingerprint() string {
	return e.Inner.Fingerprint() + "+chaos:" + e.Fault.String()
}

// RunWorkload injects the configured fault around (or instead of) the
// inner engine's run. See the Fault constants for what each mode returns.
func (e *Engine) RunWorkload(ctx context.Context, w harness.Workload) (*harness.Report, error) {
	switch e.Fault {
	case Panic:
		panic(ErrInjectedPanic)
	case Stall:
		return nil, e.stall()
	case Budget:
		w.MaxEvents = e.Budget
		if w.MaxEvents == 0 {
			w.MaxEvents = DefaultBudget
		}
		return e.Inner.RunWorkload(ctx, w)
	case Cancel:
		child, cancel := context.WithCancel(ctx)
		if e.CancelAfter > 0 {
			defer time.AfterFunc(e.CancelAfter, cancel).Stop()
		} else {
			cancel()
		}
		defer cancel()
		return e.Inner.RunWorkload(child, w)
	case Corrupt:
		return nil, e.corrupt(w.G)
	default:
		return e.Inner.RunWorkload(ctx, w)
	}
}

// stall runs a private simulation whose only handler burns wall-clock
// time without advancing simulated time or executing further events. The
// watchdog sees no beats across its interval and trips sim.ErrStalled;
// the handler notices the tripped interrupt and unblocks, so the stalled
// goroutine is reclaimed rather than leaked.
func (e *Engine) stall() error {
	interval := e.StallInterval
	if interval <= 0 {
		interval = DefaultStallInterval
	}
	eng := sim.NewEngine()
	intr := sim.NewInterrupt()
	// pollEvery=1 makes the engine surface the trip on the very next
	// event, keeping the fault deterministic in shape: run, trip, return.
	eng.SetInterrupt(intr, 1)
	stopDog := sim.StartWatchdog(intr, interval)
	defer stopDog()
	eng.ScheduleFunc(0, func() {
		deadline := time.Now().Add(10 * interval)
		for intr.Err() == nil && time.Now().Before(deadline) {
			time.Sleep(interval / 4)
		}
	})
	// A second event so the engine visits the interrupt poll after the
	// stalled handler finally returns.
	eng.ScheduleFunc(1, func() {})
	err := eng.Run(0, 0)
	if err == nil {
		return fmt.Errorf("chaos: stall fault completed without tripping the watchdog")
	}
	return err
}

// corrupt round-trips g through the versioned container with one
// seed-derived bit flipped and returns the loader's typed rejection.
func (e *Engine) corrupt(g *graph.CSR) error {
	dir := e.Dir
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "chaos-*.csr")
	if err != nil {
		return fmt.Errorf("chaos: corrupt fault: %w", err)
	}
	path := f.Name()
	f.Close()
	defer os.Remove(path)
	if err := graph.WriteCSRFile(path, g); err != nil {
		return fmt.Errorf("chaos: corrupt fault: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("chaos: corrupt fault: %w", err)
	}
	rng := rand.New(rand.NewSource(e.Seed))
	bit := rng.Intn(len(data) * 8)
	data[bit/8] ^= 1 << (bit % 8)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("chaos: corrupt fault: %w", err)
	}
	if _, err := graph.ReadCSRFile(path); err != nil {
		return err // the typed graph.ErrCorrupt rejection — the expected outcome
	}
	return fmt.Errorf("%w: %s bit %d (seed %d)",
		ErrCorruptionUndetected, filepath.Base(path), bit, e.Seed)
}

var _ harness.Engine = (*Engine)(nil)
