package chaos_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"nova"
	"nova/graph"
	"nova/internal/chaos"
	"nova/internal/harness"
	"nova/internal/sim"
)

// chaosSeed returns the randomized seed for a chaos run, honoring the
// CHAOS_SEED environment variable so a failing CI round reproduces
// exactly from its logged seed.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		return seed
	}
	return time.Now().UnixNano()
}

// cellKey fingerprints the deterministic portion of a report: everything
// the simulated engines promise bit-identical, and everything except
// wall-clock time for the ligra backend (its SimSeconds is host timing).
func cellKey(rep *harness.Report) string {
	key := fmt.Sprintf("edges=%d msgs=%d coal=%d epochs=%d",
		rep.Stats.EdgesTraversed, rep.Stats.MessagesSent,
		rep.Stats.MessagesCoalesced, rep.Stats.Epochs)
	if rep.Engine != "ligra" {
		key += fmt.Sprintf(" sim=%.12g", rep.Stats.SimSeconds)
	}
	for _, p := range rep.Props {
		key += fmt.Sprintf(",%d", p)
	}
	for _, s := range rep.Scores {
		key += fmt.Sprintf(",%.12g", s)
	}
	return key
}

// chaosCell is one (engine, workload) grid position.
type chaosCell struct {
	name string
	eng  harness.Engine
	w    harness.Workload
}

func buildGrid(t *testing.T) []chaosCell {
	t.Helper()
	g := graph.GenUniform("chaos", 400, 4, 8, 7)
	sym := g.Symmetrize()
	root := g.LargestOutDegreeVertex()

	acc, err := nova.New(nova.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	engines := []harness.Engine{
		acc.Engine(),
		(&nova.PolyGraphBaseline{}).Engine(),
		(&nova.Software{Threads: 1}).Engine(),
	}
	var cells []chaosCell
	for _, eng := range engines {
		for _, w := range []string{"bfs", "sssp", "cc", "pr"} {
			wg := g
			if w == "cc" {
				wg = sym
			}
			cells = append(cells, chaosCell{
				name: eng.Name() + "/" + w,
				eng:  eng,
				w:    harness.Workload{Name: w, G: wg, Root: root, PRIters: 3},
			})
		}
	}
	// Sharded multi-GPN cells, one per inter-GPN topology with the
	// in-fabric coalescing stage armed: faults must surface as typed
	// errors and leave siblings bit-identical on every fabric shape.
	for _, topo := range []string{"crossbar", "ring", "mesh", "torus"} {
		cfg := nova.DefaultConfig()
		cfg.GPNs = 4
		cfg.PEsPerGPN = 2
		cfg.Shards = 2
		cfg.Topology = topo
		cfg.CoalesceWindow = 16
		tacc, err := nova.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []string{"sssp", "cc"} {
			wg := g
			if w == "cc" {
				wg = sym
			}
			cells = append(cells, chaosCell{
				name: "nova-" + topo + "/" + w,
				eng:  tacc.Engine(),
				w:    harness.Workload{Name: w, G: wg, Root: root},
			})
		}
	}
	return cells
}

// faultSentinel maps each fault to the sentinel its cell error must match.
func faultSentinel(f chaos.Fault) error {
	switch f {
	case chaos.Panic:
		return chaos.ErrInjectedPanic
	case chaos.Stall:
		return sim.ErrStalled
	case chaos.Budget:
		return sim.ErrMaxEvents
	case chaos.Cancel:
		return context.Canceled
	case chaos.Corrupt:
		return graph.ErrCorrupt
	default:
		return nil
	}
}

// TestChaosSweep is the randomized fault-injection gate: across enough
// rounds to exceed 100 injections, every injected fault must surface as
// a typed error on its own cell, sibling cells must complete with
// results bit-identical to the unfaulted baseline, and no fault may
// panic the sweep (the pool's isolation is itself under test — an
// escaped panic fails the whole test binary).
func TestChaosSweep(t *testing.T) {
	seed := chaosSeed(t)
	t.Logf("chaos seed %d (run with CHAOS_SEED=%d to reproduce)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	cells := buildGrid(t)
	pool := &harness.Pool{Workers: 4}

	// Unfaulted baseline: the determinism reference for sibling cells.
	baseline := make([]string, len(cells))
	base := harness.Map(context.Background(), pool, baselineJobs(cells))
	for i, r := range base {
		if r.Err != nil {
			t.Fatalf("baseline %s: %v", cells[i].name, r.Err)
		}
		baseline[i] = cellKey(r.Value)
	}

	// Budget exhaustion only works on engines that honor
	// Workload.MaxEvents — the NOVA adapter.
	faultsFor := func(i int) []chaos.Fault {
		fs := []chaos.Fault{chaos.Panic, chaos.Stall, chaos.Cancel, chaos.Corrupt}
		if cells[i].eng.Name() == "nova" {
			fs = append(fs, chaos.Budget)
		}
		return fs
	}

	const (
		rounds         = 18
		faultsPerRound = 6
		wantInjections = 100
	)
	injected := 0
	for round := 0; round < rounds; round++ {
		// Pick distinct victim cells and a random fault for each.
		victims := rng.Perm(len(cells))[:faultsPerRound]
		faults := make(map[int]chaos.Fault, faultsPerRound)
		for _, v := range victims {
			fs := faultsFor(v)
			faults[v] = fs[rng.Intn(len(fs))]
		}

		jobs := make([]harness.Job[*harness.Report], len(cells))
		for i, c := range cells {
			eng := c.eng
			if f, ok := faults[i]; ok {
				eng = &chaos.Engine{Inner: c.eng, Fault: f, Seed: rng.Int63()}
			}
			eng, w := eng, c.w
			jobs[i] = harness.Job[*harness.Report]{
				Name: c.name,
				Run: func(ctx context.Context) (*harness.Report, error) {
					return eng.RunWorkload(ctx, w)
				},
			}
		}
		results := harness.Map(context.Background(), pool, jobs)

		for i, r := range results {
			f, faulted := faults[i]
			if !faulted {
				if r.Err != nil {
					t.Fatalf("round %d: unfaulted %s failed: %v", round, cells[i].name, r.Err)
				}
				if got := cellKey(r.Value); got != baseline[i] {
					t.Fatalf("round %d: unfaulted %s diverged from baseline:\n got %s\nwant %s",
						round, cells[i].name, got, baseline[i])
				}
				continue
			}
			injected++
			sentinel := faultSentinel(f)
			if r.Err == nil {
				t.Fatalf("round %d: %s fault on %s produced no error", round, f, cells[i].name)
			}
			if !errors.Is(r.Err, sentinel) {
				t.Fatalf("round %d: %s fault on %s: error not typed %v: %v",
					round, f, cells[i].name, sentinel, r.Err)
			}
			if f == chaos.Budget {
				// Budget exhaustion is a cooperative stop: the partial
				// report must come back alongside the typed error.
				if r.Value == nil || !r.Value.Partial || r.Value.StopReason != "budget" {
					t.Fatalf("round %d: budget fault on %s: no salvaged partial report (%+v)",
						round, cells[i].name, r.Value)
				}
			}
		}
	}
	if injected < wantInjections {
		t.Fatalf("injected %d faults, want >= %d", injected, wantInjections)
	}
	t.Logf("injected %d faults across %d rounds, all typed, siblings bit-identical", injected, rounds)
}

func baselineJobs(cells []chaosCell) []harness.Job[*harness.Report] {
	jobs := make([]harness.Job[*harness.Report], len(cells))
	for i, c := range cells {
		eng, w := c.eng, c.w
		jobs[i] = harness.Job[*harness.Report]{
			Name: c.name,
			Run: func(ctx context.Context) (*harness.Report, error) {
				return eng.RunWorkload(ctx, w)
			},
		}
	}
	return jobs
}

// TestChaosFingerprint pins the fingerprint contract: a faulted engine
// must never report a fingerprint comparable to its clean inner engine.
func TestChaosFingerprint(t *testing.T) {
	acc, err := nova.New(nova.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inner := acc.Engine()
	ce := &chaos.Engine{Inner: inner, Fault: chaos.Stall}
	if ce.Fingerprint() == inner.Fingerprint() {
		t.Fatal("chaos engine fingerprint matches inner engine")
	}
	if ce.Name() != inner.Name() {
		t.Fatalf("chaos engine name %q, want %q", ce.Name(), inner.Name())
	}
}

// TestChaosCorruptDetects pins the Corrupt fault in isolation: for many
// seeds, a single flipped bit anywhere in the container must be rejected
// with the typed graph.ErrCorrupt.
func TestChaosCorruptDetects(t *testing.T) {
	g := graph.GenUniform("corrupt", 120, 4, 8, 3)
	for seedOffset := int64(0); seedOffset < 25; seedOffset++ {
		ce := &chaos.Engine{Fault: chaos.Corrupt, Dir: t.TempDir(), Seed: 1000 + seedOffset}
		_, err := ce.RunWorkload(context.Background(), harness.Workload{Name: "bfs", G: g})
		if err == nil {
			t.Fatalf("seed %d: corrupted container accepted", 1000+seedOffset)
		}
		if !errors.Is(err, graph.ErrCorrupt) {
			t.Fatalf("seed %d: error not typed graph.ErrCorrupt: %v", 1000+seedOffset, err)
		}
	}
}

// TestChaosStallTripsWatchdog pins the Stall fault in isolation: the
// wall-clock watchdog must trip with sim.ErrStalled even though the
// stalled handler never advances simulated time.
func TestChaosStallTripsWatchdog(t *testing.T) {
	ce := &chaos.Engine{Fault: chaos.Stall, StallInterval: 10 * time.Millisecond}
	start := time.Now()
	_, err := ce.RunWorkload(context.Background(), harness.Workload{})
	if !errors.Is(err, sim.ErrStalled) {
		t.Fatalf("stall fault returned %v, want sim.ErrStalled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stall detection took %v", elapsed)
	}
}
