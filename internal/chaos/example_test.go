package chaos_test

import (
	"context"
	"fmt"

	"nova"
	"nova/graph"
	"nova/internal/chaos"
	"nova/internal/harness"
)

// Wrapping an engine in a chaos.Engine injects one failure mode per run
// while keeping the harness contract intact: here the Budget fault caps
// the event budget far below what BFS needs, so the run returns a
// salvaged partial report with the typed "budget" stop reason instead of
// an opaque error.
func ExampleEngine() {
	acc, err := nova.New(nova.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	faulty := &chaos.Engine{Inner: acc.Engine(), Fault: chaos.Budget}

	g := graph.FromStream(graph.NewUniformStream("demo", 400, 4, 16, 1))
	rep, err := faulty.RunWorkload(context.Background(), harness.Workload{
		Name: "bfs",
		G:    g,
		Root: g.LargestOutDegreeVertex(),
	})
	fmt.Printf("err != nil: %v\n", err != nil)
	fmt.Printf("partial=%v stop_reason=%s\n", rep.Partial, rep.StopReason)
	// Output:
	// err != nil: true
	// partial=true stop_reason=budget
}
