package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"nova"
	"nova/graph"
	"nova/internal/harness"
	"nova/internal/sim"
	"nova/internal/stats"
)

// JobState is the lifecycle of a submitted job. A job moves
// queued → running → done|failed; a cache hit is born done. Cancellation
// is not a state of its own — a cancelled simulation salvages a partial
// report, so it lands in done with Partial set and StopReason
// "cancelled" (only a job with nothing to salvage lands in failed).
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobRequest is the POST /jobs body: one sweep cell — engine × workload ×
// configuration — against a registered graph.
type JobRequest struct {
	// Engine is "nova", "polygraph", "ligra", or "extmem".
	Engine string `json:"engine"`
	// Workload is "bfs", "sssp", "cc", "pr", "bc", or "prdelta".
	Workload string `json:"workload"`
	// Graph names a registered graph.
	Graph string `json:"graph"`
	// Root overrides the traversal source (default: the graph's highest
	// out-degree vertex, the convention every CLI runner uses).
	Root *uint32 `json:"root,omitempty"`
	// PRIters configures PageRank (≤0 means 10).
	PRIters int `json:"pr_iters,omitempty"`
	// TimeoutMS bounds the job's wall clock (0 = the server default). A
	// timed-out simulation stops cooperatively and reports a partial
	// result with stop_reason "deadline".
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxEvents caps the simulated event budget (0 = engine default).
	MaxEvents uint64 `json:"max_events,omitempty"`
	// NoCache bypasses the result cache in both directions.
	NoCache bool `json:"no_cache,omitempty"`
	// Nova configures the NOVA engine (ignored by the baselines).
	Nova *NovaOptions `json:"nova,omitempty"`
	// PolyGraph configures the PolyGraph baseline.
	PolyGraph *PolyGraphOptions `json:"polygraph,omitempty"`
	// Ligra configures the software baseline.
	Ligra *LigraOptions `json:"ligra,omitempty"`
	// Extmem configures the external-memory baseline.
	Extmem *ExtmemOptions `json:"extmem,omitempty"`
}

// NovaOptions is the JSON view of the nova.Config knobs the service
// exposes. Zero values keep the engine defaults.
type NovaOptions struct {
	GPNs                int    `json:"gpns,omitempty"`
	PEsPerGPN           int    `json:"pes_per_gpn,omitempty"`
	CacheBytesPerPE     int    `json:"cache_bytes_per_pe,omitempty"`
	ActiveBufferEntries int    `json:"active_buffer_entries,omitempty"`
	Spill               string `json:"spill,omitempty"`
	Fabric              string `json:"fabric,omitempty"`
	Topology            string `json:"topology,omitempty"`
	CoalesceWindow      int64  `json:"coalesce_window,omitempty"`
	CoalesceCapacity    int    `json:"coalesce_capacity,omitempty"`
	Mapping             string `json:"mapping,omitempty"`
	Seed                int64  `json:"seed,omitempty"`
	Shards              int    `json:"shards,omitempty"`
	// OutOfCore enables the SSD-backed tier; SSDPreset ("nvme"/"sata") and
	// SSDResidentPages size it (zero values keep the engine defaults).
	OutOfCore        bool   `json:"out_of_core,omitempty"`
	SSDPreset        string `json:"ssd_preset,omitempty"`
	SSDResidentPages int    `json:"ssd_resident_pages,omitempty"`
}

// PolyGraphOptions configures the temporal-partitioning baseline.
type PolyGraphOptions struct {
	OnChipBytes int64 `json:"onchip_bytes,omitempty"`
	ForceSlices int   `json:"force_slices,omitempty"`
}

// LigraOptions configures the software baseline.
type LigraOptions struct {
	Threads int `json:"threads,omitempty"`
}

// ExtmemOptions configures the external-memory baseline (interval-at-a-
// time partition streaming through a DRAM cache; DESIGN.md §18).
type ExtmemOptions struct {
	RAMBytes       int64  `json:"ram_bytes,omitempty"`
	PartitionEdges int64  `json:"partition_edges,omitempty"`
	SSDPreset      string `json:"ssd_preset,omitempty"`
}

// JobStatus is the wire-format view of a job record (GET /jobs/{id} and
// the POST /jobs response).
type JobStatus struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Engine   string   `json:"engine"`
	Workload string   `json:"workload"`
	Graph    string   `json:"graph"`
	// Cached marks a job served from the result cache without running.
	Cached bool `json:"cached"`
	// Beats is the simulation's liveness counter (sim.Interrupt beats) —
	// nonzero only for the nova engine, which exposes its interrupt.
	Beats uint64 `json:"beats"`
	// ElapsedMS is wall clock since submission (until completion, then
	// frozen at the total).
	ElapsedMS int64 `json:"elapsed_ms"`
	// Partial and StopReason mirror the salvaged report of a run that
	// stopped early ("cancelled", "deadline", "budget", "stalled").
	Partial    bool   `json:"partial,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`
	// Error is the failure message of a failed job.
	Error string `json:"error,omitempty"`
}

// JobResult is the rendered outcome of a run — what GET /jobs/{id}/result
// returns and what the cache stores (as marshaled bytes, so warm hits are
// bit-identical to the cold run).
type JobResult struct {
	Engine      string `json:"engine"`
	Fingerprint string `json:"fingerprint"`
	Workload    string `json:"workload"`
	Graph       string `json:"graph"`
	ContentHash string `json:"content_hash"`

	SimSeconds      float64 `json:"sim_seconds"`
	EdgesTraversed  int64   `json:"edges_traversed"`
	MessagesSent    int64   `json:"messages_sent"`
	Epochs          int     `json:"epochs,omitempty"`
	SequentialEdges int64   `json:"sequential_edges"`
	WorkEfficiency  float64 `json:"work_efficiency"`
	EffectiveGTEPS  float64 `json:"effective_gteps"`
	Shards          int     `json:"shards,omitempty"`

	Partial    bool   `json:"partial,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`

	// Dump is the full hierarchical statistics dump (nil for the
	// two-phase "bc" workload, which has no merged dump).
	Dump *stats.Dump `json:"dump,omitempty"`
}

// job is one tracked submission.
type job struct {
	mu         sync.Mutex
	id         string
	req        JobRequest
	state      JobState
	cached     bool
	created    time.Time
	finished   time.Time
	intr       *sim.Interrupt
	cancel     context.CancelFunc
	result     []byte
	errMsg     string
	partial    bool
	stopReason string
	done       chan struct{}
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	elapsed := time.Since(j.created)
	if !j.finished.IsZero() {
		elapsed = j.finished.Sub(j.created)
	}
	var beats uint64
	if j.intr != nil {
		beats = j.intr.Beats()
	}
	return JobStatus{
		ID:         j.id,
		State:      j.state,
		Engine:     j.req.Engine,
		Workload:   j.req.Workload,
		Graph:      j.req.Graph,
		Cached:     j.cached,
		Beats:      beats,
		ElapsedMS:  elapsed.Milliseconds(),
		Partial:    j.partial,
		StopReason: j.stopReason,
		Error:      j.errMsg,
	}
}

func (j *job) setState(s JobState) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// jobTable tracks submissions by ID, retaining at most cap finished
// records (oldest pruned first) so a long-lived daemon's memory stays
// bounded.
type jobTable struct {
	mu    sync.Mutex
	cap   int
	next  uint64
	jobs  map[string]*job
	order []string
}

func newJobTable(capacity int) *jobTable {
	if capacity <= 0 {
		capacity = 1024
	}
	return &jobTable{cap: capacity, jobs: make(map[string]*job)}
}

func (t *jobTable) add(j *job) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	j.id = fmt.Sprintf("j-%06d", t.next)
	t.jobs[j.id] = j
	t.order = append(t.order, j.id)
	// Prune oldest finished records beyond the cap; never drop live jobs.
	for len(t.jobs) > t.cap {
		pruned := false
		for i, id := range t.order {
			old := t.jobs[id]
			if old == nil {
				t.order = append(t.order[:i], t.order[i+1:]...)
				pruned = true
				break
			}
			old.mu.Lock()
			finished := old.state == JobDone || old.state == JobFailed
			old.mu.Unlock()
			if finished {
				delete(t.jobs, id)
				t.order = append(t.order[:i], t.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			break // every record is live; let the table exceed cap
		}
	}
	return j.id
}

func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

func (t *jobTable) list() []*job {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*job, 0, len(t.jobs))
	for _, id := range t.order {
		if j, ok := t.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

func (t *jobTable) active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, j := range t.jobs {
		j.mu.Lock()
		if j.state == JobQueued || j.state == JobRunning {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// cacheKey derives the result-cache key for one cell: the engine's
// configuration fingerprint (which PR 6 deliberately kept shard-count
// free — results are bit-identical at every worker count, so shards must
// NOT split the cache), the graph's content hash from the CSR container
// header, and the workload coordinates. Two requests collide exactly when
// their runs are guaranteed byte-identical.
func cacheKey(fingerprint string, contentHash uint32, w harness.Workload, prIters int) string {
	return fmt.Sprintf("%s|%08x|%s|root=%d|pr=%d|budget=%d",
		fingerprint, contentHash, w.Name, w.Root, prIters, w.MaxEvents)
}

// EngineBuilder assembles the harness engine for one request. obs is the
// job's observer interrupt: builders wire it into engines that support
// one (the NOVA accelerator) so the job's progress beats are visible to
// streaming clients. The Server's default builder is BuildEngine; tests
// swap in wrappers (e.g. a chaos fault injector around the same engine).
type EngineBuilder func(req *JobRequest, obs *sim.Interrupt) (harness.Engine, error)

// BuildEngine is the default EngineBuilder: nova requests get a full
// nova.Config (defaults + overrides + the observer interrupt), baselines
// get their option structs applied.
func BuildEngine(req *JobRequest, obs *sim.Interrupt) (harness.Engine, error) {
	switch req.Engine {
	case "nova":
		cfg := nova.DefaultConfig()
		if o := req.Nova; o != nil {
			if o.GPNs > 0 {
				cfg.GPNs = o.GPNs
			}
			if o.PEsPerGPN > 0 {
				cfg.PEsPerGPN = o.PEsPerGPN
			}
			if o.CacheBytesPerPE > 0 {
				cfg.CacheBytesPerPE = o.CacheBytesPerPE
			}
			if o.ActiveBufferEntries > 0 {
				cfg.ActiveBufferEntries = o.ActiveBufferEntries
			}
			if o.Spill != "" {
				cfg.Spill = o.Spill
			}
			if o.Fabric != "" {
				cfg.Fabric = o.Fabric
			}
			if o.Topology != "" {
				cfg.Topology = o.Topology
			}
			cfg.CoalesceWindow = o.CoalesceWindow
			cfg.CoalesceCapacity = o.CoalesceCapacity
			if o.Mapping != "" {
				cfg.Mapping = o.Mapping
			}
			if o.Seed != 0 {
				cfg.Seed = o.Seed
			}
			cfg.Shards = o.Shards
			cfg.OutOfCore = o.OutOfCore
			if o.OutOfCore {
				cfg.SSDPreset = o.SSDPreset
				cfg.SSDResidentPages = o.SSDResidentPages
			}
		}
		cfg.Observer = obs
		acc, err := nova.New(cfg)
		if err != nil {
			return nil, err
		}
		return acc.Engine(), nil
	case "polygraph":
		b := &nova.PolyGraphBaseline{}
		if o := req.PolyGraph; o != nil {
			b.OnChipBytes = o.OnChipBytes
			b.ForceSlices = o.ForceSlices
		}
		return b.Engine(), nil
	case "ligra":
		s := &nova.Software{}
		if o := req.Ligra; o != nil {
			s.Threads = o.Threads
		}
		return s.Engine(), nil
	case "extmem":
		b := &nova.ExternalMemory{}
		if o := req.Extmem; o != nil {
			b.RAMBytes = o.RAMBytes
			b.PartitionEdges = o.PartitionEdges
			b.SSDPreset = o.SSDPreset
		}
		return b.Engine(), nil
	default:
		return nil, fmt.Errorf("service: unknown engine %q", req.Engine)
	}
}

// renderResult marshals the canonical result JSON for a completed (or
// salvaged-partial) run. encoding/json sorts map keys, so identical
// reports render to identical bytes.
func renderResult(req *JobRequest, rep *harness.Report, graphName string, contentHash uint32) ([]byte, error) {
	res := JobResult{
		Engine:          rep.Engine,
		Fingerprint:     rep.Fingerprint,
		Workload:        rep.Workload,
		Graph:           graphName,
		ContentHash:     fmt.Sprintf("%08x", contentHash),
		SimSeconds:      rep.Stats.SimSeconds,
		EdgesTraversed:  rep.Stats.EdgesTraversed,
		MessagesSent:    rep.Stats.MessagesSent,
		Epochs:          rep.Stats.Epochs,
		SequentialEdges: rep.SequentialEdges,
		WorkEfficiency:  rep.WorkEfficiency(),
		EffectiveGTEPS:  rep.EffectiveGTEPS(),
		Shards:          rep.Shards,
		Partial:         rep.Partial,
		StopReason:      rep.StopReason,
		Dump:            rep.Dump,
	}
	return json.Marshal(res)
}

// workloadFor binds the request to its graph views: "cc" runs on the
// symmetrized graph, "bc" and the software engine need the transpose.
func workloadFor(req *JobRequest, e *GraphEntry) harness.Workload {
	g := e.Graph()
	var gT *graph.CSR
	switch {
	case req.Workload == "cc":
		g = e.Sym()
		gT = g
	case req.Workload == "bc" || req.Engine == "ligra":
		gT = e.Transpose()
	}
	root := e.Root()
	if req.Root != nil {
		root = graph.VertexID(*req.Root)
	}
	return harness.Workload{
		Name:      req.Workload,
		G:         g,
		GT:        gT,
		Root:      root,
		PRIters:   req.PRIters,
		MaxEvents: req.MaxEvents,
	}
}
