// Package service is the simulation-as-a-service layer behind cmd/novad:
// a long-running, multi-tenant HTTP/JSON front end over the existing
// engines, built from three pieces.
//
// The graph registry opens each .csr container once — via mmap where the
// platform allows — validates every checksum, and shares the resulting
// read-only CSR across all concurrent jobs; entries are reference-counted
// so eviction never unmaps a graph a running simulation still reads.
//
// The scheduler is a harness.Queue over the same Pool machinery every
// sweep uses: per-job timeouts, cooperative cancellation through
// sim.Interrupt/WatchContext, abandon-grace salvage of partial reports,
// and a bounded backlog that turns overload into HTTP 503 instead of
// unbounded memory growth. Each nova job carries an observer interrupt,
// so clients can stream the simulation's liveness beats while it runs.
//
// The result cache keys on Engine.Fingerprint() + the graph's content
// hash (CRC32C from the CSR container header) + the workload cell, and
// stores the rendered result bytes of complete runs: a warm identical
// sweep cell is served without simulating, bit-identical to its cold run.
// Hit/miss/eviction counters — and a request-latency histogram — are
// registered in an internal/stats tree surfaced at /statsz.
//
// See API.md at the repository root for the complete endpoint reference
// and DESIGN.md §17 for the architecture discussion.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"nova/internal/harness"
	"nova/internal/sim"
	"nova/internal/stats"
)

// Config tunes a Server. The zero value is serviceable: GOMAXPROCS
// workers, a worker-sized backlog, a 256-entry cache, no default job
// timeout.
type Config struct {
	// Workers bounds concurrently running simulations.
	Workers int
	// Backlog bounds queued-but-not-running jobs (≤0 = Workers); a full
	// backlog rejects submissions with HTTP 503.
	Backlog int
	// DefaultTimeout bounds each job's wall clock when the request does
	// not set one (0 = unbounded).
	DefaultTimeout time.Duration
	// CacheEntries bounds the result cache (0 = 256).
	CacheEntries int
	// JobRecords bounds retained finished-job records (0 = 1024).
	JobRecords int
}

// Server owns the registry, scheduler, cache, and statistics of one novad
// instance. Build with NewServer, expose with Handler, stop with Close.
type Server struct {
	cfg   Config
	reg   *Registry
	cache *resultCache
	jobs  *jobTable
	queue *harness.Queue[*harness.Report]

	// buildEngine assembles engines for requests; tests override it (see
	// SetEngineBuilder) to wrap the served engine, e.g. in a chaos fault
	// injector.
	buildEngine EngineBuilder

	// The statistics tree and every value it reads are guarded by statsMu
	// (stats values are plain fields, not atomics; the tree is dumped
	// while handlers run).
	statsMu        sync.Mutex
	statsRoot      *stats.Group
	started        time.Time
	httpRequests   stats.Counter
	httpErrors     stats.Counter
	latencyUS      stats.Histogram
	jobsSubmitted  stats.Counter
	jobsCompleted  stats.Counter
	jobsFailed     stats.Counter
	jobsPartial    stats.Counter
	jobsRejected   stats.Counter
	cacheHits      stats.Counter
	cacheMisses    stats.Counter
	cacheEvictions stats.Counter
	cacheInserts   stats.Counter
}

// NewServer assembles a server and starts its worker pool.
func NewServer(cfg Config) *Server {
	s := &Server{
		cfg:         cfg,
		reg:         NewRegistry(),
		cache:       newResultCache(cfg.CacheEntries),
		jobs:        newJobTable(cfg.JobRecords),
		buildEngine: BuildEngine,
		started:     time.Now(),
	}
	s.queue = harness.NewQueue[*harness.Report](&harness.Pool{
		Workers:    cfg.Workers,
		JobTimeout: cfg.DefaultTimeout,
	}, cfg.Backlog)
	s.registerStats()
	return s
}

// Registry exposes the graph registry (the loadtest client pre-registers
// graphs through it when it runs the server in-process).
func (s *Server) Registry() *Registry { return s.reg }

// SetEngineBuilder replaces the engine factory. Call before serving; the
// chaos tests use it to wrap the default engines in fault injectors
// without touching the HTTP surface.
func (s *Server) SetEngineBuilder(b EngineBuilder) { s.buildEngine = b }

// Close stops intake, waits for in-flight jobs, and releases every
// mapped graph.
func (s *Server) Close() {
	s.queue.Close()
	s.reg.Close()
}

// registerStats builds the /statsz tree. All reads happen through
// closures evaluated under statsMu at dump time (see StatsDump).
func (s *Server) registerStats() {
	root := stats.NewRoot()
	root.Formula(func() float64 { return time.Since(s.started).Seconds() },
		"uptime_seconds", stats.Seconds, "wall clock since the server started").Volatile()

	h := root.Group("http")
	h.Counter(&s.httpRequests, "requests", stats.Count, "HTTP requests served")
	h.Counter(&s.httpErrors, "errors", stats.Count, "HTTP responses with status >= 400")
	h.Histogram(&s.latencyUS, "request_latency_us", "microseconds",
		"request latency distribution (log2 buckets of microseconds)").Volatile()

	j := root.Group("jobs")
	j.Counter(&s.jobsSubmitted, "submitted", stats.Count, "jobs accepted for execution (cache hits excluded)")
	j.Counter(&s.jobsCompleted, "completed", stats.Count, "jobs that produced a result (partial included)")
	j.Counter(&s.jobsFailed, "failed", stats.Count, "jobs that produced no result")
	j.Counter(&s.jobsPartial, "partial", stats.Count, "jobs whose result was salvaged from an early stop")
	j.Counter(&s.jobsRejected, "rejected", stats.Count, "submissions refused by queue backpressure")
	j.Formula(func() float64 { return float64(s.jobs.active()) },
		"active", stats.Count, "jobs currently queued or running").Volatile()

	c := root.Group("cache")
	c.Counter(&s.cacheHits, "hits", stats.Count, "result-cache hits (request served without simulating)")
	c.Counter(&s.cacheMisses, "misses", stats.Count, "result-cache misses")
	c.Counter(&s.cacheEvictions, "evictions", stats.Count, "entries evicted by the LRU budget")
	c.Counter(&s.cacheInserts, "insertions", stats.Count, "complete results inserted into the cache")
	c.Formula(func() float64 { return float64(s.cache.Len()) },
		"entries", stats.Entries, "resident cache entries")
	c.Formula(func() float64 {
		total := s.cacheHits.Value() + s.cacheMisses.Value()
		if total == 0 {
			return 0
		}
		return float64(s.cacheHits.Value()) / float64(total)
	}, "hit_rate", stats.Ratio, "hits / (hits + misses)")

	r := root.Group("registry")
	r.Formula(func() float64 { return float64(s.reg.Len()) },
		"graphs", stats.Count, "registered graphs")
	r.Formula(func() float64 { return float64(s.reg.ResidentBytes()) },
		"resident_bytes", stats.Bytes, "summed CSR footprint of registered graphs")
	r.Formula(func() float64 { m, _ := s.reg.MappedCounts(); return float64(m) },
		"mapped", stats.Count, "graphs served from a live kernel mapping (page-cache backed)")
	r.Formula(func() float64 { _, u := s.reg.MappedCounts(); return float64(u) },
		"unmapped", stats.Count, "graphs decoded onto the heap (non-unix fallback, partitioned containers)")
	s.statsRoot = root
}

// StatsDump renders the service statistics tree (the /statsz payload).
func (s *Server) StatsDump() *stats.Dump {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.statsRoot.Dump(map[string]string{"component": "novad"})
}

// observeRequest records one served request into the /statsz tree.
func (s *Server) observeRequest(elapsed time.Duration, status int) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.httpRequests.Inc()
	if status >= 400 {
		s.httpErrors.Inc()
	}
	s.latencyUS.Observe(uint64(elapsed.Microseconds()))
}

func (s *Server) count(c *stats.Counter) {
	s.statsMu.Lock()
	c.Inc()
	s.statsMu.Unlock()
}

func (s *Server) countN(c *stats.Counter, n uint64) {
	s.statsMu.Lock()
	c.Add(n)
	s.statsMu.Unlock()
}

// submit runs the full intake path for one request: acquire the graph,
// build the engine, consult the cache, and — on a miss — schedule the
// simulation on the queue. It returns the job record (already done for a
// cache hit) or an httpError.
func (s *Server) submit(req *JobRequest) (*job, *httpError) {
	if !validWorkload(req.Workload) {
		return nil, badRequest(fmt.Errorf("service: unknown workload %q", req.Workload))
	}
	entry, err := s.reg.Acquire(req.Graph)
	if err != nil {
		return nil, notFound(err)
	}
	intr := sim.NewInterrupt()
	eng, err := s.buildEngine(req, intr)
	if err != nil {
		entry.Release()
		return nil, badRequest(err)
	}
	w := workloadFor(req, entry)
	key := cacheKey(eng.Fingerprint(), entry.Info().ContentHash, w, req.PRIters)

	j := &job{req: *req, created: time.Now(), done: make(chan struct{})}
	if !req.NoCache {
		if cached, ok := s.cache.Get(key); ok {
			s.count(&s.cacheHits)
			entry.Release()
			j.state = JobDone
			j.cached = true
			j.result = cached
			j.finished = time.Now()
			// The cached result tells partial/stop_reason only via its
			// body; complete runs are the only ones inserted, so the
			// record stays clean.
			close(j.done)
			s.jobs.add(j)
			return j, nil
		}
		s.count(&s.cacheMisses)
	}

	ctx, cancel := context.WithCancel(context.Background())
	j.state = JobQueued
	j.intr = intr
	j.cancel = cancel
	s.jobs.add(j)

	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	resCh := s.queue.Submit(ctx, harness.Job[*harness.Report]{
		Name:    fmt.Sprintf("%s/%s/%s", req.Engine, req.Workload, req.Graph),
		Timeout: timeout,
		OnStart: func() { j.setState(JobRunning) },
		Run: func(ctx context.Context) (*harness.Report, error) {
			return eng.RunWorkload(ctx, w)
		},
	})

	// Fast-fail backpressure: a rejected submission resolves its result
	// channel before Submit returns, so the rejection is visible here.
	select {
	case r := <-resCh:
		if errors.Is(r.Err, harness.ErrQueueFull) {
			s.count(&s.jobsRejected)
			cancel()
			entry.Release()
			j.mu.Lock()
			j.state = JobFailed
			j.errMsg = r.Err.Error()
			j.finished = time.Now()
			j.mu.Unlock()
			close(j.done)
			return nil, overloaded(r.Err)
		}
		// The job ran to completion before we got here (tiny graphs do).
		s.count(&s.jobsSubmitted)
		s.finishJob(j, r, entry, key, !req.NoCache)
		entry.Release()
		return j, nil
	default:
	}
	s.count(&s.jobsSubmitted)
	go func() {
		r := <-resCh
		s.finishJob(j, r, entry, key, !req.NoCache)
		entry.Release()
	}()
	return j, nil
}

// finishJob folds a queue result into the job record, renders the result
// bytes, inserts complete runs into the cache, and closes the done
// channel streaming clients wait on.
func (s *Server) finishJob(j *job, r harness.Result[*harness.Report], entry *GraphEntry, key string, cacheable bool) {
	rep := r.Value
	j.mu.Lock()
	defer func() {
		j.finished = time.Now()
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
		close(j.done)
	}()
	if rep == nil {
		j.state = JobFailed
		if r.Err != nil {
			j.errMsg = r.Err.Error()
		} else {
			j.errMsg = "service: job produced no report"
		}
		s.count(&s.jobsFailed)
		return
	}
	body, err := renderResult(&j.req, rep, entry.Name(), entry.Info().ContentHash)
	if err != nil {
		j.state = JobFailed
		j.errMsg = fmt.Sprintf("service: rendering result: %v", err)
		s.count(&s.jobsFailed)
		return
	}
	j.state = JobDone
	j.result = body
	j.partial = rep.Partial
	j.stopReason = rep.StopReason
	if r.Err != nil {
		j.errMsg = r.Err.Error()
	}
	s.count(&s.jobsCompleted)
	if rep.Partial {
		s.count(&s.jobsPartial)
	} else if cacheable && r.Err == nil {
		evicted := s.cache.Put(key, body)
		s.count(&s.cacheInserts)
		if evicted > 0 {
			s.countN(&s.cacheEvictions, uint64(evicted))
		}
	}
}

// workloadNames is the serving surface: the same six cells the sweep
// grids run.
var workloadNames = []string{"bfs", "sssp", "cc", "pr", "bc", "prdelta"}

func validWorkload(name string) bool {
	for _, w := range workloadNames {
		if w == name {
			return true
		}
	}
	return false
}
