package service

import "sync"

// resultCache is the fingerprint-keyed result cache: key = engine
// configuration fingerprint + graph content hash + the workload cell
// (see cacheKey in jobs.go), value = the fully rendered result JSON of a
// completed run. Storing rendered bytes — not the report — is what makes
// the warm-hit guarantee trivial: a cache hit serves the cold run's exact
// bytes, so the stats dump is bit-identical by construction, not by
// re-serialization luck.
//
// Eviction is LRU over a fixed entry budget. Only complete, error-free
// results are inserted (partial reports depend on when the stop landed,
// so caching them would serve nondeterministic truncations as truth).
type resultCache struct {
	mu  sync.Mutex
	cap int
	// entries maps key → node in the recency list; the list front is the
	// most recently used entry.
	entries map[string]*cacheNode
	head    *cacheNode // most recent
	tail    *cacheNode // least recent
}

type cacheNode struct {
	key        string
	value      []byte
	prev, next *cacheNode
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &resultCache{cap: capacity, entries: make(map[string]*cacheNode)}
}

// Get returns the cached bytes for key and refreshes its recency. The
// returned slice is shared — callers must not mutate it (handlers only
// write it to the wire).
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.unlink(n)
	c.pushFront(n)
	return n.value, true
}

// Put inserts (or refreshes) key and returns how many entries were
// evicted to make room (0 or 1; reported so the server's eviction counter
// stays exact).
func (c *resultCache) Put(key string, value []byte) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.entries[key]; ok {
		n.value = value
		c.unlink(n)
		c.pushFront(n)
		return 0
	}
	n := &cacheNode{key: key, value: value}
	c.entries[key] = n
	c.pushFront(n)
	evicted := 0
	for len(c.entries) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		evicted++
	}
	return evicted
}

// Len returns the resident entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *resultCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else if c.head == n {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else if c.tail == n {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *resultCache) pushFront(n *cacheNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}
