package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nova/graph"
	"nova/internal/chaos"
	"nova/internal/harness"
	"nova/internal/service"
	"nova/internal/sim"
)

// buildCSR writes a deterministic uniform graph container and returns its
// path.
func buildCSR(t *testing.T, vertices int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.csr")
	st := graph.NewUniformStream("g", vertices, 6, 32, 7)
	if _, err := graph.BuildCSRFile(path, st, graph.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	return path
}

func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	srv := service.NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// register installs the container under name via the HTTP API.
func register(t *testing.T, base, name, path string) {
	t.Helper()
	resp, body := postJSON(t, base+"/graphs", map[string]string{"name": name, "path": path})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register %s: HTTP %d: %s", name, resp.StatusCode, body)
	}
}

// submitAndWait posts req and polls until the job reaches a terminal
// state, returning the final status.
func submitAndWait(t *testing.T, base string, req map[string]any) service.JobStatus {
	t.Helper()
	resp, body := postJSON(t, base+"/jobs", req)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st service.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for st.State == service.JobQueued || st.State == service.JobRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(5 * time.Millisecond)
		if code := getJSON(t, base+"/jobs/"+st.ID, &st); code != http.StatusOK {
			t.Fatalf("status poll: HTTP %d", code)
		}
	}
	return st
}

func fetchResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: HTTP %d: %s", id, resp.StatusCode, body)
	}
	return body
}

// statsValue reads one dotted-path value from /statsz.
func statsValue(t *testing.T, base, path string) float64 {
	t.Helper()
	var dump struct {
		Records []struct {
			Path  string  `json:"path"`
			Value float64 `json:"value"`
		} `json:"records"`
	}
	if code := getJSON(t, base+"/statsz", &dump); code != http.StatusOK {
		t.Fatalf("statsz: HTTP %d", code)
	}
	for _, r := range dump.Records {
		if r.Path == path {
			return r.Value
		}
	}
	t.Fatalf("statsz: path %q not found", path)
	return 0
}

func TestRegisterListEvict(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	path := buildCSR(t, 500)
	register(t, ts.URL, "g", path)

	// Duplicate registration is a conflict.
	resp, _ := postJSON(t, ts.URL+"/graphs", map[string]string{"name": "g", "path": path})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: HTTP %d, want 409", resp.StatusCode)
	}

	var list struct{ Graphs []service.GraphInfo }
	if code := getJSON(t, ts.URL+"/graphs", &list); code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	if len(list.Graphs) != 1 || list.Graphs[0].Name != "g" {
		t.Fatalf("list: %+v", list.Graphs)
	}
	if list.Graphs[0].ContentHash == "" || list.Graphs[0].Vertices != 500 {
		t.Fatalf("graph info incomplete: %+v", list.Graphs[0])
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/g", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("evict: HTTP %d", resp2.StatusCode)
	}
	// Evicting an unknown graph (including one already evicted) is 404.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/graphs/g", nil)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("double evict: HTTP %d, want 404", resp3.StatusCode)
	}
}

func TestCorruptContainerRejected(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	path := buildCSR(t, 300)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/graphs", map[string]string{"name": "bad", "path": path})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt register: HTTP %d (%s), want 422", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "corrupt") {
		t.Fatalf("corrupt register error should name the corruption: %s", body)
	}
	// A missing file is a different failure: 404, not 422.
	resp, _ = postJSON(t, ts.URL+"/graphs", map[string]string{"name": "gone", "path": path + ".nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing register: HTTP %d, want 404", resp.StatusCode)
	}
}

func TestWarmCacheHitBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	register(t, ts.URL, "g", buildCSR(t, 1500))

	req := map[string]any{"engine": "nova", "workload": "bfs", "graph": "g"}
	cold := submitAndWait(t, ts.URL, req)
	if cold.State != service.JobDone || cold.Cached {
		t.Fatalf("cold run: %+v", cold)
	}
	coldBody := fetchResult(t, ts.URL, cold.ID)

	warm := submitAndWait(t, ts.URL, req)
	if warm.State != service.JobDone || !warm.Cached {
		t.Fatalf("warm run not served from cache: %+v", warm)
	}
	warmBody := fetchResult(t, ts.URL, warm.ID)
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatalf("warm result differs from cold run:\ncold: %s\nwarm: %s", coldBody, warmBody)
	}
	if hits := statsValue(t, ts.URL, "cache.hits"); hits < 1 {
		t.Fatalf("cache.hits = %v, want >= 1", hits)
	}
	// NoCache bypasses the warm path even for an identical cell.
	req["no_cache"] = true
	bypass := submitAndWait(t, ts.URL, req)
	if bypass.Cached {
		t.Fatalf("no_cache run served from cache: %+v", bypass)
	}
}

func TestConcurrentClientsShareMappedGraph(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Backlog: 256})
	register(t, ts.URL, "g", buildCSR(t, 2000))

	const clients = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			engine := []string{"nova", "polygraph", "ligra"}[c%3]
			workload := []string{"bfs", "pr"}[c%2]
			st := submitAndWait(t, ts.URL, map[string]any{
				"engine": engine, "workload": workload, "graph": "g",
			})
			if st.State != service.JobDone {
				errs <- fmt.Errorf("client %d: job %s ended %s: %s", c, st.ID, st.State, st.Error)
				return
			}
			fetchResult(t, ts.URL, st.ID)
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	// Every job released its reference.
	var list struct{ Graphs []service.GraphInfo }
	getJSON(t, ts.URL+"/graphs", &list)
	if len(list.Graphs) != 1 || list.Graphs[0].InFlight != 0 {
		t.Fatalf("registry after run: %+v", list.Graphs)
	}
}

func TestCancelledJobReturnsPartial(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	register(t, ts.URL, "g", buildCSR(t, 4000))

	// A long PageRank gives the cancel plenty of runway.
	resp, body := postJSON(t, ts.URL+"/jobs", map[string]any{
		"engine": "nova", "workload": "pr", "graph": "g",
		"pr_iters": 5000, "no_cache": true,
	})
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st service.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	// Wait until the simulation is demonstrably running (beats moving).
	deadline := time.Now().Add(30 * time.Second)
	for st.State == service.JobQueued || st.Beats == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", st)
		}
		if st.State == service.JobDone || st.State == service.JobFailed {
			t.Fatalf("job finished before cancel: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
		getJSON(t, ts.URL+"/jobs/"+st.ID, &st)
	}
	cresp, cbody := postJSON(t, ts.URL+"/jobs/"+st.ID+"/cancel", nil)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d: %s", cresp.StatusCode, cbody)
	}
	for st.State == service.JobQueued || st.State == service.JobRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job did not stop after cancel: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
		getJSON(t, ts.URL+"/jobs/"+st.ID, &st)
	}
	if st.State != service.JobDone || !st.Partial || st.StopReason != "cancelled" {
		t.Fatalf("cancelled job: %+v, want done/partial/cancelled", st)
	}
	var res struct {
		Partial    bool   `json:"partial"`
		StopReason string `json:"stop_reason"`
	}
	if err := json.Unmarshal(fetchResult(t, ts.URL, st.ID), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.StopReason != "cancelled" {
		t.Fatalf("result: %+v, want partial/cancelled", res)
	}
}

func TestBudgetPartialNotCached(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	register(t, ts.URL, "g", buildCSR(t, 2000))

	req := map[string]any{
		"engine": "nova", "workload": "pr", "graph": "g", "max_events": 256,
	}
	first := submitAndWait(t, ts.URL, req)
	if first.State != service.JobDone || !first.Partial || first.StopReason != "budget" {
		t.Fatalf("budget-capped job: %+v, want done/partial/budget", first)
	}
	// Partial results must never be cached: the identical resubmit runs
	// again instead of hitting.
	second := submitAndWait(t, ts.URL, req)
	if second.Cached {
		t.Fatalf("partial result was served from cache: %+v", second)
	}
}

func TestChaosWrappedEngine(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{})
	// Wrap the stock builder so every served engine runs inside a chaos
	// cell with a tiny event budget — the service must surface the fault
	// as an ordinary partial result, not an error.
	srv.SetEngineBuilder(func(req *service.JobRequest, obs *sim.Interrupt) (harness.Engine, error) {
		inner, err := service.BuildEngine(req, obs)
		if err != nil {
			return nil, err
		}
		return &chaos.Engine{Inner: inner, Fault: chaos.Budget}, nil
	})
	register(t, ts.URL, "g", buildCSR(t, 1000))

	st := submitAndWait(t, ts.URL, map[string]any{
		"engine": "nova", "workload": "bfs", "graph": "g",
	})
	if st.State != service.JobDone || !st.Partial || st.StopReason != "budget" {
		t.Fatalf("chaos-wrapped job: %+v, want done/partial/budget", st)
	}
}

// blockEngine runs until released (or cancelled) — the backpressure tests
// need a job that stays running on command.
type blockEngine struct {
	started chan struct{}
	release chan struct{}
}

func (e *blockEngine) Name() string        { return "block" }
func (e *blockEngine) Fingerprint() string { return "block" }

func (e *blockEngine) RunWorkload(ctx context.Context, w harness.Workload) (*harness.Report, error) {
	select {
	case e.started <- struct{}{}:
	default:
	}
	select {
	case <-e.release:
		return &harness.Report{Engine: "block", Fingerprint: "block", Workload: w.Name}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func TestQueueBackpressure503(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{Workers: 1, Backlog: 1})
	be := &blockEngine{started: make(chan struct{}, 1), release: make(chan struct{})}
	defer close(be.release)
	srv.SetEngineBuilder(func(req *service.JobRequest, obs *sim.Interrupt) (harness.Engine, error) {
		return be, nil
	})
	register(t, ts.URL, "g", buildCSR(t, 200))

	submit := func(i int) (*http.Response, []byte) {
		return postJSON(t, ts.URL+"/jobs", map[string]any{
			"engine": "nova", "workload": "bfs", "graph": "g", "no_cache": true,
			"root": i, // distinct cells so nothing collides in the cache
		})
	}
	r1, b1 := submit(1)
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d: %s", r1.StatusCode, b1)
	}
	<-be.started // the worker is now occupied
	r2, b2 := submit(2)
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d: %s", r2.StatusCode, b2)
	}
	// Worker busy + backlog full: the third submission must be shed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r3, b3 := submit(3)
		if r3.StatusCode == http.StatusServiceUnavailable {
			break
		}
		// The second job may not have reached the queue yet; retry briefly.
		if time.Now().After(deadline) {
			t.Fatalf("third submit: HTTP %d: %s, want 503", r3.StatusCode, b3)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	register(t, ts.URL, "g", buildCSR(t, 200))

	cases := []struct {
		name string
		req  map[string]any
		want int
	}{
		{"unknown engine", map[string]any{"engine": "gpu", "workload": "bfs", "graph": "g"}, http.StatusBadRequest},
		{"unknown workload", map[string]any{"engine": "nova", "workload": "dijkstra", "graph": "g"}, http.StatusBadRequest},
		{"unregistered graph", map[string]any{"engine": "nova", "workload": "bfs", "graph": "missing"}, http.StatusNotFound},
		{"unknown field", map[string]any{"engine": "nova", "workload": "bfs", "graph": "g", "bogus": 1}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/jobs", c.req)
		if resp.StatusCode != c.want {
			t.Errorf("%s: HTTP %d (%s), want %d", c.name, resp.StatusCode, body, c.want)
		}
	}
	if code := getJSON(t, ts.URL+"/jobs/j-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
}

func TestStreamEndpoint(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	register(t, ts.URL, "g", buildCSR(t, 1500))

	resp, body := postJSON(t, ts.URL+"/jobs", map[string]any{
		"engine": "nova", "workload": "pr", "graph": "g", "pr_iters": 50, "no_cache": true,
	})
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st service.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	sresp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/stream?interval_ms=10")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	dec := json.NewDecoder(sresp.Body)
	lines := 0
	var last service.JobStatus
	for dec.More() {
		if err := dec.Decode(&last); err != nil {
			t.Fatal(err)
		}
		lines++
	}
	if lines < 1 {
		t.Fatal("stream produced no lines")
	}
	if last.State != service.JobDone {
		t.Fatalf("final stream line: %+v, want done", last)
	}
}

func TestStatsEndpointFormats(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	for _, format := range []string{"", "?format=text", "?format=csv"} {
		if code := getJSON(t, ts.URL+"/statsz"+format, nil); code != http.StatusOK {
			t.Fatalf("statsz%s: HTTP %d", format, code)
		}
	}
	if code := getJSON(t, ts.URL+"/statsz?format=yaml", nil); code != http.StatusBadRequest {
		t.Fatal("statsz should reject unknown formats")
	}
}
