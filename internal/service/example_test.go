package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"nova/graph"
	"nova/internal/service"
)

// A Server is the whole novad daemon minus the listener: register a
// graph, submit a job against it, and poll until it finishes. The second
// identical submission is served from the result cache without running
// the simulator — Cached is the tell.
func ExampleServer() {
	srv := service.NewServer(service.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Build a small deterministic graph container and register it.
	dir, err := os.MkdirTemp("", "novad-example")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "example.csr")
	st := graph.NewUniformStream("example", 500, 4, 16, 1)
	if _, err := graph.BuildCSRFile(path, st, graph.BuildOptions{}); err != nil {
		fmt.Println(err)
		return
	}
	if _, err := srv.Registry().Register("example", path); err != nil {
		fmt.Println(err)
		return
	}

	submit := func() service.JobStatus {
		body, _ := json.Marshal(service.JobRequest{
			Engine: "nova", Workload: "bfs", Graph: "example",
		})
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Println(err)
			return service.JobStatus{}
		}
		defer resp.Body.Close()
		var stj service.JobStatus
		_ = json.NewDecoder(resp.Body).Decode(&stj)
		for stj.State == service.JobQueued || stj.State == service.JobRunning {
			time.Sleep(5 * time.Millisecond)
			r, err := http.Get(ts.URL + "/jobs/" + stj.ID)
			if err != nil {
				fmt.Println(err)
				return stj
			}
			_ = json.NewDecoder(r.Body).Decode(&stj)
			r.Body.Close()
		}
		return stj
	}

	cold := submit()
	warm := submit()
	fmt.Printf("cold: state=%s cached=%v\n", cold.State, cold.Cached)
	fmt.Printf("warm: state=%s cached=%v\n", warm.State, warm.Cached)
	// Output:
	// cold: state=done cached=false
	// warm: state=done cached=true
}
