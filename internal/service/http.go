package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"time"

	"nova/graph"
)

// httpError pairs an error with the status it maps to on the wire.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }

func badRequest(err error) *httpError { return &httpError{http.StatusBadRequest, err} }
func notFound(err error) *httpError   { return &httpError{http.StatusNotFound, err} }
func conflict(err error) *httpError   { return &httpError{http.StatusConflict, err} }
func unprocessable(err error) *httpError {
	return &httpError{http.StatusUnprocessableEntity, err}
}
func overloaded(err error) *httpError {
	return &httpError{http.StatusServiceUnavailable, err}
}

// registerError maps a registry failure onto the API's status contract:
// a container that fails checksum or structural validation is 422
// (the file exists but its content is rejected — graph.ErrCorrupt), a
// missing file is 404, a name collision is 409, anything else is 400.
func registerError(err error) *httpError {
	switch {
	case errors.Is(err, graph.ErrCorrupt):
		return unprocessable(err)
	case errors.Is(err, fs.ErrNotExist):
		return notFound(err)
	}
	if errors.Is(err, errAlreadyRegistered) {
		return conflict(err)
	}
	return badRequest(err)
}

// Handler returns the daemon's HTTP surface. Routes use Go 1.22 method
// + wildcard patterns; every response is JSON (NDJSON for /stream).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statsz", s.handleStats)
	mux.HandleFunc("GET /graphs", s.handleListGraphs)
	mux.HandleFunc("POST /graphs", s.handleRegisterGraph)
	mux.HandleFunc("DELETE /graphs/{name}", s.handleEvictGraph)
	mux.HandleFunc("POST /jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /jobs", s.handleListJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancelJob)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleJobStream)
	return s.instrument(mux)
}

// statusRecorder captures the response status for the request metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so NDJSON streaming works
// through the recorder.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the mux with the request counter and latency
// histogram surfaced at /statsz.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.observeRequest(time.Since(start), rec.status)
	})
}

// apiError is the JSON body of every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *httpError) {
	writeJSON(w, e.status, apiError{Error: e.err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"uptime": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	dump := s.StatsDump()
	switch r.URL.Query().Get("format") {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		_ = dump.WriteJSON(w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = dump.WriteText(w)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		_ = dump.WriteCSV(w)
	default:
		writeError(w, badRequest(fmt.Errorf("service: unknown format %q (want json, text, or csv)", r.URL.Query().Get("format"))))
	}
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.List()})
}

// registerRequest is the POST /graphs body.
type registerRequest struct {
	// Name is the handle jobs use to select the graph.
	Name string `json:"name"`
	// Path is the .csr container on the server's filesystem.
	Path string `json:"path"`
}

func (s *Server) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, badRequest(err))
		return
	}
	info, err := s.reg.Register(req.Name, req.Path)
	if err != nil {
		writeError(w, registerError(err))
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleEvictGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Evict(name); err != nil {
		writeError(w, notFound(err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"evicted": name})
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, badRequest(err))
		return
	}
	j, herr := s.submit(&req)
	if herr != nil {
		writeError(w, herr)
		return
	}
	status := http.StatusAccepted
	if st := j.status(); st.State == JobDone {
		status = http.StatusOK // cache hits (and instant runs) are born done
	}
	writeJSON(w, status, j.status())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, notFound(fmt.Errorf("service: job %q not found", id)))
		return nil, false
	}
	return j, true
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookupJob(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	state, body, errMsg := j.state, j.result, j.errMsg
	j.mu.Unlock()
	switch state {
	case JobQueued, JobRunning:
		writeError(w, conflict(fmt.Errorf("service: job %s is %s; result not ready", j.id, state)))
	case JobFailed:
		writeError(w, unprocessable(fmt.Errorf("service: job %s failed: %s", j.id, errMsg)))
	default:
		// The stored bytes are served verbatim: a cache hit returns the
		// cold run's exact rendering, bit for bit.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	}
}

// handleJobStream serves NDJSON progress: one JobStatus line per beat
// sample (default every 200ms, tunable with ?interval_ms=) until the job
// finishes, then a final line with the terminal state.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	interval := 200 * time.Millisecond
	if v := r.URL.Query().Get("interval_ms"); v != "" {
		var ms int64
		if _, err := fmt.Sscanf(v, "%d", &ms); err != nil || ms <= 0 {
			writeError(w, badRequest(fmt.Errorf("service: bad interval_ms %q", v)))
			return
		}
		interval = time.Duration(ms) * time.Millisecond
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func() {
		_ = enc.Encode(j.status())
		if flusher != nil {
			flusher.Flush()
		}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		emit()
		select {
		case <-j.done:
			emit() // terminal state with final beat count
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: decoding request body: %w", err)
	}
	return nil
}
