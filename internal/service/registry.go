package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"nova/graph"
)

// errAlreadyRegistered marks a name collision on Register (mapped to
// HTTP 409 by the API layer).
var errAlreadyRegistered = errors.New("already registered")

// GraphEntry is one registered graph: a CSR container opened once (via
// mmap where the platform allows) and shared read-only by every job that
// names it. Derived views the workloads need — the symmetrized graph for
// "cc", the transpose for "bc" and the software engine — are built lazily
// and cached per entry, so N concurrent jobs on the same graph cost one
// copy of each view, not N.
//
// Entries are reference-counted: a job acquires its entry for the
// duration of the run and an eviction only unmaps the container once the
// last in-flight job releases it. That is what makes DELETE /graphs safe
// while requests are in flight — the mapping outlives the registry row,
// never the readers.
type GraphEntry struct {
	name string
	path string
	info graph.CSRFileInfo
	m    *graph.MappedCSR
	// root is the default traversal source (highest out-degree vertex),
	// computed once at registration.
	root graph.VertexID

	reg     *Registry
	refs    int
	evicted bool

	symOnce sync.Once
	sym     *graph.CSR
	trOnce  sync.Once
	tr      *graph.CSR
}

// Name returns the registry name the entry was registered under.
func (e *GraphEntry) Name() string { return e.name }

// Info describes the container, including its ContentHash — the
// graph-content half of the result-cache key.
func (e *GraphEntry) Info() graph.CSRFileInfo { return e.info }

// Root returns the default traversal source.
func (e *GraphEntry) Root() graph.VertexID { return e.root }

// Graph returns the shared read-only CSR. Valid only while the caller
// holds a reference.
func (e *GraphEntry) Graph() *graph.CSR { return e.m.G }

// Sym returns the symmetrized view (built on first use, then shared).
func (e *GraphEntry) Sym() *graph.CSR {
	e.symOnce.Do(func() { e.sym = e.m.G.Symmetrize() })
	return e.sym
}

// Transpose returns the transposed view (built on first use, then shared).
func (e *GraphEntry) Transpose() *graph.CSR {
	e.trOnce.Do(func() { e.tr = e.m.G.Transpose() })
	return e.tr
}

// Release returns the caller's reference. The final release of an evicted
// entry unmaps the container.
func (e *GraphEntry) Release() { e.reg.release(e) }

// GraphInfo is the wire-format description of a registry entry.
type GraphInfo struct {
	Name        string `json:"name"`
	Path        string `json:"path"`
	Vertices    int    `json:"vertices"`
	Edges       int64  `json:"edges"`
	ContentHash string `json:"content_hash"`
	// Mapped reports whether the container is served from a live kernel
	// mapping. False means the graph was decoded onto the heap — the
	// non-unix fallback and every partitioned container land here — so the
	// entry's full footprint counts against process memory, not the page
	// cache. Capacity planning against /graphs must not assume a false
	// entry is cheap.
	Mapped bool `json:"mapped"`
	// Partitioned reports the partitioned container layout (pageable via
	// graph.OpenPartitionedCSR; see DESIGN.md §18).
	Partitioned bool `json:"partitioned"`
	// InFlight is the number of jobs currently holding the entry.
	InFlight int `json:"in_flight"`
}

// Registry owns the set of registered graphs. All methods are safe for
// concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*GraphEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*GraphEntry)}
}

// Register opens the container at path and adds it under name. The open
// validates every checksum, so a corrupt or truncated file is rejected
// here — with an error matching graph.ErrCorrupt — before any job can
// name it. Registering an existing name fails; evict it first.
func (r *Registry) Register(name, path string) (GraphInfo, error) {
	if name == "" {
		return GraphInfo{}, fmt.Errorf("service: graph name must not be empty")
	}
	r.mu.Lock()
	if _, ok := r.entries[name]; ok {
		r.mu.Unlock()
		return GraphInfo{}, fmt.Errorf("service: graph %q: %w", name, errAlreadyRegistered)
	}
	r.mu.Unlock()

	// Open outside the lock: mapping and validating a multi-GB container
	// takes real time and must not stall unrelated lookups.
	m, err := graph.OpenCSRFileMapped(path)
	if err != nil {
		return GraphInfo{}, err
	}
	m.G.Name = name
	e := &GraphEntry{name: name, path: path, info: m.Info, m: m, reg: r,
		root: m.G.LargestOutDegreeVertex()}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		// Lost a registration race for the same name; drop our mapping.
		m.Close()
		return GraphInfo{}, fmt.Errorf("service: graph %q: %w", name, errAlreadyRegistered)
	}
	r.entries[name] = e
	return e.wireInfo(), nil
}

// Acquire returns the named entry with one reference held. Callers must
// Release exactly once.
func (r *Registry) Acquire(name string) (*GraphEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("service: graph %q not registered", name)
	}
	e.refs++
	return e, nil
}

func (r *Registry) release(e *GraphEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.refs--
	if e.evicted && e.refs == 0 {
		e.m.Close()
	}
}

// Evict removes the named entry from the registry. New jobs can no longer
// name it; jobs already holding a reference keep a valid graph until they
// release it, at which point the container is unmapped.
func (r *Registry) Evict(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return fmt.Errorf("service: graph %q not registered", name)
	}
	delete(r.entries, name)
	e.evicted = true
	if e.refs == 0 {
		return e.m.Close()
	}
	return nil
}

// List returns every entry's description, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.wireInfo())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// ResidentBytes sums the CSR footprints of every registered graph.
func (r *Registry) ResidentBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, e := range r.entries {
		total += e.m.G.FootprintBytes()
	}
	return total
}

// MappedCounts splits the registered graphs into kernel-mapped entries
// and heap-resident ones (the non-unix whole-file fallback and decoded
// partitioned containers). The split is surfaced at /statsz so an
// operator can see when "registered" stops meaning "cheap".
func (r *Registry) MappedCounts() (mapped, unmapped int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.m.Mapped() {
			mapped++
		} else {
			unmapped++
		}
	}
	return mapped, unmapped
}

// Close evicts every entry (waiting for nothing: in-flight references
// keep their mappings alive until released).
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, e := range r.entries {
		delete(r.entries, name)
		e.evicted = true
		if e.refs == 0 {
			e.m.Close()
		}
	}
}

// wireInfo renders the entry; callers hold r.mu.
func (e *GraphEntry) wireInfo() GraphInfo {
	return GraphInfo{
		Name:        e.name,
		Path:        e.path,
		Vertices:    e.info.NumVertices,
		Edges:       e.info.NumEdges,
		ContentHash: fmt.Sprintf("%08x", e.info.ContentHash),
		Mapped:      e.m.Mapped(),
		Partitioned: e.info.Partitioned,
		InFlight:    e.refs,
	}
}
