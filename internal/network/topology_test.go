package network

import (
	"fmt"
	"testing"

	"nova/graph"
	"nova/internal/sim"
	"nova/program"
)

func TestParseTopoKind(t *testing.T) {
	cases := map[string]TopoKind{
		"":         TopoCrossbar,
		"crossbar": TopoCrossbar,
		"xbar":     TopoCrossbar,
		"ring":     TopoRing,
		"mesh":     TopoMesh,
		"torus":    TopoTorus,
	}
	for s, want := range cases {
		got, err := ParseTopoKind(s)
		if err != nil || got != want {
			t.Errorf("ParseTopoKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseTopoKind("hypercube"); err == nil {
		t.Error("ParseTopoKind accepted an unknown topology")
	}
	for _, name := range TopoKindNames() {
		k, err := ParseTopoKind(name)
		if err != nil || k.String() != name {
			t.Errorf("name %q does not round-trip: %v, %v", name, k, err)
		}
	}
}

func TestMeshDims(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4}, {9, 3, 3}, {7, 1, 7}, {16, 4, 4},
	}
	for _, c := range cases {
		if w, h := meshDims(c.n); w != c.w || h != c.h {
			t.Errorf("meshDims(%d) = %d×%d, want %d×%d", c.n, w, h, c.w, c.h)
		}
	}
}

// pathNames renders a route as link names for readable assertions.
func pathNames(tp *topology, s, d int) []string {
	var out []string
	for _, li := range tp.route(s, d) {
		out = append(out, tp.names[li])
	}
	return out
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRingRouting(t *testing.T) {
	tp := buildTopology(TopoRing, 4)
	cases := []struct {
		s, d int
		want []string
	}{
		{0, 1, []string{"ring0_cw"}},
		{0, 3, []string{"ring0_ccw"}},
		// Equidistant: ties go clockwise.
		{0, 2, []string{"ring0_cw", "ring1_cw"}},
		{3, 1, []string{"ring3_cw", "ring0_cw"}},
		{2, 1, []string{"ring2_ccw"}},
	}
	for _, c := range cases {
		if got := pathNames(tp, c.s, c.d); !eqStrings(got, c.want) {
			t.Errorf("ring route %d→%d = %v, want %v", c.s, c.d, got, c.want)
		}
	}
	if tp.maxHops != 2 {
		t.Errorf("4-ring diameter = %d, want 2", tp.maxHops)
	}
}

func TestMeshXYRouting(t *testing.T) {
	// 2×3 grid: node g is (x=g%2, y=g/2).
	tp := buildTopology(TopoMesh, 6)
	cases := []struct {
		s, d int
		want []string
	}{
		// X fully first, then Y.
		{0, 5, []string{"mesh0_e", "mesh1_n", "mesh3_n"}},
		{5, 0, []string{"mesh5_w", "mesh4_s", "mesh2_s"}},
		{4, 1, []string{"mesh4_e", "mesh5_s", "mesh3_s"}},
		{0, 1, []string{"mesh0_e"}},
		{2, 0, []string{"mesh2_s"}},
	}
	for _, c := range cases {
		if got := pathNames(tp, c.s, c.d); !eqStrings(got, c.want) {
			t.Errorf("mesh route %d→%d = %v, want %v", c.s, c.d, got, c.want)
		}
	}
	if tp.maxHops != 3 {
		t.Errorf("2×3 mesh diameter = %d, want 3", tp.maxHops)
	}
}

func TestTorusWrapRouting(t *testing.T) {
	// 3×3 grid: wrap links make distance-2 moves one hop the other way.
	tp := buildTopology(TopoTorus, 9)
	cases := []struct {
		s, d int
		want []string
	}{
		{0, 2, []string{"torus0_w"}}, // x 0→2 wraps west in one hop
		{0, 6, []string{"torus0_s"}}, // y 0→2 wraps south in one hop
		{0, 1, []string{"torus0_e"}},
		{8, 0, []string{"torus8_e", "torus6_n"}}, // wrap in both dimensions
	}
	for _, c := range cases {
		if got := pathNames(tp, c.s, c.d); !eqStrings(got, c.want) {
			t.Errorf("torus route %d→%d = %v, want %v", c.s, c.d, got, c.want)
		}
	}
	if tp.maxHops != 2 {
		t.Errorf("3×3 torus diameter = %d, want 2", tp.maxHops)
	}
	// A prime-sized torus degenerates to a ring in the Y dimension: no X
	// links at all, wrap still works.
	rp := buildTopology(TopoTorus, 5)
	if got := pathNames(rp, 0, 4); !eqStrings(got, []string{"torus0_s"}) {
		t.Errorf("1×5 torus route 0→4 = %v, want wrap south", got)
	}
	for _, name := range rp.names {
		if name[len(name)-1] == 'e' || name[len(name)-1] == 'w' {
			t.Errorf("1×5 torus has an X link %q", name)
		}
	}
}

func TestCrossbarRouteShape(t *testing.T) {
	tp := buildTopology(TopoCrossbar, 4)
	if got := pathNames(tp, 1, 3); !eqStrings(got, []string{"xbar_out1", "xbar_in3"}) {
		t.Errorf("crossbar route 1→3 = %v", got)
	}
	// The two port stages sit inside one switch: a single charged hop.
	if tp.pathHops(1, 3) != 1 {
		t.Errorf("crossbar pathHops = %d, want 1", tp.pathHops(1, 3))
	}
}

func ringFabric(eng *sim.Engine, gpns int) *Hierarchical {
	return NewFabric(SharedEngines(eng, gpns), 1, FabricConfig{
		P2P:      DefaultP2PConfig(),
		Topology: TopoRing,
		Link:     LinkConfig{BytesPerCycle: 1, Latency: 10},
	})
}

func TestRingSingleHopTiming(t *testing.T) {
	eng := sim.NewEngine()
	f := ringFabric(eng, 4)
	var at sim.Ticks
	f.Send(0, 1, 8, sim.HandlerFunc(func() { at = eng.Now() }))
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// 8 bytes at 1 B/cy = 8 cycles of serialization + 10 cycles latency.
	if at != 18 {
		t.Fatalf("delivered at %d, want 18", at)
	}
	st := f.Stats()
	if st.InterMessages != 1 || st.HopsSum != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRingMultiHopTiming(t *testing.T) {
	eng := sim.NewEngine()
	f := ringFabric(eng, 4)
	var at sim.Ticks
	f.Send(0, 2, 8, sim.HandlerFunc(func() { at = eng.Now() }))
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// Hop 1 finishes at 8; hop 2 starts after 10 cycles of propagation,
	// serializes 8 more (26), plus the final 10-cycle delivery latency.
	if at != 36 {
		t.Fatalf("delivered at %d, want 36", at)
	}
	st := f.Stats()
	if st.HopsSum != 2 || st.InterMessages != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRingLookaheadBound(t *testing.T) {
	eng := sim.NewEngine()
	f := ringFabric(eng, 4)
	if f.Lookahead() != 10 {
		t.Fatalf("lookahead = %d, want the per-hop latency 10", f.Lookahead())
	}
	// No delivery may undercut the lookahead: nearest neighbor, 1 byte.
	var at sim.Ticks
	f.Send(0, 1, 1, sim.HandlerFunc(func() { at = eng.Now() }))
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if at < f.Lookahead() {
		t.Fatalf("delivered at %d, inside the lookahead %d", at, f.Lookahead())
	}
}

func TestRoutedExchangeDelivers(t *testing.T) {
	engines := []*sim.Engine{sim.NewEngine(), sim.NewEngine(), sim.NewEngine(), sim.NewEngine()}
	f := NewFabric(engines, 1, FabricConfig{
		P2P:      DefaultP2PConfig(),
		Topology: TopoRing,
		Link:     LinkConfig{BytesPerCycle: 1, Latency: 10},
	})
	var at sim.Ticks
	f.Send(0, 2, 8, sim.HandlerFunc(func() { at = engines[2].Now() }))
	n, err := f.Exchange()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Exchange delivered %d messages, want 1", n)
	}
	if err := engines[2].RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// Same arithmetic as the shared-engine multi-hop test.
	if at != 36 {
		t.Fatalf("delivered at %d, want 36", at)
	}
}

// TestConservationInvariant drives an identical synthetic load through
// every topology × coalescing × engine-sharing combination and asserts the
// fabric's conservation law: Messages + Coalesced == Send calls. The
// split between the two varies with topology timing; the sum may not.
func TestConservationInvariant(t *testing.T) {
	const gpns, pesPerGPN, vertices = 4, 2, 64
	kinds := []TopoKind{TopoCrossbar, TopoRing, TopoMesh, TopoTorus}
	for _, kind := range kinds {
		for _, window := range []sim.Ticks{0, 8} {
			for _, shared := range []bool{true, false} {
				name := fmt.Sprintf("%v/window%d/shared=%v", kind, window, shared)
				var engines []*sim.Engine
				if shared {
					engines = SharedEngines(sim.NewEngine(), gpns)
				} else {
					engines = make([]*sim.Engine, gpns)
					for i := range engines {
						engines[i] = sim.NewEngine()
					}
				}
				f := NewFabric(engines, pesPerGPN, FabricConfig{
					P2P:      DefaultP2PConfig(),
					Crossbar: DefaultCrossbarConfig(),
					Topology: kind,
					Coalesce: CoalesceConfig{Window: window},
					Vertices: vertices,
				})
				f.SetMerge(func(a, b program.Prop) program.Prop {
					if b < a {
						return b
					}
					return a
				})
				sends := 0
				for src := 0; src < gpns*pesPerGPN; src++ {
					for dst := 0; dst < gpns*pesPerGPN; dst++ {
						if src/pesPerGPN == dst/pesPerGPN {
							continue
						}
						for k := 0; k < 3; k++ {
							b := &testBatch{msgs: []program.Message{
								{Dst: graph.VertexID((dst + k) % vertices), Delta: program.Prop(src)},
								{Dst: graph.VertexID((dst + k + 7) % vertices), Delta: program.Prop(k)},
							}}
							f.Send(src, dst, 8*len(b.msgs), b)
							sends++
						}
					}
				}
				// Drain: run every engine (flush timers live on the
				// senders), exchange buffered messages, run destinations.
				for round := 0; round < 4; round++ {
					for _, e := range engines {
						if err := e.RunUntilQuiet(0); err != nil {
							t.Fatalf("%s: %v", name, err)
						}
					}
					if _, err := f.Exchange(); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
				}
				f.Finalize()
				st := f.Stats()
				if got := st.Messages + st.Coalesced; got != uint64(sends) {
					t.Errorf("%s: messages %d + coalesced %d = %d, want %d sends",
						name, st.Messages, st.Coalesced, got, sends)
				}
				if window == 0 && st.Coalesced != 0 {
					t.Errorf("%s: coalesced %d batches with coalescing off", name, st.Coalesced)
				}
				if st.InterMessages != st.Messages {
					t.Errorf("%s: inter %d != messages %d on an all-remote load", name, st.InterMessages, st.Messages)
				}
				if st.HopsSum < st.InterMessages {
					t.Errorf("%s: hops %d < messages %d", name, st.HopsSum, st.InterMessages)
				}
			}
		}
	}
}

// TestFinalizeCarriesNewFields checks that the dump-time totals include
// the hop and coalescing counters contributed by every GPN, not just
// gpn0 — the shard-summing path of Finalize.
func TestFinalizeCarriesNewFields(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(SharedEngines(eng, 4), 1, FabricConfig{
		P2P:      DefaultP2PConfig(),
		Topology: TopoRing,
		Link:     LinkConfig{BytesPerCycle: 1, Latency: 10},
		Coalesce: CoalesceConfig{Window: 4},
		Vertices: 8,
	})
	f.SetMerge(func(a, b program.Prop) program.Prop { return a + b })
	// Two sources in different GPNs, two batches each to the same remote
	// destination: each source coalesces one batch and merges one update.
	for _, src := range []int{0, 2} {
		dst := (src + 1) % 4
		for k := 0; k < 2; k++ {
			b := &testBatch{msgs: []program.Message{{Dst: 5, Delta: 1}}}
			f.Send(src, dst, 8, b)
		}
	}
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	f.Finalize()
	st := f.Stats()
	if st.Coalesced != 2 || st.MergedUpdates != 2 {
		t.Fatalf("coalesced=%d merged=%d, want 2/2 (both GPNs summed)", st.Coalesced, st.MergedUpdates)
	}
	if st.BytesSaved != 16 {
		t.Fatalf("bytes_saved=%d, want 16", st.BytesSaved)
	}
	if st.Messages != 2 || st.InterMessages != 2 || st.HopsSum != 2 {
		t.Fatalf("stats = %+v", st)
	}
}
