package network_test

import (
	"fmt"

	"nova/internal/network"
	"nova/internal/sim"
)

// A fabric is built from one engine per GPN (or one shared engine, as
// here) plus a topology. Sending between PEs of different GPNs routes
// hop by hop: on a 2x2 mesh the diagonal costs two hops, and the traffic
// counters record exactly what crossed the inter-GPN fabric.
func ExampleNewFabric() {
	eng := sim.NewEngine()
	fab := network.NewFabric(network.SharedEngines(eng, 4), 1, network.FabricConfig{
		P2P:      network.DefaultP2PConfig(),
		Crossbar: network.DefaultCrossbarConfig(),
		Link:     network.DefaultLinkConfig(),
		Topology: network.TopoMesh,
	})

	delivered := false
	fab.Send(0, 3, 16, sim.HandlerFunc(func() { delivered = true }))
	if err := eng.RunUntilQuiet(0); err != nil {
		fmt.Println(err)
		return
	}
	fab.Finalize()

	st := fab.Stats()
	fmt.Printf("delivered=%v inter_messages=%d hops=%d\n",
		delivered, st.InterMessages, st.HopsSum)
	// Output: delivered=true inter_messages=1 hops=2
}
