package network

import "fmt"

// TopoKind selects the inter-GPN topology of the hierarchical fabric.
// The crossbar is Table II's switch; ring, mesh and torus trade its
// one-hop bisection for cheaper per-node wiring, which is exactly the
// trade the per-link utilization and hop-count stats quantify.
type TopoKind int

const (
	// TopoCrossbar is a full crossbar: every GPN has one output and one
	// input port, any pair connects in a single switch traversal.
	TopoCrossbar TopoKind = iota
	// TopoRing is a bidirectional ring; messages take the shorter
	// direction (ties go clockwise).
	TopoRing
	// TopoMesh is a 2D mesh with XY dimension-ordered routing (X fully
	// resolved before Y — deadlock-free and deterministic).
	TopoMesh
	// TopoTorus is a 2D torus: the mesh plus wrap-around links, with the
	// shorter wrap chosen per dimension (ties go in the +direction).
	TopoTorus
)

// Valid reports whether k names a known topology.
func (k TopoKind) Valid() bool { return k >= TopoCrossbar && k <= TopoTorus }

func (k TopoKind) String() string {
	switch k {
	case TopoCrossbar:
		return "crossbar"
	case TopoRing:
		return "ring"
	case TopoMesh:
		return "mesh"
	case TopoTorus:
		return "torus"
	}
	return fmt.Sprintf("TopoKind(%d)", int(k))
}

// ParseTopoKind maps a topology name to its kind. The empty string is
// the crossbar (the historical default).
func ParseTopoKind(s string) (TopoKind, error) {
	switch s {
	case "", "crossbar", "xbar":
		return TopoCrossbar, nil
	case "ring":
		return TopoRing, nil
	case "mesh":
		return TopoMesh, nil
	case "torus":
		return TopoTorus, nil
	}
	return 0, fmt.Errorf("network: unknown topology %q (want crossbar, ring, mesh, or torus)", s)
}

// TopoKindNames lists the accepted topology names, for CLI help text.
func TopoKindNames() []string { return []string{"crossbar", "ring", "mesh", "torus"} }

// topology is a precomputed routing plan over n GPNs: a set of directed
// links (identified by dense int32 IDs into the fabric's link array) and,
// for every ordered GPN pair, the fixed link sequence a message follows.
// Routes are deterministic functions of (src, dst) alone, so they can be
// recomputed at Exchange without carrying state in the outbox.
type topology struct {
	kind TopoKind
	n    int
	// w×h are the grid dimensions (mesh/torus only).
	w, h int
	// names[i] labels link i for the stats tree.
	names []string
	// routes is the flattened route table: the path for (s, d) is
	// routes[off[s*n+d]:off[s*n+d+1]]. Diagonal entries are empty (local
	// traffic never touches the inter-GPN fabric).
	routes []int32
	off    []int32
	// maxHops is the network diameter in hops (1 for the crossbar).
	maxHops int
}

// route returns the link sequence from GPN s to GPN d (s != d). The
// returned slice aliases the precomputed table; callers must not mutate.
func (t *topology) route(s, d int) []int32 {
	i := s*t.n + d
	return t.routes[t.off[i]:t.off[i+1]]
}

// pathHops returns the hop count charged to a message from s to d: the
// number of inter-GPN channel traversals. The crossbar counts as one hop
// regardless of its two port stages.
func (t *topology) pathHops(s, d int) int {
	if t.kind == TopoCrossbar {
		return 1
	}
	i := s*t.n + d
	return int(t.off[i+1] - t.off[i])
}

// meshDims factors n into the squarest w×h grid with w ≤ h. Prime n
// degenerates to a 1×n chain (mesh) or ring (torus), which is still a
// valid routed topology.
func meshDims(n int) (w, h int) {
	w = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			w = d
		}
	}
	return w, n / w
}

// buildTopology precomputes links and routes for kind over n GPNs.
func buildTopology(kind TopoKind, n int) *topology {
	t := &topology{kind: kind, n: n}
	paths := make([][]int32, n*n)
	switch kind {
	case TopoCrossbar:
		// Link IDs: 0..n-1 are per-GPN output ports, n..2n-1 input ports.
		for g := 0; g < n; g++ {
			t.names = append(t.names, fmt.Sprintf("xbar_out%d", g))
		}
		for g := 0; g < n; g++ {
			t.names = append(t.names, fmt.Sprintf("xbar_in%d", g))
		}
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s != d {
					paths[s*n+d] = []int32{int32(s), int32(n + d)}
				}
			}
		}
		t.maxHops = 1
	case TopoRing:
		// Link IDs: 2g is GPN g's clockwise link (g → g+1 mod n), 2g+1
		// its counter-clockwise link (g → g-1 mod n).
		if n > 1 {
			for g := 0; g < n; g++ {
				t.names = append(t.names, fmt.Sprintf("ring%d_cw", g), fmt.Sprintf("ring%d_ccw", g))
			}
		}
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				cw, ccw := (d-s+n)%n, (s-d+n)%n
				var r []int32
				cur := s
				if cw <= ccw {
					for i := 0; i < cw; i++ {
						r = append(r, int32(2*cur))
						cur = (cur + 1) % n
					}
				} else {
					for i := 0; i < ccw; i++ {
						r = append(r, int32(2*cur+1))
						cur = (cur - 1 + n) % n
					}
				}
				paths[s*n+d] = r
				if len(r) > t.maxHops {
					t.maxHops = len(r)
				}
			}
		}
	case TopoMesh, TopoTorus:
		t.w, t.h = meshDims(n)
		t.buildGrid(paths, kind == TopoTorus)
	default:
		panic(fmt.Sprintf("network: unknown topology kind %d", int(kind)))
	}
	t.off = make([]int32, n*n+1)
	for i, p := range paths {
		t.off[i+1] = t.off[i] + int32(len(p))
		t.routes = append(t.routes, p...)
	}
	return t
}

// grid directions for mesh/torus links, in link-naming order.
const (
	dirEast  = iota // +x
	dirWest         // -x
	dirNorth        // +y
	dirSouth        // -y
)

var dirSuffix = [4]string{"e", "w", "n", "s"}

// buildGrid creates the directed links of a w×h grid (with wrap-around
// when torus) and the XY dimension-ordered routes.
func (t *topology) buildGrid(paths [][]int32, torus bool) {
	w, h, n := t.w, t.h, t.n
	// dirLink[g][dir] is the link ID leaving node g in dir, -1 if absent.
	dirLink := make([][4]int32, n)
	for g := range dirLink {
		dirLink[g] = [4]int32{-1, -1, -1, -1}
	}
	neighbor := func(g, dir int) int {
		x, y := g%w, g/w
		switch dir {
		case dirEast:
			x++
		case dirWest:
			x--
		case dirNorth:
			y++
		case dirSouth:
			y--
		}
		if torus {
			// A dimension of size 1 has no links (the wrap would be a
			// self-loop).
			if dir == dirEast || dir == dirWest {
				if w == 1 {
					return -1
				}
				x = (x + w) % w
			} else {
				if h == 1 {
					return -1
				}
				y = (y + h) % h
			}
		} else if x < 0 || x >= w || y < 0 || y >= h {
			return -1
		}
		return y*w + x
	}
	prefix := "mesh"
	if torus {
		prefix = "torus"
	}
	for g := 0; g < n; g++ {
		for dir := 0; dir < 4; dir++ {
			if neighbor(g, dir) < 0 {
				continue
			}
			dirLink[g][dir] = int32(len(t.names))
			t.names = append(t.names, fmt.Sprintf("%s%d_%s", prefix, g, dirSuffix[dir]))
		}
	}
	// steps returns the per-dimension movement plan: direction and count.
	steps := func(from, to, size, plus, minus int) (int, int) {
		if from == to {
			return plus, 0
		}
		if !torus {
			if to > from {
				return plus, to - from
			}
			return minus, from - to
		}
		p := (to - from + size) % size
		if q := size - p; q < p {
			return minus, q
		}
		return plus, p
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			var r []int32
			cur := s
			// X fully first, then Y: dimension-ordered routing.
			dir, cnt := steps(cur%w, d%w, w, dirEast, dirWest)
			for i := 0; i < cnt; i++ {
				r = append(r, dirLink[cur][dir])
				cur = neighbor(cur, dir)
			}
			dir, cnt = steps(cur/w, d/w, h, dirNorth, dirSouth)
			for i := 0; i < cnt; i++ {
				r = append(r, dirLink[cur][dir])
				cur = neighbor(cur, dir)
			}
			paths[s*n+d] = r
			if len(r) > t.maxHops {
				t.maxHops = len(r)
			}
		}
	}
}
