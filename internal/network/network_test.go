package network

import (
	"testing"

	"nova/internal/sim"
)

func TestHierarchicalLocalDelivery(t *testing.T) {
	eng := sim.NewEngine()
	f := NewHierarchical(SharedEngines(eng, 2), 4, P2PConfig{BytesPerCycle: 1, Latency: 10}, DefaultCrossbarConfig())
	var at sim.Ticks
	f.Send(0, 1, 8, sim.HandlerFunc(func() { at = eng.Now() }))
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// 8 bytes at 1 B/cy = 8 service + 10 latency.
	if at != 18 {
		t.Fatalf("delivered at %d, want 18", at)
	}
	st := f.Stats()
	if st.LocalBytes != 8 || st.InterBytes != 0 || st.Messages != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHierarchicalInterGPN(t *testing.T) {
	eng := sim.NewEngine()
	f := NewHierarchical(SharedEngines(eng, 2), 4, DefaultP2PConfig(), CrossbarConfig{BytesPerCycle: 2, Latency: 50})
	var at sim.Ticks
	// PE 0 (GPN 0) to PE 5 (GPN 1).
	f.Send(0, 5, 8, sim.HandlerFunc(func() { at = eng.Now() }))
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// 8 B at 2 B/cy through two store-and-forward port stages (4 + 4)
	// plus 50 cycles of switch latency.
	if at != 58 {
		t.Fatalf("delivered at %d, want 58", at)
	}
	if st := f.Stats(); st.InterBytes != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHierarchicalLinkSerialization(t *testing.T) {
	eng := sim.NewEngine()
	f := NewHierarchical(SharedEngines(eng, 1), 2, P2PConfig{BytesPerCycle: 1, Latency: 0}, DefaultCrossbarConfig())
	var last sim.Ticks
	for i := 0; i < 10; i++ {
		f.Send(0, 1, 4, sim.HandlerFunc(func() { last = eng.Now() }))
	}
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// 10 transfers of 4 cycles serialize on one link.
	if last != 40 {
		t.Fatalf("last delivery %d, want 40", last)
	}
}

func TestHierarchicalDistinctLinksParallel(t *testing.T) {
	eng := sim.NewEngine()
	f := NewHierarchical(SharedEngines(eng, 1), 4, P2PConfig{BytesPerCycle: 1, Latency: 0}, DefaultCrossbarConfig())
	var a, b sim.Ticks
	f.Send(0, 1, 4, sim.HandlerFunc(func() { a = eng.Now() }))
	f.Send(2, 3, 4, sim.HandlerFunc(func() { b = eng.Now() }))
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if a != 4 || b != 4 {
		t.Fatalf("parallel links serialized: %d, %d", a, b)
	}
}

func TestCrossbarPortContention(t *testing.T) {
	eng := sim.NewEngine()
	f := NewHierarchical(SharedEngines(eng, 3), 1, DefaultP2PConfig(), CrossbarConfig{BytesPerCycle: 1, Latency: 0})
	var a, b sim.Ticks
	// Two different sources target the same destination GPN: the input
	// port serializes them.
	f.Send(0, 2, 4, sim.HandlerFunc(func() { a = eng.Now() }))
	f.Send(1, 2, 4, sim.HandlerFunc(func() { b = eng.Now() }))
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// Message A: out-port 0..4, in-port 4..8. Message B rides its own
	// out-port 0..4 but queues behind A on the shared input port: 8..12.
	if a != 8 || b != 12 {
		t.Fatalf("input port contention not modeled: %d, %d", a, b)
	}
}

func TestIdealFabric(t *testing.T) {
	eng := sim.NewEngine()
	f := NewIdeal(SharedEngines(eng, 1), 8, 5)
	var times []sim.Ticks
	for i := 0; i < 100; i++ {
		f.Send(0, 1, 1<<20, sim.HandlerFunc(func() { times = append(times, eng.Now()) }))
	}
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	for _, at := range times {
		if at != 5 {
			t.Fatalf("ideal fabric delayed delivery to %d", at)
		}
	}
	if f.Stats().Messages != 100 {
		t.Fatalf("messages = %d", f.Stats().Messages)
	}
}

func TestGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry did not panic")
		}
	}()
	NewHierarchical(nil, 8, DefaultP2PConfig(), DefaultCrossbarConfig())
}

func TestSubCycleMessagesUseFractionalBandwidth(t *testing.T) {
	// 8-byte messages on a 30 B/cy crossbar port: 30 of them must fit in
	// ~8 cycles of port time, not 30 cycles.
	eng := sim.NewEngine()
	f := NewHierarchical(SharedEngines(eng, 2), 1, DefaultP2PConfig(), CrossbarConfig{BytesPerCycle: 30, Latency: 0})
	var last sim.Ticks
	for i := 0; i < 30; i++ {
		f.Send(0, 1, 8, sim.HandlerFunc(func() { last = eng.Now() }))
	}
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// 240 bytes through two 30 B/cy stages ≈ 8+ cycles, far below 30.
	if last > 12 {
		t.Fatalf("30 sub-cycle messages took %d cycles; fractional bandwidth lost", last)
	}
}

// TestHierarchicalExchangePastArrival drives the cross-shard path into a
// lookahead violation: the destination engine has already advanced past
// the message's arrival tick when the barrier delivers it. Exchange must
// return an error instead of silently scheduling into the past.
func TestHierarchicalExchangePastArrival(t *testing.T) {
	engines := []*sim.Engine{sim.NewEngine(), sim.NewEngine()}
	f := NewHierarchical(engines, 4, DefaultP2PConfig(), CrossbarConfig{BytesPerCycle: 2, Latency: 50})
	// PE 0 (GPN 0) to PE 5 (GPN 1): buffered in GPN 0's outbox, arrival
	// around tick 58 (2x4 cycles of port service + 50 switch latency).
	f.Send(0, 5, 8, sim.HandlerFunc(func() {}))
	// Simulate an unsound window: the destination engine free-runs far
	// beyond the arrival tick before the barrier exchanges messages.
	engines[1].ScheduleFuncAt(500, func() {})
	if err := engines[1].RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exchange(); err == nil {
		t.Fatal("Exchange scheduled a cross-shard message into the destination's past; want a lookahead-violation error")
	}
}

// TestHierarchicalExchangeDelivers runs the cross-shard path the sound
// way: Exchange at the barrier schedules the buffered message on the
// destination engine at the same tick the shared-engine path would use.
func TestHierarchicalExchangeDelivers(t *testing.T) {
	engines := []*sim.Engine{sim.NewEngine(), sim.NewEngine()}
	f := NewHierarchical(engines, 4, DefaultP2PConfig(), CrossbarConfig{BytesPerCycle: 2, Latency: 50})
	var at sim.Ticks
	f.Send(0, 5, 8, sim.HandlerFunc(func() { at = engines[1].Now() }))
	n, err := f.Exchange()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Exchange delivered %d messages, want 1", n)
	}
	if err := engines[1].RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// Same arithmetic as the shared-engine inter-GPN test: 4+4 cycles of
	// port service plus 50 cycles of switch latency.
	if at != 58 {
		t.Fatalf("delivered at %d, want 58", at)
	}
	if st := f.Stats(); st.InterBytes != 8 || st.Messages != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
