package network

import (
	"testing"

	"nova/internal/sim"
)

func TestHierarchicalLocalDelivery(t *testing.T) {
	eng := sim.NewEngine()
	f := NewHierarchical(eng, 2, 4, P2PConfig{BytesPerCycle: 1, Latency: 10}, DefaultCrossbarConfig())
	var at sim.Ticks
	f.Send(0, 1, 8, sim.HandlerFunc(func() { at = eng.Now() }))
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// 8 bytes at 1 B/cy = 8 service + 10 latency.
	if at != 18 {
		t.Fatalf("delivered at %d, want 18", at)
	}
	st := f.Stats()
	if st.LocalBytes != 8 || st.InterBytes != 0 || st.Messages != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHierarchicalInterGPN(t *testing.T) {
	eng := sim.NewEngine()
	f := NewHierarchical(eng, 2, 4, DefaultP2PConfig(), CrossbarConfig{BytesPerCycle: 2, Latency: 50})
	var at sim.Ticks
	// PE 0 (GPN 0) to PE 5 (GPN 1).
	f.Send(0, 5, 8, sim.HandlerFunc(func() { at = eng.Now() }))
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// 8 B at 2 B/cy through two store-and-forward port stages (4 + 4)
	// plus 50 cycles of switch latency.
	if at != 58 {
		t.Fatalf("delivered at %d, want 58", at)
	}
	if st := f.Stats(); st.InterBytes != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHierarchicalLinkSerialization(t *testing.T) {
	eng := sim.NewEngine()
	f := NewHierarchical(eng, 1, 2, P2PConfig{BytesPerCycle: 1, Latency: 0}, DefaultCrossbarConfig())
	var last sim.Ticks
	for i := 0; i < 10; i++ {
		f.Send(0, 1, 4, sim.HandlerFunc(func() { last = eng.Now() }))
	}
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// 10 transfers of 4 cycles serialize on one link.
	if last != 40 {
		t.Fatalf("last delivery %d, want 40", last)
	}
}

func TestHierarchicalDistinctLinksParallel(t *testing.T) {
	eng := sim.NewEngine()
	f := NewHierarchical(eng, 1, 4, P2PConfig{BytesPerCycle: 1, Latency: 0}, DefaultCrossbarConfig())
	var a, b sim.Ticks
	f.Send(0, 1, 4, sim.HandlerFunc(func() { a = eng.Now() }))
	f.Send(2, 3, 4, sim.HandlerFunc(func() { b = eng.Now() }))
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if a != 4 || b != 4 {
		t.Fatalf("parallel links serialized: %d, %d", a, b)
	}
}

func TestCrossbarPortContention(t *testing.T) {
	eng := sim.NewEngine()
	f := NewHierarchical(eng, 3, 1, DefaultP2PConfig(), CrossbarConfig{BytesPerCycle: 1, Latency: 0})
	var a, b sim.Ticks
	// Two different sources target the same destination GPN: the input
	// port serializes them.
	f.Send(0, 2, 4, sim.HandlerFunc(func() { a = eng.Now() }))
	f.Send(1, 2, 4, sim.HandlerFunc(func() { b = eng.Now() }))
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// Message A: out-port 0..4, in-port 4..8. Message B rides its own
	// out-port 0..4 but queues behind A on the shared input port: 8..12.
	if a != 8 || b != 12 {
		t.Fatalf("input port contention not modeled: %d, %d", a, b)
	}
}

func TestIdealFabric(t *testing.T) {
	eng := sim.NewEngine()
	f := NewIdeal(eng, 5)
	var times []sim.Ticks
	for i := 0; i < 100; i++ {
		f.Send(0, 1, 1<<20, sim.HandlerFunc(func() { times = append(times, eng.Now()) }))
	}
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	for _, at := range times {
		if at != 5 {
			t.Fatalf("ideal fabric delayed delivery to %d", at)
		}
	}
	if f.Stats().Messages != 100 {
		t.Fatalf("messages = %d", f.Stats().Messages)
	}
}

func TestGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry did not panic")
		}
	}()
	NewHierarchical(sim.NewEngine(), 0, 8, DefaultP2PConfig(), DefaultCrossbarConfig())
}

func TestSubCycleMessagesUseFractionalBandwidth(t *testing.T) {
	// 8-byte messages on a 30 B/cy crossbar port: 30 of them must fit in
	// ~8 cycles of port time, not 30 cycles.
	eng := sim.NewEngine()
	f := NewHierarchical(eng, 2, 1, DefaultP2PConfig(), CrossbarConfig{BytesPerCycle: 30, Latency: 0})
	var last sim.Ticks
	for i := 0; i < 30; i++ {
		f.Send(0, 1, 8, sim.HandlerFunc(func() { last = eng.Now() }))
	}
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// 240 bytes through two 30 B/cy stages ≈ 8+ cycles, far below 30.
	if last > 12 {
		t.Fatalf("30 sub-cycle messages took %d cycles; fractional bandwidth lost", last)
	}
}
