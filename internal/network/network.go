// Package network models the two interconnect levels of NOVA's system
// architecture (Section IV-C): the 8×8 point-to-point electrical network
// between PEs inside a GPN, and a pluggable inter-GPN topology — the
// paper's crossbar switch, or a ring / 2D mesh / 2D torus with
// dimension-ordered hop-by-hop routing.
//
// The paper's balance argument is quantitative: per-GPN message traffic is
// bounded by edge-memory bandwidth, and the fabric must absorb it without
// becoming the bottleneck. These models therefore charge every message's
// bytes against per-link (or per-port) bandwidth and add latency per
// traversal, which is exactly the accounting the paper's Figure 9c
// experiment needs — and the per-link utilization and hop-count stats say
// *where* a cheaper topology runs out of bisection.
//
// The fabric is also the cross-shard boundary of the sharded simulator:
// each GPN runs on its own engine, intra-GPN traffic stays on the sender's
// engine, and inter-GPN traffic is buffered in a per-source-GPN outbox
// until the cluster's window barrier calls Exchange. Lookahead declares
// the minimum cross-engine latency that makes the windows sound: every
// route has at least one hop, and every hop charges at least the link
// latency, so lookahead = (min per-hop latency) × (min hop count = 1).
// All per-GPN counters are written only by their owning shard (or by
// Exchange, which runs single-threaded between windows); a route's first
// link belongs to the sending GPN and later links are only reserved at
// Exchange or on a shared engine, so the hot path needs no locks.
// Finalize folds the per-GPN accumulators into machine-wide totals at
// dump time.
package network

import (
	"fmt"

	"nova/internal/sim"
	"nova/internal/stats"
)

// Fabric delivers messages between PEs, identified by global PE index.
type Fabric interface {
	// Send models a transfer of bytes from src to dst and schedules
	// deliver at arrival time. deliver is a sim.Handler so senders can
	// reuse pre-allocated delivery objects (no per-message allocation).
	// When src and dst live on different engines the delivery is
	// buffered until the next Exchange. Send must be called from the
	// goroutine running src's engine.
	Send(src, dst int, bytes int, deliver sim.Handler)
	// Lookahead is the minimum latency of any cross-engine message, in
	// ticks — the conservative window bound. Zero means the fabric
	// cannot span engines.
	Lookahead() sim.Ticks
	// Exchange schedules every buffered cross-engine message on its
	// destination engine, iterating source GPNs in ascending order (the
	// shard-merge determinism rule). It must run single-threaded with
	// all engines stopped at a window barrier. It returns the number of
	// messages delivered, and errors if a message would arrive in a
	// destination's past — a lookahead violation, never reordered
	// silently.
	Exchange() (int, error)
	// Stats returns accumulated traffic counters.
	Stats() Stats
	// Finalize folds per-GPN accumulators into the dump-time totals.
	// Call once after the simulation, before dumping stats.
	Finalize()
	// RegisterStats registers the fabric's counters and derived
	// utilizations under g.
	RegisterStats(g *stats.Group)
}

// Stats counts fabric traffic. The conservation invariant is
// Messages + Coalesced == Send calls: every batch offered to the fabric
// either traverses it as its own message or is absorbed into one that
// does.
type Stats struct {
	Messages   uint64
	Bytes      uint64
	LocalBytes uint64 // bytes that stayed within one GPN
	InterBytes uint64 // bytes that crossed the inter-GPN fabric
	// InterMessages counts messages that traversed the inter-GPN fabric
	// (after coalescing — the denominator of the average hop count).
	InterMessages uint64
	// Coalesced counts message batches absorbed into a buffered batch
	// still waiting for link bandwidth, instead of traversing the fabric
	// as their own message.
	Coalesced uint64
	// MergedUpdates counts same-destination-vertex updates folded into an
	// already-buffered update by the program's delta-merge function.
	MergedUpdates uint64
	// BytesSaved is payload the fabric never carried thanks to merging.
	BytesSaved uint64
	// HopsSum totals hop counts over inter-GPN messages.
	HopsSum uint64
}

func (s *Stats) add(o Stats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.LocalBytes += o.LocalBytes
	s.InterBytes += o.InterBytes
	s.InterMessages += o.InterMessages
	s.Coalesced += o.Coalesced
	s.MergedUpdates += o.MergedUpdates
	s.BytesSaved += o.BytesSaved
	s.HopsSum += o.HopsSum
}

// link tracks occupancy in fractional cycles so sub-cycle transfers (an
// 8-byte message on a 30 B/cycle port) are charged their true bandwidth
// cost rather than a whole cycle.
type link struct {
	nextFree float64
}

// reserve books a transfer on the link and returns its finish time in
// fractional cycles.
func (l *link) reserve(now float64, bytes int, bytesPerCycle float64) float64 {
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	l.nextFree = start + float64(bytes)/bytesPerCycle
	return l.nextFree
}

func (l *link) transfer(eng *sim.Engine, bytes int, bytesPerCycle float64, latency sim.Ticks, deliver sim.Handler) {
	done := l.reserve(float64(eng.Now()), bytes, bytesPerCycle)
	eng.ScheduleAt(sim.Ticks(done+0.999999)+latency, deliver)
}

// P2PConfig describes the intra-GPN point-to-point network.
type P2PConfig struct {
	// BytesPerCycle is per-link bandwidth (1.2 GB/s at 2 GHz = 0.6 B/cy).
	BytesPerCycle float64
	// Latency is the per-hop latency in cycles.
	Latency sim.Ticks
}

// DefaultP2PConfig matches Table II: 1.2 GB/s per link at a 2 GHz clock.
func DefaultP2PConfig() P2PConfig {
	return P2PConfig{BytesPerCycle: 0.6, Latency: 12}
}

// CrossbarConfig describes the inter-GPN switch.
type CrossbarConfig struct {
	// BytesPerCycle is per-port bandwidth (60 GB/s at 2 GHz = 30 B/cy).
	BytesPerCycle float64
	// Latency covers serialization and switching.
	Latency sim.Ticks
}

// DefaultCrossbarConfig matches Table II: 60 GB/s per port.
func DefaultCrossbarConfig() CrossbarConfig {
	return CrossbarConfig{BytesPerCycle: 30, Latency: 120}
}

// LinkConfig describes one directed channel of a point-to-point inter-GPN
// topology (ring/mesh/torus). Each hop charges the link's serialization
// time plus Latency cycles of propagation.
type LinkConfig struct {
	BytesPerCycle float64
	Latency       sim.Ticks
}

// DefaultLinkConfig sizes a topology channel at the crossbar's port
// bandwidth with a third of its switching latency — one hop is cheaper
// than the crossbar, the diameter is not.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{BytesPerCycle: 30, Latency: 40}
}

// FabricConfig assembles a hierarchical fabric: the intra-GPN mesh, the
// inter-GPN topology, and the optional in-fabric coalescing stage.
type FabricConfig struct {
	P2P      P2PConfig
	Crossbar CrossbarConfig
	// Link configures the channels of the non-crossbar topologies; the
	// zero value means DefaultLinkConfig.
	Link     LinkConfig
	Topology TopoKind
	Coalesce CoalesceConfig
	// Vertices sizes the coalescing stage's vertex→buffer-slot index
	// (same-vertex merging is skipped when 0; append-only coalescing
	// still works).
	Vertices int
}

// SharedEngines returns a slice naming eng as the engine of every one of
// gpns GPNs — the construction for a system whose GPNs all share one
// event loop (the classic sequential simulator).
func SharedEngines(eng *sim.Engine, gpns int) []*sim.Engine {
	engines := make([]*sim.Engine, gpns)
	for i := range engines {
		engines[i] = eng
	}
	return engines
}

// outMsg is one buffered cross-engine message: the first-hop finish time
// on the sender side, and the delivery to complete on the destination at
// Exchange (the remaining hops are recomputed from the route table).
type outMsg struct {
	t1      float64
	dst     int32
	bytes   int32
	deliver sim.Handler
}

// hierGPN is the per-GPN slice of a Hierarchical fabric. Every field is
// written only by the owning shard's goroutine during windows; Exchange
// (single-threaded, between windows) walks outboxes and the shared link
// array.
type hierGPN struct {
	eng *sim.Engine
	// intra holds pesPerGPN×pesPerGPN links of this GPN's mesh.
	intra     []link
	stats     Stats
	intraBusy float64
	msgBytes  stats.Histogram
	hops      stats.Histogram
	outbox    []outMsg
	// Coalescing stage (nil when disabled): per-destination-PE buffers,
	// plus a generation-stamped vertex→payload-slot index shared across
	// the buffers (sound because each vertex has exactly one owner PE).
	coal []coalBuf
	vidx []int32
	vgen []uint32
	seq  uint32
}

// Hierarchical is NOVA's production fabric: a fully-connected point-to-
// point mesh among the PEs of each GPN, and a routed topology (crossbar,
// ring, mesh, or torus) between GPNs. The topology is the cross-shard
// boundary; its per-hop latency is the cluster lookahead.
type Hierarchical struct {
	engines   []*sim.Engine
	pesPerGPN int
	p2p       P2PConfig
	xbar      CrossbarConfig
	topo      *topology
	coalesce  CoalesceConfig
	merge     MergeFunc
	// links and linkBusy are indexed by topology link ID. A link is
	// written by its owning GPN's shard (first hop of that GPN's sends)
	// or by Exchange/shared-engine completion — never concurrently.
	links    []link
	linkBusy []float64
	// interBW, stageLat and endLat are the topology's resolved timing:
	// per-channel bandwidth, inter-hop propagation latency (0 for the
	// crossbar, whose two port stages sit inside one switch), and the
	// final delivery latency.
	interBW  float64
	stageLat float64
	endLat   sim.Ticks
	gpn      []hierGPN
	// total and the *Total histograms back the dump records; Finalize
	// folds the per-GPN accumulators into them.
	total         Stats
	msgBytesTotal stats.Histogram
	hopsTotal     stats.Histogram
}

// NewHierarchical builds the paper's crossbar fabric for len(engines)
// GPNs of pesPerGPN PEs each, GPN g running on engines[g]. Pass
// SharedEngines for a single-event-loop system. It is NewFabric with the
// crossbar topology and coalescing off.
func NewHierarchical(engines []*sim.Engine, pesPerGPN int, p2p P2PConfig, xbar CrossbarConfig) *Hierarchical {
	return NewFabric(engines, pesPerGPN, FabricConfig{P2P: p2p, Crossbar: xbar})
}

// NewFabric builds a hierarchical fabric with the configured inter-GPN
// topology and optional coalescing stage.
func NewFabric(engines []*sim.Engine, pesPerGPN int, cfg FabricConfig) *Hierarchical {
	if len(engines) == 0 || pesPerGPN <= 0 {
		panic(fmt.Sprintf("network: invalid geometry %d GPNs × %d PEs", len(engines), pesPerGPN))
	}
	if !cfg.Topology.Valid() {
		panic(fmt.Sprintf("network: invalid topology kind %d", int(cfg.Topology)))
	}
	h := &Hierarchical{
		engines:   engines,
		pesPerGPN: pesPerGPN,
		p2p:       cfg.P2P,
		xbar:      cfg.Crossbar,
		coalesce:  cfg.Coalesce,
		topo:      buildTopology(cfg.Topology, len(engines)),
		gpn:       make([]hierGPN, len(engines)),
	}
	if cfg.Topology == TopoCrossbar {
		h.interBW = cfg.Crossbar.BytesPerCycle
		h.stageLat = 0
		h.endLat = cfg.Crossbar.Latency
	} else {
		lc := cfg.Link
		if lc == (LinkConfig{}) {
			lc = DefaultLinkConfig()
		}
		if lc.BytesPerCycle <= 0 || lc.Latency <= 0 {
			panic(fmt.Sprintf("network: invalid link config %+v", lc))
		}
		h.interBW = lc.BytesPerCycle
		h.stageLat = float64(lc.Latency)
		h.endLat = lc.Latency
	}
	h.links = make([]link, len(h.topo.names))
	h.linkBusy = make([]float64, len(h.topo.names))
	for g := range h.gpn {
		if engines[g] == nil {
			panic(fmt.Sprintf("network: nil engine for gpn%d", g))
		}
		h.gpn[g].eng = engines[g]
		h.gpn[g].intra = make([]link, pesPerGPN*pesPerGPN)
	}
	if cfg.Coalesce.Window > 0 {
		h.initCoalesce(cfg.Vertices)
	}
	return h
}

// SetMerge installs the program's delta-merge function, letting the
// coalescing stage fold same-destination-vertex updates into one message
// entry instead of only appending. Call before the run starts; nil keeps
// append-only coalescing (always correct for any program).
func (h *Hierarchical) SetMerge(f MergeFunc) { h.merge = f }

// Send implements Fabric.
func (h *Hierarchical) Send(src, dst, bytes int, deliver sim.Handler) {
	sg, dg := src/h.pesPerGPN, dst/h.pesPerGPN
	g := &h.gpn[sg]
	if sg == dg {
		g.stats.Messages++
		g.stats.Bytes += uint64(bytes)
		g.msgBytes.Observe(uint64(bytes))
		g.stats.LocalBytes += uint64(bytes)
		g.intraBusy += float64(bytes) / h.p2p.BytesPerCycle
		l := &g.intra[(src%h.pesPerGPN)*h.pesPerGPN+dst%h.pesPerGPN]
		l.transfer(g.eng, bytes, h.p2p.BytesPerCycle, h.p2p.Latency, deliver)
		return
	}
	if g.coal != nil {
		if b, ok := deliver.(Batch); ok {
			h.coalesceSend(g, sg, dst, bytes, b)
			return
		}
	}
	h.sendInter(g, sg, dg, dst, bytes, deliver)
}

// sendInter charges one message to the inter-GPN topology: stats, hop
// accounting, first-hop reservation on the sender's link, then either the
// full route inline (shared engine) or the outbox for Exchange.
func (h *Hierarchical) sendInter(g *hierGPN, sg, dg, dst, bytes int, deliver sim.Handler) {
	g.stats.Messages++
	g.stats.Bytes += uint64(bytes)
	g.msgBytes.Observe(uint64(bytes))
	g.stats.InterBytes += uint64(bytes)
	g.stats.InterMessages++
	nh := uint64(h.topo.pathHops(sg, dg))
	g.stats.HopsSum += nh
	g.hops.Observe(nh)
	r := h.topo.route(sg, dg)
	h.linkBusy[r[0]] += float64(bytes) / h.interBW
	t1 := h.links[r[0]].reserve(float64(g.eng.Now()), bytes, h.interBW)
	d := &h.gpn[dg]
	if d.eng == g.eng {
		// Both GPNs share one event loop: complete the route inline,
		// exactly like the pre-sharding fabric.
		g.eng.ScheduleAt(h.completeRoute(r, t1, bytes), deliver)
		return
	}
	g.outbox = append(g.outbox, outMsg{
		t1: t1, dst: int32(dst), bytes: int32(bytes), deliver: deliver,
	})
}

// completeRoute reserves the remaining hops of a route whose first link
// finished at t1 and returns the delivery tick. Successive stages
// arbitrate independently (each router buffers between hops), so a busy
// downstream link does not convoy-block the one before it.
func (h *Hierarchical) completeRoute(r []int32, t1 float64, bytes int) sim.Ticks {
	t := t1
	for _, li := range r[1:] {
		h.linkBusy[li] += float64(bytes) / h.interBW
		t = h.links[li].reserve(t+h.stageLat, bytes, h.interBW)
	}
	return sim.Ticks(t+0.999999) + h.endLat
}

// Lookahead implements Fabric: min per-hop latency × min hop count (1) —
// the crossbar's switch latency, or one channel latency for the routed
// topologies. Every cross-engine delivery is at least this far in the
// destination's future.
func (h *Hierarchical) Lookahead() sim.Ticks { return h.endLat }

// Exchange implements Fabric. Source GPNs drain in ascending index order
// and each outbox preserves send order, so delivery order — and therefore
// every downstream link reservation — is identical at any worker count.
func (h *Hierarchical) Exchange() (int, error) {
	delivered := 0
	for sg := range h.gpn {
		g := &h.gpn[sg]
		for i := range g.outbox {
			m := &g.outbox[i]
			dg := int(m.dst) / h.pesPerGPN
			d := &h.gpn[dg]
			when := h.completeRoute(h.topo.route(sg, dg), m.t1, int(m.bytes))
			if now := d.eng.Now(); when < now {
				return delivered, fmt.Errorf(
					"network: cross-shard message gpn%d→gpn%d arrives at tick %d, behind destination time %d (lookahead violation)",
					sg, dg, when, now)
			}
			d.eng.ScheduleAt(when, m.deliver)
			m.deliver = nil
			delivered++
		}
		g.outbox = g.outbox[:0]
	}
	return delivered, nil
}

// Stats implements Fabric, summing the per-GPN counters on the fly.
func (h *Hierarchical) Stats() Stats {
	var s Stats
	for g := range h.gpn {
		s.add(h.gpn[g].stats)
	}
	return s
}

// Finalize implements Fabric.
func (h *Hierarchical) Finalize() {
	h.total = h.Stats()
	h.msgBytesTotal = stats.Histogram{}
	h.hopsTotal = stats.Histogram{}
	for g := range h.gpn {
		h.msgBytesTotal.Merge(h.gpn[g].msgBytes)
		h.hopsTotal.Merge(h.gpn[g].hops)
	}
}

// RegisterStats implements Fabric: traffic counters, message-size and
// hop-count histograms at the fabric root (filled in by Finalize), plus
// per-GPN busy-cycle totals and utilization formulas. Intra-GPN
// utilization is normalised by the aggregate bandwidth of a GPN's
// point-to-point mesh (pesPerGPN² links). The crossbar keeps its legacy
// per-GPN port records; the routed topologies report each directed
// channel under links.<name>.
func (h *Hierarchical) RegisterStats(g *stats.Group) {
	g.Uint64(&h.total.Messages, "messages", stats.Count, "messages sent over the fabric")
	g.Uint64(&h.total.Bytes, "bytes", stats.Bytes, "total message payload moved")
	g.Uint64(&h.total.LocalBytes, "local_bytes", stats.Bytes, "bytes that stayed within one GPN's point-to-point mesh")
	g.Uint64(&h.total.InterBytes, "inter_bytes", stats.Bytes, "bytes that crossed the inter-GPN fabric")
	g.Uint64(&h.total.InterMessages, "inter_messages", stats.Count, "messages that crossed the inter-GPN fabric (after coalescing)")
	g.Uint64(&h.total.Coalesced, "messages_coalesced", stats.Count, "message batches absorbed into a buffered same-destination batch")
	g.Uint64(&h.total.MergedUpdates, "merged_updates", stats.Count, "same-vertex updates folded by the program's delta-merge function")
	g.Uint64(&h.total.BytesSaved, "bytes_saved", stats.Bytes, "payload the fabric never carried thanks to merging")
	g.Formula(func() float64 {
		if h.total.InterMessages == 0 {
			return 0
		}
		return float64(h.total.HopsSum) / float64(h.total.InterMessages)
	}, "avg_hops", stats.Count, "mean inter-GPN channel traversals per fabric message")
	g.Histogram(&h.msgBytesTotal, "message_bytes", stats.Bytes, "per-message payload size (log2 buckets)")
	g.Histogram(&h.hopsTotal, "hop_count", stats.Count, "hop count per inter-GPN message (log2 buckets)")
	elapsed := func() float64 {
		var t sim.Ticks
		for _, e := range h.engines {
			if n := e.Now(); n > t {
				t = n
			}
		}
		if t > 0 {
			return float64(t)
		}
		return 1
	}
	n := len(h.gpn)
	for gi := range h.gpn {
		gi := gi
		gg := g.Group(fmt.Sprintf("gpn%d", gi))
		gg.Float64(&h.gpn[gi].intraBusy, "p2p_busy_cycles", stats.Cycles, "aggregate link-busy cycles on the GPN's point-to-point mesh")
		links := float64(h.pesPerGPN * h.pesPerGPN)
		gg.Formula(func() float64 { return h.gpn[gi].intraBusy / (elapsed() * links) },
			"p2p_utilization", stats.Ratio, "point-to-point mesh utilization (busy / elapsed·links)")
		if h.topo.kind == TopoCrossbar {
			gg.Float64(&h.linkBusy[gi], "xbar_out_busy_cycles", stats.Cycles, "busy cycles on the GPN's crossbar output port")
			gg.Float64(&h.linkBusy[n+gi], "xbar_in_busy_cycles", stats.Cycles, "busy cycles on the GPN's crossbar input port")
			gg.Formula(func() float64 { return h.linkBusy[gi] / elapsed() },
				"xbar_out_utilization", stats.Ratio, "crossbar output port utilization")
			gg.Formula(func() float64 { return h.linkBusy[n+gi] / elapsed() },
				"xbar_in_utilization", stats.Ratio, "crossbar input port utilization")
		}
	}
	if h.topo.kind != TopoCrossbar {
		lg := g.Group("links")
		for li := range h.links {
			li := li
			kg := lg.Group(h.topo.names[li])
			kg.Float64(&h.linkBusy[li], "busy_cycles", stats.Cycles, "busy cycles on this directed inter-GPN channel")
			kg.Formula(func() float64 { return h.linkBusy[li] / elapsed() },
				"utilization", stats.Ratio, "channel utilization (busy / elapsed)")
		}
	}
}

// idealMsg is one buffered cross-engine message on the ideal fabric.
type idealMsg struct {
	when    sim.Ticks
	deliver sim.Handler
	dst     int32
}

// idealGPN is the per-GPN slice of an Ideal fabric; written only by the
// owning shard's goroutine.
type idealGPN struct {
	eng      *sim.Engine
	stats    Stats
	msgBytes stats.Histogram
	outbox   []idealMsg
}

// Ideal is a fully-connected point-to-point fabric with unlimited bandwidth
// and a fixed latency — the "P2P with infinite bandwidth" configuration of
// Figure 9c.
type Ideal struct {
	engines       []*sim.Engine
	pesPerGPN     int
	latency       sim.Ticks
	gpn           []idealGPN
	total         Stats
	msgBytesTotal stats.Histogram
}

// NewIdeal builds an ideal fabric for len(engines) GPNs of pesPerGPN PEs
// each, GPN g running on engines[g].
func NewIdeal(engines []*sim.Engine, pesPerGPN int, latency sim.Ticks) *Ideal {
	if len(engines) == 0 || pesPerGPN <= 0 {
		panic(fmt.Sprintf("network: invalid geometry %d GPNs × %d PEs", len(engines), pesPerGPN))
	}
	f := &Ideal{
		engines:   engines,
		pesPerGPN: pesPerGPN,
		latency:   latency,
		gpn:       make([]idealGPN, len(engines)),
	}
	for g := range f.gpn {
		if engines[g] == nil {
			panic(fmt.Sprintf("network: nil engine for gpn%d", g))
		}
		f.gpn[g].eng = engines[g]
	}
	return f
}

// Send implements Fabric.
func (f *Ideal) Send(src, dst, bytes int, deliver sim.Handler) {
	sg, dg := src/f.pesPerGPN, dst/f.pesPerGPN
	g := &f.gpn[sg]
	g.stats.Messages++
	g.stats.Bytes += uint64(bytes)
	g.stats.LocalBytes += uint64(bytes)
	g.msgBytes.Observe(uint64(bytes))
	if f.gpn[dg].eng == g.eng {
		g.eng.Schedule(f.latency, deliver)
		return
	}
	g.outbox = append(g.outbox, idealMsg{
		when: g.eng.Now() + f.latency, deliver: deliver, dst: int32(dst),
	})
}

// Lookahead implements Fabric: every message takes the fixed latency.
func (f *Ideal) Lookahead() sim.Ticks { return f.latency }

// Exchange implements Fabric.
func (f *Ideal) Exchange() (int, error) {
	delivered := 0
	for sg := range f.gpn {
		g := &f.gpn[sg]
		for i := range g.outbox {
			m := &g.outbox[i]
			dg := int(m.dst) / f.pesPerGPN
			d := &f.gpn[dg]
			if now := d.eng.Now(); m.when < now {
				return delivered, fmt.Errorf(
					"network: cross-shard message gpn%d→gpn%d arrives at tick %d, behind destination time %d (lookahead violation)",
					sg, dg, m.when, now)
			}
			d.eng.ScheduleAt(m.when, m.deliver)
			m.deliver = nil
			delivered++
		}
		g.outbox = g.outbox[:0]
	}
	return delivered, nil
}

// Stats implements Fabric.
func (f *Ideal) Stats() Stats {
	var s Stats
	for g := range f.gpn {
		s.add(f.gpn[g].stats)
	}
	return s
}

// Finalize implements Fabric.
func (f *Ideal) Finalize() {
	f.total = f.Stats()
	f.msgBytesTotal = stats.Histogram{}
	for g := range f.gpn {
		f.msgBytesTotal.Merge(f.gpn[g].msgBytes)
	}
}

// RegisterStats implements Fabric. The ideal fabric has no contention, so
// only traffic counters and message sizes are reported.
func (f *Ideal) RegisterStats(g *stats.Group) {
	g.Uint64(&f.total.Messages, "messages", stats.Count, "messages sent over the fabric")
	g.Uint64(&f.total.Bytes, "bytes", stats.Bytes, "total message payload moved")
	g.Uint64(&f.total.LocalBytes, "local_bytes", stats.Bytes, "bytes delivered (all traffic is local on the ideal fabric)")
	g.Histogram(&f.msgBytesTotal, "message_bytes", stats.Bytes, "per-message payload size (log2 buckets)")
}
