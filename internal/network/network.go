// Package network models the two interconnect levels of NOVA's system
// architecture (Section IV-C): the 8×8 point-to-point electrical network
// between PEs inside a GPN, and the crossbar switch connecting GPNs.
//
// The paper's balance argument is quantitative: per-GPN message traffic is
// bounded by edge-memory bandwidth, and the fabric must absorb it without
// becoming the bottleneck. These models therefore charge every message's
// bytes against per-link (or per-port) bandwidth and add a fixed latency,
// which is exactly the accounting the paper's Figure 9c experiment needs.
package network

import (
	"fmt"

	"nova/internal/sim"
	"nova/internal/stats"
)

// Fabric delivers messages between PEs, identified by global PE index.
type Fabric interface {
	// Send models a transfer of bytes from src to dst and schedules
	// deliver at arrival time. deliver is a sim.Handler so senders can
	// reuse pre-allocated delivery objects (no per-message allocation).
	Send(src, dst int, bytes int, deliver sim.Handler)
	// Stats returns accumulated traffic counters.
	Stats() Stats
	// RegisterStats registers the fabric's counters and derived
	// utilizations under g.
	RegisterStats(g *stats.Group)
}

// Stats counts fabric traffic.
type Stats struct {
	Messages   uint64
	Bytes      uint64
	LocalBytes uint64 // bytes that stayed within one GPN
	InterBytes uint64 // bytes that crossed the GPN-level crossbar
}

// link tracks occupancy in fractional cycles so sub-cycle transfers (an
// 8-byte message on a 30 B/cycle port) are charged their true bandwidth
// cost rather than a whole cycle.
type link struct {
	nextFree float64
}

// reserve books a transfer on the link and returns its finish time in
// fractional cycles.
func (l *link) reserve(now float64, bytes int, bytesPerCycle float64) float64 {
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	l.nextFree = start + float64(bytes)/bytesPerCycle
	return l.nextFree
}

func (l *link) transfer(eng *sim.Engine, bytes int, bytesPerCycle float64, latency sim.Ticks, deliver sim.Handler) {
	done := l.reserve(float64(eng.Now()), bytes, bytesPerCycle)
	eng.ScheduleAt(sim.Ticks(done+0.999999)+latency, deliver)
}

// P2PConfig describes the intra-GPN point-to-point network.
type P2PConfig struct {
	// BytesPerCycle is per-link bandwidth (1.2 GB/s at 2 GHz = 0.6 B/cy).
	BytesPerCycle float64
	// Latency is the per-hop latency in cycles.
	Latency sim.Ticks
}

// DefaultP2PConfig matches Table II: 1.2 GB/s per link at a 2 GHz clock.
func DefaultP2PConfig() P2PConfig {
	return P2PConfig{BytesPerCycle: 0.6, Latency: 12}
}

// CrossbarConfig describes the inter-GPN switch.
type CrossbarConfig struct {
	// BytesPerCycle is per-port bandwidth (60 GB/s at 2 GHz = 30 B/cy).
	BytesPerCycle float64
	// Latency covers serialization and switching.
	Latency sim.Ticks
}

// DefaultCrossbarConfig matches Table II: 60 GB/s per port.
func DefaultCrossbarConfig() CrossbarConfig {
	return CrossbarConfig{BytesPerCycle: 30, Latency: 120}
}

// Hierarchical is NOVA's production fabric: a fully-connected point-to-
// point mesh among the PEs of each GPN, and a crossbar with one port per
// GPN for everything else.
type Hierarchical struct {
	eng       *sim.Engine
	pesPerGPN int
	p2p       P2PConfig
	xbar      CrossbarConfig
	// intra[g] holds pesPerGPN×pesPerGPN links for GPN g.
	intra [][]link
	// in/out port occupancy per GPN.
	inPort  []link
	outPort []link
	stats   Stats
	// Busy-cycle accumulators for the utilization breakdown: plain float
	// adds on the send path, divided by elapsed time at dump time.
	intraBusy []float64
	outBusy   []float64
	inBusy    []float64
	// msgBytes buckets per-message sizes (log2).
	msgBytes stats.Histogram
}

// NewHierarchical builds the fabric for gpns GPNs of pesPerGPN PEs each.
func NewHierarchical(eng *sim.Engine, gpns, pesPerGPN int, p2p P2PConfig, xbar CrossbarConfig) *Hierarchical {
	if gpns <= 0 || pesPerGPN <= 0 {
		panic(fmt.Sprintf("network: invalid geometry %d GPNs × %d PEs", gpns, pesPerGPN))
	}
	h := &Hierarchical{
		eng:       eng,
		pesPerGPN: pesPerGPN,
		p2p:       p2p,
		xbar:      xbar,
		intra:     make([][]link, gpns),
		inPort:    make([]link, gpns),
		outPort:   make([]link, gpns),
		intraBusy: make([]float64, gpns),
		outBusy:   make([]float64, gpns),
		inBusy:    make([]float64, gpns),
	}
	for g := range h.intra {
		h.intra[g] = make([]link, pesPerGPN*pesPerGPN)
	}
	return h
}

// Send implements Fabric.
func (h *Hierarchical) Send(src, dst, bytes int, deliver sim.Handler) {
	h.stats.Messages++
	h.stats.Bytes += uint64(bytes)
	h.msgBytes.Observe(uint64(bytes))
	sg, dg := src/h.pesPerGPN, dst/h.pesPerGPN
	if sg == dg {
		h.stats.LocalBytes += uint64(bytes)
		h.intraBusy[sg] += float64(bytes) / h.p2p.BytesPerCycle
		l := &h.intra[sg][(src%h.pesPerGPN)*h.pesPerGPN+dst%h.pesPerGPN]
		l.transfer(h.eng, bytes, h.p2p.BytesPerCycle, h.p2p.Latency, deliver)
		return
	}
	h.stats.InterBytes += uint64(bytes)
	h.outBusy[sg] += float64(bytes) / h.xbar.BytesPerCycle
	h.inBusy[dg] += float64(bytes) / h.xbar.BytesPerCycle
	// Source GPN's output port, then destination GPN's input port. The
	// stages arbitrate independently (the switch buffers between them),
	// so a busy destination port does not convoy-block the source port.
	out := &h.outPort[sg]
	in := &h.inPort[dg]
	t1 := out.reserve(float64(h.eng.Now()), bytes, h.xbar.BytesPerCycle)
	t2 := in.reserve(t1, bytes, h.xbar.BytesPerCycle)
	h.eng.ScheduleAt(sim.Ticks(t2+0.999999)+h.xbar.Latency, deliver)
}

// Stats implements Fabric.
func (h *Hierarchical) Stats() Stats { return h.stats }

// RegisterStats implements Fabric: traffic counters and message-size
// histogram at the fabric root, plus per-GPN busy-cycle totals and
// utilization formulas. Intra-GPN utilization is normalised by the
// aggregate bandwidth of a GPN's point-to-point mesh (pesPerGPN² links);
// crossbar ports normalise by one port's bandwidth.
func (h *Hierarchical) RegisterStats(g *stats.Group) {
	g.Uint64(&h.stats.Messages, "messages", stats.Count, "messages sent over the fabric")
	g.Uint64(&h.stats.Bytes, "bytes", stats.Bytes, "total message payload moved")
	g.Uint64(&h.stats.LocalBytes, "local_bytes", stats.Bytes, "bytes that stayed within one GPN's point-to-point mesh")
	g.Uint64(&h.stats.InterBytes, "inter_bytes", stats.Bytes, "bytes that crossed the GPN-level crossbar")
	g.Histogram(&h.msgBytes, "message_bytes", stats.Bytes, "per-message payload size (log2 buckets)")
	elapsed := func() float64 {
		if t := h.eng.Now(); t > 0 {
			return float64(t)
		}
		return 1
	}
	for gi := range h.intra {
		gi := gi
		gg := g.Group(fmt.Sprintf("gpn%d", gi))
		gg.Float64(&h.intraBusy[gi], "p2p_busy_cycles", stats.Cycles, "aggregate link-busy cycles on the GPN's point-to-point mesh")
		gg.Float64(&h.outBusy[gi], "xbar_out_busy_cycles", stats.Cycles, "busy cycles on the GPN's crossbar output port")
		gg.Float64(&h.inBusy[gi], "xbar_in_busy_cycles", stats.Cycles, "busy cycles on the GPN's crossbar input port")
		links := float64(h.pesPerGPN * h.pesPerGPN)
		gg.Formula(func() float64 { return h.intraBusy[gi] / (elapsed() * links) },
			"p2p_utilization", stats.Ratio, "point-to-point mesh utilization (busy / elapsed·links)")
		gg.Formula(func() float64 { return h.outBusy[gi] / elapsed() },
			"xbar_out_utilization", stats.Ratio, "crossbar output port utilization")
		gg.Formula(func() float64 { return h.inBusy[gi] / elapsed() },
			"xbar_in_utilization", stats.Ratio, "crossbar input port utilization")
	}
}

// Ideal is a fully-connected point-to-point fabric with unlimited bandwidth
// and a fixed latency — the "P2P with infinite bandwidth" configuration of
// Figure 9c.
type Ideal struct {
	eng      *sim.Engine
	latency  sim.Ticks
	stats    Stats
	msgBytes stats.Histogram
}

// NewIdeal builds an ideal fabric.
func NewIdeal(eng *sim.Engine, latency sim.Ticks) *Ideal {
	return &Ideal{eng: eng, latency: latency}
}

// Send implements Fabric.
func (i *Ideal) Send(src, dst, bytes int, deliver sim.Handler) {
	i.stats.Messages++
	i.stats.Bytes += uint64(bytes)
	i.stats.LocalBytes += uint64(bytes)
	i.msgBytes.Observe(uint64(bytes))
	i.eng.Schedule(i.latency, deliver)
}

// Stats implements Fabric.
func (i *Ideal) Stats() Stats { return i.stats }

// RegisterStats implements Fabric. The ideal fabric has no contention, so
// only traffic counters and message sizes are reported.
func (i *Ideal) RegisterStats(g *stats.Group) {
	g.Uint64(&i.stats.Messages, "messages", stats.Count, "messages sent over the fabric")
	g.Uint64(&i.stats.Bytes, "bytes", stats.Bytes, "total message payload moved")
	g.Uint64(&i.stats.LocalBytes, "local_bytes", stats.Bytes, "bytes delivered (all traffic is local on the ideal fabric)")
	g.Histogram(&i.msgBytes, "message_bytes", stats.Bytes, "per-message payload size (log2 buckets)")
}
