// Package network models the two interconnect levels of NOVA's system
// architecture (Section IV-C): the 8×8 point-to-point electrical network
// between PEs inside a GPN, and the crossbar switch connecting GPNs.
//
// The paper's balance argument is quantitative: per-GPN message traffic is
// bounded by edge-memory bandwidth, and the fabric must absorb it without
// becoming the bottleneck. These models therefore charge every message's
// bytes against per-link (or per-port) bandwidth and add a fixed latency,
// which is exactly the accounting the paper's Figure 9c experiment needs.
//
// The fabric is also the cross-shard boundary of the sharded simulator:
// each GPN runs on its own engine, intra-GPN traffic stays on the sender's
// engine, and inter-GPN traffic is buffered in a per-source-GPN outbox
// until the cluster's window barrier calls Exchange. Lookahead declares
// the minimum cross-engine latency that makes the windows sound. All
// per-GPN counters are written only by their owning shard (or by Exchange,
// which runs single-threaded between windows), so the hot path needs no
// locks; Finalize folds them into the machine-wide totals at dump time.
package network

import (
	"fmt"

	"nova/internal/sim"
	"nova/internal/stats"
)

// Fabric delivers messages between PEs, identified by global PE index.
type Fabric interface {
	// Send models a transfer of bytes from src to dst and schedules
	// deliver at arrival time. deliver is a sim.Handler so senders can
	// reuse pre-allocated delivery objects (no per-message allocation).
	// When src and dst live on different engines the delivery is
	// buffered until the next Exchange. Send must be called from the
	// goroutine running src's engine.
	Send(src, dst int, bytes int, deliver sim.Handler)
	// Lookahead is the minimum latency of any cross-engine message, in
	// ticks — the conservative window bound. Zero means the fabric
	// cannot span engines.
	Lookahead() sim.Ticks
	// Exchange schedules every buffered cross-engine message on its
	// destination engine, iterating source GPNs in ascending order (the
	// shard-merge determinism rule). It must run single-threaded with
	// all engines stopped at a window barrier. It returns the number of
	// messages delivered, and errors if a message would arrive in a
	// destination's past — a lookahead violation, never reordered
	// silently.
	Exchange() (int, error)
	// Stats returns accumulated traffic counters.
	Stats() Stats
	// Finalize folds per-GPN accumulators into the dump-time totals.
	// Call once after the simulation, before dumping stats.
	Finalize()
	// RegisterStats registers the fabric's counters and derived
	// utilizations under g.
	RegisterStats(g *stats.Group)
}

// Stats counts fabric traffic.
type Stats struct {
	Messages   uint64
	Bytes      uint64
	LocalBytes uint64 // bytes that stayed within one GPN
	InterBytes uint64 // bytes that crossed the GPN-level crossbar
}

func (s *Stats) add(o Stats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.LocalBytes += o.LocalBytes
	s.InterBytes += o.InterBytes
}

// link tracks occupancy in fractional cycles so sub-cycle transfers (an
// 8-byte message on a 30 B/cycle port) are charged their true bandwidth
// cost rather than a whole cycle.
type link struct {
	nextFree float64
}

// reserve books a transfer on the link and returns its finish time in
// fractional cycles.
func (l *link) reserve(now float64, bytes int, bytesPerCycle float64) float64 {
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	l.nextFree = start + float64(bytes)/bytesPerCycle
	return l.nextFree
}

func (l *link) transfer(eng *sim.Engine, bytes int, bytesPerCycle float64, latency sim.Ticks, deliver sim.Handler) {
	done := l.reserve(float64(eng.Now()), bytes, bytesPerCycle)
	eng.ScheduleAt(sim.Ticks(done+0.999999)+latency, deliver)
}

// P2PConfig describes the intra-GPN point-to-point network.
type P2PConfig struct {
	// BytesPerCycle is per-link bandwidth (1.2 GB/s at 2 GHz = 0.6 B/cy).
	BytesPerCycle float64
	// Latency is the per-hop latency in cycles.
	Latency sim.Ticks
}

// DefaultP2PConfig matches Table II: 1.2 GB/s per link at a 2 GHz clock.
func DefaultP2PConfig() P2PConfig {
	return P2PConfig{BytesPerCycle: 0.6, Latency: 12}
}

// CrossbarConfig describes the inter-GPN switch.
type CrossbarConfig struct {
	// BytesPerCycle is per-port bandwidth (60 GB/s at 2 GHz = 30 B/cy).
	BytesPerCycle float64
	// Latency covers serialization and switching.
	Latency sim.Ticks
}

// DefaultCrossbarConfig matches Table II: 60 GB/s per port.
func DefaultCrossbarConfig() CrossbarConfig {
	return CrossbarConfig{BytesPerCycle: 30, Latency: 120}
}

// SharedEngines returns a slice naming eng as the engine of every one of
// gpns GPNs — the construction for a system whose GPNs all share one
// event loop (the classic sequential simulator).
func SharedEngines(eng *sim.Engine, gpns int) []*sim.Engine {
	engines := make([]*sim.Engine, gpns)
	for i := range engines {
		engines[i] = eng
	}
	return engines
}

// outMsg is one buffered cross-engine message: the crossbar out-port
// finish time on the sender side, and the delivery to complete on the
// destination at Exchange.
type outMsg struct {
	t1      float64
	dst     int32
	bytes   int32
	deliver sim.Handler
}

// hierGPN is the per-GPN slice of a Hierarchical fabric. Every field is
// written only by the owning shard's goroutine, except inPort/inBusy,
// which are written by Exchange (single-threaded, between windows) for
// cross-engine traffic.
type hierGPN struct {
	eng *sim.Engine
	// intra holds pesPerGPN×pesPerGPN links of this GPN's mesh.
	intra           []link
	inPort, outPort link
	stats           Stats
	intraBusy       float64
	outBusy         float64
	inBusy          float64
	msgBytes        stats.Histogram
	outbox          []outMsg
}

// Hierarchical is NOVA's production fabric: a fully-connected point-to-
// point mesh among the PEs of each GPN, and a crossbar with one port per
// GPN for everything else. The crossbar is the cross-shard boundary; its
// latency is the cluster lookahead.
type Hierarchical struct {
	engines   []*sim.Engine
	pesPerGPN int
	p2p       P2PConfig
	xbar      CrossbarConfig
	gpn       []hierGPN
	// total and msgBytesTotal back the dump records; Finalize folds the
	// per-GPN accumulators into them.
	total         Stats
	msgBytesTotal stats.Histogram
}

// NewHierarchical builds the fabric for len(engines) GPNs of pesPerGPN
// PEs each, GPN g running on engines[g]. Pass SharedEngines for a
// single-event-loop system.
func NewHierarchical(engines []*sim.Engine, pesPerGPN int, p2p P2PConfig, xbar CrossbarConfig) *Hierarchical {
	if len(engines) == 0 || pesPerGPN <= 0 {
		panic(fmt.Sprintf("network: invalid geometry %d GPNs × %d PEs", len(engines), pesPerGPN))
	}
	h := &Hierarchical{
		engines:   engines,
		pesPerGPN: pesPerGPN,
		p2p:       p2p,
		xbar:      xbar,
		gpn:       make([]hierGPN, len(engines)),
	}
	for g := range h.gpn {
		if engines[g] == nil {
			panic(fmt.Sprintf("network: nil engine for gpn%d", g))
		}
		h.gpn[g].eng = engines[g]
		h.gpn[g].intra = make([]link, pesPerGPN*pesPerGPN)
	}
	return h
}

// Send implements Fabric.
func (h *Hierarchical) Send(src, dst, bytes int, deliver sim.Handler) {
	sg, dg := src/h.pesPerGPN, dst/h.pesPerGPN
	g := &h.gpn[sg]
	g.stats.Messages++
	g.stats.Bytes += uint64(bytes)
	g.msgBytes.Observe(uint64(bytes))
	if sg == dg {
		g.stats.LocalBytes += uint64(bytes)
		g.intraBusy += float64(bytes) / h.p2p.BytesPerCycle
		l := &g.intra[(src%h.pesPerGPN)*h.pesPerGPN+dst%h.pesPerGPN]
		l.transfer(g.eng, bytes, h.p2p.BytesPerCycle, h.p2p.Latency, deliver)
		return
	}
	g.stats.InterBytes += uint64(bytes)
	g.outBusy += float64(bytes) / h.xbar.BytesPerCycle
	// Source GPN's output port, then destination GPN's input port. The
	// stages arbitrate independently (the switch buffers between them),
	// so a busy destination port does not convoy-block the source port.
	t1 := g.outPort.reserve(float64(g.eng.Now()), bytes, h.xbar.BytesPerCycle)
	d := &h.gpn[dg]
	if d.eng == g.eng {
		// Both GPNs share one event loop: complete the transfer inline,
		// exactly like the pre-sharding fabric.
		d.inBusy += float64(bytes) / h.xbar.BytesPerCycle
		t2 := d.inPort.reserve(t1, bytes, h.xbar.BytesPerCycle)
		g.eng.ScheduleAt(sim.Ticks(t2+0.999999)+h.xbar.Latency, deliver)
		return
	}
	g.outbox = append(g.outbox, outMsg{
		t1: t1, dst: int32(dst), bytes: int32(bytes), deliver: deliver,
	})
}

// Lookahead implements Fabric: the crossbar's fixed latency bounds every
// cross-engine message.
func (h *Hierarchical) Lookahead() sim.Ticks { return h.xbar.Latency }

// Exchange implements Fabric. Source GPNs drain in ascending index order
// and each outbox preserves send order, so delivery order — and therefore
// every destination in-port reservation — is identical at any worker
// count.
func (h *Hierarchical) Exchange() (int, error) {
	delivered := 0
	for sg := range h.gpn {
		g := &h.gpn[sg]
		for i := range g.outbox {
			m := &g.outbox[i]
			dg := int(m.dst) / h.pesPerGPN
			d := &h.gpn[dg]
			d.inBusy += float64(m.bytes) / h.xbar.BytesPerCycle
			t2 := d.inPort.reserve(m.t1, int(m.bytes), h.xbar.BytesPerCycle)
			when := sim.Ticks(t2+0.999999) + h.xbar.Latency
			if now := d.eng.Now(); when < now {
				return delivered, fmt.Errorf(
					"network: cross-shard message gpn%d→gpn%d arrives at tick %d, behind destination time %d (lookahead violation)",
					sg, dg, when, now)
			}
			d.eng.ScheduleAt(when, m.deliver)
			m.deliver = nil
			delivered++
		}
		g.outbox = g.outbox[:0]
	}
	return delivered, nil
}

// Stats implements Fabric, summing the per-GPN counters on the fly.
func (h *Hierarchical) Stats() Stats {
	var s Stats
	for g := range h.gpn {
		s.add(h.gpn[g].stats)
	}
	return s
}

// Finalize implements Fabric.
func (h *Hierarchical) Finalize() {
	h.total = h.Stats()
	h.msgBytesTotal = stats.Histogram{}
	for g := range h.gpn {
		h.msgBytesTotal.Merge(h.gpn[g].msgBytes)
	}
}

// RegisterStats implements Fabric: traffic counters and message-size
// histogram at the fabric root (filled in by Finalize), plus per-GPN
// busy-cycle totals and utilization formulas. Intra-GPN utilization is
// normalised by the aggregate bandwidth of a GPN's point-to-point mesh
// (pesPerGPN² links); crossbar ports normalise by one port's bandwidth.
func (h *Hierarchical) RegisterStats(g *stats.Group) {
	g.Uint64(&h.total.Messages, "messages", stats.Count, "messages sent over the fabric")
	g.Uint64(&h.total.Bytes, "bytes", stats.Bytes, "total message payload moved")
	g.Uint64(&h.total.LocalBytes, "local_bytes", stats.Bytes, "bytes that stayed within one GPN's point-to-point mesh")
	g.Uint64(&h.total.InterBytes, "inter_bytes", stats.Bytes, "bytes that crossed the GPN-level crossbar")
	g.Histogram(&h.msgBytesTotal, "message_bytes", stats.Bytes, "per-message payload size (log2 buckets)")
	elapsed := func() float64 {
		var t sim.Ticks
		for _, e := range h.engines {
			if n := e.Now(); n > t {
				t = n
			}
		}
		if t > 0 {
			return float64(t)
		}
		return 1
	}
	for gi := range h.gpn {
		gi := gi
		gg := g.Group(fmt.Sprintf("gpn%d", gi))
		gg.Float64(&h.gpn[gi].intraBusy, "p2p_busy_cycles", stats.Cycles, "aggregate link-busy cycles on the GPN's point-to-point mesh")
		gg.Float64(&h.gpn[gi].outBusy, "xbar_out_busy_cycles", stats.Cycles, "busy cycles on the GPN's crossbar output port")
		gg.Float64(&h.gpn[gi].inBusy, "xbar_in_busy_cycles", stats.Cycles, "busy cycles on the GPN's crossbar input port")
		links := float64(h.pesPerGPN * h.pesPerGPN)
		gg.Formula(func() float64 { return h.gpn[gi].intraBusy / (elapsed() * links) },
			"p2p_utilization", stats.Ratio, "point-to-point mesh utilization (busy / elapsed·links)")
		gg.Formula(func() float64 { return h.gpn[gi].outBusy / elapsed() },
			"xbar_out_utilization", stats.Ratio, "crossbar output port utilization")
		gg.Formula(func() float64 { return h.gpn[gi].inBusy / elapsed() },
			"xbar_in_utilization", stats.Ratio, "crossbar input port utilization")
	}
}

// idealMsg is one buffered cross-engine message on the ideal fabric.
type idealMsg struct {
	when    sim.Ticks
	deliver sim.Handler
	dst     int32
}

// idealGPN is the per-GPN slice of an Ideal fabric; written only by the
// owning shard's goroutine.
type idealGPN struct {
	eng      *sim.Engine
	stats    Stats
	msgBytes stats.Histogram
	outbox   []idealMsg
}

// Ideal is a fully-connected point-to-point fabric with unlimited bandwidth
// and a fixed latency — the "P2P with infinite bandwidth" configuration of
// Figure 9c.
type Ideal struct {
	engines       []*sim.Engine
	pesPerGPN     int
	latency       sim.Ticks
	gpn           []idealGPN
	total         Stats
	msgBytesTotal stats.Histogram
}

// NewIdeal builds an ideal fabric for len(engines) GPNs of pesPerGPN PEs
// each, GPN g running on engines[g].
func NewIdeal(engines []*sim.Engine, pesPerGPN int, latency sim.Ticks) *Ideal {
	if len(engines) == 0 || pesPerGPN <= 0 {
		panic(fmt.Sprintf("network: invalid geometry %d GPNs × %d PEs", len(engines), pesPerGPN))
	}
	f := &Ideal{
		engines:   engines,
		pesPerGPN: pesPerGPN,
		latency:   latency,
		gpn:       make([]idealGPN, len(engines)),
	}
	for g := range f.gpn {
		if engines[g] == nil {
			panic(fmt.Sprintf("network: nil engine for gpn%d", g))
		}
		f.gpn[g].eng = engines[g]
	}
	return f
}

// Send implements Fabric.
func (f *Ideal) Send(src, dst, bytes int, deliver sim.Handler) {
	sg, dg := src/f.pesPerGPN, dst/f.pesPerGPN
	g := &f.gpn[sg]
	g.stats.Messages++
	g.stats.Bytes += uint64(bytes)
	g.stats.LocalBytes += uint64(bytes)
	g.msgBytes.Observe(uint64(bytes))
	if f.gpn[dg].eng == g.eng {
		g.eng.Schedule(f.latency, deliver)
		return
	}
	g.outbox = append(g.outbox, idealMsg{
		when: g.eng.Now() + f.latency, deliver: deliver, dst: int32(dst),
	})
}

// Lookahead implements Fabric: every message takes the fixed latency.
func (f *Ideal) Lookahead() sim.Ticks { return f.latency }

// Exchange implements Fabric.
func (f *Ideal) Exchange() (int, error) {
	delivered := 0
	for sg := range f.gpn {
		g := &f.gpn[sg]
		for i := range g.outbox {
			m := &g.outbox[i]
			dg := int(m.dst) / f.pesPerGPN
			d := &f.gpn[dg]
			if now := d.eng.Now(); m.when < now {
				return delivered, fmt.Errorf(
					"network: cross-shard message gpn%d→gpn%d arrives at tick %d, behind destination time %d (lookahead violation)",
					sg, dg, m.when, now)
			}
			d.eng.ScheduleAt(m.when, m.deliver)
			m.deliver = nil
			delivered++
		}
		g.outbox = g.outbox[:0]
	}
	return delivered, nil
}

// Stats implements Fabric.
func (f *Ideal) Stats() Stats {
	var s Stats
	for g := range f.gpn {
		s.add(f.gpn[g].stats)
	}
	return s
}

// Finalize implements Fabric.
func (f *Ideal) Finalize() {
	f.total = f.Stats()
	f.msgBytesTotal = stats.Histogram{}
	for g := range f.gpn {
		f.msgBytesTotal.Merge(f.gpn[g].msgBytes)
	}
}

// RegisterStats implements Fabric. The ideal fabric has no contention, so
// only traffic counters and message sizes are reported.
func (f *Ideal) RegisterStats(g *stats.Group) {
	g.Uint64(&f.total.Messages, "messages", stats.Count, "messages sent over the fabric")
	g.Uint64(&f.total.Bytes, "bytes", stats.Bytes, "total message payload moved")
	g.Uint64(&f.total.LocalBytes, "local_bytes", stats.Bytes, "bytes delivered (all traffic is local on the ideal fabric)")
	g.Histogram(&f.msgBytesTotal, "message_bytes", stats.Bytes, "per-message payload size (log2 buckets)")
}
