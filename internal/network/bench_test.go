package network

import (
	"testing"

	"nova/internal/sim"
)

// arrivalCounter is a pre-allocated delivery handler, the pattern the PE
// message-generation unit uses for every fabric send.
type arrivalCounter struct{ n int }

func (c *arrivalCounter) Fire() { c.n++ }

// BenchmarkHierarchicalSend measures the enqueue path for local (same-GPN)
// sends with a pooled delivery handler. It must be allocation-free.
func BenchmarkHierarchicalSend(b *testing.B) {
	eng := sim.NewEngine()
	f := NewHierarchical(SharedEngines(eng, 2), 4, DefaultP2PConfig(), DefaultCrossbarConfig())
	done := &arrivalCounter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Send(0, 1, 64, done)
		if i%1024 == 1023 {
			if err := eng.RunUntilQuiet(0); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := eng.RunUntilQuiet(0); err != nil {
		b.Fatal(err)
	}
	if done.n != b.N {
		b.Fatalf("delivered %d of %d messages", done.n, b.N)
	}
}

// BenchmarkHierarchicalSendInterGPN measures cross-GPN sends, which pay
// two crossbar port stages on top of the P2P links.
func BenchmarkHierarchicalSendInterGPN(b *testing.B) {
	eng := sim.NewEngine()
	f := NewHierarchical(SharedEngines(eng, 2), 4, DefaultP2PConfig(), DefaultCrossbarConfig())
	done := &arrivalCounter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Send(0, 5, 64, done)
		if i%1024 == 1023 {
			if err := eng.RunUntilQuiet(0); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := eng.RunUntilQuiet(0); err != nil {
		b.Fatal(err)
	}
	if done.n != b.N {
		b.Fatalf("delivered %d of %d messages", done.n, b.N)
	}
}
