package network

import (
	"testing"

	"nova/internal/sim"
	"nova/program"
)

// testBatch is a minimal Batch implementation standing in for the core
// engine's pooled delivery tasks.
type testBatch struct {
	msgs      []program.Message
	fired     bool
	firedAt   sim.Ticks
	eng       *sim.Engine
	discarded bool
}

func (b *testBatch) Fire() {
	b.fired = true
	if b.eng != nil {
		b.firedAt = b.eng.Now()
	}
}
func (b *testBatch) Payload() []program.Message     { return b.msgs }
func (b *testBatch) SetPayload(m []program.Message) { b.msgs = m }
func (b *testBatch) Discard()                       { b.discarded = true }

func minMerge(a, b program.Prop) program.Prop {
	if b < a {
		return b
	}
	return a
}

func coalFabric(eng *sim.Engine, window sim.Ticks, capacity, vertices int) *Hierarchical {
	return NewFabric(SharedEngines(eng, 2), 1, FabricConfig{
		P2P:      DefaultP2PConfig(),
		Crossbar: CrossbarConfig{BytesPerCycle: 2, Latency: 50},
		Coalesce: CoalesceConfig{Window: window, Capacity: capacity},
		Vertices: vertices,
	})
}

func TestCoalesceMergesSameVertex(t *testing.T) {
	eng := sim.NewEngine()
	f := coalFabric(eng, 8, 0, 16)
	f.SetMerge(minMerge)
	b1 := &testBatch{eng: eng, msgs: []program.Message{{Dst: 1, Delta: 5}, {Dst: 2, Delta: 7}}}
	b2 := &testBatch{eng: eng, msgs: []program.Message{{Dst: 1, Delta: 3}, {Dst: 3, Delta: 9}}}
	f.Send(0, 1, 16, b1)
	f.Send(0, 1, 16, b2)
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if !b1.fired {
		t.Fatal("head batch never delivered")
	}
	if b2.fired || !b2.discarded {
		t.Fatalf("absorbed batch fired=%v discarded=%v, want false/true", b2.fired, b2.discarded)
	}
	want := []program.Message{{Dst: 1, Delta: 3}, {Dst: 2, Delta: 7}, {Dst: 3, Delta: 9}}
	if len(b1.msgs) != len(want) {
		t.Fatalf("merged payload = %v, want %v", b1.msgs, want)
	}
	for i := range want {
		if b1.msgs[i] != want[i] {
			t.Fatalf("merged payload = %v, want %v", b1.msgs, want)
		}
	}
	st := f.Stats()
	if st.Messages != 1 || st.Coalesced != 1 || st.MergedUpdates != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// 32 bytes offered, 3 entries × 8 B sent: 8 saved.
	if st.BytesSaved != 8 || st.InterBytes != 24 {
		t.Fatalf("bytes_saved=%d inter=%d, want 8/24", st.BytesSaved, st.InterBytes)
	}
	// Flush at the 8-tick window close, then 24 B at 2 B/cy through the
	// crossbar's two port stages (12 + 12) plus 50 cycles of latency.
	if b1.firedAt != 8+12+12+50 {
		t.Fatalf("delivered at %d, want 82", b1.firedAt)
	}
}

func TestCoalesceAppendOnlyWithoutMerge(t *testing.T) {
	eng := sim.NewEngine()
	f := coalFabric(eng, 8, 0, 0) // no vertex index: append-only
	f.SetMerge(minMerge)
	b1 := &testBatch{eng: eng, msgs: []program.Message{{Dst: 1, Delta: 5}}}
	b2 := &testBatch{eng: eng, msgs: []program.Message{{Dst: 1, Delta: 3}}}
	f.Send(0, 1, 8, b1)
	f.Send(0, 1, 8, b2)
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if len(b1.msgs) != 2 {
		t.Fatalf("payload = %v, want both entries appended", b1.msgs)
	}
	st := f.Stats()
	if st.Coalesced != 1 || st.MergedUpdates != 0 || st.BytesSaved != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCoalesceCapacityFlushesEarly(t *testing.T) {
	eng := sim.NewEngine()
	f := coalFabric(eng, 10_000, 4, 16)
	b1 := &testBatch{eng: eng, msgs: []program.Message{{Dst: 1, Delta: 1}, {Dst: 2, Delta: 1}}}
	b2 := &testBatch{eng: eng, msgs: []program.Message{{Dst: 3, Delta: 1}, {Dst: 4, Delta: 1}}}
	f.Send(0, 1, 16, b1)
	f.Send(0, 1, 16, b2)
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if !b1.fired {
		t.Fatal("batch never delivered")
	}
	// Capacity 4 reached at the second send: flush at tick 0, not at the
	// 10000-tick window close. 32 B through two 2 B/cy port stages + 50.
	if b1.firedAt != 16+16+50 {
		t.Fatalf("delivered at %d, want 82 (early capacity flush)", b1.firedAt)
	}
	if st := f.Stats(); st.Messages != 1 || st.Coalesced != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCoalesceOversizedFirstBatchFlushesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	f := coalFabric(eng, 10_000, 2, 16)
	b := &testBatch{eng: eng, msgs: []program.Message{{Dst: 1, Delta: 1}, {Dst: 2, Delta: 1}, {Dst: 3, Delta: 1}}}
	f.Send(0, 1, 24, b)
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if !b.fired {
		t.Fatal("oversized batch never delivered")
	}
	if b.firedAt != 12+12+50 {
		t.Fatalf("delivered at %d, want 74 (no window wait)", b.firedAt)
	}
	if st := f.Stats(); st.Messages != 1 || st.Coalesced != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCoalesceDisabledIsTransparent(t *testing.T) {
	eng := sim.NewEngine()
	f := coalFabric(eng, 0, 0, 16) // window 0: stage not even allocated
	b1 := &testBatch{eng: eng, msgs: []program.Message{{Dst: 1, Delta: 5}}}
	b2 := &testBatch{eng: eng, msgs: []program.Message{{Dst: 1, Delta: 3}}}
	f.Send(0, 1, 8, b1)
	f.Send(0, 1, 8, b2)
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Messages != 2 || st.Coalesced != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if b2.discarded {
		t.Fatal("batch discarded with coalescing off")
	}
}

func TestCoalesceBypassesNonBatchHandlers(t *testing.T) {
	eng := sim.NewEngine()
	f := coalFabric(eng, 8, 0, 16)
	var at sim.Ticks
	f.Send(0, 1, 8, sim.HandlerFunc(func() { at = eng.Now() }))
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// Plain handlers take the uncoalesced path: two 4-cycle port stages
	// plus 50 cycles of switch latency.
	if at != 58 {
		t.Fatalf("delivered at %d, want 58", at)
	}
	if st := f.Stats(); st.Messages != 1 || st.Coalesced != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCoalesceSameVertexAcrossGenerations re-uses one buffer for two
// fill/flush cycles and checks the generation stamp prevents stale index
// hits: the same vertex in a later fill must not write into the flushed
// payload.
func TestCoalesceSameVertexAcrossGenerations(t *testing.T) {
	eng := sim.NewEngine()
	f := coalFabric(eng, 8, 0, 16)
	f.SetMerge(minMerge)
	b1 := &testBatch{eng: eng, msgs: []program.Message{{Dst: 1, Delta: 5}}}
	f.Send(0, 1, 8, b1)
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	b2 := &testBatch{eng: eng, msgs: []program.Message{{Dst: 1, Delta: 9}}}
	b3 := &testBatch{eng: eng, msgs: []program.Message{{Dst: 1, Delta: 2}}}
	f.Send(0, 1, 8, b2)
	f.Send(0, 1, 8, b3)
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if len(b1.msgs) != 1 || b1.msgs[0].Delta != 5 {
		t.Fatalf("first-generation payload mutated: %v", b1.msgs)
	}
	if len(b2.msgs) != 1 || b2.msgs[0].Delta != 2 {
		t.Fatalf("second generation = %v, want merged delta 2", b2.msgs)
	}
	if st := f.Stats(); st.Messages != 2 || st.Coalesced != 1 || st.MergedUpdates != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCoalesceCrossEngineFlush covers the sharded path: the flush fires on
// the source engine, parks the merged batch in the outbox, and Exchange
// delivers it to the destination engine.
func TestCoalesceCrossEngineFlush(t *testing.T) {
	engines := []*sim.Engine{sim.NewEngine(), sim.NewEngine()}
	f := NewFabric(engines, 1, FabricConfig{
		P2P:      DefaultP2PConfig(),
		Crossbar: CrossbarConfig{BytesPerCycle: 2, Latency: 50},
		Coalesce: CoalesceConfig{Window: 8},
		Vertices: 16,
	})
	f.SetMerge(minMerge)
	b1 := &testBatch{eng: engines[1], msgs: []program.Message{{Dst: 1, Delta: 5}}}
	b2 := &testBatch{eng: engines[1], msgs: []program.Message{{Dst: 1, Delta: 3}}}
	f.Send(0, 1, 8, b1)
	f.Send(0, 1, 8, b2)
	if err := engines[0].RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	n, err := f.Exchange()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Exchange delivered %d messages, want 1 merged batch", n)
	}
	if err := engines[1].RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if !b1.fired || b1.msgs[0].Delta != 3 {
		t.Fatalf("fired=%v payload=%v, want merged delta 3", b1.fired, b1.msgs)
	}
	// Flush at window close (8) + two 4-cycle port stages + 50 latency.
	if b1.firedAt != 8+4+4+50 {
		t.Fatalf("delivered at %d, want 66", b1.firedAt)
	}
	if st := f.Stats(); st.Messages != 1 || st.Coalesced != 1 || st.MergedUpdates != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
