// In-fabric message coalescing: cross-GPN message batches wait in a
// per-destination outbox buffer for a configurable window before
// traversing the inter-GPN topology, and batches to the same destination
// PE that arrive while one is waiting merge into it — PolyGraph's
// batching idea applied at the link level. Merging collapses many fabric
// messages (and many destination-side delivery events) into one, which is
// both a bandwidth win in the modeled machine and a simulator-speed win.
//
// Determinism: all coalescing state is owned by the source GPN's shard —
// buffers fill and flush entirely on the sender's engine, and the flush
// timer is an ordinary event on that engine — so results are bit-identical
// at every worker count. With a program-supplied merge function (exact for
// the min-reductions of BFS/SSSP/CC), same-vertex updates fold into one
// message entry; without one, payloads only concatenate, which is correct
// for any program.
package network

import (
	"nova/internal/sim"
	"nova/program"
)

// CoalesceConfig tunes the in-fabric coalescing stage.
type CoalesceConfig struct {
	// Window is how many ticks a cross-GPN batch waits for merge partners
	// before traversing the fabric. 0 disables coalescing.
	Window sim.Ticks
	// Capacity bounds the buffered message entries per destination PE; a
	// buffer reaching it flushes immediately. 0 means
	// DefaultCoalesceCapacity.
	Capacity int
}

// DefaultCoalesceCapacity bounds a coalescing buffer when
// CoalesceConfig.Capacity is 0.
const DefaultCoalesceCapacity = 64

func (c CoalesceConfig) capacity() int {
	if c.Capacity > 0 {
		return c.Capacity
	}
	return DefaultCoalesceCapacity
}

// MergeFunc combines two in-flight deltas addressed to the same vertex.
// It must satisfy Reduce(Reduce(cur,a),b) == Reduce(cur, merge(a,b)) for
// the running program's Reduce (see program.DeltaMerger).
type MergeFunc func(a, b program.Prop) program.Prop

// Batch is the optional interface a Send delivery handler implements to
// opt into coalescing: the fabric reads and rewrites the handler's
// message payload while it waits for link bandwidth, and Discards
// handlers it absorbed into another. Discard is called on the sending
// shard's goroutine, before the handler was ever scheduled.
type Batch interface {
	sim.Handler
	Payload() []program.Message
	SetPayload([]program.Message)
	Discard()
}

// coalFlush is the pre-allocated flush-timer handler of one buffer.
type coalFlush struct {
	h   *Hierarchical
	sg  int32
	dst int32
}

func (f *coalFlush) Fire() { f.h.flushCoal(int(f.sg), int(f.dst)) }

// coalBuf buffers at most one in-flight Batch per destination PE.
type coalBuf struct {
	// head is the accumulating batch; nil when the buffer is empty.
	head Batch
	// offeredBytes sums the bytes of every Send absorbed since the last
	// flush; the flushed message carries len(payload)×bytesPerMsg, and
	// the difference is BytesSaved.
	offeredBytes int
	bytesPerMsg  int32
	// gen stamps the vertex index entries of the current fill.
	gen     uint32
	flush   coalFlush
	flushEv *sim.Event
}

// initCoalesce allocates the per-GPN coalescing state: one buffer (with a
// pre-allocated flush event) per destination PE, and the vertex→slot
// index when the vertex count is known.
func (h *Hierarchical) initCoalesce(vertices int) {
	totalPEs := len(h.gpn) * h.pesPerGPN
	for gi := range h.gpn {
		g := &h.gpn[gi]
		g.coal = make([]coalBuf, totalPEs)
		for dst := range g.coal {
			b := &g.coal[dst]
			b.flush = coalFlush{h: h, sg: int32(gi), dst: int32(dst)}
			b.flushEv = sim.NewEvent(&b.flush)
		}
		if vertices > 0 {
			g.vidx = make([]int32, vertices)
			g.vgen = make([]uint32, vertices)
		}
	}
}

// coalesceSend buffers a cross-GPN batch: the first batch to a
// destination opens the buffer and arms the flush timer; later batches
// fold into it (merging same-vertex deltas when a MergeFunc is installed)
// and are discarded. A buffer reaching capacity flushes immediately.
func (h *Hierarchical) coalesceSend(g *hierGPN, sg, dst, bytes int, b Batch) {
	buf := &g.coal[dst]
	limit := h.coalesce.capacity()
	if buf.head == nil {
		buf.head = b
		buf.offeredBytes = bytes
		payload := b.Payload()
		if n := len(payload); n > 0 {
			buf.bytesPerMsg = int32(bytes / n)
		} else {
			buf.bytesPerMsg = 0
		}
		if h.merge != nil && g.vidx != nil {
			g.seq++
			buf.gen = g.seq
			for i, m := range payload {
				g.vidx[m.Dst] = int32(i)
				g.vgen[m.Dst] = buf.gen
			}
		}
		if len(payload) >= limit {
			h.flushCoal(sg, dst)
			return
		}
		g.eng.ScheduleEvent(buf.flushEv, h.coalesce.Window)
		return
	}
	g.stats.Coalesced++
	buf.offeredBytes += bytes
	payload := buf.head.Payload()
	canMerge := h.merge != nil && g.vidx != nil
	for _, m := range b.Payload() {
		if canMerge {
			if g.vgen[m.Dst] == buf.gen {
				e := &payload[g.vidx[m.Dst]]
				e.Delta = h.merge(e.Delta, m.Delta)
				g.stats.MergedUpdates++
				continue
			}
			g.vidx[m.Dst] = int32(len(payload))
			g.vgen[m.Dst] = buf.gen
		}
		payload = append(payload, m)
	}
	buf.head.SetPayload(payload)
	b.Discard()
	if len(payload) >= limit {
		g.eng.Deschedule(buf.flushEv)
		h.flushCoal(sg, dst)
	}
}

// flushCoal closes a buffer and sends its accumulated batch over the
// topology as one message, charged for the merged payload only.
func (h *Hierarchical) flushCoal(sg, dst int) {
	g := &h.gpn[sg]
	buf := &g.coal[dst]
	b := buf.head
	if b == nil {
		return
	}
	buf.head = nil
	bytes := len(b.Payload()) * int(buf.bytesPerMsg)
	if bytes > buf.offeredBytes {
		bytes = buf.offeredBytes
	}
	g.stats.BytesSaved += uint64(buf.offeredBytes - bytes)
	h.sendInter(g, sg, dst/h.pesPerGPN, dst, bytes, b)
}
