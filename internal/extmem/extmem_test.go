package extmem

import (
	"context"
	"math/rand"
	"testing"

	"nova/graph"
	"nova/internal/ref"
	"nova/program"
)

func testConfig() Config {
	cfg := DefaultConfig()
	// Small budget and intervals so a 100-vertex test graph still pages.
	cfg.RAMBytes = 2 << 10
	cfg.PartitionEdges = 64
	return cfg
}

func randGraph(seed int64, n, m int) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    graph.VertexID(rng.Intn(n)),
			Dst:    graph.VertexID(rng.Intn(n)),
			Weight: uint32(1 + rng.Intn(8)),
		}
	}
	return graph.FromEdges("rand", n, edges)
}

func distsOf(props []program.Prop) []int64 {
	out := make([]int64, len(props))
	for i, p := range props {
		if p == program.Inf {
			out[i] = ref.Unreached
		} else {
			out[i] = int64(p)
		}
	}
	return out
}

func TestExtmemBFSMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randGraph(seed, 120, 700)
		root := g.LargestOutDegreeVertex()
		res, err := Run(context.Background(), testConfig(), g, program.NewBFS(root))
		if err != nil {
			t.Fatal(err)
		}
		want := ref.BFS(g, root)
		got := distsOf(res.Props)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("seed %d vertex %d: got %d want %d", seed, v, got[v], want[v])
			}
		}
		if res.Ticks == 0 || res.Stats.EdgesTraversed == 0 {
			t.Fatalf("seed %d: no modeled work: %+v", seed, res)
		}
	}
}

func TestExtmemSSSPAndCCMatchOracle(t *testing.T) {
	g := randGraph(3, 100, 600)
	root := g.LargestOutDegreeVertex()
	res, err := Run(context.Background(), testConfig(), g, program.NewSSSP(root))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.SSSP(g, root)
	got := distsOf(res.Props)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("sssp vertex %d: got %d want %d", v, got[v], want[v])
		}
	}
	gs := randGraph(5, 150, 400).Symmetrize()
	res, err = Run(context.Background(), testConfig(), gs, program.NewCC())
	if err != nil {
		t.Fatal(err)
	}
	wantCC := ref.CC(gs)
	for v := range wantCC {
		if int64(res.Props[v]) != wantCC[v] {
			t.Fatalf("cc vertex %d: label %d, want %d", v, res.Props[v], wantCC[v])
		}
	}
}

func TestExtmemPagingAccounted(t *testing.T) {
	g := randGraph(9, 200, 2000)
	root := g.LargestOutDegreeVertex()
	res, err := Run(context.Background(), testConfig(), g, program.NewBFS(root))
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions < 2 {
		t.Fatalf("expected a multi-partition schedule, got %d", res.Partitions)
	}
	if res.PartitionLoads == 0 || res.BytesPaged == 0 || res.IOStallTicks == 0 {
		t.Fatalf("paging not accounted: %+v", res)
	}
	if res.Evictions == 0 {
		t.Fatalf("tiny RAM budget must evict: %+v", res)
	}
	bag := res.Dump.Bag()
	for name, want := range map[string]float64{
		MetricPartitionLoads: float64(res.PartitionLoads),
		MetricBytesPaged:     float64(res.BytesPaged),
		MetricIOStallTicks:   float64(res.IOStallTicks),
		MetricCacheHitRate:   res.CacheHitRate,
	} {
		if bag[name] != want {
			t.Errorf("dump %s = %v, result %v", name, bag[name], want)
		}
	}

	// A RAM budget that holds the whole graph loads each partition once
	// and finishes no later.
	big := testConfig()
	big.RAMBytes = 1 << 30
	res2, err := Run(context.Background(), big, g, program.NewBFS(root))
	if err != nil {
		t.Fatal(err)
	}
	if res2.PartitionLoads != uint64(res2.Partitions) {
		t.Fatalf("all-resident run loaded %d partitions, want %d", res2.PartitionLoads, res2.Partitions)
	}
	if res2.Ticks > res.Ticks {
		t.Fatalf("bigger cache slower: %d > %d", res2.Ticks, res.Ticks)
	}
}

func TestExtmemDeterministic(t *testing.T) {
	g := randGraph(13, 150, 900)
	root := g.LargestOutDegreeVertex()
	a, err := Run(context.Background(), testConfig(), g, program.NewSSSP(root))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), testConfig(), g, program.NewSSSP(root))
	if err != nil {
		t.Fatal(err)
	}
	if a.Ticks != b.Ticks || a.PartitionLoads != b.PartitionLoads || a.BytesPaged != b.BytesPaged {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
}

func TestExtmemRejectsBSP(t *testing.T) {
	g := randGraph(1, 50, 200)
	if _, err := Run(context.Background(), testConfig(), g, program.NewPageRank(0.85, 5)); err == nil {
		t.Fatal("BSP program accepted")
	}
}

func TestExtmemCancellation(t *testing.T) {
	g := randGraph(2, 200, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, testConfig(), g, program.NewBFS(g.LargestOutDegreeVertex()))
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if res == nil || !res.Partial || res.StopReason == "" {
		t.Fatalf("cancelled run did not salvage a partial result: %+v", res)
	}
}
