// Package extmem models the external-memory baseline: a PartitionedVC /
// GridGraph-style out-of-core framework that splits the vertex set into
// contiguous intervals, keeps vertex state in DRAM, and streams each
// interval's edge partition from SSD on demand through a bounded DRAM
// partition cache.
//
// The model is functional-plus-analytic, like the PolyGraph baseline:
// vertex updates execute functionally while time is charged in core clock
// cycles against two devices — DRAM streaming for edge processing and the
// SSD for partition loads. Loads for one round are issued in processing
// order at the round's start, so up to QueueDepth transfers overlap the
// computation (the standard prefetch pipeline of out-of-core engines);
// compute stalls only when it reaches a partition whose load has not
// completed, and that exposed latency is the io_stall_ticks component
// NOVA's in-situ spill path is compared against.
package extmem

import (
	"context"
	"fmt"

	"nova/graph"
	"nova/internal/mem"
	"nova/internal/sim"
	"nova/internal/stats"
	"nova/program"
)

// Metric names for the root-level statistics the external-memory engine
// exports to the harness metrics bag. partition_loads, bytes_paged and
// io_stall_ticks are shared with the NOVA engine's out-of-core tier, which
// is what lets the spill/recovery comparison stack them side by side.
const (
	MetricPartitionLoads = "partition_loads"
	MetricBytesPaged     = "bytes_paged"
	MetricIOStallTicks   = "io_stall_ticks"
	MetricCacheHitRate   = "cache_hit_rate"
	MetricPartitions     = "partitions"
	MetricRounds         = "rounds"
	MetricCycles         = "cycles"
	MetricComputeCycles  = "compute_cycles"
	MetricEvictions      = "evictions"
)

// Config describes the external-memory machine.
type Config struct {
	// RAMBytes is the DRAM partition-cache budget. Partitions beyond it
	// are evicted least-recently-used and pay an SSD load on reuse.
	RAMBytes int64
	// PartitionEdges is the target edge count per vertex interval.
	PartitionEdges int64
	// SSD is the paging device timing (mem.NVMeSSDConfig /
	// mem.SATASSDConfig presets at a 2 GHz core clock).
	SSD mem.SSDConfig
	// MemBandwidth is DRAM streaming bandwidth in bytes per core cycle
	// (default 166.4, i.e. 332.8 GB/s at 2 GHz — the iso-bandwidth
	// setting the PolyGraph baseline uses).
	MemBandwidth float64
	// EdgeBytes sizes one stored edge (default 8: destination + weight).
	EdgeBytes int
	// ClockHz converts cycles to seconds (default 2 GHz).
	ClockHz float64
	// MaxRounds bounds the outer loop (0 = default).
	MaxRounds int
}

// DefaultConfig returns a 256 MiB-DRAM external-memory machine with an
// NVMe paging device.
func DefaultConfig() Config {
	return Config{
		RAMBytes:       256 << 20,
		PartitionEdges: 1 << 20,
		SSD:            mem.NVMeSSDConfig("ssd"),
		MemBandwidth:   166.4,
		EdgeBytes:      8,
		ClockHz:        2e9,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.RAMBytes <= 0:
		return fmt.Errorf("extmem: RAMBytes = %d", c.RAMBytes)
	case c.PartitionEdges <= 0:
		return fmt.Errorf("extmem: PartitionEdges = %d", c.PartitionEdges)
	case c.MemBandwidth <= 0:
		return fmt.Errorf("extmem: MemBandwidth = %v", c.MemBandwidth)
	case c.EdgeBytes <= 0:
		return fmt.Errorf("extmem: EdgeBytes = %d", c.EdgeBytes)
	case c.ClockHz <= 0:
		return fmt.Errorf("extmem: ClockHz = %v", c.ClockHz)
	}
	return c.SSD.Validate()
}

// Result reports one external-memory execution.
type Result struct {
	Props []program.Prop
	Stats program.RunStats
	// Ticks is total modeled time; ComputeTicks the DRAM-streaming
	// share, IOStallTicks the SSD latency compute could not hide.
	Ticks        sim.Ticks
	ComputeTicks sim.Ticks
	IOStallTicks sim.Ticks
	// PartitionLoads counts SSD partition reads; BytesPaged their
	// page-rounded volume; CacheHits reuses out of the DRAM cache.
	PartitionLoads uint64
	BytesPaged     uint64
	CacheHits      uint64
	Evictions      uint64
	CacheHitRate   float64
	// Partitions and Rounds describe the interval schedule.
	Partitions int
	Rounds     int
	// Partial marks a salvaged result from a run that stopped early;
	// StopReason classifies the cause.
	Partial    bool
	StopReason sim.StopReason
	// Dump is the full hierarchical statistics dump for the run.
	Dump *stats.Dump
}

// ssdModel is the queue-slot device: the same math as mem.SSD.PageIn, but
// clocked explicitly so the analytic model needs no event engine. Each
// read occupies the earliest-free of QueueDepth slots for its transfer and
// completes FixedLatency later.
type ssdModel struct {
	cfg      mem.SSDConfig
	slotFree []sim.Ticks
}

// read issues one partition read at time `now` and returns its completion
// time and page-rounded volume.
func (d *ssdModel) read(now sim.Ticks, bytes int64) (complete sim.Ticks, moved uint64) {
	pages := (uint64(bytes) + uint64(d.cfg.PageBytes) - 1) / uint64(d.cfg.PageBytes)
	if pages == 0 {
		pages = 1
	}
	moved = pages * uint64(d.cfg.PageBytes)
	service := sim.Ticks(float64(moved)/d.cfg.BytesPerCycle + 0.999999)
	if service == 0 {
		service = 1
	}
	slot := 0
	for i := 1; i < len(d.slotFree); i++ {
		if d.slotFree[i] < d.slotFree[slot] {
			slot = i
		}
	}
	start := now
	if d.slotFree[slot] > start {
		start = d.slotFree[slot]
	}
	d.slotFree[slot] = start + service
	return start + service + d.cfg.FixedLatency, moved
}

type machine struct {
	cfg     Config
	ctx     context.Context
	g       *graph.CSR
	p       program.Program
	prep    program.PropPreparer
	selfUpd program.SelfUpdating

	// Interval schedule: partition pi owns vertices [bounds[pi], bounds[pi+1]).
	bounds []int
	partOf []int32
	// partBytes is each partition's on-SSD footprint (rows + edges).
	partBytes []int64

	props []program.Prop

	// DRAM partition cache (simulated): resident set + LRU stamps.
	resident  []bool
	lastUse   []uint64
	loadDone  []sim.Ticks
	cachedNow int64
	useTick   uint64

	dev   *ssdModel
	clock sim.Ticks

	stats          program.RunStats
	computeTicks   sim.Ticks
	ioStallTicks   sim.Ticks
	partitionLoads uint64
	bytesPaged     uint64
	cacheHits      uint64
	evictions      uint64
	rounds         int
	// loadsPerPart nests per-partition load counts in the stats tree.
	loadsPerPart []int64

	root   *stats.Group
	result *Result
}

// Run executes p on g under the external-memory model. Only asynchronous
// programs (bfs, sssp, cc, prdelta) are supported: interval-at-a-time
// processing has no global barrier to hang a BSP epoch on, which is
// exactly the trade-off the paper's comparison is about. ctx cancellation
// is polled per round and per partition; on a cooperative stop Run
// salvages the statistics so far and returns BOTH a Result marked Partial
// and the error.
func Run(ctx context.Context, cfg Config, g *graph.CSR, p program.Program) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if p.Mode() == program.BSP {
		return nil, fmt.Errorf("extmem: %s is bulk-synchronous; the external-memory baseline runs asynchronous programs only (bfs, sssp, cc, prdelta)", p.Name())
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m := &machine{cfg: cfg, ctx: ctx, g: g, p: p}
	m.prep, _ = p.(program.PropPreparer)
	m.selfUpd, _ = p.(program.SelfUpdating)
	m.setup()
	err := m.run()
	reason := sim.ReasonFor(err)
	if err != nil && reason == "" {
		return nil, err
	}
	r := m.collect()
	r.Partial = reason != ""
	r.StopReason = reason
	return r, err
}

func (m *machine) setup() {
	g := m.g
	n := g.NumVertices()
	// Greedy interval split: grow each partition until it exceeds the
	// edge target (always at least one vertex per partition).
	m.bounds = []int{0}
	var acc int64
	for v := 0; v < n; v++ {
		acc += g.RowPtr[v+1] - g.RowPtr[v]
		if acc >= m.cfg.PartitionEdges && v+1 < n {
			m.bounds = append(m.bounds, v+1)
			acc = 0
		}
	}
	m.bounds = append(m.bounds, n)
	parts := len(m.bounds) - 1
	m.partOf = make([]int32, n)
	m.partBytes = make([]int64, parts)
	for pi := 0; pi < parts; pi++ {
		lo, hi := m.bounds[pi], m.bounds[pi+1]
		for v := lo; v < hi; v++ {
			m.partOf[v] = int32(pi)
		}
		edges := g.RowPtr[hi] - g.RowPtr[lo]
		m.partBytes[pi] = int64(hi-lo+1)*8 + edges*int64(m.cfg.EdgeBytes)
	}
	m.resident = make([]bool, parts)
	m.lastUse = make([]uint64, parts)
	m.loadDone = make([]sim.Ticks, parts)
	m.loadsPerPart = make([]int64, parts)
	m.dev = &ssdModel{cfg: m.cfg.SSD, slotFree: make([]sim.Ticks, m.cfg.SSD.QueueDepth)}
	m.props = make([]program.Prop, n)
	for v := range m.props {
		m.props[v] = m.p.InitProp(graph.VertexID(v), g)
	}
	m.buildStatsTree()
}

func (m *machine) buildStatsTree() {
	root := stats.NewRoot()
	m.root = root
	res := func(f func(r *Result) float64) func() float64 {
		return func() float64 {
			if m.result == nil {
				return 0
			}
			return f(m.result)
		}
	}
	root.Formula(res(func(r *Result) float64 { return float64(r.Ticks) }),
		MetricCycles, stats.Cycles, "modeled cycles to completion (compute + exposed I/O stalls)")
	root.Formula(res(func(r *Result) float64 { return float64(r.ComputeTicks) }),
		MetricComputeCycles, stats.Cycles, "DRAM-streaming compute share of the modeled time")
	root.Formula(res(func(r *Result) float64 { return float64(r.IOStallTicks) }),
		MetricIOStallTicks, stats.Cycles, "SSD load latency the prefetch pipeline could not hide")
	root.Formula(res(func(r *Result) float64 { return float64(r.PartitionLoads) }),
		MetricPartitionLoads, stats.Count, "edge partitions read from the SSD")
	root.Formula(res(func(r *Result) float64 { return float64(r.BytesPaged) }),
		MetricBytesPaged, stats.Bytes, "page-rounded bytes read from the SSD")
	root.Formula(res(func(r *Result) float64 { return r.CacheHitRate }),
		MetricCacheHitRate, stats.Ratio, "partition touches served from the DRAM cache")
	root.Formula(res(func(r *Result) float64 { return float64(r.Partitions) }),
		MetricPartitions, stats.Count, "vertex intervals in the schedule")
	root.Formula(res(func(r *Result) float64 { return float64(r.Rounds) }),
		MetricRounds, stats.Count, "outer rounds over the interval schedule")
	root.Formula(res(func(r *Result) float64 { return float64(r.Evictions) }),
		MetricEvictions, stats.Count, "partitions evicted from the DRAM cache")
	for pi := range m.loadsPerPart {
		pg := root.Group(fmt.Sprintf("part%d", pi))
		pg.Int64(&m.loadsPerPart[pi], "loads", stats.Count, "times this partition was read from the SSD")
		pg.Int64(&m.partBytes[pi], "bytes", stats.Bytes, "partition footprint on the SSD (rows + edges)")
	}
}

// touch marks pi most-recently-used and, on a miss, issues its load at
// time `at`, evicting LRU residents until the partition fits the RAM
// budget. Returns the tick compute may start processing pi.
func (m *machine) touch(pi int, at sim.Ticks) sim.Ticks {
	m.useTick++
	m.lastUse[pi] = m.useTick
	if m.resident[pi] {
		m.cacheHits++
		return at
	}
	for m.cachedNow+m.partBytes[pi] > m.cfg.RAMBytes {
		victim := -1
		for i, r := range m.resident {
			if r && (victim < 0 || m.lastUse[i] < m.lastUse[victim]) {
				victim = i
			}
		}
		if victim < 0 {
			break // partition larger than RAM: stream it anyway
		}
		m.resident[victim] = false
		m.cachedNow -= m.partBytes[victim]
		m.evictions++
	}
	complete, moved := m.dev.read(at, m.partBytes[pi])
	m.partitionLoads++
	m.loadsPerPart[pi]++
	m.bytesPaged += moved
	m.resident[pi] = true
	m.cachedNow += m.partBytes[pi]
	m.loadDone[pi] = complete
	return complete
}

func (m *machine) maxRounds() int {
	if m.cfg.MaxRounds > 0 {
		return m.cfg.MaxRounds
	}
	return 1 << 20
}

// selfSeed marks worklist seeds that are activations, not real messages.
const selfSeed = program.Prop(1<<64 - 2)

// run is the interval-at-a-time loop: each round sweeps the partitions
// with pending work in interval order, prefetching the round's misses
// through the SSD queue before compute reaches them.
func (m *machine) run() error {
	g := m.g
	pending := make([][]program.Message, len(m.partBytes))
	for _, v := range m.p.InitActive(g) {
		pending[m.partOf[v]] = append(pending[m.partOf[v]], program.Message{Dst: v, Delta: selfSeed})
	}
	inQueue := make([]bool, g.NumVertices())
	var work []graph.VertexID

	for round := 0; round < m.maxRounds(); round++ {
		if err := m.ctx.Err(); err != nil {
			return err
		}
		var todo []int
		for pi := range pending {
			if len(pending[pi]) > 0 {
				todo = append(todo, pi)
			}
		}
		if len(todo) == 0 {
			return nil
		}
		m.rounds++
		// Prefetch: issue every miss in processing order now; the device
		// overlaps up to QueueDepth transfers with the compute below.
		ready := make([]sim.Ticks, len(todo))
		for i, pi := range todo {
			ready[i] = m.touch(pi, m.clock)
		}
		for i, pi := range todo {
			if err := m.ctx.Err(); err != nil {
				return err
			}
			if ready[i] > m.clock {
				m.ioStallTicks += ready[i] - m.clock
				m.clock = ready[i]
			}
			batch := pending[pi]
			pending[pi] = batch[:0]
			var passEdges int64
			// Reduce the buffered messages, then drain the interval-local
			// worklist (same coalescing semantics as the PolyGraph model:
			// duplicates merge in the worklist, remote updates buffer).
			for _, msg := range batch {
				v := msg.Dst
				if msg.Delta != selfSeed {
					next := m.p.Reduce(v, m.props[v], msg.Delta)
					if next == m.props[v] {
						continue
					}
					m.props[v] = next
				}
				if !inQueue[v] {
					inQueue[v] = true
					work = append(work, v)
				} else {
					m.stats.MessagesCoalesced++
				}
			}
			for qi := 0; qi < len(work); qi++ {
				v := work[qi]
				inQueue[v] = false
				prop := m.props[v]
				if m.selfUpd != nil {
					m.props[v], prop = m.selfUpd.OnPropagate(v, m.props[v])
				}
				if m.prep != nil {
					prop = m.prep.PrepareProp(v, prop)
				}
				lo, hi := g.RowPtr[v], g.RowPtr[v+1]
				outDeg := hi - lo
				for e := lo; e < hi; e++ {
					delta, ok := m.p.Propagate(prop, g.Weight[e], outDeg)
					if !ok {
						continue
					}
					passEdges++
					m.stats.EdgesTraversed++
					m.stats.MessagesSent++
					dst := g.Dst[e]
					if m.partOf[dst] == int32(pi) {
						if inQueue[dst] {
							m.stats.MessagesCoalesced++
						}
						next := m.p.Reduce(dst, m.props[dst], delta)
						if next != m.props[dst] {
							m.props[dst] = next
							if !inQueue[dst] {
								inQueue[dst] = true
								work = append(work, dst)
							}
						}
					} else {
						pending[m.partOf[dst]] = append(pending[m.partOf[dst]], program.Message{Dst: dst, Delta: delta})
					}
				}
			}
			work = work[:0]
			compute := sim.Ticks(float64(passEdges*int64(m.cfg.EdgeBytes))/m.cfg.MemBandwidth + 0.999999)
			m.computeTicks += compute
			m.clock += compute
		}
	}
	return fmt.Errorf("%w: extmem round budget exhausted (non-monotone program?)", sim.ErrMaxEvents)
}

func (m *machine) collect() *Result {
	m.stats.SimSeconds = float64(m.clock) / m.cfg.ClockHz
	r := &Result{
		Props:          m.props,
		Stats:          m.stats,
		Ticks:          m.clock,
		ComputeTicks:   m.computeTicks,
		IOStallTicks:   m.ioStallTicks,
		PartitionLoads: m.partitionLoads,
		BytesPaged:     m.bytesPaged,
		CacheHits:      m.cacheHits,
		Evictions:      m.evictions,
		Partitions:     len(m.partBytes),
		Rounds:         m.rounds,
	}
	if touches := m.partitionLoads + m.cacheHits; touches > 0 {
		r.CacheHitRate = float64(m.cacheHits) / float64(touches)
	}
	// Set before dumping: the root formulas read m.result.
	m.result = r
	r.Dump = m.root.Dump(map[string]string{
		"engine":  "extmem",
		"program": m.p.Name(),
		"graph":   m.g.Name,
	})
	return r
}
