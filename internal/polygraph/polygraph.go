// Package polygraph models the paper's baseline: PolyGraph (Dadu et al.,
// ISCA 2021), a state-of-the-art graph accelerator that relies on temporal
// partitioning. Following the paper's methodology (Section V), we model the
// most optimized variant (Ss, Ac, Tw): asynchronous slice-local execution
// out of on-chip memory, slices processed until no new local messages are
// generated, parallelized slice switching that fully utilizes memory
// bandwidth, and work reordering that batches pending messages per
// destination vertex before processing a slice.
//
// The model is functional-plus-analytic: vertex state updates execute
// functionally while time is charged against the accelerator's unified
// memory bandwidth for the three components the paper measures in Fig. 2 —
// processing (first pass over a slice's work), switching (slice vertex I/O
// and replicated-vertex synchronization), and inefficiency (repeat passes
// caused by inter-slice dependencies).
package polygraph

import (
	"context"
	"errors"
	"fmt"

	"nova/graph"
	"nova/internal/sim"
	"nova/internal/stats"
	"nova/program"
)

// Metric names for the root-level statistics the PolyGraph engine exports
// to the harness metrics bag; they are also the stable dump paths of the
// engine's stats tree.
const (
	MetricProcessingSeconds   = "processing_seconds"
	MetricSwitchingSeconds    = "switching_seconds"
	MetricInefficiencySeconds = "inefficiency_seconds"
	MetricSliceCount          = "slice_count"
	MetricRounds              = "rounds"
	MetricSlicePasses         = "slice_passes"
	MetricEdgeBWShare         = "edge_bw_share"
)

// Config describes a PolyGraph-style accelerator.
type Config struct {
	// OnChipBytes is the scratchpad capacity (32 MiB in the paper).
	OnChipBytes int64
	// BytesPerVertexOnChip is the per-vertex on-chip footprint that
	// determines slice count: slices = ceil(V·bytes / capacity). The
	// paper's Table III slice counts correspond to 4 B per vertex.
	BytesPerVertexOnChip int
	// MemBandwidth is the unified off-chip bandwidth in bytes/second
	// (332.8 GB/s in the iso-bandwidth comparison).
	MemBandwidth float64
	// EdgeBytes and MsgBytes size streamed edges and buffered
	// inter-slice messages.
	EdgeBytes int
	MsgBytes  int
	// SliceVertexBytes is the per-vertex traffic of writing out one
	// slice and reading in the next.
	SliceVertexBytes int
	// ReplicaBytes is the per-replicated-vertex read+update traffic on
	// a slice switch.
	ReplicaBytes int
	// PassLatencySeconds is the fixed pipeline-fill/message-fetch
	// latency each slice pass pays before streaming can proceed; it is
	// what makes sparse high-diameter traversals (road networks) slow on
	// the baseline too, not just bandwidth-bound (0 = default 0.25 us).
	PassLatencySeconds float64
	// ReorderWindow is the number of buffered inter-slice messages the
	// Tw work-reordering scheduler can batch and coalesce at a time —
	// PolyGraph coalesces within its on-chip task window, not across the
	// whole off-chip buffer (0 = default 64).
	ReorderWindow int
	// MaxRounds bounds the outer loop (0 = default).
	MaxRounds int
	// ForceSlices overrides the computed slice count when positive
	// (used by the Fig. 2 sweep).
	ForceSlices int
}

// DefaultConfig returns the paper's PolyGraph configuration.
func DefaultConfig() Config {
	return Config{
		OnChipBytes:          32 << 20,
		BytesPerVertexOnChip: 4,
		MemBandwidth:         332.8e9,
		EdgeBytes:            8,
		MsgBytes:             16,
		SliceVertexBytes:     4,
		ReplicaBytes:         8,
		PassLatencySeconds:   0.25e-6,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.OnChipBytes <= 0:
		return fmt.Errorf("polygraph: OnChipBytes = %d", c.OnChipBytes)
	case c.BytesPerVertexOnChip <= 0:
		return fmt.Errorf("polygraph: BytesPerVertexOnChip = %d", c.BytesPerVertexOnChip)
	case c.MemBandwidth <= 0:
		return fmt.Errorf("polygraph: MemBandwidth = %v", c.MemBandwidth)
	case c.EdgeBytes <= 0 || c.MsgBytes <= 0 || c.SliceVertexBytes < 0 || c.ReplicaBytes < 0:
		return errors.New("polygraph: byte sizes must be positive")
	case c.PassLatencySeconds < 0:
		return errors.New("polygraph: PassLatencySeconds must be non-negative")
	}
	return nil
}

// SliceCount returns the number of temporal slices the graph needs.
func (c Config) SliceCount(numVertices int) int {
	if c.ForceSlices > 0 {
		return c.ForceSlices
	}
	bytes := int64(numVertices) * int64(c.BytesPerVertexOnChip)
	s := int((bytes + c.OnChipBytes - 1) / c.OnChipBytes)
	if s < 1 {
		s = 1
	}
	return s
}

// Result reports one PolyGraph execution with the Fig. 2/6 time breakdown.
type Result struct {
	Props []program.Prop
	Stats program.RunStats
	// ProcessingSeconds is first-pass slice work; InefficiencySeconds is
	// repeat-pass work; SwitchingSeconds is slice I/O.
	ProcessingSeconds   float64
	SwitchingSeconds    float64
	InefficiencySeconds float64
	// SliceCount and Rounds describe the temporal schedule.
	SliceCount int
	Rounds     int
	// SlicePasses is the total number of slice activations (≥ SliceCount
	// on multi-round executions).
	SlicePasses int
	// EdgeBandwidthShare is the fraction of total memory traffic spent
	// streaming edges (the paper reports 25–35% for large graphs).
	EdgeBandwidthShare float64
	// Partial marks a salvaged result: the run stopped early (cancelled,
	// deadline, or round-budget exhaustion) and the stats cover only the
	// work completed before the stop. StopReason classifies the cause.
	Partial    bool
	StopReason sim.StopReason

	// Dump is the full hierarchical statistics dump for the run.
	Dump *stats.Dump
}

type machine struct {
	cfg     Config
	ctx     context.Context
	g       *graph.CSR
	p       program.Program
	bsp     program.BSPProgram
	sched   program.ScheduledProgram
	prep    program.PropPreparer
	selfUpd program.SelfUpdating
	slices  int
	sliceOf []int32
	// per-slice vertex counts and replicated-vertex counts.
	sliceVerts []int64
	boundary   []int64

	props []program.Prop

	// traffic accounting (bytes)
	edgeBytes   uint64
	msgIOBytes  uint64
	switchBytes uint64

	stats     program.RunStats
	procSec   float64
	switchSec float64
	ineffSec  float64
	passes    []int
	totalPass int

	// windowFill profiles how full each Tw reorder window runs; root backs
	// the stats tree and result the dump-time formulas set by collect.
	windowFill stats.Distribution
	root       *stats.Group
	result     *Result
}

// Run executes p on g under the PolyGraph model. ctx cancellation is
// polled at every round, slice activation, and epoch, so the model stops
// within one slice pass. On a cooperative stop (cancellation, deadline, or
// round-budget exhaustion) Run salvages the statistics accumulated so far
// and returns BOTH a Result marked Partial (with its StopReason) and the
// error.
func Run(ctx context.Context, cfg Config, g *graph.CSR, p program.Program) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m := &machine{cfg: cfg, ctx: ctx, g: g, p: p}
	if bp, ok := p.(program.BSPProgram); ok && p.Mode() == program.BSP {
		m.bsp = bp
	} else if p.Mode() == program.BSP {
		return nil, fmt.Errorf("polygraph: %s declares BSP mode but is not a BSPProgram", p.Name())
	}
	m.sched, _ = p.(program.ScheduledProgram)
	m.prep, _ = p.(program.PropPreparer)
	m.selfUpd, _ = p.(program.SelfUpdating)
	m.setup()
	var err error
	if m.bsp != nil {
		err = m.runBSP()
	} else {
		err = m.runAsync()
	}
	reason := sim.ReasonFor(err)
	if err != nil && reason == "" {
		return nil, err
	}
	r := m.collect()
	r.Partial = reason != ""
	r.StopReason = reason
	return r, err
}

func (m *machine) setup() {
	n := m.g.NumVertices()
	m.slices = m.cfg.SliceCount(n)
	part := graph.PartitionRange(n, m.slices)
	m.sliceOf = make([]int32, n)
	m.sliceVerts = make([]int64, m.slices)
	for v, s := range part.Owner {
		m.sliceOf[v] = int32(s)
		m.sliceVerts[s]++
	}
	// Replicated vertices: endpoints of inter-slice edges.
	isBoundary := make([]bool, n)
	for v := 0; v < n; v++ {
		sv := m.sliceOf[v]
		for _, d := range m.g.Neighbors(graph.VertexID(v)) {
			if m.sliceOf[d] != sv {
				isBoundary[v] = true
				isBoundary[d] = true
			}
		}
	}
	m.boundary = make([]int64, m.slices)
	for v, b := range isBoundary {
		if b {
			m.boundary[m.sliceOf[v]]++
		}
	}
	m.props = make([]program.Prop, n)
	for v := range m.props {
		m.props[v] = m.p.InitProp(graph.VertexID(v), m.g)
	}
	m.passes = make([]int, m.slices)
	m.buildStatsTree()
}

// buildStatsTree registers the machine's statistics: root-level formulas
// carry the legacy metrics-bag names (evaluated against m.result, which
// collect sets before dumping), traffic counters adopt the existing plain
// fields, and per-slice schedule detail nests under slice<i>.
func (m *machine) buildStatsTree() {
	root := stats.NewRoot()
	m.root = root
	res := func(f func(r *Result) float64) func() float64 {
		return func() float64 {
			if m.result == nil {
				return 0
			}
			return f(m.result)
		}
	}
	root.Formula(res(func(r *Result) float64 { return r.ProcessingSeconds }),
		MetricProcessingSeconds, stats.Seconds, "first-pass slice work (Fig. 2)")
	root.Formula(res(func(r *Result) float64 { return r.SwitchingSeconds }),
		MetricSwitchingSeconds, stats.Seconds, "slice vertex I/O and replicated-vertex synchronization (Fig. 2)")
	root.Formula(res(func(r *Result) float64 { return r.InefficiencySeconds }),
		MetricInefficiencySeconds, stats.Seconds, "repeat-pass work caused by inter-slice dependencies (Fig. 2)")
	root.Formula(res(func(r *Result) float64 { return float64(r.SliceCount) }),
		MetricSliceCount, stats.Count, "temporal slices the graph needs on-chip")
	root.Formula(res(func(r *Result) float64 { return float64(r.Rounds) }),
		MetricRounds, stats.Count, "outer rounds over the slice schedule")
	root.Formula(res(func(r *Result) float64 { return float64(r.SlicePasses) }),
		MetricSlicePasses, stats.Count, "total slice activations (≥ slice_count on multi-round runs)")
	root.Formula(res(func(r *Result) float64 { return r.EdgeBandwidthShare }),
		MetricEdgeBWShare, stats.Ratio, "fraction of memory traffic spent streaming edges")
	root.Uint64(&m.edgeBytes, "edge_bytes", stats.Bytes, "bytes spent streaming edges")
	root.Uint64(&m.msgIOBytes, "msg_io_bytes", stats.Bytes, "bytes spent buffering and re-reading inter-slice messages")
	root.Uint64(&m.switchBytes, "switch_bytes", stats.Bytes, "bytes spent on slice vertex I/O and replica synchronization")
	root.Distribution(&m.windowFill, "reorder_window_fill", stats.Entries, "messages per Tw reorder window")
	for s := 0; s < m.slices; s++ {
		sg := root.Group(fmt.Sprintf("slice%d", s))
		sg.Int(&m.passes[s], "passes", stats.Count, "times this slice was activated")
		sg.Int64(&m.sliceVerts[s], "vertices", stats.Count, "vertices resident in this slice")
		sg.Int64(&m.boundary[s], "replicated_vertices", stats.Count, "boundary vertices replicated across slices")
	}
}

// chargeSwitch accounts a slice switch (skipped for non-sliced execution).
func (m *machine) chargeSwitch(s int) {
	if m.slices == 1 {
		return
	}
	bytes := 2*m.sliceVerts[s]*int64(m.cfg.SliceVertexBytes) + m.boundary[s]*int64(m.cfg.ReplicaBytes)
	m.switchBytes += uint64(bytes)
	m.switchSec += float64(bytes) / m.cfg.MemBandwidth
}

// chargePass accounts one slice pass. Edge streaming is processing on the
// first pass and inefficiency on repeats (the paper's definition: "time
// spent processing slices more than once"). Inter-slice replicated-vertex
// message I/O counts as switching, per Section II-C's definition of the
// switching component. Every pass also pays a fixed pipeline-fill latency.
func (m *machine) chargePass(s int, edges int64, msgIO int64) {
	m.edgeBytes += uint64(edges * int64(m.cfg.EdgeBytes))
	m.msgIOBytes += uint64(msgIO)
	m.switchSec += float64(msgIO) / m.cfg.MemBandwidth
	sec := float64(edges*int64(m.cfg.EdgeBytes))/m.cfg.MemBandwidth + m.cfg.PassLatencySeconds
	m.passes[s]++
	m.totalPass++
	if m.passes[s] == 1 {
		m.procSec += sec
	} else {
		m.ineffSec += sec
	}
}

func (m *machine) maxRounds() int {
	if m.cfg.MaxRounds > 0 {
		return m.cfg.MaxRounds
	}
	return 1 << 20
}

// runAsync is the sliced asynchronous variant: slices are processed in
// turn until globally quiescent. Within a slice, execution drains a
// deduplicated on-chip worklist (updates arriving while a vertex waits in
// the queue coalesce — the on-chip coalescing window prior accelerators
// rely on). Buffered inter-slice messages are read back and reordered in
// limited windows (PolyGraph's Tw task scheduling): duplicates within one
// window coalesce, duplicates across windows do not — the work-efficiency
// gap NOVA's memory-wide window closes.
func (m *machine) runAsync() error {
	g := m.g
	window := m.cfg.ReorderWindow
	if window <= 0 {
		window = 64
	}
	pending := make([][]program.Message, m.slices)
	for _, v := range m.p.InitActive(g) {
		// Initial activations behave like messages already reduced:
		// seed the local worklists.
		pending[m.sliceOf[v]] = append(pending[m.sliceOf[v]], program.Message{Dst: v, Delta: selfSeed})
	}
	inQueue := make([]bool, g.NumVertices())
	var work []graph.VertexID

	// propagate drains the slice-local worklist with dedup flags.
	propagate := func(s int, passEdges, msgIO *int64) {
		for qi := 0; qi < len(work); qi++ {
			v := work[qi]
			inQueue[v] = false
			prop := m.props[v]
			if m.selfUpd != nil {
				m.props[v], prop = m.selfUpd.OnPropagate(v, m.props[v])
			}
			if m.prep != nil {
				prop = m.prep.PrepareProp(v, prop)
			}
			lo, hi := g.RowPtr[v], g.RowPtr[v+1]
			outDeg := hi - lo
			for e := lo; e < hi; e++ {
				delta, ok := m.p.Propagate(prop, g.Weight[e], outDeg)
				if !ok {
					continue
				}
				*passEdges++
				m.stats.EdgesTraversed++
				m.stats.MessagesSent++
				dst := g.Dst[e]
				if m.sliceOf[dst] == int32(s) {
					if inQueue[dst] {
						m.stats.MessagesCoalesced++
					}
					next := m.p.Reduce(dst, m.props[dst], delta)
					if next != m.props[dst] {
						m.props[dst] = next
						if !inQueue[dst] {
							inQueue[dst] = true
							work = append(work, dst)
						}
					}
				} else {
					pending[m.sliceOf[dst]] = append(pending[m.sliceOf[dst]], program.Message{Dst: dst, Delta: delta})
					*msgIO += int64(m.cfg.MsgBytes) // buffered to DRAM
				}
			}
		}
		work = work[:0]
	}

	for round := 0; round < m.maxRounds(); round++ {
		if err := m.ctx.Err(); err != nil {
			return err
		}
		anyPending := false
		for s := 0; s < m.slices && !anyPending; s++ {
			anyPending = len(pending[s]) > 0
		}
		if !anyPending {
			return nil
		}
		for s := 0; s < m.slices; s++ {
			// Cancellation is polled per slice activation, bounding the
			// stop latency to one slice pass.
			if err := m.ctx.Err(); err != nil {
				return err
			}
			// Temporal multiplexing rotates the scratchpad through the
			// slices: every visit pays the full slice-I/O and
			// replicated-vertex synchronization, however little work
			// the slice has this round.
			m.chargeSwitch(s)
			if len(pending[s]) == 0 {
				continue
			}
			var passEdges int64
			var msgIO int64
			batch := pending[s]
			// Recycle the batch backing: messages for slice s are never
			// produced while slice s itself is processing (the local case
			// reduces in place), so the buffer is free for the next round.
			pending[s] = batch[:0]
			// Read real buffered messages back from DRAM (worklist
			// seeds from InitActive are not memory traffic).
			for _, msg := range batch {
				if msg.Delta != selfSeed {
					msgIO += int64(m.cfg.MsgBytes)
				}
			}
			for base := 0; base < len(batch); base += window {
				end := base + window
				if end > len(batch) {
					end = len(batch)
				}
				chunk := batch[base:end]
				m.windowFill.Sample(float64(len(chunk)))
				// Tw reordering: sort the window by destination so
				// same-vertex updates merge before processing.
				sortByDst(chunk)
				for i := 0; i < len(chunk); {
					j := i
					v := chunk[i].Dst
					changed := false
					for ; j < len(chunk) && chunk[j].Dst == v; j++ {
						if j > i {
							m.stats.MessagesCoalesced++
						}
						if chunk[j].Delta == selfSeed {
							changed = true
							continue
						}
						next := m.p.Reduce(v, m.props[v], chunk[j].Delta)
						if next != m.props[v] {
							m.props[v] = next
							changed = true
						}
					}
					if changed && !inQueue[v] {
						inQueue[v] = true
						work = append(work, v)
					}
					i = j
				}
				propagate(s, &passEdges, &msgIO)
			}
			m.chargePass(s, passEdges, msgIO)
		}
	}
	return fmt.Errorf("%w: polygraph round budget exhausted (non-monotone program?)", sim.ErrMaxEvents)
}

// selfSeed marks worklist seeds that are activations, not real messages.
const selfSeed = program.Prop(1<<64 - 2)

// sortByDst stably sorts one reorder window by destination vertex. Windows
// are small (ReorderWindow entries, default 64), where insertion sort beats
// sort.SliceStable — and, unlike the reflection-based swapper, it allocates
// nothing, which matters because this runs once per window on the model's
// hottest path.
func sortByDst(msgs []program.Message) {
	for i := 1; i < len(msgs); i++ {
		m := msgs[i]
		j := i - 1
		for j >= 0 && msgs[j].Dst > m.Dst {
			msgs[j+1] = msgs[j]
			j--
		}
		msgs[j+1] = m
	}
}

// runBSP executes bulk-synchronous programs: each epoch sweeps the slices
// once, propagating the epoch's active vertices and accumulating incoming
// contributions; Apply folds them in at the barrier.
func (m *machine) runBSP() error {
	g := m.g
	n := g.NumVertices()
	accum := make([]program.Prop, n)
	touched := make([]bool, n)
	var touchedList []graph.VertexID

	inSet := make([]bool, n)
	var active []graph.VertexID
	add := func(v graph.VertexID) {
		if !inSet[v] {
			inSet[v] = true
			active = append(active, v)
		}
	}
	for _, v := range m.p.InitActive(g) {
		add(v)
	}
	if m.sched != nil {
		for _, v := range m.sched.EpochActive(0, g) {
			add(v)
		}
	}
	// Per-slice active lists for the sweep.
	bySlice := make([][]graph.VertexID, m.slices)

	for epoch := 0; len(active) > 0; epoch++ {
		if err := m.ctx.Err(); err != nil {
			return err
		}
		if mx := m.bsp.MaxEpochs(); mx > 0 && epoch >= mx {
			break
		}
		m.stats.Epochs++
		for _, v := range active {
			inSet[v] = false
			bySlice[m.sliceOf[v]] = append(bySlice[m.sliceOf[v]], v)
		}
		active = active[:0]
		for s := 0; s < m.slices; s++ {
			verts := bySlice[s]
			if len(verts) == 0 {
				continue
			}
			if err := m.ctx.Err(); err != nil {
				return err
			}
			m.chargeSwitch(s)
			var passEdges, msgIO int64
			for _, v := range verts {
				prop := m.props[v]
				if m.prep != nil {
					prop = m.prep.PrepareProp(v, prop)
				}
				lo, hi := g.RowPtr[v], g.RowPtr[v+1]
				outDeg := hi - lo
				for e := lo; e < hi; e++ {
					delta, ok := m.p.Propagate(prop, g.Weight[e], outDeg)
					if !ok {
						continue
					}
					passEdges++
					m.stats.EdgesTraversed++
					m.stats.MessagesSent++
					dst := g.Dst[e]
					if !touched[dst] {
						touched[dst] = true
						accum[dst] = m.bsp.AccumInit()
						touchedList = append(touchedList, dst)
					} else {
						m.stats.MessagesCoalesced++
					}
					accum[dst] = m.p.Reduce(dst, accum[dst], delta)
					if m.sliceOf[dst] != int32(s) {
						msgIO += 2 * int64(m.cfg.MsgBytes)
					}
				}
			}
			m.chargePass(s, passEdges, msgIO)
			bySlice[s] = bySlice[s][:0]
		}
		// Barrier: apply sweep (read+write each touched vertex record).
		applyBytes := int64(len(touchedList)) * 2 * int64(m.cfg.SliceVertexBytes)
		m.switchBytes += uint64(applyBytes)
		m.switchSec += float64(applyBytes) / m.cfg.MemBandwidth
		for _, v := range touchedList {
			newProp, act := m.bsp.Apply(v, m.props[v], accum[v], g)
			m.props[v] = newProp
			touched[v] = false
			if act {
				add(v)
			}
		}
		touchedList = touchedList[:0]
		if m.sched != nil {
			for _, v := range m.sched.EpochActive(epoch+1, g) {
				add(v)
			}
		}
	}
	return nil
}

func (m *machine) collect() *Result {
	total := m.procSec + m.switchSec + m.ineffSec
	m.stats.SimSeconds = total
	r := &Result{
		Props:               m.props,
		Stats:               m.stats,
		ProcessingSeconds:   m.procSec,
		SwitchingSeconds:    m.switchSec,
		InefficiencySeconds: m.ineffSec,
		SliceCount:          m.slices,
		SlicePasses:         m.totalPass,
	}
	if m.slices > 0 {
		r.Rounds = m.totalPass / m.slices
		if m.totalPass%m.slices != 0 {
			r.Rounds++
		}
	}
	if sum := float64(m.edgeBytes + m.msgIOBytes + m.switchBytes); sum > 0 {
		r.EdgeBandwidthShare = float64(m.edgeBytes) / sum
	}
	// Set before dumping: the root formulas read m.result.
	m.result = r
	r.Dump = m.root.Dump(map[string]string{
		"engine":  "polygraph",
		"program": m.p.Name(),
		"graph":   m.g.Name,
	})
	return r
}
