package polygraph

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nova/graph"
	"nova/internal/ref"
	"nova/program"
)

func testConfig(slices int) Config {
	cfg := DefaultConfig()
	cfg.ForceSlices = slices
	return cfg
}

func randGraph(seed int64, n, m int) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    graph.VertexID(rng.Intn(n)),
			Dst:    graph.VertexID(rng.Intn(n)),
			Weight: uint32(1 + rng.Intn(8)),
		}
	}
	return graph.FromEdges("rand", n, edges)
}

func distsOf(props []program.Prop) []int64 {
	out := make([]int64, len(props))
	for i, p := range props {
		if p == program.Inf {
			out[i] = ref.Unreached
		} else {
			out[i] = int64(p)
		}
	}
	return out
}

func TestSliceCountMatchesTableIII(t *testing.T) {
	// The paper's Table III: with 32 MiB on-chip memory and 4 B per
	// vertex: RoadUSA (23.9M) → 3, Twitter (41.65M) → 5,
	// Friendster (65.6M) → 8, Host (101M) → 13, Urand (134.2M) → 16.
	cfg := DefaultConfig()
	cases := []struct {
		vertices int
		want     int
	}{
		{23_900_000, 3},
		{41_650_000, 5},
		{65_600_000, 8},
		{101_000_000, 13},
		{134_200_000, 16},
	}
	for _, c := range cases {
		if got := cfg.SliceCount(c.vertices); got != c.want {
			t.Errorf("SliceCount(%d) = %d, want %d", c.vertices, got, c.want)
		}
	}
	if got := cfg.SliceCount(100); got != 1 {
		t.Errorf("tiny graph slices = %d, want 1", got)
	}
}

func TestPGBFSMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 200, 1000)
		root := g.LargestOutDegreeVertex()
		res, err := Run(context.Background(), testConfig(4), g, program.NewBFS(root))
		if err != nil {
			return false
		}
		want := ref.BFS(g, root)
		got := distsOf(res.Props)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPGSSSPMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 150, 900)
		root := g.LargestOutDegreeVertex()
		res, err := Run(context.Background(), testConfig(3), g, program.NewSSSP(root))
		if err != nil {
			return false
		}
		want := ref.SSSP(g, root)
		got := distsOf(res.Props)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPGCCMatchesOracle(t *testing.T) {
	g := randGraph(3, 200, 600).Symmetrize()
	res, err := Run(context.Background(), testConfig(5), g, program.NewCC())
	if err != nil {
		t.Fatal(err)
	}
	want := ref.CC(g)
	for v := range want {
		if int64(res.Props[v]) != want[v] {
			t.Fatalf("vertex %d: label %d, want %d", v, res.Props[v], want[v])
		}
	}
}

func TestPGPageRankMatchesOracle(t *testing.T) {
	g := graph.GenRMAT("r", 9, 8, graph.DefaultRMAT, 1, 5)
	res, err := Run(context.Background(), testConfig(4), g, program.NewPageRank(0.85, 5))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.PageRank(g, 0.85, 5)
	for v := range want {
		if math.Abs(res.Props[v].Float()-want[v]) > 1e-9 {
			t.Fatalf("vertex %d: rank %v, want %v", v, res.Props[v].Float(), want[v])
		}
	}
	if res.Stats.Epochs != 5 {
		t.Fatalf("epochs = %d", res.Stats.Epochs)
	}
}

type pgRunner struct{ cfg Config }

func (r pgRunner) RunProgram(p program.Program, g *graph.CSR) ([]program.Prop, program.RunStats, error) {
	res, err := Run(context.Background(), r.cfg, g, p)
	if err != nil {
		return nil, program.RunStats{}, err
	}
	return res.Props, res.Stats, nil
}

func TestPGBCMatchesBrandes(t *testing.T) {
	g := randGraph(9, 100, 400)
	gT := g.Transpose()
	root := g.LargestOutDegreeVertex()
	scores, _, err := program.RunBC(pgRunner{testConfig(3)}, g, gT, root)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.BC(g, root)
	for v := range want {
		tol := 1e-3 * (1 + math.Abs(want[v]))
		if math.Abs(scores[v]-want[v]) > tol {
			t.Fatalf("vertex %d: δ %v, want %v", v, scores[v], want[v])
		}
	}
}

func TestNonSlicedHasNoSwitching(t *testing.T) {
	g := randGraph(5, 300, 2000)
	res, err := Run(context.Background(), testConfig(1), g, program.NewBFS(g.LargestOutDegreeVertex()))
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchingSeconds != 0 {
		t.Fatalf("non-sliced run charged %v switching seconds", res.SwitchingSeconds)
	}
	if res.InefficiencySeconds != 0 {
		t.Fatalf("non-sliced run charged %v inefficiency", res.InefficiencySeconds)
	}
	if res.ProcessingSeconds <= 0 {
		t.Fatal("no processing time")
	}
}

func TestOverheadGrowsWithSliceCount(t *testing.T) {
	// Fig. 2's core claim: slicing overhead (switching + inefficiency)
	// grows with the number of slices for the same graph and workload.
	g := graph.GenRMAT("r", 12, 12, graph.DefaultRMAT, 1, 7)
	root := g.LargestOutDegreeVertex()
	overheadShare := func(slices int) float64 {
		res, err := Run(context.Background(), testConfig(slices), g, program.NewBFS(root))
		if err != nil {
			t.Fatal(err)
		}
		tot := res.Stats.SimSeconds
		return (res.SwitchingSeconds + res.InefficiencySeconds) / tot
	}
	s2 := overheadShare(2)
	s16 := overheadShare(16)
	if s16 <= s2 {
		t.Fatalf("overhead share did not grow: %v @2 slices vs %v @16", s2, s16)
	}
}

func TestEdgeBandwidthShareShrinksWithSlices(t *testing.T) {
	g := graph.GenRMAT("r", 12, 12, graph.DefaultRMAT, 1, 7)
	root := g.LargestOutDegreeVertex()
	run := func(slices int) *Result {
		res, err := Run(context.Background(), testConfig(slices), g, program.NewBFS(root))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(16)
	if b.EdgeBandwidthShare >= a.EdgeBandwidthShare {
		t.Fatalf("edge share %v @16 slices not below %v @1", b.EdgeBandwidthShare, a.EdgeBandwidthShare)
	}
}

func TestMultiRoundInefficiency(t *testing.T) {
	// A long path spanning slices forces many passes per slice: the
	// inefficiency component must be nonzero.
	var edges []graph.Edge
	const n = 400
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), Weight: 1})
		edges = append(edges, graph.Edge{Src: graph.VertexID(i + 1), Dst: graph.VertexID(i), Weight: 1})
	}
	g := graph.FromEdges("path", n, edges)
	res, err := Run(context.Background(), testConfig(8), g, program.NewBFS(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 2 {
		t.Fatalf("rounds = %d, want multi-round execution", res.Rounds)
	}
	if res.SlicePasses <= res.SliceCount {
		t.Fatalf("passes %d not above slice count %d", res.SlicePasses, res.SliceCount)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.MemBandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth validated")
	}
	if _, err := Run(context.Background(), bad, randGraph(1, 10, 10), program.NewBFS(0)); err == nil {
		t.Fatal("Run accepted invalid config")
	}
}

func TestPGStatsSane(t *testing.T) {
	g := randGraph(8, 300, 2400)
	root := g.LargestOutDegreeVertex()
	res, err := Run(context.Background(), testConfig(6), g, program.NewSSSP(root))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SimSeconds <= 0 || res.Stats.EdgesTraversed <= 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	sum := res.ProcessingSeconds + res.SwitchingSeconds + res.InefficiencySeconds
	if math.Abs(sum-res.Stats.SimSeconds) > 1e-12 {
		t.Fatalf("breakdown %v != total %v", sum, res.Stats.SimSeconds)
	}
	seq := ref.SequentialEdges(g, root, "sssp", 0)
	if we := res.Stats.WorkEfficiency(seq); we <= 0 || we > 1.0001 {
		t.Fatalf("work efficiency %v", we)
	}
}
