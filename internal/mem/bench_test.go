package mem

import (
	"math/rand"
	"testing"

	"nova/internal/sim"
)

// BenchmarkChannelRandomAccess measures the HBM2 model under NOVA's
// random vertex-access pattern.
func BenchmarkChannelRandomAccess(b *testing.B) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, HBM2ChannelConfig("bench"))
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Access(Request{Addr: uint64(rng.Intn(1 << 26)), Bytes: 32, Kind: UsefulRead})
		if i%1024 == 0 {
			if err := eng.RunUntilQuiet(0); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := eng.RunUntilQuiet(0); err != nil {
		b.Fatal(err)
	}
}

// completionCounter is a pre-allocated Done handler, the pattern the
// converted PE/VMU pipelines use for every channel request.
type completionCounter struct{ n int }

func (c *completionCounter) Fire() { c.n++ }

// BenchmarkChannelEnqueue measures the request path with a pooled
// completion handler — the steady-state cost of one vertex or edge access
// in the converted engines. It must be allocation-free.
func BenchmarkChannelEnqueue(b *testing.B) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, HBM2ChannelConfig("bench"))
	done := &completionCounter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Access(Request{Addr: uint64(i%4096) * 32, Bytes: 32, Kind: UsefulRead, Done: done})
		if i%1024 == 1023 {
			if err := eng.RunUntilQuiet(0); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := eng.RunUntilQuiet(0); err != nil {
		b.Fatal(err)
	}
	if done.n != b.N {
		b.Fatalf("completed %d of %d requests", done.n, b.N)
	}
}

// BenchmarkCacheAccess measures the direct-mapped cache hot path.
func BenchmarkCacheAccess(b *testing.B) {
	c := NewCache(64<<10, 32)
	rng := rand.New(rand.NewSource(2))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i&4095]
		if !c.Access(a) {
			c.Fill(a)
		}
	}
}
