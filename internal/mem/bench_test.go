package mem

import (
	"math/rand"
	"testing"

	"nova/internal/sim"
)

// BenchmarkChannelRandomAccess measures the HBM2 model under NOVA's
// random vertex-access pattern.
func BenchmarkChannelRandomAccess(b *testing.B) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, HBM2ChannelConfig("bench"))
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Access(Request{Addr: uint64(rng.Intn(1 << 26)), Bytes: 32, Kind: UsefulRead})
		if i%1024 == 0 {
			if err := eng.RunUntilQuiet(0); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := eng.RunUntilQuiet(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCacheAccess measures the direct-mapped cache hot path.
func BenchmarkCacheAccess(b *testing.B) {
	c := NewCache(64<<10, 32)
	rng := rand.New(rand.NewSource(2))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i&4095]
		if !c.Access(a) {
			c.Fill(a)
		}
	}
}
