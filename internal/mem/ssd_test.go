package mem

import (
	"testing"

	"nova/internal/sim"
)

func testSSDConfig() SSDConfig {
	return SSDConfig{Name: "t", PageBytes: 4096, BytesPerCycle: 2, FixedLatency: 1000, QueueDepth: 2}
}

func TestSSDSingleRequestLatency(t *testing.T) {
	eng := sim.NewEngine()
	d := NewSSD(eng, testSSDConfig())
	// One 4 KiB page: 4096/2 = 2048 transfer cycles + 1000 fixed latency.
	done := d.PageIn(0, 100, nil)
	if want := sim.Ticks(2048 + 1000); done != want {
		t.Fatalf("completion %d, want %d", done, want)
	}
	st := d.Stats()
	if st.PageIns != 1 || st.BytesPaged != 4096 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSSDPageRounding(t *testing.T) {
	eng := sim.NewEngine()
	d := NewSSD(eng, testSSDConfig())
	// Straddling a page boundary reads both pages.
	d.PageIn(4090, 10, nil)
	if st := d.Stats(); st.BytesPaged != 8192 {
		t.Fatalf("bytes paged %d, want 8192", st.BytesPaged)
	}
}

func TestSSDQueueDepthOverlap(t *testing.T) {
	eng := sim.NewEngine()
	d := NewSSD(eng, testSSDConfig())
	// Queue depth 2: the first two requests start immediately on separate
	// slots; the third waits for a slot and records the stall.
	t1 := d.PageIn(0, 4096, nil)
	t2 := d.PageIn(4096, 4096, nil)
	if t1 != t2 {
		t.Fatalf("two slots must overlap fully: %d vs %d", t1, t2)
	}
	t3 := d.PageIn(8192, 4096, nil)
	if want := t1 + 2048; t3 != want {
		t.Fatalf("third request must queue behind a slot: %d, want %d", t3, want)
	}
	if st := d.Stats(); st.QueueStallTicks != 2048 {
		t.Fatalf("queue stall %d, want 2048", st.QueueStallTicks)
	}
}

func TestSSDDoneHandlerFires(t *testing.T) {
	eng := sim.NewEngine()
	d := NewSSD(eng, testSSDConfig())
	fired := sim.Ticks(0)
	want := d.PageIn(0, 1, sim.HandlerFunc(func() { fired = eng.Now() }))
	if err := eng.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	if fired != want {
		t.Fatalf("done fired at %d, want %d", fired, want)
	}
}

func TestSSDPresetsValidate(t *testing.T) {
	for _, cfg := range []SSDConfig{NVMeSSDConfig("nvme"), SATASSDConfig("sata")} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	bad := testSSDConfig()
	bad.QueueDepth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero queue depth accepted")
	}
}
