package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nova/internal/sim"
)

func testChannelConfig() ChannelConfig {
	return ChannelConfig{
		Name:          "test",
		AtomBytes:     32,
		BytesPerCycle: 16,
		FixedLatency:  100,
	}
}

func TestChannelSingleAccessLatency(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, testChannelConfig())
	var done sim.Ticks
	ch.Access(Request{Addr: 0, Bytes: 32, Kind: UsefulRead, Done: sim.HandlerFunc(func() { done = eng.Now() })})
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// 32 B at 16 B/cycle = 2 cycles service + 100 fixed = 102.
	if done != 102 {
		t.Fatalf("completion at %d, want 102", done)
	}
}

func TestChannelBandwidthBound(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, testChannelConfig())
	const n = 1000
	var last sim.Ticks
	for i := 0; i < n; i++ {
		addr := uint64(i * 32)
		ch.Access(Request{Addr: addr, Bytes: 32, Kind: UsefulRead, Done: sim.HandlerFunc(func() { last = eng.Now() })})
	}
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// n atoms at 2 cycles each, pipelined: last completes at 2n + 100.
	want := sim.Ticks(2*n + 100)
	if last != want {
		t.Fatalf("last completion %d, want %d (bandwidth-bound pipelining)", last, want)
	}
	util := ch.Utilization(2 * n)
	if util < 0.99 || util > 1.01 {
		t.Fatalf("utilization %v, want ~1.0", util)
	}
}

func TestChannelMultiAtomRequest(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, testChannelConfig())
	// 33 bytes starting at addr 0 spans 2 atoms.
	var done sim.Ticks
	ch.Access(Request{Addr: 0, Bytes: 33, Kind: UsefulRead, Done: sim.HandlerFunc(func() { done = eng.Now() })})
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	if done != 104 {
		t.Fatalf("completion %d, want 104 (2 atoms)", done)
	}
	if got := ch.Stats().UsefulBytes; got != 64 {
		t.Fatalf("UsefulBytes = %d, want 64 (whole atoms move)", got)
	}
	// Unaligned request spanning a boundary: 32 bytes at addr 16.
	ch2 := NewChannel(sim.NewEngine(), testChannelConfig())
	if got := ch2.atoms(16, 32); got != 2 {
		t.Fatalf("atoms(16,32) = %d, want 2", got)
	}
}

func TestChannelRowBuffer(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testChannelConfig()
	cfg.RowBytes = 1024
	cfg.RowMissPenalty = 10
	ch := NewChannel(eng, cfg)
	// Sequential accesses within one row: 1 miss then hits.
	for i := 0; i < 32; i++ {
		ch.Access(Request{Addr: uint64(i * 32), Bytes: 32, Kind: UsefulRead})
	}
	st := ch.Stats()
	if st.RowMisses != 1 || st.RowHits != 31 {
		t.Fatalf("row stats = %d misses / %d hits, want 1/31", st.RowMisses, st.RowHits)
	}
	// Random far-apart rows: all misses.
	eng2 := sim.NewEngine()
	ch2 := NewChannel(eng2, cfg)
	for i := 0; i < 8; i++ {
		ch2.Access(Request{Addr: uint64(i) * 1024 * 7, Bytes: 32, Kind: UsefulRead})
	}
	if st := ch2.Stats(); st.RowMisses != 8 {
		t.Fatalf("far accesses: %d row misses, want 8", st.RowMisses)
	}
}

func TestChannelKindsAccounting(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, testChannelConfig())
	ch.Access(Request{Addr: 0, Bytes: 32, Kind: UsefulRead})
	ch.Access(Request{Addr: 32, Bytes: 32, Kind: WastefulRead})
	ch.Access(Request{Addr: 64, Bytes: 32, Kind: WriteAccess})
	st := ch.Stats()
	if st.UsefulBytes != 32 || st.WastefulBytes != 32 || st.WrittenBytes != 32 {
		t.Fatalf("accounting wrong: %+v", st)
	}
	if st.Reads != 2 || st.Writes != 1 {
		t.Fatalf("ops wrong: %+v", st)
	}
	if st.TotalBytes() != 96 {
		t.Fatalf("TotalBytes = %d, want 96", st.TotalBytes())
	}
}

func TestChannelConfigValidation(t *testing.T) {
	bad := []ChannelConfig{
		{AtomBytes: 0, BytesPerCycle: 1},
		{AtomBytes: 32, BytesPerCycle: 0},
		{AtomBytes: 32, BytesPerCycle: 1, RowBytes: 16},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated but should not: %+v", i, cfg)
		}
	}
	if err := HBM2ChannelConfig("h").Validate(); err != nil {
		t.Errorf("HBM2 preset invalid: %v", err)
	}
	if err := DDR4ChannelConfig("d").Validate(); err != nil {
		t.Errorf("DDR4 preset invalid: %v", err)
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1024, 32) // 32 lines
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	c.Fill(0)
	if !c.Access(0) {
		t.Fatal("filled block missed")
	}
	if !c.Access(31) {
		t.Fatal("same block, different offset missed")
	}
	if c.Access(32) {
		t.Fatal("next block hit without fill")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheEvictionHook(t *testing.T) {
	c := NewCache(64, 32) // 2 lines
	var evictions []uint64
	var dirtiness []bool
	c.OnEvict = func(addr uint64, dirty bool) {
		evictions = append(evictions, addr)
		dirtiness = append(dirtiness, dirty)
	}
	c.Fill(0)
	c.MarkDirty(0)
	// Block 64 maps to the same line as block 0 (2 lines, 32B blocks).
	evicted, dirty, had := c.Fill(64)
	if !had || evicted != 0 || !dirty {
		t.Fatalf("Fill(64) eviction = (%d, %v, %v), want (0, true, true)", evicted, dirty, had)
	}
	if len(evictions) != 1 || evictions[0] != 0 || !dirtiness[0] {
		t.Fatalf("hook saw %v/%v", evictions, dirtiness)
	}
	if c.Stats().DirtyEvictions != 1 {
		t.Fatalf("dirty evictions = %d", c.Stats().DirtyEvictions)
	}
}

func TestCacheMarkDirtyNonResidentPanics(t *testing.T) {
	c := NewCache(64, 32)
	defer func() {
		if recover() == nil {
			t.Fatal("MarkDirty on non-resident block did not panic")
		}
	}()
	c.MarkDirty(128)
}

func TestCacheFlushAll(t *testing.T) {
	c := NewCache(128, 32)
	var flushed int
	c.OnEvict = func(addr uint64, dirty bool) { flushed++ }
	c.Fill(0)
	c.Fill(32)
	c.MarkDirty(32)
	c.FlushAll()
	if flushed != 2 {
		t.Fatalf("flushed %d blocks, want 2", flushed)
	}
	if c.Contains(0) || c.Contains(32) {
		t.Fatal("blocks still resident after FlushAll")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(64, 32)
	c.OnEvict = func(addr uint64, dirty bool) { t.Fatal("Invalidate must not fire OnEvict") }
	c.Fill(0)
	c.MarkDirty(0)
	if !c.Invalidate(0) {
		t.Fatal("Invalidate lost dirtiness")
	}
	if c.Contains(0) {
		t.Fatal("block resident after Invalidate")
	}
	if c.Invalidate(999) {
		t.Fatal("Invalidate of absent block reported dirty")
	}
}

func TestCacheResidencyProperty(t *testing.T) {
	// Property: after any sequence of fills, Contains agrees with a model
	// map from line index to tag, and ResidentBlocks enumerates exactly
	// the resident set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache(512, 32) // 16 lines
		model := map[int]uint64{}
		for i := 0; i < 300; i++ {
			addr := uint64(rng.Intn(4096))
			block := addr / 32
			line := int(block % 16)
			c.Fill(addr)
			model[line] = block
		}
		count := 0
		ok := true
		c.ResidentBlocks(func(blockAddr uint64, dirty bool) {
			count++
			line := int(blockAddr / 32 % 16)
			if model[line] != blockAddr/32 {
				ok = false
			}
		})
		return ok && count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	for _, geom := range [][2]int{{0, 32}, {64, 0}, {100, 32}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%d,%d) did not panic", geom[0], geom[1])
				}
			}()
			NewCache(geom[0], geom[1])
		}()
	}
}

func TestBulkTransfer(t *testing.T) {
	eng := sim.NewEngine()
	ch := NewChannel(eng, testChannelConfig())
	// 1600 bytes at 16 B/cy = 100 cycles service + 100 fixed latency.
	done := ch.BulkTransfer(1600, WriteAccess)
	if done != 200 {
		t.Fatalf("bulk completion = %d, want 200", done)
	}
	if st := ch.Stats(); st.WrittenBytes != 1600 {
		t.Fatalf("written = %d", st.WrittenBytes)
	}
	// A second transfer queues behind the first's bus time.
	done2 := ch.BulkTransfer(160, UsefulRead)
	if done2 != 210 {
		t.Fatalf("queued bulk completion = %d, want 210", done2)
	}
	// Zero bytes: no-op at current time.
	if got := ch.BulkTransfer(0, UsefulRead); got != eng.Now() {
		t.Fatalf("zero bulk = %d", got)
	}
}

func TestRowMissAddsLatencyNotBusTime(t *testing.T) {
	// Bank-level parallelism: random accesses on different rows must
	// still pipeline at bus rate; only per-request latency grows.
	eng := sim.NewEngine()
	cfg := testChannelConfig()
	cfg.RowBytes = 1024
	cfg.RowMissPenalty = 50
	ch := NewChannel(eng, cfg)
	var last sim.Ticks
	const n = 100
	for i := 0; i < n; i++ {
		// 7 KiB stride: every access misses the row buffer.
		ch.Access(Request{Addr: uint64(i) * 7168, Bytes: 32, Kind: UsefulRead,
			Done: sim.HandlerFunc(func() { last = eng.Now() })})
	}
	if err := eng.RunUntilQuiet(0); err != nil {
		t.Fatal(err)
	}
	// Bus-bound: n*2 cycles of service, + fixed 100 + one miss penalty 50.
	want := sim.Ticks(n*2 + 100 + 50)
	if last != want {
		t.Fatalf("last completion %d, want %d (row misses must not serialize the bus)", last, want)
	}
	if ch.Stats().RowMisses != n {
		t.Fatalf("row misses = %d, want %d", ch.Stats().RowMisses, n)
	}
}

func TestBankedRowBuffers(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testChannelConfig()
	cfg.RowBytes = 1024
	cfg.RowMissPenalty = 10
	cfg.Banks = 4
	ch := NewChannel(eng, cfg)
	// Alternate between two rows mapping to different banks: after the
	// first touch of each, both stay open — all hits.
	for i := 0; i < 10; i++ {
		ch.Access(Request{Addr: 0, Bytes: 32, Kind: UsefulRead})
		ch.Access(Request{Addr: 1024, Bytes: 32, Kind: UsefulRead})
	}
	st := ch.Stats()
	if st.RowMisses != 2 || st.RowHits != 18 {
		t.Fatalf("banked: %d misses / %d hits, want 2/18", st.RowMisses, st.RowHits)
	}
	// A single-bank channel thrashes the same pattern.
	eng2 := sim.NewEngine()
	cfg.Banks = 1
	ch2 := NewChannel(eng2, cfg)
	for i := 0; i < 10; i++ {
		ch2.Access(Request{Addr: 0, Bytes: 32, Kind: UsefulRead})
		ch2.Access(Request{Addr: 1024, Bytes: 32, Kind: UsefulRead})
	}
	if st := ch2.Stats(); st.RowMisses != 20 {
		t.Fatalf("single bank should thrash: %d misses, want 20", st.RowMisses)
	}
}
