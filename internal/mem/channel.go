// Package mem provides timing models for the off-chip memories and the
// per-PE vertex cache used by NOVA and the PolyGraph baseline.
//
// The models are timing-only: functional state (vertex properties, edge
// arrays) lives in ordinary Go slices owned by the accelerator model, and
// the memory models see only addresses and sizes. This mirrors the paper's
// gem5 methodology, where validated DRAM timing models are driven by the
// accelerator SimObjects.
package mem

import (
	"fmt"

	"nova/internal/sim"
	"nova/internal/stats"
)

// AccessKind classifies a request for the bandwidth breakdown of Fig. 10.
type AccessKind int

const (
	// UsefulRead is a read of data the accelerator needed (a vertex being
	// reduced or propagated, or edge data).
	UsefulRead AccessKind = iota
	// WastefulRead is a read performed only because the vertex tracker
	// locates active vertices at superblock granularity: inactive blocks
	// read while searching for active ones.
	WastefulRead
	// WriteAccess is any write (vertex write-back or spill).
	WriteAccess
)

func (k AccessKind) String() string {
	switch k {
	case UsefulRead:
		return "useful-read"
	case WastefulRead:
		return "wasteful-read"
	case WriteAccess:
		return "write"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// Request is one memory access. Done, if non-nil, fires at completion
// time. It is a sim.Handler so callers can pass a pre-allocated completion
// object and keep the request path allocation-free; ad-hoc callers can wrap
// a closure in sim.HandlerFunc.
type Request struct {
	Addr  uint64
	Bytes int
	Kind  AccessKind
	Done  sim.Handler
}

// ChannelConfig describes the timing of one DRAM channel.
type ChannelConfig struct {
	// Name labels the channel in statistics output.
	Name string
	// AtomBytes is the minimum access granularity (32 B for HBM2,
	// 64 B for DDR4).
	AtomBytes int
	// BytesPerCycle is the peak data rate expressed in bytes per core
	// clock cycle.
	BytesPerCycle float64
	// FixedLatency is the pipelined access latency added on top of the
	// bandwidth-limited service time.
	FixedLatency sim.Ticks
	// RowBytes is the row-buffer size; consecutive accesses within one row
	// avoid RowMissPenalty. Zero disables the row-buffer model.
	RowBytes int
	// RowMissPenalty is added to access latency on a row-buffer miss.
	RowMissPenalty sim.Ticks
	// Banks is the number of independent banks; rows are interleaved
	// across banks at row granularity and each bank keeps its own open
	// row. Zero or one models a single row register.
	Banks int
}

// Validate reports a configuration error, if any.
func (c ChannelConfig) Validate() error {
	if c.AtomBytes <= 0 {
		return fmt.Errorf("mem: channel %q: AtomBytes must be positive", c.Name)
	}
	if c.BytesPerCycle <= 0 {
		return fmt.Errorf("mem: channel %q: BytesPerCycle must be positive", c.Name)
	}
	if c.RowBytes < 0 || (c.RowBytes > 0 && c.RowBytes < c.AtomBytes) {
		return fmt.Errorf("mem: channel %q: RowBytes %d invalid for atom %d", c.Name, c.RowBytes, c.AtomBytes)
	}
	return nil
}

// ChannelStats accumulates traffic accounting for one channel.
type ChannelStats struct {
	Reads          uint64
	Writes         uint64
	UsefulBytes    uint64
	WastefulBytes  uint64
	WrittenBytes   uint64
	RowHits        uint64
	RowMisses      uint64
	BusyTicks      sim.Ticks
	LastCompletion sim.Ticks
}

// TotalBytes is all data moved over the channel.
func (s ChannelStats) TotalBytes() uint64 {
	return s.UsefulBytes + s.WastefulBytes + s.WrittenBytes
}

// Channel models one DRAM channel: requests are serialized onto the data
// bus (bandwidth limit) and complete a fixed latency after their bus slot,
// so many outstanding requests pipeline down to the bandwidth bound —
// the behaviour NOVA's latency-hiding design depends on.
type Channel struct {
	eng      *sim.Engine
	cfg      ChannelConfig
	nextFree sim.Ticks
	// openRow[b] is bank b's open row (hasRow[b] gates validity).
	openRow []uint64
	hasRow  []bool
	stats   ChannelStats
	// reqBytes buckets per-request transfer sizes (log2); updated with a
	// plain array increment on the access path.
	reqBytes stats.Histogram
}

// NewChannel builds a channel on the given engine. It panics on an invalid
// configuration, which is always a programming error in system assembly.
func NewChannel(eng *sim.Engine, cfg ChannelConfig) *Channel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	banks := cfg.Banks
	if banks < 1 {
		banks = 1
	}
	return &Channel{
		eng:     eng,
		cfg:     cfg,
		openRow: make([]uint64, banks),
		hasRow:  make([]bool, banks),
	}
}

// Config returns the channel's configuration.
func (c *Channel) Config() ChannelConfig { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Channel) Stats() ChannelStats { return c.stats }

// ResetStats zeroes the statistics (used between BSP phases or warmup).
func (c *Channel) ResetStats() { c.stats = ChannelStats{} }

// atoms returns the number of atom transfers a request needs.
func (c *Channel) atoms(addr uint64, bytes int) int {
	if bytes <= 0 {
		return 1
	}
	first := addr / uint64(c.cfg.AtomBytes)
	last := (addr + uint64(bytes) - 1) / uint64(c.cfg.AtomBytes)
	return int(last-first) + 1
}

// Access enqueues a request and returns its completion time. Done (if set)
// is scheduled at that time.
func (c *Channel) Access(req Request) sim.Ticks {
	if req.Bytes <= 0 {
		panic(fmt.Sprintf("mem: access of %d bytes", req.Bytes))
	}
	n := c.atoms(req.Addr, req.Bytes)
	moved := uint64(n * c.cfg.AtomBytes)
	c.reqBytes.Observe(moved)

	// The data bus is occupied for the transfer time only; row-buffer
	// misses add latency (bank activate/precharge proceeds in parallel
	// with other banks' transfers — DRAM bank-level parallelism, which
	// is what keeps HBM2 fast under NOVA's random vertex accesses).
	service := sim.Ticks(0)
	extraLatency := sim.Ticks(0)
	for i := 0; i < n; i++ {
		atomAddr := (req.Addr/uint64(c.cfg.AtomBytes) + uint64(i)) * uint64(c.cfg.AtomBytes)
		t := sim.Ticks(float64(c.cfg.AtomBytes)/c.cfg.BytesPerCycle + 0.999999)
		if t == 0 {
			t = 1
		}
		if c.cfg.RowBytes > 0 {
			row := atomAddr / uint64(c.cfg.RowBytes)
			bank := int(row % uint64(len(c.openRow)))
			if c.hasRow[bank] && row == c.openRow[bank] {
				c.stats.RowHits++
			} else {
				c.stats.RowMisses++
				if c.cfg.RowMissPenalty > extraLatency {
					extraLatency = c.cfg.RowMissPenalty
				}
			}
			c.openRow[bank] = row
			c.hasRow[bank] = true
		}
		service += t
	}

	now := c.eng.Now()
	start := now
	if c.nextFree > start {
		start = c.nextFree
	}
	c.nextFree = start + service
	c.stats.BusyTicks += service
	complete := start + service + c.cfg.FixedLatency + extraLatency

	switch req.Kind {
	case UsefulRead:
		c.stats.Reads++
		c.stats.UsefulBytes += moved
	case WastefulRead:
		c.stats.Reads++
		c.stats.WastefulBytes += moved
	case WriteAccess:
		c.stats.Writes++
		c.stats.WrittenBytes += moved
	}
	if complete > c.stats.LastCompletion {
		c.stats.LastCompletion = complete
	}

	if req.Done != nil {
		c.eng.ScheduleAt(complete, req.Done)
	}
	return complete
}

// BulkTransfer charges a large sequential transfer (such as a BSP apply
// sweep or a PolyGraph slice switch) against the channel's bandwidth
// without per-atom events, and returns its completion time. The row-buffer
// model is bypassed: bulk sweeps are sequential and row-friendly.
func (c *Channel) BulkTransfer(bytes int64, kind AccessKind) sim.Ticks {
	if bytes <= 0 {
		return c.eng.Now()
	}
	c.reqBytes.Observe(uint64(bytes))
	service := sim.Ticks(float64(bytes)/c.cfg.BytesPerCycle + 0.999999)
	now := c.eng.Now()
	start := now
	if c.nextFree > start {
		start = c.nextFree
	}
	c.nextFree = start + service
	c.stats.BusyTicks += service
	switch kind {
	case UsefulRead:
		c.stats.Reads++
		c.stats.UsefulBytes += uint64(bytes)
	case WastefulRead:
		c.stats.Reads++
		c.stats.WastefulBytes += uint64(bytes)
	case WriteAccess:
		c.stats.Writes++
		c.stats.WrittenBytes += uint64(bytes)
	}
	complete := start + service + c.cfg.FixedLatency
	if complete > c.stats.LastCompletion {
		c.stats.LastCompletion = complete
	}
	return complete
}

// RegisterStats registers the channel's counters, derived utilization and
// request-size histogram under g. The existing plain ChannelStats fields
// are adopted by pointer, so the access path is unchanged; derived values
// are formulas evaluated at dump time against the engine clock.
func (c *Channel) RegisterStats(g *stats.Group) {
	g.Uint64(&c.stats.Reads, "reads", stats.Count, "read requests serviced")
	g.Uint64(&c.stats.Writes, "writes", stats.Count, "write requests serviced")
	g.Uint64(&c.stats.UsefulBytes, "useful_bytes", stats.Bytes, "bytes read that the accelerator needed")
	g.Uint64(&c.stats.WastefulBytes, "wasteful_bytes", stats.Bytes, "bytes read only to locate active vertices (tracker overfetch)")
	g.Uint64(&c.stats.WrittenBytes, "written_bytes", stats.Bytes, "bytes written (write-backs and spills)")
	g.Uint64(&c.stats.RowHits, "row_hits", stats.Count, "atom accesses that hit an open row buffer")
	g.Uint64(&c.stats.RowMisses, "row_misses", stats.Count, "atom accesses that paid the row-activate penalty")
	g.Formula(func() float64 { return float64(c.stats.BusyTicks) },
		"busy_cycles", stats.Cycles, "cycles the data bus was occupied")
	g.Formula(func() float64 { return c.Utilization(c.eng.Now()) },
		"utilization", stats.Ratio, "achieved fraction of peak bandwidth over the run")
	g.Histogram(&c.reqBytes, "request_bytes", stats.Bytes, "per-request transfer size (log2 buckets)")
}

// Utilization returns the fraction of the channel's peak bandwidth consumed
// over the first `elapsed` ticks of the run.
func (c *Channel) Utilization(elapsed sim.Ticks) float64 {
	if elapsed == 0 {
		return 0
	}
	peak := float64(elapsed) * c.cfg.BytesPerCycle
	return float64(c.stats.TotalBytes()) / peak
}

// Standard presets at a 2 GHz core clock, mirroring Table II.

// HBM2ChannelConfig models one of the eight channels in an HBM2 stack:
// 32 B atoms, 32 GB/s per channel (256 GB/s per stack), ~100 ns load-to-use.
func HBM2ChannelConfig(name string) ChannelConfig {
	return ChannelConfig{
		Name:           name,
		AtomBytes:      32,
		BytesPerCycle:  16, // 32 GB/s at 2 GHz
		FixedLatency:   200,
		RowBytes:       1024,
		RowMissPenalty: 24,
		Banks:          16,
	}
}

// DDR4ChannelConfig models one DDR4-2400 channel: 64 B atoms, 19.2 GB/s,
// longer latency, large rows that reward NOVA's sequential edge streaming.
func DDR4ChannelConfig(name string) ChannelConfig {
	return ChannelConfig{
		Name:           name,
		AtomBytes:      64,
		BytesPerCycle:  9.6, // 19.2 GB/s at 2 GHz
		FixedLatency:   300,
		RowBytes:       8192,
		RowMissPenalty: 44,
		Banks:          16,
	}
}
