package mem

import (
	"fmt"

	"nova/internal/stats"
)

// Cache is the direct-mapped, write-back vertex cache inside each PE's
// message processing unit (Section III-B). It is a structural bookkeeper:
// it tracks which blocks are resident and dirty, and fires an eviction hook
// so the vertex management unit can implement on_evict from Listing 1.
// Timing for hits and misses is charged by the caller.
type Cache struct {
	blockBytes int
	numLines   int
	tags       []uint64
	valid      []bool
	dirty      []bool
	stats      CacheStats

	// OnEvict runs for every eviction (dirty or clean) with the evicted
	// block's base address and its dirtiness; this is how active vertices
	// spill to DRAM in NOVA.
	OnEvict func(blockAddr uint64, dirty bool)
}

// CacheStats counts cache activity.
type CacheStats struct {
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	DirtyEvictions uint64
}

// HitRate returns hits / (hits+misses), or 0 for an untouched cache.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewCache builds a direct-mapped cache of the given total capacity and
// block size. Both must be positive and capacity a multiple of blockBytes.
func NewCache(capacityBytes, blockBytes int) *Cache {
	if blockBytes <= 0 || capacityBytes <= 0 || capacityBytes%blockBytes != 0 {
		panic(fmt.Sprintf("mem: invalid cache geometry %d/%d", capacityBytes, blockBytes))
	}
	n := capacityBytes / blockBytes
	return &Cache{
		blockBytes: blockBytes,
		numLines:   n,
		tags:       make([]uint64, n),
		valid:      make([]bool, n),
		dirty:      make([]bool, n),
	}
}

// BlockBytes returns the cache line size.
func (c *Cache) BlockBytes() int { return c.blockBytes }

// Lines returns the number of cache lines.
func (c *Cache) Lines() int { return c.numLines }

// Stats returns a copy of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// RegisterStats registers the cache's counters and derived hit rate under
// g, adopting the existing CacheStats fields by pointer.
func (c *Cache) RegisterStats(g *stats.Group) {
	g.Uint64(&c.stats.Hits, "hits", stats.Count, "lookups that found the block resident")
	g.Uint64(&c.stats.Misses, "misses", stats.Count, "lookups that required a memory fill")
	g.Uint64(&c.stats.Evictions, "evictions", stats.Count, "blocks displaced from the cache")
	g.Uint64(&c.stats.DirtyEvictions, "dirty_evictions", stats.Count, "evictions that wrote the block back")
	g.Formula(func() float64 { return c.stats.HitRate() },
		"hit_rate", stats.Ratio, "hits / (hits + misses)")
}

// BlockAddr returns the base address of the block containing addr.
func (c *Cache) BlockAddr(addr uint64) uint64 {
	return addr / uint64(c.blockBytes) * uint64(c.blockBytes)
}

func (c *Cache) line(addr uint64) (idx int, tag uint64) {
	block := addr / uint64(c.blockBytes)
	return int(block % uint64(c.numLines)), block
}

// Contains reports whether the block holding addr is resident, without
// touching statistics.
func (c *Cache) Contains(addr uint64) bool {
	idx, tag := c.line(addr)
	return c.valid[idx] && c.tags[idx] == tag
}

// Access looks up addr, counting a hit or miss. On a hit it returns
// (true, 0, false). On a miss it does NOT fill the line; the caller issues
// the memory read and calls Fill at response time.
func (c *Cache) Access(addr uint64) bool {
	idx, tag := c.line(addr)
	if c.valid[idx] && c.tags[idx] == tag {
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// Fill installs the block containing addr, evicting any previous occupant
// of its line. It returns the evicted block's address and dirtiness; the
// OnEvict hook (if set) fires before the new block is installed, mirroring
// the write-back + on_evict sequence of Listing 1.
func (c *Cache) Fill(addr uint64) (evicted uint64, evictedDirty, hadEviction bool) {
	idx, tag := c.line(addr)
	if c.valid[idx] && c.tags[idx] == tag {
		return 0, false, false // already resident (racing fills coalesce)
	}
	if c.valid[idx] {
		hadEviction = true
		evicted = c.tags[idx] * uint64(c.blockBytes)
		evictedDirty = c.dirty[idx]
		c.stats.Evictions++
		if evictedDirty {
			c.stats.DirtyEvictions++
		}
		if c.OnEvict != nil {
			c.OnEvict(evicted, evictedDirty)
		}
	}
	c.tags[idx] = tag
	c.valid[idx] = true
	c.dirty[idx] = false
	return evicted, evictedDirty, hadEviction
}

// MarkDirty marks the resident block containing addr as modified. It panics
// if the block is not resident: writing through a non-resident line is a
// protocol bug in the caller.
func (c *Cache) MarkDirty(addr uint64) {
	idx, tag := c.line(addr)
	if !c.valid[idx] || c.tags[idx] != tag {
		panic(fmt.Sprintf("mem: MarkDirty on non-resident block %#x", addr))
	}
	c.dirty[idx] = true
}

// Invalidate drops the block containing addr without firing OnEvict.
// It returns whether the block was resident and dirty.
func (c *Cache) Invalidate(addr uint64) (wasDirty bool) {
	idx, tag := c.line(addr)
	if c.valid[idx] && c.tags[idx] == tag {
		wasDirty = c.dirty[idx]
		c.valid[idx] = false
		c.dirty[idx] = false
	}
	return wasDirty
}

// FlushAll evicts every resident block through OnEvict (the drain used at
// quiescence boundaries so active vertices parked in the cache are tracked).
func (c *Cache) FlushAll() {
	for i := 0; i < c.numLines; i++ {
		if !c.valid[i] {
			continue
		}
		addr := c.tags[i] * uint64(c.blockBytes)
		dirty := c.dirty[i]
		c.valid[i] = false
		c.dirty[i] = false
		c.stats.Evictions++
		if dirty {
			c.stats.DirtyEvictions++
		}
		if c.OnEvict != nil {
			c.OnEvict(addr, dirty)
		}
	}
}

// ResidentBlocks calls fn with the base address of every resident block.
func (c *Cache) ResidentBlocks(fn func(blockAddr uint64, dirty bool)) {
	for i := 0; i < c.numLines; i++ {
		if c.valid[i] {
			fn(c.tags[i]*uint64(c.blockBytes), c.dirty[i])
		}
	}
}
