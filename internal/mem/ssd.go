package mem

import (
	"fmt"

	"nova/internal/sim"
	"nova/internal/stats"
)

// SSDConfig describes the timing of one SSD used as the third memory tier
// (DESIGN.md §18): graph partitions beyond the DRAM-resident window are
// paged in at page granularity through a fixed per-request latency, a
// bandwidth-serialized transfer, and a bounded submission queue.
type SSDConfig struct {
	// Name labels the device in statistics output.
	Name string
	// PageBytes is the device's read granularity; requests are rounded up
	// to whole pages.
	PageBytes int
	// BytesPerCycle is the sustained read rate expressed in bytes per core
	// clock cycle.
	BytesPerCycle float64
	// FixedLatency is the per-request access latency (FTL lookup, NAND
	// read, protocol) added after the transfer's queue slot.
	FixedLatency sim.Ticks
	// QueueDepth is the number of requests the device overlaps: each of
	// the QueueDepth slots serializes its own transfers, so up to
	// QueueDepth latencies are hidden behind one another while the
	// aggregate rate stays bandwidth-bound.
	QueueDepth int
}

// Validate reports a configuration error, if any.
func (c SSDConfig) Validate() error {
	if c.PageBytes <= 0 {
		return fmt.Errorf("mem: ssd %q: PageBytes must be positive", c.Name)
	}
	if c.BytesPerCycle <= 0 {
		return fmt.Errorf("mem: ssd %q: BytesPerCycle must be positive", c.Name)
	}
	if c.FixedLatency < 0 {
		return fmt.Errorf("mem: ssd %q: FixedLatency must be non-negative", c.Name)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("mem: ssd %q: QueueDepth must be positive", c.Name)
	}
	return nil
}

// SSDStats accumulates traffic accounting for one device.
type SSDStats struct {
	// PageIns counts read requests (one per partition page-in event).
	PageIns uint64
	// BytesPaged is the page-rounded data volume read.
	BytesPaged uint64
	// BusyTicks is the aggregate transfer occupancy across queue slots.
	BusyTicks sim.Ticks
	// QueueStallTicks accumulates time requests waited for a free queue
	// slot before their transfer could start.
	QueueStallTicks sim.Ticks
	LastCompletion  sim.Ticks
}

// SSD models the device: each read occupies the earliest-free of
// QueueDepth slots for its bandwidth-limited transfer time and completes
// FixedLatency later. Slots are chosen lowest-index-first on ties, so the
// model is deterministic under sharded simulation (one SSD per GPN, each
// driven only by its shard's engine).
type SSD struct {
	eng      *sim.Engine
	cfg      SSDConfig
	slotFree []sim.Ticks
	stats    SSDStats
	// reqBytes buckets per-request page-rounded sizes (log2).
	reqBytes stats.Histogram
}

// NewSSD builds a device on the given engine. It panics on an invalid
// configuration, which is always a programming error in system assembly.
func NewSSD(eng *sim.Engine, cfg SSDConfig) *SSD {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &SSD{eng: eng, cfg: cfg, slotFree: make([]sim.Ticks, cfg.QueueDepth)}
}

// Config returns the device's configuration.
func (d *SSD) Config() SSDConfig { return d.cfg }

// Stats returns a copy of the accumulated statistics.
func (d *SSD) Stats() SSDStats { return d.stats }

// PageIn reads the pages covering [addr, addr+bytes) and returns the
// completion time; done (if non-nil) is scheduled at that time.
func (d *SSD) PageIn(addr uint64, bytes int, done sim.Handler) sim.Ticks {
	if bytes <= 0 {
		panic(fmt.Sprintf("mem: ssd page-in of %d bytes", bytes))
	}
	first := addr / uint64(d.cfg.PageBytes)
	last := (addr + uint64(bytes) - 1) / uint64(d.cfg.PageBytes)
	moved := (last - first + 1) * uint64(d.cfg.PageBytes)
	d.reqBytes.Observe(moved)

	service := sim.Ticks(float64(moved)/d.cfg.BytesPerCycle + 0.999999)
	if service == 0 {
		service = 1
	}
	now := d.eng.Now()
	slot := 0
	for i := 1; i < len(d.slotFree); i++ {
		if d.slotFree[i] < d.slotFree[slot] {
			slot = i
		}
	}
	start := now
	if d.slotFree[slot] > start {
		start = d.slotFree[slot]
		d.stats.QueueStallTicks += start - now
	}
	d.slotFree[slot] = start + service
	d.stats.BusyTicks += service
	complete := start + service + d.cfg.FixedLatency

	d.stats.PageIns++
	d.stats.BytesPaged += moved
	if complete > d.stats.LastCompletion {
		d.stats.LastCompletion = complete
	}
	if done != nil {
		d.eng.ScheduleAt(complete, done)
	}
	return complete
}

// RegisterStats registers the device's counters, derived utilization and
// request-size histogram under g, following the Channel idiom: plain
// counters adopted by pointer, derived values as dump-time formulas.
func (d *SSD) RegisterStats(g *stats.Group) {
	g.Uint64(&d.stats.PageIns, "page_ins", stats.Count, "partition page-in requests serviced")
	g.Uint64(&d.stats.BytesPaged, "bytes_paged", stats.Bytes, "page-rounded bytes read from the device")
	g.Formula(func() float64 { return float64(d.stats.BusyTicks) },
		"busy_cycles", stats.Cycles, "aggregate cycles queue slots spent transferring")
	g.Formula(func() float64 { return float64(d.stats.QueueStallTicks) },
		"queue_stall_cycles", stats.Cycles, "cycles requests waited for a free queue slot")
	g.Formula(func() float64 { return d.Utilization(d.eng.Now()) },
		"utilization", stats.Ratio, "achieved fraction of peak read bandwidth over the run")
	g.Histogram(&d.reqBytes, "request_bytes", stats.Bytes, "per-request page-rounded size (log2 buckets)")
}

// Utilization returns the fraction of the device's peak bandwidth consumed
// over the first `elapsed` ticks of the run.
func (d *SSD) Utilization(elapsed sim.Ticks) float64 {
	if elapsed == 0 {
		return 0
	}
	peak := float64(elapsed) * d.cfg.BytesPerCycle
	return float64(d.stats.BytesPaged) / peak
}

// Standard presets at a 2 GHz core clock, following the Table II idiom.

// NVMeSSDConfig models a datacenter NVMe drive: 4 KiB pages, ~3.2 GB/s
// sustained reads (1.6 B/cycle at 2 GHz), ~10 µs access latency, 16-deep
// queue.
func NVMeSSDConfig(name string) SSDConfig {
	return SSDConfig{
		Name:          name,
		PageBytes:     4096,
		BytesPerCycle: 1.6,
		FixedLatency:  20000, // 10 µs at 2 GHz
		QueueDepth:    16,
	}
}

// SATASSDConfig models a SATA drive: 4 KiB pages, ~550 MB/s (0.275
// B/cycle), ~80 µs access latency, 8-deep queue.
func SATASSDConfig(name string) SSDConfig {
	return SSDConfig{
		Name:          name,
		PageBytes:     4096,
		BytesPerCycle: 0.275,
		FixedLatency:  160000, // 80 µs at 2 GHz
		QueueDepth:    8,
	}
}
