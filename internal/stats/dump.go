package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Record is one dumped value. Scalar-shaped stats produce a single record
// whose Path equals Stat; distributions and histograms expand into
// sub-records (.mean, .le128, …) that all share the owning stat's path in
// Stat, carrying its kind/unit/description — which is what lets STATS.md
// be generated from a dump instead of from a live tree.
type Record struct {
	// Path is the full dotted location of this value.
	Path string `json:"path"`
	// Stat is the owning stat's path (== Path except for expansion
	// sub-records of distributions and histograms).
	Stat string `json:"stat"`
	// Kind, Unit and Desc are the owning stat's registration metadata.
	Kind Kind   `json:"kind"`
	Unit Unit   `json:"unit,omitempty"`
	Desc string `json:"desc,omitempty"`
	// Volatile marks run-to-run nondeterministic values; diffs skip them
	// by default.
	Volatile bool `json:"volatile,omitempty"`
	// Value is the dumped reading.
	Value float64 `json:"value"`
}

// Dump is a rendered stats tree: ordered records plus free-form metadata
// (engine name, workload, configuration fingerprint).
type Dump struct {
	Meta    map[string]string `json:"meta,omitempty"`
	Records []Record          `json:"records"`
}

func (d *Dump) append(s *Stat, path, statPath string, v float64) {
	d.Records = append(d.Records, Record{
		Path:     path,
		Stat:     statPath,
		Kind:     s.kind,
		Unit:     s.unit,
		Desc:     s.desc,
		Volatile: s.volatile,
		Value:    v,
	})
}

// Bag flattens the dump to the harness metrics-bag shape: every record's
// full path mapped to its value. Root-level stats keep bare names, so the
// pre-tree bag keys remain present alongside the hierarchical detail.
func (d *Dump) Bag() map[string]float64 {
	m := make(map[string]float64, len(d.Records))
	for _, r := range d.Records {
		m[r.Path] = r.Value
	}
	return m
}

// Value returns the record at path, or (0, false) when absent.
func (d *Dump) Value(path string) (float64, bool) {
	for _, r := range d.Records {
		if r.Path == path {
			return r.Value, true
		}
	}
	return 0, false
}

// Prefixed returns a copy of the dump with every record path (and stat
// path, and meta key) under prefix — how per-engine dumps merge into one
// namespace ("nova.cycles", "polygraph.slice_count").
func (d *Dump) Prefixed(prefix string) *Dump {
	out := &Dump{Records: make([]Record, len(d.Records))}
	if d.Meta != nil {
		out.Meta = make(map[string]string, len(d.Meta))
		for k, v := range d.Meta {
			out.Meta[prefix+"."+k] = v
		}
	}
	for i, r := range d.Records {
		r.Path = prefix + "." + r.Path
		r.Stat = prefix + "." + r.Stat
		out.Records[i] = r
	}
	return out
}

// Merge concatenates dumps in order under shared metadata. Meta entries of
// the parts are unioned (later parts win on key collisions) and meta wins
// over both.
func Merge(meta map[string]string, parts ...*Dump) *Dump {
	out := &Dump{Meta: make(map[string]string)}
	for _, p := range parts {
		if p == nil {
			continue
		}
		for k, v := range p.Meta {
			out.Meta[k] = v
		}
		out.Records = append(out.Records, p.Records...)
	}
	for k, v := range meta {
		out.Meta[k] = v
	}
	if len(out.Meta) == 0 {
		out.Meta = nil
	}
	return out
}

// WriteJSON writes the dump as indented JSON (the format ReadJSON,
// cmd/statdiff, and the golden regression test consume).
func (d *Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadJSON parses a dump written by WriteJSON.
func ReadJSON(r io.Reader) (*Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("stats: parsing dump: %w", err)
	}
	return &d, nil
}

// WriteText writes the dump as aligned "path value unit" lines with meta
// as leading comments — the human-skimmable format.
func (d *Dump) WriteText(w io.Writer) error {
	for _, k := range sortedKeys(d.Meta) {
		if _, err := fmt.Fprintf(w, "# %s = %s\n", k, d.Meta[k]); err != nil {
			return err
		}
	}
	width := 0
	for _, r := range d.Records {
		if len(r.Path) > width {
			width = len(r.Path)
		}
	}
	for _, r := range d.Records {
		vol := ""
		if r.Volatile {
			vol = "  (volatile)"
		}
		if _, err := fmt.Fprintf(w, "%-*s %16s %s%s\n",
			width, r.Path, formatValue(r.Value), r.Unit, vol); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the dump as CSV with a header row (path, value, unit,
// kind, stat, volatile). Metadata is omitted: CSV output targets
// spreadsheet joins on path, not provenance.
func (d *Dump) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"path", "value", "unit", "kind", "stat", "volatile"}); err != nil {
		return err
	}
	for _, r := range d.Records {
		err := cw.Write([]string{
			r.Path, formatValue(r.Value), string(r.Unit), string(r.Kind),
			r.Stat, strconv.FormatBool(r.Volatile),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatValue renders integers without an exponent and everything else
// with full float64 round-trip precision.
func formatValue(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
