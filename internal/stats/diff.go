package stats

import "math"

// Delta is one aligned comparison between two dumps. A record present on
// only one side has the other side's OK flag false.
type Delta struct {
	Path     string
	Old, New float64
	OldOK    bool
	NewOK    bool
}

// Changed reports whether the two sides differ (including one-sided
// records).
func (d Delta) Changed() bool {
	return !d.OldOK || !d.NewOK || d.Old != d.New
}

// Pct returns the percent change new vs old. A zero old value with a
// nonzero new value returns +Inf; two zeros return 0.
func (d Delta) Pct() float64 {
	if d.Old == d.New {
		return 0
	}
	if d.Old == 0 {
		return math.Inf(1)
	}
	return 100 * (d.New - d.Old) / math.Abs(d.Old)
}

// Exceeds reports whether the delta crosses a percent threshold: |Pct| >
// threshold, or the record exists on only one side (a structural change
// always exceeds).
func (d Delta) Exceeds(threshold float64) bool {
	if !d.OldOK || !d.NewOK {
		return true
	}
	return math.Abs(d.Pct()) > threshold
}

// Diff aligns two dumps by record path and returns one Delta per path in
// the union, ordered by the new dump's record order with old-only paths
// appended in the old dump's order. Records marked volatile on either
// side are skipped unless includeVolatile is set.
func Diff(old, new *Dump, includeVolatile bool) []Delta {
	oldVals := make(map[string]Record, len(old.Records))
	for _, r := range old.Records {
		oldVals[r.Path] = r
	}
	seen := make(map[string]bool, len(new.Records))
	var out []Delta
	for _, r := range new.Records {
		seen[r.Path] = true
		o, ok := oldVals[r.Path]
		if !includeVolatile && (r.Volatile || (ok && o.Volatile)) {
			continue
		}
		out = append(out, Delta{Path: r.Path, Old: o.Value, New: r.Value, OldOK: ok, NewOK: true})
	}
	for _, r := range old.Records {
		if seen[r.Path] {
			continue
		}
		if !includeVolatile && r.Volatile {
			continue
		}
		out = append(out, Delta{Path: r.Path, Old: r.Value, OldOK: true})
	}
	return out
}
