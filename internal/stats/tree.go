package stats

import "fmt"

// Group is a node of the component tree. Stats registered on a group dump
// under its dotted path ("gpn0.pe3.vmu"); the root group contributes no
// path segment, so root-level stats keep bare names — which is how the
// legacy harness metrics-bag keys ("cycles", "cache_hit_rate", …) stay
// stable while hierarchical detail grows underneath them.
type Group struct {
	name     string
	children []*Group
	byName   map[string]*Group
	stats    []*Stat
}

// NewRoot returns an empty tree root.
func NewRoot() *Group {
	return &Group{byName: make(map[string]*Group)}
}

// Group returns the named child group, creating it on first use.
// Registration order is dump order, so trees render deterministically.
func (g *Group) Group(name string) *Group {
	if child, ok := g.byName[name]; ok {
		return child
	}
	child := &Group{name: name, byName: make(map[string]*Group)}
	g.byName[name] = child
	g.children = append(g.children, child)
	return child
}

// Stat is one registered statistic: identity and metadata captured at
// construction, plus a dump-time read closure. The closure is the only
// coupling between the tree and the owning component's typed value — the
// component's hot path never sees the Stat.
type Stat struct {
	name     string
	kind     Kind
	unit     Unit
	desc     string
	volatile bool
	emit     func(s *Stat, path string, d *Dump)
}

// Volatile marks a stat as run-to-run nondeterministic (wall-clock
// timings, multi-threaded traversal counts). Dump diffs and the golden
// regression test skip volatile records by default. It returns the stat
// for chaining at registration.
func (s *Stat) Volatile() *Stat {
	s.volatile = true
	return s
}

// add registers a stat, panicking on a duplicate name — always an
// assembly bug, worth failing loudly at construction time.
func (g *Group) add(name string, kind Kind, unit Unit, desc string,
	emit func(s *Stat, path string, d *Dump)) *Stat {
	for _, s := range g.stats {
		if s.name == name {
			panic(fmt.Sprintf("stats: duplicate stat %q in group %q", name, g.name))
		}
	}
	if _, ok := g.byName[name]; ok {
		panic(fmt.Sprintf("stats: stat %q collides with subgroup in group %q", name, g.name))
	}
	s := &Stat{name: name, kind: kind, unit: unit, desc: desc, emit: emit}
	g.stats = append(g.stats, s)
	return s
}

// Counter registers a Counter value.
func (g *Group) Counter(c *Counter, name string, unit Unit, desc string) *Stat {
	return g.add(name, KindCounter, unit, desc, func(s *Stat, path string, d *Dump) {
		d.append(s, path, path, float64(c.Value()))
	})
}

// Uint64 registers an existing plain uint64 counter field, so components
// instrument their established counters without changing hot-path code.
func (g *Group) Uint64(p *uint64, name string, unit Unit, desc string) *Stat {
	return g.add(name, KindCounter, unit, desc, func(s *Stat, path string, d *Dump) {
		d.append(s, path, path, float64(*p))
	})
}

// Int64 registers an existing plain int64 counter field.
func (g *Group) Int64(p *int64, name string, unit Unit, desc string) *Stat {
	return g.add(name, KindCounter, unit, desc, func(s *Stat, path string, d *Dump) {
		d.append(s, path, path, float64(*p))
	})
}

// Int registers an existing plain int counter field.
func (g *Group) Int(p *int, name string, unit Unit, desc string) *Stat {
	return g.add(name, KindCounter, unit, desc, func(s *Stat, path string, d *Dump) {
		d.append(s, path, path, float64(*p))
	})
}

// Scalar registers a Scalar value.
func (g *Group) Scalar(sc *Scalar, name string, unit Unit, desc string) *Stat {
	return g.add(name, KindScalar, unit, desc, func(s *Stat, path string, d *Dump) {
		d.append(s, path, path, sc.Value())
	})
}

// Float64 registers an existing plain float64 field as a scalar.
func (g *Group) Float64(p *float64, name string, unit Unit, desc string) *Stat {
	return g.add(name, KindScalar, unit, desc, func(s *Stat, path string, d *Dump) {
		d.append(s, path, path, *p)
	})
}

// Formula registers a derived value; f is evaluated at dump time only.
func (g *Group) Formula(f func() float64, name string, unit Unit, desc string) *Stat {
	return g.add(name, KindFormula, unit, desc, func(s *Stat, path string, d *Dump) {
		d.append(s, path, path, f())
	})
}

// Distribution registers a Distribution. It dumps as five sub-records:
// .samples, .mean, .min, .max, .stddev.
func (g *Group) Distribution(dist *Distribution, name string, unit Unit, desc string) *Stat {
	return g.add(name, KindDistribution, unit, desc, func(s *Stat, path string, d *Dump) {
		d.append(s, path+".samples", path, float64(dist.N()))
		d.append(s, path+".mean", path, dist.Mean())
		d.append(s, path+".min", path, dist.Min())
		d.append(s, path+".max", path, dist.Max())
		d.append(s, path+".stddev", path, dist.Stddev())
	})
}

// Histogram registers a Histogram. It dumps .samples and .mean plus one
// .le<hi> record per non-empty bucket (inclusive upper bound; the
// overflow bucket dumps as .overflow).
func (g *Group) Histogram(h *Histogram, name string, unit Unit, desc string) *Stat {
	return g.add(name, KindHistogram, unit, desc, func(s *Stat, path string, d *Dump) {
		d.append(s, path+".samples", path, float64(h.N()))
		d.append(s, path+".mean", path, h.Mean())
		for b := 0; b < h.NumBuckets(); b++ {
			n := h.Bucket(b)
			if n == 0 {
				continue
			}
			hi, overflow := h.bucketHi(b)
			if overflow {
				d.append(s, path+".overflow", path, float64(n))
			} else {
				d.append(s, fmt.Sprintf("%s.le%d", path, hi), path, float64(n))
			}
		}
	})
}

// Dump renders the tree to a flat record list. Order is deterministic:
// depth-first, stats before subgroups, both in registration order.
func (g *Group) Dump(meta map[string]string) *Dump {
	d := &Dump{Meta: meta}
	g.dumpInto("", d)
	return d
}

func (g *Group) dumpInto(prefix string, d *Dump) {
	for _, s := range g.stats {
		s.emit(s, prefix+s.name, d)
	}
	for _, child := range g.children {
		child.dumpInto(prefix+child.name+".", d)
	}
}
