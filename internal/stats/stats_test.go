package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTreePathsAndBag(t *testing.T) {
	root := NewRoot()
	var cycles Counter
	cycles.Add(42)
	root.Counter(&cycles, "cycles", Cycles, "simulated cycles")
	var spills uint64 = 7
	vmu := root.Group("gpn0").Group("pe3").Group("vmu")
	vmu.Uint64(&spills, "spills", Count, "activations spilled off-chip")
	root.Formula(func() float64 { return 0.5 }, "cache_hit_rate", Ratio, "derived")

	d := root.Dump(map[string]string{"engine": "test"})
	bag := d.Bag()
	if bag["cycles"] != 42 {
		t.Errorf("bag[cycles] = %v, want 42", bag["cycles"])
	}
	if bag["gpn0.pe3.vmu.spills"] != 7 {
		t.Errorf("bag[gpn0.pe3.vmu.spills] = %v, want 7", bag["gpn0.pe3.vmu.spills"])
	}
	if bag["cache_hit_rate"] != 0.5 {
		t.Errorf("bag[cache_hit_rate] = %v, want 0.5", bag["cache_hit_rate"])
	}
	// Formulas are live: rereading after an update sees the new value.
	spills = 9
	if v, _ := root.Dump(nil).Value("gpn0.pe3.vmu.spills"); v != 9 {
		t.Errorf("re-dump spills = %v, want 9", v)
	}
}

func TestGroupReuseAndDuplicatePanic(t *testing.T) {
	root := NewRoot()
	a := root.Group("pe0")
	b := root.Group("pe0")
	if a != b {
		t.Error("Group(name) must return the same child on reuse")
	}
	var c Counter
	root.Counter(&c, "x", Count, "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate stat registration must panic")
		}
	}()
	root.Counter(&c, "x", Count, "")
}

func TestDistribution(t *testing.T) {
	var d Distribution
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		d.Sample(v)
	}
	if d.N() != 8 || d.Mean() != 5 || d.Min() != 2 || d.Max() != 9 {
		t.Errorf("summary = n%d mean%v min%v max%v", d.N(), d.Mean(), d.Min(), d.Max())
	}
	if got := d.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("stddev = %v, want 2", got)
	}
}

func TestHistogramLog2(t *testing.T) {
	var h Histogram
	h.Observe(0) // bucket 0
	h.Observe(1) // bucket 1: [1,1]
	h.Observe(5) // bucket 3: [4,7]
	h.Observe(7)
	if h.Bucket(0) != 1 || h.Bucket(1) != 1 || h.Bucket(3) != 2 {
		t.Errorf("buckets = %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(3))
	}
	if h.N() != 4 || h.Mean() != 13.0/4 {
		t.Errorf("n=%d mean=%v", h.N(), h.Mean())
	}
	root := NewRoot()
	root.Histogram(&h, "sizes", Bytes, "")
	bag := root.Dump(nil).Bag()
	if bag["sizes.le7"] != 2 || bag["sizes.samples"] != 4 {
		t.Errorf("dump expansion = %v", bag)
	}
}

func TestHistogramLinearAndOverflow(t *testing.T) {
	h := Histogram{Width: 10}
	h.Observe(3)    // bucket 0: [0,9]
	h.Observe(25)   // bucket 2: [20,29]
	h.Observe(1e10) // overflow
	if h.Bucket(0) != 1 || h.Bucket(2) != 1 || h.Bucket(histBuckets-1) != 1 {
		t.Errorf("buckets wrong: %d %d %d", h.Bucket(0), h.Bucket(2), h.Bucket(histBuckets-1))
	}
	root := NewRoot()
	root.Histogram(&h, "d", Entries, "")
	bag := root.Dump(nil).Bag()
	if bag["d.le9"] != 1 || bag["d.le29"] != 1 || bag["d.overflow"] != 1 {
		t.Errorf("dump expansion = %v", bag)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	root := NewRoot()
	var c Counter
	c.Add(3)
	root.Counter(&c, "msgs", Count, "messages").Volatile()
	d := root.Dump(map[string]string{"engine": "x"})
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 1 || back.Records[0].Path != "msgs" ||
		back.Records[0].Value != 3 || !back.Records[0].Volatile ||
		back.Records[0].Kind != KindCounter || back.Meta["engine"] != "x" {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestTextAndCSVSinks(t *testing.T) {
	root := NewRoot()
	var c Counter
	c.Add(11)
	root.Counter(&c, "reads", Count, "")
	d := root.Dump(map[string]string{"k": "v"})
	var txt, csvBuf bytes.Buffer
	if err := d.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "# k = v") || !strings.Contains(txt.String(), "reads") {
		t.Errorf("text output missing content:\n%s", txt.String())
	}
	if err := d.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "path,value,unit") {
		t.Errorf("csv output wrong:\n%s", csvBuf.String())
	}
}

func TestPrefixedMerge(t *testing.T) {
	a := NewRoot()
	var ca Counter
	ca.Add(1)
	a.Counter(&ca, "cycles", Cycles, "")
	b := NewRoot()
	var cb Counter
	cb.Add(2)
	b.Counter(&cb, "cycles", Cycles, "")
	merged := Merge(map[string]string{"graph": "g"},
		a.Dump(map[string]string{"engine": "nova"}).Prefixed("nova"),
		b.Dump(nil).Prefixed("polygraph"))
	bag := merged.Bag()
	if bag["nova.cycles"] != 1 || bag["polygraph.cycles"] != 2 {
		t.Errorf("merged bag = %v", bag)
	}
	if merged.Meta["nova.engine"] != "nova" || merged.Meta["graph"] != "g" {
		t.Errorf("merged meta = %v", merged.Meta)
	}
}

func TestDiff(t *testing.T) {
	mk := func(vals map[string]float64, volatilePaths ...string) *Dump {
		d := &Dump{}
		vol := map[string]bool{}
		for _, p := range volatilePaths {
			vol[p] = true
		}
		for _, p := range sortedKeys(stringify(vals)) {
			d.Records = append(d.Records, Record{Path: p, Stat: p, Value: vals[p], Volatile: vol[p]})
		}
		return d
	}
	old := mk(map[string]float64{"a": 10, "b": 5, "wall": 1.0, "gone": 3}, "wall")
	new := mk(map[string]float64{"a": 12, "b": 5, "wall": 2.0, "added": 1}, "wall")

	deltas := Diff(old, new, false)
	byPath := map[string]Delta{}
	for _, d := range deltas {
		byPath[d.Path] = d
	}
	if _, ok := byPath["wall"]; ok {
		t.Error("volatile record must be skipped by default")
	}
	if d := byPath["a"]; math.Abs(d.Pct()-20) > 1e-9 || !d.Changed() {
		t.Errorf("a: pct=%v changed=%v", d.Pct(), d.Changed())
	}
	if d := byPath["b"]; d.Changed() {
		t.Error("b must be unchanged")
	}
	if d := byPath["added"]; d.OldOK || !d.Exceeds(1000) {
		t.Error("added record must be a structural change")
	}
	if d := byPath["gone"]; d.NewOK || !d.Exceeds(1000) {
		t.Error("removed record must be a structural change")
	}
	withVol := Diff(old, new, true)
	found := false
	for _, d := range withVol {
		if d.Path == "wall" {
			found = true
		}
	}
	if !found {
		t.Error("includeVolatile must keep volatile records")
	}
}

func stringify(m map[string]float64) map[string]string {
	out := make(map[string]string, len(m))
	for k := range m {
		out[k] = ""
	}
	return out
}

// BenchmarkHotPathUpdates guards the zero-overhead rule: typed-value
// updates on the fire path must not allocate.
func BenchmarkHotPathUpdates(b *testing.B) {
	var c Counter
	var s Scalar
	var d Distribution
	var h Histogram
	root := NewRoot()
	root.Counter(&c, "c", Count, "")
	root.Scalar(&s, "s", Ratio, "")
	root.Distribution(&d, "d", Entries, "")
	root.Histogram(&h, "h", Bytes, "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		s.Add(0.5)
		d.Sample(float64(i & 1023))
		h.Observe(uint64(i & 1023))
	}
	if c.Value() == 0 {
		b.Fatal("impossible")
	}
}
