// Package stats is the hierarchical, typed statistics subsystem behind
// every engine's instrumentation — the role gem5's stats framework plays
// for the paper's evaluation.
//
// Stats live in a component tree of Groups (e.g. gpn0.pe3.vmu.spills) and
// come in five kinds:
//
//   - Counter: a monotonically increasing event count
//   - Scalar: a settable floating-point level
//   - Distribution: streaming mean/min/max/stddev over samples
//   - Histogram: bucketed sample counts (log2 or linear buckets)
//   - Formula: a derived value evaluated lazily at dump time
//
// Each stat is registered once, at component construction, with a name, a
// unit, and a one-line description. Registration captures a read closure;
// nothing else about the stat is interface-shaped. The zero-overhead rule:
// hot-path updates are plain field operations on the typed values
// (`c.spills.Inc()`, `h.Observe(n)` — an integer increment into a
// fixed-size array), never map lookups or interface calls, so the
// event-kernel fire path stays allocation-free (guarded by ReportAllocs
// benchmarks in this package and in internal/mem, internal/network, and
// internal/sim). All walking, boxing, and formatting cost is paid at dump
// time only.
//
// A Group renders to a Dump — a flat, ordered record list with full
// metadata — which serializes to JSON, aligned text, or CSV
// (novasim -stats-out), flattens to the harness metrics bag
// (Dump.Bag), and diffs against another dump (cmd/statdiff, the golden
// regression test). Records carry their kind/unit/description, so the
// generated STATS.md reference is derived from live registrations rather
// than hand-maintained.
package stats

//go:generate go run nova/internal/statsgen -o ../../STATS.md

import "math/bits"

// Unit annotates what a stat's value measures. Free-form strings are
// allowed; the constants below cover the repository's instrumentation.
type Unit string

// Standard units.
const (
	Cycles  Unit = "cycles"
	Seconds Unit = "seconds"
	Bytes   Unit = "bytes"
	Count   Unit = "count"
	Ratio   Unit = "ratio"
	Entries Unit = "entries"
)

// Kind identifies a stat's behavioural type.
type Kind string

// Stat kinds.
const (
	KindCounter      Kind = "counter"
	KindScalar       Kind = "scalar"
	KindDistribution Kind = "distribution"
	KindHistogram    Kind = "histogram"
	KindFormula      Kind = "formula"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; updates are plain integer increments.
type Counter uint64

// Inc adds one.
func (c *Counter) Inc() { *c++ }

// Add adds n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return uint64(*c) }

// Scalar is a settable floating-point level (a gauge). The zero value is
// ready to use.
type Scalar float64

// Set replaces the value.
func (s *Scalar) Set(v float64) { *s = Scalar(v) }

// Add accumulates into the value.
func (s *Scalar) Add(v float64) { *s += Scalar(v) }

// Value returns the current value.
func (s *Scalar) Value() float64 { return float64(*s) }

// Distribution accumulates streaming summary statistics (count, mean,
// min, max, standard deviation) without retaining samples. The zero value
// is ready to use.
type Distribution struct {
	n              uint64
	sum, sumSq     float64
	minVal, maxVal float64
}

// Sample records one observation.
func (d *Distribution) Sample(v float64) {
	if d.n == 0 || v < d.minVal {
		d.minVal = v
	}
	if d.n == 0 || v > d.maxVal {
		d.maxVal = v
	}
	d.n++
	d.sum += v
	d.sumSq += v * v
}

// Merge folds another distribution into d, as if every sample recorded
// on o had been recorded on d. Used when aggregating per-component
// distributions (e.g. per-PE recovery hits) into a machine-wide one.
func (d *Distribution) Merge(o Distribution) {
	if o.n == 0 {
		return
	}
	if d.n == 0 || o.minVal < d.minVal {
		d.minVal = o.minVal
	}
	if d.n == 0 || o.maxVal > d.maxVal {
		d.maxVal = o.maxVal
	}
	d.n += o.n
	d.sum += o.sum
	d.sumSq += o.sumSq
}

// N returns the sample count.
func (d *Distribution) N() uint64 { return d.n }

// Mean returns the sample mean (0 with no samples).
func (d *Distribution) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min returns the smallest sample (0 with no samples).
func (d *Distribution) Min() float64 { return d.minVal }

// Max returns the largest sample (0 with no samples).
func (d *Distribution) Max() float64 { return d.maxVal }

// Stddev returns the population standard deviation (0 with < 2 samples).
func (d *Distribution) Stddev() float64 {
	if d.n < 2 {
		return 0
	}
	mean := d.sum / float64(d.n)
	variance := d.sumSq/float64(d.n) - mean*mean
	if variance < 0 { // floating-point cancellation
		variance = 0
	}
	return sqrt(variance)
}

// sqrt is Newton's method on float64 — avoids importing math into the one
// file every engine's hot structs embed (keeps the dependency surface of
// the typed values at math/bits alone).
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 32; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// histBuckets bounds every histogram at a fixed bucket count so Histogram
// values embed directly in hot structs with no constructor and no heap
// allocation. Log2 histograms cover the full uint64 range (the last bucket
// absorbs values ≥ 2^46); linear histograms clamp overflow into the last
// bucket.
const histBuckets = 48

// Histogram counts samples in fixed buckets. With Width == 0 (the zero
// value) buckets are logarithmic: bucket b counts values v with
// bits.Len64(v) == b, i.e. v in [2^(b-1), 2^b), and bucket 0 counts
// zeros. With Width > 0 buckets are linear: bucket b counts values in
// [b·Width, (b+1)·Width). Either way Observe is an integer increment into
// a fixed-size array — safe for allocation-free hot paths.
type Histogram struct {
	// Width selects linear bucketing when positive; set it before the
	// first Observe and never change it afterwards.
	Width   uint64
	n       uint64
	sum     uint64
	buckets [histBuckets]uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	b := 0
	if h.Width > 0 {
		b = int(v / h.Width)
	} else {
		b = bits.Len64(v)
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b]++
	h.n++
	h.sum += v
}

// Merge folds another histogram into h, as if every sample observed on o
// had been observed on h. Both histograms must use the same bucketing
// (equal Width). Used when aggregating per-shard histograms into a
// machine-wide one at dump time.
func (h *Histogram) Merge(o Histogram) {
	if o.n == 0 {
		return
	}
	h.n += o.n
	h.sum += o.sum
	for b := range o.buckets {
		h.buckets[b] += o.buckets[b]
	}
}

// N returns the sample count.
func (h *Histogram) N() uint64 { return h.n }

// Mean returns the sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Bucket returns bucket b's count (0 when out of range).
func (h *Histogram) Bucket(b int) uint64 {
	if b < 0 || b >= histBuckets {
		return 0
	}
	return h.buckets[b]
}

// NumBuckets returns the fixed bucket count.
func (h *Histogram) NumBuckets() int { return histBuckets }

// Quantile returns an upper bound on the q-quantile of the observed
// samples (q in [0,1]): the inclusive upper edge of the first bucket at
// which the cumulative count reaches q·N. Resolution is the bucket width
// — exact ranks are not recoverable from a fixed-bucket histogram — which
// is the right trade for serving-latency reporting: percentiles rounded
// up to a bucket edge, computed in O(buckets) with no retained samples.
// The overflow bucket reports the largest representable bound, ^uint64(0).
// With no samples Quantile returns 0.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		cum += h.buckets[b]
		if cum >= rank {
			hi, overflow := h.bucketHi(b)
			if overflow {
				return ^uint64(0)
			}
			return hi
		}
	}
	return ^uint64(0)
}

// bucketHi returns the inclusive upper bound of bucket b, and whether the
// bucket is the overflow bucket (unbounded above).
func (h *Histogram) bucketHi(b int) (uint64, bool) {
	if b == histBuckets-1 {
		return 0, true
	}
	if h.Width > 0 {
		return uint64(b+1)*h.Width - 1, false
	}
	if b == 0 {
		return 0, false
	}
	return 1<<uint(b) - 1, false
}
