package nova_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"nova"
	"nova/graph"
	"nova/internal/ref"
	"nova/program"
)

func smallConfig() nova.Config {
	cfg := nova.DefaultConfig()
	cfg.PEsPerGPN = 2
	cfg.GPNs = 2
	cfg.CacheBytesPerPE = 4 << 10
	cfg.SuperblockDim = 16
	cfg.ActiveBufferEntries = 16
	return cfg
}

func testGraph() *graph.CSR {
	return graph.GenRMAT("t", 9, 10, graph.DefaultRMAT, 16, 3)
}

func TestAcceleratorBFSReport(t *testing.T) {
	g := testGraph()
	root := g.LargestOutDegreeVertex()
	acc, err := nova.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acc.Run(program.NewBFS(root), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := nova.Verify("bfs", g, root, rep.Props); err != nil {
		t.Fatal(err)
	}
	if rep.GTEPS(g) <= 0 {
		t.Fatal("no throughput reported")
	}
	if rep.Cycles == 0 || rep.Stats.SimSeconds <= 0 {
		t.Fatalf("report timing empty: %+v", rep.Stats)
	}
	if rep.EdgeUtilization <= 0 || rep.EdgeUtilization > 1.01 {
		t.Fatalf("edge utilization %v", rep.EdgeUtilization)
	}
}

func TestConfigErrors(t *testing.T) {
	bad := smallConfig()
	bad.Spill = "magic"
	if _, err := nova.New(bad); err == nil {
		t.Fatal("bad spill accepted")
	}
	bad = smallConfig()
	bad.Fabric = "telepathy"
	if _, err := nova.New(bad); err == nil {
		t.Fatal("bad fabric accepted")
	}
	bad = smallConfig()
	bad.Mapping = "vibes"
	if _, err := nova.New(bad); err == nil {
		t.Fatal("bad mapping accepted")
	}
	bad = smallConfig()
	bad.GPNs = 0
	if _, err := nova.New(bad); err == nil {
		t.Fatal("0 GPNs accepted")
	}
}

func TestAllMappingsCorrect(t *testing.T) {
	g := testGraph()
	root := g.LargestOutDegreeVertex()
	for _, mapping := range []string{"random", "interleave", "load-balanced", "locality"} {
		cfg := smallConfig()
		cfg.Mapping = mapping
		acc, err := nova.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := acc.Run(program.NewBFS(root), g)
		if err != nil {
			t.Fatalf("%s: %v", mapping, err)
		}
		if err := nova.Verify("bfs", g, root, rep.Props); err != nil {
			t.Fatalf("%s: %v", mapping, err)
		}
	}
}

func TestRunWorkloadAllFiveOnAllEngines(t *testing.T) {
	g := testGraph()
	gT := g.Transpose()
	sym := g.Symmetrize()
	root := g.LargestOutDegreeVertex()
	acc, err := nova.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	pg := &nova.PolyGraphBaseline{ForceSlices: 3}
	engines := map[string]program.Runner{"nova": acc, "polygraph": pg}

	for engName, eng := range engines {
		for _, w := range nova.WorkloadNames {
			gw, gwT := g, gT
			if w == "cc" {
				gw, gwT = sym, sym
			}
			out, err := nova.RunWorkload(eng, w, gw, gwT, root, 5)
			if err != nil {
				t.Fatalf("%s/%s: %v", engName, w, err)
			}
			if out.Stats.SimSeconds <= 0 {
				t.Fatalf("%s/%s: no simulated time", engName, w)
			}
			// BC's denominator counts forward edges twice, while the
			// backward pass walks in-edges, so its ratio can exceed 1
			// slightly.
			weMax := 1.01
			if w == "bc" {
				weMax = 1.5
			}
			if we := out.WorkEfficiency(); we <= 0 || we > weMax {
				t.Fatalf("%s/%s: work efficiency %v", engName, w, we)
			}
			if out.EffectiveGTEPS() <= 0 {
				t.Fatalf("%s/%s: no throughput", engName, w)
			}
		}
	}
}

func TestEnginesAgreeOnResults(t *testing.T) {
	// NOVA and PolyGraph are different machines but must compute the
	// same answers.
	g := testGraph()
	root := g.LargestOutDegreeVertex()
	acc, _ := nova.New(smallConfig())
	pg := &nova.PolyGraphBaseline{ForceSlices: 4}
	a, err := nova.RunWorkload(acc, "sssp", g, nil, root, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nova.RunWorkload(pg, "sssp", g, nil, root, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Props {
		if a.Props[v] != b.Props[v] {
			t.Fatalf("engines disagree at vertex %d: %d vs %d", v, a.Props[v], b.Props[v])
		}
	}
}

func TestSoftwareBaseline(t *testing.T) {
	g := testGraph()
	gT := g.Transpose()
	sym := g.Symmetrize()
	root := g.LargestOutDegreeVertex()
	sw := &nova.Software{Threads: 2}
	for _, w := range nova.WorkloadNames {
		gw, gwT := g, gT
		if w == "cc" {
			gw, gwT = sym, sym
		}
		rep, err := sw.RunWorkload(w, gw, gwT, root, 5)
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if rep.Seconds <= 0 {
			t.Fatalf("%s: no wall time", w)
		}
	}
	// Correctness spot-check.
	rep, err := sw.RunWorkload("bfs", g, gT, root, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.BFS(g, root)
	for v := range want {
		if rep.Dists[v] != want[v] {
			t.Fatalf("software BFS wrong at %d", v)
		}
	}
	if _, err := sw.RunWorkload("nope", g, gT, root, 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestBCOutcomeMatchesOracle(t *testing.T) {
	g := testGraph()
	root := g.LargestOutDegreeVertex()
	acc, _ := nova.New(smallConfig())
	out, err := nova.RunWorkload(acc, "bc", g, nil, root, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.BC(g, root)
	for v := range want {
		tol := 1e-3 * (1 + math.Abs(want[v]))
		if math.Abs(out.Scores[v]-want[v]) > tol {
			t.Fatalf("BC at %d: %v want %v", v, out.Scores[v], want[v])
		}
	}
}

func TestSequentialEdgesExposed(t *testing.T) {
	g := testGraph()
	root := g.LargestOutDegreeVertex()
	if nova.SequentialEdges(g, root, "bfs", 0) <= 0 {
		t.Fatal("no sequential edges for bfs")
	}
	if nova.SequentialEdges(g, root, "pr", 10) != 10*g.NumEdges() {
		t.Fatal("pr sequential edges wrong")
	}
}

func TestVerifyRejectsWrongProps(t *testing.T) {
	g := testGraph()
	root := g.LargestOutDegreeVertex()
	props := make([]program.Prop, g.NumVertices())
	if err := nova.Verify("bfs", g, root, props); err == nil {
		t.Fatal("all-zero properties verified as BFS output")
	}
	if err := nova.Verify("pagerank??", g, root, props); err == nil {
		t.Fatal("unknown workload verified")
	}
}

func TestRunTracedProducesValidTrace(t *testing.T) {
	g := testGraph()
	acc, err := nova.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep, err := acc.RunTraced(program.NewBFS(g.LargestOutDegreeVertex()), g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.SimSeconds <= 0 {
		t.Fatal("no simulated time")
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("trace is empty")
	}
	cats := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		if c, ok := e["cat"].(string); ok {
			cats[c] = true
		}
	}
	for _, want := range []string{"mgu", "vmu"} {
		if !cats[want] {
			t.Fatalf("trace missing %q events (got %v)", want, cats)
		}
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() *nova.Report {
		g := testGraph()
		acc, err := nova.New(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := acc.Run(program.NewSSSP(g.LargestOutDegreeVertex()), g)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles ||
		a.Stats.EdgesTraversed != b.Stats.EdgesTraversed ||
		a.Stats.MessagesCoalesced != b.Stats.MessagesCoalesced ||
		a.NetworkBytes != b.NetworkBytes {
		t.Fatalf("facade runs diverge: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestReportLoadImbalancePopulated(t *testing.T) {
	g := testGraph()
	acc, _ := nova.New(smallConfig())
	rep, err := acc.Run(program.NewBFS(g.LargestOutDegreeVertex()), g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LoadImbalance < 1 {
		t.Fatalf("load imbalance %v < 1", rep.LoadImbalance)
	}
}
