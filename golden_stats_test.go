package nova_test

import (
	"math"
	"os"
	"testing"

	"nova/internal/golden"
	"nova/internal/stats"
)

// TestGoldenStatsDump rebuilds the golden statistics dump (the three
// determinism cells, see internal/golden) and compares every non-volatile
// record against the checked-in testdata/golden_stats.json. It is the
// wide-net companion to TestKernelDeterminismGolden: that test pins a
// handful of headline counters, this one pins all ~hundreds of records,
// so an accidental change to any counter anywhere in the tree fails CI.
//
// After an intentional behavior change, refresh the file with
// `make golden` and review the statdiff output in the commit.
func TestGoldenStatsDump(t *testing.T) {
	f, err := os.Open("testdata/golden_stats.json")
	if err != nil {
		t.Fatalf("missing golden dump (refresh with `make golden`): %v", err)
	}
	defer f.Close()
	want, err := stats.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}

	got, err := golden.BuildDump()
	if err != nil {
		t.Fatal(err)
	}

	// Relative tolerance absorbs cross-platform float differences (FMA
	// contraction in formula evaluation); counters compare exactly.
	const relTol = 1e-9
	mismatches := 0
	for _, d := range stats.Diff(want, got, false) {
		switch {
		case !d.OldOK:
			t.Errorf("%s: new record %g not in golden dump", d.Path, d.New)
			mismatches++
		case !d.NewOK:
			t.Errorf("%s: golden record %g missing from fresh dump", d.Path, d.Old)
			mismatches++
		case !within(d.Old, d.New, relTol):
			t.Errorf("%s: golden %g, got %g (%+.3g%%)", d.Path, d.Old, d.New, d.Pct())
			mismatches++
		}
		if mismatches > 20 {
			t.Fatal("too many mismatches; truncating (regenerate with `make golden` if intentional)")
		}
	}
}

// within reports whether a and b agree to relative tolerance tol.
func within(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}
