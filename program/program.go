// Package program defines the vertex-centric, message-driven programming
// model shared by every execution engine in this repository: the NOVA
// accelerator model, the PolyGraph baseline, the Ligra-style software
// framework, and the functional reference executor.
//
// Following Section II-A of the paper, a workload is expressed as a
// reduce function (merge an incoming message's update into a vertex
// property) and a propagate function (derive the update sent along each
// out-edge). Asynchronous workloads (BFS, SSSP, CC) activate a vertex
// whenever reduce changes its property; bulk-synchronous workloads (PR, BC)
// accumulate messages into next_prop and fold them in with Apply at the
// epoch barrier.
package program

import (
	"math"

	"nova/graph"
)

// Prop is a vertex property or message update. It is an opaque 64-bit
// value; integer workloads store magnitudes directly and floating-point
// workloads store math.Float64bits. The simulated vertex record is 16 bytes
// (cur_prop, next_prop, active flags), matching the paper's sizing.
type Prop uint64

// Inf is the "unreached" property for distance-like workloads.
const Inf Prop = math.MaxUint64

// FromFloat encodes a float64 property.
func FromFloat(f float64) Prop { return Prop(math.Float64bits(f)) }

// Float decodes a float64 property.
func (p Prop) Float() float64 { return math.Float64frombits(uint64(p)) }

// Mode selects the execution model (Section III-A: NOVA supports both).
type Mode int

const (
	// Async runs all units concurrently until global quiescence.
	Async Mode = iota
	// BSP alternates message-processing and message-generation epochs
	// separated by barriers.
	BSP
)

func (m Mode) String() string {
	if m == Async {
		return "async"
	}
	return "bsp"
}

// Message is an update in flight: ⟨u, δ⟩ in the paper's notation.
type Message struct {
	Dst   graph.VertexID
	Delta Prop
}

// Program describes a vertex-centric workload.
type Program interface {
	// Name identifies the workload ("bfs", "sssp", ...).
	Name() string
	// Mode selects async or BSP execution.
	Mode() Mode
	// InitProp returns vertex v's initial property.
	InitProp(v graph.VertexID, g *graph.CSR) Prop
	// InitActive returns the initially active vertices (the data-driven
	// seed for BFS-like workloads, or every vertex for topology-driven
	// ones).
	InitActive(g *graph.CSR) []graph.VertexID
	// Reduce merges delta into the current value for vertex v and
	// returns the result. For async programs "current value" is the
	// live property (activation = result != cur); for BSP programs it
	// is the epoch accumulator.
	Reduce(v graph.VertexID, cur, delta Prop) Prop
	// Propagate computes the update sent along one out-edge of a vertex
	// whose property is prop, with edge weight w and out-degree outDeg.
	// ok=false suppresses the message.
	Propagate(prop Prop, w uint32, outDeg int64) (delta Prop, ok bool)
}

// BSPProgram is implemented by bulk-synchronous workloads.
type BSPProgram interface {
	Program
	// AccumInit is the identity accumulator value each epoch starts from.
	AccumInit() Prop
	// Apply folds the epoch's accumulator into the property at the
	// barrier and reports whether the vertex is active next epoch.
	Apply(v graph.VertexID, cur, accum Prop, g *graph.CSR) (newProp Prop, activate bool)
	// MaxEpochs bounds the number of epochs (0 = unbounded).
	MaxEpochs() int
}

// ScheduledProgram is a BSP program whose per-epoch active set is dictated
// externally (the backward sweep of betweenness centrality walks the BFS
// levels in reverse regardless of message arrival).
type ScheduledProgram interface {
	BSPProgram
	// EpochActive returns the vertices that must be active in the given
	// epoch in addition to message-driven activations, or nil.
	EpochActive(epoch int, g *graph.CSR) []graph.VertexID
}

// DeltaMerger is implemented by programs whose in-flight deltas can be
// pre-combined before reaching the destination vertex: MergeDelta must
// satisfy Reduce(Reduce(cur,a),b) == Reduce(cur, MergeDelta(a,b)) for any
// cur. The fabric's coalescing stage uses it to fold same-destination-
// vertex updates waiting for link bandwidth into a single message. The
// equality is exact for min-style reductions (BFS/SSSP/CC); for
// floating-point sums (PR-delta) it only reassociates the additions, so
// results stay deterministic but can differ in final bits from an
// uncoalesced run.
type DeltaMerger interface {
	// MergeDelta combines two deltas addressed to the same vertex.
	MergeDelta(a, b Prop) Prop
}

// RunStats aggregates what every engine reports about one execution.
type RunStats struct {
	// SimSeconds is the modeled execution time (wall-clock seconds for
	// the software engine).
	SimSeconds float64
	// EdgesTraversed counts propagate invocations (messages generated).
	EdgesTraversed int64
	// MessagesSent counts messages injected into the network/queues.
	MessagesSent int64
	// MessagesCoalesced counts reductions that merged into a vertex that
	// was already pending propagation — work the engine avoided.
	MessagesCoalesced int64
	// Epochs is the number of BSP epochs executed (0 for async).
	Epochs int
}

// TEPS returns raw traversed-edges-per-second.
func (s RunStats) TEPS() float64 {
	if s.SimSeconds <= 0 {
		return 0
	}
	return float64(s.EdgesTraversed) / s.SimSeconds
}

// EffectiveGTEPS is the paper's throughput metric: useful (sequential)
// edges per simulated second, in billions. sequentialEdges is the
// work-efficiency denominator from the reference implementation.
func (s RunStats) EffectiveGTEPS(sequentialEdges int64) float64 {
	if s.SimSeconds <= 0 {
		return 0
	}
	return float64(sequentialEdges) / s.SimSeconds / 1e9
}

// WorkEfficiency is Beamer's metric: edges a sequential implementation
// traverses over edges this execution traversed (≤ 1 for asynchronous
// execution with redundant traversals).
func (s RunStats) WorkEfficiency(sequentialEdges int64) float64 {
	if s.EdgesTraversed == 0 {
		return 1
	}
	return float64(sequentialEdges) / float64(s.EdgesTraversed)
}

// Runner abstracts an execution engine so workload harnesses (e.g. the
// two-phase betweenness centrality driver) can run on any of them.
type Runner interface {
	// RunProgram executes p on g and returns the final vertex properties
	// and execution statistics.
	RunProgram(p Program, g *graph.CSR) ([]Prop, RunStats, error)
}

func allVertices(g *graph.CSR) []graph.VertexID {
	out := make([]graph.VertexID, g.NumVertices())
	for v := range out {
		out[v] = graph.VertexID(v)
	}
	return out
}
