package program

import (
	"testing"
	"testing/quick"

	"nova/graph"
)

func TestPRIsScheduled(t *testing.T) {
	g := graph.GenUniform("u", 100, 4, 1, 1)
	p := NewPageRank(0.85, 3)
	sched, ok := p.(ScheduledProgram)
	if !ok {
		t.Fatal("PageRank must be a ScheduledProgram (topology-driven)")
	}
	if got := len(sched.EpochActive(0, g)); got != 100 {
		t.Fatalf("epoch 0 active = %d, want all 100", got)
	}
	if sched.EpochActive(3, g) != nil {
		t.Fatal("EpochActive beyond MaxEpochs must be nil")
	}
	if p.MaxEpochs() != 3 {
		t.Fatalf("MaxEpochs = %d", p.MaxEpochs())
	}
	// Bad constructor arguments fall back to sane defaults.
	q := NewPageRank(-1, 0)
	if q.MaxEpochs() != 10 {
		t.Fatalf("default epochs = %d", q.MaxEpochs())
	}
}

func TestPRPropagateSuppressesZeroOutDegree(t *testing.T) {
	p := NewPageRank(0.85, 1)
	if _, ok := p.Propagate(FromFloat(0.5), 1, 0); ok {
		t.Fatal("zero-out-degree vertex must not propagate")
	}
	d, ok := p.Propagate(FromFloat(0.5), 1, 5)
	if !ok || d.Float() != 0.1 {
		t.Fatalf("propagate = (%v, %v), want 0.1", d.Float(), ok)
	}
}

func TestBCPackRoundTrip(t *testing.T) {
	f := func(depth uint16, sigma uint64) bool {
		sigma &= (1 << 48) - 1
		p := bcPack(depth, sigma)
		return bcDepth(p) == depth && bcSigma(p) == sigma
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBCBackwardReduceFiltersByDepth(t *testing.T) {
	// Forward state: vertex 0 at depth 1.
	fwd := []Prop{bcPack(1, 2), bcPack(2, 1)}
	b := NewBCBackward(fwd).(interface {
		Reduce(v graph.VertexID, cur, delta Prop) Prop
	})
	cur := FromFloat(0)
	// A contribution from depth 2 (child level) is accepted at depth 1.
	accepted := b.Reduce(0, cur, bcMsgPack(2, 0.5))
	if accepted.Float() != 0.5 {
		t.Fatalf("child contribution rejected: %v", accepted.Float())
	}
	// A contribution from depth 1 (same level) is not a DAG edge.
	rejected := b.Reduce(0, cur, bcMsgPack(1, 0.5))
	if rejected != cur {
		t.Fatal("same-level contribution accepted")
	}
	// A contribution to an unreached vertex is dropped.
	unreached := []Prop{bcPack(bcUnreached, 0)}
	b2 := NewBCBackward(unreached).(interface {
		Reduce(v graph.VertexID, cur, delta Prop) Prop
	})
	if got := b2.Reduce(0, cur, bcMsgPack(1, 0.5)); got != cur {
		t.Fatal("unreached vertex accepted a contribution")
	}
}

func TestBCBackwardPrepareProp(t *testing.T) {
	fwd := []Prop{bcPack(1, 4)}
	b := NewBCBackward(fwd).(PropPreparer)
	// δ(v)=1, σ(v)=4 → contribution (1+1)/4 = 0.5 tagged with depth 1.
	msg := b.PrepareProp(0, FromFloat(1))
	if bcMsgDepth(msg) != 1 {
		t.Fatalf("depth tag = %d", bcMsgDepth(msg))
	}
	if c := bcMsgContrib(msg); c != 0.5 {
		t.Fatalf("contribution = %v, want 0.5", c)
	}
	// σ = 0 must not divide by zero.
	zero := NewBCBackward([]Prop{bcPack(1, 0)}).(PropPreparer)
	if c := bcMsgContrib(zero.PrepareProp(0, FromFloat(1))); c != 0 {
		t.Fatalf("σ=0 contribution = %v, want 0", c)
	}
}

func TestBCBackwardSchedule(t *testing.T) {
	// Depths 0,1,1,2 → levels walked: epoch 0 = depth 2, epoch 1 = depth 1.
	fwd := []Prop{bcPack(0, 1), bcPack(1, 1), bcPack(1, 1), bcPack(2, 2)}
	b := NewBCBackward(fwd).(ScheduledProgram)
	g := graph.FromEdges("x", 4, nil)
	if got := b.EpochActive(0, g); len(got) != 1 || got[0] != 3 {
		t.Fatalf("epoch 0 = %v, want [3]", got)
	}
	if got := b.EpochActive(1, g); len(got) != 2 {
		t.Fatalf("epoch 1 = %v, want the two depth-1 vertices", got)
	}
	// Level 0 (the root) never propagates backward.
	if got := b.EpochActive(2, g); got != nil {
		t.Fatalf("epoch 2 = %v, want nil", got)
	}
}

func TestWorkloadNamesAndModes(t *testing.T) {
	progs := []Program{NewBFS(0), NewSSSP(0), NewCC(), NewPageRank(0.85, 5), NewBCForward(0)}
	wantName := []string{"bfs", "sssp", "cc", "pr", "bc-forward"}
	wantMode := []Mode{Async, Async, Async, BSP, BSP}
	for i, p := range progs {
		if p.Name() != wantName[i] {
			t.Errorf("name %q, want %q", p.Name(), wantName[i])
		}
		if p.Mode() != wantMode[i] {
			t.Errorf("%s: mode %v, want %v", p.Name(), p.Mode(), wantMode[i])
		}
	}
	if Async.String() != "async" || BSP.String() != "bsp" {
		t.Error("mode strings wrong")
	}
}

func TestSynchronousWrapperMatchesAsync(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.GenUniform("u", 60, 5, 8, seed)
		root := g.LargestOutDegreeVertex()
		async, _ := Exec(NewSSSP(root), g)
		sync, st := Exec(Synchronous(NewSSSP(root)), g)
		for v := range async {
			if async[v] != sync[v] {
				return false
			}
		}
		return st.Epochs > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSynchronousWrapperLevelCount(t *testing.T) {
	// On a path graph, synchronous BFS needs exactly depth epochs.
	var edges []graph.Edge
	for i := 0; i < 9; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), Weight: 1})
	}
	g := graph.FromEdges("path", 10, edges)
	_, st := Exec(Synchronous(NewBFS(0)), g)
	// Depth-9 path: 9 frontier epochs plus one final epoch in which the
	// sink (just improved, hence re-activated) has nothing to propagate.
	if st.Epochs != 10 {
		t.Fatalf("epochs = %d, want 10 (level-synchronous)", st.Epochs)
	}
}

func TestSynchronousRejectsBSP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Synchronous accepted a BSP program")
		}
	}()
	Synchronous(NewPageRank(0.85, 5))
}
