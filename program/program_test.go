package program_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nova/graph"
	"nova/internal/ref"
	"nova/program"
)

func randGraph(seed int64, n, m int) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    graph.VertexID(rng.Intn(n)),
			Dst:    graph.VertexID(rng.Intn(n)),
			Weight: uint32(1 + rng.Intn(8)),
		}
	}
	return graph.FromEdges("rand", n, edges)
}

func propsAsDist(props []program.Prop) []int64 {
	out := make([]int64, len(props))
	for i, p := range props {
		if p == program.Inf {
			out[i] = ref.Unreached
		} else {
			out[i] = int64(p)
		}
	}
	return out
}

func TestExecBFSMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 40, 150)
		root := g.LargestOutDegreeVertex()
		props, stats := program.Exec(program.NewBFS(root), g)
		want := ref.BFS(g, root)
		got := propsAsDist(props)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return stats.EdgesTraversed > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExecSSSPMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 40, 150)
		root := g.LargestOutDegreeVertex()
		props, _ := program.Exec(program.NewSSSP(root), g)
		want := ref.SSSP(g, root)
		got := propsAsDist(props)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExecCCMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 40, 80).Symmetrize()
		props, _ := program.Exec(program.NewCC(), g)
		want := ref.CC(g)
		for v := range want {
			if int64(props[v]) != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExecPageRankMatchesOracle(t *testing.T) {
	g := graph.GenRMAT("r", 9, 8, graph.DefaultRMAT, 1, 5)
	props, stats := program.Exec(program.NewPageRank(0.85, 10), g)
	want := ref.PageRank(g, 0.85, 10)
	for v := range want {
		if math.Abs(props[v].Float()-want[v]) > 1e-9 {
			t.Fatalf("vertex %d: rank %v, want %v", v, props[v].Float(), want[v])
		}
	}
	if stats.Epochs != 10 {
		t.Fatalf("epochs = %d, want 10", stats.Epochs)
	}
}

func TestExecBCMatchesBrandes(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 30, 90)
		gT := g.Transpose()
		root := g.LargestOutDegreeVertex()
		scores, _, err := program.RunBC(execRunner{}, g, gT, root)
		if err != nil {
			return false
		}
		want := ref.BC(g, root)
		for v := range want {
			// Backward-pass contributions travel as float32; allow
			// proportional tolerance.
			tol := 1e-4 * (1 + math.Abs(want[v]))
			if math.Abs(scores[v]-want[v]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// execRunner adapts the functional executor to the Runner interface.
type execRunner struct{}

func (execRunner) RunProgram(p program.Program, g *graph.CSR) ([]program.Prop, program.RunStats, error) {
	props, stats := program.Exec(p, g)
	return props, stats, nil
}

func TestBCForwardCountsPaths(t *testing.T) {
	// Diamond 0->{1,2}->3: σ(3) must be 2.
	g := graph.FromEdges("d", 4, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 0, Dst: 2, Weight: 1},
		{Src: 1, Dst: 3, Weight: 1}, {Src: 2, Dst: 3, Weight: 1},
	})
	props, _ := program.Exec(program.NewBCForward(0), g)
	sig := program.BCSigmas(props)
	dep := program.BCDepths(props)
	if sig[3] != 2 || dep[3] != 2 {
		t.Fatalf("vertex 3: σ=%d depth=%d, want σ=2 depth=2", sig[3], dep[3])
	}
	if sig[0] != 1 || dep[0] != 0 {
		t.Fatalf("root: σ=%d depth=%d", sig[0], dep[0])
	}
}

func TestStatsMetrics(t *testing.T) {
	s := program.RunStats{SimSeconds: 2, EdgesTraversed: 4e9}
	if got := s.TEPS(); got != 2e9 {
		t.Fatalf("TEPS = %v", got)
	}
	if got := s.EffectiveGTEPS(2e9); got != 1.0 {
		t.Fatalf("EffectiveGTEPS = %v", got)
	}
	if got := s.WorkEfficiency(2e9); got != 0.5 {
		t.Fatalf("WorkEfficiency = %v", got)
	}
	var zero program.RunStats
	if zero.TEPS() != 0 || zero.WorkEfficiency(10) != 1 {
		t.Fatal("zero-stats metrics wrong")
	}
}

func TestPropFloatRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		return program.FromFloat(x).Float() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingCounted(t *testing.T) {
	// Star into vertex 0 from a chain start: many updates to the same
	// pending vertex should register as coalesced in async mode.
	edges := []graph.Edge{}
	for i := 1; i <= 10; i++ {
		edges = append(edges, graph.Edge{Src: 11, Dst: graph.VertexID(i), Weight: 1})
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: 0, Weight: uint32(20 - i)})
	}
	g := graph.FromEdges("star", 12, edges)
	_, stats := program.Exec(program.NewSSSP(11), g)
	if stats.MessagesCoalesced == 0 {
		t.Fatal("expected coalesced reductions on converging star")
	}
}
