package program

import "nova/graph"

// Synchronous converts an asynchronous monotone program (BFS, SSSP, CC)
// into its level-synchronous BSP equivalent: messages accumulate with the
// same reduce function each epoch and fold into the property at the
// barrier; a vertex re-activates when the epoch improved it. Section III-A
// of the paper: NOVA executes both models on the same hardware, with BSP
// enforcing the serial blue→red ordering through the decoupled
// next_active set.
func Synchronous(p Program) BSPProgram {
	if p.Mode() != Async {
		panic("program: Synchronous wraps asynchronous programs only")
	}
	if m, ok := p.(DeltaMerger); ok {
		return syncWrapMerger{syncWrap{p}, m}
	}
	return syncWrap{p}
}

type syncWrap struct {
	inner Program
}

func (s syncWrap) Name() string { return s.inner.Name() + "-bsp" }
func (syncWrap) Mode() Mode     { return BSP }

func (s syncWrap) InitProp(v graph.VertexID, g *graph.CSR) Prop { return s.inner.InitProp(v, g) }
func (s syncWrap) InitActive(g *graph.CSR) []graph.VertexID     { return s.inner.InitActive(g) }

// AccumInit uses the current property as the accumulator identity; since
// the underlying reduce is monotone (min-like), reducing messages into Inf
// and comparing at Apply is equivalent.
func (syncWrap) AccumInit() Prop { return Inf }

func (s syncWrap) Reduce(v graph.VertexID, cur, delta Prop) Prop {
	return s.inner.Reduce(v, cur, delta)
}

func (s syncWrap) Propagate(prop Prop, w uint32, outDeg int64) (Prop, bool) {
	return s.inner.Propagate(prop, w, outDeg)
}

func (s syncWrap) Apply(v graph.VertexID, cur, accum Prop, g *graph.CSR) (Prop, bool) {
	next := s.inner.Reduce(v, cur, accum)
	return next, next != cur
}

func (syncWrap) MaxEpochs() int { return 0 }

// syncWrapMerger additionally forwards the inner program's DeltaMerger,
// so the fabric can keep merging in-flight deltas in BSP mode.
type syncWrapMerger struct {
	syncWrap
	m DeltaMerger
}

func (s syncWrapMerger) MergeDelta(a, b Prop) Prop { return s.m.MergeDelta(a, b) }
